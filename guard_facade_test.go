package planardfs

import (
	"context"
	"errors"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
)

// corruptedInstance builds an instance whose rotation system is a valid
// permutation system of genus > 0 — structurally buildable (the wire
// Build path skips genus validation by design) but semantically not a
// planar embedding.
func corruptedInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := gen.WireOf(in)
	for seed := int64(1); seed < 50; seed++ {
		plan := NewFaultPlan(seed, FaultSpec{Structural: 4})
		rot := make([][]int, len(w.Rotations))
		for v := range rot {
			rot[v] = append([]int(nil), w.Rotations[v]...)
		}
		if plan.SpliceFaces(1, rot) == 0 {
			continue
		}
		cw := *w
		cw.Rotations = rot
		bad, err := cw.Build()
		if err != nil {
			t.Fatalf("seed %d: corrupted wire did not build: %v", seed, err)
		}
		if bad.Emb.Genus() != 0 {
			return bad
		}
	}
	t.Fatal("no seed produced a genus-raising corruption")
	return nil
}

// TestValidateEmbeddingFacade pins the facade guard API: planar instances
// accepted, corrupted embeddings rejected with a typed witness.
func TestValidateEmbeddingFacade(t *testing.T) {
	in, err := NewWheel(10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateEmbedding(in, GuardOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Err() != nil {
		t.Fatalf("wheel rejected: %+v", v.Witness)
	}

	bad := corruptedInstance(t)
	v, err = ValidateEmbedding(bad, GuardOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("corrupted embedding accepted")
	}
	rerr := v.Err()
	if !errors.Is(rerr, ErrInputRejected) {
		t.Fatalf("rejection does not match ErrInputRejected: %v", rerr)
	}
	var re *GuardRejectionError
	if !errors.As(rerr, &re) || re.Witness.Reason != "euler" {
		t.Fatalf("want euler witness, got %v", rerr)
	}
}

// TestValidatePlanarityFacade pins the bare-graph path on K5.
func TestValidatePlanarityFacade(t *testing.T) {
	g := NewGraphK(t, 5)
	v, err := ValidatePlanarity(g, GuardOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Witness.Reason != "edge-count" {
		t.Fatalf("K5 verdict OK=%v witness=%+v", v.OK, v.Witness)
	}
}

// NewGraphK builds the complete graph on n vertices (test helper).
func NewGraphK(t *testing.T, n int) *Graph {
	t.Helper()
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if _, err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// TestBuildDFSTreeGuarded pins the guarded build: a valid instance runs
// the supervised pipeline to certification, a corrupted one ends as
// rejected-input without executing any producer attempt.
func TestBuildDFSTreeGuarded(t *testing.T) {
	in, err := NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	parent, rep, err := BuildDFSTreeGuarded(context.Background(), in, root, GuardOptions{Seed: 11}, nil, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RecoveryCertified {
		t.Fatalf("outcome %v, want certified", rep.Outcome)
	}
	if err := VerifyDFSTree(in.G, root, parent); err != nil {
		t.Fatal(err)
	}

	bad := corruptedInstance(t)
	_, rep, err = BuildDFSTreeGuarded(context.Background(), bad, OuterRoot(in), GuardOptions{Seed: 11}, nil, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RecoveryRejectedInput || rep.Outcome.String() != "rejected-input" {
		t.Fatalf("outcome %v, want rejected-input", rep.Outcome)
	}
	if len(rep.Attempts) != 0 {
		t.Fatalf("rejected run executed %d producer attempts", len(rep.Attempts))
	}
	if !errors.Is(rep.RejectionErr, ErrInputRejected) {
		t.Fatalf("report rejection %v does not match ErrInputRejected", rep.RejectionErr)
	}
}
