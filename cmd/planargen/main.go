// Command planargen generates embedded planar graphs as JSON.
//
// Usage:
//
//	planargen -family stacked -n 1000 -seed 7 [-o graph.json] [-stats]
//
// Families: grid, cylinderish, stacked, sparse, polygon, cycle, wheel, fan,
// tree, path, caterpillar.
package main

import (
	"flag"
	"fmt"
	"os"

	"planardfs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "planargen:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "stacked", "graph family")
	n := flag.Int("n", 100, "approximate vertex count")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print graph statistics to stderr")
	flag.Parse()

	in, err := gen.ByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "name=%s n=%d m=%d diameter=%d faces=%d\n",
			in.Name, in.G.N(), in.G.M(), in.G.Diameter(), in.Emb.TraceFaces().Count())
	}
	data, err := gen.EncodeJSON(in)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(*out, append(data, '\n'), 0o644)
}
