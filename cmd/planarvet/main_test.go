package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTree builds the multichecker and runs the full suite over the
// module, which must be free of findings: the lint gate in CI is this
// command exiting zero.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole module; CI covers this in the lint job")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "planarvet")
	build := exec.Command("go", "build", "-o", bin, "planardfs/cmd/planarvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("planarvet found issues on the repaired tree: %v\n%s", err, out)
	}
}

// TestFlagsProtocol checks the unitchecker side: the binary must answer the
// go command's -flags capability probe with every analyzer's enable flag.
func TestFlagsProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "planarvet")
	build := exec.Command("go", "build", "-o", bin, "planardfs/cmd/planarvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags probe: %v", err)
	}
	for _, name := range []string{
		"mapiter", "rngwallclock", "congestmsg", "spanbalance",
		"narrow32", "noalloc", "registryinit", "errwrap",
	} {
		if !strings.Contains(string(out), `"Name": "`+name+`"`) {
			t.Errorf("-flags output does not register analyzer %s:\n%s", name, out)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}
