package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"planardfs/internal/analyze"
)

// The -json mode runs the suite through `go vet -json` and renders the
// diagnostics as a SARIF 2.1.0 log on stdout, one run, one rule per
// analyzer. CI uploads the log as an artifact and turns its results into
// code annotations.
//
// `go vet -json` differs from plain vet in two ways this mode must undo:
// the JSON stream goes to stderr interleaved with `# pkgpath` comment
// lines, and the exit status is 0 even when there are findings. The
// SARIF mode therefore counts results itself and exits 1 when any exist,
// so the CI gate stays a gate.

// sarifLog is the subset of SARIF 2.1.0 the gate emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// vetDiag is one diagnostic in the `go vet -json` stream:
// {"pkgpath": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runJSON executes `go vet -json` with this binary as the vet tool, turns
// the diagnostic stream into SARIF on stdout, and returns the process exit
// code: 0 clean, 1 with findings, the vet exit code on hard failure.
func runJSON(self string, args []string) int {
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + self}, args...)...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	if runErr != nil {
		// go vet -json exits 0 on findings, so a failure is a hard error
		// (build breakage, bad flags): the raw output is the best report.
		os.Stderr.Write(stderr.Bytes())
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "planarvet: %v\n", runErr)
		return 1
	}

	log, err := buildSARIF(stderr.Bytes())
	if err != nil {
		os.Stderr.Write(stderr.Bytes())
		fmt.Fprintf(os.Stderr, "planarvet: parsing go vet -json output: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		fmt.Fprintf(os.Stderr, "planarvet: writing SARIF: %v\n", err)
		return 1
	}
	if len(log.Runs[0].Results) > 0 {
		return 1
	}
	return 0
}

// buildSARIF parses the stderr stream of `go vet -json` — JSON objects, one
// per package, interleaved with `# pkgpath` comment lines — into a SARIF
// log with deterministically ordered results.
func buildSARIF(raw []byte) (*sarifLog, error) {
	var filtered bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		filtered.Write(line)
		filtered.WriteByte('\n')
	}

	cwd, _ := os.Getwd()
	var results []sarifResult
	dec := json.NewDecoder(&filtered)
	for {
		var pkgs map[string]map[string][]vetDiag
		if err := dec.Decode(&pkgs); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range pkgs {
			for name, diags := range byAnalyzer {
				for _, d := range diags {
					results = append(results, toResult(name, d, cwd))
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if u1, u2 := a.Locations[0].Physical.Artifact.URI, b.Locations[0].Physical.Artifact.URI; u1 != u2 {
			return u1 < u2
		}
		if l1, l2 := a.Locations[0].Physical.Region.StartLine, b.Locations[0].Physical.Region.StartLine; l1 != l2 {
			return l1 < l2
		}
		if c1, c2 := a.Locations[0].Physical.Region.StartColumn, b.Locations[0].Physical.Region.StartColumn; c1 != c2 {
			return c1 < c2
		}
		if a.RuleID != b.RuleID {
			return a.RuleID < b.RuleID
		}
		return a.Message.Text < b.Message.Text
	})
	if results == nil {
		results = []sarifResult{}
	}

	rules := make([]sarifRule, 0, len(analyze.All()))
	for _, a := range analyze.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: doc}})
	}

	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "planarvet", Rules: rules}},
			Results: results,
		}},
	}, nil
}

// toResult converts one vet diagnostic. Bare-directive diagnostics are
// tree-wide hygiene warnings; every substrate-contract violation is an
// error. Paths are made repo-relative (and slash-separated) so the SARIF
// artifact URIs resolve inside the checkout regardless of the runner's
// absolute workspace path.
func toResult(analyzer string, d vetDiag, cwd string) sarifResult {
	file, line, col := splitPosn(d.Posn)
	if cwd != "" && filepath.IsAbs(file) {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	level := "error"
	if strings.HasPrefix(d.Message, "bare //planarvet:") {
		level = "warning"
	}
	return sarifResult{
		RuleID:  analyzer,
		Level:   level,
		Message: sarifText{Text: d.Message},
		Locations: []sarifLocation{{Physical: sarifPhysical{
			Artifact: sarifArtifact{URI: filepath.ToSlash(file)},
			Region:   sarifRegion{StartLine: line, StartColumn: col},
		}}},
	}
}

// splitPosn splits "path:line:col" from the right, so Windows drive colons
// and other path colons stay in the path.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}
