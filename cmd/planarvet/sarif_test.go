package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	sarifBuildOnce sync.Once
	sarifBin       string
	sarifBuildErr  error
)

// sarifBinary builds the planarvet command once for all SARIF-mode tests.
func sarifBinary(t *testing.T) string {
	t.Helper()
	sarifBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "planarvet-json-test")
		if err != nil {
			sarifBuildErr = err
			return
		}
		sarifBin = filepath.Join(dir, "planarvet")
		cmd := exec.Command("go", "build", "-o", sarifBin, "planardfs/cmd/planarvet")
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			sarifBuildErr = fmt.Errorf("building planarvet: %w\n%s", err, out)
		}
	})
	if sarifBuildErr != nil {
		t.Fatal(sarifBuildErr)
	}
	return sarifBin
}

// writeModule materialises a throwaway single-package module.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module sarifprobe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// runSARIF invokes `planarvet -json ./...` in dir and decodes the log.
func runSARIF(t *testing.T, dir string) (*sarifLog, int) {
	t.Helper()
	cmd := exec.Command(sarifBinary(t), "-json", "./...")
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running planarvet -json: %v\nstderr:\n%s", err, stderr.String())
		}
		code = ee.ExitCode()
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("stdout is not a SARIF log: %v\noutput:\n%s\nstderr:\n%s", err, out, stderr.String())
	}
	return &log, code
}

// TestJSONFindings checks the gate behaviour of the SARIF mode: a module
// with an identity comparison of non-nil errors must produce a SARIF log
// on stdout with an errwrap error result AND a non-zero exit status (the
// property plain `go vet -json` does not have).
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	dir := writeModule(t, `package p

import "errors"

var sentinel = errors.New("boom")

func Classify(err error) bool {
	return err == sentinel
}
`)
	log, code := runSARIF(t, dir)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (findings must gate)", code)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed log: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "planarvet" {
		t.Errorf("driver name = %q, want planarvet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 8 {
		t.Errorf("rule table has %d entries, want 8 (one per analyzer)", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(run.Results), run.Results)
	}
	res := run.Results[0]
	if res.RuleID != "errwrap" {
		t.Errorf("ruleId = %q, want errwrap", res.RuleID)
	}
	if res.Level != "error" {
		t.Errorf("level = %q, want error", res.Level)
	}
	if !strings.Contains(res.Message.Text, "errors.Is") {
		t.Errorf("message %q does not suggest errors.Is", res.Message.Text)
	}
	loc := res.Locations[0].Physical
	if !strings.HasSuffix(loc.Artifact.URI, "p.go") || strings.Contains(loc.Artifact.URI, "\\") {
		t.Errorf("uri = %q, want a slash-separated path ending in p.go", loc.Artifact.URI)
	}
	if loc.Region.StartLine != 8 {
		t.Errorf("startLine = %d, want 8", loc.Region.StartLine)
	}
}

// TestJSONBareDirectiveIsWarning checks the level mapping: a reasonless
// escape directive is reported at warning level, and still gates.
func TestJSONBareDirectiveIsWarning(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	dir := writeModule(t, `package p

import "errors"

var sentinel = errors.New("boom")

func Classify(err error) bool {
	//planarvet:errok
	return err == sentinel
}
`)
	log, code := runSARIF(t, dir)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (bare directives gate too)", code)
	}
	if len(log.Runs[0].Results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(log.Runs[0].Results), log.Runs[0].Results)
	}
	res := log.Runs[0].Results[0]
	if res.Level != "warning" {
		t.Errorf("level = %q, want warning for a bare directive", res.Level)
	}
	if !strings.Contains(res.Message.Text, "bare //planarvet:errok") {
		t.Errorf("unexpected message %q", res.Message.Text)
	}
}

// TestJSONClean checks the clean path: a well-formed SARIF log with a
// present (not null) empty results array and exit status 0.
func TestJSONClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	dir := writeModule(t, `package p

import "errors"

var sentinel = errors.New("boom")

func Classify(err error) bool {
	return errors.Is(err, sentinel)
}
`)
	log, code := runSARIF(t, dir)
	if code != 0 {
		t.Errorf("exit code = %d, want 0 on a clean module", code)
	}
	if log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("results = %+v, want a present empty array", log.Runs[0].Results)
	}
}
