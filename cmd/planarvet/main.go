// Command planarvet runs the planarvet analyzer suite (internal/analyze)
// over Go packages: determinism and CONGEST-model invariants as a hard
// lint gate.
//
// Usage:
//
//	go run ./cmd/planarvet ./...
//	go run ./cmd/planarvet -mapiter ./internal/congest/
//
// The binary is a go/analysis unitchecker: when the go command invokes it
// as a vet tool (with a -V version probe or a *.cfg package config) it
// speaks the unitchecker protocol directly. When invoked by a human with
// package patterns, it re-executes itself through `go vet -vettool=<self>`
// so the go command handles package loading, build caching and
// test-variant packages — no separate loader, no extra dependencies.
//
// Analyzer selection and flags follow vet conventions: -mapiter enables
// only that analyzer, -mapiter.packages=… adjusts its package list; with
// no selection flags, all analyzers run.
//
// With -json the diagnostics are emitted as a SARIF 2.1.0 log on stdout
// (see sarif.go) and the exit status is 1 when any finding exists — unlike
// `go vet -json`, which always exits 0. CI uploads the log as an artifact
// and renders its results as code annotations.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"planardfs/internal/analyze"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(analyze.All()...) // exits
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "planarvet: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	if rest, ok := stripFlag(args, "-json"); ok {
		os.Exit(runJSON(self, rest))
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "planarvet: %v\n", err)
		os.Exit(1)
	}
}

// stripFlag removes the first occurrence of flag from args, reporting
// whether it was present.
func stripFlag(args []string, flag string) ([]string, bool) {
	for i, a := range args {
		if a == flag {
			return append(append([]string(nil), args[:i]...), args[i+1:]...), true
		}
	}
	return args, false
}

// vetProtocol reports whether the argument list is a go-vet unitchecker
// invocation: a -V=… version probe, a -flags capability probe, or a
// package config file ending in .cfg.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
