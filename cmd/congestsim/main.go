// Command congestsim runs a message-level CONGEST program over an embedded
// planar graph (generated inline or loaded from planargen JSON) and prints
// the round/message statistics.
//
// Usage:
//
//	congestsim -program awerbuch -family grid -n 400
//	congestsim -program pa -parts 16 -in graph.json
//	congestsim -program boruvka -family stacked -n 500
//	congestsim -program bfs -seq                  # sequential reference engine
//	congestsim -program awerbuch -workers 4       # sharded engine, fixed workers
//	congestsim -program awerbuch -certify         # self-check the output tree
//	congestsim -trace out.json -metrics           # Perfetto trace + metrics dump
//
// -seq selects the sequential reference engine; -workers pins the shard
// count of the parallel engine (0 = NumCPU). -trace writes a Chrome
// trace_event file of the run and -metrics prints the counter registry.
// -certify runs the distributed certification verifier on the program
// output (bfs and awerbuch), reports the verdict, and exits nonzero on
// rejection.
//
// Fault injection: -chaos "drops=2,corruptions=1,crashes=1" arms a
// deterministic fault plan (seeded by -chaos-seed) on the run; with
// -recover the run executes under the supervised recovery runtime
// (certify, retry with backoff, degrade), exiting nonzero only when
// recovery exhausts its attempts:
//
//	congestsim -program bfs -chaos drops=3 -chaos-seed 7 -recover
package main

import (
	"flag"
	"fmt"
	"os"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/congest"
	"planardfs/internal/dfs"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "congestsim:", err)
		os.Exit(1)
	}
}

func run() error {
	program := flag.String("program", "awerbuch", "one of bfs,awerbuch,pa,boruvka")
	family := flag.String("family", "grid", "graph family (ignored with -in)")
	n := flag.Int("n", 256, "approximate vertex count (ignored with -in)")
	seed := flag.Int64("seed", 1, "generator seed")
	inFile := flag.String("in", "", "load a planargen JSON instance instead")
	parts := flag.Int("parts", 8, "part count for -program pa / boruvka")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the run (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of the run")
	seq := flag.Bool("seq", false, "use the sequential reference engine instead of the sharded one")
	workers := flag.Int("workers", 0, "worker count for the sharded engine (0 = NumCPU)")
	certify := flag.Bool("certify", false, "run the distributed certification verifier on the program output")
	chaosSpec := flag.String("chaos", "", "deterministic fault-injection spec, e.g. \"drops=2,corruptions=1,crashes=1\"")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-plan seed for -chaos")
	recoverRun := flag.Bool("recover", false, "execute under the supervised recovery runtime (certify, retry, degrade)")
	flag.Parse()

	var plan *chaos.Plan
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		spec.Protect = []int{0} // the root survives: crashes elsewhere
		plan = chaos.NewPlan(*chaosSeed, spec)
	}

	var in *gen.Instance
	var err error
	if *inFile != "" {
		data, rerr := os.ReadFile(*inFile)
		if rerr != nil {
			return rerr
		}
		in, err = gen.DecodeJSON(data)
	} else {
		in, err = gen.ByName(*family, *n, *seed)
	}
	if err != nil {
		return err
	}
	g := in.G
	fmt.Printf("graph %s: n=%d m=%d\n", in.Name, g.N(), g.M())

	nw := congest.New(g)
	nw.Parallel = !*seq
	nw.Workers = *workers
	var rec *trace.Recorder
	if *traceOut != "" || *metrics {
		rec = trace.NewRecorder()
		nw.Tracer = rec
	}
	copt := cert.Options{Sequential: *seq, Workers: *workers}
	if rec != nil {
		copt.Tracer = rec
	}
	if *recoverRun {
		if err := runSupervised(*program, g, *parts, plan, copt); err != nil {
			return err
		}
		return exportTrace(rec, *traceOut, *metrics)
	}
	var inj *chaos.Injector
	if plan != nil {
		inj = plan.Arm(nw, 1)
	}
	switch *program {
	case "bfs":
		nodes := congest.NewBFSNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()+100); err != nil {
			return err
		}
		ecc := 0
		for v := 0; v < g.N(); v++ {
			if d := nodes[v].(*congest.BFSNode).Dist; d > ecc {
				ecc = d
			}
		}
		fmt.Printf("BFS: eccentricity %d\n", ecc)
		if *certify {
			parent := make([]int, g.N())
			for v := range parent {
				parent[v] = nodes[v].(*congest.BFSNode).ParentID
			}
			tree, err := spanning.NewFromParents(0, parent)
			if err != nil {
				return fmt.Errorf("BFS output is not a tree: %w", err)
			}
			v, err := cert.CertifySpanningTree(g, tree, copt)
			if err != nil {
				return err
			}
			if err := printVerdict(v); err != nil {
				return err
			}
		}
	case "awerbuch":
		nodes := congest.NewAwerbuchNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()+100); err != nil {
			return err
		}
		parent := make([]int, g.N())
		for v := range parent {
			parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
		}
		if err := dfs.IsDFSTree(g, 0, parent); err != nil {
			return fmt.Errorf("output not a DFS tree: %w", err)
		}
		fmt.Println("Awerbuch DFS: output verified")
		if *certify {
			v, err := cert.CertifyDFSTree(g, 0, parent, copt)
			if err != nil {
				return err
			}
			if err := printVerdict(v); err != nil {
				return err
			}
		}
	case "pa":
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % *parts
			value[v] = 1
		}
		part, err := shortcut.NewPartition(partOf)
		if err != nil {
			return err
		}
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return err
		}
		nodes := congest.NewPANodes(nw, tree.Parent, 0, partOf, value, congest.OpSum)
		if _, err := nw.Run(nodes, 100*(g.N()+*parts)); err != nil {
			return err
		}
		fmt.Printf("part-wise sum over %d parts: done\n", part.K())
		if *certify {
			fmt.Println("certify: no certification scheme for program pa (tree outputs only)")
		}
	case "boruvka":
		partOf := make([]int, g.N())
		res := g.BFS(0)
		for i, v := range res.Order {
			partOf[v] = i * *parts / g.N()
		}
		// BFS-prefix parts can be disconnected; fall back to one part then.
		part, err := shortcut.NewPartition(partOf)
		if err == nil {
			err = part.Validate(g)
		}
		if err != nil {
			partOf = make([]int, g.N())
		}
		nodes := congest.NewBoruvkaNodes(nw, partOf)
		if _, err := nw.Run(nodes, (2*g.N()+4)*(shortcut.Log2Ceil(g.N())+3)); err != nil {
			return err
		}
		edges := 0
		for v := 0; v < g.N(); v++ {
			for _, on := range nodes[v].(*congest.BoruvkaNode).ForestPorts {
				if on {
					edges++
				}
			}
		}
		fmt.Printf("Borůvka forest: %d edges (double-counted)\n", edges)
		if *certify {
			fmt.Println("certify: no certification scheme for program boruvka (tree outputs only)")
		}
	default:
		return fmt.Errorf("unknown program %q", *program)
	}
	if inj != nil {
		fmt.Printf("chaos: fired %s\n", inj.Counts())
	}
	st := nw.Stats()
	fmt.Printf("rounds=%d messages=%d words=%d maxEdgeLoad=%d maxRoundWords=%d maxEdgeCongestion=%d\n",
		st.Rounds, st.Messages, st.Words, st.MaxEdgeLoad, st.MaxRoundWords, st.MaxEdgeCongestion)
	if len(st.RoundMessages) > 0 {
		var peak, peakAt, busy int64
		for i, m := range st.RoundMessages {
			if m > peak {
				peak, peakAt = m, int64(i)
			}
			if m > 0 {
				busy++
			}
		}
		fmt.Printf("per-round messages: mean=%.1f peak=%d (round %d) busy=%d/%d rounds\n",
			float64(st.Messages)/float64(len(st.RoundMessages)), peak, peakAt, busy, len(st.RoundMessages))
	}
	return exportTrace(rec, *traceOut, *metrics)
}

// exportTrace writes the Chrome trace and metrics dump, when requested.
func exportTrace(rec *trace.Recorder, traceOut string, metrics bool) error {
	if rec == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}
	if metrics {
		rec.WriteMetrics(os.Stdout)
	}
	return nil
}

// runSupervised executes the program under the supervised recovery runtime
// and reports the outcome; it fails (nonzero exit) only when recovery
// exhausts its attempts.
func runSupervised(program string, g *graph.Graph, parts int, plan *chaos.Plan, opt cert.Options) error {
	pol := chaos.Policy{Tracer: opt.Tracer}
	var rep *chaos.Report
	var err error
	switch program {
	case "bfs":
		st := chaos.BFSTreeStage(g, 0, plan, opt)
		_, rep, err = chaos.RunWithRecovery(st, nil, pol)
	case "awerbuch":
		primary := chaos.AwerbuchDFS(g, 0, plan, opt)
		fallback := chaos.AwerbuchDFS(g, 0, nil, opt) // fault-free baseline
		_, rep, err = chaos.RunWithRecovery(primary, &fallback, pol)
	case "pa":
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % parts
			value[v] = 1
		}
		st := chaos.PartwiseSum(g, 0, partOf, value, plan, opt)
		_, rep, err = chaos.RunWithRecovery(st, nil, pol)
	default:
		return fmt.Errorf("-recover supports programs bfs, awerbuch and pa (got %q)", program)
	}
	if err != nil {
		return err
	}
	printReport(rep)
	if rep.Outcome == chaos.OutcomeFailed {
		return fmt.Errorf("recovery exhausted after %d attempts", len(rep.Attempts))
	}
	return nil
}

// printReport dumps a supervised run's report on stdout.
func printReport(rep *chaos.Report) {
	fmt.Printf("recovery: outcome=%s attempts=%d faults[%s]\n",
		rep.Outcome, len(rep.Attempts), rep.Faults)
	for _, a := range rep.Attempts {
		status := "accepted"
		if !a.Accepted {
			status = "rejected"
			if a.Err != "" {
				status += ": " + a.Err
			}
		}
		fmt.Printf("  %s attempt %d: budget=%d rounds=%d faults=%d %s\n",
			a.Stage, a.Attempt, a.Budget, a.Rounds, a.Faults.Total(), status)
	}
}

// printVerdict reports one certification verdict on stdout and returns an
// error on rejection, so a rejected -certify run exits nonzero.
func printVerdict(v *cert.Verdict) error {
	status := "ACCEPT"
	if !v.OK {
		status = fmt.Sprintf("REJECT at %v", v.Rejectors)
	}
	fmt.Printf("certify %s: %s labelWords=%d proverRounds=%d verifierRounds=%d aggRounds=%d msgs=%d\n",
		v.Scheme, status, v.LabelWords, v.ProverRounds, v.VerifierRounds, v.AggRounds, v.Stats.Messages)
	if !v.OK {
		return fmt.Errorf("certification rejected by %d vertices", len(v.Rejectors))
	}
	return nil
}
