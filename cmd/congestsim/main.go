// Command congestsim runs a message-level CONGEST program over an embedded
// planar graph (generated inline or loaded from planargen JSON) and prints
// the round/message statistics.
//
// Usage:
//
//	congestsim -program awerbuch -family grid -n 400
//	congestsim -program pa -parts 16 -in graph.json
//	congestsim -program boruvka -family stacked -n 500
//	congestsim -program bfs -seq                  # sequential reference engine
//	congestsim -program awerbuch -workers 4       # sharded engine, fixed workers
//	congestsim -program awerbuch -certify         # self-check the output tree
//	congestsim -trace out.json -metrics           # Perfetto trace + metrics dump
//
// -seq selects the sequential reference engine; -workers pins the shard
// count of the parallel engine (0 = NumCPU). -trace writes a Chrome
// trace_event file of the run and -metrics prints the counter registry.
// -certify runs the distributed certification verifier on the program
// output (bfs and awerbuch) and reports the verdict.
package main

import (
	"flag"
	"fmt"
	"os"

	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/dfs"
	"planardfs/internal/gen"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "congestsim:", err)
		os.Exit(1)
	}
}

func run() error {
	program := flag.String("program", "awerbuch", "one of bfs,awerbuch,pa,boruvka")
	family := flag.String("family", "grid", "graph family (ignored with -in)")
	n := flag.Int("n", 256, "approximate vertex count (ignored with -in)")
	seed := flag.Int64("seed", 1, "generator seed")
	inFile := flag.String("in", "", "load a planargen JSON instance instead")
	parts := flag.Int("parts", 8, "part count for -program pa / boruvka")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the run (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of the run")
	seq := flag.Bool("seq", false, "use the sequential reference engine instead of the sharded one")
	workers := flag.Int("workers", 0, "worker count for the sharded engine (0 = NumCPU)")
	certify := flag.Bool("certify", false, "run the distributed certification verifier on the program output")
	flag.Parse()

	var in *gen.Instance
	var err error
	if *inFile != "" {
		data, rerr := os.ReadFile(*inFile)
		if rerr != nil {
			return rerr
		}
		in, err = gen.DecodeJSON(data)
	} else {
		in, err = gen.ByName(*family, *n, *seed)
	}
	if err != nil {
		return err
	}
	g := in.G
	fmt.Printf("graph %s: n=%d m=%d\n", in.Name, g.N(), g.M())

	nw := congest.New(g)
	nw.Parallel = !*seq
	nw.Workers = *workers
	var rec *trace.Recorder
	if *traceOut != "" || *metrics {
		rec = trace.NewRecorder()
		nw.Tracer = rec
	}
	copt := cert.Options{Sequential: *seq, Workers: *workers}
	if rec != nil {
		copt.Tracer = rec
	}
	switch *program {
	case "bfs":
		nodes := congest.NewBFSNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()+100); err != nil {
			return err
		}
		ecc := 0
		for v := 0; v < g.N(); v++ {
			if d := nodes[v].(*congest.BFSNode).Dist; d > ecc {
				ecc = d
			}
		}
		fmt.Printf("BFS: eccentricity %d\n", ecc)
		if *certify {
			parent := make([]int, g.N())
			for v := range parent {
				parent[v] = nodes[v].(*congest.BFSNode).ParentID
			}
			tree, err := spanning.NewFromParents(0, parent)
			if err != nil {
				return fmt.Errorf("BFS output is not a tree: %w", err)
			}
			v, err := cert.CertifySpanningTree(g, tree, copt)
			if err != nil {
				return err
			}
			printVerdict(v)
		}
	case "awerbuch":
		nodes := congest.NewAwerbuchNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()+100); err != nil {
			return err
		}
		parent := make([]int, g.N())
		for v := range parent {
			parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
		}
		if err := dfs.IsDFSTree(g, 0, parent); err != nil {
			return fmt.Errorf("output not a DFS tree: %w", err)
		}
		fmt.Println("Awerbuch DFS: output verified")
		if *certify {
			v, err := cert.CertifyDFSTree(g, 0, parent, copt)
			if err != nil {
				return err
			}
			printVerdict(v)
		}
	case "pa":
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % *parts
			value[v] = 1
		}
		part, err := shortcut.NewPartition(partOf)
		if err != nil {
			return err
		}
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return err
		}
		nodes := congest.NewPANodes(nw, tree.Parent, 0, partOf, value, congest.OpSum)
		if _, err := nw.Run(nodes, 100*(g.N()+*parts)); err != nil {
			return err
		}
		fmt.Printf("part-wise sum over %d parts: done\n", part.K())
		if *certify {
			fmt.Println("certify: no certification scheme for program pa (tree outputs only)")
		}
	case "boruvka":
		partOf := make([]int, g.N())
		res := g.BFS(0)
		for i, v := range res.Order {
			partOf[v] = i * *parts / g.N()
		}
		// BFS-prefix parts can be disconnected; fall back to one part then.
		part, err := shortcut.NewPartition(partOf)
		if err == nil {
			err = part.Validate(g)
		}
		if err != nil {
			partOf = make([]int, g.N())
		}
		nodes := congest.NewBoruvkaNodes(nw, partOf)
		if _, err := nw.Run(nodes, (2*g.N()+4)*(shortcut.Log2Ceil(g.N())+3)); err != nil {
			return err
		}
		edges := 0
		for v := 0; v < g.N(); v++ {
			for _, on := range nodes[v].(*congest.BoruvkaNode).ForestPorts {
				if on {
					edges++
				}
			}
		}
		fmt.Printf("Borůvka forest: %d edges (double-counted)\n", edges)
		if *certify {
			fmt.Println("certify: no certification scheme for program boruvka (tree outputs only)")
		}
	default:
		return fmt.Errorf("unknown program %q", *program)
	}
	st := nw.Stats()
	fmt.Printf("rounds=%d messages=%d words=%d maxEdgeLoad=%d maxRoundWords=%d maxEdgeCongestion=%d\n",
		st.Rounds, st.Messages, st.Words, st.MaxEdgeLoad, st.MaxRoundWords, st.MaxEdgeCongestion)
	if len(st.RoundMessages) > 0 {
		var peak, peakAt, busy int64
		for i, m := range st.RoundMessages {
			if m > peak {
				peak, peakAt = m, int64(i)
			}
			if m > 0 {
				busy++
			}
		}
		fmt.Printf("per-round messages: mean=%.1f peak=%d (round %d) busy=%d/%d rounds\n",
			float64(st.Messages)/float64(len(st.RoundMessages)), peak, peakAt, busy, len(st.RoundMessages))
	}
	if rec != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
		if *metrics {
			rec.WriteMetrics(os.Stdout)
		}
	}
	return nil
}

// printVerdict reports one certification verdict on stdout.
func printVerdict(v *cert.Verdict) {
	status := "ACCEPT"
	if !v.OK {
		status = fmt.Sprintf("REJECT at %v", v.Rejectors)
	}
	fmt.Printf("certify %s: %s labelWords=%d proverRounds=%d verifierRounds=%d aggRounds=%d msgs=%d\n",
		v.Scheme, status, v.LabelWords, v.ProverRounds, v.VerifierRounds, v.AggRounds, v.Stats.Messages)
}
