package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The exit-code contract of the chaos/certification flags: a run whose
// certification rejects or whose supervised recovery exhausts its attempts
// must exit nonzero, and clean runs must exit zero, so CI scripts can gate
// on the binary directly.

// buildCLI compiles one of the repo's commands into a temp dir.
func buildCLI(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

func TestRecoverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/congestsim")

	// Clean supervised run: exit zero, certified on the first attempt.
	out, err := exec.Command(bin, "-program", "bfs", "-n", "36", "-recover").CombinedOutput()
	if err != nil {
		t.Fatalf("fault-free -recover run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "outcome=certified") {
		t.Fatalf("fault-free run did not certify:\n%s", out)
	}

	// A crash at round 0 makes the BFS tree non-spanning on every attempt;
	// with no fallback stage the runtime must exhaust and exit nonzero.
	out, err = exec.Command(bin, "-program", "bfs", "-n", "36", "-recover",
		"-chaos", "crashes=1,horizon=1", "-chaos-seed", "5").CombinedOutput()
	if err == nil {
		t.Fatalf("exhausted recovery exited zero:\n%s", out)
	}
	if !strings.Contains(string(out), "outcome=failed") ||
		!strings.Contains(string(out), "recovery exhausted") {
		t.Fatalf("missing explicit failure report:\n%s", out)
	}

	// The same plan without -recover produces a non-spanning output; the
	// -certify path must catch it (precheck error or REJECT verdict) and
	// exit nonzero.
	out, err = exec.Command(bin, "-program", "bfs", "-n", "36", "-certify",
		"-chaos", "crashes=1,horizon=1", "-chaos-seed", "5").CombinedOutput()
	if err == nil {
		t.Fatalf("-certify accepted a crashed run:\n%s", out)
	}
	if !strings.Contains(string(out), "REJECT") && !strings.Contains(string(out), "not a tree") {
		t.Fatalf("expected an explicit rejection:\n%s", out)
	}
}

func TestChaosFlagDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/congestsim")
	run := func(extra ...string) string {
		args := append([]string{"-program", "bfs", "-n", "64",
			"-chaos", "drops=2,stalls=1", "-chaos-seed", "9"}, extra...)
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	seq := run("-seq")
	par := run("-workers", "3")
	if seq != par {
		t.Fatalf("same plan diverged across engines:\n--- seq ---\n%s--- workers ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "chaos: fired") {
		t.Fatalf("injected run did not report fired faults:\n%s", seq)
	}
}
