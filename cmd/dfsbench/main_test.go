package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLI(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestRecoverCLI drives the supervised DFS end to end through the binary:
// a fault-free run certifies on the first attempt, and a structural fault
// burst forces rejections that the runtime must absorb by retrying or
// degrading to Awerbuch — exiting zero either way, with the outcome named
// in the report.
func TestRecoverCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/dfsbench")

	out, err := exec.Command(bin, "-recover", "-families", "grid", "-sizes", "36").CombinedOutput()
	if err != nil {
		t.Fatalf("fault-free -recover: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "outcome=certified") {
		t.Fatalf("fault-free run did not certify:\n%s", out)
	}

	out, err = exec.Command(bin, "-recover", "-families", "grid", "-sizes", "36",
		"-chaos", "structural=4", "-chaos-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("faulted -recover should self-heal, got: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "rejected") {
		t.Fatalf("structural burst never rejected an attempt:\n%s", s)
	}
	if !strings.Contains(s, "outcome=certified-after-retry") && !strings.Contains(s, "outcome=degraded") {
		t.Fatalf("expected a retry or degraded outcome:\n%s", s)
	}
	if !strings.Contains(s, "recovered DFS tree: 35 tree edges") {
		t.Fatalf("recovered tree is not spanning:\n%s", s)
	}

	// A malformed spec must fail fast, before any run starts.
	if out, err := exec.Command(bin, "-recover", "-chaos", "bogus=1").CombinedOutput(); err == nil {
		t.Fatalf("bogus fault spec accepted:\n%s", out)
	}
}

// TestCertifyCLI checks the plain -certify path still exits zero and
// prints ACCEPT verdicts for both schemes it runs.
func TestCertifyCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/dfsbench")
	out, err := exec.Command(bin, "-certify", "-families", "grid", "-sizes", "36").CombinedOutput()
	if err != nil {
		t.Fatalf("-certify: %v\n%s", err, out)
	}
	if strings.Count(string(out), "ACCEPT") < 2 {
		t.Fatalf("expected embedding and DFS verdicts to ACCEPT:\n%s", out)
	}
}
