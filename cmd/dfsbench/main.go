// Command dfsbench prints the DFS experiment tables (E2, E5, E6, E7, E9,
// E11 of EXPERIMENTS.md).
//
// Usage:
//
//	dfsbench -experiment e2 [-sizes 64,256,1024] [-families grid,stacked]
//	dfsbench -trace out.json -metrics   # instrumented run, Perfetto-loadable
//	dfsbench -certify                   # self-check one DFS run end to end
//	dfsbench -recover -chaos structural=4 -chaos-seed 7
//	                                    # supervised run under injected faults
//	dfsbench -guard -experiment e2      # admission-guard every instance first
//
// -guard validates every (family, size) instance with the admission guard
// (internal/guard) before the run and exits nonzero printing the typed
// witness on rejection.
//
// -certify exits nonzero when a verifier rejects; -recover exits nonzero
// when the supervised runtime exhausts its attempts without a certified
// (or degraded-but-certified) tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"planardfs"
	"planardfs/internal/cert"
	"planardfs/internal/dfs"
	"planardfs/internal/exp"
	"planardfs/internal/gen"
	"planardfs/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dfsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "e2", "one of e2,e5,e6,e7,e9,e11")
	sizesFlag := flag.String("sizes", "64,256,1024", "comma-separated vertex counts")
	famFlag := flag.String("families", strings.Join(exp.DefaultFamilies, ","), "comma-separated families")
	seed := flag.Int64("seed", 1, "base seed")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of one instrumented DFS run (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of the instrumented run")
	certify := flag.Bool("certify", false, "run the Theorem 2 DFS on one instance and certify its output (embedding + DFS tree)")
	chaosSpec := flag.String("chaos", "", "fault spec for -recover, e.g. structural=4 (see internal/chaos.ParseSpec)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed deriving the deterministic fault plan")
	recoverRun := flag.Bool("recover", false, "run one supervised DFS (certify, retry with backoff, degrade to Awerbuch); exits nonzero on recovery exhaustion")
	guardRun := flag.Bool("guard", false, "validate every instance with the admission guard before running; exits nonzero printing the witness on rejection")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		return err
	}
	fams := strings.Split(*famFlag, ",")

	if *guardRun {
		if err := guardAdmit(fams, sizes, *seed); err != nil {
			return err
		}
	}

	if *recoverRun {
		return recoveryRun(fams[0], sizes[len(sizes)-1], *seed, *chaosSpec, *chaosSeed)
	}

	if *certify {
		return certifyRun(fams[0], sizes[len(sizes)-1], *seed)
	}

	if *traceOut != "" || *metrics {
		rec := trace.NewRecorder()
		sum, err := exp.TraceDFS(fams[0], sizes[len(sizes)-1], *seed, rec)
		if err != nil {
			return err
		}
		fmt.Printf("traced DFS run: %s n=%d m=%d phases=%d rounds=%d spans=%d layers=%v\n",
			sum.Family, sum.N, sum.M, sum.DFS.Phases, sum.Rounds, sum.Spans, sum.Layers)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
		if *metrics {
			rec.WriteMetrics(os.Stdout)
		}
		return nil
	}

	switch *experiment {
	case "e2":
		rows, err := exp.E2(fams, sizes, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E2 — Theorem 2: DFS rounds, deterministic Õ(D) vs Awerbuch Θ(n)")
		fmt.Printf("%-12s %7s %5s %7s %8s %12s %12s %10s %10s %10s\n",
			"family", "n", "D", "phases", "maxJoin", "paper", "pipelined", "awe-thy", "awe-msr", "paper/Dlog3")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %5d %7d %8d %12d %12d %10d %10d %10.2f\n",
				r.Family, r.N, r.D, r.Phases, r.MaxJoinSubPhases,
				r.PaperRounds, r.PipelinedRounds, r.AwerbuchTheory, r.AwerbuchMeasured, r.NormPaper)
		}
	case "e5":
		n := sizes[len(sizes)-1]
		rows, err := exp.E5(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E5 — Lemma 11: DFS-order fragment merging, phases vs tree depth")
		fmt.Printf("%-12s %7s %9s %8s %9s %8s\n", "family", "n", "depth", "phases", "log-bound", "PA-ops")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %9d %8d %9d %8d\n",
				r.Family, r.N, r.TreeDepth, r.Phases, r.LogBound, r.PARounds)
		}
	case "e6":
		n := sizes[len(sizes)-1]
		rows, err := exp.E6(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E6 — Lemma 13: MARK-PATH iterations vs path length")
		fmt.Printf("%-12s %7s %9s %8s %12s %8s\n", "family", "n", "pathLen", "phases", "iterations", "log²n")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %9d %8d %12d %8d\n",
				r.Family, r.N, r.PathLen, r.Phases, r.Iterations, r.LogSquared)
		}
	case "e7":
		n := sizes[len(sizes)-1]
		rows, err := exp.E7(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E7 — Lemma 2: JOIN sub-phase convergence")
		fmt.Printf("%-12s %7s %8s %10s %9s %9s\n", "family", "n", "phases", "joinTotal", "maxJoin", "log-bnd")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %8d %10d %9d %9d\n",
				r.Family, r.N, r.Phases, r.JoinSubPhases, r.MaxJoin, r.LogBound)
		}
	case "e9":
		n := sizes[len(sizes)-1]
		rows, err := exp.E9(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E9 — §6.2: component shrink per recursion phase")
		fmt.Printf("%-12s %7s %8s %10s  %s\n", "family", "n", "phases", "maxShrink", "maxComponent trajectory")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %8d %10.3f  %v\n",
				r.Family, r.N, r.Phases, r.MaxShrink, r.MaxComponent)
		}
	case "e11":
		n := sizes[len(sizes)-1]
		rows, err := exp.E11(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E11 — Awerbuch baseline at the message level")
		fmt.Printf("%-12s %7s %8s %8s %10s\n", "family", "n", "rounds", "bound", "messages")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %8d %8d %10d\n", r.Family, r.N, r.Rounds, r.Bound, r.Messages)
		}
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

// certifyRun builds the Theorem 2 DFS tree on one generated instance and
// runs the distributed certification verifiers on the embedding and the
// resulting tree, printing one verdict line per scheme.
func certifyRun(family string, n int, seed int64) error {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return err
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	pt, _, err := dfs.Build(in.G, in.Emb, in.OuterDart, root)
	if err != nil {
		return err
	}
	fmt.Printf("certifying DFS run: %s n=%d m=%d root=%d\n", in.Name, in.G.N(), in.G.M(), root)
	ev, err := cert.CertifyEmbedding(in.Emb, cert.Options{})
	if err != nil {
		return err
	}
	printVerdict(ev)
	dv, err := cert.CertifyDFSTree(in.G, root, pt.Parent, cert.Options{})
	if err != nil {
		return err
	}
	printVerdict(dv)
	if !ev.OK || !dv.OK {
		return fmt.Errorf("certification rejected the run")
	}
	return nil
}

// recoveryRun executes one DFS build under the supervised recovery
// runtime: the Theorem 2 pipeline perturbed by the fault plan, certified
// by the DFS proof-labeling scheme, retried with decaying faults and
// degraded to Awerbuch's token DFS if every pipeline attempt is rejected.
func recoveryRun(family string, n int, seed int64, spec string, chaosSeed int64) error {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return err
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	var plan *planardfs.FaultPlan
	if spec != "" {
		s, err := planardfs.ParseFaultSpec(spec)
		if err != nil {
			return err
		}
		s.Protect = []int{root} // the root survives: crashes land elsewhere
		plan = planardfs.NewFaultPlan(chaosSeed, s)
	}
	fmt.Printf("supervised DFS run: %s n=%d m=%d root=%d\n", in.Name, in.G.N(), in.G.M(), root)
	parent, rep, err := planardfs.BuildDFSTreeWithRecovery(in, root, plan, planardfs.RecoveryPolicy{})
	if err != nil {
		return err
	}
	printReport(rep)
	if rep.Outcome == planardfs.RecoveryFailed {
		return fmt.Errorf("recovery exhausted after %d attempts", len(rep.Attempts))
	}
	edges := 0
	for _, p := range parent {
		if p >= 0 {
			edges++
		}
	}
	fmt.Printf("recovered DFS tree: %d tree edges\n", edges)
	return nil
}

// printReport summarizes a supervised run, one line per attempt.
func printReport(rep *planardfs.RecoveryReport) {
	fmt.Printf("recovery: outcome=%s attempts=%d faults[%s]\n",
		rep.Outcome, len(rep.Attempts), rep.Faults)
	for _, a := range rep.Attempts {
		status := "accepted"
		if !a.Accepted {
			status = "rejected"
			if a.Err != "" {
				status += ": " + a.Err
			}
		}
		fmt.Printf("  %s attempt %d: budget=%d rounds=%d faults=%d %s\n",
			a.Stage, a.Attempt, a.Budget, a.Rounds, a.Faults.Total(), status)
	}
}

// printVerdict reports one certification verdict on stdout.
func printVerdict(v *cert.Verdict) {
	status := "ACCEPT"
	if !v.OK {
		status = fmt.Sprintf("REJECT at %v", v.Rejectors)
	}
	fmt.Printf("certify %s: %s labelWords=%d proverRounds=%d verifierRounds=%d aggRounds=%d msgs=%d\n",
		v.Scheme, status, v.LabelWords, v.ProverRounds, v.VerifierRounds, v.AggRounds, v.Stats.Messages)
}

// guardAdmit validates every (family, size) instance the run will touch
// with the admission guard. A rejection prints the typed witness and fails
// the command before any experiment runs on the bad input.
func guardAdmit(fams []string, sizes []int, seed int64) error {
	for _, fam := range fams {
		for _, n := range sizes {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return err
			}
			v, err := planardfs.ValidateEmbedding(in, planardfs.GuardOptions{Seed: seed})
			if err != nil {
				return err
			}
			if !v.OK {
				fmt.Fprintf(os.Stderr, "guard: REJECT %s n=%d reason=%s detail=%q\n",
					in.Name, in.G.N(), v.Witness.Reason, v.Witness.Detail)
				return fmt.Errorf("input rejected by the admission guard: %w", v.Err())
			}
			fmt.Printf("guard: accept %s n=%d rounds=%d msgs=%d\n",
				in.Name, in.G.N(), v.Rounds, v.Messages)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		x, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}
