package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end smoke of the real binary: start planard on an ephemeral port,
// submit a generator job, poll to completion, run one cached query, assert
// a cache hit on resubmission, and drain with SIGTERM. This is the same
// sequence the CI server-smoke step scripts with curl.

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func TestPlanardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "planard")
	build := exec.Command("go", "build", "-o", bin, "./cmd/planard")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	addr := freePort(t)
	cmd := exec.Command(bin, "-addr", addr, "-workers", "2")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Wait for the listener.
	var up bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/v1/healthz"); err == nil {
			resp.Body.Close()
			up = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatal("planard never came up")
	}

	submit := func() (id, hash, state string, cached bool) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"family":"grid","n":100,"seed":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var st struct {
			ID    string `json:"id"`
			Hash  string `json:"hash"`
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		// Poll to terminal state.
		for i := 0; i < 400; i++ {
			resp, err := http.Get(base + "/v1/jobs/" + st.ID)
			if err != nil {
				t.Fatal(err)
			}
			var cur struct {
				State  string `json:"state"`
				Hash   string `json:"hash"`
				Cached bool   `json:"cached"`
				Error  string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&cur)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch cur.State {
			case "done":
				return st.ID, cur.Hash, cur.State, cur.Cached
			case "failed", "canceled":
				t.Fatalf("job %s: %s (%s)", st.ID, cur.State, cur.Error)
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("job did not finish")
		return
	}

	_, hash, _, cached := submit()
	if cached {
		t.Fatal("first build reported cached")
	}
	// Cached query.
	resp, err := http.Get(fmt.Sprintf("%s/v1/graphs/%s/query/lca?u=0&v=99", base, hash))
	if err != nil {
		t.Fatal(err)
	}
	var lca struct {
		LCA int `json:"lca"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lca); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lca status %d", resp.StatusCode)
	}
	// Resubmission is a cache hit.
	if _, _, _, cached := submit(); !cached {
		t.Fatal("resubmission was not served from cache")
	}

	// Graceful SIGTERM drain.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("planard exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("planard did not drain after SIGTERM")
	}
}
