// Command planard is the planardfs simulation daemon: a long-running HTTP
// service that accepts separator/DFS/cert/chaos jobs, runs them on a
// bounded worker pool, and serves repeat queries from a content-addressed
// decomposition cache (see internal/serve and DESIGN.md §12).
//
// Usage:
//
//	planard [-addr :8462] [-workers N] [-queue N] [-cache-mb MB] [-max-n N]
//
// Quickstart:
//
//	planard -addr 127.0.0.1:8462 &
//	curl -s -X POST localhost:8462/v1/jobs \
//	     -d '{"family":"grid","n":10000,"seed":1}'   # → {"id":"j1",...}
//	curl -s localhost:8462/v1/jobs/j1                # poll to "done"
//	curl -s localhost:8462/v1/graphs/<hash>/query/lca'?u=12&v=9000'
//	curl -s localhost:8462/v1/metrics
//
// SIGINT/SIGTERM drain gracefully: new jobs are rejected immediately,
// queued and in-flight jobs finish (up to -drain-timeout), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"planardfs/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "planard:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8462", "listen address")
	workers := flag.Int("workers", 2, "worker pool size")
	queue := flag.Int("queue", 64, "job queue depth (admission control)")
	cacheMB := flag.Int64("cache-mb", 256, "decomposition cache budget in MiB (<0 = unbounded)")
	maxN := flag.Int("max-n", 1<<20, "largest accepted generator job size")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		MaxN:       *maxN,
	})
	hs := &http.Server{Addr: *addr, Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("planard listening on %s (workers=%d queue=%d cache=%dMiB)",
			*addr, *workers, *queue, *cacheMB)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("planard draining (timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job pool first (rejects new jobs, finishes queued ones),
	// then close the HTTP listener.
	derr := s.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	if derr != nil {
		return fmt.Errorf("drain incomplete: %w", derr)
	}
	if herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		return herr
	}
	log.Printf("planard stopped")
	return nil
}
