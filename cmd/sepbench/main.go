// Command sepbench prints the separator experiment tables (E1, E3, E4, E8,
// E10, E12 of EXPERIMENTS.md).
//
// Usage:
//
//	sepbench -experiment e1 [-sizes 64,256,1024,4096] [-families grid,stacked]
//	sepbench -trace out.json -metrics   # instrumented separator run
//	sepbench -certify                   # self-check one separator run
//	sepbench -certify -engine lipton-tarjan
//	                                    # self-check a specific engine
//	sepbench -engine list               # print the registered engines
//	sepbench -recover -chaos structural=4 -chaos-seed 7
//	                                    # supervised separator under faults
//	sepbench -guard -experiment e1      # admission-guard every instance first
//
// -guard validates every (family, size) instance with the admission guard
// (internal/guard) before the run and exits nonzero printing the typed
// witness on rejection.
//
// -engine selects the separator backend for -certify from the
// internal/sepengine registry; "-engine list" prints the registered
// engines and exits. Unknown engine names fail with an error naming the
// available set.
//
// -certify exits nonzero when a verifier rejects; -recover exits nonzero
// when the supervised runtime exhausts its attempts without a certified
// separator.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"planardfs"
	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/exp"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/sepengine"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sepbench:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "e1", "one of e1,e3,e4,e8,e10,e12,e13")
	sizesFlag := flag.String("sizes", "64,256,1024,4096", "comma-separated vertex counts")
	famFlag := flag.String("families", strings.Join(exp.DefaultFamilies, ","), "comma-separated families")
	trials := flag.Int("trials", 25, "trials/seeds for statistical experiments")
	seed := flag.Int64("seed", 1, "base seed")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of one instrumented separator run (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of the instrumented run")
	certify := flag.Bool("certify", false, "run the Theorem 1 separator on one instance and certify its output (tree + embedding + separator)")
	chaosSpec := flag.String("chaos", "", "fault spec for -recover, e.g. structural=4 (see internal/chaos.ParseSpec)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed deriving the deterministic fault plan")
	recoverRun := flag.Bool("recover", false, "run one supervised separator construction (certify, retry with backoff, fall back fault-free); exits nonzero on recovery exhaustion")
	engine := flag.String("engine", "", "separator engine for -certify (default: the Theorem 1 engine); \"list\" prints the registered engines")
	guardRun := flag.Bool("guard", false, "validate every instance with the admission guard before running; exits nonzero printing the witness on rejection")
	flag.Parse()

	if *engine == "list" {
		for _, name := range sepengine.Names() {
			fmt.Println(name)
		}
		return nil
	}

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		return err
	}
	fams := strings.Split(*famFlag, ",")

	if *guardRun {
		if err := guardAdmit(fams, sizes, *seed); err != nil {
			return err
		}
	}

	if *recoverRun {
		return recoveryRun(fams[0], sizes[len(sizes)-1], *seed, *chaosSpec, *chaosSeed)
	}

	if *certify {
		return certifyRun(fams[0], sizes[len(sizes)-1], *seed, *engine)
	}

	if *traceOut != "" || *metrics {
		rec := trace.NewRecorder()
		sep, err := exp.TraceSeparator(fams[0], sizes[len(sizes)-1], *seed, rec)
		if err != nil {
			return err
		}
		fmt.Printf("traced separator run: %s n=%d sepLen=%d phase=%s rounds=%d spans=%d\n",
			fams[0], sizes[len(sizes)-1], len(sep.Path), sep.Phase, rec.Now(), len(rec.Spans()))
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
		if *metrics {
			rec.WriteMetrics(os.Stdout)
		}
		return nil
	}

	switch *experiment {
	case "e1":
		rows, err := exp.E1(fams, sizes, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E1 — Theorem 1: cycle separator rounds scale with Õ(D)")
		fmt.Printf("%-12s %7s %7s %5s %7s %-15s %12s %12s %10s\n",
			"family", "n", "m", "D", "sepLen", "phase", "paper", "pipelined", "paper/Dlog2")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %7d %5d %7d %-15s %12d %12d %10.2f\n",
				r.Family, r.N, r.M, r.D, r.SepLen, r.Phase, r.PaperRounds, r.PipelinedRounds, r.NormPaper)
		}
	case "e3":
		n := sizes[len(sizes)-1]
		rows, err := exp.E3(fams, n, *trials)
		if err != nil {
			return err
		}
		fmt.Println("E3 — Lemma 1/5: separator balance over random instances")
		fmt.Printf("%-12s %7s %7s %9s %10s %10s  %s\n",
			"family", "n", "trials", "balanced", "worst", "exhaust.", "phases")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %7d %9d %10.3f %10d  %v\n",
				r.Family, r.N, r.Trials, r.Balanced, r.WorstRatio, r.Exhaustive, r.Phases)
		}
	case "e4":
		n := sizes[0]
		rows, err := exp.E4(fams, n, *trials)
		if err != nil {
			return err
		}
		fmt.Println("E4 — Lemmas 3-4: deterministic weight formula exactness")
		fmt.Printf("%-12s %7s %9s %9s\n", "family", "n", "edges", "exact")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %9d %9d\n", r.Family, r.N, r.Edges, r.Exact)
		}
	case "e8":
		n := sizes[len(sizes)-1]
		rows, err := exp.E8("grid", n, []int{1, 4, 16, 64, 256}, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E8 — Prop. 2/4: part-wise aggregation rounds and shortcut quality")
		fmt.Printf("%7s %5s %5s %10s %10s %10s %8s %8s %10s\n",
			"n", "D", "k", "measured", "pipe-est", "paper-est", "cong.", "dilat.", "msgs/node")
		for _, r := range rows {
			fmt.Printf("%7d %5d %5d %10d %10d %10d %8d %8d %10.1f\n",
				r.N, r.D, r.K, r.MeasuredRounds, r.PipelinedEst, r.PaperEst,
				r.MaxCongestion, r.MaxDilation, r.MessagesPerNode)
		}
	case "e10":
		n := sizes[0]
		rows, err := exp.E10("stacked", n, []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}, *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E10 — deterministic vs randomized (sampling) separator")
		fmt.Printf("%7s %8s %7s %9s %9s %11s\n", "n", "rate", "trials", "randOK", "detOK", "avgSamples")
		for _, r := range rows {
			fmt.Printf("%7d %8.2f %7d %9d %9d %11.1f\n",
				r.N, r.SampleRate, r.Trials, r.RandOK, r.DetOK, r.AvgSamples)
		}
	case "e12":
		n := sizes[len(sizes)-1]
		rows, err := exp.E12(fams, n, *seed)
		if err != nil {
			return err
		}
		fmt.Println("E12 — separator size: cycle separator vs BFS-level baseline")
		fmt.Printf("%-12s %7s %5s %9s %9s %10s %10s\n",
			"family", "n", "D", "cycleLen", "levelLen", "cycleBal", "levelBal")
		for _, r := range rows {
			fmt.Printf("%-12s %7d %5d %9d %9d %10.3f %10.3f\n",
				r.Family, r.N, r.D, r.CycleSepLen, r.LevelSepLen, r.CycleBalance, r.LevelBalance)
		}
	case "e13":
		n := sizes[0]
		rows, err := exp.E13(fams, n, *trials)
		if err != nil {
			return err
		}
		fmt.Println("E13 — ablation: each disabled design element forces fallbacks")
		fmt.Printf("%-20s %8s %11s %11s %8s\n", "ablation", "trials", "exhaustive", "unbalanced", "errors")
		for _, r := range rows {
			fmt.Printf("%-20s %8d %11d %11d %8d\n", r.Ablation, r.Trials, r.Exhaustive, r.Unbalanced, r.Errors)
		}
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

// certifyRun finds a cycle separator of one generated instance with the
// named engine (empty: the Theorem 1 engine) and runs the distributed
// certification verifiers on the BFS tree of the configuration, the
// embedding, and the separator itself.
func certifyRun(family string, n int, seed int64, engine string) error {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return err
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tree, err := spanning.BFSTree(in.G, root)
	if err != nil {
		return err
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tree)
	if err != nil {
		return err
	}
	res, err := sepengine.Find(engine, cfg, sepengine.Options{Seed: seed})
	if err != nil {
		return err
	}
	sep := res.Sep
	fmt.Printf("certifying separator run: %s n=%d m=%d engine=%s sepLen=%d phase=%s balance=%.3f rounds=%d\n",
		in.Name, in.G.N(), in.G.M(), res.Engine, len(sep.Path), sep.Phase, res.Balance, res.Rounds)
	verdicts := make([]*cert.Verdict, 0, 3)
	tv, err := cert.CertifySpanningTree(in.G, tree, cert.Options{})
	if err != nil {
		return err
	}
	verdicts = append(verdicts, tv)
	ev, err := cert.CertifyEmbedding(in.Emb, cert.Options{})
	if err != nil {
		return err
	}
	verdicts = append(verdicts, ev)
	sv, err := cert.CertifySeparator(in.G, sep, cert.Options{})
	if err != nil {
		return err
	}
	verdicts = append(verdicts, sv)
	rejected := false
	for _, v := range verdicts {
		printVerdict(v)
		rejected = rejected || !v.OK
	}
	if rejected {
		return fmt.Errorf("certification rejected the run")
	}
	return nil
}

// separatorStage wraps one Theorem 1 separator construction as a
// supervised stage: the plan's structural faults corrupt the claimed cycle
// path (decaying across attempts), and the separator proof-labeling scheme
// decides acceptance. A nil plan yields the fault-free fallback stage.
func separatorStage(g *gen.Instance, cfg *weights.Config, rounds int, plan *chaos.Plan) chaos.Stage[*separator.Separator] {
	var structural chaos.Counts
	return chaos.Stage[*separator.Separator]{
		Name:          "separator",
		DefaultBudget: 10*g.G.N() + 100,
		Run: func(attempt, budget int) (*separator.Separator, int, error) {
			sep, err := separator.Find(cfg)
			if err != nil {
				return nil, 0, err
			}
			out := *sep
			out.Path = append([]int(nil), sep.Path...)
			structural.Structural += int64(plan.CorruptInts(attempt, g.G.N(), out.Path))
			return &out, rounds, nil
		},
		Certify: func(sep *separator.Separator) (chaos.Certification, error) {
			v, err := cert.CertifySeparator(g.G, sep, cert.Options{})
			if err != nil {
				// A corrupted path can break the prover itself; that is an
				// explicit rejection, not an infrastructure failure.
				return chaos.Certification{Detail: "structural precheck: " + err.Error()}, nil
			}
			return chaos.FromVerdict(v), nil
		},
		Faults: func() chaos.Counts { return structural },
	}
}

// recoveryRun executes one separator construction under the supervised
// recovery runtime and prints the per-attempt report.
func recoveryRun(family string, n int, seed int64, spec string, chaosSeed int64) error {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return err
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tree, err := spanning.BFSTree(in.G, root)
	if err != nil {
		return err
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tree)
	if err != nil {
		return err
	}
	var plan *chaos.Plan
	if spec != "" {
		s, err := chaos.ParseSpec(spec)
		if err != nil {
			return err
		}
		s.Protect = []int{root} // the root survives: crashes land elsewhere
		plan = chaos.NewPlan(chaosSeed, s)
	}
	rounds := planardfs.SeparatorRounds(in.G.N(), planardfs.PaperCost{D: tree.MaxDepth(), N: in.G.N()}, 1)
	fmt.Printf("supervised separator run: %s n=%d m=%d root=%d\n", in.Name, in.G.N(), in.G.M(), root)
	primary := separatorStage(in, cfg, rounds, plan)
	fallback := separatorStage(in, cfg, rounds, nil) // fault-free baseline
	sep, rep, err := chaos.RunWithRecovery(primary, &fallback, chaos.Policy{})
	if err != nil {
		return err
	}
	printReport(rep)
	if rep.Outcome == chaos.OutcomeFailed {
		return fmt.Errorf("recovery exhausted after %d attempts", len(rep.Attempts))
	}
	fmt.Printf("recovered separator: len=%d phase=%s\n", len(sep.Path), sep.Phase)
	return nil
}

// printReport summarizes a supervised run, one line per attempt.
func printReport(rep *chaos.Report) {
	fmt.Printf("recovery: outcome=%s attempts=%d faults[%s]\n",
		rep.Outcome, len(rep.Attempts), rep.Faults)
	for _, a := range rep.Attempts {
		status := "accepted"
		if !a.Accepted {
			status = "rejected"
			if a.Err != "" {
				status += ": " + a.Err
			}
		}
		fmt.Printf("  %s attempt %d: budget=%d rounds=%d faults=%d %s\n",
			a.Stage, a.Attempt, a.Budget, a.Rounds, a.Faults.Total(), status)
	}
}

// printVerdict reports one certification verdict on stdout.
func printVerdict(v *cert.Verdict) {
	status := "ACCEPT"
	if !v.OK {
		status = fmt.Sprintf("REJECT at %v", v.Rejectors)
	}
	fmt.Printf("certify %s: %s labelWords=%d proverRounds=%d verifierRounds=%d aggRounds=%d msgs=%d\n",
		v.Scheme, status, v.LabelWords, v.ProverRounds, v.VerifierRounds, v.AggRounds, v.Stats.Messages)
}

// guardAdmit validates every (family, size) instance the run will touch
// with the admission guard. A rejection prints the typed witness and fails
// the command before any experiment runs on the bad input.
func guardAdmit(fams []string, sizes []int, seed int64) error {
	for _, fam := range fams {
		for _, n := range sizes {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return err
			}
			v, err := planardfs.ValidateEmbedding(in, planardfs.GuardOptions{Seed: seed})
			if err != nil {
				return err
			}
			if !v.OK {
				fmt.Fprintf(os.Stderr, "guard: REJECT %s n=%d reason=%s detail=%q\n",
					in.Name, in.G.N(), v.Witness.Reason, v.Witness.Detail)
				return fmt.Errorf("input rejected by the admission guard: %w", v.Err())
			}
			fmt.Printf("guard: accept %s n=%d rounds=%d msgs=%d\n",
				in.Name, in.G.N(), v.Rounds, v.Messages)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		x, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}
