package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLI(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestRecoverCLI drives the supervised separator end to end: corrupting
// the claimed cycle path makes the separator scheme reject, and the
// runtime retries with a decaying burst or falls back to the fault-free
// stage — never exiting zero with an uncertified separator.
func TestRecoverCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/sepbench")

	out, err := exec.Command(bin, "-recover", "-families", "grid", "-sizes", "64").CombinedOutput()
	if err != nil {
		t.Fatalf("fault-free -recover: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "outcome=certified") {
		t.Fatalf("fault-free run did not certify:\n%s", out)
	}

	out, err = exec.Command(bin, "-recover", "-families", "grid", "-sizes", "64",
		"-chaos", "structural=6", "-chaos-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("faulted -recover should self-heal, got: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "rejected") {
		t.Fatalf("path corruption never rejected an attempt:\n%s", s)
	}
	if !strings.Contains(s, "outcome=certified-after-retry") && !strings.Contains(s, "outcome=degraded") {
		t.Fatalf("expected a retry or degraded outcome:\n%s", s)
	}
	if !strings.Contains(s, "recovered separator: len=") {
		t.Fatalf("no recovered separator reported:\n%s", s)
	}
}

// TestCertifyCLI checks the plain -certify path exits zero with ACCEPT
// verdicts for all three schemes (tree, embedding, separator).
func TestCertifyCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t, "planardfs/cmd/sepbench")
	out, err := exec.Command(bin, "-certify", "-families", "grid", "-sizes", "64").CombinedOutput()
	if err != nil {
		t.Fatalf("-certify: %v\n%s", err, out)
	}
	if strings.Count(string(out), "ACCEPT") < 3 {
		t.Fatalf("expected three ACCEPT verdicts:\n%s", out)
	}
}
