package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"planardfs/internal/serve"
)

// The -serve mode measures the simulation service end to end over a real
// HTTP round trip: one cold build of the full decomposition pipeline per
// family, then cached queries against the content-addressed store. The
// headline number is the cached-query speedup — how many LCA or
// separator-membership answers one cold pipeline execution buys.

// ServeEntry is one family measurement of BENCH_serve.json.
type ServeEntry struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Hash   string `json:"hash"`
	// ColdBuildNs is the wall time of the cold pipeline execution
	// (submit-to-done, measured server side).
	ColdBuildNs int64 `json:"cold_build_ns"`
	// Rounds is the charged paper-model round cost of the build.
	Rounds int `json:"rounds"`
	// Cached query latencies, ns per HTTP round trip.
	LCANsPerOp       int64 `json:"lca_ns_per_op"`
	SeparatorNsPerOp int64 `json:"separator_ns_per_op"`
	OrderNsPerOp     int64 `json:"order_ns_per_op"`
	CertNsPerOp      int64 `json:"cert_ns_per_op"`
	// Speedups: cold build time over cached query time.
	SpeedupLCA       float64 `json:"speedup_lca"`
	SpeedupSeparator float64 `json:"speedup_separator"`
	// Cache behaviour over the whole run (1 miss + the resubmissions).
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// Queue admission latency for the resubmission burst.
	QueueWaitMeanUs float64 `json:"queue_wait_mean_us"`
	QueueWaitMaxUs  int64   `json:"queue_wait_max_us"`
}

// ServeFile is the schema of BENCH_serve.json.
type ServeFile struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Workers   int          `json:"workers"`
	Entries   []ServeEntry `json:"entries"`
}

// runServe measures each family at size n through a live server.
func runServe(out string, n int, families string, workers int) error {
	if workers <= 0 {
		workers = 2
	}
	file := ServeFile{
		Schema:    "planardfs/bench-serve/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
	}
	for _, fam := range strings.Split(families, ",") {
		e, err := measureServe(fam, n, workers)
		if err != nil {
			return fmt.Errorf("serve/%s: %w", fam, err)
		}
		file.Entries = append(file.Entries, e)
		fmt.Fprintf(os.Stderr,
			"serve %-12s n=%d cold=%.0fms lca=%.1fus sep=%.1fus speedup=%.0fx hit-rate=%.3f\n",
			e.Family, e.N, float64(e.ColdBuildNs)/1e6,
			float64(e.LCANsPerOp)/1e3, float64(e.SeparatorNsPerOp)/1e3,
			e.SpeedupLCA, e.HitRate)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func measureServe(family string, n, workers int) (ServeEntry, error) {
	s := serve.New(serve.Options{Workers: workers, QueueDepth: 128})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"family":%q,"n":%d,"seed":1}`, family, n)
	submit := func() (serve.JobStatus, error) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return serve.JobStatus{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return serve.JobStatus{}, fmt.Errorf("submit status %d", resp.StatusCode)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		return st, err
	}
	await := func(id string) (serve.JobStatus, error) {
		for i := 0; i < 24000; i++ {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				return serve.JobStatus{}, err
			}
			var st serve.JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return serve.JobStatus{}, err
			}
			switch st.State {
			case serve.StateDone:
				return st, nil
			case serve.StateFailed, serve.StateCanceled:
				return st, fmt.Errorf("job %s: %s (%s)", id, st.State, st.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
		return serve.JobStatus{}, fmt.Errorf("job %s did not finish", id)
	}

	// Cold build.
	st, err := submit()
	if err != nil {
		return ServeEntry{}, err
	}
	fin, err := await(st.ID)
	if err != nil {
		return ServeEntry{}, err
	}
	base := ts.URL + "/v1/graphs/" + fin.Hash

	var sum serve.GraphSummary
	resp, err := http.Get(base)
	if err != nil {
		return ServeEntry{}, err
	}
	err = json.NewDecoder(resp.Body).Decode(&sum)
	resp.Body.Close()
	if err != nil {
		return ServeEntry{}, err
	}

	// Cached queries over one warm HTTP client.
	client := &http.Client{}
	query := func(url string) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				// Drain so the keep-alive connection is reused; the
				// measurement is the HTTP round trip, not dial cost.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	u, v := 0, sum.N-1
	lcaRes := testing.Benchmark(query(fmt.Sprintf("%s/query/lca?u=%d&v=%d", base, u, v)))
	sepRes := testing.Benchmark(query(fmt.Sprintf("%s/query/separator?v=%d", base, v/2)))
	ordRes := testing.Benchmark(query(fmt.Sprintf("%s/query/order?v=%d", base, v/3)))
	certRes := testing.Benchmark(query(base + "/query/cert"))

	// Resubmission burst: every one is a hit on the same content hash.
	const resubmits = 16
	for i := 0; i < resubmits; i++ {
		st, err := submit()
		if err != nil {
			return ServeEntry{}, err
		}
		if _, err := await(st.ID); err != nil {
			return ServeEntry{}, err
		}
	}

	m := s.Metrics()
	hits := m.Counter("serve.cache.hits") + m.Counter("serve.cache.joined")
	misses := m.Counter("serve.cache.misses")
	coldNS := int64(sum.BuildMicros) * 1000
	e := ServeEntry{
		Family:           family,
		N:                sum.N,
		M:                sum.M,
		Hash:             fin.Hash,
		ColdBuildNs:      coldNS,
		Rounds:           sum.Rounds,
		LCANsPerOp:       lcaRes.NsPerOp(),
		SeparatorNsPerOp: sepRes.NsPerOp(),
		OrderNsPerOp:     ordRes.NsPerOp(),
		CertNsPerOp:      certRes.NsPerOp(),
		CacheHits:        hits,
		CacheMisses:      misses,
	}
	if e.LCANsPerOp > 0 {
		e.SpeedupLCA = float64(coldNS) / float64(e.LCANsPerOp)
	}
	if e.SeparatorNsPerOp > 0 {
		e.SpeedupSeparator = float64(coldNS) / float64(e.SeparatorNsPerOp)
	}
	if hits+misses > 0 {
		e.HitRate = float64(hits) / float64(hits+misses)
	}
	if h := m.Histogram("serve.latency.queue_wait_us"); h != nil && h.N > 0 {
		e.QueueWaitMeanUs = h.Mean()
		e.QueueWaitMaxUs = h.Max
	}
	return e, nil
}
