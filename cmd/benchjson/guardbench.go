package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"planardfs/internal/chaos"
	"planardfs/internal/dfs"
	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/guard"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
)

// GuardEntry is one (family, case, n) admission-guard measurement. The
// "valid" case validates a correct generator instance (the guard must
// accept) and reports the guard's round/message cost next to the charged
// paper-model rounds of the Theorem 2 DFS build it fronts, so the overhead
// column is the price of admission relative to the pipeline itself. The
// corrupted cases measure rejection latency: how much work the guard does
// before producing a typed witness on an adversarial input.
type GuardEntry struct {
	Family   string `json:"family"`
	Case     string `json:"case"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Accepted bool   `json:"accepted"`
	// Reason is the witness class of a rejection, empty when accepted.
	Reason string `json:"reason,omitempty"`
	// GuardRounds/GuardMessages are the deterministic CONGEST cost of the
	// guard's distributed checks under the pinned options.
	GuardRounds   int   `json:"guard_rounds"`
	GuardMessages int64 `json:"guard_messages"`
	// PipelineRounds is the charged Õ(D) round cost of the Theorem 2 DFS
	// build on the same instance; valid rows only.
	PipelineRounds int     `json:"pipeline_rounds,omitempty"`
	Overhead       float64 `json:"overhead,omitempty"`
	NsPerOp        int64   `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

// GuardFile is the schema of BENCH_guard.json.
type GuardFile struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Entries   []GuardEntry `json:"entries"`
}

// guardBenchOptions pins the tester configuration the baseline is defined
// against: deterministic centers and every vertex probed, so the rows are
// machine-independent in everything but the measured per-op columns.
func guardBenchOptions() guard.Options {
	return guard.Options{Seed: 1, Exhaustive: true}
}

func runGuard(out, families, sizesFlag string) error {
	file := GuardFile{
		Schema:    "planardfs/bench-guard/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, fam := range strings.Split(families, ",") {
		for _, szStr := range strings.Split(sizesFlag, ",") {
			var sz int
			if _, err := fmt.Sscanf(strings.TrimSpace(szStr), "%d", &sz); err != nil {
				return fmt.Errorf("bad -guard-sizes entry %q: %w", szStr, err)
			}
			entries, err := measureGuardFamily(fam, sz)
			if err != nil {
				return fmt.Errorf("%s/%d: %w", fam, sz, err)
			}
			file.Entries = append(file.Entries, entries...)
			for _, e := range entries {
				fmt.Fprintf(os.Stderr, "%-12s %-18s n=%-5d accepted=%-5v rounds=%-3d msgs=%-6d %.2fms/op\n",
					e.Family, e.Case, e.N, e.Accepted, e.GuardRounds, e.GuardMessages,
					float64(e.NsPerOp)/1e6)
			}
		}
	}
	// The dense-region row is family-independent: a K7 planted on a path,
	// caught by the ball tester rather than the global edge count.
	e, err := measureGuardDense(64)
	if err != nil {
		return fmt.Errorf("dense-region: %w", err)
	}
	file.Entries = append(file.Entries, e)
	fmt.Fprintf(os.Stderr, "%-12s %-18s n=%-5d accepted=%-5v rounds=%-3d msgs=%-6d %.2fms/op\n",
		e.Family, e.Case, e.N, e.Accepted, e.GuardRounds, e.GuardMessages,
		float64(e.NsPerOp)/1e6)

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// measureGuardFamily produces the valid-acceptance row plus the two
// rotation-corruption rejection rows for one (family, n).
func measureGuardFamily(family string, n int) ([]GuardEntry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return nil, err
	}
	opt := guardBenchOptions()

	valid, err := measureGuardCase(family, "valid", in.G, gen.WireOf(in).Rotations, opt, true)
	if err != nil {
		return nil, err
	}
	// Charged pipeline rounds of the build the guard fronts, for the
	// overhead column.
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	_, tr, err := dfs.Build(in.G, in.Emb, in.OuterDart, root)
	if err != nil {
		return nil, err
	}
	bt, err := spanning.BFSTree(in.G, root)
	if err != nil {
		return nil, err
	}
	cm := shortcut.PaperCost{D: bt.MaxDepth(), N: in.G.N()}
	valid.PipelineRounds = dist.DFSBuildOps(in.G.N(), tr.Phases, tr.MaxJoinSubPhases).Rounds(cm, 1)
	if valid.PipelineRounds > 0 {
		valid.Overhead = float64(valid.GuardRounds) / float64(valid.PipelineRounds)
	}
	entries := []GuardEntry{valid}

	// Rejection latency on a retargeted dart: the distributed rotation
	// check catches it in the one exchange round.
	rot := gen.WireOf(in).Rotations
	if chaos.NewPlan(41, chaos.Spec{Structural: 2}).RetargetDarts(1, in.G.N(), rot) == 0 {
		return nil, fmt.Errorf("retarget applied nothing")
	}
	e, err := measureGuardCase(family, "retargeted-dart", in.G, rot, opt, false)
	if err != nil {
		return nil, err
	}
	entries = append(entries, e)

	// Rejection latency on a permutation-preserving splice that raises the
	// genus: every local check passes and the Euler certification is what
	// rejects, the guard's most expensive path.
	spliced, ok := splicedRotations(in, family)
	if ok {
		e, err := measureGuardCase(family, "genus-splice", in.G, spliced, opt, false)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// splicedRotations searches deterministic seeds for a rotation splice that
// leaves every rotation a permutation of its neighbourhood but lifts the
// embedding off the sphere. Some families (trees, tiny instances) admit no
// such corruption; those report ok=false and skip the row.
func splicedRotations(in *gen.Instance, family string) ([][]int, bool) {
	for seed := int64(1); seed < 100; seed++ {
		rot := gen.WireOf(in).Rotations
		p := chaos.NewPlan(seed, chaos.Spec{Structural: 4})
		if p.SpliceFaces(1, rot) == 0 && p.SpliceRotations(2, rot) == 0 {
			continue
		}
		v, err := guard.ValidateRotations(in.G, rot, guardBenchOptions())
		if err == nil && !v.OK && v.Witness.Reason == guard.ReasonEuler {
			return rot, true
		}
	}
	return nil, false
}

// measureGuardDense benchmarks the dense-region rejection: a K7 planted on
// a path, invisible to the global edge count but over the planar bound
// inside a radius-1 ball.
func measureGuardDense(n int) (GuardEntry, error) {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if _, err := g.AddEdge(v, v+1); err != nil {
			return GuardEntry{}, err
		}
	}
	for u := 0; u < 7; u++ {
		for v := u + 1; v < 7; v++ {
			if _, dup := g.EdgeID(u, v); !dup {
				if _, err := g.AddEdge(u, v); err != nil {
					return GuardEntry{}, err
				}
			}
		}
	}
	rot := make([][]int, n)
	for v := 0; v < n; v++ {
		rot[v] = append([]int(nil), g.Neighbors(v)...)
	}
	return measureGuardCase("k7-plant", "dense-region", g, rot, guardBenchOptions(), false)
}

// measureGuardCase benchmarks one ValidateRotations call and checks the
// verdict matches the expected polarity before trusting the numbers.
func measureGuardCase(family, kind string, g *graph.Graph, rot [][]int, opt guard.Options, wantOK bool) (GuardEntry, error) {
	probe, err := guard.ValidateRotations(g, rot, opt)
	if err != nil {
		return GuardEntry{}, err
	}
	if probe.OK != wantOK {
		return GuardEntry{}, fmt.Errorf("%s/%s: verdict OK=%v, want %v (%v)", family, kind, probe.OK, wantOK, probe.Witness)
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := guard.ValidateRotations(g, rot, opt); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return GuardEntry{}, benchErr
	}
	e := GuardEntry{
		Family:        family,
		Case:          kind,
		N:             g.N(),
		M:             g.M(),
		Accepted:      probe.OK,
		GuardRounds:   probe.Rounds,
		GuardMessages: probe.Messages,
		NsPerOp:       res.NsPerOp(),
		BytesPerOp:    res.AllocedBytesPerOp(),
		AllocsPerOp:   res.AllocsPerOp(),
	}
	if !probe.OK {
		e.Reason = string(probe.Witness.Reason)
	}
	return e, nil
}
