// Command benchjson measures the CONGEST round engine over the standard
// generator families and emits a machine-readable performance baseline.
// For each (program, family) pair it records the deterministic round and
// message counts of the run together with measured wall-clock and allocator
// numbers from a testing.Benchmark harness, so `benchjson -o
// BENCH_congest.json` regenerates the committed baseline in one step.
//
// With -cert the command instead measures the certification layer
// (internal/cert): for each (scheme, family) pair it proves and verifies a
// correct output and records label width, charged prover rounds, measured
// verifier rounds and the verification message volume, so `benchjson -cert
// -o BENCH_cert.json` regenerates that baseline.
//
// Usage:
//
//	benchjson -o BENCH_congest.json
//	benchjson -n 2048 -families grid,stacked -programs bfs,dfs
//	benchjson -cert -o BENCH_cert.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// Entry is one (program, family) measurement. Rounds/messages/words are
// deterministic properties of the run; the per-op numbers are measured on
// the machine named by the file header.
type Entry struct {
	Program           string  `json:"program"`
	Family            string  `json:"family"`
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	Rounds            int     `json:"rounds"`
	Messages          int64   `json:"messages"`
	Words             int64   `json:"words"`
	MaxEdgeCongestion int64   `json:"max_edge_congestion"`
	NsPerOp           int64   `json:"ns_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	RoundsPerSec      float64 `json:"rounds_per_sec"`
	MessagesPerSec    float64 `json:"messages_per_sec"`
}

// File is the schema of BENCH_congest.json.
type File struct {
	Schema    string  `json:"schema"`
	Engine    string  `json:"engine"`
	Workers   int     `json:"workers"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Entries   []Entry `json:"entries"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	n := flag.Int("n", 1024, "approximate vertex count per instance")
	families := flag.String("families", "grid,cylinderish,stacked", "comma-separated generator families")
	programs := flag.String("programs", "bfs,pa,dfs", "comma-separated programs (bfs,pa,dfs)")
	seq := flag.Bool("seq", false, "use the sequential reference engine")
	workers := flag.Int("workers", 0, "worker count for the sharded engine (0 = NumCPU)")
	certMode := flag.Bool("cert", false, "benchmark the certification layer instead of the round engine")
	flag.Parse()

	if *certMode {
		return runCert(*out, *n, *families, *seq, *workers)
	}

	file := File{
		Schema:    "planardfs/bench-congest/v1",
		Engine:    "parallel",
		Workers:   *workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if *seq {
		file.Engine = "sequential"
	}
	for _, fam := range strings.Split(*families, ",") {
		for _, prog := range strings.Split(*programs, ",") {
			e, err := measure(prog, fam, *n, *seq, *workers)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", prog, fam, err)
			}
			file.Entries = append(file.Entries, e)
			fmt.Fprintf(os.Stderr, "%-4s %-12s n=%d rounds=%d msgs=%d %.2fms/op %d allocs/op\n",
				e.Program, e.Family, e.N, e.Rounds, e.Messages,
				float64(e.NsPerOp)/1e6, e.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func measure(program, family string, n int, seq bool, workers int) (Entry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return Entry{}, err
	}
	g := in.G

	var build func(nw *congest.Network) []congest.Node
	var budget int
	switch program {
	case "bfs":
		build = func(nw *congest.Network) []congest.Node { return congest.NewBFSNodes(nw, 0) }
		budget = 10*g.N() + 100
	case "pa":
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return Entry{}, err
		}
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % 16
			value[v] = 1
		}
		build = func(nw *congest.Network) []congest.Node {
			return congest.NewPANodes(nw, tree.Parent, 0, partOf, value, congest.OpSum)
		}
		budget = 100*g.N() + 1000
	case "dfs":
		build = func(nw *congest.Network) []congest.Node { return congest.NewAwerbuchNodes(nw, 0) }
		budget = 10 * g.N()
	default:
		return Entry{}, fmt.Errorf("unknown program %q", program)
	}

	var st congest.Stats
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		nw := congest.New(g)
		nw.Parallel = !seq
		nw.Workers = workers
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Run(build(nw), budget); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
		st = nw.Stats()
	})
	if benchErr != nil {
		return Entry{}, benchErr
	}
	nsPerOp := res.NsPerOp()
	e := Entry{
		Program:           program,
		Family:            family,
		N:                 g.N(),
		M:                 g.M(),
		Rounds:            st.Rounds,
		Messages:          st.Messages,
		Words:             st.Words,
		MaxEdgeCongestion: st.MaxEdgeCongestion,
		NsPerOp:           nsPerOp,
		BytesPerOp:        res.AllocedBytesPerOp(),
		AllocsPerOp:       res.AllocsPerOp(),
	}
	if nsPerOp > 0 {
		e.RoundsPerSec = float64(st.Rounds) / (float64(nsPerOp) / 1e9)
		e.MessagesPerSec = float64(st.Messages) / (float64(nsPerOp) / 1e9)
	}
	return e, nil
}

// CertEntry is one (scheme, family) certification measurement. Label width
// and round counts are deterministic properties of the scheme; ns/alloc
// numbers are measured on the machine named by the file header.
type CertEntry struct {
	Scheme         string `json:"scheme"`
	Family         string `json:"family"`
	N              int    `json:"n"`
	M              int    `json:"m"`
	LabelWords     int    `json:"label_words"`
	ProverRounds   int    `json:"prover_rounds"`
	VerifierRounds int    `json:"verifier_rounds"`
	AggRounds      int    `json:"agg_rounds"`
	Messages       int64  `json:"messages"`
	Words          int64  `json:"words"`
	NsPerOp        int64  `json:"ns_per_op"`
	BytesPerOp     int64  `json:"bytes_per_op"`
	AllocsPerOp    int64  `json:"allocs_per_op"`
}

// CertFile is the schema of BENCH_cert.json.
type CertFile struct {
	Schema    string      `json:"schema"`
	Engine    string      `json:"engine"`
	Workers   int         `json:"workers"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Entries   []CertEntry `json:"entries"`
}

var certSchemes = []string{"spanning", "dfs", "separator", "embedding"}

func runCert(out string, n int, families string, seq bool, workers int) error {
	file := CertFile{
		Schema:    "planardfs/bench-cert/v1",
		Engine:    "parallel",
		Workers:   workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if seq {
		file.Engine = "sequential"
	}
	for _, fam := range strings.Split(families, ",") {
		for _, scheme := range certSchemes {
			e, err := measureCert(scheme, fam, n, seq, workers)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", scheme, fam, err)
			}
			file.Entries = append(file.Entries, e)
			fmt.Fprintf(os.Stderr, "%-10s %-12s n=%d words=%d verify=%d agg=%d %.2fms/op %d allocs/op\n",
				e.Scheme, e.Family, e.N, e.LabelWords, e.VerifierRounds, e.AggRounds,
				float64(e.NsPerOp)/1e6, e.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// measureCert prepares one correct output for the scheme and benchmarks the
// full prove-and-verify certification of it.
func measureCert(scheme, family string, n int, seq bool, workers int) (CertEntry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return CertEntry{}, err
	}
	g := in.G
	opt := cert.Options{Sequential: seq, Workers: workers}

	var certify func() (*cert.Verdict, error)
	switch scheme {
	case "spanning":
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifySpanningTree(g, tree, opt) }
	case "dfs":
		tree, err := spanning.DeepDFSTree(g, 0)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifyDFSTree(g, 0, tree.Parent, opt) }
	case "separator":
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.OuterFace())[0]
		tree, err := spanning.BFSTree(g, root)
		if err != nil {
			return CertEntry{}, err
		}
		cfg, err := weights.NewConfig(g, in.Emb, in.OuterDart, tree)
		if err != nil {
			return CertEntry{}, err
		}
		sep, err := separator.Find(cfg)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifySeparator(g, sep, opt) }
	case "embedding":
		certify = func() (*cert.Verdict, error) { return cert.CertifyEmbedding(in.Emb, opt) }
	default:
		return CertEntry{}, fmt.Errorf("unknown scheme %q", scheme)
	}

	var verdict *cert.Verdict
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := certify()
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			if !v.OK {
				benchErr = fmt.Errorf("correct output rejected at %v", v.Rejectors)
				b.Fatal(benchErr)
			}
			verdict = v
		}
	})
	if benchErr != nil {
		return CertEntry{}, benchErr
	}
	return CertEntry{
		Scheme:         scheme,
		Family:         family,
		N:              g.N(),
		M:              g.M(),
		LabelWords:     verdict.LabelWords,
		ProverRounds:   verdict.ProverRounds,
		VerifierRounds: verdict.VerifierRounds,
		AggRounds:      verdict.AggRounds,
		Messages:       verdict.Stats.Messages,
		Words:          verdict.Stats.Words,
		NsPerOp:        res.NsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		AllocsPerOp:    res.AllocsPerOp(),
	}, nil
}
