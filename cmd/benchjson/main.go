// Command benchjson measures the CONGEST round engine over the standard
// generator families and emits a machine-readable performance baseline.
// For each (program, family) pair it records the deterministic round and
// message counts of the run together with measured wall-clock and allocator
// numbers from a testing.Benchmark harness, so `benchjson -o
// BENCH_congest.json` regenerates the committed baseline in one step.
//
// With -cert the command instead measures the certification layer
// (internal/cert): for each (scheme, family) pair it proves and verifies a
// correct output and records label width, charged prover rounds, measured
// verifier rounds and the verification message volume, so `benchjson -cert
// -o BENCH_cert.json` regenerates that baseline.
//
// With -chaos it measures the supervised recovery runtime (internal/chaos):
// for each (program, family, fault-spec) triple it runs the full
// execute-certify-retry loop under a deterministic fault plan and records
// the outcome, attempt count, total rounds across attempts and the round
// overhead relative to the fault-free run of the same stage, so `benchjson
// -chaos -o BENCH_chaos.json` regenerates that baseline.
//
// With -serve it measures the simulation service (internal/serve) end to
// end over HTTP: one cold decomposition build per family, then cached LCA,
// separator-membership, order and cert queries against the
// content-addressed store, plus a resubmission burst for the cache
// hit-rate, so `benchjson -serve -n 10000 -o BENCH_serve.json` regenerates
// that baseline.
//
// With -engines it measures the separator engine registry
// (internal/sepengine): for every (engine, family, size) cell it runs the
// engine on a fresh configuration and records wall time, cycle length,
// achieved balance and the distributed certification verdict of the
// output. Engines that legitimately fail on a family record a
// "no-separator" row — honest gaps in an engine's coverage are part of the
// committed matrix. `benchjson -engines -families
// wheel,grid,cylinderish,stacked,polygon -o BENCH_engines.json`
// regenerates that baseline.
//
// With -guard it measures the admission guard (internal/guard): for each
// (family, size) pair one acceptance row records the guard's CONGEST
// round/message cost next to the charged paper-model rounds of the
// Theorem 2 DFS build it fronts (the overhead column), and rejection rows
// record the latency to a typed witness on adversarial inputs — a
// retargeted dart, a genus-raising rotation splice, and a planted dense
// region. `benchjson -guard -o BENCH_guard.json` regenerates that
// baseline.
//
// Usage:
//
//	benchjson -o BENCH_congest.json
//	benchjson -n 2048 -families grid,stacked -programs bfs,dfs
//	benchjson -cert -o BENCH_cert.json
//	benchjson -chaos -n 256 -families grid,cylinderish -o BENCH_chaos.json
//	benchjson -serve -n 10000 -families grid,stacked -o BENCH_serve.json
//	benchjson -engines -families wheel,grid,stacked -engine-sizes 256,1024
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/congest"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/sepengine"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// Entry is one (program, family) measurement. Rounds/messages/words are
// deterministic properties of the run; the per-op numbers are measured on
// the machine named by the file header.
type Entry struct {
	Program           string  `json:"program"`
	Family            string  `json:"family"`
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	Rounds            int     `json:"rounds"`
	Messages          int64   `json:"messages"`
	Words             int64   `json:"words"`
	MaxEdgeCongestion int64   `json:"max_edge_congestion"`
	NsPerOp           int64   `json:"ns_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	RoundsPerSec      float64 `json:"rounds_per_sec"`
	MessagesPerSec    float64 `json:"messages_per_sec"`
}

// File is the schema of BENCH_congest.json.
type File struct {
	Schema    string  `json:"schema"`
	Engine    string  `json:"engine"`
	Workers   int     `json:"workers"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Entries   []Entry `json:"entries"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	n := flag.Int("n", 1024, "approximate vertex count per instance")
	families := flag.String("families", "grid,cylinderish,stacked", "comma-separated generator families")
	programs := flag.String("programs", "bfs,pa,dfs", "comma-separated programs (bfs,pa,dfs)")
	seq := flag.Bool("seq", false, "use the sequential reference engine")
	workers := flag.Int("workers", 0, "worker count for the sharded engine (0 = NumCPU)")
	certMode := flag.Bool("cert", false, "benchmark the certification layer instead of the round engine")
	chaosMode := flag.Bool("chaos", false, "benchmark the supervised recovery runtime instead of the round engine")
	serveMode := flag.Bool("serve", false, "benchmark the simulation service (cold build vs cached queries) instead of the round engine")
	enginesMode := flag.Bool("engines", false, "benchmark the separator engine registry (engine x family x size matrix) instead of the round engine")
	engineSizes := flag.String("engine-sizes", "256,1024", "comma-separated vertex counts for the -engines matrix")
	guardMode := flag.Bool("guard", false, "benchmark the admission guard (acceptance overhead and rejection latency) instead of the round engine")
	guardSizes := flag.String("guard-sizes", "64,256", "comma-separated vertex counts for the -guard matrix")
	scaling := flag.Bool("scaling", false, "append scaling rows: instance construction across -sizes, plus BFS runs up to -scale-bfs-max")
	sizes := flag.String("sizes", "1000,10000,100000,1000000", "comma-separated vertex counts for -scaling rows")
	scaleBFSMax := flag.Int("scale-bfs-max", 1000000, "largest -scaling size that also gets a BFS round-engine row")
	flag.Parse()

	if *certMode {
		return runCert(*out, *n, *families, *seq, *workers)
	}
	if *chaosMode {
		return runChaos(*out, *n, *families, *seq, *workers)
	}
	if *serveMode {
		return runServe(*out, *n, *families, *workers)
	}
	if *enginesMode {
		return runEngines(*out, *families, *engineSizes)
	}
	if *guardMode {
		return runGuard(*out, *families, *guardSizes)
	}

	file := File{
		Schema:    "planardfs/bench-congest/v1",
		Engine:    "parallel",
		Workers:   *workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if *seq {
		file.Engine = "sequential"
	}
	for _, fam := range strings.Split(*families, ",") {
		for _, prog := range strings.Split(*programs, ",") {
			e, err := measure(prog, fam, *n, *seq, *workers)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", prog, fam, err)
			}
			file.Entries = append(file.Entries, e)
			fmt.Fprintf(os.Stderr, "%-4s %-12s n=%d rounds=%d msgs=%d %.2fms/op %d allocs/op\n",
				e.Program, e.Family, e.N, e.Rounds, e.Messages,
				float64(e.NsPerOp)/1e6, e.AllocsPerOp)
		}
	}
	if *scaling {
		for _, fam := range strings.Split(*families, ",") {
			for _, szStr := range strings.Split(*sizes, ",") {
				var sz int
				if _, err := fmt.Sscanf(strings.TrimSpace(szStr), "%d", &sz); err != nil {
					return fmt.Errorf("bad -sizes entry %q: %w", szStr, err)
				}
				e, err := measureConstruct(fam, sz)
				if err != nil {
					return fmt.Errorf("construct %s/%d: %w", fam, sz, err)
				}
				file.Entries = append(file.Entries, e)
				fmt.Fprintf(os.Stderr, "%-9s %-12s n=%d %.2fms/op %d allocs/op\n",
					e.Program, e.Family, e.N, float64(e.NsPerOp)/1e6, e.AllocsPerOp)
				if sz > *scaleBFSMax {
					continue
				}
				be, err := measure("bfs", fam, sz, *seq, *workers)
				if err != nil {
					return fmt.Errorf("bfs %s/%d: %w", fam, sz, err)
				}
				file.Entries = append(file.Entries, be)
				fmt.Fprintf(os.Stderr, "%-9s %-12s n=%d rounds=%d %.2fms/op %d allocs/op\n",
					be.Program, be.Family, be.N, be.Rounds,
					float64(be.NsPerOp)/1e6, be.AllocsPerOp)
			}
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func measure(program, family string, n int, seq bool, workers int) (Entry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return Entry{}, err
	}
	g := in.G

	var build func(nw *congest.Network) []congest.Node
	var budget int
	switch program {
	case "bfs":
		build = func(nw *congest.Network) []congest.Node { return congest.NewBFSNodes(nw, 0) }
		budget = 10*g.N() + 100
	case "pa":
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return Entry{}, err
		}
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % 16
			value[v] = 1
		}
		build = func(nw *congest.Network) []congest.Node {
			return congest.NewPANodes(nw, tree.Parent, 0, partOf, value, congest.OpSum)
		}
		budget = 100*g.N() + 1000
	case "dfs":
		build = func(nw *congest.Network) []congest.Node { return congest.NewAwerbuchNodes(nw, 0) }
		budget = 10 * g.N()
	default:
		return Entry{}, fmt.Errorf("unknown program %q", program)
	}

	var st congest.Stats
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		nw := congest.New(g)
		nw.Parallel = !seq
		nw.Workers = workers
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Run(build(nw), budget); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
		st = nw.Stats()
	})
	if benchErr != nil {
		return Entry{}, benchErr
	}
	nsPerOp := res.NsPerOp()
	e := Entry{
		Program:           program,
		Family:            family,
		N:                 g.N(),
		M:                 g.M(),
		Rounds:            st.Rounds,
		Messages:          st.Messages,
		Words:             st.Words,
		MaxEdgeCongestion: st.MaxEdgeCongestion,
		NsPerOp:           nsPerOp,
		BytesPerOp:        res.AllocedBytesPerOp(),
		AllocsPerOp:       res.AllocsPerOp(),
	}
	if nsPerOp > 0 {
		e.RoundsPerSec = float64(st.Rounds) / (float64(nsPerOp) / 1e9)
		e.MessagesPerSec = float64(st.Messages) / (float64(nsPerOp) / 1e9)
	}
	return e, nil
}

// measureConstruct benchmarks instance construction — graph build,
// embedding assembly, and validation — for one (family, n). With the flat
// substrate, allocs/op is a small constant independent of n (the backing
// arrays plus the validator's scratch), which is the scaling property the
// committed baseline pins.
func measureConstruct(family string, n int) (Entry, error) {
	if _, err := gen.ByName(family, n, 1); err != nil {
		return Entry{}, err
	}
	var nv, m int
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in, err := gen.ByName(family, n, 1)
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			nv, m = in.G.N(), in.G.M()
		}
	})
	if benchErr != nil {
		return Entry{}, benchErr
	}
	return Entry{
		Program:     "construct",
		Family:      family,
		N:           nv,
		M:           m,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// EngineEntry is one (engine, family, n) cell of the separator engine
// matrix. Cycle length, balance, charged rounds and the cert verdict are
// deterministic properties of the run; per-op numbers are measured on the
// machine named by the file header. A "no-separator" verdict marks an
// honest typed failure (the engine covers no balanced cycle on this
// instance); such rows carry zero cycle length and balance.
type EngineEntry struct {
	EngineName  string  `json:"engine"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	CycleLen    int     `json:"cycle_len"`
	Balance     float64 `json:"balance"`
	Rounds      int     `json:"rounds"`
	Phase       string  `json:"phase"`
	CertVerdict string  `json:"cert_verdict"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// EngineFile is the schema of BENCH_engines.json.
type EngineFile struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Engines   []string      `json:"engines"`
	Entries   []EngineEntry `json:"entries"`
}

func runEngines(out, families, sizesFlag string) error {
	file := EngineFile{
		Schema:    "planardfs/bench-engines/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Engines:   sepengine.Names(),
	}
	for _, fam := range strings.Split(families, ",") {
		for _, szStr := range strings.Split(sizesFlag, ",") {
			var sz int
			if _, err := fmt.Sscanf(strings.TrimSpace(szStr), "%d", &sz); err != nil {
				return fmt.Errorf("bad -engine-sizes entry %q: %w", szStr, err)
			}
			for _, engine := range sepengine.Names() {
				e, err := measureEngine(engine, fam, sz)
				if err != nil {
					return fmt.Errorf("%s/%s/%d: %w", engine, fam, sz, err)
				}
				file.Entries = append(file.Entries, e)
				fmt.Fprintf(os.Stderr, "%-18s %-12s n=%-6d cycle=%-4d bal=%.3f %-12s %.2fms/op\n",
					e.EngineName, e.Family, e.N, e.CycleLen, e.Balance, e.CertVerdict,
					float64(e.NsPerOp)/1e6)
			}
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// measureEngine runs one engine on one fresh configuration: a probe run
// decides the row's deterministic columns (and whether this is a
// no-separator row), then the benchmark harness measures the engine call.
func measureEngine(engine, family string, n int) (EngineEntry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return EngineEntry{}, err
	}
	g := in.G
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tree, err := spanning.BFSTree(g, root)
	if err != nil {
		return EngineEntry{}, err
	}
	cfg, err := weights.NewConfig(g, in.Emb, in.OuterDart, tree)
	if err != nil {
		return EngineEntry{}, err
	}
	opts := sepengine.Options{Seed: 1}

	entry := EngineEntry{EngineName: engine, Family: family, N: g.N(), M: g.M()}
	probe, err := sepengine.Find(engine, cfg, opts)
	switch {
	case err == nil:
		entry.CycleLen = probe.CycleLen
		entry.Balance = probe.Balance
		entry.Rounds = probe.Rounds
		entry.Phase = probe.Sep.Phase.String()
		v, err := cert.CertifySeparator(g, probe.Sep, cert.Options{})
		if err != nil {
			return EngineEntry{}, err
		}
		if v.OK {
			entry.CertVerdict = "accept"
		} else {
			entry.CertVerdict = fmt.Sprintf("reject at %d vertices", len(v.Rejectors))
		}
	case errors.Is(err, sepengine.ErrNoSeparator):
		entry.CertVerdict = "no-separator"
	default:
		return EngineEntry{}, err
	}

	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sepengine.Find(engine, cfg, opts); err != nil &&
				!errors.Is(err, sepengine.ErrNoSeparator) {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return EngineEntry{}, benchErr
	}
	entry.NsPerOp = res.NsPerOp()
	entry.BytesPerOp = res.AllocedBytesPerOp()
	entry.AllocsPerOp = res.AllocsPerOp()
	return entry, nil
}

// CertEntry is one (scheme, family) certification measurement. Label width
// and round counts are deterministic properties of the scheme; ns/alloc
// numbers are measured on the machine named by the file header.
type CertEntry struct {
	Scheme         string `json:"scheme"`
	Family         string `json:"family"`
	N              int    `json:"n"`
	M              int    `json:"m"`
	LabelWords     int    `json:"label_words"`
	ProverRounds   int    `json:"prover_rounds"`
	VerifierRounds int    `json:"verifier_rounds"`
	AggRounds      int    `json:"agg_rounds"`
	Messages       int64  `json:"messages"`
	Words          int64  `json:"words"`
	NsPerOp        int64  `json:"ns_per_op"`
	BytesPerOp     int64  `json:"bytes_per_op"`
	AllocsPerOp    int64  `json:"allocs_per_op"`
}

// CertFile is the schema of BENCH_cert.json.
type CertFile struct {
	Schema    string      `json:"schema"`
	Engine    string      `json:"engine"`
	Workers   int         `json:"workers"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Entries   []CertEntry `json:"entries"`
}

var certSchemes = []string{"spanning", "dfs", "separator", "embedding"}

func runCert(out string, n int, families string, seq bool, workers int) error {
	file := CertFile{
		Schema:    "planardfs/bench-cert/v1",
		Engine:    "parallel",
		Workers:   workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if seq {
		file.Engine = "sequential"
	}
	for _, fam := range strings.Split(families, ",") {
		for _, scheme := range certSchemes {
			e, err := measureCert(scheme, fam, n, seq, workers)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", scheme, fam, err)
			}
			file.Entries = append(file.Entries, e)
			fmt.Fprintf(os.Stderr, "%-10s %-12s n=%d words=%d verify=%d agg=%d %.2fms/op %d allocs/op\n",
				e.Scheme, e.Family, e.N, e.LabelWords, e.VerifierRounds, e.AggRounds,
				float64(e.NsPerOp)/1e6, e.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// ChaosEntry is one (program, family, fault-spec) supervised-recovery
// measurement. Outcome, attempts, rounds and fault tallies are
// deterministic properties of the plan; per-op numbers are measured.
type ChaosEntry struct {
	Program        string  `json:"program"`
	Family         string  `json:"family"`
	Spec           string  `json:"spec"`
	Seed           int64   `json:"seed"`
	N              int     `json:"n"`
	M              int     `json:"m"`
	Outcome        string  `json:"outcome"`
	Attempts       int     `json:"attempts"`
	RoundsTotal    int     `json:"rounds_total"`
	BaselineRounds int     `json:"baseline_rounds"`
	RoundOverhead  float64 `json:"round_overhead"`
	FaultsFired    int64   `json:"faults_fired"`
	NsPerOp        int64   `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

// ChaosFile is the schema of BENCH_chaos.json.
type ChaosFile struct {
	Schema    string       `json:"schema"`
	Engine    string       `json:"engine"`
	Workers   int          `json:"workers"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Entries   []ChaosEntry `json:"entries"`
}

// chaosScenarios are the fault plans the baseline sweeps, from quiescent
// supervision overhead to a mixed plan that usually forces retries.
// The tight horizon concentrates the random fault rounds into the live
// prefix of the run (a BFS on these instances finishes in a few dozen
// rounds). Point faults (drop/corrupt/stall) only fire when they land on
// an in-flight message, so the bursts are sized for a couple of expected
// hits; link-down and crash are persistent and fire on their own.
var chaosScenarios = []struct{ name, spec string }{
	{"clean", ""},
	{"drops", "drops=48,horizon=24"},
	{"corruptions", "corruptions=48,horizon=24"},
	{"linkdown", "linkdowns=2,horizon=24"},
	{"mixed", "drops=3,corruptions=2,crashes=1,horizon=24"},
}

func runChaos(out string, n int, families string, seq bool, workers int) error {
	file := ChaosFile{
		Schema:    "planardfs/bench-chaos/v1",
		Engine:    "parallel",
		Workers:   workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if seq {
		file.Engine = "sequential"
	}
	for _, fam := range strings.Split(families, ",") {
		for _, prog := range []string{"bfs", "awerbuch"} {
			for _, sc := range chaosScenarios {
				e, err := measureChaos(prog, fam, sc.name, sc.spec, n, seq, workers)
				if err != nil {
					return fmt.Errorf("%s/%s/%s: %w", prog, fam, sc.name, err)
				}
				file.Entries = append(file.Entries, e)
				fmt.Fprintf(os.Stderr, "%-8s %-12s %-12s outcome=%-21s attempts=%d rounds=%d (%.2fx) %.2fms/op\n",
					e.Program, e.Family, sc.name, e.Outcome, e.Attempts, e.RoundsTotal,
					e.RoundOverhead, float64(e.NsPerOp)/1e6)
			}
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// measureChaos benchmarks one supervised run: the stage under the fault
// plan, certification after every attempt, retries with backoff and (for
// the DFS program) degradation to a fault-free fallback. The overhead
// column is total supervised rounds over the fault-free rounds of the same
// stage.
func measureChaos(program, family, specName, spec string, n int, seq bool, workers int) (ChaosEntry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return ChaosEntry{}, err
	}
	g := in.G
	opt := cert.Options{Sequential: seq, Workers: workers}
	const seed = 1

	var plan *chaos.Plan
	if spec != "" {
		s, err := chaos.ParseSpec(spec)
		if err != nil {
			return ChaosEntry{}, err
		}
		s.Protect = []int{0} // the root survives: crashes land elsewhere
		plan = chaos.NewPlan(seed, s)
	}

	supervise := func(p *chaos.Plan) (*chaos.Report, error) {
		switch program {
		case "bfs":
			st := chaos.BFSTreeStage(g, 0, p, opt)
			_, rep, err := chaos.RunWithRecovery(st, nil, chaos.Policy{})
			return rep, err
		case "awerbuch":
			primary := chaos.AwerbuchDFS(g, 0, p, opt)
			fallback := chaos.AwerbuchDFS(g, 0, nil, opt)
			_, rep, err := chaos.RunWithRecovery(primary, &fallback, chaos.Policy{})
			return rep, err
		default:
			return nil, fmt.Errorf("unknown program %q", program)
		}
	}

	base, err := supervise(nil)
	if err != nil {
		return ChaosEntry{}, err
	}
	baseline := totalRounds(base)

	var rep *chaos.Report
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := supervise(plan)
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			rep = r
		}
	})
	if benchErr != nil {
		return ChaosEntry{}, benchErr
	}
	e := ChaosEntry{
		Program:        program,
		Family:         family,
		Spec:           spec,
		Seed:           seed,
		N:              g.N(),
		M:              g.M(),
		Outcome:        rep.Outcome.String(),
		Attempts:       len(rep.Attempts),
		RoundsTotal:    totalRounds(rep),
		BaselineRounds: baseline,
		FaultsFired:    rep.Faults.Total(),
		NsPerOp:        res.NsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		AllocsPerOp:    res.AllocsPerOp(),
	}
	if baseline > 0 {
		e.RoundOverhead = float64(e.RoundsTotal) / float64(baseline)
	}
	return e, nil
}

func totalRounds(rep *chaos.Report) int {
	total := 0
	for _, a := range rep.Attempts {
		total += a.Rounds
	}
	return total
}

// measureCert prepares one correct output for the scheme and benchmarks the
// full prove-and-verify certification of it.
func measureCert(scheme, family string, n int, seq bool, workers int) (CertEntry, error) {
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		return CertEntry{}, err
	}
	g := in.G
	opt := cert.Options{Sequential: seq, Workers: workers}

	var certify func() (*cert.Verdict, error)
	switch scheme {
	case "spanning":
		tree, err := spanning.BFSTree(g, 0)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifySpanningTree(g, tree, opt) }
	case "dfs":
		tree, err := spanning.DeepDFSTree(g, 0)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifyDFSTree(g, 0, tree.Parent, opt) }
	case "separator":
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.OuterFace())[0]
		tree, err := spanning.BFSTree(g, root)
		if err != nil {
			return CertEntry{}, err
		}
		cfg, err := weights.NewConfig(g, in.Emb, in.OuterDart, tree)
		if err != nil {
			return CertEntry{}, err
		}
		sep, err := separator.Find(cfg)
		if err != nil {
			return CertEntry{}, err
		}
		certify = func() (*cert.Verdict, error) { return cert.CertifySeparator(g, sep, opt) }
	case "embedding":
		certify = func() (*cert.Verdict, error) { return cert.CertifyEmbedding(in.Emb, opt) }
	default:
		return CertEntry{}, fmt.Errorf("unknown scheme %q", scheme)
	}

	var verdict *cert.Verdict
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := certify()
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			if !v.OK {
				benchErr = fmt.Errorf("correct output rejected at %v", v.Rejectors)
				b.Fatal(benchErr)
			}
			verdict = v
		}
	})
	if benchErr != nil {
		return CertEntry{}, benchErr
	}
	return CertEntry{
		Scheme:         scheme,
		Family:         family,
		N:              g.N(),
		M:              g.M(),
		LabelWords:     verdict.LabelWords,
		ProverRounds:   verdict.ProverRounds,
		VerifierRounds: verdict.VerifierRounds,
		AggRounds:      verdict.AggRounds,
		Messages:       verdict.Stats.Messages,
		Words:          verdict.Stats.Words,
		NsPerOp:        res.NsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		AllocsPerOp:    res.AllocsPerOp(),
	}, nil
}
