// Package randsep implements a randomized cycle-separator baseline in the
// style of Ghaffari and Parter (DISC 2017): face weights are *estimated*
// from a uniform vertex sample instead of computed exactly by the paper's
// deterministic formula. It exists to quantify what the deterministic
// algorithm buys (experiment E10): the sampling estimator needs
// Θ(log n / ε²) samples per face to stay inside the safety band with high
// probability, can fail (no face passes the band, or an unbalanced face
// passes), and its round cost in CONGEST carries the same Õ(D) shortcut
// factors plus the sampling overhead.
//
// The package is the repo's one *intentionally* randomized algorithm, and
// it still obeys the determinism policy enforced by planarvet
// (rngwallclock): the RNG is always a caller-supplied *rand.Rand, never
// the process-global math/rand generator, so a baseline run is
// reproducible from its seed.
package randsep

import (
	"fmt"
	"math/rand"

	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// Result is the outcome of one randomized separator attempt.
type Result struct {
	Sep *separator.Separator
	// Samples is the number of sampled vertices.
	Samples int
	// EstimateErr is the largest absolute estimation error observed across
	// faces (diagnostic; computed against the deterministic formula).
	EstimateErr int
}

// ErrNoCandidate is returned when no face estimate lands in the safety
// band; callers fall back or retry with a larger sample.
var ErrNoCandidate = fmt.Errorf("randsep: no face estimate within the safety band")

// Find estimates every real fundamental face's extent |F̄_e| (inside plus
// border) from a uniform sample of the given rate, and returns the T-path
// of a face whose estimate lies within [ (1/3+margin)n, (2/3-margin)n ].
// The returned separator is NOT guaranteed balanced — that is the point of
// the baseline; experiment E10 measures the failure rate against the
// deterministic algorithm's 100%.
func Find(cfg *weights.Config, sampleRate, margin float64, rng *rand.Rand) (*Result, error) {
	n := cfg.G.N()
	if sampleRate <= 0 || sampleRate > 1 {
		return nil, fmt.Errorf("randsep: sample rate %v out of (0,1]", sampleRate)
	}
	var sample []int
	for v := 0; v < n; v++ {
		if rng.Float64() < sampleRate {
			sample = append(sample, v)
		}
	}
	res := &Result{Samples: len(sample)}
	if len(sample) == 0 {
		return res, ErrNoCandidate
	}
	lo := (1.0/3.0 + margin) * float64(n)
	hi := (2.0/3.0 - margin) * float64(n)
	scale := float64(n) / float64(len(sample))
	for _, e := range cfg.FundamentalEdges() {
		ec := cfg.Classify(e)
		hits := 0
		for _, z := range sample {
			b, in := cfg.InFace(ec, z)
			if b || in {
				hits++
			}
		}
		est := scale * float64(hits)
		exact := len(cfg.InsideNodes(ec)) + len(cfg.BorderNodes(ec))
		if d := int(est) - exact; d > res.EstimateErr {
			res.EstimateErr = d
		} else if -d > res.EstimateErr {
			res.EstimateErr = -d
		}
		if est >= lo && est <= hi {
			res.Sep = &separator.Separator{
				Path:  cfg.Tree.TPath(ec.U, ec.V),
				EndA:  ec.U,
				EndB:  ec.V,
				Phase: separator.PhaseDirect,
			}
			return res, nil
		}
	}
	return res, ErrNoCandidate
}
