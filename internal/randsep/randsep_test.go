package randsep

import (
	"errors"
	"math/rand"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

func cfgOf(t *testing.T, in *gen.Instance) *weights.Config {
	t.Helper()
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tr, err := spanning.BFSTree(in.G, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestFindValidatesRate(t *testing.T) {
	in, err := gen.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgOf(t, in)
	rng := rand.New(rand.NewSource(1))
	if _, err := Find(cfg, 0, 0.02, rng); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Find(cfg, 1.5, 0.02, rng); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

// With a full sample the estimator is exact: if a face exists in the band,
// the result is balanced.
func TestFullSampleIsExact(t *testing.T) {
	okCnt, tried := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		in, err := gen.StackedTriangulation(60, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfgOf(t, in)
		rng := rand.New(rand.NewSource(seed))
		res, err := Find(cfg, 1.0, 0.0, rng)
		tried++
		if errors.Is(err, ErrNoCandidate) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimateErr != 0 {
			t.Fatalf("full sample had estimation error %d", res.EstimateErr)
		}
		n := cfg.G.N()
		if maxC := separator.VerifyBalance(cfg.G, res.Sep.Path); 3*maxC > 2*n {
			t.Fatalf("full-sample separator unbalanced: %d of %d", maxC, n)
		}
		okCnt++
	}
	if okCnt == 0 {
		t.Fatalf("no instance had a direct in-band face (%d tried)", tried)
	}
}

// Small samples must fail (no candidate) noticeably more often than large
// samples — the quantitative story of E10.
func TestFailureRateDropsWithSamples(t *testing.T) {
	fail := func(rate float64) int {
		fails := 0
		for seed := int64(1); seed <= 30; seed++ {
			in, err := gen.StackedTriangulation(80, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cfgOf(t, in)
			rng := rand.New(rand.NewSource(seed * 77))
			res, err := Find(cfg, rate, 0.05, rng)
			if err != nil {
				fails++
				continue
			}
			n := cfg.G.N()
			if maxC := separator.VerifyBalance(cfg.G, res.Sep.Path); 3*maxC > 2*n {
				fails++
			}
		}
		return fails
	}
	small, large := fail(0.05), fail(0.9)
	if small < large {
		t.Fatalf("failure did not drop with sample size: %d (5%%) vs %d (90%%)", small, large)
	}
	t.Logf("failures out of 30: rate 0.05 -> %d, rate 0.9 -> %d", small, large)
}
