// Package shortcut implements the part-wise aggregation (PA) layer the
// paper builds on (Definition 6, Propositions 2, 4 and 5): the primitive
// "every part of a vertex partition learns an aggregate of its members'
// values in Õ(D) rounds", provided for planar graphs by the deterministic
// low-congestion shortcuts of Haeupler, Hershkowitz and Wajc [10].
//
// Three forms are provided, all computing identical outputs:
//
//   - PaperCost: a round-cost oracle charging the cited deterministic bound
//     Õ(D) = (D+1)·⌈log₂ n⌉² per PA call (the paper treats [10] as a black
//     box; so do we, with the cost made explicit).
//   - PipelinedCost: the cost of the message-level pipelined aggregation
//     over a global BFS tree implemented in package congest — O(D + k).
//   - RunPA: the actual message-level execution (used to cross-validate
//     both the values and the PipelinedCost estimate).
//
// The package also measures the quality (congestion, dilation) of
// tree-restricted shortcuts on planar partitions, the structural quantity
// behind Proposition 2.
package shortcut

import (
	"fmt"
	"math/bits"

	"planardfs/internal/congest"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

// Partition is a vertex partition with connected parts.
type Partition struct {
	PartOf []int   // PartOf[v] is the part index of v
	Parts  [][]int // Parts[i] lists the vertices of part i
}

// NewPartition builds a Partition from a part-of array; part indices must be
// 0..k-1 with every index used.
func NewPartition(partOf []int) (*Partition, error) {
	k := 0
	for _, p := range partOf {
		if p < 0 {
			return nil, fmt.Errorf("shortcut: negative part id %d", p)
		}
		if p+1 > k {
			k = p + 1
		}
	}
	parts := make([][]int, k)
	for v, p := range partOf {
		parts[p] = append(parts[p], v)
	}
	for i, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("shortcut: part %d is empty", i)
		}
	}
	return &Partition{PartOf: append([]int(nil), partOf...), Parts: parts}, nil
}

// K returns the number of parts.
func (p *Partition) K() int { return len(p.Parts) }

// Validate checks that each part induces a connected subgraph of g.
func (p *Partition) Validate(g *graph.Graph) error {
	for i, part := range p.Parts {
		sub, _, err := g.InducedSubgraph(part)
		if err != nil {
			return err
		}
		if !sub.Connected() {
			return fmt.Errorf("shortcut: part %d induces a disconnected subgraph", i)
		}
	}
	return nil
}

// Op identifies a communication primitive for cost accounting.
type Op int

// Primitives charged by cost models.
const (
	// OpPA is one part-wise aggregation or part-wide broadcast: every part
	// learns one O(log n)-bit aggregate (Prop. 4).
	OpPA Op = iota + 1
	// OpTreeAgg is one ancestor- or descendant-sum over the per-part
	// spanning trees (Prop. 5, ANCESTOR-SUM / DESCENDANT-SUM).
	OpTreeAgg
	// OpLocal is one round of local exchange with direct neighbours.
	OpLocal
)

// CostModel converts communication primitives into round costs.
type CostModel interface {
	// Cost returns the rounds charged for one invocation of op with k parts.
	Cost(op Op, k int) int
	// Name identifies the model in experiment output.
	Name() string
}

// Log2Ceil returns ⌈log₂ x⌉ for x >= 1 (and 1 for x <= 2).
func Log2Ceil(x int) int {
	if x <= 2 {
		return 1
	}
	return bits.Len(uint(x - 1))
}

// PaperCost charges the deterministic planar bounds the paper cites:
// Õ(D) = (D+1)·⌈log₂ n⌉² rounds per PA or tree-aggregation call.
type PaperCost struct {
	D int // graph diameter
	N int // vertex count
}

// Cost implements CostModel.
func (c PaperCost) Cost(op Op, k int) int {
	switch op {
	case OpPA, OpTreeAgg:
		l := Log2Ceil(c.N + 1)
		return (c.D + 1) * l * l
	case OpLocal:
		return 1
	}
	panic(fmt.Sprintf("shortcut: unknown op %d", int(op)))
}

// Name implements CostModel.
func (c PaperCost) Name() string { return "paper-shortcuts" }

// PipelinedCost charges the measured shape of the message-level pipelined
// BFS-tree aggregation: 2·(depth + k) + O(1) rounds per PA call.
type PipelinedCost struct {
	Depth int // global BFS tree depth (<= D)
}

// Cost implements CostModel.
func (c PipelinedCost) Cost(op Op, k int) int {
	switch op {
	case OpPA, OpTreeAgg:
		return 2*(c.Depth+k) + 4
	case OpLocal:
		return 1
	}
	panic(fmt.Sprintf("shortcut: unknown op %d", int(op)))
}

// Name implements CostModel.
func (c PipelinedCost) Name() string { return "pipelined-bfs" }

// FreeCost charges nothing; used when only outputs matter.
type FreeCost struct{}

// Cost implements CostModel.
func (FreeCost) Cost(Op, int) int { return 0 }

// Name implements CostModel.
func (FreeCost) Name() string { return "free" }

// PAResult is the outcome of a message-level part-wise aggregation.
type PAResult struct {
	Values []int // Values[v] is the aggregate of v's part
	Rounds int
	Stats  congest.Stats
}

// RunPA executes the pipelined part-wise aggregation as a real CONGEST
// program over the BFS tree of g rooted at root, aggregating value with op
// per part of the partition.
func RunPA(g *graph.Graph, root int, part *Partition, value []int, op congest.AggOp) (*PAResult, error) {
	return RunPATraced(g, root, part, value, op, nil)
}

// RunPATraced is RunPA with the network attached to tracer (nil disables
// tracing), so every simulated round lands in the trace as a network-layer
// span with message and congestion counters.
func RunPATraced(g *graph.Graph, root int, part *Partition, value []int, op congest.AggOp, tracer trace.Tracer) (*PAResult, error) {
	nw := congest.New(g)
	nw.Tracer = tracer
	return RunPAOn(nw, root, part, value, op)
}

// RunPAOn is RunPA over a caller-configured network: engine selection
// (Parallel/Workers), word budget and tracer are taken from nw as-is. The
// certification subsystem uses it to keep a whole prove/verify/aggregate
// run on one engine configuration.
func RunPAOn(nw *congest.Network, root int, part *Partition, value []int, op congest.AggOp) (*PAResult, error) {
	g := nw.G
	tree, err := spanning.BFSTree(g, root)
	if err != nil {
		return nil, err
	}
	nodes := congest.NewPANodes(nw, tree.Parent, root, part.PartOf, value, op)
	rounds, err := nw.Run(nodes, 20*(tree.MaxDepth()+part.K()+10))
	if err != nil {
		return nil, err
	}
	out := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		pn := nodes[v].(*congest.PANode)
		if !pn.HasResult {
			return nil, fmt.Errorf("shortcut: node %d missing PA result", v)
		}
		out[v] = pn.Result
	}
	return &PAResult{Values: out, Rounds: rounds, Stats: nw.Stats()}, nil
}
