package shortcut

import (
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// Quality summarizes a tree-restricted shortcut assignment: for each part
// P_i, the shortcut H_i is the Steiner tree of P_i inside a global BFS tree
// (the union of tree paths between part members). Congestion counts how many
// parts use each tree edge; dilation is the diameter of G[P_i] + H_i.
// Proposition 2 asserts that planar graphs always admit
// (Õ(D), Õ(D))-quality shortcuts; this measures the quality of the natural
// tree-restricted construction.
type Quality struct {
	MaxCongestion int // max over tree edges of #parts whose Steiner tree uses it
	MaxDilation   int // max over parts of hop-diameter of G[P_i] + H_i
	SumShortcut   int // total shortcut edges over all parts
}

// MeasureQuality computes the congestion and dilation of the
// tree-restricted shortcuts of the partition over the BFS tree of g rooted
// at root.
func MeasureQuality(g *graph.Graph, root int, part *Partition) (*Quality, error) {
	tree, err := spanning.BFSTree(g, root)
	if err != nil {
		return nil, err
	}
	n := g.N()
	// congestion[v] counts parts whose Steiner tree uses the edge
	// (v, parent(v)).
	congestion := make([]int, n)
	q := &Quality{}
	for i := range part.Parts {
		steiner := steinerEdges(tree, part.Parts[i])
		q.SumShortcut += len(steiner)
		for _, v := range steiner {
			congestion[v]++
		}
		d, err := dilationOf(g, tree, part.Parts[i], steiner)
		if err != nil {
			return nil, err
		}
		if d > q.MaxDilation {
			q.MaxDilation = d
		}
	}
	for _, c := range congestion {
		if c > q.MaxCongestion {
			q.MaxCongestion = c
		}
	}
	return q, nil
}

// steinerEdges returns the child endpoints v of the tree edges
// (v, parent(v)) forming the Steiner tree of the given vertices in tree:
// a tree edge is used iff the subtree below it contains at least one member
// but not all members lie below... precisely, an edge is on a path between
// two members iff the subtree below it contains between 1 and len(members)-1
// members.
func steinerEdges(tree *spanning.Tree, members []int) []int {
	n := tree.N()
	cnt := make([]int, n)
	for _, v := range members {
		cnt[v] = 1
	}
	// Accumulate subtree counts bottom-up by decreasing depth.
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		order = append(order, v)
	}
	// Counting sort by depth, deepest first.
	maxD := tree.MaxDepth()
	buckets := make([][]int, maxD+1)
	for _, v := range order {
		buckets[tree.Depth[v]] = append(buckets[tree.Depth[v]], v)
	}
	var out []int
	total := len(members)
	for d := maxD; d >= 1; d-- {
		for _, v := range buckets[d] {
			if cnt[v] >= 1 && cnt[v] < total {
				out = append(out, v)
			}
			cnt[tree.Parent[v]] += cnt[v]
		}
	}
	return out
}

// dilationOf computes the hop diameter of G[P_i] + H_i: the subgraph
// induced by the members plus the Steiner tree edges (including their
// non-member endpoints).
func dilationOf(g *graph.Graph, tree *spanning.Tree, members []int, steiner []int) (int, error) {
	isMember := map[int]bool{}
	for _, v := range members {
		isMember[v] = true
	}
	// Involved vertices: members plus Steiner edge endpoints.
	idx := map[int]int{}
	add := func(v int) {
		if _, ok := idx[v]; !ok {
			idx[v] = len(idx)
		}
	}
	for _, v := range members {
		add(v)
	}
	for _, v := range steiner {
		add(v)
		add(tree.Parent[v])
	}
	h := graph.New(len(idx))
	// Induced member-member edges of G.
	for _, e := range g.Edges() {
		if isMember[e.U] && isMember[e.V] {
			h.MustAddEdge(idx[e.U], idx[e.V])
		}
	}
	// Shortcut (Steiner tree) edges.
	for _, v := range steiner {
		iu, iv := idx[v], idx[tree.Parent[v]]
		if !h.HasEdge(iu, iv) {
			h.MustAddEdge(iu, iv)
		}
	}
	d := h.Diameter()
	if d < 0 {
		// G[P_i] + H_i should always be connected for connected parts; a
		// large sentinel flags a violation without aborting measurement.
		d = len(idx)
	}
	return d, nil
}
