package shortcut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/congest"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
)

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition([]int{0, -1}); err == nil {
		t.Fatal("negative part accepted")
	}
	if _, err := NewPartition([]int{0, 2}); err == nil {
		t.Fatal("gap in part ids accepted")
	}
	p, err := NewPartition([]int{0, 1, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 || len(p.Parts[0]) != 2 || len(p.Parts[2]) != 1 {
		t.Fatalf("partition wrong: %+v", p)
	}
}

func TestPartitionValidateConnectivity(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	ok, _ := NewPartition([]int{0, 0, 1, 1})
	if err := ok.Validate(g); err != nil {
		t.Fatalf("connected parts rejected: %v", err)
	}
	bad, _ := NewPartition([]int{0, 1, 1, 0})
	if err := bad.Validate(g); err == nil {
		t.Fatal("disconnected part accepted")
	}
}

func TestCostModels(t *testing.T) {
	pc := PaperCost{D: 10, N: 1000}
	if pc.Cost(OpLocal, 5) != 1 {
		t.Fatal("local cost should be 1")
	}
	l := Log2Ceil(1001)
	if pc.Cost(OpPA, 7) != 11*l*l {
		t.Fatalf("paper PA cost = %d", pc.Cost(OpPA, 7))
	}
	if pc.Cost(OpPA, 7) != pc.Cost(OpTreeAgg, 3) {
		t.Fatal("tree agg should cost like PA")
	}
	pl := PipelinedCost{Depth: 8}
	if pl.Cost(OpPA, 10) != 2*(8+10)+4 {
		t.Fatalf("pipelined cost = %d", pl.Cost(OpPA, 10))
	}
	if (FreeCost{}).Cost(OpPA, 3) != 0 {
		t.Fatal("free cost should be 0")
	}
	for _, m := range []CostModel{pc, pl, FreeCost{}} {
		if m.Name() == "" {
			t.Fatal("empty model name")
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := Log2Ceil(x); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", x, got, want)
		}
	}
}

// stripePartition partitions grid vertices into k vertical stripes (each
// connected).
func stripePartition(t *testing.T, w, h, k int) (*graph.Graph, *Partition) {
	t.Helper()
	in, err := gen.Grid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			partOf[y*w+x] = x * k / w
		}
	}
	p, err := NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(in.G); err != nil {
		t.Fatal(err)
	}
	return in.G, p
}

func TestRunPAMatchesReference(t *testing.T) {
	g, p := stripePartition(t, 12, 8, 4)
	rng := rand.New(rand.NewSource(17))
	value := make([]int, g.N())
	for v := range value {
		value[v] = rng.Intn(100)
	}
	res, err := RunPA(g, 0, p, value, congest.OpSum)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, p.K())
	for v, x := range value {
		want[p.PartOf[v]] += x
	}
	for v := 0; v < g.N(); v++ {
		if res.Values[v] != want[p.PartOf[v]] {
			t.Fatalf("node %d: %d, want %d", v, res.Values[v], want[p.PartOf[v]])
		}
	}
	if res.Rounds <= 0 || res.Stats.Messages == 0 {
		t.Fatal("stats not populated")
	}
}

// Property: RunPA matches the reference on random stripe widths and values.
func TestRunPAProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(8)
		h := 2 + rng.Intn(8)
		k := 1 + rng.Intn(w)
		in, err := gen.Grid(w, h)
		if err != nil {
			return false
		}
		partOf := make([]int, in.G.N())
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				partOf[y*w+x] = x * k / w
			}
		}
		p, err := NewPartition(partOf)
		if err != nil {
			return false
		}
		value := make([]int, in.G.N())
		for v := range value {
			value[v] = rng.Intn(50) - 25
		}
		res, err := RunPA(in.G, rng.Intn(in.G.N()), p, value, congest.OpMin)
		if err != nil {
			return false
		}
		want := make([]int, p.K())
		seen := make([]bool, p.K())
		for v, x := range value {
			i := p.PartOf[v]
			if !seen[i] || x < want[i] {
				want[i] = x
				seen[i] = true
			}
		}
		for v := range value {
			if res.Values[v] != want[p.PartOf[v]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureQuality(t *testing.T) {
	g, p := stripePartition(t, 10, 10, 5)
	q, err := MeasureQuality(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxDilation <= 0 {
		t.Fatal("dilation should be positive")
	}
	// Each vertical stripe of a grid is connected with small dilation even
	// without shortcuts; congestion must not exceed k.
	if q.MaxCongestion > p.K() {
		t.Fatalf("congestion %d exceeds part count %d", q.MaxCongestion, p.K())
	}
	// Dilation is bounded by the stripe perimeter.
	if q.MaxDilation > 2*(10+10) {
		t.Fatalf("dilation %d too large", q.MaxDilation)
	}
}

func TestSteinerEdgesSinglePart(t *testing.T) {
	// Whole graph as one part: Steiner tree of all vertices = all tree
	// edges (n-1 child endpoints).
	in, err := gen.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	p, _ := NewPartition(partOf)
	q, err := MeasureQuality(in.G, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxCongestion != 1 {
		t.Fatalf("single part congestion = %d, want 1", q.MaxCongestion)
	}
}
