package exp

import (
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
)

var smallFamilies = []string{"grid", "stacked", "sparse"}

func TestE1SmallSweep(t *testing.T) {
	rows, err := E1(smallFamilies, []int{36, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PaperRounds <= 0 || r.PipelinedRounds <= 0 || r.SepLen == 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.NormPaper <= 0 {
			t.Fatalf("bad normalization %+v", r)
		}
	}
	// The normalized paper rounds must be flat across sizes within a
	// family (the Õ(D) shape).
	for i := 0; i+1 < len(rows); i += 2 {
		a, b := rows[i].NormPaper, rows[i+1].NormPaper
		if a/b > 1.5 || b/a > 1.5 {
			t.Fatalf("normalized rounds not flat: %v vs %v", a, b)
		}
	}
}

func TestE3AllBalanced(t *testing.T) {
	rows, err := E3(smallFamilies, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Balanced != r.Trials {
			t.Fatalf("%s: %d of %d balanced", r.Family, r.Balanced, r.Trials)
		}
		if r.Exhaustive != 0 {
			t.Fatalf("%s: exhaustive fallback used %d times", r.Family, r.Exhaustive)
		}
		if r.WorstRatio > 2.0/3.0+1e-9 {
			t.Fatalf("%s: worst ratio %v", r.Family, r.WorstRatio)
		}
	}
}

func TestE4AllExact(t *testing.T) {
	rows, err := E4(smallFamilies, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Edges == 0 && r.Family != "tree" {
			t.Fatalf("%s: no edges checked", r.Family)
		}
		if r.Exact != r.Edges {
			t.Fatalf("%s: %d of %d exact", r.Family, r.Exact, r.Edges)
		}
	}
}

func TestE2SmallSweep(t *testing.T) {
	rows, err := E2([]string{"grid", "stacked"}, []int{49, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AwerbuchMeasured > r.AwerbuchTheory+1 {
			t.Fatalf("%s n=%d: Awerbuch %d > bound %d", r.Family, r.N, r.AwerbuchMeasured, r.AwerbuchTheory)
		}
		if r.Phases == 0 || r.PaperRounds <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestE5E6Sublinear(t *testing.T) {
	rows5, err := E5([]string{"grid", "stacked"}, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows5 {
		if r.Phases > r.LogBound+2 {
			t.Fatalf("E5 %s: %d phases, bound %d (depth %d)", r.Family, r.Phases, r.LogBound, r.TreeDepth)
		}
	}
	rows6, err := E6([]string{"grid", "stacked"}, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows6 {
		if r.Iterations > 2*r.LogSquared {
			t.Fatalf("E6 %s: %d iterations, log^2 = %d", r.Family, r.Iterations, r.LogSquared)
		}
		if r.PathLen < 20 {
			t.Fatalf("E6 %s: deep tree expected, path %d", r.Family, r.PathLen)
		}
	}
}

func TestE7E9(t *testing.T) {
	rows7, err := E7([]string{"grid"}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows7[0].MaxJoin > 4*rows7[0].LogBound {
		t.Fatalf("E7: max join sub-phases %d vs log bound %d", rows7[0].MaxJoin, rows7[0].LogBound)
	}
	rows9, err := E9([]string{"grid", "stacked"}, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows9 {
		if r.MaxShrink > 0.67+0.05 {
			t.Fatalf("E9 %s: shrink %v", r.Family, r.MaxShrink)
		}
	}
}

func TestE8PartitionedAggregation(t *testing.T) {
	rows, err := E8("grid", 100, []int{1, 5, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, r := range rows {
		if r.MeasuredRounds <= 0 || r.MaxDilation <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		// Measured rounds grow with k and stay below the pipelined
		// estimate's shape with slack.
		if r.MeasuredRounds < prev {
			// Rounds need not be strictly monotone but should not collapse.
			if prev-r.MeasuredRounds > r.D {
				t.Fatalf("rounds collapsed: %+v", rows)
			}
		}
		if r.MeasuredRounds > 3*r.PipelinedEst+20 {
			t.Fatalf("measured %d far above pipelined estimate %d", r.MeasuredRounds, r.PipelinedEst)
		}
		prev = r.MeasuredRounds
	}
}

func TestE10RandBaseline(t *testing.T) {
	rows, err := E10("stacked", 60, []float64{0.1, 1.0}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DetOK != r.Trials {
			t.Fatalf("deterministic failed: %+v", r)
		}
	}
	if rows[0].RandOK > rows[1].RandOK {
		t.Fatalf("randomized success did not improve with samples: %+v", rows)
	}
}

func TestE11E12(t *testing.T) {
	rows11, err := E11([]string{"grid", "stacked"}, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows11 {
		if r.Rounds > r.Bound+1 {
			t.Fatalf("E11 %s: rounds %d > bound %d", r.Family, r.Rounds, r.Bound)
		}
	}
	rows12, err := E12([]string{"grid", "stacked", "polygon"}, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows12 {
		if r.CycleBalance > 2.0/3.0+1e-9 {
			t.Fatalf("E12 %s: cycle balance %v", r.Family, r.CycleBalance)
		}
		if r.LevelBalance > 0.5+1e-9 {
			t.Fatalf("E12 %s: level balance %v", r.Family, r.LevelBalance)
		}
	}
}

func TestDFSSegmentsConnected(t *testing.T) {
	in, err := genGridForTest()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := bfsTreeForTest(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		partOf := dfsSegments(tr, k)
		part, err := shortcut.NewPartition(partOf)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(in.G); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func genGridForTest() (*gen.Instance, error) { return gen.Grid(8, 8) }

func bfsTreeForTest(in *gen.Instance) (*spanning.Tree, error) {
	return spanning.BFSTree(in.G, 0)
}

func TestE13FullIsClean(t *testing.T) {
	rows, err := E13([]string{"grid", "sparse"}, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ablation == "full" {
			if r.Exhaustive != 0 || r.Unbalanced != 0 || r.Errors != 0 {
				t.Fatalf("full algorithm not clean: %+v", r)
			}
		}
		// Even ablations must stay balanced thanks to the safety net; they
		// may lean on it (Exhaustive > 0).
		if r.Unbalanced != 0 {
			t.Logf("note: ablation %s produced %d unbalanced results", r.Ablation, r.Unbalanced)
		}
	}
}
