package exp

import (
	"os"
	"testing"
	"time"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// runTheorem2Pipeline drives the full Theorem 2 stack end to end on one
// generated instance: spanning tree (certified), DFS tree under the
// supervised recovery runtime, Theorem 1 cycle separator, and the
// separator's proof-labeling certificate. It is the acceptance path for
// the flat-substrate refactor — the same sequence must complete at
// n >= 10^6 (see TestTheorem2PipelineMillion).
func runTheorem2Pipeline(t *testing.T, family string, n int) {
	t.Helper()
	start := time.Now()
	lap := func(stage string) {
		t.Logf("%-12s %8.2fs", stage, time.Since(start).Seconds())
		start = time.Now()
	}

	inst, err := gen.ByName(family, n, 1)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	g, emb := inst.G, inst.Emb
	lap("generate")

	// Stage 1: spanning tree, certified by the proof-labeling scheme.
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatalf("spanning: %v", err)
	}
	labels := cert.ProveSpanningTree(tree)
	verdict, err := cert.VerifySpanningTree(g, labels, cert.Options{})
	if err != nil {
		t.Fatalf("spanning verify: %v", err)
	}
	if !verdict.OK {
		t.Fatalf("spanning tree rejected by %d verifiers", len(verdict.Rejectors))
	}
	lap("spanning")

	// Stage 2: DFS with recovery — the deep DFS producer supervised by the
	// certify-retry runtime (fault-free here, so one certified attempt).
	dfsStage := chaos.Stage[[]int]{
		Name:          "dfs",
		DefaultBudget: 10 * n,
		Run: func(attempt, budget int) ([]int, int, error) {
			dt, err := spanning.DeepDFSTree(g, 0)
			if err != nil {
				return nil, 0, err
			}
			return dt.Parent, dt.MaxDepth(), nil
		},
		Certify: chaos.DFSCertifier(g, 0, cert.Options{}),
	}
	_, rep, err := chaos.RunWithRecovery(dfsStage, nil, chaos.Policy{})
	if err != nil {
		t.Fatalf("supervised dfs: %v", err)
	}
	if rep.Outcome != chaos.OutcomeCertified {
		t.Fatalf("supervised dfs ended %v, want certified", rep.Outcome)
	}
	lap("dfs+recover")

	// Stage 3: Theorem 1 cycle separator on the instance.
	cfg, err := weights.NewConfig(g, emb, inst.OuterDart, tree)
	if err != nil {
		t.Fatalf("weights config: %v", err)
	}
	sep, err := separator.Find(cfg)
	if err != nil {
		t.Fatalf("separator: %v", err)
	}
	if bal := separator.VerifyBalance(g, sep.Path); 3*bal > 2*n {
		t.Fatalf("separator unbalanced: largest side %d of %d", bal, n)
	}
	lap("separator")

	// Stage 4: certify the separator with its proof-labeling scheme.
	sepLabels, err := cert.ProveSeparator(g, sep)
	if err != nil {
		t.Fatalf("separator prove: %v", err)
	}
	sv, err := cert.VerifySeparator(g, sepLabels, cert.Options{})
	if err != nil {
		t.Fatalf("separator verify: %v", err)
	}
	if !sv.OK {
		t.Fatalf("separator rejected by %d verifiers", len(sv.Rejectors))
	}
	lap("cert")
}

// TestTheorem2PipelineMedium keeps the pipeline wired in the ordinary test
// suite at a size that finishes in seconds.
func TestTheorem2PipelineMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run skipped in -short")
	}
	runTheorem2Pipeline(t, "cylinderish", 20_000)
}

// TestTheorem2PipelineMillion is the million-node acceptance run for the
// flat substrate. It allocates several GB and runs for minutes, so it only
// runs when PLANARDFS_SCALE=1 is set (the CI bench-scaling job sets it on
// the nightly lane, not on PRs).
func TestTheorem2PipelineMillion(t *testing.T) {
	if os.Getenv("PLANARDFS_SCALE") == "" {
		t.Skip("set PLANARDFS_SCALE=1 to run the million-node pipeline")
	}
	runTheorem2Pipeline(t, "cylinderish", 1_000_000)
}
