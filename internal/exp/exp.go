// Package exp implements the experiment harness: one entry point per
// experiment of EXPERIMENTS.md (E1-E12), each returning table rows that the
// cmd tools print and bench_test.go reports as metrics. The paper has no
// empirical section; the experiments materialize the quantities its
// theorems and lemmas assert (see DESIGN.md section 3).
package exp

import (
	"fmt"

	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// DefaultFamilies are the graph families used by the sweeps.
var DefaultFamilies = []string{"grid", "cylinderish", "stacked", "sparse", "polygon"}

// configFor builds the standard configuration of an instance: BFS spanning
// tree rooted on the outer face.
func configFor(in *gen.Instance, kind string) (*weights.Config, error) {
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
	var tr *spanning.Tree
	var err error
	switch kind {
	case "bfs":
		tr, err = spanning.BFSTree(in.G, root)
	case "dfs":
		tr, err = spanning.DeepDFSTree(in.G, root)
	default:
		return nil, fmt.Errorf("exp: unknown tree kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
}

// E1Row is one sweep point of experiment E1 (Theorem 1: separator rounds
// scale with Õ(D), not with n).
type E1Row struct {
	Family          string
	N, M, D         int
	SepLen          int
	Phase           separator.Phase
	PaperRounds     int
	PipelinedRounds int
	// NormPaper is PaperRounds / (D·log⁴n) — two log factors from the PA
	// charge, two from the subroutine invocation counts (MARK-PATH) — flat
	// across the sweep iff the Õ(D) shape holds.
	NormPaper float64
}

// E1 sweeps separator computations across families and sizes.
func E1(families []string, sizes []int, seed int64) ([]E1Row, error) {
	var rows []E1Row
	for _, fam := range families {
		for _, n := range sizes {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return nil, err
			}
			cfg, err := configFor(in, "bfs")
			if err != nil {
				return nil, err
			}
			sep, err := separator.Find(cfg)
			if err != nil {
				return nil, err
			}
			nn := in.G.N()
			if maxC := separator.VerifyBalance(in.G, sep.Path); 3*maxC > 2*nn {
				return nil, fmt.Errorf("E1: unbalanced separator on %s", in.Name)
			}
			d := in.G.Diameter()
			l := shortcut.Log2Ceil(nn + 1)
			paper := dist.SeparatorOps(nn).Rounds(shortcut.PaperCost{D: d, N: nn}, 1)
			pipe := dist.SeparatorOps(nn).Rounds(shortcut.PipelinedCost{Depth: d}, 1)
			rows = append(rows, E1Row{
				Family: fam, N: nn, M: in.G.M(), D: d,
				SepLen: len(sep.Path), Phase: sep.Phase,
				PaperRounds: paper, PipelinedRounds: pipe,
				NormPaper: float64(paper) / float64((d+1)*l*l*l*l),
			})
		}
	}
	return rows, nil
}

// E3Row aggregates separator quality over many random instances
// (Lemma 1/5: always balanced, always a T-path cycle).
type E3Row struct {
	Family     string
	N          int
	Trials     int
	Balanced   int
	WorstRatio float64 // max over trials of maxComponent/n (must be <= 2/3)
	Phases     map[string]int
	Exhaustive int // safety-net activations (must be 0)
}

// E3 measures separator quality across seeds and tree kinds.
func E3(families []string, n, trials int) ([]E3Row, error) {
	var rows []E3Row
	for _, fam := range families {
		row := E3Row{Family: fam, N: n, Phases: map[string]int{}}
		for seed := int64(1); seed <= int64(trials); seed++ {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return nil, err
			}
			for _, kind := range []string{"bfs", "dfs"} {
				cfg, err := configFor(in, kind)
				if err != nil {
					return nil, err
				}
				sep, err := separator.Find(cfg)
				if err != nil {
					return nil, err
				}
				row.Trials++
				row.Phases[sep.Phase.String()]++
				if sep.Phase == separator.PhaseExhaustive {
					row.Exhaustive++
				}
				nn := in.G.N()
				maxC := separator.VerifyBalance(in.G, sep.Path)
				ratio := float64(maxC) / float64(nn)
				if ratio > row.WorstRatio {
					row.WorstRatio = ratio
				}
				if 3*maxC <= 2*nn {
					row.Balanced++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E4Row reports the weight-formula exactness count (Lemmas 3-4).
type E4Row struct {
	Family string
	N      int
	Edges  int // fundamental edges checked
	Exact  int // edges where Definition 2 equals the geometric count
}

// E4 verifies Definition 2 against geometric ground truth on every
// fundamental edge of freshly generated instances.
func E4(families []string, n int, seeds int) ([]E4Row, error) {
	var rows []E4Row
	for _, fam := range families {
		row := E4Row{Family: fam, N: n}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return nil, err
			}
			for _, kind := range []string{"bfs", "dfs"} {
				cfg, err := configFor(in, kind)
				if err != nil {
					return nil, err
				}
				for _, e := range cfg.FundamentalEdges() {
					row.Edges++
					gt, err := cfg.GroundTruthWeight(e)
					if err != nil {
						return nil, err
					}
					if cfg.Weight(e) == gt {
						row.Exact++
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E12Row compares separator sizes: the cycle separator's path length versus
// the BFS-level baseline's width.
type E12Row struct {
	Family       string
	N, D         int
	CycleSepLen  int
	LevelSepLen  int
	CycleBalance float64
	LevelBalance float64
}

// E12 compares separator sizes across families.
func E12(families []string, n int, seed int64) ([]E12Row, error) {
	var rows []E12Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		cfg, err := configFor(in, "bfs")
		if err != nil {
			return nil, err
		}
		sep, err := separator.Find(cfg)
		if err != nil {
			return nil, err
		}
		lvl := separator.BFSLevelSeparator(in.G, cfg.Tree.Root)
		nn := in.G.N()
		rows = append(rows, E12Row{
			Family: fam, N: nn, D: in.G.Diameter(),
			CycleSepLen:  len(sep.Path),
			LevelSepLen:  len(lvl),
			CycleBalance: float64(separator.VerifyBalance(in.G, sep.Path)) / float64(nn),
			LevelBalance: float64(separator.VerifyBalance(in.G, lvl)) / float64(nn),
		})
	}
	return rows, nil
}
