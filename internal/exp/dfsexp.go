package exp

import (
	"errors"
	"fmt"

	"planardfs/internal/congest"
	"planardfs/internal/dfs"
	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/sepengine"
	"planardfs/internal/shortcut"
)

// E2Row is one sweep point of experiment E2 (Theorem 2: DFS rounds scale
// with Õ(D); Awerbuch with Θ(n)).
type E2Row struct {
	Family           string
	N, D             int
	Phases           int
	MaxJoinSubPhases int
	PaperRounds      int
	PipelinedRounds  int
	AwerbuchTheory   int
	AwerbuchMeasured int
	// NormPaper is PaperRounds/(D·log⁵n): roughly flat iff the Õ(D) shape
	// holds (one log from the recursion phases, two from the PA charge, two
	// from the subroutine invocation counts).
	NormPaper float64
}

// E2 sweeps DFS-tree constructions across families and sizes, also running
// Awerbuch's algorithm at the message level.
func E2(families []string, sizes []int, seed int64) ([]E2Row, error) {
	var rows []E2Row
	for _, fam := range families {
		for _, n := range sizes {
			in, err := gen.ByName(fam, n, seed)
			if err != nil {
				return nil, err
			}
			fs := in.Emb.TraceFaces()
			root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
			pt, tr, err := dfs.Build(in.G, in.Emb, in.OuterDart, root)
			if err != nil {
				return nil, err
			}
			if err := dfs.IsDFSTree(in.G, root, pt.Parent); err != nil {
				return nil, err
			}
			nn := in.G.N()
			d := in.G.Diameter()
			ops := dist.DFSBuildOps(nn, tr.Phases, tr.MaxJoinSubPhases)
			paper := ops.Rounds(shortcut.PaperCost{D: d, N: nn}, 1)
			pipe := ops.Rounds(shortcut.PipelinedCost{Depth: d}, 1)

			nw := congest.New(in.G)
			nodes := congest.NewAwerbuchNodes(nw, root)
			awRounds, err := nw.Run(nodes, 10*nn+100)
			if err != nil {
				return nil, err
			}
			l := shortcut.Log2Ceil(nn + 1)
			rows = append(rows, E2Row{
				Family: fam, N: nn, D: d,
				Phases: tr.Phases, MaxJoinSubPhases: tr.MaxJoinSubPhases,
				PaperRounds: paper, PipelinedRounds: pipe,
				AwerbuchTheory:   dist.AwerbuchRounds(nn),
				AwerbuchMeasured: awRounds,
				NormPaper:        float64(paper) / float64((d+1)*l*l*l*l*l),
			})
		}
	}
	return rows, nil
}

// E7Row records the separator-absorption trajectory of the largest JOIN of
// a DFS run (Lemma 2: geometric decrease).
type E7Row struct {
	Family        string
	N             int
	Phases        int
	JoinSubPhases int
	MaxJoin       int
	// LogBound is ceil(log2 n): the paper's bound on sub-phases per join
	// up to the path-count factor.
	LogBound int
}

// E7 measures join convergence.
func E7(families []string, n int, seed int64) ([]E7Row, error) {
	var rows []E7Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		_, tr, err := dfs.Build(in.G, in.Emb, in.OuterDart, root)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E7Row{
			Family: fam, N: in.G.N(),
			Phases: tr.Phases, JoinSubPhases: tr.JoinSubPhases,
			MaxJoin: tr.MaxJoinSubPhases, LogBound: shortcut.Log2Ceil(in.G.N() + 1),
		})
	}
	return rows, nil
}

// E9Row records the recursion-depth shrink factor (Section 6.2).
type E9Row struct {
	Family string
	N      int
	Phases int
	// MaxShrink is the worst phase-over-phase ratio of the largest
	// remaining component (must be <= 2/3 + o(1)).
	MaxShrink    float64
	MaxComponent []int
}

// E9 measures component shrink per phase.
func E9(families []string, n int, seed int64) ([]E9Row, error) {
	var rows []E9Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		_, tr, err := dfs.Build(in.G, in.Emb, in.OuterDart, root)
		if err != nil {
			return nil, err
		}
		row := E9Row{Family: fam, N: in.G.N(), Phases: tr.Phases, MaxComponent: tr.MaxComponent}
		for i := 1; i < len(tr.MaxComponent); i++ {
			r := float64(tr.MaxComponent[i]) / float64(tr.MaxComponent[i-1])
			if r > row.MaxShrink {
				row.MaxShrink = r
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E10Row compares the deterministic separator against the randomized
// sampling baseline at one sample rate.
type E10Row struct {
	Family     string
	N          int
	SampleRate float64
	Trials     int
	// RandOK counts trials where the randomized baseline returned a
	// balanced separator; DetOK likewise for the deterministic algorithm
	// (expected: always Trials).
	RandOK, DetOK int
	AvgSamples    float64
}

// E10 sweeps the randomized baseline's sample rate. The base seed is
// threaded explicitly: trial t uses instance seed baseSeed+t, and the
// sampling RNG is derived from the same seed, so a run is reproducible
// from its arguments alone (no global generator involved).
func E10(family string, n int, rates []float64, trials int, baseSeed int64) ([]E10Row, error) {
	var rows []E10Row
	for _, rate := range rates {
		row := E10Row{Family: family, N: n, SampleRate: rate}
		totalSamples := 0
		for t := 0; t < trials; t++ {
			seed := baseSeed + int64(t)
			in, err := gen.ByName(family, n, seed)
			if err != nil {
				return nil, err
			}
			cfg, err := configFor(in, "bfs")
			if err != nil {
				return nil, err
			}
			row.Trials++
			nn := in.G.N()
			dsep, err := separator.Find(cfg)
			if err != nil {
				return nil, err
			}
			if 3*separator.VerifyBalance(in.G, dsep.Path) <= 2*nn {
				row.DetOK++
			}
			// Through the engine registry; the seed-threading contract is
			// unchanged (trial seed * 1337, as documented in PR 4), and a
			// registry success implies balance (the engine rejects
			// unbalanced faces as a soft failure).
			res, err := sepengine.Find("randomized", cfg, sepengine.Options{
				Seed: seed * 1337, SampleRate: rate, Margin: 0.03,
			})
			if err == nil {
				totalSamples += res.Samples
				row.RandOK++
			} else {
				var nse *sepengine.NoSeparatorError
				if !errors.As(err, &nse) {
					return nil, err
				}
				totalSamples += nse.Samples
			}
		}
		row.AvgSamples = float64(totalSamples) / float64(row.Trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// E11Row validates the Awerbuch baseline's Θ(n) round count at the message
// level.
type E11Row struct {
	Family   string
	N        int
	Rounds   int
	Bound    int
	Messages int64
}

// E11 runs Awerbuch's DFS across families.
func E11(families []string, n int, seed int64) ([]E11Row, error) {
	var rows []E11Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		nw := congest.New(in.G)
		nodes := congest.NewAwerbuchNodes(nw, 0)
		rounds, err := nw.Run(nodes, 10*in.G.N()+100)
		if err != nil {
			return nil, err
		}
		parent := make([]int, in.G.N())
		for v := range parent {
			parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
		}
		if err := dfs.IsDFSTree(in.G, 0, parent); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", fam, err)
		}
		rows = append(rows, E11Row{
			Family: fam, N: in.G.N(), Rounds: rounds,
			Bound: dist.AwerbuchRounds(in.G.N()), Messages: nw.Stats().Messages,
		})
	}
	return rows, nil
}
