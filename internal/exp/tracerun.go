package exp

import (
	"planardfs/internal/congest"
	"planardfs/internal/dfs"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/trace"
)

// TraceSummary reports one fully instrumented run (TraceDFS).
type TraceSummary struct {
	Family string
	N, M   int
	// Rounds is the final value of the virtual round clock: charged rounds
	// of the Theorem 2 run plus the simulated rounds of the baseline.
	Rounds int64
	Spans  int
	// Layers lists the distinct trace layers present in the span tree.
	Layers []string
	DFS    *dfs.Trace
	// Awerbuch is the network instrumentation of the message-level baseline.
	Awerbuch congest.Stats
}

// TraceSeparator runs one instrumented Theorem 1 computation (BFS-tree
// configuration) on a generated instance and records it on rec.
func TraceSeparator(family string, n int, seed int64, rec *trace.Recorder) (*separator.Separator, error) {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return nil, err
	}
	cfg, err := configFor(in, "bfs")
	if err != nil {
		return nil, err
	}
	cfg.Tracer = rec
	return separator.Find(cfg)
}

// TraceDFS runs the fully instrumented pipeline on one generated instance
// and records it on rec: the Theorem 2 DFS construction (spans on the DFS,
// separator, lemma and primitive layers, stamped by the charged round
// clock), then the message-level Awerbuch baseline over the same recorder
// (network-layer spans, one simulated round each). Same inputs produce a
// byte-identical trace: the recorder never reads wall-clock time.
func TraceDFS(family string, n int, seed int64, rec *trace.Recorder) (*TraceSummary, error) {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return nil, err
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]

	_, dtr, err := dfs.BuildTraced(in.G, in.Emb, in.OuterDart, root, rec)
	if err != nil {
		return nil, err
	}

	// The Awerbuch baseline as a real message-level CONGEST program on the
	// same round clock, for side-by-side comparison in the trace viewer.
	bsp := rec.StartSpan(trace.LayerNetwork, "baseline.awerbuch")
	nw := congest.New(in.G)
	nw.Tracer = rec
	nodes := congest.NewAwerbuchNodes(nw, root)
	if _, err := nw.Run(nodes, 10*in.G.N()+100); err != nil {
		return nil, err
	}
	bsp.SetAttr("rounds", int64(nw.Stats().Rounds))
	bsp.End()

	spans := rec.Spans()
	layerSet := map[string]bool{}
	for _, sp := range spans {
		layerSet[sp.Layer.String()] = true
	}
	var layers []string
	for _, l := range []trace.Layer{
		trace.LayerNetwork, trace.LayerPrimitive, trace.LayerLemma,
		trace.LayerSeparator, trace.LayerDFS,
	} {
		if layerSet[l.String()] {
			layers = append(layers, l.String())
		}
	}
	return &TraceSummary{
		Family: in.Name, N: in.G.N(), M: in.G.M(),
		Rounds: rec.Now(), Spans: len(spans), Layers: layers,
		DFS: dtr, Awerbuch: nw.Stats(),
	}, nil
}
