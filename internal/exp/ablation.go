package exp

import (
	"planardfs/internal/gen"
	"planardfs/internal/separator"
)

// E13Row summarizes one ablation of the separator algorithm: how often the
// exhaustive safety net has to rescue the run, and how often the primary
// result (before the safety net) would have been unbalanced. The full
// algorithm must show zero in both columns; each ablation demonstrates the
// removed design element is load-bearing.
type E13Row struct {
	Ablation   string
	Trials     int
	Exhaustive int
	Unbalanced int
	Errors     int
}

// Ablations enumerates the configurations of experiment E13.
var Ablations = []struct {
	Name string
	Opt  separator.Options
}{
	{"full", separator.Options{}},
	{"no-long-path", separator.Options{DisableLongPath: true}},
	{"no-hidden-fallback", separator.Options{DisableHiddenFallback: true}},
	{"no-augmentation", separator.Options{DisableAugmentation: true}},
	{"no-virtual-sweep", separator.Options{DisableVirtualSweep: true}},
}

// E13 runs the ablation study over the given families with both tree kinds.
func E13(families []string, n, trials int) ([]E13Row, error) {
	var rows []E13Row
	for _, abl := range Ablations {
		row := E13Row{Ablation: abl.Name}
		for _, fam := range families {
			for seed := int64(1); seed <= int64(trials); seed++ {
				in, err := gen.ByName(fam, n, seed)
				if err != nil {
					return nil, err
				}
				for _, kind := range []string{"bfs", "dfs"} {
					cfg, err := configFor(in, kind)
					if err != nil {
						return nil, err
					}
					row.Trials++
					sep, err := separator.FindWithOptions(cfg, abl.Opt)
					if err != nil {
						row.Errors++
						continue
					}
					if sep.Phase == separator.PhaseExhaustive {
						row.Exhaustive++
					}
					nn := in.G.N()
					if 3*separator.VerifyBalance(in.G, sep.Path) > 2*nn {
						row.Unbalanced++
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
