package exp

import (
	"planardfs/internal/congest"
	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// E5Row measures the DFS-ORDER fragment-merging algorithm (Lemma 11):
// phases stay O(log n) even when the tree depth is Θ(n).
type E5Row struct {
	Family    string
	N         int
	TreeDepth int
	Phases    int
	LogBound  int
	PARounds  int // rounds of the run's Ops under the paper model at D=depth? reported by caller
}

// E5 runs the distributed DFS-order computation on deep spanning trees.
func E5(families []string, n int, seed int64) ([]E5Row, error) {
	var rows []E5Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		tr, err := spanning.DeepDFSTree(in.G, root)
		if err != nil {
			return nil, err
		}
		cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
		if err != nil {
			return nil, err
		}
		order := make([][]int, tr.N())
		for v := 0; v < tr.N(); v++ {
			order[v] = cfg.ChildOrder(v)
		}
		res := dist.DFSOrderDistributed(tr, order)
		// Cross-check against the centralized orders.
		for v := 0; v < tr.N(); v++ {
			if res.PiL[v] != cfg.PiL[v] || res.PiR[v] != cfg.PiR[v] {
				return nil, errMismatch(fam, v)
			}
		}
		rows = append(rows, E5Row{
			Family: fam, N: in.G.N(), TreeDepth: tr.MaxDepth(),
			Phases: res.Phases, LogBound: shortcut.Log2Ceil(tr.MaxDepth() + 2),
			PARounds: res.Ops.PA,
		})
	}
	return rows, nil
}

type mismatchError struct {
	fam string
	v   int
}

func (e mismatchError) Error() string {
	return "E5: distributed DFS order mismatch on " + e.fam
}

func errMismatch(fam string, v int) error { return mismatchError{fam, v} }

// E6Row measures MARK-PATH (Lemma 13): iterations O(log² n) versus the
// trivial O(path length).
type E6Row struct {
	Family     string
	N          int
	PathLen    int
	Phases     int
	Iterations int
	LogSquared int
}

// E6 marks the longest root-to-leaf path of a deep spanning tree.
func E6(families []string, n int, seed int64) ([]E6Row, error) {
	var rows []E6Row
	for _, fam := range families {
		in, err := gen.ByName(fam, n, seed)
		if err != nil {
			return nil, err
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		tr, err := spanning.DeepDFSTree(in.G, root)
		if err != nil {
			return nil, err
		}
		deepest := 0
		for v := 0; v < tr.N(); v++ {
			if tr.Depth[v] > tr.Depth[deepest] {
				deepest = v
			}
		}
		res := dist.MarkPathDistributed(tr, root, deepest)
		l := shortcut.Log2Ceil(in.G.N() + 1)
		rows = append(rows, E6Row{
			Family: fam, N: in.G.N(), PathLen: tr.Depth[deepest] + 1,
			Phases: res.Phases, Iterations: res.Iterations, LogSquared: l * l,
		})
	}
	return rows, nil
}

// E8Row measures part-wise aggregation: measured pipelined rounds versus
// the cost-model estimates, and the tree-restricted shortcut quality.
type E8Row struct {
	Family          string
	N, D, K         int
	MeasuredRounds  int
	PipelinedEst    int
	PaperEst        int
	MaxCongestion   int
	MaxDilation     int
	MessagesPerNode float64
}

// E8 sweeps the number of parts on one instance.
func E8(family string, n int, ks []int, seed int64) ([]E8Row, error) {
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		return nil, err
	}
	tr, err := spanning.BFSTree(in.G, 0)
	if err != nil {
		return nil, err
	}
	d := in.G.Diameter()
	var rows []E8Row
	for _, k := range ks {
		// BFS-layer-interval parts: connected by construction when cut by
		// contiguous BFS-visit segments of a spanning-tree DFS order...
		// simplest connected partition: k segments of a DFS preorder.
		partOf := dfsSegments(tr, k)
		part, err := shortcut.NewPartition(partOf)
		if err != nil {
			return nil, err
		}
		if err := part.Validate(in.G); err != nil {
			return nil, err
		}
		value := make([]int, in.G.N())
		for v := range value {
			value[v] = 1
		}
		res, err := shortcut.RunPA(in.G, 0, part, value, congest.OpSum)
		if err != nil {
			return nil, err
		}
		q, err := shortcut.MeasureQuality(in.G, 0, part)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E8Row{
			Family: family, N: in.G.N(), D: d, K: part.K(),
			MeasuredRounds:  res.Rounds,
			PipelinedEst:    (dist.Ops{PA: 1}).Rounds(shortcut.PipelinedCost{Depth: d}, part.K()),
			PaperEst:        (dist.Ops{PA: 1}).Rounds(shortcut.PaperCost{D: d, N: in.G.N()}, part.K()),
			MaxCongestion:   q.MaxCongestion,
			MaxDilation:     q.MaxDilation,
			MessagesPerNode: float64(res.Stats.Messages) / float64(in.G.N()),
		})
	}
	return rows, nil
}

// dfsSegments partitions vertices into about k connected parts by carving
// subtree chunks of a spanning tree: walking vertices bottom-up, each
// vertex accumulates the size of its uncut region; when a region reaches
// n/k vertices it is cut off as a part. Every part is a connected subtree
// region, so the partition is valid for part-wise aggregation.
func dfsSegments(tr *spanning.Tree, k int) []int {
	n := tr.N()
	target := (n + k - 1) / k
	// Preorder walk; reverse of it is a valid bottom-up order.
	var order []int
	stack := []int{tr.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		cs := tr.Children(v)
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, int(cs[i]))
		}
	}
	cnt := make([]int, n)
	cut := make([]bool, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		c := 1
		for _, ch := range tr.Children(v) {
			if !cut[ch] {
				c += cnt[ch]
			}
		}
		cnt[v] = c
		if c >= target || v == tr.Root {
			cut[v] = true
		}
	}
	// Top-down part assignment: a cut vertex roots a fresh part.
	partOf := make([]int, n)
	next := 0
	for _, v := range order {
		if cut[v] {
			partOf[v] = next
			next++
		} else {
			partOf[v] = partOf[tr.Parent[v]]
		}
	}
	return partOf
}
