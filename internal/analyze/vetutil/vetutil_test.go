package vetutil

import "testing"

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		text, tag, reason string
		ok                bool
	}{
		{"//planarvet:narrowok id fits", "narrowok", "id fits", true},
		{"//planarvet:narrowok", "narrowok", "", true},
		{"//planarvet:narrowok\t tabbed reason", "narrowok", "tabbed reason", true},
		{`//planarvet:narrowok // want "bare"`, "narrowok", "", true},
		{`//planarvet:narrowok real reason // want "bare"`, "narrowok", "real reason", true},
		{"// not a directive", "", "", false},
	}
	for _, c := range cases {
		tag, reason, ok := splitDirective(c.text)
		if tag != c.tag || reason != c.reason || ok != c.ok {
			t.Errorf("splitDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, tag, reason, ok, c.tag, c.reason, c.ok)
		}
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, list string
		want       bool
	}{
		{"planardfs/internal/congest", "internal/congest", true},
		{"internal/congest", "internal/congest", true},
		{"mapitertest/internal/congest", "internal/congest", true},
		{"planardfs/internal/congestion", "internal/congest", false},
		{"planardfs/myinternal/congest", "internal/congest", false},
		{"planardfs/internal/dist", "internal/congest,internal/dist", true},
		{"planardfs/internal/dist", "", false},
		{"planardfs/internal/dist", " internal/dist ", true},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.list); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.path, c.list, got, c.want)
		}
	}
}
