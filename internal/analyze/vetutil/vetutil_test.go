package vetutil

import "testing"

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, list string
		want       bool
	}{
		{"planardfs/internal/congest", "internal/congest", true},
		{"internal/congest", "internal/congest", true},
		{"mapitertest/internal/congest", "internal/congest", true},
		{"planardfs/internal/congestion", "internal/congest", false},
		{"planardfs/myinternal/congest", "internal/congest", false},
		{"planardfs/internal/dist", "internal/congest,internal/dist", true},
		{"planardfs/internal/dist", "", false},
		{"planardfs/internal/dist", " internal/dist ", true},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.list); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.path, c.list, got, c.want)
		}
	}
}
