// Package vetutil holds the helpers shared by the planarvet analyzers:
// //planarvet:<tag> directive lookup, import-path suffix matching and
// test-file detection.
package vetutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DirectivePrefix is the comment prefix of a planarvet justification
// annotation: //planarvet:<tag> <reason>.
const DirectivePrefix = "//planarvet:"

// Directives indexes every //planarvet:<tag> comment of a pass by file,
// line and tag, so analyzers can answer "is this report suppressed?" in
// O(1) per site.
type Directives struct {
	fset  *token.FileSet
	byTag map[string]map[fileLine]bool
}

type fileLine struct {
	file string
	line int
}

// NewDirectives scans the files of pass once and indexes its planarvet
// annotations.
func NewDirectives(pass *analysis.Pass) *Directives {
	d := &Directives{fset: pass.Fset, byTag: make(map[string]map[fileLine]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
				if !ok {
					continue
				}
				tag := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					tag = rest[:i]
				}
				pos := pass.Fset.Position(c.Pos())
				m := d.byTag[tag]
				if m == nil {
					m = make(map[fileLine]bool)
					d.byTag[tag] = m
				}
				m[fileLine{pos.Filename, pos.Line}] = true
			}
		}
	}
	return d
}

// SuppressedAt reports whether a //planarvet:<tag> annotation covers the
// source line of pos: the annotation may sit on the same line (trailing
// comment) or on the line directly above.
func (d *Directives) SuppressedAt(pos token.Pos, tag string) bool {
	m := d.byTag[tag]
	if m == nil {
		return false
	}
	p := d.fset.Position(pos)
	return m[fileLine{p.Filename, p.Line}] || m[fileLine{p.Filename, p.Line - 1}]
}

// SuppressedDecl reports whether a declaration is annotated: like
// SuppressedAt, but the annotation may also appear anywhere in the doc
// comment groups attached to the declaration (the TypeSpec's own doc or
// the enclosing GenDecl's).
func (d *Directives) SuppressedDecl(pos token.Pos, tag string, docs ...*ast.CommentGroup) bool {
	if d.SuppressedAt(pos, tag) {
		return true
	}
	for _, cg := range docs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			if rest == tag || strings.HasPrefix(rest, tag+" ") || strings.HasPrefix(rest, tag+"\t") {
				return true
			}
		}
	}
	return false
}

// PathMatches reports whether the import path matches any of the
// comma-separated path suffixes in list. A suffix matches when it equals
// the path or terminates it at a path-segment boundary, so
// "internal/congest" matches both "planardfs/internal/congest" and a
// testdata module's "x/internal/congest", but not "internal/congestion".
func PathMatches(path, list string) bool {
	for _, suf := range strings.Split(list, ",") {
		suf = strings.TrimSpace(suf)
		if suf == "" {
			continue
		}
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file; the analyzers
// check library code only.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
