// Package vetutil holds the helpers shared by the planarvet analyzers:
// //planarvet:<tag> directive lookup, bare-directive (missing reason)
// reporting, import-path suffix matching and test-file detection.
package vetutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DirectivePrefix is the comment prefix of a planarvet justification
// annotation: //planarvet:<tag> <reason>.
const DirectivePrefix = "//planarvet:"

// Directives indexes every //planarvet:<tag> comment of a pass by file,
// line and tag, so analyzers can answer "is this report suppressed?" in
// O(1) per site. Each entry remembers its reason string (empty for a bare
// directive) and position, so the owning analyzer can warn on directives
// used as mute buttons rather than reviewed claims.
type Directives struct {
	fset  *token.FileSet
	byTag map[string]map[fileLine]string // reason text, "" when bare
	all   []directive
}

type fileLine struct {
	file string
	line int
}

type directive struct {
	tag    string
	reason string
	pos    token.Pos
}

// splitDirective parses a //planarvet:... comment into tag and reason. A
// trailing analyzer-fixture annotation (`// want "..."`) is not part of
// the reason — stripping it lets fixtures place a want on the directive's
// own line, which is where bare-directive warnings are reported.
func splitDirective(text string) (tag, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, DirectivePrefix)
	if !ok {
		return "", "", false
	}
	tag = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		tag = rest[:i]
		reason = strings.TrimSpace(rest[i+1:])
	}
	if i := strings.Index(reason, "// want"); i >= 0 {
		reason = strings.TrimSpace(reason[:i])
	}
	return tag, reason, true
}

// NewDirectives scans the files of pass once and indexes its planarvet
// annotations.
func NewDirectives(pass *analysis.Pass) *Directives {
	d := &Directives{fset: pass.Fset, byTag: make(map[string]map[fileLine]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				tag, reason, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := d.byTag[tag]
				if m == nil {
					m = make(map[fileLine]string)
					d.byTag[tag] = m
				}
				m[fileLine{pos.Filename, pos.Line}] = reason
				d.all = append(d.all, directive{tag: tag, reason: reason, pos: c.Pos()})
			}
		}
	}
	return d
}

// SuppressedAt reports whether a //planarvet:<tag> annotation covers the
// source line of pos: the annotation may sit on the same line (trailing
// comment) or on the line directly above.
func (d *Directives) SuppressedAt(pos token.Pos, tag string) bool {
	m := d.byTag[tag]
	if m == nil {
		return false
	}
	p := d.fset.Position(pos)
	_, same := m[fileLine{p.Filename, p.Line}]
	if same {
		return true
	}
	_, above := m[fileLine{p.Filename, p.Line - 1}]
	return above
}

// ReasonAt returns the reason string of the //planarvet:<tag> annotation
// covering the source line of pos (same line or the line directly above)
// and whether such an annotation exists.
func (d *Directives) ReasonAt(pos token.Pos, tag string) (string, bool) {
	m := d.byTag[tag]
	if m == nil {
		return "", false
	}
	p := d.fset.Position(pos)
	if r, ok := m[fileLine{p.Filename, p.Line}]; ok {
		return r, true
	}
	r, ok := m[fileLine{p.Filename, p.Line - 1}]
	return r, ok
}

// SuppressedDecl reports whether a declaration is annotated: like
// SuppressedAt, but the annotation may also appear anywhere in the doc
// comment groups attached to the declaration (the TypeSpec's own doc or
// the enclosing GenDecl's).
func (d *Directives) SuppressedDecl(pos token.Pos, tag string, docs ...*ast.CommentGroup) bool {
	_, ok := d.DeclReason(pos, tag, docs...)
	return ok
}

// DeclReason returns the reason of a declaration-level //planarvet:<tag>
// annotation and whether one exists: the annotation may cover the
// declaration's line (as in ReasonAt) or appear anywhere in the attached
// doc comment groups.
func (d *Directives) DeclReason(pos token.Pos, tag string, docs ...*ast.CommentGroup) (string, bool) {
	if r, ok := d.ReasonAt(pos, tag); ok {
		return r, true
	}
	for _, cg := range docs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			t, reason, ok := splitDirective(c.Text)
			if ok && t == tag {
				return reason, true
			}
		}
	}
	return "", false
}

// ReportBare reports every bare //planarvet:<tag> directive of the pass —
// a directive with no reason string after the tag — for the given tags.
// Each analyzer calls it for the tags it owns, so a directive is warned
// about exactly once tree-wide. An annotation is a reviewed claim that an
// invariant holds for a non-obvious reason; without the reason it is just
// a mute button, which this warning keeps out of the tree. Test files are
// exempt (fixtures and white-box tests annotate freely).
func (d *Directives) ReportBare(pass *analysis.Pass, tags ...string) {
	owned := make(map[string]bool, len(tags))
	for _, t := range tags {
		owned[t] = true
	}
	for _, dir := range d.all {
		if !owned[dir.tag] || dir.reason != "" || InTestFile(pass, dir.pos) {
			continue
		}
		pass.Reportf(dir.pos,
			"bare //planarvet:%s directive: every escape must carry a reason (//planarvet:%s <why the invariant holds>)",
			dir.tag, dir.tag)
	}
}

// PathMatches reports whether the import path matches any of the
// comma-separated path suffixes in list. A suffix matches when it equals
// the path or terminates it at a path-segment boundary, so
// "internal/congest" matches both "planardfs/internal/congest" and a
// testdata module's "x/internal/congest", but not "internal/congestion".
func PathMatches(path, list string) bool {
	for _, suf := range strings.Split(list, ",") {
		suf = strings.TrimSpace(suf)
		if suf == "" {
			continue
		}
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file; the analyzers
// check library code only.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
