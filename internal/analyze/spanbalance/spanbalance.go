// Package spanbalance defines the planarvet analyzer that keeps the trace
// span tree well-formed.
//
// Trace spans are intervals on the virtual round clock; the exporters
// (JSONL, Chrome trace_event) and the trace-identity regression tests all
// assume every StartSpan is matched by an End in the function that opened
// it. A leaked span corrupts the open-span stack of the recorder for
// everything started after it, which surfaces far from the culprit. The
// analyzer enforces the pairing statically: the result of every
// trace.Tracer.StartSpan call must be bound to a local variable on which
// .End() is called somewhere in the same function (a plain call on the
// fall-through path or a defer — including defers wrapped in a closure).
// Returning the fresh span transfers ownership to the caller and is
// allowed; discarding it, or storing it anywhere a local .End() cannot be
// proven, is flagged. Suppress deliberate ownership transfers with
// //planarvet:spanok <reason>.
package spanbalance

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"planardfs/internal/analyze/vetutil"
)

// Analyzer checks that every trace span opened in a function is closed.
var Analyzer = &analysis.Analyzer{
	Name:     "spanbalance",
	Doc:      "every trace.StartSpan must be paired with an End on the returned span in the same function (suppress with //planarvet:spanok <reason>)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "spanok")

	// opened maps the local variable bound to a StartSpan result to the
	// position of the opening call; ended records every object that has an
	// .End() call on it. Variable objects are scoped to their declaring
	// function, so file-wide collection cannot conflate functions.
	type openSite struct {
		call *ast.CallExpr
		name string
	}
	opened := map[types.Object]openSite{}
	ended := map[types.Object]bool{}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if vetutil.InTestFile(pass, call.Pos()) {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" && len(call.Args) == 0 {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					ended[obj] = true
				}
			}
		}
		if !isStartSpan(pass, call) {
			return true
		}
		if dirs.SuppressedAt(call.Pos(), "spanok") {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.AssignStmt:
			if obj := assignedIdent(pass, parent, call); obj != nil {
				opened[obj] = openSite{call: call, name: obj.Name()}
				return true
			}
			pass.Reportf(call.Pos(),
				"result of StartSpan is not bound to a local variable, so its End cannot be checked; bind it locally, or annotate //planarvet:spanok <reason>")
		case *ast.ValueSpec:
			for i, v := range parent.Values {
				if v == call && i < len(parent.Names) {
					if obj := pass.TypesInfo.Defs[parent.Names[i]]; obj != nil && parent.Names[i].Name != "_" {
						opened[obj] = openSite{call: call, name: parent.Names[i].Name}
						return true
					}
				}
			}
			pass.Reportf(call.Pos(), "result of StartSpan is discarded; the span is never ended")
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of StartSpan is discarded; the span is never ended")
		case *ast.ReturnStmt:
			// Ownership transfers to the caller.
		default:
			// Argument, composite literal, etc.: ownership is elsewhere;
			// the word-of-honour cases stay out of scope.
		}
		return true
	})

	for obj, site := range opened {
		if !ended[obj] {
			pass.Reportf(site.call.Pos(),
				"trace span %s is started but never ended in this function; add defer %s.End(), or annotate //planarvet:spanok <reason>",
				site.name, site.name)
		}
	}
	return nil, nil
}

// isStartSpan reports whether call invokes a StartSpan method declared in
// an internal/trace package (concrete or through the Tracer interface).
func isStartSpan(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "internal/trace" || strings.HasSuffix(path, "/internal/trace")
}

// assignedIdent returns the variable object that receives call's result in
// assign, or nil when the result lands anywhere a local End cannot be
// tracked (blank identifier, struct field, map entry, multi-value mismatch).
func assignedIdent(pass *analysis.Pass, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	for i, rhs := range assign.Rhs {
		if rhs != call {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	return nil
}
