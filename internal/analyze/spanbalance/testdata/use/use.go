// Package use exercises the span pairing rule.
package use

import "spantest/internal/trace"

func DeferClose(tr trace.Tracer) {
	sp := tr.StartSpan(0, "ok-defer")
	defer sp.End()
}

func DirectClose(tr trace.Tracer) {
	sp := tr.StartSpan(0, "ok-direct")
	sp.SetAttr("k", 1)
	sp.End()
}

func ClosureClose(tr trace.Tracer) {
	sp := tr.StartSpan(0, "ok-closure")
	defer func() { sp.End() }()
}

func Leaked(tr trace.Tracer) {
	sp := tr.StartSpan(0, "leaked") // want "trace span sp is started but never ended"
	sp.SetAttr("k", 1)
}

func Discarded(tr trace.Tracer) {
	tr.StartSpan(0, "discarded") // want "discarded; the span is never ended"
}

func BlankAssign(tr trace.Tracer) {
	_ = tr.StartSpan(0, "blank") // want "not bound to a local variable"
}

type holder struct{ sp trace.Span }

func FieldStore(tr trace.Tracer, h *holder) {
	h.sp = tr.StartSpan(0, "field") // want "not bound to a local variable"
}

func FieldStoreSuppressed(tr trace.Tracer, h *holder) {
	h.sp = tr.StartSpan(0, "field-ok") //planarvet:spanok closed in holder.finish
}

func Transfer(tr trace.Tracer) trace.Span {
	return tr.StartSpan(0, "transferred")
}

func ConcreteRecorder(r *trace.Recorder) {
	sp := r.StartSpan(0, "concrete-leak") // want "trace span sp is started but never ended"
	_ = sp
}

func Reassigned(tr trace.Tracer) {
	var sp trace.Span
	sp = tr.StartSpan(0, "var-assign")
	sp.End()
}

func NotATraceSpan(s interface{ StartSpan(int, string) int }) {
	// StartSpan from outside internal/trace is not ours.
	s.StartSpan(0, "other")
}
