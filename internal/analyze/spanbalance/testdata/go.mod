module spantest

go 1.22
