// Package trace is a fixture stub of the tracing subsystem: its import
// path suffix is what the spanbalance analyzer keys on.
package trace

type Span interface {
	SetAttr(key string, val int64)
	End()
}

type Tracer interface {
	StartSpan(layer int, name string) Span
}

type Recorder struct{}

func (*Recorder) StartSpan(layer int, name string) Span { return nopSpan{} }

type nopSpan struct{}

func (nopSpan) SetAttr(string, int64) {}
func (nopSpan) End()                  {}
