package spanbalance_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestSpanBalance(t *testing.T) {
	analyzetest.Run(t, "spanbalance", "testdata")
}
