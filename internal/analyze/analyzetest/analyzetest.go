// Package analyzetest is the test harness for the planarvet analyzers.
//
// The stock x/tools analysistest package needs go/packages, which the
// offline vendored x/tools subset does not carry; this harness gets the
// same effect through the front door instead: it builds cmd/planarvet
// once, runs it via `go vet -vettool` over a self-contained testdata
// module (so the go command does the loading exactly as it will in CI),
// and diffs the reported diagnostics against `// want "regexp"`
// annotations in the fixture sources.
//
// Fixture layout: each analyzer package owns a testdata/ directory that is
// a complete Go module (its own go.mod, stdlib-only imports). Package
// paths inside the module are chosen to exercise the analyzers'
// import-path suffix matching (for example mapitertest/internal/congest is
// a "deterministic package" to mapiter). A line may carry one or more
// want annotations:
//
//	for k := range m { // want "range over map"
//
// Every want must be matched by a diagnostic on its line, and every
// diagnostic must be covered by a want.
package analyzetest

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binary builds cmd/planarvet once per test process and returns its path.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		buildDir, buildErr = os.MkdirTemp("", "planarvet-test")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, "planarvet"), "planardfs/cmd/planarvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building planarvet: %w\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "planarvet")
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}

// diag is one reported diagnostic, keyed by fixture-relative file and line.
type diag struct {
	file string
	line int
	msg  string
}

// Run vets the testdata module at dir with only the named analyzer enabled
// and checks the diagnostics against the fixtures' want annotations. Extra
// analyzer flags ("-mapiter.packages=x") may be passed through.
func Run(t *testing.T, analyzer, dir string, flags ...string) {
	t.Helper()
	bin := binary(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}

	args := append([]string{"vet", "-vettool=" + bin, "-" + analyzer}, flags...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = abs
	out, _ := cmd.CombinedOutput() // findings exit non-zero by design

	got := parseDiagnostics(t, abs, string(out))
	want := parseWants(t, abs)

	matched := make([]bool, len(got))
	for key, res := range want {
		for _, re := range res {
			found := false
			for i, d := range got {
				if matched[i] || d.file != key.file || d.line != key.line {
					continue
				}
				if re.MatchString(d.msg) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: no diagnostic matching %q (analyzer %s)", key.file, key.line, re, analyzer)
			}
		}
	}
	for i, d := range got {
		if !matched[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	if t.Failed() {
		t.Logf("go vet output:\n%s", out)
	}
}

// RunExpectFindings vets the fixture with extra analyzer flags and asserts
// only that at least one diagnostic is produced. It is used for
// flag-override cases, where the overridden configuration invalidates the
// fixture's line-exact want annotations.
func RunExpectFindings(t *testing.T, analyzer, dir string, flags ...string) {
	t.Helper()
	bin := binary(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"vet", "-vettool=" + bin, "-" + analyzer}, flags...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = abs
	out, _ := cmd.CombinedOutput()
	if len(parseDiagnostics(t, abs, string(out))) == 0 {
		t.Errorf("expected at least one %s diagnostic with flags %v; go vet output:\n%s", analyzer, flags, out)
	}
}

var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// parseDiagnostics extracts file:line:col diagnostics from go vet output,
// normalizing paths relative to the fixture root.
func parseDiagnostics(t *testing.T, root, out string) []diag {
	t.Helper()
	var ds []diag
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "exit status") {
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		rel, err := filepath.Rel(root, file)
		if err != nil {
			rel = file
		}
		n, _ := strconv.Atoi(m[2])
		ds = append(ds, diag{file: rel, line: n, msg: m[3]})
	}
	return ds
}

type wantKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// parseWants scans every fixture .go file for // want annotations.
func parseWants(t *testing.T, root string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := wantKey{file: rel, line: i + 1}
			for _, pat := range splitPatterns(m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %w", rel, i+1, pat, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// splitPatterns parses a want payload: one or more "double-quoted" or
// `backquoted` regexps separated by spaces.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if q, err := strconv.Unquote(s[:end+1]); err == nil {
				pats = append(pats, q)
			}
			s = strings.TrimSpace(s[min(end+1, len(s)):])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return pats
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return pats
		}
	}
	return pats
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
