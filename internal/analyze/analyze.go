// Package analyze is the planarvet analyzer suite: custom go/analysis
// analyzers that machine-check the invariants the repo's determinism and
// CONGEST-model contracts rest on. The headline guarantees — byte-identical
// inbox orderings between the sequential and sharded engines, trace
// identity across runs, certification verdict equivalence — are all
// statements about *reproducible execution*, and each has a class of Go
// code that silently breaks it:
//
//   - map iteration order leaking into message schedules, statistics or
//     trace output (mapiter),
//   - the shared global math/rand generator or wall-clock reads in library
//     code (rngwallclock),
//   - message payload types that smuggle unbounded data through the
//     O(log n)-bit CONGEST word interface (congestmsg),
//   - trace spans that are opened but never closed, corrupting the span
//     tree every exporter consumes (spanbalance).
//
// A second group machine-checks the flat-substrate contracts of the int32
// SoA/CSR layout and the engine registry:
//
//   - unchecked int→int32 narrowing in the substrate packages, where a
//     value past 2³¹ wraps silently into a valid-looking id (narrow32),
//   - allocation sites in functions declared allocation-free, each
//     annotation naming the AllocsPerRun test that enforces it at runtime
//     (noalloc),
//   - engine registration outside init, non-constant registry names,
//     duplicate names, and results that bypass cert validation
//     (registryinit),
//   - error identity comparisons and fmt.Errorf wrapping without %w,
//     which cut the errors.Is/As chain (errwrap).
//
// Every analyzer has a justification-comment escape hatch of the form
// //planarvet:<tag> <reason>, placed on the flagged line, the line above
// it, or (for declarations) in the doc comment. The reason is mandatory
// and machine-enforced: a directive with no reason is reported as a
// warning tree-wide by the analyzer owning its tag. An annotation is a
// reviewed claim that the invariant holds for a non-obvious reason, not a
// mute button.
//
// The suite is run by cmd/planarvet, which drives the analyzers through
// go vet's unitchecker protocol so the go command handles package loading,
// caching and test-variant packages.
package analyze

import (
	"golang.org/x/tools/go/analysis"

	"planardfs/internal/analyze/congestmsg"
	"planardfs/internal/analyze/errwrap"
	"planardfs/internal/analyze/mapiter"
	"planardfs/internal/analyze/narrow32"
	"planardfs/internal/analyze/noalloc"
	"planardfs/internal/analyze/registryinit"
	"planardfs/internal/analyze/rngwallclock"
	"planardfs/internal/analyze/spanbalance"
)

// All returns the full planarvet analyzer suite in registration order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		rngwallclock.Analyzer,
		congestmsg.Analyzer,
		spanbalance.Analyzer,
		narrow32.Analyzer,
		noalloc.Analyzer,
		registryinit.Analyzer,
		errwrap.Analyzer,
	}
}
