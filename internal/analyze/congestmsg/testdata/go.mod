module congestmsgtest

go 1.22
