// Package pay declares CONGEST message payload types. The Payload contract
// is matched structurally (AppendWords/LoadWords), so no congest import is
// needed.
package pay

// Good is a bounded payload: fixed-width integer fields only.
type Good struct {
	Part  int
	Value int64
	Flag  bool
	Tag   uint8
	Tail  [2]int
}

func (p *Good) AppendWords(dst []int) []int { return dst }
func (p *Good) LoadWords(words []int)       {}

// Bad smuggles unbounded data through the word interface.
type Bad struct {
	Name string         // want "field Name of type string"
	IDs  []int          // want `field IDs of type \[\]int`
	Meta map[int]string // want `field Meta of type map\[int\]string`
	Any  interface{}    // want "field Any of type interface"
	Ptr  *int           // want `field Ptr of type \*int`
	F    float64        // want "field F of type float64"
}

func (p *Bad) AppendWords(dst []int) []int { return dst }
func (p *Bad) LoadWords(words []int)       {}

// inner is bounded and reused below; it is not itself a payload.
type inner struct{ X, Y int }

// Nested is flagged through its nested component, not its direct fields.
type Nested struct {
	In   inner
	Deep struct{ S []byte } // want `field Deep whose type contains \[\]byte`
}

func (p *Nested) AppendWords(dst []int) []int { return dst }
func (p *Nested) LoadWords(words []int)       {}

// Excused carries a justified exception.
//
//planarvet:congestpayload fixture: bound argued elsewhere
type Excused struct {
	Blob []byte
}

func (p *Excused) AppendWords(dst []int) []int { return dst }
func (p *Excused) LoadWords(words []int)       {}

// FaultReport mirrors the chaos recovery-report broadcast payload: the
// outcome, attempt count and per-kind fault tallies as fixed-width
// integers. Bounded, never flagged.
type FaultReport struct {
	Outcome       int
	Attempts      int
	Drops         int
	Corruptions   int
	Stalls        int
	LinkDownDrops int
	Crashes       int
	Structural    int
}

func (p *FaultReport) AppendWords(dst []int) []int { return dst }
func (p *FaultReport) LoadWords(words []int)       {}

// FaultReportLoose is the tempting-but-wrong variant: shipping the human
// readable rejection detail or a per-stage table has no word bound.
type FaultReportLoose struct {
	Outcome  int
	Detail   string         // want "field Detail of type string"
	PerStage map[string]int // want `field PerStage of type map\[string\]int`
}

func (p *FaultReportLoose) AppendWords(dst []int) []int { return dst }
func (p *FaultReportLoose) LoadWords(words []int)       {}

// NotAPayload has an unbounded field but no Payload method set: out of
// scope for this analyzer.
type NotAPayload struct {
	Name string
}

// Payload is an interface embedding the contract; interfaces themselves
// are never flagged.
type Payload interface {
	AppendWords(dst []int) []int
	LoadWords(words []int)
}

// Scalar implements Payload with a non-struct underlying type.
type Scalar string // want "underlying type congestmsgtest/pay.Scalar"

func (p *Scalar) AppendWords(dst []int) []int { return dst }
func (p *Scalar) LoadWords(words []int)       {}

// Word is a bounded non-struct payload.
type Word int

func (p *Word) AppendWords(dst []int) []int { return append(dst, int(*p)) }
func (p *Word) LoadWords(words []int)       { *p = Word(words[0]) }
