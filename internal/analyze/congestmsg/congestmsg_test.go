package congestmsg_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestCongestMsg(t *testing.T) {
	analyzetest.Run(t, "congestmsg", "testdata")
}
