// Package congestmsg defines the planarvet analyzer that bounds what can
// travel through the CONGEST message interface.
//
// The paper's round bounds assume O(log n)-bit messages: a message is a
// kind tag plus a handful of word-sized arguments, and the simulator
// enforces the word budget at runtime (congest.Network.MaxWords). The
// typed payload layer (congest.Payload, congest.Pack/Unpack) makes node
// programs declare message bodies as structs — and that is where unbounded
// data could sneak in statically: a string, slice, map or interface field
// has no a-priori word bound, so a payload carrying one would either blow
// the runtime check on large inputs or, worse, tempt someone to raise
// MaxWords and invalidate every round count the repo reports.
//
// The analyzer finds every named type whose method set satisfies the
// Payload contract (AppendWords(dst []int) []int, LoadWords(words []int) —
// matched structurally, so it also works in packages that do not import
// internal/congest) and rejects fields whose type cannot be bounded by a
// fixed number of words: slices, maps, strings, interfaces, channels,
// function values, pointers, floats and complex numbers. Fixed-size
// arrays and nested structs of bounded fields are fine. A type may be
// whitelisted with //planarvet:congestpayload <reason> in its doc
// comment when the bound holds for a non-structural reason.
package congestmsg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"planardfs/internal/analyze/vetutil"
)

// Analyzer rejects unbounded field types in CONGEST message payloads.
var Analyzer = &analysis.Analyzer{
	Name:     "congestmsg",
	Doc:      "reject slice/map/string/interface/pointer fields in congest.Payload implementations; CONGEST messages are O(log n)-bit (suppress with //planarvet:congestpayload <reason>)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// payloadIface is the congest.Payload contract, built structurally so the
// analyzer needs no import of internal/congest (and testdata stubs match).
var payloadIface = func() *types.Interface {
	intSlice := types.NewSlice(types.Typ[types.Int])
	param := func(name string, t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, nil, name, t))
	}
	appendWords := types.NewFunc(token.NoPos, nil, "AppendWords",
		types.NewSignatureType(nil, nil, nil, param("dst", intSlice), param("", intSlice), false))
	loadWords := types.NewFunc(token.NoPos, nil, "LoadWords",
		types.NewSignatureType(nil, nil, nil, param("words", intSlice), nil, false))
	iface := types.NewInterfaceType([]*types.Func{appendWords, loadWords}, nil)
	iface.Complete()
	return iface
}()

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "congestpayload")
	ins.WithStack([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		ts := n.(*ast.TypeSpec)
		if vetutil.InTestFile(pass, ts.Pos()) {
			return false
		}
		obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			return false
		}
		t := obj.Type()
		if types.IsInterface(t) {
			return false // the Payload interface itself, or a superset of it
		}
		if !types.Implements(t, payloadIface) && !types.Implements(types.NewPointer(t), payloadIface) {
			return false
		}
		var genDoc *ast.CommentGroup
		if gd, ok := stack[len(stack)-2].(*ast.GenDecl); ok {
			genDoc = gd.Doc
		}
		if dirs.SuppressedDecl(ts.Pos(), "congestpayload", ts.Doc, genDoc) {
			return false
		}
		if st, ok := ts.Type.(*ast.StructType); ok {
			for _, f := range st.Fields.List {
				ft := pass.TypesInfo.TypeOf(f.Type)
				if ft == nil {
					continue
				}
				if bad := unboundedComponent(ft, nil); bad != nil {
					desc := fmt.Sprintf("of type %s", bad)
					if !types.Identical(bad, ft) {
						desc = fmt.Sprintf("whose type contains %s", bad)
					}
					pass.Reportf(f.Pos(),
						"congest payload %s carries %s %s, which has no O(log n)-bit word bound; use fixed-width integer fields, or annotate the type //planarvet:congestpayload <reason>",
						ts.Name.Name, fieldLabel(f), desc)
				}
			}
			return false
		}
		if bad := unboundedComponent(obj.Type(), nil); bad != nil {
			pass.Reportf(ts.Pos(),
				"congest payload %s has underlying type %s, which has no O(log n)-bit word bound; use a struct of fixed-width integer fields, or annotate //planarvet:congestpayload <reason>",
				ts.Name.Name, bad)
		}
		return false
	})
	return nil, nil
}

func fieldLabel(f *ast.Field) string {
	if len(f.Names) == 0 {
		return "an embedded field"
	}
	return fmt.Sprintf("field %s", f.Names[0].Name)
}

// unboundedComponent returns the first component type of t that cannot be
// bounded by a fixed number of CONGEST words, or nil if every component is
// a fixed-width integer, bool, fixed-size array or struct thereof.
func unboundedComponent(t types.Type, seen map[types.Type]bool) types.Type {
	if seen[t] {
		return nil
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&(types.IsInteger|types.IsBoolean) != 0 {
			return nil
		}
		return t
	case *types.Array:
		return unboundedComponent(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad := unboundedComponent(u.Field(i).Type(), seen); bad != nil {
				return bad
			}
		}
		return nil
	default:
		// slices, maps, strings, interfaces, pointers, chans, funcs
		return t
	}
}
