// Package rngwallclock defines the planarvet analyzer that keeps hidden
// entropy sources out of library code.
//
// Reproducibility in this repo is seed-in, bytes-out: every randomized
// code path (graph generators, the randomized separator baseline) takes
// an explicit seed or *rand.Rand, and the tracing subsystem stamps events
// with the virtual round clock, never wall time. Two constructs undermine
// that quietly: the package-level math/rand functions, which draw from a
// process-global generator no caller controls, and wall-clock reads
// (time.Now/Since/Until), which make output depend on when the run
// happened. The analyzer flags both in non-test library code. Seeded
// construction (rand.New, rand.NewSource with an explicit seed) is
// allowed; clock-seeding a source (rand.NewSource(time.Now()…)) is caught
// through the time.Now read itself.
//
// Escape hatches: //planarvet:rng <reason> for deliberate global-RNG use,
// //planarvet:wallclock <reason> for deliberate clock reads; packages in
// the -rngwallclock.allow list (default internal/trace, which owns
// wall-clock export for trace files) are exempt wholesale.
package rngwallclock

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"planardfs/internal/analyze/vetutil"
)

// DefaultAllow lists package suffixes exempt from the wall-clock rule;
// internal/trace may stamp exported artifacts with real time.
const DefaultAllow = "internal/trace"

var allow string

// Analyzer flags global math/rand use and wall-clock reads in library code.
var Analyzer = &analysis.Analyzer{
	Name:     "rngwallclock",
	Doc:      "forbid package-level math/rand and wall-clock reads in library code; thread seeds explicitly (suppress with //planarvet:rng or //planarvet:wallclock <reason>)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&allow, "allow", DefaultAllow,
		"comma-separated import-path suffixes of packages exempt from the wall-clock rule")
}

// randConstructors are the math/rand functions that take an explicit seed
// or source and therefore keep randomness caller-controlled.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "rng", "wallclock")
	allowed := vetutil.PathMatches(pass.Pkg.Path(), allow)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if vetutil.InTestFile(pass, call.Pos()) {
			return
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return // methods (e.g. (*rand.Rand).Intn) are seed-threaded by construction
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if randConstructors[fn.Name()] {
				return
			}
			if dirs.SuppressedAt(call.Pos(), "rng") {
				return
			}
			pass.Reportf(call.Pos(),
				"call to package-level %s.%s draws from the process-global generator; thread a seeded *rand.Rand explicitly, or annotate //planarvet:rng <reason>",
				fn.Pkg().Path(), fn.Name())
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
			default:
				return
			}
			if allowed || dirs.SuppressedAt(call.Pos(), "wallclock") {
				return
			}
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic library code; use the virtual round clock (trace.Tracer.Now), or annotate //planarvet:wallclock <reason>",
				fn.Name())
		}
	})
	return nil, nil
}
