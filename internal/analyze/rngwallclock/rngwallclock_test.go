package rngwallclock_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestRNGWallClock(t *testing.T) {
	analyzetest.Run(t, "rngwallclock", "testdata")
}

// TestAllowlistOverride empties the allowlist, so the fixture's
// internal/trace package is flagged like everything else.
func TestAllowlistOverride(t *testing.T) {
	analyzetest.RunExpectFindings(t, "rngwallclock", "testdata", "-rngwallclock.allow=nosuchpkg")
}
