package lib

import (
	"math/rand"
	"testing"
	"time"
)

// Test files are exempt from both rules.
func TestExempt(t *testing.T) {
	_ = rand.Intn(10)
	_ = time.Now()
}
