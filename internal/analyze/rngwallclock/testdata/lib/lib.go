// Package lib is ordinary library code: global RNG draws and wall-clock
// reads are flagged here.
package lib

import (
	"math/rand"
	"time"
)

func GlobalRand() int {
	n := rand.Intn(10)                 // want "package-level math/rand.Intn"
	n += rand.Int()                    // want "package-level math/rand.Int"
	rand.Shuffle(3, func(i, j int) {}) // want "package-level math/rand.Shuffle"
	return n
}

func SeededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on a threaded *rand.Rand are fine
}

func WallClock() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	return time.Since(start) // want "wall-clock read time.Since"
}

func Suppressed() (int, time.Time) {
	n := rand.Intn(10) //planarvet:rng intentionally randomized baseline
	//planarvet:wallclock export stamp
	ts := time.Now()
	return n, ts
}

func ClockUnrelated(d time.Duration) time.Time {
	// Other time functions (construction, parsing) are not clock reads.
	return time.Unix(0, 0).Add(d)
}
