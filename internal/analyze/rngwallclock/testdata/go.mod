module rngtest

go 1.22
