// Package trace matches the default allowlist: wall-clock reads are the
// point of trace export and are exempt here.
package trace

import "time"

func ExportStamp() time.Time {
	return time.Now()
}
