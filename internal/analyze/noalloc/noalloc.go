// Package noalloc defines the planarvet analyzer that polices the
// zero-allocation hot paths.
//
// The simulator's steady-state loops — the CONGEST round step/deliver
// pair, the planar face tracer, the DFS join deque, the triangulation
// builder — run millions of times per experiment and are written against
// epoch-stamped scratch arenas precisely so that the steady state
// allocates nothing. That property is load-bearing (it is what keeps the
// large-n benchmarks GC-quiet and the round loop's cost model honest) and
// it is trivially easy to lose: one innocent fmt.Sprintf in an error
// path, one closure capturing a loop variable, one map literal, and the
// allocator is back in the hot loop.
//
// A function annotated //planarvet:noalloc <GateTest> promises the
// steady-state-allocation-free discipline, and the analyzer enforces it
// syntactically: the body may contain no allocation site —
//
//   - make, new, or append calls,
//   - composite literals that escape (&T{...}, slice and map literals;
//     plain value struct literals stay on the stack and are fine),
//   - string concatenation or string↔[]byte/[]rune conversions,
//   - function literals (closure allocation),
//   - calls into fmt (interface boxing of the arguments).
//
// A site that is genuinely amortized or off the steady path (an append
// into recycled backing storage, an error-path construction that only
// runs when the run is already over) carries //planarvet:allocok <reason>.
//
// The syntactic check is necessary but not sufficient — escape analysis
// can still be defeated — so every noalloc annotation must name its
// runtime gate: the <GateTest> operand is a test function in the same
// package that measures the function with testing.AllocsPerRun. The
// analyzer cross-references the name, which keeps the static annotation
// and the runtime measurement from drifting apart.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"planardfs/internal/analyze/vetutil"
)

// Analyzer enforces //planarvet:noalloc function annotations.
var Analyzer = &analysis.Analyzer{
	Name:     "noalloc",
	Doc:      "functions annotated //planarvet:noalloc <GateTest> may contain no syntactic allocation site, and GateTest must measure them with testing.AllocsPerRun (per-site escape: //planarvet:allocok <reason>)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "noalloc", "allocok")

	// Index the test functions of the package's test files once: gate
	// cross-referencing needs to know which ones call AllocsPerRun.
	gates := make(map[string]gateInfo)
	hasTestFiles := false
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		hasTestFiles = true
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			gates[fd.Name.Name] = gateInfo{found: true, callsAllocsPerRun: callsAllocsPerRun(fd.Body)}
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || vetutil.InTestFile(pass, fd.Pos()) {
			return
		}
		gate, ok := dirs.DeclReason(fd.Pos(), "noalloc", fd.Doc)
		if !ok {
			return
		}
		if gate != "" {
			checkGate(pass, fd, strings.Fields(gate)[0], gates, hasTestFiles)
		}
		checkBody(pass, dirs, fd)
	})
	return nil, nil
}

type gateInfo struct {
	found             bool
	callsAllocsPerRun bool
}

// callsAllocsPerRun reports whether the body contains a call to a method
// or function named AllocsPerRun (testing.AllocsPerRun in practice).
func callsAllocsPerRun(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// checkGate verifies the named gate test exists in the package and
// measures with AllocsPerRun. Unitchecker may analyze a package variant
// without its test files; the check only runs when test files are in the
// pass, so it never false-positives on such variants.
func checkGate(pass *analysis.Pass, fd *ast.FuncDecl, gate string, gates map[string]gateInfo, hasTestFiles bool) {
	if !hasTestFiles {
		return
	}
	info := gates[gate]
	switch {
	case !info.found:
		pass.Reportf(fd.Pos(),
			"noalloc gate %s for %s not found: //planarvet:noalloc must name a test function in this package that measures it with testing.AllocsPerRun",
			gate, fd.Name.Name)
	case !info.callsAllocsPerRun:
		pass.Reportf(fd.Pos(),
			"noalloc gate %s for %s never calls testing.AllocsPerRun, so the zero-allocation claim has no runtime measurement",
			gate, fd.Name.Name)
	}
}

// checkBody flags every syntactic allocation site in a noalloc function.
func checkBody(pass *analysis.Pass, dirs *vetutil.Directives, fd *ast.FuncDecl) {
	name := fd.Name.Name
	report := func(pos token.Pos, what string) {
		if dirs.SuppressedAt(pos, "allocok") {
			return
		}
		pass.Reportf(pos,
			"%s in noalloc function %s: hoist into presized scratch storage, or annotate //planarvet:allocok <reason> if the site is amortized or off the steady path",
			what, name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "function literal (closure allocation)")
			return false // allocations inside run at the closure's call sites
		case *ast.CallExpr:
			return checkCall(pass, report, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := e.X.(*ast.CompositeLit); ok {
					report(e.Pos(), "escaping composite literal &"+types.ExprString(cl.Type)+"{...}")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal")
				case *types.Map:
					report(e.Pos(), "map literal")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass.TypesInfo.TypeOf(e)) {
				report(e.Pos(), "string concatenation")
			}
		}
		return true
	})
}

// checkCall classifies a call expression: allocating builtin, fmt call,
// or allocating string conversion. Returns whether to keep descending.
func checkCall(pass *analysis.Pass, report func(token.Pos, string), call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				report(call.Pos(), "call to "+b.Name())
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "call to fmt."+fun.Sel.Name+" (interface boxing)")
			}
		}
	}
	// Type conversions between string and []byte/[]rune copy the data.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
		if src != nil {
			if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
				report(call.Pos(), "string conversion "+types.ExprString(call.Fun)+"(...)")
			}
		}
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
