package noalloc_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestNoalloc(t *testing.T) {
	analyzetest.Run(t, "noalloc", "testdata")
}
