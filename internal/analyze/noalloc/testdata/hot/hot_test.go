package hot

import "testing"

func TestStepZeroAlloc(t *testing.T) {
	s := &scratch{buf: make([]int32, 16)}
	if n := testing.AllocsPerRun(100, func() { s.head = 0; s.Step(1) }); n != 0 {
		t.Fatalf("Step allocated %v times per run", n)
	}
}

// TestWeakGate exists but measures nothing: the analyzer flags noalloc
// annotations that name it.
func TestWeakGate(t *testing.T) {
	WeakGate()
}
