// Package hot is the noalloc fixture: annotated hot paths, hidden
// allocation sites, gate cross-references.
package hot

import "fmt"

type scratch struct {
	buf  []int32
	head int
}

// Step is the clean hot path: it writes through presized scratch only.
//
//planarvet:noalloc TestStepZeroAlloc
func (s *scratch) Step(v int32) {
	s.buf[s.head] = v
	s.head++
}

// Leaky hides one allocation site of every class the analyzer knows.
//
//planarvet:noalloc TestStepZeroAlloc
func (s *scratch) Leaky(n int, msg string) string {
	tmp := make([]int32, n) // want "call to make in noalloc function Leaky"
	tmp = append(tmp, 1)    // want "call to append in noalloc function Leaky"
	_ = tmp
	p := &scratch{} // want "escaping composite literal &scratch"
	_ = p
	m := map[int]int{} // want "map literal in noalloc function Leaky"
	_ = m
	lit := []int{1} // want "slice literal in noalloc function Leaky"
	_ = lit
	f := func() {} // want "function literal"
	f()
	b := []byte(msg) // want "string conversion"
	_ = b
	fmt.Println(n)   // want `call to fmt\.Println`
	return msg + "!" // want "string concatenation"
}

// Amortized appends into recycled backing storage: the one legitimate
// append shape, escaped per-site with a reason.
//
//planarvet:noalloc TestStepZeroAlloc
func (s *scratch) Amortized(v int32) {
	s.buf = append(s.buf, v) //planarvet:allocok backing storage recycled across epochs, amortized to zero steady-state allocs
}

// MissingGate names a test that does not exist in the package.
//
//planarvet:noalloc TestNoSuchGate
func MissingGate() { // want "noalloc gate TestNoSuchGate for MissingGate not found"
}

// WeakGate names a test that exists but never measures allocations.
//
//planarvet:noalloc TestWeakGate
func WeakGate() { // want "noalloc gate TestWeakGate for WeakGate never calls testing.AllocsPerRun"
}

//planarvet:noalloc // want "bare //planarvet:noalloc directive"
func Bare() {
	_ = make([]int, 1) // want "call to make in noalloc function Bare"
}

// Free is not annotated: it may allocate at will.
func Free() []int { return append([]int{}, 1) }
