module noalloctest

go 1.22
