package errwrap_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestErrwrap(t *testing.T) {
	analyzetest.Run(t, "errwrap", "testdata")
}
