// Package errs is the errwrap fixture: sentinel comparisons, error
// switches and chain-cutting wraps.
package errs

import (
	"errors"
	"fmt"
)

var ErrNoSeparator = errors.New("no separator")

// Sentinel compares by identity: wrapped forms never match.
func Sentinel(err error) bool {
	return err == ErrNoSeparator // want "comparison of non-nil errors with =="
}

// SentinelNeq is the negated form.
func SentinelNeq(err error) bool {
	return err != ErrNoSeparator // want "comparison of non-nil errors with !="
}

// NilChecks stay idiomatic and are never flagged.
func NilChecks(err error) bool {
	return err == nil || nil != err
}

// Good matches through the unwrap chain.
func Good(err error) bool { return errors.Is(err, ErrNoSeparator) }

// Switched hides the identity comparison in a switch.
func Switched(err error) int {
	switch err {
	case nil:
		return 0
	case ErrNoSeparator: // want "switch case compares error ErrNoSeparator by identity"
		return 1
	}
	return 2
}

// TypeSwitched is a type switch, which is errors.As territory but not an
// identity comparison; not flagged.
func TypeSwitched(err error) bool {
	switch err.(type) {
	case nil:
		return false
	default:
		return true
	}
}

// WrapV stringifies the chain.
func WrapV(err error) error {
	return fmt.Errorf("running engine: %v", err) // want `fmt\.Errorf formats error err without %w`
}

// WrapW preserves it.
func WrapW(err error) error {
	return fmt.Errorf("running engine: %w", err)
}

// WrapString formats a plain value, not an error.
func WrapString(name string) error {
	return fmt.Errorf("unknown engine %q", name)
}

// Intended identity, with the reviewed reason.
func Intended(err, marker error) bool {
	return err == marker //planarvet:errok marker is a never-wrapped iteration terminator compared by identity on purpose
}

// Bare escape: comparison muted, directive warned.
func Bare(err, marker error) bool {
	return err == marker //planarvet:errok // want "bare //planarvet:errok directive"
}
