module errwraptest

go 1.22
