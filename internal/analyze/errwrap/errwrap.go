// Package errwrap defines the planarvet analyzer that polices error
// discipline: sentinel matching through errors.Is/As and chain-preserving
// wrapping with %w.
//
// The repo's error surface is built on typed wrappers around sentinels —
// *NoSeparatorError unwraps to ErrNoSeparator, *UnknownEngineError names
// the registry set — precisely so that callers can match on the sentinel
// while the diagnostic form carries run statistics. That design dies
// quietly at two kinds of call sites:
//
//   - `err == ErrNoSeparator` is false for every wrapped form, so the
//     fallback path silently stops firing the day an engine starts
//     returning the diagnostic wrapper. Identity comparison of non-nil
//     errors (==, !=, or a switch over an error value) must be errors.Is,
//     which walks the Unwrap chain.
//   - `fmt.Errorf("context: %v", err)` stringifies the chain instead of
//     extending it: everything upstream of the wrap becomes unmatchable.
//     An error operand of fmt.Errorf requires the %w verb.
//
// Comparisons against nil stay idiomatic and are never flagged. A site
// where identity really is intended (comparing an error to itself as a
// marker, a deliberate chain break at an API boundary) carries
// //planarvet:errok <reason>.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"planardfs/internal/analyze/vetutil"
)

// Analyzer enforces errors.Is/As sentinel matching and %w wrapping.
var Analyzer = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      "compare non-nil errors with errors.Is/As, never ==/!= or switch; fmt.Errorf with an error operand must wrap with %w (suppress with //planarvet:errok <reason>)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "errok")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.SwitchStmt)(nil),
		(*ast.CallExpr)(nil),
	}, func(n ast.Node) {
		if vetutil.InTestFile(pass, n.Pos()) {
			return
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(pass, dirs, e)
		case *ast.SwitchStmt:
			checkSwitch(pass, dirs, e)
		case *ast.CallExpr:
			checkErrorf(pass, dirs, e)
		}
	})
	return nil, nil
}

// isError reports whether the expression's static type implements error
// and the expression is not the nil literal.
func isError(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkComparison(pass *analysis.Pass, dirs *vetutil.Directives, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isError(pass, be.X) || !isError(pass, be.Y) {
		return
	}
	if dirs.SuppressedAt(be.Pos(), "errok") {
		return
	}
	pass.Reportf(be.Pos(),
		"comparison of non-nil errors with %s: identity misses every wrapped form; use errors.Is(%s, %s), or annotate //planarvet:errok <reason> if identity is intended",
		be.Op, types.ExprString(be.X), types.ExprString(be.Y))
}

// checkSwitch flags `switch err { case ErrX: }`: each case arm is an
// identity comparison in disguise.
func checkSwitch(pass *analysis.Pass, dirs *vetutil.Directives, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isError(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isError(pass, e) {
				continue
			}
			if dirs.SuppressedAt(e.Pos(), "errok") {
				continue
			}
			pass.Reportf(e.Pos(),
				"switch case compares error %s by identity: wrapped forms never match; rewrite as an errors.Is chain, or annotate //planarvet:errok <reason>",
				types.ExprString(e))
		}
	}
}

// checkErrorf flags fmt.Errorf calls that pass an error operand without a
// %w verb in a constant format string.
func checkErrorf(pass *analysis.Pass, dirs *vetutil.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || len(call.Args) < 2 {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return
	}
	ftv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(ftv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if !isError(pass, arg) {
			continue
		}
		if dirs.SuppressedAt(call.Pos(), "errok") {
			return
		}
		pass.Reportf(call.Pos(),
			"fmt.Errorf formats error %s without %%w: the chain is cut and errors.Is/As stop matching upstream; wrap with %%w, or annotate //planarvet:errok <reason>",
			types.ExprString(arg))
		return
	}
}
