package registryinit_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestRegistryinit(t *testing.T) {
	analyzetest.Run(t, "registryinit", "testdata")
}

// TestRegistriesOverride points the analyzer at the fixture's clean
// package, whose call-time Register must then be flagged.
func TestRegistriesOverride(t *testing.T) {
	analyzetest.RunExpectFindings(t, "registryinit", "testdata", "-registryinit.registries=clean")
}
