// Package registryinit defines the planarvet analyzer that polices the
// separator-engine registry discipline.
//
// The sepengine registry is the trust boundary of the separator
// subsystem: every backend registers under a name, and no Result leaves
// the package without passing the engine-agnostic certifier. Both halves
// of that contract are conventions that nothing in the type system
// enforces, so the analyzer does:
//
//   - Register is callable only from package init functions. The
//     registry set is then static — fixed at link time, the same in every
//     process — which is what lets Register panic on duplicates instead
//     of returning an error, and what makes `planard -engines` output a
//     property of the binary rather than of execution order.
//   - Every registered engine's Name() must return a compile-time string
//     constant (a literal or a named constant such as DefaultEngine).
//     Names computed at runtime defeat static duplicate detection, and
//     duplicates among the constants are reported by the analyzer before
//     the panic would fire.
//   - Every return of the engine's FindCycleSeparator must route its
//     Result through the package validation helper (finish, which runs
//     cert.CheckSeparator and the side-mask oracles): a return is nil, a
//     direct validator call, or an identifier assigned from one. An
//     engine cannot hand out an unvalidated separator without tripping
//     this check or carrying a reviewed //planarvet:registryok <reason>.
package registryinit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"planardfs/internal/analyze/vetutil"
)

// Defaults for the analyzer flags; override with -registryinit.registries
// and -registryinit.validators.
const (
	DefaultRegistries = "internal/sepengine"
	DefaultValidators = "finish"
)

var (
	registries string
	validators string
)

// Analyzer enforces init-only registration, constant engine names and
// validator-routed results in the registry packages.
var Analyzer = &analysis.Analyzer{
	Name: "registryinit",
	Doc:  "sepengine.Register only from init with a compile-time constant engine name; FindCycleSeparator results must route through the cert validation helper (suppress with //planarvet:registryok <reason>)",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&registries, "registries", DefaultRegistries,
		"comma-separated import-path suffixes of engine-registry packages")
	Analyzer.Flags.StringVar(&validators, "validators", DefaultValidators,
		"comma-separated names of the in-package validation helpers results must route through")
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "registryok")
	if !vetutil.PathMatches(pass.Pkg.Path(), registries) {
		return nil, nil
	}

	// Index the package's methods by receiver base type name, so engine
	// types resolved from Register arguments can be traced to their
	// Name/FindCycleSeparator declarations.
	methods := make(map[string]map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			base := recvBase(fd.Recv.List[0].Type)
			if base == "" {
				continue
			}
			m := methods[base]
			if m == nil {
				m = make(map[string]*ast.FuncDecl)
				methods[base] = m
			}
			m[fd.Name.Name] = fd
		}
	}

	seen := make(map[string]token.Pos) // engine name -> first registration
	checked := make(map[string]bool)   // engine types already routed-checked
	for _, f := range pass.Files {
		if vetutil.InTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inInit := isFunc && fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRegisterCall(call) || len(call.Args) != 1 {
					return true
				}
				if !inInit && !dirs.SuppressedAt(call.Pos(), "registryok") {
					pass.Reportf(call.Pos(),
						"%s called outside an init function: engines register at package initialization only, keeping the registry set static and auditable (//planarvet:registryok <reason> to escape)",
						types.ExprString(call.Fun))
				}
				checkEngine(pass, dirs, call, methods, seen, checked)
				return true
			})
		}
	}
	return nil, nil
}

// isRegisterCall matches calls to a function named Register — the
// in-package registration entry point (or a qualified alias of it).
func isRegisterCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "Register"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Register"
	}
	return false
}

// checkEngine resolves the registered engine type and enforces the
// constant-name and validator-routing contracts on its methods.
func checkEngine(pass *analysis.Pass, dirs *vetutil.Directives, call *ast.CallExpr, methods map[string]map[string]*ast.FuncDecl, seen map[string]token.Pos, checked map[string]bool) {
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	typeName := named.Obj().Name()

	name, nameOK := constantName(pass, methods[typeName]["Name"])
	if !nameOK {
		if !dirs.SuppressedAt(call.Pos(), "registryok") {
			pass.Reportf(call.Pos(),
				"registered engine %s has no compile-time constant Name(): the registry key must be a string literal or named constant so duplicate names are caught statically (//planarvet:registryok <reason> to escape)",
				typeName)
		}
	} else if first, dup := seen[name]; dup {
		pass.Reportf(call.Pos(),
			"duplicate engine name %q: already registered at %s; Register would panic at process start",
			name, pass.Fset.Position(first))
	} else {
		seen[name] = call.Pos()
	}

	if fd := methods[typeName]["FindCycleSeparator"]; fd != nil && !checked[typeName] {
		checked[typeName] = true
		checkRouting(pass, dirs, typeName, fd)
	}
}

// recvBase returns the base type name of a method receiver.
func recvBase(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// constantName extracts the engine name from a Name() method that returns
// a single compile-time string constant; ok is false for a missing method,
// multiple returns or a computed value.
func constantName(pass *analysis.Pass, fd *ast.FuncDecl) (string, bool) {
	if fd == nil || fd.Body == nil {
		return "", false
	}
	var rets []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, r)
		}
		return true
	})
	if len(rets) != 1 || len(rets[0].Results) != 1 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[rets[0].Results[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkRouting enforces that every top-level return of FindCycleSeparator
// hands its first result to a validator: nil, a direct validator call, or
// an identifier assigned from one somewhere in the body.
func checkRouting(pass *analysis.Pass, dirs *vetutil.Directives, typeName string, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	// Identifiers assigned (anywhere in the body) from a validator call.
	validated := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isValidatorCall(call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			validated[id.Name] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // helper closures return other things
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		first := ret.Results[0]
		switch e := first.(type) {
		case *ast.Ident:
			if e.Name == "nil" || validated[e.Name] {
				return true
			}
		case *ast.CallExpr:
			if isValidatorCall(e) {
				return true
			}
		}
		if !dirs.SuppressedAt(ret.Pos(), "registryok") {
			pass.Reportf(ret.Pos(),
				"return in %s.FindCycleSeparator bypasses the validation helper (%s): every Result must pass cert validation before leaving the registry package (//planarvet:registryok <reason> to escape)",
				typeName, validators)
		}
		return true
	})
}

// isValidatorCall matches a call to one of the configured validator
// helpers by name (plain or method/package qualified).
func isValidatorCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	for _, v := range strings.Split(validators, ",") {
		if strings.TrimSpace(v) == name {
			return true
		}
	}
	return false
}
