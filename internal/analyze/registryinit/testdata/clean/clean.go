// Package clean is outside the registry package list: its Register is
// somebody else's business.
package clean

func Register(x int) {}

func Use() { Register(1) }
