// Package sepengine mirrors the real registry's shapes for the
// registryinit fixture: a Register entry point, a finish validation
// helper, and engines exercising each contract.
package sepengine

type Config struct{}

// Result is an engine output.
type Result struct{ Engine string }

// Engine mirrors the registry interface.
type Engine interface {
	Name() string
	FindCycleSeparator(cfg *Config) (*Result, error)
}

var engines = map[string]Engine{}

// Register adds an engine to the registry.
func Register(e Engine) { engines[e.Name()] = e }

// finish is the validation helper results must route through.
func finish(name string) (*Result, error) { return &Result{Engine: name}, nil }

// DefaultEngine names the default backend.
const DefaultEngine = "default"

// goodEngine does everything right: literal name, direct finish return.
type goodEngine struct{}

func (goodEngine) Name() string { return "good" }

func (goodEngine) FindCycleSeparator(cfg *Config) (*Result, error) {
	return finish("good")
}

// constEngine names itself via a named constant and returns an identifier
// assigned from finish — both allowed.
type constEngine struct{}

func (constEngine) Name() string { return DefaultEngine }

func (constEngine) FindCycleSeparator(cfg *Config) (*Result, error) {
	out, err := finish(DefaultEngine)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func init() {
	Register(goodEngine{})
	Register(constEngine{})
}

// lateEngine is registered outside init.
type lateEngine struct{}

func (lateEngine) Name() string { return "late" }

func (lateEngine) FindCycleSeparator(cfg *Config) (*Result, error) { return finish("late") }

// RegisterLate registers at call time, defeating the static registry set.
func RegisterLate() {
	Register(lateEngine{}) // want "Register called outside an init function"
}

var pfx = "dyn-"

// dynEngine computes its name at runtime.
type dynEngine struct{}

func (dynEngine) Name() string { return pfx + "amic" }

func (dynEngine) FindCycleSeparator(cfg *Config) (*Result, error) { return finish("dyn") }

func init() {
	Register(dynEngine{}) // want "registered engine dynEngine has no compile-time constant Name"
}

// dupEngine collides with goodEngine's name.
type dupEngine struct{}

func (dupEngine) Name() string { return "good" }

func (dupEngine) FindCycleSeparator(cfg *Config) (*Result, error) { return finish("good") }

func init() {
	Register(dupEngine{}) // want `duplicate engine name "good"`
}

// rawEngine hands out a Result that never saw the validator.
type rawEngine struct{}

func (rawEngine) Name() string { return "raw" }

func (rawEngine) FindCycleSeparator(cfg *Config) (*Result, error) {
	return &Result{Engine: "raw"}, nil // want "bypasses the validation helper"
}

func init() {
	Register(rawEngine{})
}

// escEngine returns a precomputed result under a reviewed escape.
type escEngine struct{}

func (escEngine) Name() string { return "esc" }

var cached = &Result{Engine: "esc"}

func (escEngine) FindCycleSeparator(cfg *Config) (*Result, error) {
	return cached, nil //planarvet:registryok cached result was validated by finish when built
}

func init() {
	Register(escEngine{})
}

// bareEngine escapes the routing check with a bare directive: the bypass
// report is muted but the directive itself is warned about.
type bareEngine struct{}

func (bareEngine) Name() string { return "bare" }

func (bareEngine) FindCycleSeparator(cfg *Config) (*Result, error) {
	return &Result{Engine: "bare"}, nil //planarvet:registryok // want "bare //planarvet:registryok directive"
}

func init() {
	Register(bareEngine{})
}
