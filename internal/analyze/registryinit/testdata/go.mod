module registryinittest

go 1.22
