// Package narrow32 defines the planarvet analyzer that polices the int32
// substrate boundary.
//
// The flat SoA/CSR substrate (DESIGN.md §13) stores vertices, edge
// identifiers, darts and CSR offsets as int32, while the public APIs and
// the arithmetic around them use int. Every crossing is a narrowing
// conversion, and an unchecked one does not fail loudly past 2³¹ — it
// wraps, silently corrupting the graph (a dart index becomes negative, a
// CSR offset points into another vertex's slice). The entry points bound
// what can enter the substrate (graph.New rejects n > MaxInt32,
// graph.AddEdge rejects edge counts that overflow the dart space), so the
// conversions downstream are correct — but only while every one of them is
// dominated by such a bound. The analyzer makes that discipline
// machine-checked: in the substrate packages, every conversion to int32
// from a wider integer type must be
//
//   - a constant that provably fits,
//   - preceded in the same function by a comparison that mentions the
//     operand expression (an if/for bound check — `if u < 0 || u >= g.n`,
//     `for v := 0; v < n; v++` — dominating the conversion), or
//   - annotated //planarvet:narrowok <reason>, the reason naming the
//     invariant that bounds the operand (e.g. "id < MaxInt32/2 checked at
//     AddEdge, so both darts fit").
//
// The guard heuristic is syntactic on purpose: it recognizes the explicit,
// reviewable check next to the conversion, not a whole-program range
// analysis. A conversion whose bound lives elsewhere (an arena presized by
// a constructor, a caller contract) is exactly the non-obvious case the
// annotation exists to document.
package narrow32

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"planardfs/internal/analyze/vetutil"
)

// DefaultPackages is the comma-separated list of import-path suffixes
// forming the int32 substrate; override with -narrow32.packages.
const DefaultPackages = "internal/graph,internal/planar,internal/spanning,internal/gen,internal/dfs,internal/sepengine"

var packages string

// Analyzer flags unchecked narrowing conversions to int32 in the substrate
// packages.
var Analyzer = &analysis.Analyzer{
	Name:     "narrow32",
	Doc:      "flag unchecked int→int32 narrowing in the flat-substrate packages; add a bound check, or annotate //planarvet:narrowok <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated import-path suffixes of packages under the int32 substrate contract")
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "narrowok")
	if !vetutil.PathMatches(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || vetutil.InTestFile(pass, fd.Pos()) {
			return
		}
		checkFunc(pass, dirs, fd)
	})
	return nil, nil
}

// guard is one comparison appearing in an if/for condition: any conversion
// after end whose operand prints as one of the compared sides counts as
// bound-checked. Conditions lexically precede their bodies, so "enclosing
// loop bound" and "earlier early-return guard" collapse into the same
// position test.
type guard struct {
	end   token.Pos
	sides []string
}

func checkFunc(pass *analysis.Pass, dirs *vetutil.Directives, fd *ast.FuncDecl) {
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var cond ast.Expr
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
		case *ast.ForStmt:
			cond = s.Cond
		}
		if cond == nil {
			return true
		}
		g := guard{end: cond.End()}
		ast.Inspect(cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL:
				g.sides = append(g.sides, types.ExprString(be.X), types.ExprString(be.Y))
			}
			return true
		})
		if len(g.sides) > 0 {
			guards = append(guards, g)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || dst.Kind() != types.Int32 {
			return true
		}
		arg := call.Args[0]
		src := pass.TypesInfo.TypeOf(arg)
		if src == nil {
			return true
		}
		sb, ok := src.Underlying().(*types.Basic)
		if !ok {
			return true
		}
		switch sb.Kind() {
		case types.Int, types.Int64, types.Uint, types.Uint32, types.Uint64, types.Uintptr:
		default:
			return true // source already fits in int32
		}
		if av := pass.TypesInfo.Types[arg]; av.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(av.Value)); exact &&
				v >= math.MinInt32 && v <= math.MaxInt32 {
				return true // constant that provably fits
			}
		}
		want := types.ExprString(arg)
		for _, g := range guards {
			if g.end > call.Pos() {
				continue
			}
			for _, s := range g.sides {
				if s == want {
					return true // bound check mentioning the operand dominates
				}
			}
		}
		if dirs.SuppressedAt(call.Pos(), "narrowok") {
			return true
		}
		pass.Reportf(call.Pos(),
			"unchecked narrowing int32(%s) from %s: values past 2³¹ wrap silently; add a bound check mentioning %s, or annotate //planarvet:narrowok <reason>",
			want, src, want)
		return true
	})
}
