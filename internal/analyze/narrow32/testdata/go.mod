module narrow32test

go 1.22
