// Package clean is outside the substrate package list: narrowing here is
// not the analyzer's business.
package clean

func Narrow(i int) int32 { return int32(i) }
