// Package gen is a fixture whose import path suffix places it in the
// int32 substrate package list.
package gen

// Unchecked is the deliberate unchecked narrowing: no guard, no
// annotation.
func Unchecked(i int) int32 {
	return int32(i) // want "unchecked narrowing int32\\(i\\)"
}

// Unchecked64 narrows an int64 without a guard.
func Unchecked64(j int64) int32 {
	return int32(j) // want "unchecked narrowing int32\\(j\\)"
}

// LoopBound converts the loop variable of a bounded loop: the for
// condition mentions i, which counts as the bound check.
func LoopBound(n int) int32 {
	var s int32
	for i := 0; i < n; i++ {
		s += int32(i)
	}
	return s
}

// EarlyReturnGuard checks the operand before converting.
func EarlyReturnGuard(i int) int32 {
	if i >= 1<<31 {
		return -1
	}
	return int32(i)
}

// IfGuard converts inside the guarded branch.
func IfGuard(i int) int32 {
	if i < 1<<31 {
		return int32(i)
	}
	return -1
}

// GuardAfter has the comparison after the conversion, which does not
// dominate it.
func GuardAfter(i int) int32 {
	v := int32(i) // want "unchecked narrowing int32\\(i\\)"
	if i >= 1<<31 {
		return -1
	}
	return v
}

// WrongOperandGuard bounds i but converts 2*i: the compound operand is
// the annotation's job.
func WrongOperandGuard(i int) int32 {
	if i >= 1<<30 {
		return -1
	}
	return int32(2 * i) // want "unchecked narrowing int32\\(2 \\* i\\)"
}

// Annotated carries a reasoned escape.
func Annotated(i int) int32 {
	return int32(i) //planarvet:narrowok caller contract bounds i by the dart count
}

// Bare carries a bare escape: the narrowing report is suppressed, but the
// directive itself is warned about.
func Bare(i int) int32 {
	return int32(i) //planarvet:narrowok // want "bare //planarvet:narrowok directive"
}

// ConstantFits converts a constant that provably fits.
func ConstantFits() int32 {
	return int32(7 * 1000)
}

// AlreadyNarrow widens-then-copies types that already fit.
func AlreadyNarrow(x int32, y int16, z uint8) int32 {
	return int32(x) + int32(y) + int32(z)
}
