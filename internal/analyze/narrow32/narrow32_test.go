package narrow32_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestNarrow32(t *testing.T) {
	analyzetest.Run(t, "narrow32", "testdata")
}

// TestPackageListOverride widens the substrate list to cover the fixture's
// clean package, which must then be flagged too.
func TestPackageListOverride(t *testing.T) {
	analyzetest.RunExpectFindings(t, "narrow32", "testdata", "-narrow32.packages=clean")
}
