module mapitertest

go 1.22
