package congest

import "testing"

// Test files are exempt: map ranges here must not be flagged.
func TestRangesAllowed(t *testing.T) {
	m := map[int]int{1: 2}
	s := 0
	for k, v := range m {
		s += k + v
	}
	if s != 3 {
		t.Fatal(s)
	}
}
