// Package congest is a fixture whose import path suffix places it in the
// deterministic package list.
package congest

func Flagged(m map[int]int) int {
	s := 0
	for k := range m { // want "range over map m in deterministic package"
		s += k
	}
	for k, v := range m { // want "range over map m in deterministic package"
		s += k * v
	}
	return s
}

func Suppressed(m map[int]bool) int {
	n := 0
	for range m { //planarvet:orderinvariant commutative count
		n++
	}
	//planarvet:orderinvariant keys are sorted before use
	for k := range m {
		n += k
	}
	return n
}

func CleanRanges(xs []int, s string, ch chan int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	for range s {
		n++
	}
	for x := range ch {
		n += x
	}
	return n
}

type set map[string]struct{}

func NamedMapType(s set) int {
	n := 0
	for range s { // want "range over map s in deterministic package"
		n++
	}
	return n
}
