// Package clean is outside the deterministic package list: map iteration
// is unrestricted here.
package clean

func Sum(m map[int]int) int {
	s := 0
	for k, v := range m {
		s += k + v
	}
	return s
}
