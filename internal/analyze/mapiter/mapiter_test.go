package mapiter_test

import (
	"testing"

	"planardfs/internal/analyze/analyzetest"
)

func TestMapIter(t *testing.T) {
	analyzetest.Run(t, "mapiter", "testdata")
}

// TestPackageListOverride widens the deterministic list to cover the
// fixture's clean package, which must then be flagged too.
func TestPackageListOverride(t *testing.T) {
	analyzetest.RunExpectFindings(t, "mapiter", "testdata", "-mapiter.packages=clean")
}
