// Package mapiter defines the planarvet analyzer that forbids ranging
// over maps in the deterministic packages of the CONGEST stack.
//
// Go randomizes map iteration order on purpose. In most code that is a
// hygiene feature; in this repo it is a correctness hazard: the engine
// contracts promise byte-identical inbox orderings, trace streams and
// certification verdicts across runs and across engines, and a single
// `for k := range m` whose order reaches a message schedule, a statistic
// or an exported trace breaks all three silently. The analyzer therefore
// rejects every map range statement in the deterministic package list
// unless the site carries a //planarvet:orderinvariant <reason>
// annotation asserting that iteration order genuinely cannot be observed
// (for example: the body only folds into a commutative aggregate).
package mapiter

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"planardfs/internal/analyze/vetutil"
)

// DefaultPackages is the comma-separated list of import-path suffixes the
// determinism contract covers; override with -mapiter.packages.
const DefaultPackages = "internal/congest,internal/dist,internal/dfs,internal/separator,internal/shortcut,internal/cert,internal/weights,internal/spanning,internal/chaos,internal/serve,internal/graph,internal/planar,internal/gen,internal/sepengine,internal/guard"

var packages string

// Analyzer flags `for … range` over map types in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "forbid map iteration in deterministic packages (order leaks break run-for-run reproducibility); suppress with //planarvet:orderinvariant <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated import-path suffixes of packages under the determinism contract")
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := vetutil.NewDirectives(pass)
	dirs.ReportBare(pass, "orderinvariant")
	if !vetutil.PathMatches(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		if vetutil.InTestFile(pass, rs.Pos()) {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return
		}
		if dirs.SuppressedAt(rs.For, "orderinvariant") {
			return
		}
		pass.Reportf(rs.For,
			"range over map %s in deterministic package %s: iteration order is randomized; sort the keys, or annotate //planarvet:orderinvariant <reason> if order cannot be observed",
			types.ExprString(rs.X), pass.Pkg.Path())
	})
	return nil, nil
}
