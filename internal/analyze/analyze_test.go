package analyze_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	"planardfs/internal/analyze"
)

// TestRegistry validates the suite the way the unitchecker will: every
// analyzer well-formed (name, doc, run function, acyclic requirements)
// and all four invariant checkers present.
func TestRegistry(t *testing.T) {
	all := analyze.All()
	if err := analysis.Validate(all); err != nil {
		t.Fatalf("analysis.Validate: %v", err)
	}
	want := map[string]bool{"mapiter": true, "rngwallclock": true, "congestmsg": true, "spanbalance": true}
	for _, a := range all {
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %s is not registered", name)
	}
}
