// Package weights implements the paper's fundamental-face machinery over a
// planar configuration (G, ℰ, T): normalized rotations (parent dart first,
// root anchored at the outer face), LEFT/RIGHT DFS orders, the deterministic
// weight formulas of Definition 2 (validated against geometric ground truth
// by Lemmas 3 and 4), ℰ-left/right orientation of fundamental edges
// (Definition 1), membership in fundamental faces (Remark 1), full
// augmentations from a face endpoint (Definition 3, Remark 2), and the
// hidden-node characterization (Definition 4, Lemma 6).
package weights

import (
	"fmt"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

// Config is a planar configuration (G, ℰ, T) with precomputed orders.
type Config struct {
	G     *graph.Graph
	Emb   *planar.Embedding
	Tree  *spanning.Tree
	Outer int // outer face index w.r.t. Emb.TraceFaces()

	// Tracer, when set, instruments every algorithm run over this
	// configuration (separator phases, lemma subroutines, primitive
	// charges) with round-stamped spans. Nil disables tracing.
	Tracer trace.Tracer

	// PiL and PiR are the LEFT and RIGHT DFS orders (0-based).
	PiL, PiR []int
	// Interval bounds of subtrees in each order: z in T_v iff
	// LoL[v] <= PiL[z] <= HiL[v] (same for R).
	LoL, HiL []int
	LoR, HiR []int

	faces *planar.Faces
	// start[v] is the rotation index serving as normalized position 0:
	// the parent dart for non-roots, an outer-face dart for the root.
	start []int32
	// rootAnchor is the dart of the root at normalized position 0.
	rootAnchor int
	// CSR child order: v's tree children by ascending normalized position
	// are childList[childOff[v]:childOff[v+1]].
	childOff, childList []int32
}

// NewConfig builds a planar configuration. The tree root must lie on the
// outer face (the paper's virtual-root convention).
func NewConfig(g *graph.Graph, emb *planar.Embedding, outerDart int, tree *spanning.Tree) (*Config, error) {
	if emb.Graph() != g {
		return nil, fmt.Errorf("weights: embedding is over a different graph")
	}
	if tree.N() != g.N() {
		return nil, fmt.Errorf("weights: tree over %d vertices, graph has %d", tree.N(), g.N())
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("weights: configuration needs at least one edge")
	}
	faces := emb.TraceFaces()
	outer := int(faces.FaceOf[outerDart])
	cfg := &Config{G: g, Emb: emb, Tree: tree, Outer: outer, faces: faces}

	// startDart[v] is the dart at normalized position 0; start[v] its
	// rotation index. Both are found without materializing rotations.
	n := g.N()
	cfg.start = make([]int32, n)
	startDart := make([]int32, n)
	for v := 0; v < n; v++ {
		if v == tree.Root {
			// Anchor the root at an outer-face corner: position 0 is a
			// dart whose face is the outer face (the corner where the
			// virtual parent r0 attaches).
			anchor := -1
			d0 := emb.FirstDart(v)
			if d0 >= 0 {
				for d := d0; ; {
					if int(faces.FaceOf[d]) == outer {
						anchor = d
						break
					}
					d = emb.NextCW(d)
					if d == d0 {
						break
					}
				}
			}
			if anchor < 0 {
				return nil, fmt.Errorf("weights: tree root %d is not on the outer face", v)
			}
			cfg.start[v] = int32(emb.Pos(anchor))
			cfg.rootAnchor = anchor
			startDart[v] = int32(anchor)
			continue
		}
		id, ok := g.EdgeID(v, tree.Parent[v])
		if !ok {
			return nil, fmt.Errorf("weights: tree edge {%d,%d} not in graph", v, tree.Parent[v])
		}
		d := planar.DartFrom(g, id, v)
		cfg.start[v] = int32(emb.Pos(d))
		startDart[v] = int32(d)
	}

	// Children by ascending normalized position: walk each rotation
	// clockwise from the start dart, keeping tree children.
	cfg.childOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		cfg.childOff[v+1] = cfg.childOff[v] + int32(tree.ChildCount(v))
	}
	cfg.childList = make([]int32, cfg.childOff[n])
	fill := int32(0)
	for v := 0; v < n; v++ {
		if emb.FirstDart(v) < 0 {
			continue
		}
		s := int(startDart[v])
		for d := s; ; {
			w := emb.HeadOf(d)
			if tree.Parent[w] == v {
				cfg.childList[fill] = int32(w)
				fill++
			}
			d = emb.NextCW(d)
			if d == s {
				break
			}
		}
	}

	cfg.PiL, cfg.PiR = spanning.DFSOrdersCSR(tree, cfg.childOff, cfg.childList)
	cfg.LoL, cfg.HiL = spanning.OrderIntervals(tree, cfg.PiL)
	cfg.LoR, cfg.HiR = spanning.OrderIntervals(tree, cfg.PiR)
	return cfg, nil
}

// RootAnchor returns the dart of the root serving as normalized position 0:
// a dart on the outer face, at the corner where the paper's virtual root r0
// conceptually attaches.
func (cfg *Config) RootAnchor() int { return cfg.rootAnchor }

// TPos returns the normalized rotation position of dart d at its tail:
// the parent dart (or the root anchor) has position 0.
func (cfg *Config) TPos(d int) int {
	v := cfg.Emb.TailOf(d)
	deg := cfg.G.Degree(v)
	return ((cfg.Emb.Pos(d)-int(cfg.start[v]))%deg + deg) % deg
}

// TPosOf returns the normalized position of neighbour w in v's rotation.
func (cfg *Config) TPosOf(v, w int) int {
	id, ok := cfg.G.EdgeID(v, w)
	if !ok {
		panic(fmt.Sprintf("weights: %d and %d are not adjacent", v, w))
	}
	return cfg.TPos(planar.DartFrom(cfg.G, id, v))
}

// ChildOrder returns v's tree children by ascending normalized position,
// as a freshly allocated []int. Hot paths use the internal CSR view.
func (cfg *Config) ChildOrder(v int) []int {
	seg := cfg.children(v)
	out := make([]int, len(seg))
	for i, c := range seg {
		out[i] = int(c)
	}
	return out
}

// children returns the CSR view of v's tree children by ascending
// normalized position. The slice must not be modified.
func (cfg *Config) children(v int) []int32 {
	return cfg.childList[cfg.childOff[v]:cfg.childOff[v+1]]
}

// Faces returns the face structure of the embedding.
func (cfg *Config) Faces() *planar.Faces { return cfg.faces }

// FundamentalEdges returns the IDs of the non-tree edges of G
// (the T-real fundamental edges).
func (cfg *Config) FundamentalEdges() []int {
	onTree := make([]bool, cfg.G.M())
	for v, p := range cfg.Tree.Parent {
		if p >= 0 {
			if id, ok := cfg.G.EdgeID(v, p); ok {
				onTree[id] = true
			}
		}
	}
	out := make([]int, 0, cfg.G.M()-(cfg.G.N()-1))
	for e := 0; e < cfg.G.M(); e++ {
		if !onTree[e] {
			out = append(out, e)
		}
	}
	return out
}

// Canonical orients a fundamental edge's endpoints so that PiL[u] < PiL[v].
func (cfg *Config) Canonical(e int) (u, v int) {
	eu, ev := cfg.G.EndpointsOf(e)
	u, v = int(eu), int(ev)
	if cfg.PiL[u] > cfg.PiL[v] {
		u, v = v, u
	}
	return u, v
}

// CycleEdges returns the edge IDs of the cycle formed by the T-path between
// u and v plus the edge {u,v} (which must exist in G).
func (cfg *Config) CycleEdges(u, v int) ([]int, error) {
	id, ok := cfg.G.EdgeID(u, v)
	if !ok {
		return nil, fmt.Errorf("weights: {%d,%d} is not an edge", u, v)
	}
	path := cfg.Tree.TPath(u, v)
	edges := []int{id}
	for i := 0; i+1 < len(path); i++ {
		pid, ok := cfg.G.EdgeID(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("weights: tree edge {%d,%d} missing", path[i], path[i+1])
		}
		edges = append(edges, pid)
	}
	return edges, nil
}

// GroundTruthInside classifies vertices against the fundamental cycle of
// the real edge {u,v}: it returns the set of strictly-inside vertices and
// the border (T-path) vertices, using the geometric dual-cut ground truth.
func (cfg *Config) GroundTruthInside(u, v int) (inside, border []bool, err error) {
	edges, err := cfg.CycleEdges(u, v)
	if err != nil {
		return nil, nil, err
	}
	cc, err := cfg.Emb.ClassifyCycle(edges, cfg.Outer)
	if err != nil {
		return nil, nil, err
	}
	return cc.InsideVertex, cc.OnCycle, nil
}
