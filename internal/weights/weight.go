package weights

// EdgeCase classifies a canonical fundamental edge (u, v) with
// PiL[u] < PiL[v] per Definitions 1 and 2.
type EdgeCase struct {
	U, V int
	// Ancestor reports whether U is an ancestor of V.
	Ancestor bool
	// UseLeft selects the DFS order of the weight formula: the LEFT order
	// when the face opens on the clockwise side (t_u(v) > t_u(z), drawn so
	// that inside nodes are visited between z and v in the LEFT order),
	// the RIGHT order otherwise. Non-ancestor edges always use the LEFT
	// order (their canonical orientation fixes the side).
	//
	// Note: the paper's Definition 1 labels these "ℰ-left"/"ℰ-right" with
	// the opposite convention to its own Lemma 4 (which proves the formula
	// for t_u(v) > t_u(z) using π_ℓ). We follow Lemma 4's proof; the
	// property tests against geometric ground truth pin this down.
	UseLeft bool
	// Z is the first vertex after U on the T-path to V (the path child of
	// U) when Ancestor; -1 otherwise.
	Z int
}

// Classify determines the case of the fundamental edge with ID e.
func (cfg *Config) Classify(e int) EdgeCase {
	u, v := cfg.Canonical(e)
	ec := EdgeCase{U: u, V: v, Z: -1, UseLeft: true}
	if cfg.Tree.IsAncestor(u, v) {
		ec.Ancestor = true
		ec.Z = cfg.Tree.MustFirstOnPath(u, v)
		ec.UseLeft = cfg.TPosOf(u, v) > cfg.TPosOf(u, ec.Z)
	}
	return ec
}

// Pi returns the DFS order selected by the case.
func (cfg *Config) Pi(ec EdgeCase) []int {
	if ec.UseLeft {
		return cfg.PiL
	}
	return cfg.PiR
}

// PFace returns p_{F_e}(x) for an endpoint x of the canonical edge: the
// number of vertices of T_x strictly inside F_e, computed locally at x from
// its child cone (Claims 1 and 4).
func (cfg *Config) PFace(ec EdgeCase, x int) int {
	t := cfg.Tree
	sum := 0
	switch {
	case !ec.Ancestor && x == ec.U:
		// Children of u with t_u(c) < t_u(v) are inside (Claim 1(ii)).
		tv := cfg.TPosOf(ec.U, ec.V)
		for _, c := range cfg.children(ec.U) {
			c := int(c)
			if cfg.TPosOf(ec.U, c) < tv {
				sum += t.SubtreeSize(c)
			}
		}
	case !ec.Ancestor && x == ec.V:
		// Children of v with t_v(c) > t_v(u) are inside (Claim 1(iii)).
		tu := cfg.TPosOf(ec.V, ec.U)
		for _, c := range cfg.children(ec.V) {
			c := int(c)
			if cfg.TPosOf(ec.V, c) > tu {
				sum += t.SubtreeSize(c)
			}
		}
	case ec.Ancestor && x == ec.U:
		// Children strictly between the path child z and v in the cone
		// (Claim 4(i)); orientation decides which side of z.
		tv := cfg.TPosOf(ec.U, ec.V)
		tz := cfg.TPosOf(ec.U, ec.Z)
		for _, c := range cfg.children(ec.U) {
			c := int(c)
			if c == ec.Z {
				continue
			}
			tc := cfg.TPosOf(ec.U, c)
			if ec.UseLeft {
				if tz < tc && tc < tv {
					sum += t.SubtreeSize(c)
				}
			} else {
				if tv < tc && tc < tz {
					sum += t.SubtreeSize(c)
				}
			}
		}
	case ec.Ancestor && x == ec.V:
		// Children of v on the inside of the corner at v (Claim 4(ii)).
		tu := cfg.TPosOf(ec.V, ec.U)
		for _, c := range cfg.children(ec.V) {
			c := int(c)
			tc := cfg.TPosOf(ec.V, c)
			if ec.UseLeft {
				if tc > tu {
					sum += t.SubtreeSize(c)
				}
			} else {
				if tc < tu {
					sum += t.SubtreeSize(c)
				}
			}
		}
	default:
		panic("weights: PFace called with a non-endpoint")
	}
	return sum
}

// Weight computes the deterministic weight ω(F_e) of the real fundamental
// face of edge e per Definition 2.
func (cfg *Config) Weight(e int) int {
	ec := cfg.Classify(e)
	return cfg.weightOf(ec)
}

func (cfg *Config) weightOf(ec EdgeCase) int {
	t := cfg.Tree
	pu := cfg.PFace(ec, ec.U)
	pv := cfg.PFace(ec, ec.V)
	if !ec.Ancestor {
		// Case 1: ω = p(v)+p(u)+π_ℓ(v) − (π_ℓ(u)+n_T(u)) + 2.
		//
		// Erratum note: the paper's Definition 2 has "+1", but its own
		// Claim 2(iv) is off by one — when the LEFT order visits the first
		// vertex of the path P_v immediately after T_u, that vertex sits at
		// position π_ℓ(u)+n_T(u), which the claimed open interval misses.
		// Every vertex visited between the end of T_u and v belongs to
		// F̃_e, so the correct count of F̃_e \ (T_u ∪ T_v ∪ {w}) is
		// π_ℓ(v) − π_ℓ(u) − n_T(u); adding |F̃∩T_u| = p(u),
		// |F̃∩T_v| = p(v)+1 and 1 for w gives "+2". The property test
		// against geometric ground truth (TestWeightFormulaExact) pins
		// this down on every fundamental edge of every test family.
		return pu + pv + cfg.PiL[ec.V] - (cfg.PiL[ec.U] + t.SubtreeSize(ec.U)) + 2
	}
	// Case 2: ω = p(v)+p(u)+(π(v)−π(z)) − (d(v)−d(z)).
	pi := cfg.Pi(ec)
	return pu + pv + (pi[ec.V] - pi[ec.Z]) - (t.Depth[ec.V] - t.Depth[ec.Z])
}

// GroundTruthWeight computes, from geometric ground truth, the quantity the
// weight formula is proven to equal: |F̊_e| for ancestor edges (Lemma 4),
// |F̃_e| = |F̊_e| + |T-path(LCA, v)| for non-ancestor edges (Lemma 3).
func (cfg *Config) GroundTruthWeight(e int) (int, error) {
	ec := cfg.Classify(e)
	inside, _, err := cfg.GroundTruthInside(ec.U, ec.V)
	if err != nil {
		return 0, err
	}
	cnt := 0
	for _, in := range inside {
		if in {
			cnt++
		}
	}
	if ec.Ancestor {
		return cnt, nil
	}
	w := cfg.Tree.LCA(ec.U, ec.V)
	return cnt + cfg.Tree.Depth[ec.V] - cfg.Tree.Depth[w] + 1, nil
}

// InFace reports where z stands relative to the real fundamental face of
// the canonical edge case: on the border (the T-path U..V) or strictly
// inside, using only orders, intervals and local cone information
// (Remark 1) — no geometry.
func (cfg *Config) InFace(ec EdgeCase, z int) (border, inside bool) {
	t := cfg.Tree
	// Border: z on the T-path between U and V.
	if ec.Ancestor {
		if t.IsAncestor(ec.U, z) && t.IsAncestor(z, ec.V) {
			return true, false
		}
	} else {
		w := t.LCA(ec.U, ec.V)
		if t.IsAncestor(z, ec.U) && t.IsAncestor(w, z) {
			return true, false
		}
		if t.IsAncestor(z, ec.V) && t.IsAncestor(w, z) {
			return true, false
		}
	}
	// Subtree membership at the endpoints: decided by the endpoint cones.
	if z != ec.U && t.IsAncestor(ec.U, z) && !(ec.Ancestor && t.IsAncestor(ec.Z, z)) {
		// z hangs off a child of U: inside iff that child's subtree is in
		// the face cone, i.e. the child is counted by PFace.
		c := t.Ancestor(z, t.Depth[z]-t.Depth[ec.U]-1)
		return false, cfg.childInCone(ec, ec.U, c)
	}
	if z != ec.V && t.IsAncestor(ec.V, z) {
		c := t.Ancestor(z, t.Depth[z]-t.Depth[ec.V]-1)
		return false, cfg.childInCone(ec, ec.V, c)
	}
	// General position (Remark 1): strict order interval in the case's
	// order.
	pi := cfg.Pi(ec)
	if !ec.Ancestor {
		// Remark 1 case 1 uses π_ℓ; exclude T_U and T_V (handled above).
		if t.IsAncestor(ec.U, z) || t.IsAncestor(ec.V, z) {
			return false, false
		}
		return false, cfg.PiL[ec.U] < cfg.PiL[z] && cfg.PiL[z] < cfg.PiL[ec.V]
	}
	if t.IsAncestor(ec.V, z) {
		return false, false
	}
	return false, pi[ec.U] < pi[z] && pi[z] < pi[ec.V]
}

// childInCone reports whether child c of endpoint x lies in the inside cone
// of the face at x (the same condition PFace sums over).
func (cfg *Config) childInCone(ec EdgeCase, x, c int) bool {
	switch {
	case !ec.Ancestor && x == ec.U:
		return cfg.TPosOf(ec.U, c) < cfg.TPosOf(ec.U, ec.V)
	case !ec.Ancestor && x == ec.V:
		return cfg.TPosOf(ec.V, c) > cfg.TPosOf(ec.V, ec.U)
	case ec.Ancestor && x == ec.U:
		if c == ec.Z {
			return false
		}
		tv, tz, tc := cfg.TPosOf(ec.U, ec.V), cfg.TPosOf(ec.U, ec.Z), cfg.TPosOf(ec.U, c)
		if ec.UseLeft {
			return tz < tc && tc < tv
		}
		return tv < tc && tc < tz
	case ec.Ancestor && x == ec.V:
		tu, tc := cfg.TPosOf(ec.V, ec.U), cfg.TPosOf(ec.V, c)
		if ec.UseLeft {
			return tc > tu
		}
		return tc < tu
	}
	panic("weights: childInCone with non-endpoint")
}
