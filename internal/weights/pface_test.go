package weights

import (
	"testing"
)

// TestPFaceMatchesGroundTruth validates the locally computable p_{F_e}(x)
// (the endpoint cone sums) against the geometric count |T_x ∩ F̊_e| for
// every fundamental edge endpoint.
func TestPFaceMatchesGroundTruth(t *testing.T) {
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			inside, _, err := cfg.GroundTruthInside(ec.U, ec.V)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range []int{ec.U, ec.V} {
				want := 0
				for z := 0; z < cfg.G.N(); z++ {
					if !inside[z] || !cfg.Tree.IsAncestor(x, z) || z == x {
						continue
					}
					// For an ancestor-case U, Definition 2's p counts only
					// the cone subtrees hanging off U itself — the interior
					// below the path child Z is accounted by the order
					// interval term instead (see Lemma 4's accounting).
					if ec.Ancestor && x == ec.U && cfg.Tree.IsAncestor(ec.Z, z) {
						continue
					}
					want++
				}
				if got := cfg.PFace(ec, x); got != want {
					t.Fatalf("cfg %d edge %d-%d endpoint %d: PFace %d, geometric %d",
						ci, ec.U, ec.V, x, got, want)
				}
			}
		}
	}
}

// TestCanonicalOrder checks the canonicalization invariant PiL[U] < PiL[V]
// and that the ancestor flag matches the tree.
func TestCanonicalOrder(t *testing.T) {
	for _, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			if cfg.PiL[ec.U] >= cfg.PiL[ec.V] {
				t.Fatalf("canonical order violated at edge %d", e)
			}
			if ec.Ancestor != cfg.Tree.IsAncestor(ec.U, ec.V) {
				t.Fatalf("ancestor flag wrong at edge %d", e)
			}
			if ec.Ancestor && cfg.Tree.Parent[ec.Z] != ec.U {
				t.Fatalf("path child wrong at edge %d", e)
			}
			if cfg.Tree.IsAncestor(ec.V, ec.U) {
				t.Fatalf("descendant canonicalized as U at edge %d", e)
			}
		}
	}
}

// TestWeightBoundsInside checks Lemma 5's usable inequality: the weight is
// at least the strict inside count and at most inside + border.
func TestWeightBoundsInside(t *testing.T) {
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			inside := len(cfg.InsideNodes(ec))
			border := len(cfg.BorderNodes(ec))
			w := cfg.Weight(e)
			if w < inside || w > inside+border {
				t.Fatalf("cfg %d edge %d: weight %d outside [inside=%d, inside+border=%d]",
					ci, e, w, inside, inside+border)
			}
		}
	}
}
