package weights

// EdgeContainedInFace reports whether the face of fundamental edge f
// (≠ the case's edge) is contained in the fundamental face of ec: both
// endpoints of f lie on the border or strictly inside F_e, and neither
// endpoint of ec's edge is strictly inside F_f. The second condition
// excludes the degenerate nesting where C_f runs along F_e's border and its
// region engulfs the closing edge of F_e (then V(F_f) ⊆ V(F_e) as node sets
// even though F_f ⊋ F_e as regions).
func (cfg *Config) EdgeContainedInFace(ec EdgeCase, f int) bool {
	fd := cfg.G.EdgeByID(f)
	if id, ok := cfg.G.EdgeID(ec.U, ec.V); ok && id == f {
		return false
	}
	b1, i1 := cfg.InFace(ec, fd.U)
	b2, i2 := cfg.InFace(ec, fd.V)
	if !(b1 || i1) || !(b2 || i2) {
		return false
	}
	ecF := cfg.Classify(f)
	if _, uIn := cfg.InFace(ecF, ec.U); uIn {
		return false
	}
	if _, vIn := cfg.InFace(ecF, ec.V); vIn {
		return false
	}
	return true
}

// Hides reports whether fundamental edge f hides node z within the
// fundamental face of ec (Definition 4): f is contained in F_e, z lies
// strictly inside F_f, and either no endpoint of f is the augmentation
// endpoint U, or an endpoint is U but some node of T_U ∩ F_e escapes F_f.
func (cfg *Config) Hides(ec EdgeCase, z, f int) bool {
	fd := cfg.G.EdgeByID(f)
	if !cfg.EdgeContainedInFace(ec, f) {
		return false
	}
	ecF := cfg.Classify(f)
	if _, inside := cfg.InFace(ecF, z); !inside {
		return false
	}
	// If U itself lies strictly inside F_f, the edge U-z is drawn entirely
	// within F_f and f cannot block it (this happens when F_f engulfs F_e's
	// closing edge; node-set containment does not distinguish the regions).
	if _, uInside := cfg.InFace(ecF, ec.U); uInside {
		return false
	}
	if fd.U != ec.U && fd.V != ec.U {
		return true // condition (1)
	}
	// Condition (2), prefix-scoped: f (incident to U) hides z unless the
	// whole swept prefix of z — the cone subtrees of U visited before z's
	// branch, the face nodes visited up to z in the case's DFS order, and
	// the descendants of z — fits inside F_f. (The paper's literal
	// "V(T_u) ∩ V(F_e) ⊄ V(F_f)" over-triggers when U is an ancestor-type
	// endpoint, where T_U contains the entire face; the prefix reading is
	// the one under which Lemma 6's equivalence with geometric
	// compatibility holds — see TestHiddenMatchesCompatibility.)
	for _, x := range cfg.sweptPrefix(ec, z) {
		bf, iff := cfg.InFace(ecF, x)
		if !bf && !iff {
			return true
		}
	}
	return false
}

// sweptPrefix returns the vertices the full augmentation to z keeps inside
// F^l_{Uz}: the cone subtrees of U swept before z's branch, the face
// vertices with DFS-order position up to z, and the descendants of z.
func (cfg *Config) sweptPrefix(ec EdgeCase, z int) []int {
	t := cfg.Tree
	pi := cfg.Pi(ec)
	keep := make([]bool, cfg.G.N())
	mark := func(v int) {
		// Mark the whole subtree of v.
		for x := 0; x < cfg.G.N(); x++ {
			if t.IsAncestor(v, x) {
				keep[x] = true
			}
		}
	}
	if z != ec.U && t.IsAncestor(ec.U, z) {
		z1 := t.MustFirstOnPath(ec.U, z)
		for _, c := range cfg.children(ec.U) {
			c := int(c)
			if c != z1 && cfg.childInCone(ec, ec.U, c) && pi[c] < pi[z1] {
				mark(c)
			}
		}
		for x := 0; x < cfg.G.N(); x++ {
			if pi[x] > pi[z1] && pi[x] <= pi[z] {
				keep[x] = true
			}
		}
	} else {
		for _, c := range cfg.children(ec.U) {
			c := int(c)
			if cfg.childInCone(ec, ec.U, c) {
				mark(c)
			}
		}
		for x := 0; x < cfg.G.N(); x++ {
			if cfg.PiL[x] >= cfg.PiL[ec.U]+t.SubtreeSize(ec.U) && cfg.PiL[x] <= cfg.PiL[z] {
				keep[x] = true
			}
		}
	}
	mark(z)
	var out []int
	for x := 0; x < cfg.G.N(); x++ {
		if !keep[x] {
			continue
		}
		if b, in := cfg.InFace(ec, x); b || in {
			out = append(out, x)
		}
	}
	return out
}

// HidingEdges returns the fundamental edges that hide z in the face of ec
// (empty means z is (T, F_e)-compatible with U when z is a leaf, Lemma 6).
func (cfg *Config) HidingEdges(ec EdgeCase, z int) []int {
	var out []int
	for _, f := range cfg.FundamentalEdges() {
		if cfg.Hides(ec, z, f) {
			out = append(out, f)
		}
	}
	return out
}
