package weights

import (
	"fmt"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/spanning"
)

// configsUnderTest builds a varied set of (instance, tree) configurations:
// several graph families, BFS and deep-DFS spanning trees, several seeds.
func configsUnderTest(t *testing.T) []*Config {
	t.Helper()
	var instances []*gen.Instance
	addInst := func(in *gen.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
	}
	addInst(gen.Grid(4, 4))
	addInst(gen.Grid(5, 3))
	addInst(gen.Wheel(7))
	addInst(gen.Fan(8))
	for seed := int64(1); seed <= 6; seed++ {
		addInst(gen.StackedTriangulation(14+2*int(seed), seed))
		addInst(gen.PolygonTriangulation(10+int(seed), seed))
		addInst(gen.SparsePlanar(20, 0.5, seed))
	}
	var cfgs []*Config
	for _, in := range instances {
		// Root must lie on the outer face: use a vertex of the outer face.
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.OuterFace())[0]
		bt, err := spanning.BFSTree(in.G, root)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := spanning.DeepDFSTree(in.G, root)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range []*spanning.Tree{bt, dt} {
			cfg, err := NewConfig(in.G, in.Emb, in.OuterDart, tr)
			if err != nil {
				t.Fatalf("%s: %v", in.Name, err)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

func TestConfigRejectsInnerRoot(t *testing.T) {
	in, err := gen.Wheel(5)
	if err != nil {
		t.Fatal(err)
	}
	hub := 5 // the hub is not on the outer face
	tr, err := spanning.BFSTree(in.G, hub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConfig(in.G, in.Emb, in.OuterDart, tr); err == nil {
		t.Fatal("root strictly inside accepted")
	}
}

func TestTPosNormalization(t *testing.T) {
	for _, cfg := range configsUnderTest(t) {
		for v := 0; v < cfg.G.N(); v++ {
			if v == cfg.Tree.Root {
				continue
			}
			if got := cfg.TPosOf(v, cfg.Tree.Parent[v]); got != 0 {
				t.Fatalf("parent dart of %d at position %d", v, got)
			}
		}
		// Child order must be strictly ascending in TPos.
		for v := 0; v < cfg.G.N(); v++ {
			cs := cfg.ChildOrder(v)
			for i := 0; i+1 < len(cs); i++ {
				if cfg.TPosOf(v, cs[i]) >= cfg.TPosOf(v, cs[i+1]) {
					t.Fatalf("child order of %d not ascending", v)
				}
			}
			if len(cs) != len(cfg.Tree.Children(v)) {
				t.Fatalf("child order of %d misses children", v)
			}
		}
	}
}

// TestWeightFormulaExact is the Lemma 3 / Lemma 4 property test: the
// deterministic weight of Definition 2 equals the geometric count
// (|F̃_e| for non-ancestor edges, |F̊_e| for ancestor edges) for every real
// fundamental edge of every configuration.
func TestWeightFormulaExact(t *testing.T) {
	total, checked := 0, 0
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			total++
			want, err := cfg.GroundTruthWeight(e)
			if err != nil {
				t.Fatalf("cfg %d edge %d: %v", ci, e, err)
			}
			got := cfg.Weight(e)
			if got != want {
				ec := cfg.Classify(e)
				t.Fatalf("cfg %d edge %d (%d-%d, anc=%v, left=%v): weight %d, ground truth %d",
					ci, e, ec.U, ec.V, ec.Ancestor, ec.UseLeft, got, want)
			}
			checked++
		}
	}
	if checked == 0 || checked != total {
		t.Fatalf("checked %d of %d edges", checked, total)
	}
	t.Logf("verified Definition 2 on %d fundamental edges", checked)
}

// TestInFaceMatchesGeometry is the Remark 1 property test: interval/cone
// face membership equals the dual-cut geometric classification for every
// vertex and fundamental edge.
func TestInFaceMatchesGeometry(t *testing.T) {
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			inside, border, err := cfg.GroundTruthInside(ec.U, ec.V)
			if err != nil {
				t.Fatal(err)
			}
			for z := 0; z < cfg.G.N(); z++ {
				b, in := cfg.InFace(ec, z)
				if b != border[z] || in != inside[z] {
					t.Fatalf("cfg %d edge %d-%d z=%d: InFace=(%v,%v), geometry=(%v,%v)",
						ci, ec.U, ec.V, z, b, in, border[z], inside[z])
				}
			}
		}
	}
}

// TestAugWeightMonotone is the Remark 2 property test: over incomparable
// nodes strictly inside a face, the augmentation weight from U is monotone
// in the case's DFS order.
func TestAugWeightMonotone(t *testing.T) {
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			ins := cfg.InsideNodes(ec)
			pi := cfg.Pi(ec)
			for _, z1 := range ins {
				for _, z2 := range ins {
					if cfg.Tree.IsAncestor(z1, z2) || cfg.Tree.IsAncestor(z2, z1) {
						continue
					}
					if pi[z1] < pi[z2] && cfg.AugWeight(ec, z1) > cfg.AugWeight(ec, z2) {
						t.Fatalf("cfg %d edge %d-%d: aug weight not monotone at %d (%d) vs %d (%d)",
							ci, ec.U, ec.V, z1, cfg.AugWeight(ec, z1), z2, cfg.AugWeight(ec, z2))
					}
				}
			}
		}
	}
}

// TestAugWeightLeafEquality is Remark 2 items 3-4: a node's augmentation
// weight equals that of its order-maximal leaf descendant.
func TestAugWeightLeafEquality(t *testing.T) {
	for ci, cfg := range configsUnderTest(t) {
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			for _, z := range cfg.InsideNodes(ec) {
				leaf := cfg.RightmostLeafIn(ec, z)
				if w1, w2 := cfg.AugWeight(ec, z), cfg.AugWeight(ec, leaf); w1 != w2 {
					t.Fatalf("cfg %d edge %d-%d: aug weight of %d is %d but of its rightmost leaf %d is %d",
						ci, ec.U, ec.V, z, w1, leaf, w2)
				}
			}
		}
	}
}

// isLeaf reports whether z has no tree children.
func isLeaf(cfg *Config, z int) bool { return len(cfg.Tree.Children(z)) == 0 }

// TestAugWeightGeometric validates the augmentation weight against actual
// geometric insertion for non-hidden leaves: some planarity-preserving
// insertion of the virtual edge {U, z} yields a fundamental face whose
// ground-truth count equals AugWeight.
func TestAugWeightGeometric(t *testing.T) {
	checked := 0
	for ci, cfg := range configsUnderTest(t) {
		if cfg.G.N() > 24 {
			continue // geometric enumeration is expensive
		}
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			for _, z := range cfg.InsideNodes(ec) {
				if !isLeaf(cfg, z) || cfg.G.HasEdge(ec.U, z) {
					continue
				}
				if len(cfg.HidingEdges(ec, z)) > 0 {
					continue
				}
				want := cfg.AugWeight(ec, z)
				if !augWeightRealizable(t, cfg, ec, z, want) {
					t.Fatalf("cfg %d edge %d-%d z=%d: no insertion realizes aug weight %d",
						ci, ec.U, ec.V, z, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no augmentation candidates checked")
	}
	t.Logf("geometrically validated %d augmentation weights", checked)
}

// augWeightRealizable inserts {U,z} in every planar way and checks whether
// one insertion's fundamental face has ground-truth weight want.
func augWeightRealizable(t *testing.T, cfg *Config, ec EdgeCase, z, want int) bool {
	t.Helper()
	for _, ins := range cfg.Emb.FaceInsertions(ec.U, z) {
		ng, nemb, err := cfg.Emb.InsertEdge(ins)
		if err != nil || nemb.Genus() != 0 {
			continue
		}
		ncfg, err := NewConfig(ng, nemb, outerDartIn(ng, cfg), cfg.Tree)
		if err != nil {
			continue
		}
		id, ok := ng.EdgeID(ec.U, z)
		if !ok {
			continue
		}
		got, err := ncfg.GroundTruthWeight(id)
		if err != nil {
			continue
		}
		// AugWeight uses F-tilde semantics throughout; GroundTruthWeight of
		// an ancestor edge returns the strict inside count, so add the
		// border path U..z.
		if nec := ncfg.Classify(id); nec.Ancestor {
			got += cfg.Tree.Depth[z] - cfg.Tree.Depth[ec.U] + 1
		}
		if got == want {
			return true
		}
	}
	return false
}

// outerDartIn maps the original outer-face designation into the new graph
// (dart IDs of existing edges are preserved by InsertEdge).
func outerDartIn(ng interface{ M() int }, cfg *Config) int {
	// Any dart of the original outer face still borders the outer region:
	// pick a dart of the outer face cycle from the original embedding.
	fs := cfg.Emb.TraceFaces()
	return int(fs.Cycle(cfg.Outer)[0])
}

// TestHiddenMatchesCompatibility is the Lemma 6 property test: a leaf
// strictly inside a face is geometrically (T, F_e)-compatible with U iff it
// is not hidden.
func TestHiddenMatchesCompatibility(t *testing.T) {
	checked := 0
	for ci, cfg := range configsUnderTest(t) {
		if cfg.G.N() > 20 {
			continue
		}
		for _, e := range cfg.FundamentalEdges() {
			ec := cfg.Classify(e)
			for _, z := range cfg.InsideNodes(ec) {
				if !isLeaf(cfg, z) || cfg.G.HasEdge(ec.U, z) {
					continue
				}
				hidden := len(cfg.HidingEdges(ec, z)) > 0
				compatible := geometricallyCompatible(cfg, ec, z)
				if hidden == compatible {
					t.Fatalf("cfg %d edge %d-%d leaf %d: hidden=%v but geometrically compatible=%v",
						ci, ec.U, ec.V, z, hidden, compatible)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no hidden/compatibility candidates checked")
	}
	t.Logf("verified Lemma 6 on %d (face, leaf) pairs", checked)
}

// geometricallyCompatible checks the operative form of Definition 3: some
// planar insertion of {U,z} yields a face F_f that (1) stays inside F_e,
// (2) contains every descendant of z, and (3) contains every cone subtree
// of U swept before z in the case's DFS order (the prefix the full
// augmentation keeps inside; the literal "all of V(T_U) cap F_e" reading of
// condition (2) in Definition 3 is unsatisfiable when U is an ancestor-type
// endpoint, since then T_U contains the whole face).
func geometricallyCompatible(cfg *Config, ec EdgeCase, z int) bool {
	t := cfg.Tree
	pi := cfg.Pi(ec)
	// The U-side vertices that must stay inside the new face.
	var mustKeep []int
	if z != ec.U && t.IsAncestor(ec.U, z) {
		z1 := t.MustFirstOnPath(ec.U, z)
		for _, c := range cfg.ChildOrder(ec.U) {
			if c != z1 && cfg.childInCone(ec, ec.U, c) && pi[c] < pi[z1] {
				mustKeep = append(mustKeep, c)
			}
		}
	} else {
		for _, c := range cfg.ChildOrder(ec.U) {
			if cfg.childInCone(ec, ec.U, c) {
				mustKeep = append(mustKeep, c)
			}
		}
	}
	for _, ins := range cfg.Emb.FaceInsertions(ec.U, z) {
		ng, nemb, err := cfg.Emb.InsertEdge(ins)
		if err != nil || nemb.Genus() != 0 {
			continue
		}
		ncfg, err := NewConfig(ng, nemb, outerDartIn(ng, cfg), cfg.Tree)
		if err != nil {
			continue
		}
		if _, ok := ng.EdgeID(ec.U, z); !ok {
			continue
		}
		necInside, necBorder, err := ncfg.GroundTruthInside(ec.U, z)
		if err != nil {
			continue
		}
		inF := func(x int) bool { return necInside[x] || necBorder[x] }
		// (1) the new face is contained in F_e.
		ok1 := true
		for x := 0; x < cfg.G.N(); x++ {
			if inF(x) {
				b, in := cfg.InFace(ec, x)
				if !b && !in {
					ok1 = false
					break
				}
			}
		}
		if !ok1 {
			continue
		}
		// (2) every descendant of z is inside the new face.
		ok2 := true
		for x := 0; x < cfg.G.N(); x++ {
			if t.IsAncestor(z, x) && !inF(x) {
				ok2 = false
				break
			}
		}
		if !ok2 {
			continue
		}
		// (3) the swept cone subtrees of U are inside the new face.
		ok3 := true
		for _, c := range mustKeep {
			for x := 0; x < cfg.G.N() && ok3; x++ {
				if t.IsAncestor(c, x) && !inF(x) {
					ok3 = false
				}
			}
			if !ok3 {
				break
			}
		}
		if ok3 {
			return true
		}
	}
	return false
}

func TestFundamentalEdgesCount(t *testing.T) {
	for _, cfg := range configsUnderTest(t) {
		want := cfg.G.M() - (cfg.G.N() - 1)
		if got := len(cfg.FundamentalEdges()); got != want {
			t.Fatalf("fundamental edges = %d, want %d", got, want)
		}
	}
}

func ExampleConfig_Weight() {
	in, _ := gen.Grid(3, 3)
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
	tr, _ := spanning.BFSTree(in.G, root)
	cfg, _ := NewConfig(in.G, in.Emb, in.OuterDart, tr)
	e := cfg.FundamentalEdges()[0]
	gt, _ := cfg.GroundTruthWeight(e)
	fmt.Println(cfg.Weight(e) == gt)
	// Output: true
}
