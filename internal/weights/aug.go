package weights

// AugWeight computes ω(F^ℓ_{Uz}), the weight of the face obtained by the
// full augmentation from endpoint U of the fundamental face of ec to a node
// z strictly inside it (Section 3.1.3, Definition 3). The weight follows
// Definition 2 applied to the virtual edge {U, z} with the compatible
// insertion that keeps the T_U-side of the face inside:
//
//   - if U is an ancestor of z, the ancestor formula with z's path child z1
//     and the cone subtrees of U visited before z1 in the case's DFS order;
//   - otherwise the non-ancestor formula with the full cone p_{F_e}(U).
//
// For nodes z that are not (T, F_e)-compatible with U this is the paper's
// notational extension (the prefix count); it is monotone in the case's DFS
// order across incomparable inside nodes (Remark 2).
// The weight uses F̃ semantics uniformly — it counts the strict inside of
// F^ℓ_{Uz} plus the T-path from U (resp. the LCA) to z — which is what makes
// Remark 2's leaf equality exact: descending from z to its order-maximal
// leaf moves the subpath z..leaf from the inside to the border, so only the
// combined count is invariant. Like Definition 2's case-1 weight, counting
// some border nodes is harmless for the separator threshold (Lemma 5).
func (cfg *Config) AugWeight(ec EdgeCase, z int) int {
	t := cfg.Tree
	if z != ec.U && t.IsAncestor(ec.U, z) {
		pi := cfg.Pi(ec)
		z1 := t.MustFirstOnPath(ec.U, z)
		pu := 0
		for _, c := range cfg.children(ec.U) {
			c := int(c)
			if c != z1 && cfg.childInCone(ec, ec.U, c) && pi[c] < pi[z1] {
				pu += t.SubtreeSize(c)
			}
		}
		// |F̊_{Uz}| + |path(U..z)|, simplified with d(z1) = d(U)+1:
		// (n_T(z)-1) + p'(U) + (π(z)-π(z1)) - (d(z)-d(z1)) + (d(z)-d(U)+1).
		return (t.SubtreeSize(z) - 1) + pu + (pi[z] - pi[z1]) + 2
	}
	// Non-ancestor: Definition 2 case 1 with p(z) = n_T(z)-1 and the
	// corrected "+2" (see Weight).
	return (t.SubtreeSize(z) - 1) + cfg.PFace(ec, ec.U) +
		cfg.PiL[z] - (cfg.PiL[ec.U] + t.SubtreeSize(ec.U)) + 2
}

// RightmostLeafIn returns the leaf descendant of z with the highest position
// in the case's DFS order (Remark 2 items 3-4: it has the same augmentation
// weight as z).
func (cfg *Config) RightmostLeafIn(ec EdgeCase, z int) int {
	pi := cfg.Pi(ec)
	cur := z
	for len(cfg.children(cur)) > 0 {
		cs := cfg.children(cur)
		best := cs[0]
		for _, c := range cs[1:] {
			if pi[c] > pi[best] {
				best = c
			}
		}
		cur = int(best)
	}
	return cur
}

// InsideNodes lists the nodes strictly inside the fundamental face of ec,
// computed from orders and cones only (no geometry).
func (cfg *Config) InsideNodes(ec EdgeCase) []int {
	var out []int
	for z := 0; z < cfg.G.N(); z++ {
		if _, inside := cfg.InFace(ec, z); inside {
			out = append(out, z)
		}
	}
	return out
}

// BorderNodes lists the T-path between the case's endpoints.
func (cfg *Config) BorderNodes(ec EdgeCase) []int {
	return cfg.Tree.TPath(ec.U, ec.V)
}
