// Package chaos is the deterministic fault-injection and certified-recovery
// layer of the CONGEST stack.
//
// A Plan describes a fault scenario — message drops, single-word payload
// corruptions, links going down from a round onward, crash-stopped nodes,
// per-edge delivery stalls — as an explicit fault list plus a seeded Spec
// sizing a randomized portion. Arm compiles the plan into per-(round,edge)
// decisions and installs them on a congest.Network through the engine's
// injection hook, so the same seed and plan perturb a run byte-identically
// under the sequential and sharded engines (the trace-identity contract of
// DESIGN.md §7 extends to injected runs).
//
// Determinism is the whole point: every decision is a pure function of
// (seed, attempt, graph), drawn through an explicitly seeded rand.Rand —
// there is no hidden entropy and no wall clock. Randomized faults are
// transient: each retry attempt re-derives their positions from (seed,
// attempt), modelling independent transient faults reproducibly, while
// faults listed explicitly in Plan.Faults persist across attempts.
// Structural faults (Spec.Structural) model the effect of faults on the
// simulated charged layers, which exchange no engine-level messages; they
// decay geometrically across attempts (count >> (attempt-1)), a transient
// burst that lets retries recover.
//
// On top of injection, RunWithRecovery (recover.go) is the supervised
// runtime closing the loop: execute a producer, certify its output with the
// internal/cert proof-labeling verifiers, retry under an exponential
// round-budget backoff, degrade to a fallback producer, and report — so an
// injected fault can never yield a silently wrong output, only a certified
// result or an explicit degraded/failed report.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"planardfs/internal/congest"
	"planardfs/internal/graph"
)

// Kind identifies a fault class.
type Kind uint8

// The fault classes of the model.
const (
	// Drop discards one message at its (round, edge, direction) slot.
	Drop Kind = iota
	// Corrupt XORs a nonzero value into one payload word of one message.
	// The kind tag is never corrupted (payload means the argument words),
	// and an argument-less message passes unchanged.
	Corrupt
	// LinkDown silences an edge in both directions from a round onward.
	LinkDown
	// Crash crash-stops a vertex from a round onward: its program never
	// steps again, it sends nothing, and it counts as done.
	Crash
	// Stall withholds one message and delivers it Len rounds late, after
	// that round's regular deliveries.
	Stall
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case LinkDown:
		return "linkdown"
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	}
	return "unknown"
}

// Fault is one injected fault. Which fields are read depends on Kind; see
// the Kind constants.
type Fault struct {
	Kind  Kind
	Round int  // round the fault takes effect
	Edge  int  // graph edge ID (Drop, Corrupt, Stall, LinkDown)
	IntoV bool // faulted direction: the delivery into the edge's V endpoint
	Word  int  // Corrupt: payload word index, taken modulo the argument count
	XOR   int  // Corrupt: nonzero value XORed into the word
	Node  int  // Crash: the crash-stopped vertex
	Len   int  // Stall: delivery delay in rounds (min 1)
}

// Spec sizes the randomized portion of a plan: how many faults of each
// class to derive from the seed per attempt.
type Spec struct {
	Drops       int
	Corruptions int
	LinkDowns   int
	Crashes     int
	Stalls      int
	// Structural is the number of parent-pointer corruptions applied to
	// simulated (charged-layer) outputs on attempt 1; the burst decays as
	// Structural >> (attempt-1) on retries.
	Structural int
	// Horizon bounds the rounds [0, Horizon) in which point faults fire;
	// 0 means 2n+64.
	Horizon int
	// StallLen is the delivery delay of Stall faults; 0 means 3.
	StallLen int
	// Protect lists vertices never crash-stopped (typically the root).
	Protect []int
}

// zero reports whether the spec derives no faults at all.
func (s Spec) zero() bool {
	return s.Drops == 0 && s.Corruptions == 0 && s.LinkDowns == 0 &&
		s.Crashes == 0 && s.Stalls == 0 && s.Structural == 0
}

// ParseSpec parses a CLI spec string of comma-separated key=value pairs,
// e.g. "drops=2,corruptions=1,crashes=1,structural=4,horizon=500".
// Keys: drops, corruptions, linkdowns, crashes, stalls, structural,
// horizon, stalllen.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: spec entry %q is not key=value", kv)
		}
		x, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || x < 0 {
			return Spec{}, fmt.Errorf("chaos: spec value %q for %q is not a non-negative integer", v, k)
		}
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "drops":
			spec.Drops = x
		case "corruptions":
			spec.Corruptions = x
		case "linkdowns":
			spec.LinkDowns = x
		case "crashes":
			spec.Crashes = x
		case "stalls":
			spec.Stalls = x
		case "structural":
			spec.Structural = x
		case "horizon":
			spec.Horizon = x
		case "stalllen":
			spec.StallLen = x
		default:
			return Spec{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	return spec, nil
}

// Plan is a deterministic fault scenario: explicit faults active in every
// attempt, plus a seeded Spec re-derived per attempt (transient faults).
type Plan struct {
	Seed   int64
	Spec   Spec
	Faults []Fault
}

// NewPlan returns a plan deriving spec-sized random faults from seed, with
// no explicit faults.
func NewPlan(seed int64, spec Spec) *Plan {
	return &Plan{Seed: seed, Spec: spec}
}

// rng streams: distinct salts keep the per-attempt message-level stream and
// the structural stream independent of each other.
const (
	saltMessage    = 0x9e3779b97f4a7c15
	saltStructural = 0xc2b2ae3d27d4eb4f
)

func (p *Plan) rng(salt uint64, attempt int) *rand.Rand {
	s := uint64(p.Seed)*0x100000001b3 ^ salt ^ uint64(attempt)*0x9e3779b9
	return rand.New(rand.NewSource(int64(s)))
}

// horizon returns the effective fault horizon for an n-vertex graph.
func (p *Plan) horizon(n int) int {
	if p.Spec.Horizon > 0 {
		return p.Spec.Horizon
	}
	return 2*n + 64
}

// faultsFor derives the full fault list of one attempt: the explicit
// faults, then the spec-sized random portion drawn from (seed, attempt).
func (p *Plan) faultsFor(g *graph.Graph, attempt int) []Fault {
	out := append([]Fault(nil), p.Faults...)
	if p.Spec.zero() {
		return out
	}
	n, m := g.N(), g.M()
	if m == 0 {
		return out
	}
	rng := p.rng(saltMessage, attempt)
	horizon := p.horizon(n)
	protected := make(map[int]bool, len(p.Spec.Protect))
	for _, v := range p.Spec.Protect {
		protected[v] = true
	}
	stallLen := p.Spec.StallLen
	if stallLen <= 0 {
		stallLen = 3
	}
	point := func(k Kind) Fault {
		return Fault{Kind: k, Round: rng.Intn(horizon), Edge: rng.Intn(m), IntoV: rng.Intn(2) == 1}
	}
	for i := 0; i < p.Spec.Drops; i++ {
		out = append(out, point(Drop))
	}
	for i := 0; i < p.Spec.Corruptions; i++ {
		f := point(Corrupt)
		f.Word = rng.Intn(8)
		f.XOR = 1 + rng.Intn(1<<16)
		out = append(out, f)
	}
	for i := 0; i < p.Spec.LinkDowns; i++ {
		f := point(LinkDown)
		out = append(out, f)
	}
	for i := 0; i < p.Spec.Crashes; i++ {
		v := rng.Intn(n)
		for try := 0; protected[v] && try < 4*n; try++ {
			v = rng.Intn(n)
		}
		if protected[v] {
			continue // everything protected: skip the crash
		}
		out = append(out, Fault{Kind: Crash, Round: rng.Intn(horizon), Node: v})
	}
	for i := 0; i < p.Spec.Stalls; i++ {
		f := point(Stall)
		f.Len = stallLen
		out = append(out, f)
	}
	return out
}

// CorruptParents applies the plan's structural fault burst for the given
// attempt to a parent array produced by a simulated (charged-layer) run,
// mutating parent in place and returning the number of corruptions applied.
// Victims are chosen deterministically from (seed, attempt); the root and
// protected vertices are spared. A nil plan applies nothing.
func (p *Plan) CorruptParents(attempt, root int, parent []int) int {
	if p == nil || p.Spec.Structural == 0 || len(parent) < 2 {
		return 0
	}
	burst := p.Spec.Structural >> (attempt - 1)
	if burst <= 0 {
		return 0
	}
	rng := p.rng(saltStructural, attempt)
	protected := make(map[int]bool, len(p.Spec.Protect)+1)
	protected[root] = true
	for _, v := range p.Spec.Protect {
		protected[v] = true
	}
	n := len(parent)
	applied := 0
	for i := 0; i < burst; i++ {
		v := rng.Intn(n)
		for try := 0; protected[v] && try < 4*n; try++ {
			v = rng.Intn(n)
		}
		if protected[v] {
			continue
		}
		w := rng.Intn(n)
		for w == v || w == parent[v] {
			w = rng.Intn(n)
		}
		parent[v] = w
		applied++
	}
	return applied
}

// CorruptInts is the generic form of CorruptParents for claimed outputs
// that are not parent arrays (e.g. separator paths): it applies the
// attempt's structural burst to entries of vals, each rewritten to a
// different deterministic value in [0, n), and returns the number applied.
func (p *Plan) CorruptInts(attempt, n int, vals []int) int {
	if p == nil || p.Spec.Structural == 0 || len(vals) == 0 || n < 2 {
		return 0
	}
	burst := p.Spec.Structural >> (attempt - 1)
	if burst <= 0 {
		return 0
	}
	rng := p.rng(saltStructural, attempt)
	for i := 0; i < burst; i++ {
		idx := rng.Intn(len(vals))
		w := rng.Intn(n)
		for w == vals[idx] {
			w = rng.Intn(n)
		}
		vals[idx] = w
	}
	return burst
}

// Arm compiles the plan for one attempt and installs the injector on nw.
// It returns the injector so the caller can read fired-fault counts after
// the run. A nil plan (or one with no faults) leaves nw untouched and
// returns nil: the engine then runs with zero hook overhead.
func (p *Plan) Arm(nw *congest.Network, attempt int) *Injector {
	if p == nil {
		return nil
	}
	faults := p.faultsFor(nw.G, attempt)
	if len(faults) == 0 {
		return nil
	}
	inj := compile(nw.G, faults)
	nw.Injector = inj
	return inj
}

// Counts tallies faults that actually fired (armed faults miss when no
// message occupies their slot; misses are not counted).
type Counts struct {
	Drops         int64
	Corruptions   int64
	Stalls        int64
	LinkDownDrops int64
	Crashes       int64
	Structural    int64
}

// Add accumulates d into c.
func (c *Counts) Add(d Counts) {
	c.Drops += d.Drops
	c.Corruptions += d.Corruptions
	c.Stalls += d.Stalls
	c.LinkDownDrops += d.LinkDownDrops
	c.Crashes += d.Crashes
	c.Structural += d.Structural
}

// Sub returns c - d, the per-attempt delta of two cumulative tallies.
func (c Counts) Sub(d Counts) Counts {
	return Counts{
		Drops:         c.Drops - d.Drops,
		Corruptions:   c.Corruptions - d.Corruptions,
		Stalls:        c.Stalls - d.Stalls,
		LinkDownDrops: c.LinkDownDrops - d.LinkDownDrops,
		Crashes:       c.Crashes - d.Crashes,
		Structural:    c.Structural - d.Structural,
	}
}

// Total returns the total number of fired faults.
func (c Counts) Total() int64 {
	return c.Drops + c.Corruptions + c.Stalls + c.LinkDownDrops + c.Crashes + c.Structural
}

func (c Counts) String() string {
	return fmt.Sprintf("drops=%d corruptions=%d stalls=%d linkdown=%d crashes=%d structural=%d",
		c.Drops, c.Corruptions, c.Stalls, c.LinkDownDrops, c.Crashes, c.Structural)
}

const never = math.MaxInt32 // sentinel round for "fault never fires"

// compile lowers a fault list to the flat per-(round, directed edge)
// decision tables the engine hook reads. Point faults on the same slot are
// deduplicated deterministically (sorted, first wins).
func compile(g *graph.Graph, faults []Fault) *Injector {
	n := g.N()
	inj := &Injector{g: g}
	inj.off = make([]int, n+1)
	for v := 0; v < n; v++ {
		inj.off[v+1] = inj.off[v] + g.Degree(v)
	}
	ports := inj.off[n]
	inj.downFrom = make([]int32, ports)
	for i := range inj.downFrom {
		inj.downFrom[i] = never
	}
	inj.crashAt = make([]int32, n)
	for i := range inj.crashAt {
		inj.crashAt[i] = never
	}
	inj.events = make([][]event, ports)
	inj.stalled = make([][]stalledMsg, n)
	inj.pending = make([]int32, n)
	inj.cnt = make([]Counts, n)

	// flatPort returns the flat sender-side port index of the delivery
	// direction described by (edge, intoV): the sender is the opposite
	// endpoint.
	flatPort := func(edge int, intoV bool) int {
		ed := g.EdgeByID(edge)
		src := ed.U
		if !intoV {
			src = ed.V
		}
		for p, id := range g.IncidentEdges(src) {
			if int(id) == edge {
				return inj.off[src] + p
			}
		}
		panic("chaos: edge not incident to its endpoint")
	}

	for _, f := range faults {
		switch f.Kind {
		case Crash:
			if f.Node >= 0 && f.Node < n && int32(f.Round) < inj.crashAt[f.Node] {
				inj.crashAt[f.Node] = int32(f.Round)
			}
		case LinkDown:
			if f.Edge < 0 || f.Edge >= g.M() {
				continue
			}
			for _, intoV := range []bool{false, true} {
				fp := flatPort(f.Edge, intoV)
				if int32(f.Round) < inj.downFrom[fp] {
					inj.downFrom[fp] = int32(f.Round)
				}
			}
		case Drop, Corrupt, Stall:
			if f.Edge < 0 || f.Edge >= g.M() || f.Round < 0 {
				continue
			}
			fp := flatPort(f.Edge, f.IntoV)
			ev := event{round: int32(f.Round), kind: f.Kind, word: int32(f.Word), xor: f.XOR, stall: int32(f.Len)}
			if ev.kind == Stall && ev.stall < 1 {
				ev.stall = 1
			}
			inj.events[fp] = append(inj.events[fp], ev)
		}
	}
	for fp := range inj.events {
		evs := inj.events[fp]
		if len(evs) < 2 {
			continue
		}
		sort.Slice(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.round != b.round {
				return a.round < b.round
			}
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			if a.word != b.word {
				return a.word < b.word
			}
			if a.xor != b.xor {
				return a.xor < b.xor
			}
			return a.stall < b.stall
		})
		// First event per round wins; later collisions are dropped.
		out := evs[:1]
		for _, ev := range evs[1:] {
			if ev.round != out[len(out)-1].round {
				out = append(out, ev)
			}
		}
		inj.events[fp] = out
	}
	return inj
}
