package chaos

// Structural corruption primitives for embeddings: the adversarial input
// generator of the guard layer. Each primitive applies the plan's
// structural burst (Spec.Structural >> (attempt-1), like CorruptParents)
// to a rotation system in wire form — per-vertex neighbour lists, exactly
// what an untrusted submission carries — or to an edge list. Every
// decision is a pure function of (seed, attempt, input shape), drawn
// through a salted rand.Rand: the same plan corrupts the same embedding
// byte-identically, which is what lets corrupted fixtures be regenerated
// and gated in CI.
//
// The primitives map onto the guard's rejection taxonomy:
//
//   - SpliceRotations / SpliceFaces keep every rotation a permutation of
//     its neighbour set, so the local and endpoint checks still pass; the
//     corruption surfaces (when it changes the genus) in the Euler stage.
//     On face-rich inputs a swap merges or splits faces.
//   - RetargetDarts rewrites rotation entries to arbitrary vertices,
//     breaking the permutation property — the rotation or endpoint stage
//     catches it.
//   - InjectEdges adds edges a planar skeleton never had; on a
//     triangulation the very first injection trips the m <= 3n-6 bound,
//     and any injection desynchronizes the old rotations from the new
//     incidence lists.

// rng streams of the embedding primitives: one salt per primitive so
// composing them on the same plan draws independent decisions.
const (
	saltRotSplice  = 0xa0761d6478bd642f
	saltDartTarget = 0xe7037ed1a0b428db
	saltFaceSplice = 0x8ebc6af09c88c6e3
	saltEdgeInject = 0x589965cc75374cc3
)

// SpliceRotations applies the attempt's structural burst as rotation
// splice swaps: each corruption exchanges two entries of one vertex's
// rotation, chosen among vertices of degree >= 3 (on smaller degrees a
// swap is the same cyclic order). Rotations stay permutations of the
// neighbour sets; only the embedding they encode changes. rot is mutated
// in place; the number of swaps applied is returned. A nil plan applies
// nothing.
func (p *Plan) SpliceRotations(attempt int, rot [][]int) int {
	burst := p.structuralBurst(attempt)
	if burst == 0 || len(rot) == 0 {
		return 0
	}
	rng := p.rng(saltRotSplice, attempt)
	n := len(rot)
	applied := 0
	for i := 0; i < burst; i++ {
		v := rng.Intn(n)
		for try := 0; len(rot[v]) < 3 && try < 4*n; try++ {
			v = rng.Intn(n)
		}
		d := len(rot[v])
		if d < 3 {
			continue // no vertex can host a meaningful swap
		}
		a := rng.Intn(d)
		b := rng.Intn(d)
		for b == a {
			b = rng.Intn(d)
		}
		rot[v][a], rot[v][b] = rot[v][b], rot[v][a]
		applied++
	}
	return applied
}

// RetargetDarts applies the attempt's structural burst as dart
// retargetings: each corruption rewrites one rotation entry of one vertex
// to a different vertex in [0, n) — typically a non-neighbour or a
// duplicate, so the rotation stops being a permutation of the neighbour
// set. rot is mutated in place; the number applied is returned.
func (p *Plan) RetargetDarts(attempt, n int, rot [][]int) int {
	burst := p.structuralBurst(attempt)
	if burst == 0 || len(rot) == 0 || n < 2 {
		return 0
	}
	rng := p.rng(saltDartTarget, attempt)
	applied := 0
	for i := 0; i < burst; i++ {
		v := rng.Intn(len(rot))
		for try := 0; len(rot[v]) == 0 && try < 4*len(rot); try++ {
			v = rng.Intn(len(rot))
		}
		if len(rot[v]) == 0 {
			continue
		}
		idx := rng.Intn(len(rot[v]))
		w := rng.Intn(n)
		for w == rot[v][idx] || w == v {
			w = rng.Intn(n)
		}
		rot[v][idx] = w
		applied++
	}
	return applied
}

// SpliceFaces applies the attempt's structural burst as face merge/split
// operations: each corruption reverses a contiguous segment of one
// vertex's rotation (segment length in [2, deg-1], so the cyclic order
// genuinely changes). Like SpliceRotations this preserves the permutation
// property; a reversal around a vertex rewires the face traces through
// it, merging or splitting faces. rot is mutated in place; the number
// applied is returned.
func (p *Plan) SpliceFaces(attempt int, rot [][]int) int {
	burst := p.structuralBurst(attempt)
	if burst == 0 || len(rot) == 0 {
		return 0
	}
	rng := p.rng(saltFaceSplice, attempt)
	n := len(rot)
	applied := 0
	for i := 0; i < burst; i++ {
		v := rng.Intn(n)
		for try := 0; len(rot[v]) < 3 && try < 4*n; try++ {
			v = rng.Intn(n)
		}
		d := len(rot[v])
		if d < 3 {
			continue
		}
		segLen := 2 + rng.Intn(d-2)
		start := rng.Intn(d)
		for l, r := 0, segLen-1; l < r; l, r = l+1, r-1 {
			li, ri := (start+l)%d, (start+r)%d
			rot[v][li], rot[v][ri] = rot[v][ri], rot[v][li]
		}
		applied++
	}
	return applied
}

// InjectEdges applies the attempt's structural burst as non-planar edge
// injections into a planar skeleton: it returns edges extended with burst
// new simple edges between previously non-adjacent vertex pairs (the
// input slice is not mutated). On a triangulation the first injection
// already violates m <= 3n-6; on sparser skeletons repeated injections
// densify a neighbourhood. The number of edges actually added is returned
// alongside (pair search gives up deterministically on saturated graphs).
func (p *Plan) InjectEdges(attempt, n int, edges [][2]int) ([][2]int, int) {
	burst := p.structuralBurst(attempt)
	out := append([][2]int(nil), edges...)
	if burst == 0 || n < 2 {
		return out, 0
	}
	rng := p.rng(saltEdgeInject, attempt)
	have := make(map[[2]int]bool, len(out)+burst)
	for _, e := range out {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		have[[2]int{u, v}] = true
	}
	applied := 0
	for i := 0; i < burst; i++ {
		added := false
		for try := 0; try < 16*n; try++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if have[[2]int{u, v}] {
				continue
			}
			have[[2]int{u, v}] = true
			out = append(out, [2]int{u, v})
			applied++
			added = true
			break
		}
		if !added {
			break // graph is (nearly) complete: nothing left to inject
		}
	}
	return out, applied
}

// structuralBurst returns the structural fault budget of one attempt, the
// shared sizing rule of CorruptParents and the embedding primitives.
func (p *Plan) structuralBurst(attempt int) int {
	if p == nil || p.Spec.Structural == 0 {
		return 0
	}
	burst := p.Spec.Structural >> (attempt - 1)
	if burst < 0 {
		return 0
	}
	return burst
}
