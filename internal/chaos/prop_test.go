package chaos

import (
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

// The soundness property of the fault model: a fault may slow a run down,
// make it fail explicitly, or be rejected by the certifier — but it can
// never produce a silently wrong certified result. These tests enumerate
// EVERY single-message fault position of real runs and check the property
// exhaustively, then sweep randomized multi-fault plans across seeds.

// delivery is one observed message delivery position.
type delivery struct {
	round int
	edge  int
	intoV bool
}

// observer records every delivery position without perturbing the run.
// Sequential engine only: it appends to one shared slice.
type observer struct {
	g          *graph.Graph
	deliveries []delivery
}

func (o *observer) Crashed(round, v int) bool { return false }

func (o *observer) Deliver(round, src, srcPort, dst, dstPort int, msg congest.Message) (congest.Message, congest.DeliveryFate) {
	e := int(o.g.IncidentEdges(src)[srcPort])
	o.deliveries = append(o.deliveries, delivery{round: round, edge: e, intoV: o.g.EdgeByID(e).V == dst})
	return msg, congest.FateDeliver
}

func (o *observer) Released(round, dst int, inbox []congest.Incoming) []congest.Incoming {
	return inbox
}

func (o *observer) Pending() bool { return false }

// observeBFS enumerates the delivery positions of a fault-free BFS run.
func observeBFS(t *testing.T, g *graph.Graph, root int) []delivery {
	t.Helper()
	nw := congest.New(g)
	nw.Parallel = false
	obs := &observer{g: g}
	nw.Injector = obs
	if _, err := nw.Run(congest.NewBFSNodes(nw, root), 10*g.N()+20); err != nil {
		t.Fatal(err)
	}
	return obs.deliveries
}

// TestBFSEverySingleFaultIsSoundOnGrids is the exhaustive property test:
// for every delivery position of a BFS run on small grids, and for both a
// drop and a payload corruption at that position, the outcome is either a
// cert-accepted result that the centralized oracle confirms correct, or an
// explicit certifier rejection. A cert-accepted wrong tree fails the test.
func TestBFSEverySingleFaultIsSoundOnGrids(t *testing.T) {
	for _, n := range []int{9, 12} {
		in, err := gen.ByName("grid", n, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := in.G
		positions := observeBFS(t, g, 0)
		if len(positions) == 0 {
			t.Fatal("observed no deliveries")
		}
		var accepted, rejected int
		for _, mk := range []func(delivery) Fault{
			func(d delivery) Fault {
				return Fault{Kind: Drop, Round: d.round, Edge: d.edge, IntoV: d.intoV}
			},
			func(d delivery) Fault {
				return Fault{Kind: Corrupt, Round: d.round, Edge: d.edge, IntoV: d.intoV, Word: 0, XOR: 1}
			},
		} {
			for _, pos := range positions {
				f := mk(pos)
				plan := &Plan{Faults: []Fault{f}}
				out, inj, _, err := bfsRun(t, g, plan)
				if err != nil {
					t.Fatalf("n=%d fault %+v: BFS errored: %v", n, f, err)
				}
				if inj.Counts().Total() == 0 {
					t.Fatalf("n=%d fault %+v missed its observed delivery", n, f)
				}
				v, err := cert.CertifyBFSTree(g, 0, out.Parent, out.Dist, cert.Options{Sequential: true})
				if err != nil {
					t.Fatal(err)
				}
				oracle := cert.CheckBFSTree(g, 0, out.Parent, out.Dist)
				if v.OK {
					accepted++
					if oracle != nil {
						t.Fatalf("n=%d fault %+v: SILENT WRONG RESULT accepted by certifier: %v", n, f, oracle)
					}
				} else {
					rejected++
					if oracle == nil && f.Kind == Drop {
						// One-sided error is allowed (a correct result may be
						// rejected), but log it: it costs a retry.
						t.Logf("n=%d fault %+v: correct result rejected (one-sided error)", n, f)
					}
				}
			}
		}
		if rejected == 0 {
			t.Fatalf("n=%d: no fault position was ever rejected; the property test is vacuous", n)
		}
		t.Logf("n=%d: %d positions x2 faults: %d accepted-correct, %d explicitly rejected",
			n, len(positions), accepted, rejected)
	}
}

// TestPAEverySingleDropIsSound drops every delivery position of a
// part-wise aggregation run and checks each faulted run classifies as
// oracle-correct, oracle-rejected, or an explicit run error — never a
// silently wrong aggregate escaping the certifier.
func TestPAEverySingleDropIsSound(t *testing.T) {
	in, err := gen.ByName("grid", 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	partOf := make([]int, g.N())
	value := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		partOf[v] = v % 3
		value[v] = v + 1
	}
	opt := cert.Options{Sequential: true}

	// Sanity: the fault-free stage run passes its own oracle.
	obsStage := PartwiseSum(g, 0, partOf, value, nil, opt)
	res, _, err := obsStage.Run(1, obsStage.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := obsStage.Certify(res); !c.OK {
		t.Fatal("fault-free PA run rejected by its own oracle")
	}
	positions := observePA(t, g, 0, partOf, value)
	if len(positions) == 0 {
		t.Fatal("observed no PA deliveries")
	}
	var correct, rejectedOrFailed int
	for _, pos := range positions {
		plan := &Plan{Faults: []Fault{{Kind: Drop, Round: pos.round, Edge: pos.edge, IntoV: pos.intoV}}}
		st := PartwiseSum(g, 0, partOf, value, plan, opt)
		res, _, err := st.Run(1, st.DefaultBudget)
		if err != nil {
			rejectedOrFailed++ // explicit failure (round limit): sound
			continue
		}
		c, cerr := st.Certify(res)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if c.OK {
			correct++ // oracle confirms every aggregate: sound
		} else {
			rejectedOrFailed++
		}
	}
	if correct+rejectedOrFailed != len(positions) {
		t.Fatalf("classified %d of %d positions", correct+rejectedOrFailed, len(positions))
	}
	if rejectedOrFailed == 0 {
		t.Fatal("every drop position aggregated correctly; the test is vacuous")
	}
	t.Logf("PA: %d drop positions: %d oracle-correct, %d explicit rejection/failure",
		len(positions), correct, rejectedOrFailed)
}

// observePA enumerates the delivery positions of a fault-free PA run by
// rebuilding the exact run the stage executes (same spanning tree, same
// node programs) with an observing injector.
func observePA(t *testing.T, g *graph.Graph, root int, partOf, value []int) []delivery {
	t.Helper()
	st := PartwiseSum(g, root, partOf, value, nil, cert.Options{Sequential: true})
	nw := congest.New(g)
	nw.Parallel = false
	obs := &observer{g: g}
	nw.Injector = obs
	tr, err := spanning.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	nodes := congest.NewPANodes(nw, tr.Parent, root, partOf, value, congest.OpSum)
	if _, err := nw.Run(nodes, st.DefaultBudget); err != nil {
		t.Fatal(err)
	}
	return obs.deliveries
}

// TestSeededPlansAlwaysClassify is the randomized soundness sweep: 24
// seeded multi-fault plans on grid and cylinderish instances, each run
// under the full supervised runtime with a fault-free fallback. Every run
// must end in exactly one of the four outcomes, certified outcomes must be
// oracle-correct, and the attempt/fault tallies must be visible in the
// exported metrics.
func TestSeededPlansAlwaysClassify(t *testing.T) {
	outcomes := map[Outcome]int{}
	families := []string{"grid", "cylinderish"}
	for seed := int64(1); seed <= 24; seed++ {
		in, err := gen.ByName(families[seed%2], 36, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := in.G
		rec := trace.NewRecorder()
		plan := NewPlan(seed, Spec{
			Drops:       int(3 * (seed % 4)),
			Corruptions: int(2 * ((seed + 1) % 3)),
			Stalls:      int(2 * (seed % 3)),
			Crashes:     int(seed % 2),
			LinkDowns:   int((seed + 1) % 2),
			Horizon:     60, // dense: most plans hit live messages
			Protect:     []int{0},
		})
		opt := cert.Options{Sequential: true, Tracer: rec}
		primary := AwerbuchDFS(g, 0, plan, opt)
		fallback := AwerbuchDFS(g, 0, nil, opt) // fault-free baseline
		parent, rep, err := RunWithRecovery(primary, &fallback, Policy{MaxAttempts: 3, Tracer: rec})
		if err != nil {
			t.Fatalf("seed %d: infrastructure error: %v", seed, err)
		}
		outcomes[rep.Outcome]++
		switch rep.Outcome {
		case OutcomeCertified, OutcomeCertifiedRetry, OutcomeDegraded:
			tr := mustTree(t, 0, parent)
			if cerr := cert.CheckSpanningTree(g, tr); cerr != nil {
				t.Fatalf("seed %d: outcome %v returned a wrong tree: %v", seed, rep.Outcome, cerr)
			}
		case OutcomeFailed:
			// Explicit failure: sound, but with a fault-free fallback it
			// should not happen.
			t.Errorf("seed %d: fault-free fallback failed", seed)
		}
		if got := rec.Counter("chaos.attempts"); got != int64(len(rep.Attempts)) {
			t.Fatalf("seed %d: chaos.attempts metric = %d, report has %d", seed, got, len(rep.Attempts))
		}
		if rec.Counter("chaos.outcome."+rep.Outcome.String()) != 1 {
			t.Fatalf("seed %d: outcome counter missing", seed)
		}
		firedInMetrics := rec.Counter("chaos.faults.drops") + rec.Counter("chaos.faults.corruptions") +
			rec.Counter("chaos.faults.stalls") + rec.Counter("chaos.faults.linkdown_drops") +
			rec.Counter("chaos.faults.crashes") + rec.Counter("chaos.faults.structural")
		if firedInMetrics != rep.Faults.Total() {
			t.Fatalf("seed %d: metrics count %d faults, report %d", seed, firedInMetrics, rep.Faults.Total())
		}
	}
	total := 0
	for _, c := range outcomes {
		total += c
	}
	if total != 24 {
		t.Fatalf("classified %d of 24 runs", total)
	}
	if outcomes[OutcomeCertified]+outcomes[OutcomeCertifiedRetry] == 0 {
		t.Fatal("no seeded run ever certified; sweep too hostile to be informative")
	}
	t.Logf("outcomes over 24 seeds: certified=%d retry=%d degraded=%d failed=%d",
		outcomes[OutcomeCertified], outcomes[OutcomeCertifiedRetry],
		outcomes[OutcomeDegraded], outcomes[OutcomeFailed])
}
