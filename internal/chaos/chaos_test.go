package chaos

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

func grid(t testing.TB, n int) *graph.Graph {
	t.Helper()
	in, err := gen.ByName("grid", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in.G
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("drops=2, corruptions=1,linkdowns=3,crashes=1,stalls=4,structural=5,horizon=77,stalllen=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Drops: 2, Corruptions: 1, LinkDowns: 3, Crashes: 1, Stalls: 4, Structural: 5, Horizon: 77, StallLen: 2}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if s, err := ParseSpec(""); err != nil || !s.zero() {
		t.Fatalf("empty spec = %+v, %v", s, err)
	}
	for _, bad := range []string{"drops", "drops=-1", "drops=x", "bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// A nil plan must leave the network untouched: Arm returns nil and the run
// is byte-identical to an uninjected one.
func TestNilPlanUnchanged(t *testing.T) {
	g := grid(t, 36)
	run := func(plan *Plan) ([]int, congest.Stats) {
		nw := congest.New(g)
		if inj := plan.Arm(nw, 1); inj != nil {
			t.Fatal("nil plan armed an injector")
		}
		if nw.Injector != nil {
			t.Fatal("nil plan installed a network injector")
		}
		nodes := congest.NewBFSNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()); err != nil {
			t.Fatal(err)
		}
		dist := make([]int, g.N())
		for v := range dist {
			dist[v] = nodes[v].(*congest.BFSNode).Dist
		}
		return dist, nw.Stats()
	}
	d1, s1 := run(nil)
	d2, s2 := run(&Plan{Seed: 7}) // no spec, no explicit faults
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("empty plan perturbed the run")
	}
}

// The trace-identity contract under injection: the same seed and plan must
// produce byte-identical traces, stats, fault counts and outputs under the
// sequential and sharded engines.
func TestChaosTraceIdenticalAcrossEngines(t *testing.T) {
	g := grid(t, 64)
	plan := NewPlan(42, Spec{
		Drops: 4, Corruptions: 3, Stalls: 3, LinkDowns: 1, Crashes: 1,
		Protect: []int{0},
	})
	type result struct {
		parent []int
		rounds int
		err    string
		stats  congest.Stats
		counts Counts
		jsonl  []byte
		chrome []byte
	}
	run := func(parallel bool, workers int) result {
		rec := trace.NewRecorder()
		nw := congest.New(g)
		nw.Parallel = parallel
		nw.Workers = workers
		nw.Tracer = rec
		inj := plan.Arm(nw, 1)
		if inj == nil {
			t.Fatal("plan with faults armed no injector")
		}
		nodes := congest.NewAwerbuchNodes(nw, 0)
		rounds, err := nw.Run(nodes, 10*g.N()+100)
		res := result{rounds: rounds, stats: nw.Stats(), counts: inj.Counts()}
		if err != nil {
			res.err = err.Error()
		}
		res.parent = make([]int, g.N())
		for v := range res.parent {
			res.parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
		}
		var j, c bytes.Buffer
		if err := rec.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		res.jsonl = j.Bytes()
		res.chrome = c.Bytes()
		return res
	}
	seq := run(false, 0)
	if seq.counts.Total() == 0 {
		t.Fatal("no faults fired; the scenario tests nothing")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		par := run(true, workers)
		if !reflect.DeepEqual(seq.parent, par.parent) || seq.rounds != par.rounds || seq.err != par.err {
			t.Fatalf("workers=%d: output diverged (rounds %d vs %d, err %q vs %q)",
				workers, seq.rounds, par.rounds, seq.err, par.err)
		}
		if !reflect.DeepEqual(seq.stats, par.stats) {
			t.Fatalf("workers=%d: stats diverged", workers)
		}
		if seq.counts != par.counts {
			t.Fatalf("workers=%d: fault counts diverged: %v vs %v", workers, seq.counts, par.counts)
		}
		if !bytes.Equal(seq.jsonl, par.jsonl) {
			t.Fatalf("workers=%d: JSONL trace diverged", workers)
		}
		if !bytes.Equal(seq.chrome, par.chrome) {
			t.Fatalf("workers=%d: Chrome trace diverged", workers)
		}
	}
}

// Explicit fault semantics on small graphs.

func bfsRun(t *testing.T, g *graph.Graph, plan *Plan) (BFSOutput, *Injector, int, error) {
	t.Helper()
	nw := congest.New(g)
	nw.Parallel = false
	inj := plan.Arm(nw, 1)
	nodes := congest.NewBFSNodes(nw, 0)
	rounds, err := nw.Run(nodes, 10*g.N()+20)
	out := BFSOutput{Parent: make([]int, g.N()), Dist: make([]int, g.N())}
	for v := range out.Parent {
		bn := nodes[v].(*congest.BFSNode)
		out.Parent[v], out.Dist[v] = bn.ParentID, bn.Dist
	}
	return out, inj, rounds, err
}

func TestExplicitCrashPartitionsRun(t *testing.T) {
	in, err := gen.ByName("path", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	plan := &Plan{Faults: []Fault{{Kind: Crash, Node: 2, Round: 0}}}
	out, inj, _, err := bfsRun(t, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Counts(); got.Crashes != 1 {
		t.Fatalf("crash count = %d, want 1", got.Crashes)
	}
	// Vertices behind the crash never learn a distance; the certifier must
	// reject the claim.
	if out.Dist[4] != -1 {
		t.Fatalf("dist[4] = %d, want unreached (-1)", out.Dist[4])
	}
	v, err := cert.CertifyBFSTree(g, 0, out.Parent, out.Dist, cert.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("certifier accepted a partitioned BFS claim")
	}
}

func TestExplicitStallDelaysButStaysCorrect(t *testing.T) {
	in, err := gen.ByName("path", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	// Stall the only frontier message: the run must wait, then finish
	// correctly — stalled messages block termination via Pending.
	e := int(g.IncidentEdges(0)[0])
	plan := &Plan{Faults: []Fault{{Kind: Stall, Edge: e, IntoV: g.EdgeByID(e).V != 0, Round: 0, Len: 4}}}
	out, inj, rounds, err := bfsRun(t, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Counts(); got.Stalls != 1 {
		t.Fatalf("stall count = %d, want 1", got.Stalls)
	}
	base, _, baseRounds, err := bfsRun(t, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= baseRounds {
		t.Fatalf("stalled run took %d rounds, fault-free %d; want slower", rounds, baseRounds)
	}
	if !reflect.DeepEqual(out, base) {
		t.Fatal("stalled run changed the BFS result")
	}
	if err := cert.CheckBFSTree(g, 0, out.Parent, out.Dist); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitLinkDownNeverSilentlyWrong(t *testing.T) {
	in, err := gen.ByName("cycle", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	// Silence the cycle edge {0,5} from round 0: BFS routes the long way,
	// so node 5 claims dist 5 while its neighbour 0 claims 0 — the gap
	// judge must reject.
	var e = -1
	for _, id := range g.IncidentEdges(0) {
		if g.EdgeByID(int(id)).Other(0) == 5 {
			e = int(id)
		}
	}
	if e < 0 {
		t.Fatal("cycle edge {0,5} not found")
	}
	plan := &Plan{Faults: []Fault{{Kind: LinkDown, Edge: e, Round: 0}}}
	out, inj, _, err := bfsRun(t, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Counts().LinkDownDrops == 0 {
		t.Fatal("link-down dropped nothing")
	}
	v, err := cert.CertifyBFSTree(g, 0, out.Parent, out.Dist, cert.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("certifier accepted distances computed without the downed link")
	}
}

func TestCorruptParentsDecays(t *testing.T) {
	plan := NewPlan(5, Spec{Structural: 4})
	base := make([]int, 20)
	for v := range base {
		base[v] = 0
	}
	base[0] = -1
	prev := -1
	for attempt := 1; attempt <= 4; attempt++ {
		p := append([]int(nil), base...)
		applied := plan.CorruptParents(attempt, 0, p)
		burst := 4 >> (attempt - 1)
		if applied != burst {
			t.Fatalf("attempt %d applied %d, want %d", attempt, applied, burst)
		}
		if applied == 0 && !reflect.DeepEqual(p, base) {
			t.Fatal("zero burst still mutated the array")
		}
		if p[0] != -1 {
			t.Fatal("root parent corrupted despite protection")
		}
		_ = prev
		prev = applied
	}
	// Determinism: same (seed, attempt) twice gives the same corruption.
	a := append([]int(nil), base...)
	b := append([]int(nil), base...)
	plan.CorruptParents(1, 0, a)
	plan.CorruptParents(1, 0, b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CorruptParents is not deterministic")
	}
}

// Supervisor outcome classification on synthetic stages.

func syntheticStage(name string, acceptAt int, runErrAt map[int]error) Stage[int] {
	return Stage[int]{
		Name:          name,
		DefaultBudget: 100,
		Run: func(attempt, budget int) (int, int, error) {
			if err := runErrAt[attempt]; err != nil {
				return 0, budget, err
			}
			return attempt, 10 * attempt, nil
		},
		Certify: func(res int) (Certification, error) {
			if acceptAt > 0 && res >= acceptAt {
				return Certification{OK: true}, nil
			}
			return Certification{Rejectors: 2, Detail: "synthetic reject"}, nil
		},
	}
}

func TestRecoveryOutcomeCertified(t *testing.T) {
	res, rep, err := RunWithRecovery(syntheticStage("p", 1, nil), nil, Policy{})
	if err != nil || res != 1 {
		t.Fatalf("res = %d, err = %v", res, err)
	}
	if rep.Outcome != OutcomeCertified || len(rep.Attempts) != 1 || !rep.Attempts[0].Accepted {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRecoveryOutcomeCertifiedRetryWithBackoff(t *testing.T) {
	rec := trace.NewRecorder()
	res, rep, err := RunWithRecovery(syntheticStage("p", 3, nil), nil,
		Policy{MaxAttempts: 3, BaseBudget: 100, BackoffFactor: 2, Tracer: rec})
	if err != nil || res != 3 {
		t.Fatalf("res = %d, err = %v", res, err)
	}
	if rep.Outcome != OutcomeCertifiedRetry {
		t.Fatalf("outcome = %v, want certified-after-retry", rep.Outcome)
	}
	budgets := []int{}
	for _, a := range rep.Attempts {
		budgets = append(budgets, a.Budget)
	}
	if !reflect.DeepEqual(budgets, []int{100, 200, 400}) {
		t.Fatalf("budgets = %v, want exponential backoff 100,200,400", budgets)
	}
	if rep.Attempts[0].Err != "synthetic reject" || rep.Attempts[0].Rejectors != 2 {
		t.Fatalf("rejected attempt = %+v", rep.Attempts[0])
	}
	if rec.Counter("chaos.attempts") != 3 || rec.Counter("chaos.rejections") != 2 {
		t.Fatalf("counters: attempts=%d rejections=%d",
			rec.Counter("chaos.attempts"), rec.Counter("chaos.rejections"))
	}
	if rec.Counter("chaos.outcome.certified-after-retry") != 1 {
		t.Fatal("outcome counter missing")
	}
}

func TestRecoveryOutcomeDegraded(t *testing.T) {
	rec := trace.NewRecorder()
	fb := syntheticStage("fb", 1, nil)
	res, rep, err := RunWithRecovery(syntheticStage("p", 0, nil), &fb,
		Policy{MaxAttempts: 2, Tracer: rec})
	if err != nil || res != 1 {
		t.Fatalf("res = %d, err = %v", res, err)
	}
	if rep.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", rep.Outcome)
	}
	if len(rep.Attempts) != 3 || rep.Attempts[2].Stage != "fb" {
		t.Fatalf("attempts = %+v", rep.Attempts)
	}
	if rec.Counter("chaos.fallbacks") != 1 || rec.Counter("chaos.outcome.degraded") != 1 {
		t.Fatal("fallback counters missing")
	}
}

func TestRecoveryOutcomeFailed(t *testing.T) {
	boom := errors.New("budget exhausted")
	fb := syntheticStage("fb", 0, nil)
	_, rep, err := RunWithRecovery(
		syntheticStage("p", 0, map[int]error{1: boom, 2: boom, 3: boom}), &fb, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v, want failed", rep.Outcome)
	}
	if len(rep.Attempts) != 6 {
		t.Fatalf("attempts = %d, want 3 primary + 3 fallback", len(rep.Attempts))
	}
	if rep.Attempts[0].Err != "budget exhausted" {
		t.Fatalf("attempt err = %q", rep.Attempts[0].Err)
	}
}

func TestRecoveryInfrastructureError(t *testing.T) {
	infra := errors.New("infra down")
	st := Stage[int]{
		Name:          "p",
		DefaultBudget: 1,
		Run:           func(attempt, budget int) (int, int, error) { return 0, 0, nil },
		Certify:       func(int) (Certification, error) { return Certification{}, infra },
	}
	if _, _, err := RunWithRecovery(st, nil, Policy{}); !errors.Is(err, infra) {
		t.Fatalf("err = %v, want the infrastructure error", err)
	}
}

// End-to-end: Awerbuch under injected token loss recovers via retry (the
// re-rolled transient faults miss) or is explicitly rejected — never a
// silently wrong certified tree.
func TestAwerbuchStageRecovers(t *testing.T) {
	g := grid(t, 25)
	plan := NewPlan(9, Spec{Drops: 2, Protect: []int{0}})
	st := AwerbuchDFS(g, 0, plan, cert.Options{Sequential: true})
	parent, rep, err := RunWithRecovery(st, nil, Policy{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	switch rep.Outcome {
	case OutcomeCertified, OutcomeCertifiedRetry:
		if verr := cert.CheckSpanningTree(g, mustTree(t, 0, parent)); verr != nil {
			t.Fatalf("certified tree is wrong: %v", verr)
		}
	case OutcomeFailed:
		// Explicit failure is a sound outcome.
	default:
		t.Fatalf("unexpected outcome %v", rep.Outcome)
	}
	if rep.Faults.Total() == 0 && len(rep.Attempts) == 1 {
		t.Log("no fault hit a live message; run certified clean")
	}
}

func mustTree(t *testing.T, root int, parent []int) *spanning.Tree {
	t.Helper()
	tr, err := spanning.NewFromParents(root, parent)
	if err != nil {
		t.Fatalf("certified parent array is not a tree: %v", err)
	}
	return tr
}

func TestBroadcastReport(t *testing.T) {
	g := grid(t, 16)
	rep := &Report{
		Outcome:  OutcomeCertifiedRetry,
		Attempts: make([]Attempt, 2),
		Faults:   Counts{Drops: 3, Crashes: 1, Structural: 2},
	}
	for _, seqEngine := range []bool{true, false} {
		got, err := BroadcastReport(g, 0, rep, cert.Options{Sequential: seqEngine})
		if err != nil {
			t.Fatal(err)
		}
		want := *rep.WirePayload()
		for v, p := range got {
			if p != want {
				t.Fatalf("vertex %d received %+v, want %+v", v, p, want)
			}
		}
	}
}

// Payload round trip: the wire form is lossless.
func TestReportPayloadRoundTrip(t *testing.T) {
	p := &ReportPayload{Outcome: 2, Attempts: 5, Drops: 1, Corruptions: 2, Stalls: 3, LinkDownDrops: 4, Crashes: 5, Structural: 6}
	msg := congest.Pack(msgChaosReport, p)
	if msg.Words() != reportWords+1 {
		t.Fatalf("wire size = %d words, want %d", msg.Words(), reportWords+1)
	}
	var q ReportPayload
	congest.Unpack(msg, &q)
	if q != *p {
		t.Fatalf("round trip: %+v != %+v", q, *p)
	}
}

// Cancellation: the supervisor must stop retrying mid-flight the moment the
// context dies, report OutcomeFailed, and surface ctx.Err().
func TestRecoveryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	runs := 0
	st := Stage[int]{
		Name:          "p",
		DefaultBudget: 1,
		Run: func(attempt, budget int) (int, int, error) {
			runs++
			if attempt == 2 {
				cancel() // cancelled while "in flight"
			}
			return attempt, 1, nil
		},
		Certify: func(int) (Certification, error) {
			return Certification{Detail: "synthetic reject"}, nil
		},
	}
	fb := syntheticStage("fb", 1, nil)
	rec := trace.NewRecorder()
	_, rep, err := RunWithRecoveryContext(ctx, st, &fb, Policy{MaxAttempts: 5, Tracer: rec})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v, want failed", rep.Outcome)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (no retries after cancellation, no fallback)", runs)
	}
	if rec.Counter("chaos.cancellations") != 1 {
		t.Fatal("cancellation counter missing")
	}
}

// A context cancelled before the first attempt never runs the stage at all.
func TestRecoveryContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := 0
	st := Stage[int]{
		Name:          "p",
		DefaultBudget: 1,
		Run: func(attempt, budget int) (int, int, error) {
			runs++
			return attempt, 1, nil
		},
		Certify: func(int) (Certification, error) { return Certification{OK: true}, nil },
	}
	if _, _, err := RunWithRecoveryContext(ctx, st, nil, Policy{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs != 0 {
		t.Fatalf("runs = %d, want 0", runs)
	}
}
