package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"planardfs/internal/gen"
)

// wireRotations generates the rotation wire form of a family instance.
func wireRotations(t *testing.T, fam string, n int) (*gen.Wire, int) {
	t.Helper()
	in, err := gen.ByName(fam, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen.WireOf(in), in.G.N()
}

// TestEmbeddingPrimitivesDeterministic pins the seeded-determinism
// contract of every rotation-corruption primitive: the same (seed,
// attempt) corrupts the same embedding byte-identically, a different seed
// corrupts it differently.
func TestEmbeddingPrimitivesDeterministic(t *testing.T) {
	prims := []struct {
		name  string
		apply func(p *Plan, n int, rot [][]int) int
	}{
		{"splice-rotations", func(p *Plan, n int, rot [][]int) int { return p.SpliceRotations(1, rot) }},
		{"retarget-darts", func(p *Plan, n int, rot [][]int) int { return p.RetargetDarts(1, n, rot) }},
		{"splice-faces", func(p *Plan, n int, rot [][]int) int { return p.SpliceFaces(1, rot) }},
	}
	for _, pr := range prims {
		var first []byte
		for rep := 0; rep < 2; rep++ {
			w, n := wireRotations(t, "grid", 16)
			p := NewPlan(97, Spec{Structural: 4})
			if pr.apply(p, n, w.Rotations) == 0 {
				t.Fatalf("%s: applied nothing", pr.name)
			}
			enc, err := json.Marshal(w.Rotations)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				first = enc
			} else if string(first) != string(enc) {
				t.Fatalf("%s: same seed produced different corrupted embeddings", pr.name)
			}
		}
		// A different seed must draw a different corruption (the streams
		// are seeded, not constant).
		w, n := wireRotations(t, "grid", 16)
		p := NewPlan(98, Spec{Structural: 4})
		pr.apply(p, n, w.Rotations)
		enc, err := json.Marshal(w.Rotations)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) == string(first) {
			t.Fatalf("%s: different seeds produced identical corruption", pr.name)
		}
	}
}

// TestInjectEdgesDeterministic pins the edge-injection primitive: same
// seed, same injected edges; the input slice is never mutated; injected
// edges are new and simple.
func TestInjectEdgesDeterministic(t *testing.T) {
	w, n := wireRotations(t, "stacked", 16)
	base := append([][2]int(nil), w.Edges...)
	p := NewPlan(55, Spec{Structural: 3})
	out1, add1 := p.InjectEdges(1, n, w.Edges)
	out2, add2 := p.InjectEdges(1, n, w.Edges)
	if add1 == 0 || add1 != add2 || !reflect.DeepEqual(out1, out2) {
		t.Fatalf("injection not deterministic: %d vs %d edges added", add1, add2)
	}
	if !reflect.DeepEqual(base, w.Edges) {
		t.Fatal("InjectEdges mutated its input slice")
	}
	have := make(map[[2]int]bool, len(base))
	for _, e := range base {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		have[[2]int{u, v}] = true
	}
	for _, e := range out1[len(base):] {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			t.Fatalf("injected edge {%d,%d} malformed", e[0], e[1])
		}
		if u > v {
			u, v = v, u
		}
		if have[[2]int{u, v}] {
			t.Fatalf("injected edge {%d,%d} duplicates", e[0], e[1])
		}
		have[[2]int{u, v}] = true
	}
}

// TestEmbeddingBurstDecay pins the geometric retry decay shared with
// CorruptParents: later attempts corrupt less, and a high attempt number
// corrupts nothing.
func TestEmbeddingBurstDecay(t *testing.T) {
	w, _ := wireRotations(t, "grid", 16)
	p := NewPlan(7, Spec{Structural: 4})
	if got := p.SpliceRotations(2, w.Rotations); got != 2 {
		t.Fatalf("attempt 2 applied %d swaps, want 2", got)
	}
	if got := p.SpliceRotations(4, w.Rotations); got != 0 {
		t.Fatalf("attempt 4 applied %d swaps, want 0", got)
	}
	var nilPlan *Plan
	if got := nilPlan.SpliceRotations(1, w.Rotations); got != 0 {
		t.Fatalf("nil plan applied %d", got)
	}
}

// TestRunWithRecoveryGuarded pins the guard stage of the supervised
// runtime: a rejecting guard ends the run as rejected-input without any
// producer attempt; an admitting guard falls through to certification.
func TestRunWithRecoveryGuarded(t *testing.T) {
	rejection := errors.New("bad input")
	stage := Stage[int]{
		Name:          "produce",
		DefaultBudget: 4,
		Run:           func(attempt, budget int) (int, int, error) { return 42, 1, nil },
		Certify:       func(int) (Certification, error) { return Certification{OK: true}, nil },
	}
	res, rep, err := RunWithRecoveryGuarded(context.Background(), func(context.Context) (error, error) {
		return rejection, nil
	}, stage, nil, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeRejectedInput || rep.Outcome.String() != "rejected-input" {
		t.Fatalf("outcome %v, want rejected-input", rep.Outcome)
	}
	if len(rep.Attempts) != 0 || res != 0 {
		t.Fatalf("rejected run executed producers: %d attempts, result %d", len(rep.Attempts), res)
	}
	if !errors.Is(rep.RejectionErr, rejection) || rep.Rejection == "" {
		t.Fatalf("rejection not recorded: %q %v", rep.Rejection, rep.RejectionErr)
	}

	res, rep, err = RunWithRecoveryGuarded(context.Background(), func(context.Context) (error, error) {
		return nil, nil
	}, stage, nil, Policy{})
	if err != nil || res != 42 || rep.Outcome != OutcomeCertified {
		t.Fatalf("admitted run: res=%d outcome=%v err=%v", res, rep.Outcome, err)
	}

	infra := errors.New("boom")
	_, rep, err = RunWithRecoveryGuarded(context.Background(), func(context.Context) (error, error) {
		return nil, infra
	}, stage, nil, Policy{})
	if !errors.Is(err, infra) || rep.Outcome != OutcomeFailed {
		t.Fatalf("guard infra failure: outcome=%v err=%v", rep.Outcome, err)
	}
}
