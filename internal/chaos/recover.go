package chaos

import (
	"context"

	"planardfs/internal/cert"
	"planardfs/internal/trace"
)

// The supervised recovery runtime: run a producer, certify its output with
// the internal/cert proof-labeling verifiers, retry rejected attempts
// under an exponential round-budget backoff, degrade to a fallback
// producer when the primary exhausts its attempts, and report every step.
// The invariant it enforces is the soundness criterion of the fault model:
// an injected fault can never yield a silently wrong output — a supervised
// run ends in exactly one of {certified, certified-after-retry, degraded,
// failed}, and the first three return only certified results.

// Certification is one certifier ruling on one produced result.
type Certification struct {
	// OK reports acceptance.
	OK bool
	// Rejectors is the number of rejecting verifier nodes (when a
	// distributed verdict was run).
	Rejectors int
	// Detail is the human-readable rejection cause.
	Detail string
	// Verdict is the distributed proof-labeling verdict, when one was run;
	// structural prechecks that reject before proving leave it nil.
	Verdict *cert.Verdict
}

// FromVerdict converts a distributed proof-labeling verdict into a
// Certification.
func FromVerdict(v *cert.Verdict) Certification {
	c := Certification{OK: v.OK, Rejectors: len(v.Rejectors), Verdict: v}
	if !v.OK {
		c.Detail = "proof-labeling verifier rejected"
	}
	return c
}

// Stage is one supervised producer: Run executes an attempt under a round
// budget, Certify judges its output. Certify must be a total function with
// one-sided error — it may reject a correct result (forcing a wasted
// retry) but must never accept a wrong one, and it must return an error
// only for infrastructure failures (which abort supervision), never for
// bad input.
type Stage[T any] struct {
	// Name identifies the stage in reports and traces.
	Name string
	// DefaultBudget is the round budget of the first attempt when the
	// policy does not set one.
	DefaultBudget int
	// Run executes one attempt under a round budget, returning the result
	// and the rounds consumed (measured or charged). An error marks the
	// attempt failed (e.g. the budget ran out); the supervisor retries it.
	Run func(attempt, budget int) (T, int, error)
	// Certify judges the result of a successful Run.
	Certify func(T) (Certification, error)
	// Faults optionally reports the stage's cumulative fired-fault tally;
	// the supervisor diffs consecutive readings to attribute faults to
	// attempts. Nil when the stage injects nothing.
	Faults func() Counts
}

// Policy bounds the supervisor.
type Policy struct {
	// MaxAttempts is the attempt budget per stage; 0 means 3.
	MaxAttempts int
	// BaseBudget is the round budget of a stage's first attempt; 0 defers
	// to the stage's DefaultBudget.
	BaseBudget int
	// BackoffFactor multiplies the round budget after each failed or
	// rejected attempt; 0 means 2.
	BackoffFactor int
	// Tracer receives LayerChaos spans and chaos.* counters; nil disables.
	Tracer trace.Tracer
}

// Outcome classifies how a supervised run ended.
type Outcome uint8

// The supervised outcomes. Exactly one applies to every run.
const (
	// OutcomeCertified: the primary stage's first attempt was certified.
	OutcomeCertified Outcome = iota
	// OutcomeCertifiedRetry: a later primary attempt was certified.
	OutcomeCertifiedRetry
	// OutcomeDegraded: the primary exhausted its attempts and the fallback
	// stage produced a certified result.
	OutcomeDegraded
	// OutcomeFailed: every attempt of every stage failed or was rejected;
	// no result is returned.
	OutcomeFailed
	// OutcomeRejectedInput: the guard stage of a guarded run rejected the
	// input before any producer attempt — the input itself is bad, which is
	// a distinct verdict from a run that failed under faults. Appended after
	// OutcomeFailed so the earlier outcome values stay stable.
	OutcomeRejectedInput
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCertified:
		return "certified"
	case OutcomeCertifiedRetry:
		return "certified-after-retry"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeFailed:
		return "failed"
	case OutcomeRejectedInput:
		return "rejected-input"
	}
	return "unknown"
}

// Attempt records one supervised attempt.
type Attempt struct {
	Stage     string
	Attempt   int    // 1-based within the stage
	Budget    int    // round budget granted
	Rounds    int    // rounds consumed (measured or charged)
	Faults    Counts // faults fired during this attempt
	Accepted  bool
	Rejectors int
	Err       string // run error or rejection detail, empty on acceptance
}

// Report is the full account of a supervised run.
type Report struct {
	Outcome  Outcome
	Attempts []Attempt
	// Faults is the total fired-fault tally across all attempts.
	Faults Counts
	// Verdicts collects every distributed verdict run, in attempt order.
	Verdicts []*cert.Verdict
	// Rejection is the guard's rejection detail when Outcome is
	// OutcomeRejectedInput, empty otherwise.
	Rejection string
	// RejectionErr is the guard's typed rejection error (e.g. a
	// guard.RejectionError carrying the witness) when Outcome is
	// OutcomeRejectedInput, nil otherwise.
	RejectionErr error
}

// GuardFunc is the admission check of a guarded supervised run. It returns
// (rejection, err): a non-nil rejection means the input itself is bad and
// the run must end in OutcomeRejectedInput without executing any producer;
// a non-nil err is an infrastructure failure. Both nil admits the input.
// The package deliberately does not depend on internal/guard — the facade
// adapts a guard validation into this shape.
type GuardFunc func(ctx context.Context) (rejection error, err error)

// RunWithRecovery supervises primary (and, when primary exhausts its
// attempts, the optional fallback): each stage is retried up to
// Policy.MaxAttempts times under exponentially growing round budgets until
// an attempt is certified. The returned result is meaningful only when the
// report's Outcome is not OutcomeFailed; the error reports infrastructure
// failures only (a fault-induced failure is an Outcome, not an error).
func RunWithRecovery[T any](primary Stage[T], fallback *Stage[T], pol Policy) (T, *Report, error) {
	return RunWithRecoveryContext(context.Background(), primary, fallback, pol)
}

// RunWithRecoveryContext is RunWithRecovery under a cancellation context:
// the supervisor consults ctx before every attempt and before degrading to
// the fallback, so cancelling stops the retry loop mid-flight instead of
// letting it burn through the remaining attempt budget. Cancellation is an
// infrastructure failure: the report's Outcome is OutcomeFailed and the
// returned error wraps ctx.Err(). Stages whose Run closures are themselves
// long-running should capture the same ctx and return early when it is
// done; the supervisor treats that like any other failed attempt and then
// notices the cancellation before retrying.
func RunWithRecoveryContext[T any](ctx context.Context, primary Stage[T], fallback *Stage[T], pol Policy) (T, *Report, error) {
	tr := trace.OrNop(pol.Tracer)
	sup := tr.StartSpan(trace.LayerChaos, "chaos.supervise")
	rep := &Report{}
	var zero T

	res, ok, err := runStage(ctx, primary, pol, tr, rep)
	if err != nil {
		rep.Outcome = OutcomeFailed
		sup.End()
		return zero, rep, err
	}
	if ok {
		if len(rep.Attempts) == 1 {
			rep.Outcome = OutcomeCertified
		} else {
			rep.Outcome = OutcomeCertifiedRetry
		}
		finish(tr, sup, rep)
		return res, rep, nil
	}
	if fallback != nil {
		tr.Count("chaos.fallbacks", 1)
		res, ok, err = runStage(ctx, *fallback, pol, tr, rep)
		if err != nil {
			rep.Outcome = OutcomeFailed
			sup.End()
			return zero, rep, err
		}
		if ok {
			rep.Outcome = OutcomeDegraded
			finish(tr, sup, rep)
			return res, rep, nil
		}
	}
	rep.Outcome = OutcomeFailed
	finish(tr, sup, rep)
	return zero, rep, nil
}

// RunWithRecoveryGuarded is RunWithRecoveryContext with an admission
// guard in front: the guard runs once before any producer attempt, and a
// rejection ends the run immediately with OutcomeRejectedInput — the
// producers never see the bad input. A guard infrastructure error ends the
// run as OutcomeFailed with the error. An admitted input proceeds through
// the normal supervised retry/degrade loop.
func RunWithRecoveryGuarded[T any](ctx context.Context, g GuardFunc, primary Stage[T], fallback *Stage[T], pol Policy) (T, *Report, error) {
	var zero T
	if g != nil {
		tr := trace.OrNop(pol.Tracer)
		sp := tr.StartSpan(trace.LayerChaos, "chaos.guard")
		rejection, err := g(ctx)
		if err != nil {
			sp.End()
			rep := &Report{Outcome: OutcomeFailed}
			return zero, rep, err
		}
		if rejection != nil {
			sp.SetAttr("rejected", 1)
			rep := &Report{
				Outcome:      OutcomeRejectedInput,
				Rejection:    rejection.Error(),
				RejectionErr: rejection,
			}
			finish(tr, sp, rep)
			return zero, rep, nil
		}
		sp.SetAttr("rejected", 0)
		sp.End()
	}
	return RunWithRecoveryContext(ctx, primary, fallback, pol)
}

// runStage retries one stage under the policy until an attempt is
// certified, the attempt budget runs out, or ctx is cancelled.
func runStage[T any](ctx context.Context, st Stage[T], pol Policy, tr trace.Tracer, rep *Report) (T, bool, error) {
	var zero T
	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := pol.BackoffFactor
	if backoff <= 0 {
		backoff = 2
	}
	budget := pol.BaseBudget
	if budget <= 0 {
		budget = st.DefaultBudget
	}
	if budget <= 0 {
		budget = 1
	}
	var prev Counts
	if st.Faults != nil {
		prev = st.Faults()
	}
	for a := 1; a <= attempts; a++ {
		if err := ctx.Err(); err != nil {
			tr.Count("chaos.cancellations", 1)
			return zero, false, err
		}
		sp := tr.StartSpan(trace.LayerChaos, "chaos.attempt")
		sp.SetAttr("attempt", int64(a))
		sp.SetAttr("budget", int64(budget))
		res, rounds, runErr := st.Run(a, budget)
		at := Attempt{Stage: st.Name, Attempt: a, Budget: budget, Rounds: rounds}
		if st.Faults != nil {
			cum := st.Faults()
			at.Faults = cum.Sub(prev)
			prev = cum
		}
		rep.Faults.Add(at.Faults)
		tr.Count("chaos.attempts", 1)
		countFaults(tr, at.Faults)
		sp.SetAttr("rounds", int64(rounds))
		if runErr != nil {
			at.Err = runErr.Error()
			tr.Count("chaos.run_errors", 1)
			sp.SetAttr("accepted", 0)
			sp.End()
			rep.Attempts = append(rep.Attempts, at)
			budget *= backoff
			continue
		}
		cn, cerr := st.Certify(res)
		if cerr != nil {
			sp.End()
			rep.Attempts = append(rep.Attempts, at)
			return zero, false, cerr
		}
		if cn.Verdict != nil {
			rep.Verdicts = append(rep.Verdicts, cn.Verdict)
		}
		at.Accepted = cn.OK
		at.Rejectors = cn.Rejectors
		if !cn.OK {
			at.Err = cn.Detail
			tr.Count("chaos.rejections", 1)
		}
		if cn.OK {
			sp.SetAttr("accepted", 1)
		} else {
			sp.SetAttr("accepted", 0)
		}
		sp.End()
		rep.Attempts = append(rep.Attempts, at)
		if cn.OK {
			return res, true, nil
		}
		budget *= backoff
	}
	return zero, false, nil
}

// countFaults exports an attempt's fired-fault tally as chaos.* counters.
func countFaults(tr trace.Tracer, c Counts) {
	if !tr.Enabled() || c.Total() == 0 {
		return
	}
	tr.Count("chaos.faults.drops", c.Drops)
	tr.Count("chaos.faults.corruptions", c.Corruptions)
	tr.Count("chaos.faults.stalls", c.Stalls)
	tr.Count("chaos.faults.linkdown_drops", c.LinkDownDrops)
	tr.Count("chaos.faults.crashes", c.Crashes)
	tr.Count("chaos.faults.structural", c.Structural)
}

// finish stamps the terminal outcome on the supervise span and exports it
// as a counter.
func finish(tr trace.Tracer, sup trace.Span, rep *Report) {
	sup.SetAttr("outcome", int64(rep.Outcome))
	sup.SetAttr("attempts", int64(len(rep.Attempts)))
	sup.End()
	tr.Count("chaos.outcome."+rep.Outcome.String(), 1)
}
