package chaos

import (
	"fmt"

	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/graph"
)

// The in-band fault report: after a supervised run ends, the root floods
// its terminal report over the (fault-free) network so every node learns
// how the run ended — the form a real deployment uses to trigger failover
// or alerting from inside the system rather than at the operator console.
// ReportPayload implements congest.Payload, so the planarvet congestmsg
// analyzer enforces that the report stays a fixed number of O(log n)-bit
// words.

// msgChaosReport tags fault-report flood messages. The constant is local
// to the report program's network; it cannot collide with other programs'
// kinds.
const msgChaosReport = 64

// ReportPayload is the wire body of a fault report: the terminal outcome,
// the attempt count, and the fired-fault tally of a supervised run.
type ReportPayload struct {
	Outcome       int
	Attempts      int
	Drops         int
	Corruptions   int
	Stalls        int
	LinkDownDrops int
	Crashes       int
	Structural    int
}

// AppendWords implements congest.Payload.
func (p *ReportPayload) AppendWords(dst []int) []int {
	return append(dst, p.Outcome, p.Attempts,
		p.Drops, p.Corruptions, p.Stalls, p.LinkDownDrops, p.Crashes, p.Structural)
}

// LoadWords implements congest.Payload.
func (p *ReportPayload) LoadWords(words []int) {
	p.Outcome, p.Attempts = words[0], words[1]
	p.Drops, p.Corruptions, p.Stalls = words[2], words[3], words[4]
	p.LinkDownDrops, p.Crashes, p.Structural = words[5], words[6], words[7]
}

// reportWords is the payload size; the wire message adds one kind word.
const reportWords = 8

// WirePayload flattens a report for the in-band flood.
func (r *Report) WirePayload() *ReportPayload {
	return &ReportPayload{
		Outcome:       int(r.Outcome),
		Attempts:      len(r.Attempts),
		Drops:         int(r.Faults.Drops),
		Corruptions:   int(r.Faults.Corruptions),
		Stalls:        int(r.Faults.Stalls),
		LinkDownDrops: int(r.Faults.LinkDownDrops),
		Crashes:       int(r.Faults.Crashes),
		Structural:    int(r.Faults.Structural),
	}
}

// reportNode floods the report once: the root sends it on every port in
// round 0, every other node forwards it on its remaining ports the round
// after it first hears it.
type reportNode struct {
	deg     int
	isRoot  bool
	gotPort int // port the report arrived on (-1 until heard)
	heard   bool
	sent    bool
	Report  ReportPayload
}

// CongestEventDriven marks the program as purely message-driven (the
// flood is triggered by round 0 at the root and by receipt elsewhere).
func (rn *reportNode) CongestEventDriven() {}

// Round implements congest.Node.
func (rn *reportNode) Round(round int, recv []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, in := range recv {
		if in.Msg.Kind == msgChaosReport && !rn.heard {
			congest.Unpack(in.Msg, &rn.Report)
			rn.heard = true
			rn.gotPort = in.Port
		}
	}
	if rn.isRoot && !rn.sent {
		rn.sent = true
		rn.heard = true
		out := make([]congest.Outgoing, 0, rn.deg)
		msg := congest.Pack(msgChaosReport, &rn.Report)
		for p := 0; p < rn.deg; p++ {
			out = append(out, congest.Outgoing{Port: p, Msg: msg})
		}
		return out, true
	}
	if rn.heard && !rn.sent {
		rn.sent = true
		out := make([]congest.Outgoing, 0, rn.deg)
		msg := congest.Pack(msgChaosReport, &rn.Report)
		for p := 0; p < rn.deg; p++ {
			if p != rn.gotPort {
				out = append(out, congest.Outgoing{Port: p, Msg: msg})
			}
		}
		return out, true
	}
	return nil, rn.sent
}

// BroadcastReport floods rep from root over a fault-free network on g and
// returns the per-vertex received payloads, so callers (and tests) can
// check every node learned the outcome. The flood takes O(diameter)
// rounds with one reportWords+1-word message per edge direction.
func BroadcastReport(g *graph.Graph, root int, rep *Report, opt cert.Options) ([]ReportPayload, error) {
	nw := stageNetwork(g, opt)
	if nw.MaxWords < reportWords+1 {
		nw.MaxWords = reportWords + 1
	}
	nodes := make([]congest.Node, g.N())
	for v := 0; v < g.N(); v++ {
		nodes[v] = &reportNode{deg: g.Degree(v), isRoot: v == root, gotPort: -1}
	}
	rn := nodes[root].(*reportNode)
	rn.Report = *rep.WirePayload()
	if _, err := nw.Run(nodes, 2*g.N()+16); err != nil {
		return nil, err
	}
	out := make([]ReportPayload, g.N())
	for v := range out {
		n := nodes[v].(*reportNode)
		if !n.heard {
			return nil, fmt.Errorf("chaos: vertex %d never received the fault report", v)
		}
		out[v] = n.Report
	}
	return out, nil
}
