package chaos

import (
	"planardfs/internal/cert"
	"planardfs/internal/congest"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// Prebuilt supervised stages for the message-level algorithms of
// internal/congest: each Run arms a fresh injector compiled from (plan,
// attempt) — so randomized faults are transient across retries — executes
// the node programs, and extracts the claimed output; each Certify runs
// the matching internal/cert proof-labeling verifier (or a centralized
// oracle where no scheme exists). The stage's pipeline-level counterpart —
// the Theorem 2 separator DFS under structural faults, with Awerbuch as
// fallback — is assembled at the facade (planardfs.BuildDFSTreeWithRecovery),
// which owns the planarity machinery.

// network builds the stage network over g per the certification options.
func stageNetwork(g *graph.Graph, opt cert.Options) *congest.Network {
	nw := congest.New(g)
	nw.Parallel = !opt.Sequential
	nw.Workers = opt.Workers
	nw.Tracer = opt.Tracer
	return nw
}

// AwerbuchDFS is the token-DFS baseline as a supervised stage under the
// plan's message-level faults, certified by the DFS proof-labeling scheme.
// Its result is the claimed parent array.
func AwerbuchDFS(g *graph.Graph, root int, plan *Plan, opt cert.Options) Stage[[]int] {
	var fired Counts
	return Stage[[]int]{
		Name:          "awerbuch",
		DefaultBudget: 10*g.N() + 100,
		Run: func(attempt, budget int) ([]int, int, error) {
			nw := stageNetwork(g, opt)
			inj := plan.Arm(nw, attempt)
			nodes := congest.NewAwerbuchNodes(nw, root)
			rounds, err := nw.Run(nodes, budget)
			if inj != nil {
				fired.Add(inj.Counts())
			}
			if err != nil {
				return nil, rounds, err
			}
			parent := make([]int, g.N())
			for v := range parent {
				parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
			}
			return parent, rounds, nil
		},
		Certify: DFSCertifier(g, root, opt),
		Faults:  func() Counts { return fired },
	}
}

// DFSCertifier judges a claimed DFS parent array with the DFS
// proof-labeling scheme. Malformed arrays (cycles, orphans, out-of-range
// parents) fail the prover's structural validation before any network
// runs; that is an explicit rejection of the claim, not an infrastructure
// error.
func DFSCertifier(g *graph.Graph, root int, opt cert.Options) func([]int) (Certification, error) {
	return func(parent []int) (Certification, error) {
		labels, err := cert.ProveDFSTree(g, root, parent)
		if err != nil {
			return Certification{Detail: "structural precheck: " + err.Error()}, nil
		}
		v, err := cert.VerifyDFSTree(g, labels, opt)
		if err != nil {
			return Certification{}, err
		}
		return FromVerdict(v), nil
	}
}

// BFSOutput is the claimed output of a distributed BFS run.
type BFSOutput struct {
	Parent []int
	Dist   []int
}

// BFSTreeStage is the flooding BFS as a supervised stage under the plan's
// message-level faults, certified by the BFS-tree proof-labeling scheme —
// the gap judge rejects the shallow-but-wrong spanning trees a dropped
// announce can leave behind.
func BFSTreeStage(g *graph.Graph, root int, plan *Plan, opt cert.Options) Stage[BFSOutput] {
	var fired Counts
	return Stage[BFSOutput]{
		Name:          "bfs",
		DefaultBudget: 2*g.N() + 16,
		Run: func(attempt, budget int) (BFSOutput, int, error) {
			nw := stageNetwork(g, opt)
			inj := plan.Arm(nw, attempt)
			nodes := congest.NewBFSNodes(nw, root)
			rounds, err := nw.Run(nodes, budget)
			if inj != nil {
				fired.Add(inj.Counts())
			}
			if err != nil {
				return BFSOutput{}, rounds, err
			}
			out := BFSOutput{Parent: make([]int, g.N()), Dist: make([]int, g.N())}
			for v := range out.Parent {
				bn := nodes[v].(*congest.BFSNode)
				out.Parent[v] = bn.ParentID
				out.Dist[v] = bn.Dist
			}
			return out, rounds, nil
		},
		Certify: func(out BFSOutput) (Certification, error) {
			v, err := cert.VerifyBFSTree(g, cert.ProveBFSTree(root, out.Parent, out.Dist), opt)
			if err != nil {
				return Certification{}, err
			}
			return FromVerdict(v), nil
		},
		Faults: func() Counts { return fired },
	}
}

// PartwiseSum is the part-wise aggregation primitive (Lemma: PA, OpSum) as
// a supervised stage under the plan's message-level faults, run over the
// BFS tree of g from root. Its result is the per-vertex aggregate array.
// No proof-labeling scheme exists for PA, so Certify is the centralized
// oracle: every vertex must hold exactly the sum of its part.
func PartwiseSum(g *graph.Graph, root int, partOf, value []int, plan *Plan, opt cert.Options) Stage[[]int] {
	t, terr := spanning.BFSTree(g, root)
	want := map[int]int{}
	for v, part := range partOf {
		want[part] += value[v]
	}
	var fired Counts
	return Stage[[]int]{
		Name:          "pa-sum",
		DefaultBudget: 8*g.N() + 64,
		Run: func(attempt, budget int) ([]int, int, error) {
			if terr != nil {
				return nil, 0, terr
			}
			nw := stageNetwork(g, opt)
			nw.MaxWords = 4
			inj := plan.Arm(nw, attempt)
			nodes := congest.NewPANodes(nw, t.Parent, root, partOf, value, congest.OpSum)
			rounds, err := nw.Run(nodes, budget)
			if inj != nil {
				fired.Add(inj.Counts())
			}
			if err != nil {
				return nil, rounds, err
			}
			res := make([]int, g.N())
			for v := range res {
				pn := nodes[v].(*congest.PANode)
				if !pn.HasResult {
					res[v] = int(^uint(0) >> 1) // no result: an impossible sum
					continue
				}
				res[v] = pn.Result
			}
			return res, rounds, nil
		},
		Certify: func(res []int) (Certification, error) {
			for v := range res {
				if res[v] != want[partOf[v]] {
					return Certification{
						Rejectors: 1,
						Detail:    "oracle: wrong part aggregate at a vertex",
					}, nil
				}
			}
			return Certification{OK: true}, nil
		},
		Faults: func() Counts { return fired },
	}
}
