package chaos

import (
	"planardfs/internal/congest"
	"planardfs/internal/graph"
)

// Injector is a fault plan compiled against one graph for one attempt. It
// implements congest.Injector: the engines consult it per vertex in the
// step phase (crash-stop) and per in-flight message in the delivery phase
// (link-down, drop, corrupt, stall).
//
// All decision tables are built by compile before the run starts; the only
// state mutated during a run is owned per-receiver (stall buffers, release
// queues, fired-fault counters), which matches the engine's concurrency
// contract — both engines invoke the delivery hooks for receiver dst only
// from the worker owning dst — so sequential and sharded runs take
// byte-identical decisions. An Injector is single-run: arm a fresh one per
// attempt.
type Injector struct {
	g *graph.Graph

	// off[v] is the flat index of vertex v's port 0; directed edge
	// (src, srcPort) lives at off[src]+srcPort.
	off []int
	// downFrom[fp] is the round from which the directed edge fp is down
	// (never if the link stays up).
	downFrom []int32
	// crashAt[v] is the round from which vertex v is crash-stopped.
	crashAt []int32
	// events[fp] holds the point faults on directed edge fp, sorted by
	// round, at most one per round.
	events [][]event

	// Per-receiver mutable state, touched only by the receiver's worker.
	stalled [][]stalledMsg
	pending []int32
	cnt     []Counts
}

// event is one compiled point fault on a directed edge.
type event struct {
	round int32
	kind  Kind
	word  int32 // Corrupt: payload word index (mod arg count)
	xor   int   // Corrupt: value XORed in
	stall int32 // Stall: delay in rounds
	buf   []int // Corrupt/Stall: scratch copy of Args, reused if re-fired
}

// stalledMsg is a withheld message awaiting release toward its receiver.
type stalledMsg struct {
	release int32
	port    int32
	kind    int
	args    []int
	done    bool
}

var _ congest.Injector = (*Injector)(nil)

// Crashed implements congest.Injector.
func (in *Injector) Crashed(round, v int) bool {
	at := in.crashAt[v]
	if int32(round) < at {
		return false
	}
	if int32(round) == at {
		in.cnt[v].Crashes++ // step phase: v's worker owns cnt[v]
	}
	return true
}

// Deliver implements congest.Injector. It rules on the message from src
// (on srcPort) into dst at the given round.
func (in *Injector) Deliver(round, src, srcPort, dst, dstPort int, msg congest.Message) (congest.Message, congest.DeliveryFate) {
	fp := in.off[src] + srcPort
	c := &in.cnt[dst]
	if int32(round) >= in.downFrom[fp] {
		c.LinkDownDrops++
		return msg, congest.FateDrop
	}
	evs := in.events[fp]
	if len(evs) == 0 {
		return msg, congest.FateDeliver
	}
	// Binary search the (short, sorted) per-port event list for this round.
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if evs[mid].round < int32(round) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(evs) || evs[lo].round != int32(round) {
		return msg, congest.FateDeliver
	}
	ev := &evs[lo]
	switch ev.kind {
	case Drop:
		c.Drops++
		return msg, congest.FateDrop
	case Corrupt:
		if len(msg.Args) == 0 {
			return msg, congest.FateDeliver // no payload word to flip
		}
		// Copy before flipping: the sender may share msg.Args across ports.
		ev.buf = append(ev.buf[:0], msg.Args...)
		ev.buf[int(ev.word)%len(ev.buf)] ^= ev.xor
		c.Corruptions++
		return congest.Message{Kind: msg.Kind, Args: ev.buf}, congest.FateDeliver
	case Stall:
		ev.buf = append(ev.buf[:0], msg.Args...)
		in.stalled[dst] = append(in.stalled[dst], stalledMsg{
			release: int32(round) + ev.stall,
			port:    int32(dstPort),
			kind:    msg.Kind,
			args:    ev.buf,
		})
		in.pending[dst]++
		c.Stalls++
		return msg, congest.FateStall
	}
	return msg, congest.FateDeliver
}

// Released implements congest.Injector: it appends stalled messages whose
// delay expires at this round onto dst's inbox, after the round's regular
// deliveries.
func (in *Injector) Released(round, dst int, inbox []congest.Incoming) []congest.Incoming {
	if in.pending[dst] == 0 {
		return inbox
	}
	sl := in.stalled[dst]
	for i := range sl {
		if sl[i].done || sl[i].release > int32(round) {
			continue
		}
		inbox = append(inbox, congest.Incoming{
			Port: int(sl[i].port),
			Msg:  congest.Message{Kind: sl[i].kind, Args: sl[i].args},
		})
		sl[i].done = true
		in.pending[dst]--
	}
	return inbox
}

// Pending implements congest.Injector: the network must not terminate
// while stalled messages await release.
func (in *Injector) Pending() bool {
	for _, p := range in.pending {
		if p > 0 {
			return true
		}
	}
	return false
}

// Counts returns the tally of faults that fired during the run so far.
func (in *Injector) Counts() Counts {
	var total Counts
	for i := range in.cnt {
		total.Add(in.cnt[i])
	}
	return total
}
