package cert

import (
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// White-box adversarial tests: corrupt one field of one label and assert
// the verifier catches it — the verdict flips to reject with at least one
// rejecting vertex.

func cloneLabels(labels [][]int) [][]int {
	out := make([][]int, len(labels))
	for v := range labels {
		out[v] = append([]int(nil), labels[v]...)
	}
	return out
}

func gridInstance(t *testing.T) *gen.Instance {
	t.Helper()
	in, err := gen.ByName("grid", 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func wantReject(t *testing.T, v *Verdict, err error, name string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if v.OK {
		t.Fatalf("%s: corrupted labels accepted", name)
	}
	if len(v.Rejectors) == 0 {
		t.Fatalf("%s: rejected without a rejecting vertex", name)
	}
}

func TestSpanningMutations(t *testing.T) {
	in := gridInstance(t)
	g := in.G
	st, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := ProveSpanningTree(st)
	if v, err := VerifySpanningTree(g, good, Options{}); err != nil || !v.OK {
		t.Fatalf("baseline: %v %+v", err, v)
	}
	x := g.N() - 1 // any non-root vertex (root is 0)
	mutations := []struct {
		name   string
		mutate func(l [][]int)
	}{
		{"depth-off-by-one", func(l [][]int) { l[x][2]++ }},
		{"root-id-flip", func(l [][]int) { l[x][0] = (l[x][0] + 1) % g.N() }},
		{"parent-non-neighbor", func(l [][]int) { l[x][1] = x }},
		{"orphaned-root", func(l [][]int) { l[st.Root][1] = g.Neighbors(st.Root)[0] }},
	}
	for _, m := range mutations {
		labels := cloneLabels(good)
		m.mutate(labels)
		v, err := VerifySpanningTree(g, labels, Options{})
		wantReject(t, v, err, m.name)
	}
}

func TestDFSMutations(t *testing.T) {
	in := gridInstance(t)
	g := in.G
	dt, err := spanning.DeepDFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := ProveDFSTree(g, 0, dt.Parent)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := VerifyDFSTree(g, good, Options{}); err != nil || !v.OK {
		t.Fatalf("baseline: %v %+v", err, v)
	}
	x := g.N() - 1 // non-root: tin >= 1
	mutations := []struct {
		name   string
		mutate func(l [][]int)
	}{
		{"tin-shift", func(l [][]int) { l[x][1]++ }},
		{"interval-inverted", func(l [][]int) { l[x][1], l[x][2] = l[x][2], l[x][1] }},
		{"second-root", func(l [][]int) { l[x][0] = -1 }},
		{"tout-shrunk", func(l [][]int) { l[0][2]-- }},
	}
	for _, m := range mutations {
		labels := cloneLabels(good)
		m.mutate(labels)
		v, err := VerifyDFSTree(g, labels, Options{})
		wantReject(t, v, err, m.name)
	}
}

func TestSeparatorMutations(t *testing.T) {
	in := gridInstance(t)
	g := in.G
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tr, err := spanning.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(g, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := separator.Find(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good, err := ProveSeparator(g, sep)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := VerifySeparator(g, good, Options{}); err != nil || !v.OK {
		t.Fatalf("baseline: %v %+v", err, v)
	}
	// A vertex off the separator path (grid separators always leave some).
	off := -1
	for v := range good {
		if good[v][sepFSide] != 0 {
			off = v
			break
		}
	}
	if off < 0 {
		t.Fatal("no off-path vertex in grid separator")
	}
	onPath := sep.Path[0]
	mutations := []struct {
		name   string
		mutate func(l [][]int)
	}{
		{"side-flip", func(l [][]int) { l[off][sepFSide] = 3 - l[off][sepFSide] }},
		{"side-joins-path", func(l [][]int) { l[off][sepFSide] = 0 }},
		{"pos-out-of-range", func(l [][]int) { l[onPath][sepFPos] = l[onPath][sepFLen] }},
		{"claimed-length", func(l [][]int) { l[off][sepFLen]++ }},
		{"subtree-count", func(l [][]int) { l[off][sepFSumS]++ }},
		{"side-count-unbalanced", func(l [][]int) {
			for v := range l {
				l[v][sepFCountA] = g.N()
			}
		}},
	}
	for _, m := range mutations {
		labels := cloneLabels(good)
		m.mutate(labels)
		v, err := VerifySeparator(g, labels, Options{})
		wantReject(t, v, err, m.name)
	}
}

func TestEmbeddingMutations(t *testing.T) {
	in := gridInstance(t)
	g := in.G
	good := ProveEmbedding(in.Emb)
	if v, err := VerifyEmbedding(g, good, Options{}); err != nil || !v.OK {
		t.Fatalf("baseline: %v %+v", err, v)
	}
	// A face-leading vertex (decrements must stay within the local bound so
	// only the Euler sum can catch them).
	leader := -1
	for v := range good {
		if good[v][1] > 0 {
			leader = v
			break
		}
	}
	if leader < 0 {
		t.Fatal("no face-leading vertex")
	}
	mutations := []struct {
		name   string
		mutate func(l [][]int)
	}{
		{"face-count-up", func(l [][]int) { l[0][1]++ }},
		{"face-count-down", func(l [][]int) { l[leader][1]-- }},
		{"degree-lie", func(l [][]int) { l[0][0]++ }},
	}
	for _, m := range mutations {
		labels := cloneLabels(good)
		m.mutate(labels)
		v, err := VerifyEmbedding(g, labels, Options{})
		wantReject(t, v, err, m.name)
	}
}
