package cert

import (
	"sort"

	"planardfs/internal/dfs"
	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// The DFS-tree scheme. Label layout (3 words):
//
//	[parent, tin, tout]
//
// [tin, tout) is the vertex's preorder interval. The local predicate at v:
// the interval is well-formed, the root (parent -1) claims exactly [0, n),
// the parent is a neighbour whose interval strictly contains v's, the
// children's intervals (neighbours claiming v as parent) exactly tile
// [tin+1, tout), and every non-tree edge joins nested intervals (the back
// edge / ancestry condition that characterises DFS trees).
//
// Soundness: exact tiling forces, by induction on interval length, each
// parent-subtree to hold exactly tout-tin vertices, so the root's tree
// holds all n vertices — the labels describe one spanning tree whose
// preorder is the intervals, and the nestedness check on the remaining
// edges is then precisely the DFS-tree property.
const dfsWords = 3

// ProveDFSTree assigns the DFS-tree labels of the parent array: the
// preorder intervals of the tree with children visited in ascending vertex
// order.
func ProveDFSTree(g *graph.Graph, root int, parent []int) ([][]int, error) {
	// The spanning constructor validates the tree shape (reachability,
	// cycles, root convention); its children order is ascending vertex id,
	// the same order the preorder below uses.
	t, err := spanning.NewFromParents(root, parent)
	if err != nil {
		return nil, err
	}
	n := t.N()
	tin := make([]int, n)
	tout := make([]int, n)
	timer := 0
	type frame struct{ v, ci int }
	stack := []frame{{root, 0}}
	tin[root] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(t.Children(f.v)) {
			c := int(t.Children(f.v)[f.ci])
			f.ci++
			tin[c] = timer
			timer++
			stack = append(stack, frame{c, 0})
			continue
		}
		tout[f.v] = timer
		stack = stack[:len(stack)-1]
	}
	labels := make([][]int, n)
	for v := 0; v < n; v++ {
		labels[v] = []int{parent[v], tin[v], tout[v]}
	}
	return labels, nil
}

// dfsJudge is the local DFS-tree predicate at v.
func dfsJudge(v, n int, nb []int, own []int, got [][]int) bool {
	par, tin, tout := own[0], own[1], own[2]
	if tin < 0 || tout > n || tin >= tout {
		return false
	}
	if par == -1 && (tin != 0 || tout != n) {
		return false
	}
	parSeen := par == -1
	type iv struct{ lo, hi int }
	var kids []iv
	for p := range nb {
		o := got[p]
		if len(o) != dfsWords {
			return false
		}
		olo, ohi := o[1], o[2]
		treeEdge := false
		if nb[p] == par {
			parSeen = true
			treeEdge = true
			if !(olo < tin && tout <= ohi) {
				return false
			}
		}
		if o[0] == v {
			treeEdge = true
			kids = append(kids, iv{olo, ohi})
		}
		if !treeEdge {
			// Non-tree edge: one endpoint must be an ancestor of the other.
			if !((tin <= olo && ohi <= tout) || (olo <= tin && tout <= ohi)) {
				return false
			}
		}
	}
	if !parSeen {
		return false
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].lo < kids[j].lo })
	cursor := tin + 1
	for _, k := range kids {
		if k.lo != cursor || k.hi <= k.lo {
			return false
		}
		cursor = k.hi
	}
	return cursor == tout
}

// VerifyDFSTree runs the DFS-tree verifier on an arbitrary (possibly
// adversarial) label assignment.
func VerifyDFSTree(g *graph.Graph, labels [][]int, opt Options) (*Verdict, error) {
	n := g.N()
	judge := func(v int, got [][]int) bool {
		return dfsJudge(v, n, g.Neighbors(v), labels[v], got)
	}
	return certify(g, "dfs", labels, dfsWords, judge,
		dist.DFSOrderOps(n).Plus(dist.Ops{TreeAgg: 1}), opt)
}

// CertifyDFSTree proves and verifies that the parent array is a DFS tree of
// g rooted at root.
func CertifyDFSTree(g *graph.Graph, root int, parent []int, opt Options) (*Verdict, error) {
	labels, err := ProveDFSTree(g, root, parent)
	if err != nil {
		return nil, err
	}
	return VerifyDFSTree(g, labels, opt)
}

// CheckDFSTree is the centralized oracle: the ancestry check of every graph
// edge from the dfs package.
func CheckDFSTree(g *graph.Graph, root int, parent []int) error {
	return dfs.IsDFSTree(g, root, parent)
}
