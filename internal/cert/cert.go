// Package cert implements distributed certification (proof-labeling
// schemes) for the structures the paper's algorithms produce: rooted
// spanning trees, DFS trees, cycle separators and planar embeddings.
//
// Each scheme is a prover/verifier pair executed on the CONGEST simulator
// itself. The prover is a centralized routine standing in for the
// distributed labelling phase (its round cost is charged explicitly under
// the paper cost model); it assigns every vertex an O(log n)-bit label — a
// constant number of words. The verifier is a genuine CONGEST program: in
// one round every vertex broadcasts its label to all neighbours, in the
// next it inspects the received labels and accepts or rejects. The
// per-vertex verdicts are then combined into a global verdict with one
// part-wise aggregation (a single-part OpMin) over the existing shortcut
// machinery, so a run certifies itself with O(1) verification rounds after
// the prover phase plus one PA call.
//
// Soundness is local by design: if the labelled structure violates its
// predicate, at least one vertex rejects, no matter which single label
// field an adversary corrupted. The judges are total functions — malformed
// label values make a vertex reject, never crash. Completeness: labels
// produced by the package's own provers on correct structures make every
// vertex accept.
//
// Every scheme also ships a centralized oracle (Check*) asserting the same
// property from global data; the test suite cross-validates verifier and
// oracle against adversarial mutations.
package cert

import (
	"fmt"
	"sort"

	"planardfs/internal/congest"
	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

// msgCertLabel tags the single message kind of the verifier phase: a
// vertex's full label, broadcast to every neighbour in the first round.
const msgCertLabel = 1

// Verdict is the outcome of one certification run.
type Verdict struct {
	// Scheme names the certified predicate ("spanning", "dfs", "separator",
	// "embedding").
	Scheme string
	// OK reports global acceptance: every vertex accepted.
	OK bool
	// Rejectors lists the vertices whose local verifier rejected, in
	// ascending order (nil when OK).
	Rejectors []int
	// LabelWords is the per-vertex label size in words (1 word =
	// ceil(log2 n) bits); the verifier message adds one kind word.
	LabelWords int
	// ProverRounds is the round cost charged for the prover phase under the
	// paper cost model (shortcut.PaperCost).
	ProverRounds int
	// VerifierRounds is the measured CONGEST round count of the label
	// exchange — O(1) by construction, independent of n.
	VerifierRounds int
	// AggRounds is the measured round count of the verdict aggregation
	// (and, for the embedding scheme, the Euler-sum aggregation).
	AggRounds int
	// EulerSum is the aggregated Euler characteristic sum
	// (2V - 2E + 2F, accepting iff 4); set by the embedding scheme only.
	EulerSum int
	// Stats is the label-exchange network instrumentation.
	Stats congest.Stats
}

// Options configure a certification run. The zero value runs the parallel
// engine untraced.
type Options struct {
	// Sequential selects the sequential round engine; results are
	// bit-identical either way (the engine-equivalence contract of the
	// simulator extends to certification verdicts).
	Sequential bool
	// Workers overrides the sharded engine's worker count; 0 means one per
	// CPU.
	Workers int
	// Tracer records cert-layer spans (prove/verify/aggregate) and the
	// underlying network rounds; nil disables tracing.
	Tracer trace.Tracer
}

// network builds a CONGEST network over g configured per the options, with
// at least maxWords words of per-message bandwidth.
func (o Options) network(g *graph.Graph, maxWords int) *congest.Network {
	nw := congest.New(g)
	if maxWords > nw.MaxWords {
		nw.MaxWords = maxWords
	}
	nw.Parallel = !o.Sequential
	nw.Workers = o.Workers
	nw.Tracer = o.Tracer
	return nw
}

// validateLabels checks the structural shape of a label assignment; field
// values stay adversarial and are judged by the verifier nodes.
func validateLabels(n int, labels [][]int, words int) error {
	if len(labels) != n {
		return fmt.Errorf("cert: %d labels for %d vertices", len(labels), n)
	}
	for v, l := range labels {
		if len(l) != words {
			return fmt.Errorf("cert: label of vertex %d has %d words, want %d", v, len(l), words)
		}
	}
	return nil
}

// certNode is the verifier program of every scheme: broadcast the label,
// collect the neighbours' labels, judge once, halt.
type certNode struct {
	deg    int
	label  []int
	judge  func(got [][]int) bool
	got    [][]int
	accept bool
	judged bool
}

// CongestEventDriven marks the program as purely message-driven: the
// round-0 broadcast is the only spontaneous act (degree-0 vertices judge
// immediately instead), and judging is triggered by the arriving labels.
func (cn *certNode) CongestEventDriven() {}

// Round implements congest.Node.
func (cn *certNode) Round(round int, recv []congest.Incoming) ([]congest.Outgoing, bool) {
	if round == 0 && cn.deg > 0 {
		out := make([]congest.Outgoing, cn.deg)
		for p := range out {
			out[p] = congest.Outgoing{Port: p, Msg: congest.Message{Kind: msgCertLabel, Args: cn.label}}
		}
		return out, false
	}
	if !cn.judged {
		for _, in := range recv {
			if in.Msg.Kind == msgCertLabel && in.Port >= 0 && in.Port < cn.deg {
				cn.got[in.Port] = in.Msg.Args
			}
		}
		// The received label slices point into the senders' outboxes, which
		// stay untouched during this step phase; judging here (not later)
		// respects the engine's recv-recycling contract.
		cn.accept = cn.judge(cn.got)
		cn.judged = true
	}
	return nil, true
}

// runExchange executes the two-round label exchange and returns the
// per-vertex accept bits (1 accept, 0 reject).
func runExchange(g *graph.Graph, labels [][]int, words int, judge func(v int, got [][]int) bool, opt Options) (accepts []int, rounds int, stats congest.Stats, err error) {
	n := g.N()
	nw := opt.network(g, words+1)
	nodes := make([]congest.Node, n)
	cns := make([]*certNode, n)
	for v := 0; v < n; v++ {
		v := v
		cn := &certNode{
			deg:   g.Degree(v),
			label: labels[v],
			got:   make([][]int, g.Degree(v)),
			judge: func(got [][]int) bool { return judge(v, got) },
		}
		cns[v] = cn
		nodes[v] = cn
	}
	rounds, err = nw.Run(nodes, 8)
	if err != nil {
		return nil, 0, congest.Stats{}, err
	}
	accepts = make([]int, n)
	for v, cn := range cns {
		if cn.accept {
			accepts[v] = 1
		}
	}
	return accepts, rounds, nw.Stats(), nil
}

// aggregate runs one single-part part-wise aggregation of value under op on
// a network configured per the options, returning the aggregate and its
// measured round count.
func aggregate(g *graph.Graph, value []int, op congest.AggOp, opt Options) (int, int, error) {
	part, err := shortcut.NewPartition(make([]int, g.N()))
	if err != nil {
		return 0, 0, err
	}
	res, err := shortcut.RunPAOn(opt.network(g, 0), 0, part, value, op)
	if err != nil {
		return 0, 0, err
	}
	return res.Values[0], res.Rounds, nil
}

// chargeProver charges the prover phase's documented op budget under the
// paper cost model (BFS-tree depth standing in for the diameter) and
// advances the trace clock accordingly.
func chargeProver(g *graph.Graph, tr trace.Tracer, ops dist.Ops, words int) (int, error) {
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		return 0, err
	}
	rounds := ops.Rounds(shortcut.PaperCost{D: tree.MaxDepth(), N: g.N()}, 1)
	sp := tr.StartSpan(trace.LayerCert, "cert.prove")
	sp.SetAttr("rounds", int64(rounds))
	sp.SetAttr("label_words", int64(words))
	tr.Advance(int64(rounds))
	sp.End()
	return rounds, nil
}

// certify drives the common scheme pipeline: validate label shape, charge
// the prover, run the label exchange, aggregate the verdicts.
func certify(g *graph.Graph, scheme string, labels [][]int, words int, judge func(v int, got [][]int) bool, prover dist.Ops, opt Options) (*Verdict, error) {
	if err := validateLabels(g.N(), labels, words); err != nil {
		return nil, err
	}
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "cert."+scheme)
	defer sp.End()
	proverRounds, err := chargeProver(g, tr, prover, words)
	if err != nil {
		return nil, err
	}
	vsp := tr.StartSpan(trace.LayerCert, "cert.verify")
	accepts, vrounds, stats, err := runExchange(g, labels, words, judge, opt)
	if err != nil {
		vsp.End()
		return nil, err
	}
	vsp.SetAttr("rounds", int64(vrounds))
	vsp.End()
	verdict, err := finishVerdict(g, scheme, accepts, opt, tr)
	if err != nil {
		return nil, err
	}
	verdict.LabelWords = words
	verdict.ProverRounds = proverRounds
	verdict.VerifierRounds = vrounds
	verdict.Stats = stats
	sp.SetAttr("ok", boolAttr(verdict.OK))
	sp.SetAttr("rejectors", int64(len(verdict.Rejectors)))
	return verdict, nil
}

// finishVerdict aggregates the accept bits into the global verdict.
func finishVerdict(g *graph.Graph, scheme string, accepts []int, opt Options, tr trace.Tracer) (*Verdict, error) {
	asp := tr.StartSpan(trace.LayerCert, "cert.aggregate")
	min, arounds, err := aggregate(g, accepts, congest.OpMin, opt)
	if err != nil {
		asp.End()
		return nil, err
	}
	asp.SetAttr("rounds", int64(arounds))
	asp.End()
	var rejectors []int
	for v, a := range accepts {
		if a == 0 {
			rejectors = append(rejectors, v)
		}
	}
	sort.Ints(rejectors)
	ok := min == 1
	if ok != (len(rejectors) == 0) {
		return nil, fmt.Errorf("cert: aggregated verdict disagrees with local verdicts")
	}
	if tr.Enabled() {
		tr.Count("cert.runs", 1)
		tr.Count("cert.rejections", int64(len(rejectors)))
	}
	return &Verdict{
		Scheme:    scheme,
		OK:        ok,
		Rejectors: rejectors,
		AggRounds: arounds,
	}, nil
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
