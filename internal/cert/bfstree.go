package cert

import (
	"fmt"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// The BFS-tree scheme. Label layout (3 words, same as the spanning scheme):
//
//	[root, parent, dist]
//
// The local predicate at v is the spanning-tree predicate plus the BFS gap
// condition: every incident neighbour's claimed dist differs from v's by at
// most one. Soundness: the spanning predicate makes dist a valid parent
// chain length, so dist(v) ≥ d(root, v); the gap condition gives
// dist(v) ≤ dist(u) + 1 across every edge, so induction along a shortest
// root-v path gives dist(v) ≤ d(root, v). Hence dist is exactly the BFS
// distance and every tree edge joins consecutive levels: the parent
// pointers form a BFS tree. A plain spanning-tree certificate cannot see
// the difference — after a dropped or corrupted announce message, a faulted
// distributed BFS can terminate with a spanning tree that is not breadth-
// first, which this scheme's gap judge rejects at the offending edge.
const bfsWords = 3

// ProveBFSTree transcribes the claimed (parent, dist) arrays into labels.
// The arrays are untrusted run output, not validated here: a malformed
// claim yields labels some local verifier rejects (the judge is a total
// function), which is the point of certifying instead of trusting.
func ProveBFSTree(root int, parent, dist []int) [][]int {
	labels := make([][]int, len(parent))
	for v := range parent {
		labels[v] = []int{root, parent[v], dist[v]}
	}
	return labels
}

// bfsJudge is the local BFS-tree predicate at v.
func bfsJudge(v, n int, nb []int, own []int, got [][]int) bool {
	if !spanningJudge(v, n, nb, own, got, bfsWords) {
		return false
	}
	d := own[2]
	for p := range nb {
		gap := got[p][2] - d
		if gap < -1 || gap > 1 {
			return false
		}
	}
	return true
}

// VerifyBFSTree runs the BFS-tree verifier on an arbitrary (possibly
// adversarial) label assignment.
func VerifyBFSTree(g *graph.Graph, labels [][]int, opt Options) (*Verdict, error) {
	n := g.N()
	judge := func(v int, got [][]int) bool {
		return bfsJudge(v, n, g.Neighbors(v), labels[v], got)
	}
	return certify(g, "bfs", labels, bfsWords, judge,
		dist.Ops{PA: 1, TreeAgg: 1}, opt)
}

// CertifyBFSTree proves and verifies that the claimed (parent, dist)
// arrays describe a BFS tree of g rooted at root.
func CertifyBFSTree(g *graph.Graph, root int, parent, distArr []int, opt Options) (*Verdict, error) {
	if len(parent) != g.N() || len(distArr) != g.N() {
		return nil, fmt.Errorf("cert: %d parents and %d dists for a graph of %d vertices",
			len(parent), len(distArr), g.N())
	}
	return VerifyBFSTree(g, ProveBFSTree(root, parent, distArr), opt)
}

// CheckBFSTree is the centralized oracle: the claim matches an actual BFS
// from root exactly when every dist equals the true distance and every
// non-root parent is a neighbour one level up.
func CheckBFSTree(g *graph.Graph, root int, parent, distArr []int) error {
	t, err := spanning.BFSTree(g, root)
	if err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if distArr[v] != t.Depth[v] {
			return fmt.Errorf("cert: vertex %d claims dist %d, true distance is %d", v, distArr[v], t.Depth[v])
		}
		if v == root {
			if parent[v] != -1 {
				return fmt.Errorf("cert: root %d claims parent %d", v, parent[v])
			}
			continue
		}
		if parent[v] < 0 || parent[v] >= g.N() || !g.HasEdge(v, parent[v]) || distArr[parent[v]] != distArr[v]-1 {
			return fmt.Errorf("cert: vertex %d claims parent %d, not a neighbour one level up", v, parent[v])
		}
	}
	return nil
}
