package cert

import (
	"fmt"
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
)

// The cycle-separator scheme. Label layout (11 words), field indices below:
//
//	[root, parent, depth, pos, side, L, nA, nB, sS, sA, sB]
//
// The first three fields certify a global spanning tree (the scheme reuses
// spanningJudge). pos is the vertex's position on the separator path S
// (-1 off the path), side its class (0 = on S, 1 = side A, 2 = side B),
// L/nA/nB the claimed global sizes of the three classes, and sS/sA/sB the
// per-class counts over the vertex's certified-tree subtree.
//
// Local predicate: the class constants are edge-uniform (hence global by
// connectivity) and locally plausible (L >= 1, L+nA+nB = n, both sides at
// most 2n/3); a path vertex at pos p has neighbours at pos p-1 and p+1
// (unless at an end); no edge joins side A to side B; the subtree counts
// sum correctly from the children's, and at the tree root they equal the
// claimed totals.
//
// Soundness: the certified counts force exactly L vertices onto S; the
// pos-chain conditions make the occupied positions downward- and
// upward-closed in [0, L), so each position is hit exactly once and S is a
// simple path with consecutive vertices adjacent in G. Every component of
// G - S is monochromatic (no A-B edge), so each has at most
// max(nA, nB) <= 2n/3 vertices — the separator balance guarantee of
// Theorem 1. What stays uncertified is the cycle closure through a virtual
// edge (an embedding-compatibility property with no local witness); the
// centralized oracle shares this scope.
const (
	sepFRoot = iota
	sepFParent
	sepFDepth
	sepFPos
	sepFSide
	sepFLen
	sepFCountA
	sepFCountB
	sepFSumS
	sepFSumA
	sepFSumB
	sepWords
)

// SeparatorSides 2-colors the components of g minus the path: components
// are assigned greedily in descending size to the lighter side (1 = A,
// 2 = B; path vertices stay 0). Both sides end at most 2n/3 exactly when
// every component is at most 2n/3, so a balanced separator always admits
// this assignment.
func SeparatorSides(g *graph.Graph, path []int) ([]int, error) {
	n := g.N()
	removed := make(map[int]bool, len(path))
	for _, v := range path {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("cert: separator vertex %d out of range", v)
		}
		removed[v] = true
	}
	comps := g.ComponentsAvoiding(removed)
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	side := make([]int, n)
	cntA, cntB := 0, 0
	for _, comp := range comps {
		s := 1
		if cntA > cntB {
			s = 2
		}
		for _, v := range comp {
			side[v] = s
		}
		if s == 1 {
			cntA += len(comp)
		} else {
			cntB += len(comp)
		}
	}
	if 3*cntA > 2*n || 3*cntB > 2*n {
		return nil, fmt.Errorf("cert: separator is unbalanced (sides %d/%d of %d)", cntA, cntB, n)
	}
	return side, nil
}

// ProveSeparator assigns the separator labels: a BFS spanning tree from
// vertex 0, the path positions, the greedy side assignment, and the
// per-subtree class counts.
func ProveSeparator(g *graph.Graph, sep *separator.Separator) ([][]int, error) {
	n := g.N()
	if len(sep.Path) == 0 {
		return nil, fmt.Errorf("cert: empty separator path")
	}
	pos := make([]int, n)
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range sep.Path {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("cert: separator vertex %d out of range", v)
		}
		if pos[v] != -1 {
			return nil, fmt.Errorf("cert: separator path revisits vertex %d", v)
		}
		pos[v] = i
	}
	side, err := SeparatorSides(g, sep.Path)
	if err != nil {
		return nil, err
	}
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}
	// Subtree class counts, children before parents (descending depth).
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return tree.Depth[order[i]] > tree.Depth[order[j]] })
	sS := make([]int, n)
	sA := make([]int, n)
	sB := make([]int, n)
	for _, v := range order {
		sS[v] += boolToInt(side[v] == 0)
		sA[v] += boolToInt(side[v] == 1)
		sB[v] += boolToInt(side[v] == 2)
		if p := tree.Parent[v]; p >= 0 {
			sS[p] += sS[v]
			sA[p] += sA[v]
			sB[p] += sB[v]
		}
	}
	L := len(sep.Path)
	cntA, cntB := 0, 0
	for _, s := range side {
		switch s {
		case 1:
			cntA++
		case 2:
			cntB++
		}
	}
	labels := make([][]int, n)
	for v := 0; v < n; v++ {
		labels[v] = []int{tree.Root, tree.Parent[v], tree.Depth[v],
			pos[v], side[v], L, cntA, cntB, sS[v], sA[v], sB[v]}
	}
	return labels, nil
}

// sepJudge is the local separator predicate at v.
func sepJudge(v, n int, nb []int, own []int, got [][]int) bool {
	if !spanningJudge(v, n, nb, own, got, sepWords) {
		return false
	}
	pos, side := own[sepFPos], own[sepFSide]
	L, cA, cB := own[sepFLen], own[sepFCountA], own[sepFCountB]
	if side < 0 || side > 2 {
		return false
	}
	if (side == 0) != (pos >= 0) {
		return false
	}
	if side == 0 && pos >= L {
		return false
	}
	if L < 1 || cA < 0 || cB < 0 || L+cA+cB != n {
		return false
	}
	if 3*cA > 2*n || 3*cB > 2*n {
		return false
	}
	needPrev := side == 0 && pos > 0
	needNext := side == 0 && pos < L-1
	sS := boolToInt(side == 0)
	sA := boolToInt(side == 1)
	sB := boolToInt(side == 2)
	for p := range nb {
		o := got[p] // length already checked by spanningJudge
		if o[sepFLen] != L || o[sepFCountA] != cA || o[sepFCountB] != cB {
			return false
		}
		oside, opos := o[sepFSide], o[sepFPos]
		if (side == 1 && oside == 2) || (side == 2 && oside == 1) {
			return false
		}
		if oside == 0 && opos == pos-1 {
			needPrev = false
		}
		if oside == 0 && opos == pos+1 {
			needNext = false
		}
		if o[sepFParent] == v {
			sS += o[sepFSumS]
			sA += o[sepFSumA]
			sB += o[sepFSumB]
		}
	}
	if needPrev || needNext {
		return false
	}
	if own[sepFSumS] != sS || own[sepFSumA] != sA || own[sepFSumB] != sB {
		return false
	}
	if own[sepFParent] == -1 && (sS != L || sA != cA || sB != cB) {
		return false
	}
	return true
}

// VerifySeparator runs the separator verifier on an arbitrary (possibly
// adversarial) label assignment.
func VerifySeparator(g *graph.Graph, labels [][]int, opt Options) (*Verdict, error) {
	n := g.N()
	judge := func(v int, got [][]int) bool {
		return sepJudge(v, n, g.Neighbors(v), labels[v], got)
	}
	return certify(g, "separator", labels, sepWords, judge,
		dist.SpanningForestOps(n).Plus(dist.Ops{PA: 2, TreeAgg: 3}), opt)
}

// CertifySeparator proves and verifies the separator property of sep: its
// path is simple with consecutive vertices adjacent in g, and removing it
// leaves components of at most 2n/3 vertices.
func CertifySeparator(g *graph.Graph, sep *separator.Separator, opt Options) (*Verdict, error) {
	labels, err := ProveSeparator(g, sep)
	if err != nil {
		return nil, err
	}
	return VerifySeparator(g, labels, opt)
}

// CheckSeparator is the centralized oracle for the certified separator
// property: simple path, G-adjacent consecutive vertices, endpoints
// matching the path ends, and balance at most 2n/3.
func CheckSeparator(g *graph.Graph, sep *separator.Separator) error {
	n := g.N()
	if len(sep.Path) == 0 {
		return fmt.Errorf("cert: empty separator path")
	}
	seen := make(map[int]bool, len(sep.Path))
	for _, v := range sep.Path {
		if v < 0 || v >= n {
			return fmt.Errorf("cert: separator vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("cert: separator path revisits vertex %d", v)
		}
		seen[v] = true
	}
	for i := 0; i+1 < len(sep.Path); i++ {
		if !g.HasEdge(sep.Path[i], sep.Path[i+1]) {
			return fmt.Errorf("cert: separator step {%d,%d} is not a graph edge",
				sep.Path[i], sep.Path[i+1])
		}
	}
	if sep.EndA != sep.Path[0] || sep.EndB != sep.Path[len(sep.Path)-1] {
		return fmt.Errorf("cert: endpoints (%d,%d) do not match path ends (%d,%d)",
			sep.EndA, sep.EndB, sep.Path[0], sep.Path[len(sep.Path)-1])
	}
	if maxComp := separator.VerifyBalance(g, sep.Path); 3*maxComp > 2*n {
		return fmt.Errorf("cert: largest component after removal is %d > 2n/3 (n=%d)", maxComp, n)
	}
	return nil
}

// CheckSeparatorSides is the centralized oracle for a side assignment:
// class 0 exactly on the path, no A-B edge, both sides at most 2n/3.
func CheckSeparatorSides(g *graph.Graph, path []int, side []int) error {
	n := g.N()
	if len(side) != n {
		return fmt.Errorf("cert: side assignment over %d vertices for a graph of %d", len(side), n)
	}
	onPath := make([]bool, n)
	for _, v := range path {
		if v < 0 || v >= n {
			return fmt.Errorf("cert: separator vertex %d out of range", v)
		}
		onPath[v] = true
	}
	cntA, cntB := 0, 0
	for v, s := range side {
		switch {
		case s < 0 || s > 2:
			return fmt.Errorf("cert: vertex %d has invalid side %d", v, s)
		case (s == 0) != onPath[v]:
			return fmt.Errorf("cert: vertex %d has side %d but onPath=%v", v, s, onPath[v])
		case s == 1:
			cntA++
		case s == 2:
			cntB++
		}
	}
	if 3*cntA > 2*n || 3*cntB > 2*n {
		return fmt.Errorf("cert: sides %d/%d exceed 2n/3 (n=%d)", cntA, cntB, n)
	}
	for _, e := range g.Edges() {
		if (side[e.U] == 1 && side[e.V] == 2) || (side[e.U] == 2 && side[e.V] == 1) {
			return fmt.Errorf("cert: edge {%d,%d} crosses the separator sides", e.U, e.V)
		}
	}
	return nil
}
