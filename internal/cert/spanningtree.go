package cert

import (
	"fmt"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// The rooted-spanning-tree scheme. Label layout (3 words):
//
//	[root, parent, depth]
//
// parent is -1 at the root. The local predicate at v: the root identifier
// is uniform across every incident edge, the parent is a neighbour whose
// claimed depth is exactly depth-1, and a vertex claiming parent -1 must be
// the uniform root itself with depth 0. Soundness: depths strictly decrease
// along parent pointers, so every parent chain is acyclic and ends at a
// depth-0 vertex, which must be the (edge-uniform, hence by connectivity
// globally unique) root; the parent pointers therefore form one spanning
// tree rooted there.
const spanningWords = 3

// ProveSpanningTree assigns the spanning-tree labels of t.
func ProveSpanningTree(t *spanning.Tree) [][]int {
	labels := make([][]int, t.N())
	for v := 0; v < t.N(); v++ {
		labels[v] = []int{t.Root, t.Parent[v], t.Depth[v]}
	}
	return labels
}

// spanningJudge is the local spanning-tree predicate at v. The separator
// scheme reuses it: its labels carry the same three fields first, so words
// parameterizes the expected label width.
func spanningJudge(v, n int, nb []int, own []int, got [][]int, words int) bool {
	root, par, depth := own[0], own[1], own[2]
	if root < 0 || root >= n || depth < 0 || depth >= n {
		return false
	}
	if par == -1 {
		if root != v || depth != 0 {
			return false
		}
	} else if depth < 1 {
		return false
	}
	parSeen := par == -1
	for p := range nb {
		o := got[p]
		if len(o) != words {
			return false
		}
		if o[0] != root {
			return false
		}
		if nb[p] == par {
			parSeen = true
			if o[2] != depth-1 {
				return false
			}
		}
	}
	return parSeen
}

// VerifySpanningTree runs the spanning-tree verifier on an arbitrary
// (possibly adversarial) label assignment.
func VerifySpanningTree(g *graph.Graph, labels [][]int, opt Options) (*Verdict, error) {
	n := g.N()
	judge := func(v int, got [][]int) bool {
		return spanningJudge(v, n, g.Neighbors(v), labels[v], got, spanningWords)
	}
	return certify(g, "spanning", labels, spanningWords, judge,
		dist.Ops{PA: 1, TreeAgg: 1}, opt)
}

// CertifySpanningTree proves and verifies that t is a rooted spanning tree
// of g.
func CertifySpanningTree(g *graph.Graph, t *spanning.Tree, opt Options) (*Verdict, error) {
	if t.N() != g.N() {
		return nil, fmt.Errorf("cert: tree over %d vertices for a graph of %d", t.N(), g.N())
	}
	return VerifySpanningTree(g, ProveSpanningTree(t), opt)
}

// CheckSpanningTree is the centralized oracle: t is a spanning tree of g
// exactly when every tree edge is a graph edge (the tree-shape invariants
// are enforced by the spanning package's constructors).
func CheckSpanningTree(g *graph.Graph, t *spanning.Tree) error {
	if t.N() != g.N() {
		return fmt.Errorf("cert: tree over %d vertices for a graph of %d", t.N(), g.N())
	}
	for v, p := range t.Parent {
		if v == t.Root {
			if p != -1 {
				return fmt.Errorf("cert: root %d has parent %d", v, p)
			}
			continue
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("cert: tree edge {%d,%d} is not a graph edge", v, p)
		}
	}
	return nil
}
