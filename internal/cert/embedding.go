package cert

import (
	"fmt"

	"planardfs/internal/congest"
	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/planar"
	"planardfs/internal/trace"
)

// The embedding-sanity scheme. Label layout (2 words):
//
//	[deg, fLed]
//
// deg is the vertex's claimed degree, fLed the number of faces it leads — a
// vertex leads a face when it is the tail of the face's minimum dart, so
// every face has exactly one leader and a vertex leads at most deg faces.
//
// The local predicate checks degree honesty (the verifier compares the
// claim against its own port count) and the leader bound; the global check
// aggregates the per-vertex Euler contributions 2 - deg + 2*fLed with one
// part-wise sum: the total is 2V - 2E + 2F, which equals 4 exactly when the
// claimed face count satisfies Euler's formula V - E + F = 2 — a genus-0
// (planar) rotation system. The sum is broadcast by the aggregation, so on
// mismatch every vertex rejects.
const embWords = 2

// ProveEmbedding assigns the embedding labels: actual degrees and
// face-leader counts from the traced faces of emb.
func ProveEmbedding(emb *planar.Embedding) [][]int {
	g := emb.Graph()
	fs := emb.TraceFaces()
	fLed := make([]int, g.N())
	for f := 0; f < fs.Count(); f++ {
		cyc := fs.Cycle(f)
		min := cyc[0]
		for _, d := range cyc {
			if d < min {
				min = d
			}
		}
		fLed[planar.Tail(g, int(min))]++
	}
	labels := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		labels[v] = []int{g.Degree(v), fLed[v]}
	}
	return labels
}

// VerifyEmbedding runs the embedding verifier on an arbitrary (possibly
// adversarial) label assignment. The graph must have at least one edge
// (dart-traced faces are undefined on an edgeless graph).
func VerifyEmbedding(g *graph.Graph, labels [][]int, opt Options) (*Verdict, error) {
	n := g.N()
	if g.M() == 0 {
		return nil, fmt.Errorf("cert: embedding certification needs at least one edge")
	}
	if err := validateLabels(n, labels, embWords); err != nil {
		return nil, err
	}
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "cert.embedding")
	defer sp.End()
	proverRounds, err := chargeProver(g, tr, dist.Ops{PA: 1, TreeAgg: 3}, embWords)
	if err != nil {
		return nil, err
	}
	judge := func(v int, got [][]int) bool {
		deg, fl := labels[v][0], labels[v][1]
		if deg != g.Degree(v) {
			return false
		}
		if fl < 0 || fl > deg {
			return false
		}
		for p := range got {
			if len(got[p]) != embWords {
				return false
			}
		}
		return true
	}
	vsp := tr.StartSpan(trace.LayerCert, "cert.verify")
	accepts, vrounds, stats, err := runExchange(g, labels, embWords, judge, opt)
	if err != nil {
		vsp.End()
		return nil, err
	}
	vsp.SetAttr("rounds", int64(vrounds))
	vsp.End()

	// Aggregate the Euler contributions; the part-wise sum delivers the
	// total to every vertex, which folds it into its accept bit.
	contrib := make([]int, n)
	for v := 0; v < n; v++ {
		contrib[v] = 2 - labels[v][0] + 2*labels[v][1]
	}
	esp := tr.StartSpan(trace.LayerCert, "cert.euler-sum")
	eulerSum, srounds, err := aggregate(g, contrib, congest.OpSum, opt)
	if err != nil {
		esp.End()
		return nil, err
	}
	esp.SetAttr("rounds", int64(srounds))
	esp.SetAttr("sum", int64(eulerSum))
	esp.End()
	if eulerSum != 4 {
		for v := range accepts {
			accepts[v] = 0
		}
	}
	verdict, err := finishVerdict(g, "embedding", accepts, opt, tr)
	if err != nil {
		return nil, err
	}
	verdict.LabelWords = embWords
	verdict.ProverRounds = proverRounds
	verdict.VerifierRounds = vrounds
	verdict.AggRounds += srounds
	verdict.EulerSum = eulerSum
	verdict.Stats = stats
	sp.SetAttr("ok", boolAttr(verdict.OK))
	sp.SetAttr("rejectors", int64(len(verdict.Rejectors)))
	return verdict, nil
}

// CertifyEmbedding proves and verifies the Euler sanity of emb.
func CertifyEmbedding(emb *planar.Embedding, opt Options) (*Verdict, error) {
	return VerifyEmbedding(emb.Graph(), ProveEmbedding(emb), opt)
}

// CheckEmbedding is the centralized oracle: the embedding's own validation
// (connectivity plus genus 0).
func CheckEmbedding(emb *planar.Embedding) error {
	return emb.Validate()
}
