package cert_test

import (
	"reflect"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

func instance(t *testing.T, family string, n int) *gen.Instance {
	t.Helper()
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// findSeparator runs the real Theorem 1 driver on the instance with a BFS
// tree rooted on the outer face.
func findSeparator(t *testing.T, in *gen.Instance) *separator.Separator {
	t.Helper()
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tr, err := spanning.BFSTree(in.G, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := separator.Find(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sep
}

func wantOK(t *testing.T, v *cert.Verdict, err error, name string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !v.OK || len(v.Rejectors) != 0 {
		t.Fatalf("%s: verdict not OK, rejectors %v", name, v.Rejectors)
	}
	if v.VerifierRounds > 3 {
		t.Fatalf("%s: verifier took %d rounds, want O(1) <= 3", name, v.VerifierRounds)
	}
	if v.ProverRounds <= 0 || v.AggRounds <= 0 {
		t.Fatalf("%s: missing round accounting: prover %d, agg %d",
			name, v.ProverRounds, v.AggRounds)
	}
}

// TestCertifyAllFamilies certifies all four schemes on correct structures
// from every generator family, cross-checked against the centralized
// oracles.
func TestCertifyAllFamilies(t *testing.T) {
	for _, fam := range gen.Families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			in := instance(t, fam, 24)
			g := in.G
			opt := cert.Options{}

			st, err := spanning.BFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			v, err := cert.CertifySpanningTree(g, st, opt)
			wantOK(t, v, err, "spanning")
			if err := cert.CheckSpanningTree(g, st); err != nil {
				t.Fatalf("spanning oracle: %v", err)
			}

			dt, err := spanning.DeepDFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			v, err = cert.CertifyDFSTree(g, 0, dt.Parent, opt)
			wantOK(t, v, err, "dfs")
			if err := cert.CheckDFSTree(g, 0, dt.Parent); err != nil {
				t.Fatalf("dfs oracle: %v", err)
			}

			sep := findSeparator(t, in)
			v, err = cert.CertifySeparator(g, sep, opt)
			wantOK(t, v, err, "separator")
			if err := cert.CheckSeparator(g, sep); err != nil {
				t.Fatalf("separator oracle: %v", err)
			}

			v, err = cert.CertifyEmbedding(in.Emb, opt)
			wantOK(t, v, err, "embedding")
			if v.EulerSum != 4 {
				t.Fatalf("embedding: Euler sum %d, want 4", v.EulerSum)
			}
			if err := cert.CheckEmbedding(in.Emb); err != nil {
				t.Fatalf("embedding oracle: %v", err)
			}
		})
	}
}

// TestEngineEquivalence asserts the PR2 contract extends to certification:
// verdicts (including network stats) are identical under the sequential
// engine and the sharded engine at any worker count — on accepting runs and
// on rejecting ones.
func TestEngineEquivalence(t *testing.T) {
	for _, fam := range []string{"grid", "stacked", "tree"} {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			in := instance(t, fam, 30)
			sep := findSeparator(t, in)
			labels, err := cert.ProveSeparator(in.G, sep)
			if err != nil {
				t.Fatal(err)
			}
			// One accepting and one rejecting input.
			bad := make([][]int, len(labels))
			for v := range labels {
				bad[v] = append([]int(nil), labels[v]...)
			}
			bad[len(bad)-1][0]++ // corrupt one root-id field
			for _, lbs := range [][][]int{labels, bad} {
				base, err := cert.VerifySeparator(in.G, lbs, cert.Options{Sequential: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, opt := range []cert.Options{{}, {Workers: 1}, {Workers: 3}} {
					got, err := cert.VerifySeparator(in.G, lbs, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, got) {
						t.Fatalf("engine mismatch (opt %+v):\nseq: %+v\ngot: %+v", opt, base, got)
					}
				}
			}
		})
	}
}

// TestVerifierRoundsConstant pins the O(1) verification claim: the label
// exchange takes the same constant round count regardless of n.
func TestVerifierRoundsConstant(t *testing.T) {
	var rounds []int
	for _, n := range []int{16, 64, 144} {
		in := instance(t, "grid", n)
		st, err := spanning.BFSTree(in.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		v, err := cert.CertifySpanningTree(in.G, st, cert.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, v.VerifierRounds)
	}
	for _, r := range rounds {
		if r != rounds[0] || r > 3 {
			t.Fatalf("verifier rounds not constant: %v", rounds)
		}
	}
}

// TestCertTracing asserts the cert layer lands in the trace: a scheme span
// with prove/verify/aggregate children, and a clock advanced by exactly the
// prover charge plus the simulated network rounds.
func TestCertTracing(t *testing.T) {
	in := instance(t, "grid", 25)
	st, err := spanning.BFSTree(in.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	v, err := cert.CertifySpanningTree(in.G, st, cert.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatal("verdict not OK")
	}
	names := map[string]int{}
	for _, sp := range rec.Spans() {
		if sp.Layer == trace.LayerCert {
			names[sp.Name]++
		}
	}
	for _, want := range []string{"cert.spanning", "cert.prove", "cert.verify", "cert.aggregate"} {
		if names[want] == 0 {
			t.Fatalf("missing cert span %q in %v", want, names)
		}
	}
	wantClock := int64(v.ProverRounds + v.VerifierRounds + v.AggRounds)
	if rec.Now() != wantClock {
		t.Fatalf("round clock at %d, want prover+verify+agg = %d", rec.Now(), wantClock)
	}
}
