package separator

import (
	"math"
	"testing"

	"planardfs/internal/gen"
)

func TestDecomposeInvariants(t *testing.T) {
	in, err := gen.StackedTriangulation(300, 13)
	if err != nil {
		t.Fatal(err)
	}
	const leaf = 12
	d, err := Decompose(in.Emb, in.OuterDart, leaf)
	if err != nil {
		t.Fatal(err)
	}
	n := in.G.N()
	// Every vertex appears exactly once among leaves + separators.
	count := make([]int, n)
	d.Walk(func(node *DecompositionNode) {
		for _, v := range node.Separator {
			count[v]++
		}
		if len(node.Children) == 0 && node.Separator == nil {
			for _, v := range node.Vertices {
				count[v]++
			}
		}
		// Children partition the piece minus the separator.
		if node.Separator != nil {
			total := len(node.Separator)
			for _, c := range node.Children {
				total += len(c.Vertices)
				// Balance: each child <= 2/3 of the piece.
				if 3*len(c.Vertices) > 2*len(node.Vertices) {
					t.Fatalf("child of size %d from piece %d", len(c.Vertices), len(node.Vertices))
				}
			}
			if total != len(node.Vertices) {
				t.Fatalf("piece %d split into %d", len(node.Vertices), total)
			}
		}
		// Leaf size respected.
		if len(node.Children) == 0 && len(node.Vertices) > leaf {
			t.Fatalf("oversized leaf: %d", len(node.Vertices))
		}
	})
	for v, c := range count {
		if c != 1 {
			t.Fatalf("vertex %d appears %d times", v, c)
		}
	}
	// Depth O(log n).
	bound := int(math.Ceil(math.Log(float64(n))/math.Log(1.5))) + 2
	if d.MaxDepth > bound {
		t.Fatalf("depth %d exceeds bound %d", d.MaxDepth, bound)
	}
	if d.Leaves == 0 || d.SeparatorMass == 0 {
		t.Fatal("stats not populated")
	}
}

func TestDecomposeErrors(t *testing.T) {
	in, err := gen.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(in.Emb, in.OuterDart, 0); err == nil {
		t.Fatal("leaf size 0 accepted")
	}
}

func TestDecomposeWholeGraphLeaf(t *testing.T) {
	in, err := gen.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(in.Emb, in.OuterDart, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves != 1 || d.MaxDepth != 0 || d.SeparatorMass != 0 {
		t.Fatalf("trivial decomposition wrong: %+v", d)
	}
}
