package separator

import (
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// buildConfig makes a configuration over the instance with the given tree
// kind ("bfs" or "dfs"), rooted on the outer face.
func buildConfig(t *testing.T, in *gen.Instance, kind string) *weights.Config {
	t.Helper()
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	var tr *spanning.Tree
	var err error
	if kind == "bfs" {
		tr, err = spanning.BFSTree(in.G, root)
	} else {
		tr, err = spanning.DeepDFSTree(in.G, root)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// checkSeparator validates the Theorem 1 guarantees on a result.
func checkSeparator(t *testing.T, cfg *weights.Config, sep *Separator, name string) {
	t.Helper()
	n := cfg.G.N()
	if len(sep.Path) == 0 {
		t.Fatalf("%s: empty separator", name)
	}
	if !IsTPath(cfg, sep) {
		t.Fatalf("%s: separator is not the T-path between its endpoints (phase %v)", name, sep.Phase)
	}
	if maxComp := VerifyBalance(cfg.G, sep.Path); 3*maxComp > 2*n {
		t.Fatalf("%s: unbalanced separator: max component %d of n=%d (phase %v, path len %d)",
			name, maxComp, n, sep.Phase, len(sep.Path))
	}
	if sep.Phase == PhaseExhaustive {
		t.Errorf("%s: exhaustive fallback triggered", name)
	}
}

func allInstances(t *testing.T) []*gen.Instance {
	t.Helper()
	var out []*gen.Instance
	add := func(in *gen.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	add(gen.Grid(5, 5))
	add(gen.Grid(9, 3))
	add(gen.Wheel(11))
	add(gen.Fan(12))
	add(gen.Cycle(12))
	for seed := int64(1); seed <= 12; seed++ {
		add(gen.StackedTriangulation(30+int(seed), seed))
		add(gen.PolygonTriangulation(20+int(seed), seed))
		add(gen.SparsePlanar(28, 0.6, seed))
		add(gen.SparsePlanar(28, 0.95, seed))
		add(gen.RandomTree(25, seed))
	}
	return out
}

// TestFindBalancedEverywhere is the core Theorem 1 validation: on every
// family, seed and tree kind, the algorithm returns a balanced T-path cycle
// separator without the exhaustive fallback.
func TestFindBalancedEverywhere(t *testing.T) {
	phases := map[Phase]int{}
	for _, in := range allInstances(t) {
		for _, kind := range []string{"bfs", "dfs"} {
			cfg := buildConfig(t, in, kind)
			sep, err := Find(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", in.Name, kind, err)
			}
			checkSeparator(t, cfg, sep, in.Name+"/"+kind)
			phases[sep.Phase]++
		}
	}
	t.Logf("phase distribution: %v", phases)
}

// TestCycleClosable verifies the "cycle" part of the cycle separator: the
// endpoints of the separator path are equal, adjacent in G, or joined by an
// ℰ-compatible virtual edge (checked geometrically on small instances).
func TestCycleClosable(t *testing.T) {
	var smalls []*gen.Instance
	add := func(in *gen.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		smalls = append(smalls, in)
	}
	add(gen.Grid(4, 4))
	add(gen.Wheel(8))
	for seed := int64(1); seed <= 6; seed++ {
		add(gen.StackedTriangulation(16, seed))
		add(gen.SparsePlanar(18, 0.7, seed))
	}
	for _, in := range smalls {
		for _, kind := range []string{"bfs", "dfs"} {
			cfg := buildConfig(t, in, kind)
			sep, err := Find(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkSeparator(t, cfg, sep, in.Name)
			if sep.EndA == sep.EndB || cfg.G.HasEdge(sep.EndA, sep.EndB) {
				continue
			}
			if !cfg.Emb.ECompatible(sep.EndA, sep.EndB) {
				t.Errorf("%s/%s: endpoints %d,%d not virtually connectable (phase %v)",
					in.Name, kind, sep.EndA, sep.EndB, sep.Phase)
			}
		}
	}
}

func TestTreePhase(t *testing.T) {
	in, err := gen.RandomTree(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildConfig(t, in, "bfs")
	sep, err := Find(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sep.Phase != PhaseTree {
		t.Fatalf("tree separator used phase %v", sep.Phase)
	}
	checkSeparator(t, cfg, sep, "tree")
}

func TestSingleAndTinyGraphs(t *testing.T) {
	one, err := gen.PathTree(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := spanning.BFSTree(one.G, 0)
	cfg, err := weights.NewConfig(one.G, one.Emb, 0, tr)
	_ = cfg
	// A single vertex has no darts; NewConfig over it is exercised through
	// ForSubset instead.
	if err == nil {
		sep, err := Find(cfg)
		if err != nil || len(sep.Path) != 1 {
			t.Fatalf("single vertex: %v %+v", err, sep)
		}
	}

	two, err := gen.PathTree(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := buildConfig(t, two, "bfs")
	sep, err := Find(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeparator(t, cfg2, sep, "path-2")
}

func TestForPartitionStripes(t *testing.T) {
	in, err := gen.Grid(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	for y := 0; y < 6; y++ {
		for x := 0; x < 12; x++ {
			partOf[y*12+x] = x / 3
		}
	}
	part, err := shortcut.NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ForPartition(in.Emb, in.OuterDart, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		// Balance within the induced subgraph.
		sub, orig, err := in.G.InducedSubgraph(part.Parts[r.Part])
		if err != nil {
			t.Fatal(err)
		}
		subOf := map[int]int{}
		for i, v := range orig {
			subOf[v] = i
		}
		subSep := make([]int, len(r.Sep.Path))
		for i, v := range r.Sep.Path {
			sv, ok := subOf[v]
			if !ok {
				t.Fatalf("part %d: separator vertex %d outside part", r.Part, v)
			}
			subSep[i] = sv
		}
		if maxComp := VerifyBalance(sub, subSep); 3*maxComp > 2*r.SubN {
			t.Fatalf("part %d: max component %d of %d", r.Part, maxComp, r.SubN)
		}
	}
}

func TestForSubsetSingleVertex(t *testing.T) {
	in, err := gen.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := ForSubset(in.Emb, in.OuterFace(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sep.Path) != 1 || sep.Path[0] != 4 {
		t.Fatalf("separator = %+v", sep)
	}
}

func TestForSubsetDisconnected(t *testing.T) {
	in, err := gen.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForSubset(in.Emb, in.OuterFace(), []int{0, 15}); err == nil {
		t.Fatal("disconnected subset accepted")
	}
}

func TestBFSLevelSeparatorBalance(t *testing.T) {
	for _, mk := range []func() (*gen.Instance, error){
		func() (*gen.Instance, error) { return gen.Grid(8, 8) },
		func() (*gen.Instance, error) { return gen.StackedTriangulation(60, 2) },
	} {
		in, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		sep := BFSLevelSeparator(in.G, 0)
		if len(sep) == 0 {
			t.Fatal("empty level separator")
		}
		if maxComp := VerifyBalance(in.G, sep); 2*maxComp > in.G.N() {
			t.Fatalf("%s: level separator unbalanced: %d of %d", in.Name, maxComp, in.G.N())
		}
	}
}

func TestPhaseString(t *testing.T) {
	for p := PhaseTree; p <= PhaseExhaustive; p++ {
		if p.String() == "" {
			t.Fatal("empty phase name")
		}
	}
	if Phase(99).String() != "phase(99)" {
		t.Fatal("unknown phase formatting")
	}
}

// TestAblationOptionsRespected checks that each ablation switch actually
// changes behaviour where its phase would fire, while the safety net keeps
// results balanced.
func TestAblationOptionsRespected(t *testing.T) {
	in, err := gen.Grid(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildConfig(t, in, "dfs")
	full, err := Find(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := in.G.N()
	if 3*VerifyBalance(in.G, full.Path) > 2*n {
		t.Fatal("full algorithm unbalanced")
	}
	for _, opt := range []Options{
		{DisableLongPath: true},
		{DisableHiddenFallback: true},
		{DisableAugmentation: true},
		{DisableVirtualSweep: true},
	} {
		sep, err := FindWithOptions(cfg, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if 3*VerifyBalance(in.G, sep.Path) > 2*n {
			t.Fatalf("%+v: ablated run unbalanced (safety net failed)", opt)
		}
	}
	// The long-path phase fires on deep-DFS grids; disabling it must change
	// the phase.
	if full.Phase == PhaseLongPath {
		sep, err := FindWithOptions(cfg, Options{DisableLongPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if sep.Phase == PhaseLongPath {
			t.Fatal("DisableLongPath did not disable the long-path phase")
		}
	}
}
