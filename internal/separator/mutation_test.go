package separator_test

// Randomized mutation/property tests: corrupt a separator returned by the
// Theorem 1 driver — drop a cycle vertex, duplicate one, detach an
// endpoint, flip a side assignment — and assert the centralized
// certification oracles reject the result. (The external test package
// avoids an import cycle: internal/cert imports internal/separator.)

import (
	"math/rand"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// findOn runs the separator driver on one generated instance.
func findOn(t *testing.T, family string, n int, seed int64) (*graph.Graph, *separator.Separator) {
	t.Helper()
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tr, err := spanning.BFSTree(in.G, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := separator.Find(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in.G, sep
}

func mutated(sep *separator.Separator, path []int) *separator.Separator {
	return &separator.Separator{Path: path, EndA: sep.EndA, EndB: sep.EndB, Phase: sep.Phase}
}

func TestMutatedSeparatorsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, family := range []string{"grid", "stacked", "sparse", "polygon", "wheel"} {
		family := family
		t.Run(family, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				g, sep := findOn(t, family, 20+4*trial, int64(trial+1))
				if err := cert.CheckSeparator(g, sep); err != nil {
					t.Fatalf("driver separator rejected: %v", err)
				}
				path := sep.Path

				// Detach the EndA endpoint.
				if len(path) >= 2 {
					bad := mutated(sep, append([]int(nil), path[1:]...))
					if err := cert.CheckSeparator(g, bad); err == nil {
						t.Fatalf("dropped EndA accepted (path %v)", bad.Path)
					}
				}

				// Drop a random interior vertex; when the hole is not
				// bridged by a chord the path breaks and must be rejected.
				if len(path) >= 3 {
					i := 1 + rng.Intn(len(path)-2)
					if !g.HasEdge(path[i-1], path[i+1]) {
						bad := append([]int(nil), path[:i]...)
						bad = append(bad, path[i+1:]...)
						if err := cert.CheckSeparator(g, mutated(sep, bad)); err == nil {
							t.Fatalf("dropped interior vertex %d accepted", path[i])
						}
					}
				}

				// Duplicate a random path vertex at the end.
				dup := append(append([]int(nil), path...), path[rng.Intn(len(path))])
				if err := cert.CheckSeparator(g, mutated(sep, dup)); err == nil {
					t.Fatal("duplicated vertex accepted")
				}

				// Claim a wrong endpoint.
				if len(path) >= 2 {
					bad := mutated(sep, path)
					bad.EndA = path[len(path)-1]
					bad.EndB = path[0]
					if err := cert.CheckSeparator(g, bad); err == nil {
						t.Fatal("swapped endpoints accepted")
					}
				}

				// Flip the side of a vertex that has a same-side neighbour:
				// the flip creates a crossing edge the oracle must catch.
				side, err := cert.SeparatorSides(g, path)
				if err != nil {
					t.Fatalf("side assignment: %v", err)
				}
				if err := cert.CheckSeparatorSides(g, path, side); err != nil {
					t.Fatalf("honest sides rejected: %v", err)
				}
				flip := -1
				for _, v := range rng.Perm(g.N()) {
					if side[v] == 0 {
						continue
					}
					for _, w := range g.Neighbors(v) {
						if side[w] == side[v] {
							flip = v
							break
						}
					}
					if flip >= 0 {
						break
					}
				}
				if flip >= 0 {
					bad := append([]int(nil), side...)
					bad[flip] = 3 - bad[flip]
					if err := cert.CheckSeparatorSides(g, path, bad); err == nil {
						t.Fatalf("flipped side of %d accepted", flip)
					}
				}
			}
		})
	}
}
