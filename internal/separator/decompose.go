package separator

import (
	"fmt"
	"sort"

	"planardfs/internal/planar"
)

// DecompositionNode is one node of a separator decomposition tree: a piece
// of the graph, the cycle separator that split it (empty at leaves), and
// its children (the components after removing the separator).
type DecompositionNode struct {
	// Vertices of the piece, ascending.
	Vertices []int
	// Separator vertices removed at this node (nil at leaf pieces).
	Separator []int
	// Phase of the separator computation (leaves: 0).
	Phase Phase
	// Children pieces.
	Children []*DecompositionNode
	// Depth in the decomposition tree (root: 0).
	Depth int
}

// Decomposition is a full recursive separator decomposition of an embedded
// planar graph — the divide-and-conquer skeleton behind the classical
// separator applications (Lipton–Tarjan) and the paper's DFS recursion.
type Decomposition struct {
	Root *DecompositionNode
	// MaxDepth of the tree; O(log n) by the 2/3 balance.
	MaxDepth int
	// SeparatorMass is the total number of separator vertices over all
	// internal nodes.
	SeparatorMass int
	// Leaves counts the leaf pieces.
	Leaves int
}

// Decompose recursively splits the embedded graph with cycle separators
// until pieces have at most leafSize vertices.
func Decompose(emb *planar.Embedding, outerDart, leafSize int) (*Decomposition, error) {
	g := emb.Graph()
	if leafSize < 1 {
		return nil, fmt.Errorf("separator: leaf size %d < 1", leafSize)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("separator: graph is not connected")
	}
	outerFace := emb.OuterFaceOf(outerDart)
	d := &Decomposition{}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	var build func(vs []int, depth int) (*DecompositionNode, error)
	build = func(vs []int, depth int) (*DecompositionNode, error) {
		node := &DecompositionNode{Vertices: vs, Depth: depth}
		if depth > d.MaxDepth {
			d.MaxDepth = depth
		}
		if len(vs) <= leafSize {
			d.Leaves++
			return node, nil
		}
		sep, err := ForSubset(emb, outerFace, vs)
		if err != nil {
			return nil, fmt.Errorf("depth %d piece of %d: %w", depth, len(vs), err)
		}
		node.Separator = sep.Path
		node.Phase = sep.Phase
		d.SeparatorMass += len(sep.Path)
		removed := make(map[int]bool, len(sep.Path))
		for _, v := range sep.Path {
			removed[v] = true
		}
		inPiece := make(map[int]bool, len(vs))
		for _, v := range vs {
			inPiece[v] = true
		}
		seen := map[int]bool{}
		for _, v := range vs {
			if removed[v] || seen[v] {
				continue
			}
			var comp []int
			queue := []int{v}
			seen[v] = true
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				comp = append(comp, x)
				for _, w := range g.Neighbors(x) {
					if inPiece[w] && !removed[w] && !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
			sort.Ints(comp)
			child, err := build(comp, depth+1)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		return node, nil
	}
	root, err := build(all, 0)
	if err != nil {
		return nil, err
	}
	d.Root = root
	return d, nil
}

// Walk visits every node of the decomposition tree in preorder.
func (d *Decomposition) Walk(fn func(*DecompositionNode)) {
	var rec func(n *DecompositionNode)
	rec = func(n *DecompositionNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(d.Root)
}
