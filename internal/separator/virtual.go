package separator

import (
	"fmt"
	"sort"

	"planardfs/internal/weights"
)

// phase5Virtual implements the heavy-outside fallback of Lemma 8: every
// real fundamental face is light and the outside of the chosen outermost
// face exceeds 2n/3, so a virtual edge from the root wraps part of the
// graph into a face whose weight is either directly in range (the paper's
// |F_r| ∈ [n/3, 2n/3] case, giving the root-to-endpoint path) or heavy
// (> 2n/3), in which case Phase 4's augmentation logic runs inside the
// extended configuration.
//
// Implementation deviation (documented in DESIGN.md): instead of the
// paper's single extreme-leaf pick — which is under-specified about which
// side of the virtual root r0 the new face falls on — the algorithm sweeps
// the candidates x that are ℰ-compatible with the root (the vertices on the
// root's incident faces), ordered by how close their LEFT-order position is
// to n/2. Each candidate is evaluated by actually inserting the virtual
// edge into the embedding (the operation the paper simulates in messages);
// the sweep stops at the first candidate whose face weight is in range or
// whose heavy face yields a balanced Phase 4 separator. Weights of
// candidate faces are deterministic, so the sweep is deterministic, and in
// the distributed accounting it is one RANGE-PROBLEM over locally
// computable weights (each candidate shares a face with the root and can
// evaluate its virtual-face weight from broadcast root data).
func phase5Virtual(cfg *weights.Config, ec weights.EdgeCase, n int, opt Options) (*Separator, error) {
	inRange := func(x int) bool { return 3*x >= n && 3*x <= 2*n }
	root := cfg.Tree.Root

	cands := rootFaceCandidates(cfg)
	if opt.DisableVirtualSweep {
		cands = extremeLeafCandidates(cfg, ec)
	}
	const maxTries = 96
	tries := 0
	var best *Separator
	for _, x := range cands {
		if tries >= maxTries {
			break
		}
		for _, ins := range cfg.Emb.FaceInsertions(root, x) {
			if tries >= maxTries {
				break
			}
			tries++
			ng, nemb, err := cfg.Emb.InsertEdge(ins)
			if err != nil || nemb.Genus() != 0 {
				continue
			}
			ncfg, err := weights.NewConfig(ng, nemb, cfg.RootAnchor(), cfg.Tree)
			if err != nil {
				continue
			}
			id, ok := ng.EdgeID(root, x)
			if !ok {
				continue
			}
			// Lemma 1, condition 3: the root-to-x path is long enough on
			// its own, and x is compatible with the root (they share a
			// face).
			if !opt.DisableLongPath && 3*(cfg.Tree.Depth[x]+1) >= n {
				path, perr := cfg.Tree.PathUp(x, root)
				if perr != nil {
					return nil, perr
				}
				return &Separator{
					Path:  path,
					EndA:  x,
					EndB:  root,
					Phase: PhaseLongPath,
				}, nil
			}
			nw := ncfg.Weight(id)
			nec := ncfg.Classify(id)
			if inRange(nw) {
				sep := &Separator{
					Path:  cfg.Tree.TPath(nec.U, nec.V),
					EndA:  nec.U,
					EndB:  nec.V,
					Phase: PhaseSparseVirtual,
				}
				if 3*VerifyBalance(cfg.G, sep.Path) <= 2*n {
					return sep, nil
				}
				if best == nil {
					best = sep
				}
				continue
			}
			if 3*nw > 2*n {
				// Speculative inner runs of the sweep are not charged; the
				// caller charges the whole fallback once (Lemma 8).
				sep, err := phase4(ncfg, nec, n, opt, nil)
				if err != nil {
					continue
				}
				sep.Phase = PhaseSparseVirtual
				if 3*VerifyBalance(cfg.G, sep.Path) <= 2*n {
					return sep, nil
				}
				if best == nil {
					best = sep
				}
			}
		}
	}
	if best != nil && 3*VerifyBalance(cfg.G, best.Path) <= 2*n {
		return best, nil
	}
	return exhaustive(cfg, n)
}

// rootFaceCandidates lists the vertices ℰ-compatible with the root (sharing
// a face with it), excluding the root and its neighbours, ordered by
// |π_ℓ(x) − n/2| — the face weight of the virtual edge root→x grows with
// the swept prefix, so candidates near the middle of the LEFT order land in
// range first.
// extremeLeafCandidates is the paper's literal Lemma 8 candidate set: the
// extreme leaves of T_U and T_V outside the face, falling back to the
// endpoints (used by the DisableVirtualSweep ablation).
func extremeLeafCandidates(cfg *weights.Config, ec weights.EdgeCase) []int {
	t := cfg.Tree
	n := cfg.G.N()
	inFace := make([]bool, n)
	for z := 0; z < n; z++ {
		b, in := cfg.InFace(ec, z)
		inFace[z] = b || in
	}
	uOut, vOut := -1, -1
	for z := 0; z < n; z++ {
		if len(t.Children(z)) > 0 || inFace[z] {
			continue
		}
		if t.IsAncestor(ec.U, z) && (uOut < 0 || cfg.PiL[z] > cfg.PiL[uOut]) {
			uOut = z
		}
		if t.IsAncestor(ec.V, z) && (vOut < 0 || cfg.PiL[z] < cfg.PiL[vOut]) {
			vOut = z
		}
	}
	var out []int
	seen := map[int]bool{}
	for _, c := range []int{uOut, vOut, ec.U, ec.V} {
		if c >= 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func rootFaceCandidates(cfg *weights.Config) []int {
	root := cfg.Tree.Root
	n := cfg.G.N()
	fs := cfg.Faces()
	atRoot := map[int]bool{}
	for _, d := range cfg.Emb.Rotation(root) {
		atRoot[int(fs.FaceOf[d])] = true
	}
	seen := map[int]bool{root: true}
	var out []int
	// Scan faces in ascending id order: the candidate *set* is iteration-
	// invariant, but `seen` dedup means first-wins, so the face order must
	// be fixed before the balance sort below can canonicalize ties.
	faces := make([]int, 0, len(atRoot))
	for f := range atRoot { //planarvet:orderinvariant keys are sorted before use
		faces = append(faces, f)
	}
	sort.Ints(faces)
	for _, f := range faces {
		for _, v := range fs.FaceVertices(f) {
			if !seen[v] && !cfg.G.HasEdge(root, v) {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := abs(2*cfg.PiL[out[i]] - n)
		dj := abs(2*cfg.PiL[out[j]] - n)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// exhaustive is the harness safety net: it scans every real fundamental
// edge and, failing that, every root-to-vertex tree path for a balanced
// separator. Experiments assert it never triggers (Phase counters).
func exhaustive(cfg *weights.Config, n int) (*Separator, error) {
	for _, e := range cfg.FundamentalEdges() {
		ec := cfg.Classify(e)
		path := cfg.Tree.TPath(ec.U, ec.V)
		if 3*VerifyBalance(cfg.G, path) <= 2*n {
			return &Separator{Path: path, EndA: ec.U, EndB: ec.V, Phase: PhaseExhaustive}, nil
		}
	}
	root := cfg.Tree.Root
	for x := 0; x < n; x++ {
		path, err := cfg.Tree.PathUp(x, root)
		if err != nil {
			return nil, err
		}
		if 3*VerifyBalance(cfg.G, path) <= 2*n {
			return &Separator{Path: path, EndA: x, EndB: root, Phase: PhaseExhaustive}, nil
		}
	}
	return nil, fmt.Errorf("separator: no balanced T-path found (n=%d)", n)
}
