package separator

import (
	"planardfs/internal/graph"
)

// BFSLevelSeparator returns the classical BFS-level separator used as the
// first step of Lipton–Tarjan: the level containing the median-ranked
// vertex. Removing it leaves every component with at most n/2 vertices
// (components lie entirely above or below the level), but unlike the cycle
// separator its size is only bounded by the level width, which can be
// Θ(n).
func BFSLevelSeparator(g *graph.Graph, root int) []int {
	res := g.BFS(root)
	n := g.N()
	maxD := 0
	for _, d := range res.Dist {
		if d > maxD {
			maxD = d
		}
	}
	count := make([]int, maxD+1)
	for _, d := range res.Dist {
		count[d]++
	}
	// Median level.
	med, acc := 0, 0
	for l, c := range count {
		acc += c
		if 2*acc >= n {
			med = l
			break
		}
	}
	var out []int
	for v, d := range res.Dist {
		if d == med {
			out = append(out, v)
		}
	}
	return out
}
