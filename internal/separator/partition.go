package separator

import (
	"fmt"

	"planardfs/internal/planar"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// PartResult is a per-part cycle separator in original vertex IDs.
type PartResult struct {
	Part int
	// Sep is the separator with Path/EndA/EndB in original vertex IDs.
	Sep *Separator
	// SubN is the part size.
	SubN int
}

// ForPartition computes, for every part of the partition, a cycle separator
// of the induced subgraph (the partition-parallel form of Theorem 1). Each
// part must induce a connected subgraph. Embeddings of the parts are the
// restrictions of emb; per-part spanning trees are BFS trees rooted on the
// part's outer face.
func ForPartition(emb *planar.Embedding, outerDart int, part *shortcut.Partition) ([]*PartResult, error) {
	outerFace := emb.OuterFaceOf(outerDart)
	out := make([]*PartResult, 0, part.K())
	for i, vs := range part.Parts {
		sep, err := ForSubset(emb, outerFace, vs)
		if err != nil {
			return nil, fmt.Errorf("part %d: %w", i, err)
		}
		out = append(out, &PartResult{Part: i, Sep: sep, SubN: len(vs)})
	}
	return out, nil
}

// ForSubset computes a cycle separator of the subgraph induced by vs
// (which must be connected), returned in original vertex IDs.
func ForSubset(emb *planar.Embedding, outerFace int, vs []int) (*Separator, error) {
	return ForSubsetTraced(emb, outerFace, vs, nil)
}

// ForSubsetTraced is ForSubset with the run recorded on tr (nil disables
// tracing): the restricted configuration carries the tracer, so the whole
// separator phase structure of the subset lands in the trace.
func ForSubsetTraced(emb *planar.Embedding, outerFace int, vs []int, tr trace.Tracer) (*Separator, error) {
	return ForSubsetWith(emb, outerFace, vs, tr, Find)
}

// FindFunc computes a cycle separator of a configuration's graph. Find is
// the Theorem 1 implementation; internal/sepengine adapts its registered
// backends to this shape so the DFS pipeline can run any engine.
type FindFunc func(cfg *weights.Config) (*Separator, error)

// ForSubsetWith is ForSubsetTraced with the separator computation swapped
// out: the subset is restricted, configured and rooted exactly as in the
// Theorem 1 path, then find runs on the restricted configuration and its
// result is mapped back to original vertex IDs.
func ForSubsetWith(emb *planar.Embedding, outerFace int, vs []int, tr trace.Tracer, find FindFunc) (*Separator, error) {
	res, err := emb.RestrictTo(vs, outerFace)
	if err != nil {
		return nil, err
	}
	if res.G.N() == 1 {
		v := res.Orig[0]
		return &Separator{Path: []int{v}, EndA: v, EndB: v, Phase: PhaseTree}, nil
	}
	if !res.G.Connected() {
		return nil, fmt.Errorf("separator: subset induces a disconnected subgraph")
	}
	// Root on the restricted outer face.
	fs := res.Emb.TraceFaces()
	root := fs.FaceVertices(int(fs.FaceOf[res.OuterDart]))[0]
	tree, err := spanning.BFSTree(res.G, root)
	if err != nil {
		return nil, err
	}
	cfg, err := weights.NewConfig(res.G, res.Emb, res.OuterDart, tree)
	if err != nil {
		return nil, err
	}
	cfg.Tracer = tr
	sep, err := find(cfg)
	if err != nil {
		return nil, err
	}
	// Map back to original IDs.
	mapped := &Separator{
		Path:  make([]int, len(sep.Path)),
		EndA:  res.Orig[sep.EndA],
		EndB:  res.Orig[sep.EndB],
		Phase: sep.Phase,
	}
	for i, v := range sep.Path {
		mapped.Path[i] = res.Orig[v]
	}
	return mapped, nil
}
