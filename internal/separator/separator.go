// Package separator implements the paper's main contribution (Theorem 1):
// deterministic computation of cycle separators in embedded planar graphs
// via the weights of fundamental faces and augmentations, following the
// constructive proof of Lemma 1 and the phase structure of Section 5.3.
//
// A cycle separator is a set of vertices forming a path of the spanning
// tree T whose endpoints are joined by a real edge of G or by an
// ℰ-compatible virtual edge; removing it leaves connected components of at
// most 2n/3 vertices each.
package separator

import (
	"fmt"
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// Phase identifies which case of the algorithm produced a separator.
type Phase int

// Phases of the separator algorithm (Section 5.3).
const (
	// PhaseTree: the graph is a tree; the separator is the path from the
	// root to a centroid (Phase 2).
	PhaseTree Phase = iota + 1
	// PhaseDirect: a real fundamental face has weight in [n/3, 2n/3]
	// (Phase 3).
	PhaseDirect
	// PhaseAugmented: a full augmentation from an endpoint of a heavy face
	// reached the range, and the target leaf is unhidden (Sub-phase 4.1).
	PhaseAugmented
	// PhaseHiddenFallback: the target leaf is hidden; the separator closes
	// through the outermost hiding edge (Sub-phase 4.1, Claim 6).
	PhaseHiddenFallback
	// PhaseLongPath: the T-path closed by a real fundamental edge or by a
	// compatible augmentation has at least n/3 vertices, so its removal
	// leaves at most 2n/3 vertices in total (Lemma 1, condition 3).
	PhaseLongPath
	// PhaseHeavyBorder: no augmentation weight is in range; the heavy
	// face's own border is the separator (Sub-phase 4.2).
	PhaseHeavyBorder
	// PhaseSparse: all faces are light and the outside of an outermost
	// face is small; its border is the separator (Phase 5).
	PhaseSparse
	// PhaseSparseVirtual: all faces are light and one outside region is
	// heavy; a virtual edge from the root creates a heavy face and the
	// Phase 4 logic runs inside it (Phase 5 fallback, Lemma 8).
	PhaseSparseVirtual
	// PhaseExhaustive: the harness safety net found the separator by
	// exhaustive search (counted by experiments; must not trigger).
	PhaseExhaustive
	// PhaseLevelCycle: a BFS level-region boundary cycle, produced by the
	// Har-Peled–Nayyeri engine (internal/sepengine).
	PhaseLevelCycle
	// PhaseDualTree: a fundamental cycle selected by tree-weight
	// decomposition over the dual of a BFS tree (internal/sepengine).
	PhaseDualTree
)

func (p Phase) String() string {
	switch p {
	case PhaseTree:
		return "tree"
	case PhaseDirect:
		return "direct"
	case PhaseAugmented:
		return "augmented"
	case PhaseHiddenFallback:
		return "hidden-fallback"
	case PhaseLongPath:
		return "long-path"
	case PhaseHeavyBorder:
		return "heavy-border"
	case PhaseSparse:
		return "sparse"
	case PhaseSparseVirtual:
		return "sparse-virtual"
	case PhaseExhaustive:
		return "exhaustive"
	case PhaseLevelCycle:
		return "level-cycle"
	case PhaseDualTree:
		return "dual-tree"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Separator is a cycle separator: a T-path whose removal balances the
// graph.
type Separator struct {
	// Path lists the separator vertices in T-path order.
	Path []int
	// EndA and EndB are the path endpoints; the cycle closes between them
	// through a real or virtual edge (equal for single-vertex separators).
	EndA, EndB int
	// Phase records which case produced the separator.
	Phase Phase
}

// Options toggle individual design elements of the separator algorithm for
// ablation studies (experiment E13). The zero value is the full algorithm.
type Options struct {
	// DisableLongPath skips Lemma 1's condition 3 (the >= n/3 T-path
	// shortcut), forcing the weight machinery to cover those cases.
	DisableLongPath bool
	// DisableHiddenFallback skips the Claim 6 fallback: Phase 4.1 returns
	// the augmented path even when the target leaf is hidden.
	DisableHiddenFallback bool
	// DisableAugmentation skips Phase 4.1 entirely: heavy faces fall
	// straight to their border (Sub-phase 4.2).
	DisableAugmentation bool
	// DisableVirtualSweep restricts Phase 5's fallback to the paper's
	// extreme-leaf candidates instead of the full root-face sweep.
	DisableVirtualSweep bool
}

// Find computes a cycle separator of the configuration's graph following
// Lemma 1's constructive proof. The result is a T-path; balance
// (components of G - S of size at most 2n/3) is guaranteed by the paper's
// case analysis and verified exhaustively by the test suite and
// experiments.
//
// When cfg.Tracer is set, the run is recorded: a separator-layer span per
// driver phase, a lemma-layer span per charged subroutine, and primitive
// child spans advancing the round clock under the paper cost model.
func Find(cfg *weights.Config) (*Separator, error) {
	return FindWithOptions(cfg, Options{})
}

// meterFor builds the charging meter of a configuration: the paper cost
// model with the spanning tree's depth standing in for the diameter (the
// standard BFS-tree bound depth <= D <= 2·depth).
func meterFor(cfg *weights.Config) *dist.Meter {
	return dist.NewMeter(cfg.Tracer,
		shortcut.PaperCost{D: cfg.Tree.MaxDepth(), N: cfg.G.N()}, 1)
}

// FindWithOptions is Find with ablation toggles.
func FindWithOptions(cfg *weights.Config, opt Options) (*Separator, error) {
	m := meterFor(cfg)
	if !m.On() {
		return findWithMeter(cfg, opt, nil)
	}
	n := cfg.G.N()
	sp := m.Start(trace.LayerSeparator, "separator.find")
	defer sp.End()
	// Precomputation charges (the fixed prefix of the Theorem 1 budget):
	// the embedding surrogate, per-part spanning forests, DFS orders and
	// weights, and the part-size aggregation.
	m.Charge(trace.LayerLemma, "prop1.embedding", dist.Ops{PA: 1})
	m.Charge(trace.LayerLemma, "lemma9.spanning-forest", dist.SpanningForestOps(n))
	m.Charge(trace.LayerLemma, "lemma11-12.orders-weights", dist.WeightsOps(n))
	m.Charge(trace.LayerLemma, "prop5.part-sizes", dist.PAProblemOps())
	m.Tracer().Observe("separator.part_size", int64(n))
	sep, err := findWithMeter(cfg, opt, m)
	if sep != nil {
		m.Charge(trace.LayerLemma, "lemma13.mark-separator", dist.MarkPathOps(n),
			trace.Attr{Key: "sep_len", Val: int64(len(sep.Path))})
		sp.SetAttr("phase", int64(sep.Phase))
		sp.SetAttr("sep_len", int64(len(sep.Path)))
		m.Tracer().Observe("separator.sep_len", int64(len(sep.Path)))
	}
	return sep, err
}

// findWithMeter is the Lemma 1 case analysis, recording phase spans on m.
func findWithMeter(cfg *weights.Config, opt Options, m *dist.Meter) (*Separator, error) {
	n := cfg.G.N()
	if n == 1 {
		return &Separator{Path: []int{0}, EndA: 0, EndB: 0, Phase: PhaseTree}, nil
	}
	fund := cfg.FundamentalEdges()
	if len(fund) == 0 {
		// Phase 2: the graph is a tree.
		sp := m.Start(trace.LayerSeparator, "phase2.tree")
		m.Charge(trace.LayerLemma, "prop5.centroid", dist.PAProblemOps())
		sp.End()
		c := cfg.Tree.Centroid()
		path, err := cfg.Tree.PathUp(c, cfg.Tree.Root)
		if err != nil {
			return nil, err
		}
		return &Separator{
			Path:  path,
			EndA:  c,
			EndB:  cfg.Tree.Root,
			Phase: PhaseTree,
		}, nil
	}

	w := make(map[int]int, len(fund))
	for _, e := range fund {
		w[e] = cfg.Weight(e)
	}
	inRange := func(x int) bool { return 3*x >= n && 3*x <= 2*n }

	// Phase 3: a face with weight directly in range.
	sp3 := m.Start(trace.LayerSeparator, "phase3.weight-scan")
	m.Charge(trace.LayerLemma, "lemma10.range-queries", dist.PAProblemOps().Times(3),
		trace.Attr{Key: "faces", Val: int64(len(fund))})
	sp3.End()
	for _, e := range fund {
		if inRange(w[e]) {
			ec := cfg.Classify(e)
			return &Separator{
				Path:  cfg.Tree.TPath(ec.U, ec.V),
				EndA:  ec.U,
				EndB:  ec.V,
				Phase: PhaseDirect,
			}, nil
		}
	}

	// Lemma 1, condition 3: a fundamental cycle whose T-path already has at
	// least n/3 vertices — removing it leaves at most 2n/3 vertices in
	// total, so it is a separator regardless of face weights.
	if !opt.DisableLongPath {
		m.Charge(trace.LayerLemma, "lemma17.long-path-check", dist.NotContainedOps(n))
	}
	for _, e := range fund {
		if opt.DisableLongPath {
			break
		}
		ec := cfg.Classify(e)
		if 3*pathLen(cfg, ec.U, ec.V) >= n {
			return &Separator{
				Path:  cfg.Tree.TPath(ec.U, ec.V),
				EndA:  ec.U,
				EndB:  ec.V,
				Phase: PhaseLongPath,
			}, nil
		}
	}

	// Phase 4: some face is heavy (> 2n/3).
	var heavy []int
	for _, e := range fund {
		if 3*w[e] > 2*n {
			heavy = append(heavy, e)
		}
	}
	if len(heavy) > 0 {
		e := pickInnermost(cfg, heavy, w)
		return phase4(cfg, cfg.Classify(e), n, opt, m)
	}

	// Phase 5: every face is light (< n/3).
	return phase5(cfg, fund, n, opt, m)
}

// phase4 handles a heavy face containing no other heavy face: the full
// augmentation from U sweeps the face; either some augmentation weight
// lands in range (Sub-phase 4.1, with the hidden fallback of Claim 6) or
// the face border itself separates (Sub-phase 4.2).
func phase4(cfg *weights.Config, ec weights.EdgeCase, n int, opt Options, m *dist.Meter) (*Separator, error) {
	sp := m.Start(trace.LayerSeparator, "phase4.heavy-face")
	defer sp.End()
	m.Charge(trace.LayerLemma, "lemma15.detect-face", dist.DetectFaceOps(n))
	inRange := func(x int) bool { return 3*x >= n && 3*x <= 2*n }
	inside := cfg.InsideNodes(ec)

	s := -1
	if !opt.DisableAugmentation {
		m.Charge(trace.LayerLemma, "lemma10.aug-range-query", dist.PAProblemOps(),
			trace.Attr{Key: "inside", Val: int64(len(inside))})
		for _, z := range inside {
			if inRange(cfg.AugWeight(ec, z)) {
				s = z
				break
			}
		}
	}
	if s < 0 {
		// No augmentation weight lands in range. Before falling back to the
		// face border (Sub-phase 4.2), apply Lemma 1's condition 3: the
		// deepest inside vertex is a leaf; if its T-path from U has at
		// least n/3 vertices and it is unhidden (hence compatible with U),
		// that path separates outright.
		if zd := deepestOf(cfg, inside); !opt.DisableLongPath && zd >= 0 &&
			3*pathLen(cfg, ec.U, zd) >= n && len(cfg.HidingEdges(ec, zd)) == 0 {
			return &Separator{
				Path:  cfg.Tree.TPath(ec.U, zd),
				EndA:  ec.U,
				EndB:  zd,
				Phase: PhaseLongPath,
			}, nil
		}
		// Sub-phase 4.2.
		return &Separator{
			Path:  cfg.Tree.TPath(ec.U, ec.V),
			EndA:  ec.U,
			EndB:  ec.V,
			Phase: PhaseHeavyBorder,
		}, nil
	}
	// Remark 2: descend to the order-maximal leaf (same weight).
	s = cfg.RightmostLeafIn(ec, s)

	var hiding []int
	if !opt.DisableHiddenFallback {
		m.Charge(trace.LayerLemma, "lemma16.hidden", dist.HiddenOps(n))
		hiding = cfg.HidingEdges(ec, s)
	}
	if len(hiding) == 0 {
		return &Separator{
			Path:  cfg.Tree.TPath(ec.U, s),
			EndA:  ec.U,
			EndB:  s,
			Phase: PhaseAugmented,
		}, nil
	}
	// Claim 6: pick a hiding edge not contained in any other hiding edge
	// and close through its far endpoint.
	m.Charge(trace.LayerLemma, "lemma17.hidden-fallback", dist.NotContainedOps(n),
		trace.Attr{Key: "hiding", Val: int64(len(hiding))})
	f := pickOutermostAmong(cfg, hiding)
	fe := cfg.G.EdgeByID(f)
	z2 := fe.U
	if cfg.PiL[fe.V] > cfg.PiL[fe.U] {
		z2 = fe.V
	}
	return &Separator{
		Path:  cfg.Tree.TPath(ec.U, z2),
		EndA:  ec.U,
		EndB:  z2,
		Phase: PhaseHiddenFallback,
	}, nil
}

// phase5 handles the all-light case (Lemma 8): take a face contained in no
// other; if its outside is small its border separates, otherwise a virtual
// edge from the root wraps the heavy outside region into a face and the
// Phase 4 logic runs there.
func phase5(cfg *weights.Config, fund []int, n int, opt Options, m *dist.Meter) (*Separator, error) {
	sp := m.Start(trace.LayerSeparator, "phase5.all-light")
	defer sp.End()
	m.Charge(trace.LayerLemma, "lemma17.outermost-face", dist.NotContainedOps(n))
	e := pickOutermostAmong(cfg, fund)
	ec := cfg.Classify(e)
	// Count the face extent from the interval characterization.
	insideCnt := len(cfg.InsideNodes(ec))
	borderCnt := len(cfg.BorderNodes(ec))
	outside := n - insideCnt - borderCnt
	if 3*outside <= 2*n {
		return &Separator{
			Path:  cfg.Tree.TPath(ec.U, ec.V),
			EndA:  ec.U,
			EndB:  ec.V,
			Phase: PhaseSparse,
		}, nil
	}
	// Lemma 8 fallback: a virtual edge wraps the heavy outside region into
	// a face and the Phase 4 machinery runs inside it.
	m.Charge(trace.LayerLemma, "lemma8.virtual-edge", dist.HiddenOps(n))
	return phase5Virtual(cfg, ec, n, opt)
}

// pickInnermost returns a candidate edge whose face contains no other
// candidate's face. Weights are non-decreasing under containment, so the
// search walks down from a minimum-weight candidate.
func pickInnermost(cfg *weights.Config, cand []int, w map[int]int) int {
	sorted := append([]int(nil), cand...)
	sort.Slice(sorted, func(i, j int) bool {
		if w[sorted[i]] != w[sorted[j]] {
			return w[sorted[i]] < w[sorted[j]]
		}
		return sorted[i] < sorted[j]
	})
	cur := sorted[0]
	for steps := 0; steps <= len(sorted); steps++ {
		found := -1
		ecCur := cfg.Classify(cur)
		for _, f := range sorted {
			if f != cur && cfg.EdgeContainedInFace(ecCur, f) {
				found = f
				break
			}
		}
		if found < 0 {
			return cur
		}
		cur = found
	}
	return cur
}

// pickOutermostAmong returns a candidate edge whose face is contained in no
// other candidate's face, walking up the containment order.
func pickOutermostAmong(cfg *weights.Config, cand []int) int {
	cur := cand[0]
	for steps := 0; steps <= len(cand); steps++ {
		found := -1
		for _, f := range cand {
			if f == cur {
				continue
			}
			if cfg.EdgeContainedInFace(cfg.Classify(f), cur) {
				found = f
				break
			}
		}
		if found < 0 {
			return cur
		}
		cur = found
	}
	return cur
}

// pathLen returns the number of vertices on the T-path between u and v.
func pathLen(cfg *weights.Config, u, v int) int {
	w := cfg.Tree.LCA(u, v)
	return cfg.Tree.Depth[u] + cfg.Tree.Depth[v] - 2*cfg.Tree.Depth[w] + 1
}

// deepestOf returns the deepest vertex of the list (-1 when empty); when the
// list is the inside of a face, the deepest vertex is a tree leaf.
func deepestOf(cfg *weights.Config, vs []int) int {
	best := -1
	for _, v := range vs {
		if best < 0 || cfg.Tree.Depth[v] > cfg.Tree.Depth[best] {
			best = v
		}
	}
	return best
}

// VerifyBalance returns the largest component of g after removing the
// separator vertices. A valid separator has max component <= 2n/3.
func VerifyBalance(g *graph.Graph, sep []int) int {
	removed := make(map[int]bool, len(sep))
	for _, v := range sep {
		removed[v] = true
	}
	maxComp := 0
	for _, comp := range g.ComponentsAvoiding(removed) {
		if len(comp) > maxComp {
			maxComp = len(comp)
		}
	}
	return maxComp
}

// IsTPath reports whether the separator path is a contiguous path of the
// configuration's tree.
func IsTPath(cfg *weights.Config, sep *Separator) bool {
	want := cfg.Tree.TPath(sep.EndA, sep.EndB)
	if len(want) != len(sep.Path) {
		return false
	}
	for i := range want {
		if want[i] != sep.Path[i] {
			return false
		}
	}
	return true
}
