package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"planardfs/internal/dfs"
	"planardfs/internal/gen"
	"planardfs/internal/spanning"
)

// newTestServer returns a started server and its httptest front end; both
// are torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// postJob submits a job and decodes the accepted status.
func postJob(t *testing.T, base, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e httpError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitJob polls until the job reaches a terminal state.
func awaitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job: status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestJobLifecycleGeneratorFamily(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	st := postJob(t, ts.URL, `{"family":"grid","n":64,"seed":1}`)
	if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("accepted state = %q", st.State)
	}
	fin := awaitJob(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %q (err %q)", fin.State, fin.Error)
	}
	if fin.Hash == "" || fin.Outcome != "certified" || fin.Cached {
		t.Fatalf("done status = %+v", fin)
	}
	if fin.Rounds <= 0 {
		t.Fatalf("rounds = %d, want > 0", fin.Rounds)
	}

	// The hash must match the canonical hash of the same generator call.
	in, err := gen.ByName("grid", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := gen.ContentHash(in); fin.Hash != want {
		t.Fatalf("hash = %s, want %s", fin.Hash, want)
	}

	// Re-submitting the same job is a cache hit served without a rebuild.
	st2 := postJob(t, ts.URL, `{"family":"grid","n":64,"seed":1}`)
	fin2 := awaitJob(t, ts.URL, st2.ID)
	if fin2.State != StateDone || !fin2.Cached || fin2.Hash != fin.Hash {
		t.Fatalf("resubmit status = %+v", fin2)
	}
	if got := s.Metrics().Counter("serve.cache.hits"); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

func TestJobInlineGraphAndQueries(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	in, err := gen.ByName("wheel", 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := gen.EncodeJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	st := postJob(t, ts.URL, fmt.Sprintf(`{"graph":%s}`, data))
	fin := awaitJob(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("inline job: %+v", fin)
	}
	if want := gen.ContentHash(in); fin.Hash != want {
		t.Fatalf("inline hash = %s, want %s", fin.Hash, want)
	}
	base := ts.URL + "/v1/graphs/" + fin.Hash

	// Summary.
	var sum GraphSummary
	if code := getJSON(t, base, &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if sum.N != in.G.N() || sum.M != in.G.M() || sum.SepLen == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	for _, v := range sum.Verdicts {
		if !v.OK {
			t.Fatalf("verdict %s rejected in clean build", v.Scheme)
		}
	}

	// LCA and order answers must agree with a locally built reference of
	// the same cached DFS tree.
	var ord struct {
		Parent int `json:"parent"`
		Tin    int `json:"tin"`
		Tout   int `json:"tout"`
	}
	if code := getJSON(t, base+"/query/order?v="+fmt.Sprint(sum.Root), &ord); code != http.StatusOK {
		t.Fatalf("order status %d", code)
	}
	if ord.Parent != -1 || ord.Tin != 0 || ord.Tout != in.G.N() {
		t.Fatalf("root order = %+v", ord)
	}

	pt, _, err := dfs.Build(in.G, in.Emb, in.OuterDart, sum.Root)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spanning.NewFromParents(sum.Root, pt.Parent)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < in.G.N(); u += 3 {
		for v := 1; v < in.G.N(); v += 4 {
			var got struct {
				LCA int `json:"lca"`
			}
			url := fmt.Sprintf("%s/query/lca?u=%d&v=%d", base, u, v)
			if code := getJSON(t, url, &got); code != http.StatusOK {
				t.Fatalf("lca status %d", code)
			}
			if want := ref.LCA(u, v); got.LCA != want {
				t.Fatalf("lca(%d,%d) = %d, want %d", u, v, got.LCA, want)
			}
		}
	}

	// Separator membership: sides partition the graph, separator vertices
	// report side 0.
	onSep := 0
	for v := 0; v < in.G.N(); v++ {
		var got struct {
			OnSeparator bool `json:"onSeparator"`
			Side        int  `json:"side"`
		}
		url := fmt.Sprintf("%s/query/separator?v=%d", base, v)
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("separator status %d", code)
		}
		if got.OnSeparator {
			onSep++
			if got.Side != 0 {
				t.Fatalf("separator vertex %d has side %d", v, got.Side)
			}
		}
	}
	if onSep != sum.SepLen {
		t.Fatalf("separator membership count %d != sepLen %d", onSep, sum.SepLen)
	}

	// Cert verdicts round-trip.
	var verdicts []VerdictSummary
	if code := getJSON(t, base+"/query/cert", &verdicts); code != http.StatusOK {
		t.Fatalf("cert status %d", code)
	}
	if len(verdicts) != 3 || verdicts[0].Scheme != "spanning" || verdicts[1].Scheme != "dfs" || verdicts[2].Scheme != "separator" {
		t.Fatalf("verdicts = %+v", verdicts)
	}

	// Bad queries.
	if code := getJSON(t, base+"/query/lca?u=-1&v=0", nil); code != http.StatusBadRequest {
		t.Fatalf("bad lca status %d", code)
	}
	if code := getJSON(t, base+"/query/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown kind status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/graphs/deadbeef/query/lca?u=0&v=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown hash status %d", code)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxN: 1000})
	for _, body := range []string{
		`{}`,
		`{"family":"grid","n":64,"graph":{"n":3}}`,
		`{"family":"nosuch","n":64}`,
		`{"family":"grid","n":2}`,
		`{"family":"grid","n":100000}`,
		`{"family":"grid","n":64,"chaosSpec":"bogus=1"}`,
		`{"family":"grid","n":64,"engine":"nosuch-engine"}`,
		`{"family":"grid","n":64,"unknownField":true}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", code)
	}
}

// TestJobEngineSelection submits the same instance under the default and a
// non-default separator engine: the two jobs must not share a cache entry
// (the non-default key carries the engine suffix), and the graph summary
// must report the backend that produced the cached separator.
func TestJobEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxN: 1000})
	def := awaitJob(t, ts.URL, postJob(t, ts.URL, `{"family":"stacked","n":80,"seed":3}`).ID)
	if def.State != StateDone {
		t.Fatalf("default job: %+v", def)
	}
	alt := awaitJob(t, ts.URL, postJob(t, ts.URL, `{"family":"stacked","n":80,"seed":3,"engine":"lipton-tarjan"}`).ID)
	if alt.State != StateDone {
		t.Fatalf("engine job: %+v", alt)
	}
	if alt.Cached {
		t.Fatal("engine job aliased the default engine's cache entry")
	}
	if alt.Hash != def.Hash+":lipton-tarjan" {
		t.Fatalf("engine job keyed %q, want %q", alt.Hash, def.Hash+":lipton-tarjan")
	}
	var sum GraphSummary
	if code := getJSON(t, ts.URL+"/v1/graphs/"+alt.Hash, &sum); code != 200 {
		t.Fatalf("engine summary status %d", code)
	}
	if sum.Engine != "lipton-tarjan" {
		t.Fatalf("summary engine %q, want lipton-tarjan", sum.Engine)
	}
	var dsum GraphSummary
	if code := getJSON(t, ts.URL+"/v1/graphs/"+def.Hash, &dsum); code != 200 {
		t.Fatalf("default summary status %d", code)
	}
	if dsum.Engine != "theorem1" {
		t.Fatalf("default summary engine %q, want theorem1", dsum.Engine)
	}
}

func TestChaosJobDegradesOrRetriesButStaysCertified(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Heavy structural corruption: the primary pipeline attempts are
	// rejected by certification until the burst decays or the runtime
	// degrades to Awerbuch — either way the result is certified.
	st := postJob(t, ts.URL, `{"family":"grid","n":49,"seed":1,"chaosSpec":"structural=8","chaosSeed":11}`)
	fin := awaitJob(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("chaos job: %+v", fin)
	}
	switch fin.Outcome {
	case "certified-after-retry", "degraded", "certified":
	default:
		t.Fatalf("outcome = %q", fin.Outcome)
	}
	if fin.Attempts < 1 {
		t.Fatalf("attempts = %d", fin.Attempts)
	}
}

func TestJobTraceStreamsJSONL(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJob(t, ts.URL, `{"family":"grid","n":36,"seed":1}`)
	awaitJob(t, ts.URL, st.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, sawChaos := 0, false
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec["layer"] == "chaos" {
			sawChaos = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 10 || !sawChaos {
		t.Fatalf("trace stream: %d lines, sawChaos=%v", lines, sawChaos)
	}
}

func TestMetricsEndpointStable(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJob(t, ts.URL, `{"family":"grid","n":36,"seed":1}`)
	awaitJob(t, ts.URL, st.ID)
	read := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatalf("two scrapes of an idle server differ:\n%s\n%s", a, b)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "serve.jobs.completed" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("serve.jobs.completed missing from scrape: %s", a)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s)
	defer ts.Close()

	blocker := postJob(t, ts.URL, `{"family":"grid","n":36,"seed":1}`)
	queued := postJob(t, ts.URL, `{"family":"grid","n":49,"seed":1}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCanceled {
		t.Fatalf("cancel: state %q", st.State)
	}

	// Release the workers; the canceled job must never run.
	close(gate)
	fin := awaitJob(t, ts.URL, blocker.ID)
	if fin.State != StateDone {
		t.Fatalf("blocker: %+v", fin)
	}
	if st := getJob(t, ts.URL, queued.ID); st.State != StateCanceled {
		t.Fatalf("canceled job reran: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()
	st := postJob(t, ts.URL, `{"family":"grid","n":64,"seed":1}`)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The queued job was drained to completion, not abandoned.
	fin := getJob(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("drained job state %q (err %q)", fin.State, fin.Error)
	}
	// New submissions are rejected while draining.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"family":"grid","n":36,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK || health.Status != "draining" {
		t.Fatalf("health = %d/%+v", code, health)
	}
}
