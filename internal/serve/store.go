package serve

import (
	"container/list"
	"context"
	"sync"

	"planardfs/internal/trace"
)

// store is the content-addressed decomposition cache: an LRU keyed by the
// canonical graph hash, bounded by a byte budget, with single-flight
// build coalescing — when k submitters race on the same hash, exactly one
// runs the pipeline and the other k-1 wait on its flight and are served
// the same immutable *Decomp.
//
// The map is only ever indexed by key, never ranged (the eviction order
// lives in the intrusive LRU list), which keeps the package inside the
// planarvet mapiter determinism contract.
type store struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*list.Element // hash → element holding *storeEntry
	lru     *list.List               // front = most recently used
	flights map[string]*flight
	metrics *trace.Recorder
}

type storeEntry struct {
	hash string
	d    *Decomp
}

// flight is one in-progress build; done is closed when d/err are set.
type flight struct {
	done chan struct{}
	d    *Decomp
	err  error
}

// newStore returns an empty store with the given byte budget (<= 0 means
// unbounded).
func newStore(budget int64, metrics *trace.Recorder) *store {
	return &store{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
		metrics: metrics,
	}
}

// get returns the cached decomposition for hash, refreshing its LRU
// position. It does not count hit/miss metrics — query handlers and the
// build path attribute those themselves.
func (s *store) get(hash string) (*Decomp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[hash]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*storeEntry).d, true
}

// do returns the decomposition for hash, building it at most once across
// concurrent callers: the first caller becomes the flight leader and runs
// build; every concurrent caller for the same hash waits for that flight.
// cached reports whether the result was served without running build in
// this call (a cache hit or a joined flight). A waiting caller whose ctx
// dies returns early; the leader's build owns its own ctx and is not
// affected by waiters leaving.
func (s *store) do(ctx context.Context, hash string, build func() (*Decomp, error)) (d *Decomp, cached bool, err error) {
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		s.metrics.Count("serve.cache.hits", 1)
		return el.Value.(*storeEntry).d, true, nil
	}
	if f, ok := s.flights[hash]; ok {
		s.mu.Unlock()
		s.metrics.Count("serve.cache.joined", 1)
		select {
		case <-f.done:
			return f.d, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[hash] = f
	s.mu.Unlock()

	s.metrics.Count("serve.cache.misses", 1)
	f.d, f.err = build()

	s.mu.Lock()
	delete(s.flights, hash)
	if f.err == nil {
		s.insertLocked(hash, f.d)
	}
	s.mu.Unlock()
	close(f.done)
	return f.d, false, f.err
}

// insertLocked adds d under hash and evicts least-recently-used entries
// until the byte budget holds again. The newest entry itself is never
// evicted, so a single oversized decomposition still caches.
func (s *store) insertLocked(hash string, d *Decomp) {
	if el, ok := s.entries[hash]; ok {
		// A racing direct insert won; keep the existing entry.
		s.lru.MoveToFront(el)
		return
	}
	el := s.lru.PushFront(&storeEntry{hash: hash, d: d})
	s.entries[hash] = el
	s.bytes += d.bytes
	for s.budget > 0 && s.bytes > s.budget && s.lru.Len() > 1 {
		tail := s.lru.Back()
		ent := tail.Value.(*storeEntry)
		s.lru.Remove(tail)
		delete(s.entries, ent.hash)
		s.bytes -= ent.d.bytes
		s.metrics.Count("serve.cache.evictions", 1)
	}
	s.metrics.SetGauge("serve.cache.entries", int64(s.lru.Len()))
	s.metrics.SetGauge("serve.cache.bytes", s.bytes)
}

// len returns the number of cached decompositions.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
