package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"planardfs/internal/chaos"
	"planardfs/internal/gen"
)

// postRaw submits a raw body and returns the status code and decoded
// error body (zero-valued when the response is not an error shape).
func postRaw(t *testing.T, base, body string) (int, httpError) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e httpError
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e
}

// inlineBody wraps a wire instance into a POST /v1/jobs body.
func inlineBody(t *testing.T, w *gen.Wire) string {
	t.Helper()
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(map[string]json.RawMessage{"graph": raw})
	if err != nil {
		t.Fatal(err)
	}
	return string(req)
}

// wireFixture generates a valid wire instance to corrupt per case.
func wireFixture(t *testing.T) *gen.Wire {
	t.Helper()
	in, err := gen.ByName("grid", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen.WireOf(in)
}

// TestSubmitMalformedBodies is the admission table test: every malformed
// or corrupted inline submission is rejected with a structured 4xx body —
// a 400 naming the offending field for wire-level violations, a 422
// carrying the guard witness for semantic ones — and never reaches the
// worker pool.
func TestSubmitMalformedBodies(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxN: 100})
	cases := []struct {
		name       string
		body       func(t *testing.T) string
		wantCode   int
		wantField  string // substring of the reported field, 400s only
		wantReason string // witness reason, 422s only
	}{
		{
			name:     "not json",
			body:     func(*testing.T) string { return "{not json" },
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "unknown top-level field",
			body:     func(*testing.T) string { return `{"family":"grid","n":9,"bogus":1}` },
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "both family and graph",
			body:     func(*testing.T) string { return `{"family":"grid","n":9,"graph":{"n":1}}` },
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "graph not an object",
			body:     func(*testing.T) string { return `{"graph":[1,2,3]}` },
			wantCode: http.StatusBadRequest,
		},
		{
			name: "negative vertex count",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.N = -4
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "n",
		},
		{
			name: "n over server limit",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.N = 101
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "n",
		},
		{
			name: "edge endpoint out of range",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.Edges[3][1] = w.N + 5
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "edges[3]",
		},
		{
			name: "self-loop",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.Edges[0][1] = w.Edges[0][0]
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "edges[0]",
		},
		{
			name: "duplicate edge",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.Edges[5] = w.Edges[4]
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "edges[5]",
		},
		{
			name: "too many edges",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				extra := make([][2]int, 0, 3*w.N)
				for u := 0; u < w.N; u++ {
					for v := u + 1; v < w.N; v++ {
						extra = append(extra, [2]int{u, v})
					}
				}
				w.Edges = extra
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "edges",
		},
		{
			name: "rotation table wrong shape",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.Rotations = w.Rotations[:len(w.Rotations)-1]
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "rotations",
		},
		{
			name: "rotation lists non-neighbour",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				p := chaos.NewPlan(41, chaos.Spec{Structural: 2})
				if p.RetargetDarts(1, w.N, w.Rotations) == 0 {
					t.Fatal("retarget applied nothing")
				}
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "rotations",
		},
		{
			name: "outer dart out of range",
			body: func(t *testing.T) string {
				w := wireFixture(t)
				w.OuterDart = 2 * len(w.Edges)
				return inlineBody(t, w)
			},
			wantCode:  http.StatusBadRequest,
			wantField: "outerDart",
		},
		{
			name: "genus-corrupted rotations",
			body: func(t *testing.T) string {
				for seed := int64(1); seed < 50; seed++ {
					w := wireFixture(t)
					p := chaos.NewPlan(seed, chaos.Spec{Structural: 4})
					if p.SpliceFaces(1, w.Rotations) == 0 {
						continue
					}
					if in, err := w.Build(); err == nil && in.Emb.Genus() != 0 {
						return inlineBody(t, w)
					}
				}
				t.Fatal("no seed raised the genus")
				return ""
			},
			wantCode:   http.StatusUnprocessableEntity,
			wantReason: "euler",
		},
		{
			name: "disconnected graph",
			body: func(t *testing.T) string {
				w := &gen.Wire{
					N:         4,
					Edges:     [][2]int{{0, 1}, {2, 3}},
					Rotations: [][]int{{1}, {0}, {3}, {2}},
				}
				return inlineBody(t, w)
			},
			wantCode:   http.StatusUnprocessableEntity,
			wantReason: "disconnected",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, e := postRaw(t, ts.URL, tc.body(t))
			if code != tc.wantCode {
				t.Fatalf("status %d (%s), want %d", code, e.Error, tc.wantCode)
			}
			if e.Error == "" {
				t.Fatal("error body missing")
			}
			if tc.wantField != "" && !strings.Contains(e.Field, tc.wantField) {
				t.Fatalf("field %q does not name %q (error: %s)", e.Field, tc.wantField, e.Error)
			}
			if tc.wantReason != "" {
				if e.Witness == nil || string(e.Witness.Reason) != tc.wantReason {
					t.Fatalf("witness %+v, want reason %q", e.Witness, tc.wantReason)
				}
			}
		})
	}
	// Nothing above may have consumed a worker: a valid inline submission
	// still runs end to end.
	w := wireFixture(t)
	st := postJob(t, ts.URL, inlineBody(t, w))
	st = awaitJob(t, ts.URL, st.ID)
	if st.State != StateDone {
		t.Fatalf("valid inline job ended %s: %s", st.State, st.Error)
	}
	if got := s.Metrics().MetricsSnapshot(); got == nil {
		t.Fatal("metrics snapshot nil")
	}
}
