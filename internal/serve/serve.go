// Package serve turns the planardfs library into a long-running service:
// an HTTP job server that runs the paper's separator/DFS/cert/chaos
// pipelines asynchronously on a bounded worker pool and answers repeat
// queries from a content-addressed decomposition cache.
//
// Architecture (DESIGN.md §12):
//
//   - POST /v1/jobs submits a simulation job (generator family+seed or an
//     inline instance). Admission control is a bounded queue: when it is
//     full the server sheds load with 429 and a Retry-After estimate
//     instead of buffering unboundedly.
//   - A fixed pool of workers drains the queue. Each job runs the
//     Theorem 2 pipeline under the supervised recovery runtime
//     (internal/chaos), so a faulty or adversarial job degrades or fails
//     explicitly instead of wedging the process.
//   - Completed decompositions are cached in an LRU keyed by the
//     canonical content hash of the instance (internal/gen
//     CanonicalBytes → SHA-256) under a byte budget, with single-flight
//     coalescing of concurrent builds of the same graph.
//   - GET /v1/graphs/{hash}/query/... answers LCA, DFS-order, separator
//     and certification queries directly from the cached structures in
//     microseconds — the "compute once, revalidate cheaply" path the
//     proof-labeling machinery was built for.
//   - GET /v1/jobs/{id}/trace streams the job's round-stamped span tree
//     as JSONL; GET /v1/metrics serves a consistent, defensively copied,
//     sorted-key snapshot of the server metrics registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"planardfs/internal/gen"
	"planardfs/internal/guard"
	"planardfs/internal/trace"
)

// Options size the server. The zero value is usable: see the defaults.
type Options struct {
	// Workers is the worker-pool size; 0 means 2.
	Workers int
	// QueueDepth bounds the job queue (admission control); 0 means 64.
	QueueDepth int
	// CacheBytes is the decomposition cache budget; 0 means 256 MiB,
	// negative means unbounded.
	CacheBytes int64
	// MaxN caps the vertex count of generator jobs; 0 means 1<<20.
	MaxN int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 20
	}
	return o
}

// Server is the embeddable simulation service: an http.Handler plus the
// worker pool and cache behind it. Create with New, embed under any mux
// or run standalone (cmd/planard), and stop with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	metrics *trace.Recorder
	store   *store

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining  atomic.Bool
	closeOnce sync.Once

	jobsMu sync.Mutex
	jobs   map[string]*job
	nextID int64

	// testJobGate, when set by white-box tests, makes every worker block
	// here before executing a job — the deterministic way to hold the
	// queue full for backpressure assertions.
	testJobGate chan struct{}
}

// New starts a server: the worker pool runs until Shutdown.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		metrics:    trace.NewRecorder(),
		queue:      make(chan *job, opts.QueueDepth),
		quit:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	s.store = newStore(opts.CacheBytes, s.metrics)
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's metrics registry (counters, gauges and
// latency histograms) for embedding hosts and benchmarks.
func (s *Server) Metrics() *trace.Recorder { return s.metrics }

// CacheLen returns the number of cached decompositions.
func (s *Server) CacheLen() int { return s.store.len() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new jobs are rejected with 503 immediately,
// queued and in-flight jobs keep running until done or until ctx expires,
// at which point they are cancelled (their supervised retries stop
// mid-flight) and Shutdown returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.closeOnce.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/graphs/{hash}", s.handleGraphSummary)
	s.mux.HandleFunc("GET /v1/graphs/{hash}/query/{kind}", s.handleGraphQuery)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
}

// httpError is the uniform error body. Field locates a malformed request
// field (decode-time 400s); Witness carries the guard's typed rejection
// evidence (semantic 422s).
type httpError struct {
	Error   string         `json:"error"`
	Field   string         `json:"field,omitempty"`
	Witness *guard.Witness `json:"witness,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: validate, admit, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := nowNanos()
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.validate(s.opts.MaxN); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	inline, ok := s.admitInline(w, &req)
	if !ok {
		return
	}

	s.jobsMu.Lock()
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("j%d", s.nextID),
		req:         req,
		rec:         trace.NewRecorder(),
		in:          inline,
		state:       StateQueued,
		submittedNS: start,
	}
	s.jobs[j.id] = j
	s.jobsMu.Unlock()

	select {
	case s.queue <- j:
	default:
		// Admission control: the queue is full; shed load with a hint.
		s.jobsMu.Lock()
		delete(s.jobs, j.id)
		s.jobsMu.Unlock()
		s.metrics.Count("serve.jobs.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry later", s.opts.QueueDepth)
		return
	}
	s.metrics.Count("serve.jobs.submitted", 1)
	s.metrics.SetGauge("serve.queue.depth", int64(len(s.queue)))
	s.metrics.Observe("serve.latency.submit_us", sinceMicros(start))
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// admitInline decodes, field-checks and guard-validates an inline graph
// submission before it consumes a queue slot, writing the rejection and
// returning ok=false on any violation: a malformed body is a 400 naming
// the offending field, a structurally well-formed but non-planar or
// corrupted-embedding graph is a 422 carrying the guard's typed witness.
// Generator requests pass through untouched (their instances are valid by
// construction). On admission the decoded instance is returned so the
// worker never re-parses the raw bytes.
func (s *Server) admitInline(w http.ResponseWriter, req *JobRequest) (*gen.Instance, bool) {
	if len(req.Graph) == 0 {
		return nil, true
	}
	wire, err := gen.DecodeWire(req.Graph)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "graph: %v", err)
		return nil, false
	}
	if wire.N > s.opts.MaxN {
		writeJSON(w, http.StatusBadRequest, httpError{
			Error: fmt.Sprintf("graph: n = %d exceeds the server limit %d", wire.N, s.opts.MaxN),
			Field: "n",
		})
		return nil, false
	}
	if err := wire.Check(); err != nil {
		body := httpError{Error: err.Error()}
		var fe *gen.FieldError
		if errors.As(err, &fe) {
			body.Field = fe.Field
			if fe.Index >= 0 {
				body.Field = fmt.Sprintf("%s[%d]", fe.Field, fe.Index)
			}
		}
		s.metrics.Count("serve.jobs.malformed", 1)
		writeJSON(w, http.StatusBadRequest, body)
		return nil, false
	}
	in, err := wire.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "graph: %v", err)
		return nil, false
	}
	verdict, err := guard.ValidateInstance(in, guard.Options{Seed: 1})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "guard: %v", err)
		return nil, false
	}
	if !verdict.OK {
		s.metrics.Count("serve.jobs.rejected_input", 1)
		writeJSON(w, http.StatusUnprocessableEntity, httpError{
			Error:   fmt.Sprintf("graph rejected (%s): %s", verdict.Witness.Reason, verdict.Witness.Detail),
			Witness: verdict.Witness,
		})
		return nil, false
	}
	return in, true
}

// retryAfterSeconds estimates the backoff hint from the recent build
// latency: a full queue drains in about depth × mean build time / workers.
func (s *Server) retryAfterSeconds() int {
	h := s.metrics.Histogram("serve.latency.build_ms")
	meanMS := 1000.0
	if h != nil && h.N > 0 {
		meanMS = h.Mean()
	}
	sec := int(meanMS*float64(s.opts.QueueDepth)/float64(s.opts.Workers)/1000 + 1)
	if sec < 1 {
		sec = 1
	}
	if sec > 300 {
		sec = 300
	}
	return sec
}

// lookupJob resolves {id} or writes 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	j := s.jobs[id]
	s.jobsMu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return nil
	}
	return j
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: a queued job is canceled in
// place (workers skip it); a running job has its context cancelled, which
// stops supervised retries mid-flight. Terminal jobs are left unchanged.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.doneNS = nowNanos()
		s.metrics.Count("serve.jobs.canceled", 1)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's recorded spans,
// metrics and samples as JSONL (internal/trace export format). The
// recorder is internally synchronized, so streaming a running job yields
// a consistent prefix of its trace.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := j.rec.WriteJSONL(w); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

// handleMetrics is GET /v1/metrics: one consistent snapshot, taken under
// a single recorder lock and deep-copied, so concurrent scrapes never race
// the writers and two scrapes of an idle server are byte-identical
// (sections are name-sorted lists, never Go maps).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.MetricsSnapshot())
}

// handleHealth is GET /v1/healthz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	state := "ok"
	if s.draining.Load() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}
