package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSingleFlightConcurrentSubmitters races many submitters on the same
// graph hash: exactly one pipeline build may run (cache misses == 1), and
// every job must finish done with the same hash. Run under -race this also
// exercises the store and job locking.
func TestSingleFlightConcurrentSubmitters(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})
	const submitters = 24
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := postJob(t, ts.URL, `{"family":"stacked","n":120,"seed":5}`)
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	hash := ""
	for _, id := range ids {
		fin := awaitJob(t, ts.URL, id)
		if fin.State != StateDone {
			t.Fatalf("job %s: %+v", id, fin)
		}
		if hash == "" {
			hash = fin.Hash
		} else if fin.Hash != hash {
			t.Fatalf("hash diverged: %s vs %s", fin.Hash, hash)
		}
	}
	if misses := s.Metrics().Counter("serve.cache.misses"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (single-flight coalescing)", misses)
	}
	hits := s.Metrics().Counter("serve.cache.hits")
	joined := s.Metrics().Counter("serve.cache.joined")
	if hits+joined != submitters-1 {
		t.Fatalf("hits %d + joined %d != %d", hits, joined, submitters-1)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.CacheLen())
	}
}

// TestBackpressure429 fills the queue while workers are gated and asserts
// the admission-control contract: 429 with a Retry-After header, the
// rejection counter ticking, and rejected jobs not tracked.
func TestBackpressure429(t *testing.T) {
	const depth = 4
	s := New(Options{Workers: 1, QueueDepth: depth})
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One job occupies the worker (blocked on the gate); `depth` more fill
	// the queue. Depending on scheduling the worker may not have picked up
	// the first job yet, so allow one extra accepted submission before
	// demanding rejections.
	accepted := 0
	var rejectedResp *http.Response
	for i := 0; i < depth+2; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"family":"grid","n":36,"seed":1}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			accepted++
			resp.Body.Close()
			continue
		}
		rejectedResp = resp
		break
	}
	if rejectedResp == nil {
		t.Fatalf("no rejection after %d submissions into a depth-%d queue", depth+2, depth)
	}
	defer rejectedResp.Body.Close()
	if rejectedResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rejectedResp.StatusCode)
	}
	if ra := rejectedResp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.Metrics().Counter("serve.jobs.rejected"); got < 1 {
		t.Fatalf("rejected counter = %d", got)
	}

	// Every rejected submission returned a well-formed error and the
	// accepted ones still complete once the gate opens.
	close(gate)
	deadline := time.Now().Add(60 * time.Second)
	for s.Metrics().Counter("serve.jobs.completed") < int64(accepted) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d accepted jobs completed",
				s.Metrics().Counter("serve.jobs.completed"), accepted)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringBuilds races query traffic against job
// execution and metrics scrapes; meaningful under -race.
func TestConcurrentQueriesDuringBuilds(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 32})
	st := postJob(t, ts.URL, `{"family":"grid","n":64,"seed":1}`)
	fin := awaitJob(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("%+v", fin)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch w % 3 {
				case 0:
					getJSON(t, ts.URL+"/v1/graphs/"+fin.Hash+"/query/lca?u=0&v=63", nil)
				case 1:
					getJSON(t, ts.URL+"/v1/metrics", nil)
				default:
					postJob(t, ts.URL, `{"family":"grid","n":64,"seed":1}`)
				}
			}
		}(w)
	}
	wg.Wait()
}
