package serve

import "time"

// Wall-clock access for the serve layer, concentrated in one file.
//
// The library-wide rngwallclock contract bans wall-clock reads because
// algorithm output must depend only on inputs. The serve layer is the
// boundary where that rule legitimately bends: job timestamps, queue-wait
// and endpoint-latency histograms, and Retry-After estimates are
// observability of the service itself, not of the algorithms, and they
// never feed back into any computed result. Every read is annotated and
// routed through these helpers so the exemption stays auditable.

// nowNanos returns the current wall time in nanoseconds.
func nowNanos() int64 {
	return time.Now().UnixNano() //planarvet:wallclock service observability timestamps, never algorithm input
}

// sinceMicros returns the elapsed microseconds since a nowNanos reading.
func sinceMicros(startNanos int64) int64 {
	return (nowNanos() - startNanos) / int64(time.Microsecond)
}
