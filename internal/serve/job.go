package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"planardfs/internal/chaos"
	"planardfs/internal/gen"
	"planardfs/internal/sepengine"
	"planardfs/internal/trace"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

// The job lifecycle: queued → running → {done, failed, canceled}. A
// queued job can be canceled before it ever runs.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobRequest is the POST /v1/jobs body. Exactly one of Family or Graph
// selects the instance: Family+N+Seed runs a deterministic generator,
// Graph carries an inline instance in the gen JSON schema (same shape as
// planargen output).
type JobRequest struct {
	// Family is a generator family name (gen.Families).
	Family string `json:"family,omitempty"`
	// N is the approximate vertex count for generator jobs.
	N int `json:"n,omitempty"`
	// Seed disambiguates randomized families; deterministic families
	// ignore it (and it does not enter the content hash).
	Seed int64 `json:"seed,omitempty"`
	// Graph is an inline instance (gen JSON schema).
	Graph json.RawMessage `json:"graph,omitempty"`
	// ChaosSpec optionally injects deterministic faults into the build,
	// e.g. "structural=2,drops=1"; the supervised runtime retries or
	// degrades, never serving an uncertified decomposition.
	ChaosSpec string `json:"chaosSpec,omitempty"`
	// ChaosSeed seeds the fault plan; used only with ChaosSpec.
	ChaosSeed int64 `json:"chaosSeed,omitempty"`
	// MaxAttempts bounds the supervised retries (0 = runtime default).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Engine selects the separator backend for the whole-instance cycle
	// separator (internal/sepengine registry); empty runs the default
	// Theorem 1 engine. Non-default engines key the decomposition cache as
	// hash:engine, so per-engine results never alias the default's.
	Engine string `json:"engine,omitempty"`
}

// validate rejects malformed requests before they consume a queue slot.
func (r *JobRequest) validate(maxN int) error {
	hasGen := r.Family != ""
	hasInline := len(r.Graph) > 0
	if hasGen == hasInline {
		return errors.New("exactly one of family or graph is required")
	}
	if hasGen {
		if r.N < 3 {
			return fmt.Errorf("generator jobs need n >= 3, got %d", r.N)
		}
		if r.N > maxN {
			return fmt.Errorf("n = %d exceeds the server limit %d", r.N, maxN)
		}
		known := false
		for _, f := range gen.Families {
			if f == r.Family {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown family %q (know %v)", r.Family, gen.Families)
		}
	}
	if r.ChaosSpec != "" {
		if _, err := chaos.ParseSpec(r.ChaosSpec); err != nil {
			return err
		}
	}
	if _, err := sepengine.Get(r.Engine); err != nil {
		return err
	}
	return nil
}

// instance materializes the requested instance. Generator jobs re-derive
// the same instance (and therefore the same content hash) for the same
// (family, n, seed).
func (r *JobRequest) instance() (*gen.Instance, error) {
	if r.Family != "" {
		return gen.ByName(r.Family, r.N, r.Seed)
	}
	return gen.DecodeJSON(r.Graph)
}

// job is one tracked unit of work. Mutable fields are guarded by mu; the
// trace recorder is internally synchronized and safe to stream while the
// job runs.
type job struct {
	id  string
	req JobRequest
	rec *trace.Recorder
	// in caches the inline instance already decoded, checked and
	// guard-admitted by handleSubmit, so the worker never re-parses (or
	// re-trusts) the raw submission bytes. Nil for generator jobs.
	in *gen.Instance

	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	hash     string
	errMsg   string
	cached   bool
	outcome  string
	attempts int
	rounds   int

	submittedNS int64
	startedNS   int64
	doneNS      int64
}

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Hash is the content address, known once the instance materialized.
	Hash string `json:"hash,omitempty"`
	// Cached reports that the decomposition was served from the store (or
	// a coalesced in-flight build) instead of a fresh pipeline run.
	Cached bool `json:"cached"`
	// Outcome is the supervised-recovery outcome of the build
	// (certified, certified-after-retry, degraded), empty until done.
	Outcome  string `json:"outcome,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Rounds is the charged paper-model round cost of the build.
	Rounds int    `json:"rounds,omitempty"`
	Error  string `json:"error,omitempty"`
	// QueueMicros and BuildMicros are wall-clock observability readings.
	QueueMicros int64 `json:"queueMicros"`
	BuildMicros int64 `json:"buildMicros"`
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		Hash:     j.hash,
		Cached:   j.cached,
		Outcome:  j.outcome,
		Attempts: j.attempts,
		Rounds:   j.rounds,
		Error:    j.errMsg,
	}
	if j.startedNS > 0 {
		st.QueueMicros = (j.startedNS - j.submittedNS) / 1000
	}
	if j.doneNS > 0 {
		st.BuildMicros = (j.doneNS - j.startedNS) / 1000
	}
	return st
}

// setState transitions the job; terminal states stamp doneNS.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCanceled || j.state == StateDone || j.state == StateFailed {
		return // terminal states are sticky
	}
	j.state = s
	switch s {
	case StateRunning:
		j.startedNS = nowNanos()
	case StateDone, StateFailed, StateCanceled:
		j.doneNS = nowNanos()
	}
}

// fail marks the job failed with a message (unless already terminal).
func (j *job) fail(msg string) {
	j.mu.Lock()
	if j.state != StateCanceled {
		j.state = StateFailed
		j.errMsg = msg
		j.doneNS = nowNanos()
	}
	j.mu.Unlock()
}

// worker drains the job queue until quit closes, then finishes whatever is
// still queued (graceful drain) and exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.quit:
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one job end to end: materialize the instance, hash it,
// and resolve the decomposition through the single-flight cache.
func (s *Server) runJob(j *job) {
	if s.testJobGate != nil {
		<-s.testJobGate
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.mu.Lock()
	if j.state == StateCanceled {
		j.mu.Unlock()
		cancel()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	j.setState(StateRunning)
	s.metrics.SetGauge("serve.queue.depth", int64(len(s.queue)))
	waitUS := (nowNanos() - j.submittedNS) / 1000
	s.metrics.Observe("serve.latency.queue_wait_us", waitUS)

	in := j.in
	if in == nil {
		var err error
		in, err = j.req.instance()
		if err != nil {
			j.fail(err.Error())
			s.metrics.Count("serve.jobs.failed", 1)
			return
		}
	}
	// Non-default engines get their own cache entries: the content address
	// keys the default engine's decomposition, hash:engine the others, so
	// existing query URLs keep resolving the default transparently.
	hash := gen.ContentHash(in)
	if j.req.Engine != "" && j.req.Engine != sepengine.DefaultEngine {
		hash += ":" + j.req.Engine
	}
	j.mu.Lock()
	j.hash = hash
	j.mu.Unlock()

	var plan *chaos.Plan
	if j.req.ChaosSpec != "" {
		spec, err := chaos.ParseSpec(j.req.ChaosSpec)
		if err != nil {
			j.fail(err.Error())
			s.metrics.Count("serve.jobs.failed", 1)
			return
		}
		plan = chaos.NewPlan(j.req.ChaosSeed, spec)
	}

	buildStart := nowNanos()
	d, cached, err := s.store.do(ctx, hash, func() (*Decomp, error) {
		d, err := buildDecomp(ctx, in, pipelineRequest{
			plan:        plan,
			maxAttempts: j.req.MaxAttempts,
			tracer:      j.rec,
			engine:      j.req.Engine,
		})
		if err != nil {
			return nil, err
		}
		d.Hash = hash // the store key, engine suffix included
		d.BuildNanos = nowNanos() - buildStart
		return d, nil
	})
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		j.setState(StateCanceled)
		s.metrics.Count("serve.jobs.canceled", 1)
	case err != nil:
		j.fail(err.Error())
		s.metrics.Count("serve.jobs.failed", 1)
	default:
		j.mu.Lock()
		j.cached = cached
		j.outcome = d.Outcome
		j.attempts = d.Attempts
		j.rounds = d.Rounds
		j.mu.Unlock()
		j.setState(StateDone)
		s.metrics.Count("serve.jobs.completed", 1)
		s.metrics.Observe("serve.latency.build_ms", (nowNanos()-buildStart)/1e6)
	}
}
