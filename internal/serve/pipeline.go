package serve

import (
	"context"
	"fmt"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/dfs"
	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/sepengine"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// Decomp is the cached decomposition of one content-addressed instance:
// everything the Theorem 2 pipeline produces that repeat queries want —
// the certified BFS spanning tree, the DFS tree with its preorder
// intervals and LCA tables, the cycle separator with its greedy side
// assignment, and the certification verdicts. Once built it is immutable;
// query handlers read it without locks and without ever re-running the
// pipeline.
type Decomp struct {
	// Hash is the content address (gen.ContentHash) the store keys on.
	Hash string
	// In is the embedded instance the decomposition was computed over.
	In *gen.Instance
	// BFS is the BFS spanning tree rooted on the outer face.
	BFS *spanning.Tree
	// DFSParent is the Theorem 2 DFS parent array (-1 at the root).
	DFSParent []int
	// DFS is the tree view of DFSParent: preorder intervals, binary-lifted
	// LCA, subtree sizes.
	DFS *spanning.Tree
	// Root is the common root of both trees (on the outer face).
	Root int
	// Engine is the separator backend that produced Sep (sepengine
	// registry name).
	Engine string
	// Sep is the cycle separator of the whole instance.
	Sep *separator.Separator
	// SepSide is the greedy 2-coloring of G minus the separator:
	// 0 = separator vertex, 1 = side A, 2 = side B.
	SepSide []int
	// Verdicts are the proof-labeling certification results, in the fixed
	// order spanning, dfs, separator.
	Verdicts []VerdictSummary
	// Outcome is the supervised-recovery outcome of the DFS stage.
	Outcome string
	// Attempts is the number of supervised attempts the DFS stage took.
	Attempts int
	// Rounds is the total charged paper-model round cost of the build
	// (DFS pipeline plus certification provers and verifiers).
	Rounds int
	// BuildNanos is the wall-clock build duration (cold path).
	BuildNanos int64
	// bytes is the store accounting estimate for LRU eviction.
	bytes int64
}

// VerdictSummary is the JSON-stable projection of a cert.Verdict.
type VerdictSummary struct {
	Scheme         string `json:"scheme"`
	OK             bool   `json:"ok"`
	Rejectors      int    `json:"rejectors"`
	LabelWords     int    `json:"labelWords"`
	ProverRounds   int    `json:"proverRounds"`
	VerifierRounds int    `json:"verifierRounds"`
}

// pipelineRequest carries the per-job knobs into the build.
type pipelineRequest struct {
	// plan optionally injects structural faults into the DFS stage (the
	// chaos pipeline); nil builds fault-free.
	plan *chaos.Plan
	// maxAttempts bounds the supervised retries; 0 uses the chaos default.
	maxAttempts int
	// tracer receives the job's spans and metrics; nil disables.
	tracer trace.Tracer
	// engine selects the separator backend; empty runs the default.
	engine string
}

// buildDecomp runs the full decomposition pipeline over in: BFS spanning
// tree, supervised Theorem 2 DFS (with Awerbuch degradation under faults),
// cycle separator with side assignment, and the three certification
// schemes. ctx cancellation aborts between stages and stops supervised
// retries mid-flight.
func buildDecomp(ctx context.Context, in *gen.Instance, pr pipelineRequest) (*Decomp, error) {
	g := in.G
	n := g.N()
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]

	bfs, err := spanning.BFSTree(g, root)
	if err != nil {
		return nil, fmt.Errorf("serve: BFS tree: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Supervised DFS: the primary stage is the separator pipeline whose
	// output the plan's structural faults may corrupt; certification
	// rejects corrupted attempts, and the runtime degrades to Awerbuch's
	// message-level DFS when the primary exhausts its budget.
	opt := cert.Options{Tracer: pr.tracer}
	var structural chaos.Counts
	var dfsRounds int
	primary := chaos.Stage[[]int]{
		Name:          "separator-pipeline",
		DefaultBudget: 10*n + 100,
		Run: func(attempt, budget int) ([]int, int, error) {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			pt, dtr, err := dfs.BuildTraced(g, in.Emb, in.OuterDart, root, pr.tracer)
			if err != nil {
				return nil, 0, err
			}
			parent := append([]int(nil), pt.Parent...)
			structural.Structural += int64(pr.plan.CorruptParents(attempt, root, parent))
			cm := shortcut.PaperCost{D: bfs.MaxDepth(), N: n}
			rounds := dist.DFSBuildOps(n, dtr.Phases, dtr.MaxJoinSubPhases).Rounds(cm, 1)
			dfsRounds = rounds
			return parent, rounds, nil
		},
		Certify: chaos.DFSCertifier(g, root, opt),
		Faults:  func() chaos.Counts { return structural },
	}
	fallback := chaos.AwerbuchDFS(g, root, pr.plan, opt)
	pol := chaos.Policy{MaxAttempts: pr.maxAttempts, Tracer: pr.tracer}
	parent, rep, err := chaos.RunWithRecoveryContext(ctx, primary, &fallback, pol)
	if err != nil {
		return nil, fmt.Errorf("serve: DFS stage: %w", err)
	}
	if rep.Outcome == chaos.OutcomeFailed {
		return nil, fmt.Errorf("serve: DFS stage failed after %d attempts", len(rep.Attempts))
	}
	dfsTree, err := spanning.NewFromParents(root, parent)
	if err != nil {
		return nil, fmt.Errorf("serve: DFS tree view: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cycle separator of the whole instance plus the greedy 2-coloring,
	// produced by the requested engine (validated plus side-checked inside
	// the registry).
	cfg, err := weightsConfig(in, bfs)
	if err != nil {
		return nil, err
	}
	res, err := sepengine.Find(pr.engine, cfg, sepengine.Options{Tracer: pr.tracer})
	if err != nil {
		return nil, fmt.Errorf("serve: separator: %w", err)
	}
	sep, side := res.Sep, res.Side
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Certify everything the cache will answer queries from.
	vSpan, err := cert.CertifySpanningTree(g, bfs, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: certify spanning: %w", err)
	}
	vDFS, err := cert.CertifyDFSTree(g, root, parent, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: certify dfs: %w", err)
	}
	vSep, err := cert.CertifySeparator(g, sep, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: certify separator: %w", err)
	}

	d := &Decomp{
		Hash:      gen.ContentHash(in),
		In:        in,
		BFS:       bfs,
		DFSParent: parent,
		DFS:       dfsTree,
		Root:      root,
		Engine:    res.Engine,
		Sep:       sep,
		SepSide:   side,
		Verdicts: []VerdictSummary{
			summarize(vSpan), summarize(vDFS), summarize(vSep),
		},
		Outcome:  rep.Outcome.String(),
		Attempts: len(rep.Attempts),
		Rounds: dfsRounds +
			vSpan.ProverRounds + vSpan.VerifierRounds + vSpan.AggRounds +
			vDFS.ProverRounds + vDFS.VerifierRounds + vDFS.AggRounds +
			vSep.ProverRounds + vSep.VerifierRounds + vSep.AggRounds,
	}
	d.bytes = estimateBytes(d)
	return d, nil
}

// weightsConfig wraps the planar-configuration constructor with a serve
// error prefix.
func weightsConfig(in *gen.Instance, tr *spanning.Tree) (*weights.Config, error) {
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		return nil, fmt.Errorf("serve: configuration: %w", err)
	}
	return cfg, nil
}

// summarize projects a verdict into its JSON-stable summary.
func summarize(v *cert.Verdict) VerdictSummary {
	return VerdictSummary{
		Scheme:         v.Scheme,
		OK:             v.OK,
		Rejectors:      len(v.Rejectors),
		LabelWords:     v.LabelWords,
		ProverRounds:   v.ProverRounds,
		VerifierRounds: v.VerifierRounds,
	}
}

// estimateBytes sizes a decomposition for the store's byte budget: the
// dominant arrays are counted exactly (8 bytes per int), the trees'
// binary-lifting tables at their asymptotic n·log n footprint.
func estimateBytes(d *Decomp) int64 {
	n := int64(d.In.G.N())
	m := int64(d.In.G.M())
	logn := int64(1)
	for x := n; x > 1; x >>= 1 {
		logn++
	}
	perTree := 8 * (6*n + n*logn) // parent/depth/size/tin/tout/children + lifting
	return 2*perTree + 8*(2*m+2*n) + 8*int64(len(d.Sep.Path)) + 1024
}
