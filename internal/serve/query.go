package serve

import (
	"net/http"
	"strconv"
)

// Cached query endpoints: every handler here answers exclusively from the
// immutable cached Decomp — no pipeline code runs on the query path. A
// miss is a 404 telling the client to POST a job first; it never triggers
// a rebuild, so query latency is bounded by in-memory reads.

// GraphSummary is the GET /v1/graphs/{hash} response.
type GraphSummary struct {
	Hash     string `json:"hash"`
	Name     string `json:"name"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Root     int    `json:"root"`
	SepLen   int    `json:"sepLen"`
	SepPhase string `json:"sepPhase"`
	// Engine is the separator backend that produced the cycle separator.
	Engine string `json:"engine"`
	// Outcome/Attempts/Rounds describe the build that produced the cached
	// decomposition.
	Outcome     string           `json:"outcome"`
	Attempts    int              `json:"attempts"`
	Rounds      int              `json:"rounds"`
	BuildMicros int64            `json:"buildMicros"`
	Verdicts    []VerdictSummary `json:"verdicts"`
}

// lookupDecomp resolves {hash} against the store or writes 404.
func (s *Server) lookupDecomp(w http.ResponseWriter, r *http.Request) *Decomp {
	hash := r.PathValue("hash")
	d, ok := s.store.get(hash)
	if !ok {
		s.metrics.Count("serve.query.miss", 1)
		writeErr(w, http.StatusNotFound,
			"no cached decomposition for %q; submit it via POST /v1/jobs first", hash)
		return nil
	}
	return d
}

// handleGraphSummary is GET /v1/graphs/{hash}.
func (s *Server) handleGraphSummary(w http.ResponseWriter, r *http.Request) {
	d := s.lookupDecomp(w, r)
	if d == nil {
		return
	}
	writeJSON(w, http.StatusOK, GraphSummary{
		Hash:        d.Hash,
		Name:        d.In.Name,
		N:           d.In.G.N(),
		M:           d.In.G.M(),
		Root:        d.Root,
		SepLen:      len(d.Sep.Path),
		SepPhase:    d.Sep.Phase.String(),
		Engine:      d.Engine,
		Outcome:     d.Outcome,
		Attempts:    d.Attempts,
		Rounds:      d.Rounds,
		BuildMicros: d.BuildNanos / 1000,
		Verdicts:    d.Verdicts,
	})
}

// queryVertex parses a required vertex parameter within [0, n).
func queryVertex(r *http.Request, key string, n int) (int, bool) {
	v, err := strconv.Atoi(r.URL.Query().Get(key))
	return v, err == nil && v >= 0 && v < n
}

// handleGraphQuery is GET /v1/graphs/{hash}/query/{kind}. Kinds:
//
//	lca?u=&v=    — lowest common ancestor in the cached DFS tree
//	order?v=     — DFS preorder interval, parent and depth of v
//	ancestor?u=&v= — whether u is a DFS-tree ancestor of v
//	separator?v= — separator membership and 2-coloring side of v
//	cert         — the cached certification verdicts
func (s *Server) handleGraphQuery(w http.ResponseWriter, r *http.Request) {
	start := nowNanos()
	d := s.lookupDecomp(w, r)
	if d == nil {
		return
	}
	kind := r.PathValue("kind")
	n := d.In.G.N()
	var resp any
	switch kind {
	case "lca":
		u, okU := queryVertex(r, "u", n)
		v, okV := queryVertex(r, "v", n)
		if !okU || !okV {
			writeErr(w, http.StatusBadRequest, "lca needs u and v in [0,%d)", n)
			return
		}
		l := d.DFS.LCA(u, v)
		resp = map[string]int{"u": u, "v": v, "lca": l, "depth": d.DFS.Depth[l]}
	case "order":
		v, ok := queryVertex(r, "v", n)
		if !ok {
			writeErr(w, http.StatusBadRequest, "order needs v in [0,%d)", n)
			return
		}
		lo, hi := d.DFS.Interval(v)
		resp = map[string]int{
			"v": v, "parent": d.DFSParent[v], "depth": d.DFS.Depth[v],
			"tin": lo, "tout": hi, "subtreeSize": d.DFS.SubtreeSize(v),
		}
	case "ancestor":
		u, okU := queryVertex(r, "u", n)
		v, okV := queryVertex(r, "v", n)
		if !okU || !okV {
			writeErr(w, http.StatusBadRequest, "ancestor needs u and v in [0,%d)", n)
			return
		}
		resp = map[string]bool{"ancestor": d.DFS.IsAncestor(u, v)}
	case "separator":
		v, ok := queryVertex(r, "v", n)
		if !ok {
			writeErr(w, http.StatusBadRequest, "separator needs v in [0,%d)", n)
			return
		}
		resp = map[string]any{
			"v":           v,
			"onSeparator": d.SepSide[v] == 0,
			"side":        d.SepSide[v],
			"sepLen":      len(d.Sep.Path),
			"endA":        d.Sep.EndA,
			"endB":        d.Sep.EndB,
		}
	case "cert":
		resp = d.Verdicts
	default:
		writeErr(w, http.StatusNotFound,
			"unknown query kind %q (know lca, order, ancestor, separator, cert)", kind)
		return
	}
	s.metrics.Count("serve.query."+kind, 1)
	s.metrics.Observe("serve.latency.query_us", sinceMicros(start))
	writeJSON(w, http.StatusOK, resp)
}
