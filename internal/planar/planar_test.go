package planar

import (
	"sort"
	"testing"

	"planardfs/internal/graph"
)

// triangleInstance builds the triangle A=0 (0,0), B=1 (1,0), C=2 (0.5,1)
// with clockwise rotations as drawn in the plane (y up):
// rot[0]=[C,B], rot[1]=[C,A], rot[2]=[B,A].
func triangleInstance(t *testing.T) (*graph.Graph, *Embedding) {
	t.Helper()
	g := graph.New(3)
	g.MustAddEdge(0, 1) // e0
	g.MustAddEdge(1, 2) // e1
	g.MustAddEdge(2, 0) // e2
	emb, err := FromNeighborOrders(g, [][]int{{2, 1}, {2, 0}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g, emb
}

func TestDartPrimitives(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(1, 2) // e0: darts 0 (1->2), 1 (2->1)
	if Tail(g, 0) != 1 || Head(g, 0) != 2 || Tail(g, 1) != 2 || Head(g, 1) != 1 {
		t.Fatal("dart orientation wrong")
	}
	if Twin(0) != 1 || Twin(1) != 0 {
		t.Fatal("twin wrong")
	}
	if DartFrom(g, 0, 1) != 0 || DartFrom(g, 0, 2) != 1 {
		t.Fatal("DartFrom wrong")
	}
}

func TestTriangleFaces(t *testing.T) {
	g, emb := triangleInstance(t)
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := emb.TraceFaces()
	if fs.Count() != 2 {
		t.Fatalf("faces = %d, want 2", fs.Count())
	}
	// The inner face must be traced counterclockwise: 0->1, 1->2, 2->0.
	d01 := DartFrom(g, 0, 0) // edge 0 is {0,1}, dart 0 is 0->1
	inner := fs.FaceOf[d01]
	cyc := fs.Cycles()[inner]
	if len(cyc) != 3 {
		t.Fatalf("inner face length %d", len(cyc))
	}
	seen := map[int]bool{}
	for _, d := range cyc {
		seen[d] = true
	}
	for _, want := range []int{DartFrom(g, 0, 0), DartFrom(g, 1, 1), DartFrom(g, 2, 2)} {
		if !seen[want] {
			t.Fatalf("inner face %v missing dart %d (ccw traversal 0->1->2->0)", cyc, want)
		}
	}
}

func TestGenusOfK4Rotations(t *testing.T) {
	// K4 with a planar rotation system: vertex 3 in the middle of triangle
	// 0,1,2 (coordinates as in triangleInstance, 3 at centroid).
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	// Clockwise orders (y up): at 0 (corner lower-left): C, x, B -> [2,3,1];
	// at 1 (lower-right): C=2 at ~117deg, x at ~146deg? compute: from 1=(1,0):
	// 2=(0.5,1) angle 117; 3=(0.5,0.33) angle 146; 0=(0,0) angle 180.
	// Clockwise from north: 2 (117), 3 (146)? Clockwise = decreasing angle
	// from 90: 89..0,359..181: none until... angles >90 come last:
	// decreasing from 90 wraps to 359 then down to 180,146,117.
	// So clockwise: [0 (180), 3 (146), 2 (117)]. Hmm order: from 90 going
	// clockwise we pass 0,359,...,181,180(0),...,146(3),...,117(2).
	emb, err := FromNeighborOrders(g, [][]int{
		{2, 3, 1}, // at 0: C(63), x(33), B(0) decreasing
		{0, 3, 2}, // at 1
		{1, 3, 0}, // at 2: B(297), x(251)? from 2=(0.5,1): 3 at angle atan2(-0.67,0)=270, 0 at atan2(-1,-0.5)=243; clockwise from north: 1(297), 3(270), 0(243)
	})
	_ = emb
	if err == nil {
		t.Fatal("expected error: vertex 3 rotation missing")
	}
	emb, err = FromNeighborOrders(g, [][]int{
		{2, 3, 1},
		{0, 3, 2},
		{1, 3, 0},
		{2, 1, 0}, // at centroid: looking out, clockwise from north: C(90), B(327), A(213)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatalf("planar K4 rotations rejected: %v", err)
	}
	fs := emb.TraceFaces()
	if fs.Count() != 4 {
		t.Fatalf("K4 faces = %d, want 4", fs.Count())
	}

	// A non-planar rotation system for K4 exists (genus 1).
	emb2, err := FromNeighborOrders(g, [][]int{
		{1, 2, 3},
		{0, 2, 3},
		{0, 1, 3},
		{0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if emb2.Genus() == 0 {
		// This specific system might be planar; perturb instead.
		t.Skip("alternate rotation happened to be planar")
	}
	if err := emb2.Validate(); err == nil {
		t.Fatal("non-planar rotation accepted")
	}
}

func TestNextCWCCWInverse(t *testing.T) {
	_, emb := triangleInstance(t)
	for v := 0; v < 3; v++ {
		for _, d := range emb.Rotation(v) {
			if emb.NextCCW(emb.NextCW(d)) != d {
				t.Fatal("NextCCW(NextCW(d)) != d")
			}
		}
	}
}

func TestClassifyCycleTriangleWithCenter(t *testing.T) {
	// Triangle + center vertex: classify against the outer triangle cycle.
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1)
	e12 := g.MustAddEdge(1, 2)
	e20 := g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	emb, err := FromNeighborOrders(g, [][]int{
		{2, 3, 1},
		{0, 3, 2},
		{1, 3, 0},
		{2, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outer face: face left of dart 1->0 (below the bottom edge).
	outer := emb.OuterFaceOf(DartFrom(g, e01, 1))
	cc, err := emb.ClassifyCycle([]int{e01, e12, e20}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.OnCycle[0] || !cc.OnCycle[1] || !cc.OnCycle[2] || cc.OnCycle[3] {
		t.Fatalf("OnCycle = %v", cc.OnCycle)
	}
	if !cc.InsideVertex[3] {
		t.Fatal("center vertex should be inside the triangle")
	}
	if cc.InsideVertex[0] || cc.InsideVertex[1] || cc.InsideVertex[2] {
		t.Fatal("cycle vertices must not be inside")
	}
}

func TestClassifyCycleRejectsNonCycle(t *testing.T) {
	g, emb := triangleInstance(t)
	outer := emb.OuterFaceOf(DartFrom(g, 0, 1))
	if _, err := emb.ClassifyCycle([]int{0}, outer); err == nil {
		t.Fatal("single edge accepted as cycle")
	}
	if _, err := emb.ClassifyCycle([]int{0, 0}, outer); err == nil {
		t.Fatal("repeated edge accepted")
	}
	if _, err := emb.ClassifyCycle([]int{99}, outer); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestInsertEdgeIntoSquare(t *testing.T) {
	// Square 0-1-2-3 (ccw coordinates (0,0),(1,0),(1,1),(0,1)); insert the
	// diagonal {0,2}. Both diagonal insertions through the inner face and
	// through the outer face preserve planarity.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	emb, err := FromNeighborOrders(g, [][]int{
		{3, 1}, // at (0,0): 3 is north (90), 1 east (0)
		{0, 2}, // at (1,0): 0 west(180)... clockwise from north: 2 north(90), 0 west(180): order [2,0]? angle 90 then 180: clockwise from north hits 0(east) region first... recompute below
		{3, 1},
		{0, 2},
	})
	// Correct clockwise orders: at 1=(1,0): neighbours 2=(1,1) at 90deg,
	// 0=(0,0) at 180deg; clockwise from north: 90 (2) then wrapping down
	// 89..0..359..181..180 (0). So [2,0] is right only if 2 comes first: yes.
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
	ins := emb.CompatibleInsertions(0, 2)
	if len(ins) == 0 {
		t.Fatal("no compatible insertion for square diagonal")
	}
	for _, in := range ins {
		ng, nemb, err := emb.InsertEdge(in)
		if err != nil {
			t.Fatal(err)
		}
		if nemb.Genus() != 0 {
			t.Fatal("CompatibleInsertions returned non-planar insertion")
		}
		if !ng.HasEdge(0, 2) {
			t.Fatal("edge not inserted")
		}
		if ng.M() != 5 {
			t.Fatal("edge count wrong")
		}
	}
	// FaceInsertions must produce only planar insertions and cover both
	// faces (diagonal can go through inner or outer face).
	fins := emb.FaceInsertions(0, 2)
	if len(fins) != 2 {
		t.Fatalf("FaceInsertions = %d, want 2 (inner and outer)", len(fins))
	}
	for _, in := range fins {
		_, nemb, err := emb.InsertEdge(in)
		if err != nil {
			t.Fatal(err)
		}
		if nemb.Genus() != 0 {
			t.Fatalf("FaceInsertions produced non-planar insertion %+v", in)
		}
	}
}

func TestInsertEdgeErrors(t *testing.T) {
	_, emb := triangleInstance(t)
	if _, _, err := emb.InsertEdge(Insertion{U: 0, V: 1, PosU: 0, PosV: 0}); err == nil {
		t.Fatal("duplicate edge insertion accepted")
	}
	if _, _, err := emb.InsertEdge(Insertion{U: 0, V: 0, PosU: 0, PosV: 0}); err == nil {
		t.Fatal("self-loop insertion accepted")
	}
	if _, _, err := emb.InsertEdge(Insertion{U: 0, V: 2, PosU: 99, PosV: 0}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
}

func TestEmbeddingValidation(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	if _, err := NewEmbedding(g, [][]int{{0}}); err == nil {
		t.Fatal("wrong vertex count accepted")
	}
	if _, err := NewEmbedding(g, [][]int{{0, 1}, {}}); err == nil {
		t.Fatal("wrong rotation length accepted")
	}
	if _, err := NewEmbedding(g, [][]int{{1}, {0}}); err == nil {
		t.Fatal("dart with wrong tail accepted")
	}
	emb, err := NewEmbedding(g, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	_, emb := triangleInstance(t)
	c := emb.Clone()
	c.next[0] = -9
	c.first[0] = -7
	if emb.next[0] == -9 {
		t.Fatal("clone shares rotation storage")
	}
	if emb.first[0] == -7 {
		t.Fatal("clone shares first-dart storage")
	}
}

func TestNeighborOrder(t *testing.T) {
	_, emb := triangleInstance(t)
	got := emb.NeighborOrder(0)
	want := []int{2, 1}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("NeighborOrder(0) = %v, want %v", got, want)
	}
}

func TestFacesAtVertex(t *testing.T) {
	_, emb := triangleInstance(t)
	fs := emb.TraceFaces()
	at0 := fs.FacesAtVertex(0)
	sort.Ints(at0)
	if len(at0) != 2 {
		t.Fatalf("vertex 0 should touch both faces, got %v", at0)
	}
}

func TestDualSides(t *testing.T) {
	g, emb := triangleInstance(t)
	dual := emb.BuildDual()
	for e := 0; e < g.M(); e++ {
		if dual.Side[e][0] == dual.Side[e][1] {
			t.Fatalf("edge %d has the same face on both sides", e)
		}
	}
}
