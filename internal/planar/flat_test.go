package planar

import (
	"math/rand"
	"testing"

	"planardfs/internal/graph"
)

// refFaceCycles recomputes the face partition of emb from first principles,
// using only the public rotation API (Rotation returns a materialized copy,
// so this path is independent of the flat next/prev arrays): faceNext(d) =
// successor of Twin(d) in the rotation at its tail. Each face cycle is
// rotated to start at its minimum dart; the list is sorted by that minimum.
func refFaceCycles(g *graph.Graph, emb *Embedding) [][]int {
	faceNext := make(map[int]int, 2*g.M())
	for v := 0; v < g.N(); v++ {
		rot := emb.Rotation(v)
		for i, d := range rot {
			faceNext[Twin(d)] = rot[(i+1)%len(rot)]
		}
	}
	seen := make(map[int]bool, 2*g.M())
	var cycles [][]int
	for d0 := 0; d0 < 2*g.M(); d0++ {
		if seen[d0] {
			continue
		}
		var cyc []int
		for d := d0; !seen[d]; d = faceNext[d] {
			seen[d] = true
			cyc = append(cyc, d)
		}
		// Rotate so the minimum dart leads.
		minAt := 0
		for i, d := range cyc {
			if d < cyc[minAt] {
				minAt = i
			}
		}
		cyc = append(cyc[minAt:], cyc[:minAt]...)
		cycles = append(cycles, cyc)
	}
	return cycles
}

// randomTreeEmbedding builds a random tree on n vertices with a random
// rotation order at every vertex — any rotation system of a tree is a valid
// planar embedding, which makes trees the ideal randomized fixture.
func randomTreeEmbedding(t *testing.T, rng *rand.Rand, n int) (*graph.Graph, *Embedding) {
	t.Helper()
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v)
	}
	rot := make([][]int, n)
	for v := 0; v < n; v++ {
		ids := g.IncidentEdges(v)
		ds := make([]int, len(ids))
		for i, id := range ids {
			ds[i] = DartFrom(g, int(id), v)
		}
		rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		rot[v] = ds
	}
	emb, err := NewEmbedding(g, rot)
	if err != nil {
		t.Fatalf("tree embedding rejected: %v", err)
	}
	return g, emb
}

// TestTraceFacesMatchesReference checks the single-pass CSR face tracer
// against the naive map-based walk on randomized tree embeddings: the same
// face partition (as canonicalized cycles), consistent FaceOf labels, and a
// dart count adding up to 2m.
func TestTraceFacesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		g, emb := randomTreeEmbedding(t, rng, n)
		fs := emb.TraceFaces()
		ref := refFaceCycles(g, emb)
		if fs.Count() != len(ref) {
			t.Fatalf("n=%d: %d faces, reference found %d", n, fs.Count(), len(ref))
		}
		// Canonicalize the traced cycles the same way and index by leading
		// (minimum) dart.
		got := map[int][]int{}
		for f := 0; f < fs.Count(); f++ {
			cyc := fs.Cycle(f)
			minAt := 0
			for i, d := range cyc {
				if d < cyc[minAt] {
					minAt = i
				}
			}
			c := make([]int, 0, len(cyc))
			for i := range cyc {
				c = append(c, int(cyc[(minAt+i)%len(cyc)]))
			}
			got[c[0]] = c
			// Every dart of the cycle must carry this face's label.
			for _, d := range cyc {
				if int(fs.FaceOf[d]) != f {
					t.Fatalf("n=%d: FaceOf[%d] = %d, cycle says %d", n, d, fs.FaceOf[d], f)
				}
			}
		}
		total := 0
		for _, rc := range ref {
			total += len(rc)
			gc, ok := got[rc[0]]
			if !ok {
				t.Fatalf("n=%d: no traced face starts at dart %d", n, rc[0])
			}
			if len(gc) != len(rc) {
				t.Fatalf("n=%d: face at dart %d has length %d, reference %d", n, rc[0], len(gc), len(rc))
			}
			for i := range rc {
				if gc[i] != rc[i] {
					t.Fatalf("n=%d: face at dart %d diverges at step %d: %v vs %v", n, rc[0], i, gc, rc)
				}
			}
		}
		if total != 2*g.M() {
			t.Fatalf("n=%d: reference covered %d darts, want %d", n, total, 2*g.M())
		}
		// A tree has exactly one face; Euler must agree.
		if fs.Count() != 1 || emb.Genus() != 0 {
			t.Fatalf("n=%d: tree traced to %d faces, genus %d", n, fs.Count(), emb.Genus())
		}
	}
}
