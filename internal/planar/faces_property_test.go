package planar

import (
	"testing"
	"testing/quick"

	"planardfs/internal/graph"
)

// buildRandomEmbedded returns a random stacked-triangulation-like embedded
// graph built directly (avoiding an import cycle with package gen): start
// from a triangle and insert vertices into faces.
func buildRandomEmbedded(seed int64, n int) (*graph.Graph, *Embedding, error) {
	nbrs := [][]int{{2, 1}, {2, 0}, {1, 0}}
	faces := [][3]int{{0, 1, 2}}
	rng := seed
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		x := int(rng % int64(mod))
		if x < 0 {
			x += mod
		}
		return x
	}
	insertAfter := func(v, w, x int) {
		for i, y := range nbrs[v] {
			if y == w {
				nbrs[v] = append(nbrs[v][:i+1], append([]int{x}, nbrs[v][i+1:]...)...)
				return
			}
		}
	}
	for len(nbrs) < n {
		f := next(len(faces))
		a, b, c := faces[f][0], faces[f][1], faces[f][2]
		x := len(nbrs)
		nbrs = append(nbrs, []int{c, b, a})
		insertAfter(a, c, x)
		insertAfter(b, a, x)
		insertAfter(c, b, x)
		faces[f] = [3]int{a, b, x}
		faces = append(faces, [3]int{b, c, x}, [3]int{c, a, x})
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for _, w := range nbrs[v] {
			if v < w {
				g.MustAddEdge(v, w)
			}
		}
	}
	emb, err := FromNeighborOrders(g, nbrs)
	if err != nil {
		return nil, nil, err
	}
	return g, emb, nil
}

// Property: TraceFaces partitions the darts — every dart is in exactly one
// face cycle, and FaceNext is a permutation consistent with the cycles.
func TestTraceFacesPartitionsDarts(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%80
		g, emb, err := buildRandomEmbedded(seed, n)
		if err != nil {
			return false
		}
		fs := emb.TraceFaces()
		counted := 0
		for _, cyc := range fs.Cycles() {
			counted += len(cyc)
			for i, d := range cyc {
				nxt := cyc[(i+1)%len(cyc)]
				if emb.FaceNext(d) != nxt {
					return false
				}
				if fs.FaceOf[d] != fs.FaceOf[nxt] {
					return false
				}
			}
		}
		return counted == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Euler's formula holds on every generated embedding.
func TestEulerFormulaProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%80
		g, emb, err := buildRandomEmbedded(seed, n)
		if err != nil {
			return false
		}
		fs := emb.TraceFaces()
		return g.N()-g.M()+fs.Count() == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClassifyCycle partitions vertices into on-cycle, inside, and
// outside; inside and outside are both nonempty only when the cycle
// strictly separates, and the inside is closed under non-cycle adjacency.
func TestClassifyCyclePartitionProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 4 + int(sz)%40
		g, emb, err := buildRandomEmbedded(seed, n)
		if err != nil {
			return false
		}
		// The triangle 0-1-2 is always a cycle of these graphs.
		e01, _ := g.EdgeID(0, 1)
		e12, _ := g.EdgeID(1, 2)
		e20, _ := g.EdgeID(2, 0)
		outer := emb.OuterFaceOf(DartFrom(g, e01, 1))
		cc, err := emb.ClassifyCycle([]int{e01, e12, e20}, outer)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if cc.OnCycle[v] && cc.InsideVertex[v] {
				return false
			}
		}
		// All non-triangle vertices are inside (they were stacked inside).
		for v := 3; v < n; v++ {
			if !cc.InsideVertex[v] {
				return false
			}
		}
		// Inside closed under adjacency avoiding the cycle.
		for _, e := range g.Edges() {
			if cc.InsideVertex[e.U] && !cc.OnCycle[e.V] && !cc.InsideVertex[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
