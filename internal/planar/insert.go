package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Insertion describes one way of inserting a virtual edge {U,V} into an
// embedding: the new dart out of U is placed at index PosU of U's rotation
// (shifting existing darts right), and symmetrically at V.
type Insertion struct {
	U, V       int
	PosU, PosV int
}

// InsertEdge returns a new graph and embedding with the edge {u,v} inserted
// at the given rotation positions. The input graph and embedding are not
// modified. The new edge's ID in the returned graph is the old M().
func (emb *Embedding) InsertEdge(ins Insertion) (*graph.Graph, *Embedding, error) {
	g := emb.g
	if g.HasEdge(ins.U, ins.V) {
		return nil, nil, fmt.Errorf("planar: edge {%d,%d} already present", ins.U, ins.V)
	}
	if ins.U == ins.V {
		return nil, nil, fmt.Errorf("planar: cannot insert self-loop at %d", ins.U)
	}
	if ins.PosU < 0 || ins.PosU > g.Degree(ins.U) || ins.PosV < 0 || ins.PosV > g.Degree(ins.V) {
		return nil, nil, fmt.Errorf("planar: insertion positions out of range")
	}
	ng := g.Clone()
	id := ng.MustAddEdge(ins.U, ins.V)
	dU := DartFrom(ng, id, ins.U)
	dV := DartFrom(ng, id, ins.V)
	rot := make([][]int, ng.N())
	for v := 0; v < ng.N(); v++ {
		old := emb.rot[v]
		switch v {
		case ins.U:
			rot[v] = insertAt(old, ins.PosU, dU)
		case ins.V:
			rot[v] = insertAt(old, ins.PosV, dV)
		default:
			rot[v] = append([]int(nil), old...)
		}
	}
	nemb, err := NewEmbedding(ng, rot)
	if err != nil {
		return nil, nil, err
	}
	return ng, nemb, nil
}

func insertAt(s []int, i, x int) []int {
	out := make([]int, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// CompatibleInsertions returns every insertion of the virtual edge {u,v}
// that keeps the rotation system planar (genus 0). A non-empty result means
// {u,v} is an ℰ-compatible virtual fundamental edge in the paper's sense.
// The search is brute force over all position pairs and intended for
// verification and small instances.
func (emb *Embedding) CompatibleInsertions(u, v int) []Insertion {
	var out []Insertion
	for pu := 0; pu <= emb.g.Degree(u); pu++ {
		for pv := 0; pv <= emb.g.Degree(v); pv++ {
			ins := Insertion{U: u, V: v, PosU: pu, PosV: pv}
			_, nemb, err := emb.InsertEdge(ins)
			if err != nil {
				continue
			}
			if nemb.Genus() == 0 {
				out = append(out, ins)
			}
		}
	}
	return out
}

// ECompatible reports whether the virtual edge {u,v} admits at least one
// planarity-preserving insertion.
func (emb *Embedding) ECompatible(u, v int) bool {
	return len(emb.CompatibleInsertions(u, v)) > 0
}

// FaceInsertions returns the insertions of virtual edge {u,v} that place the
// new edge inside a single existing face, i.e. u and v both lie on that face
// and the edge is drawn through it. These are exactly the
// planarity-preserving insertions, enumerated directly from the face
// structure (more efficient than CompatibleInsertions).
//
// For each face incidence of u (a dart d1 of the face with tail u) and each
// face incidence of v on the same face (dart d2 with tail v), inserting the
// new dart immediately before d1 at u and before d2 at v splits that face in
// two and preserves planarity.
func (emb *Embedding) FaceInsertions(u, v int) []Insertion {
	fs := emb.TraceFaces()
	var out []Insertion
	for _, d1 := range emb.rot[u] {
		f := fs.FaceOf[d1]
		for _, d2 := range emb.rot[v] {
			if fs.FaceOf[d2] != f {
				continue
			}
			out = append(out, Insertion{U: u, V: v, PosU: emb.pos[d1], PosV: emb.pos[d2]})
		}
	}
	return out
}
