package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Insertion describes one way of inserting a virtual edge {U,V} into an
// embedding: the new dart out of U is placed at index PosU of U's rotation
// (shifting existing darts right), and symmetrically at V.
type Insertion struct {
	U, V       int
	PosU, PosV int
}

// InsertEdge returns a new graph and embedding with the edge {u,v} inserted
// at the given rotation positions. The input graph and embedding are not
// modified. The new edge's ID in the returned graph is the old M().
func (emb *Embedding) InsertEdge(ins Insertion) (*graph.Graph, *Embedding, error) {
	g := emb.g
	if g.HasEdge(ins.U, ins.V) {
		return nil, nil, fmt.Errorf("planar: edge {%d,%d} already present", ins.U, ins.V)
	}
	if ins.U == ins.V {
		return nil, nil, fmt.Errorf("planar: cannot insert self-loop at %d", ins.U)
	}
	if ins.PosU < 0 || ins.PosU > g.Degree(ins.U) || ins.PosV < 0 || ins.PosV > g.Degree(ins.V) {
		return nil, nil, fmt.Errorf("planar: insertion positions out of range")
	}
	ng := g.Clone()
	id := ng.MustAddEdge(ins.U, ins.V)
	dU := DartFrom(ng, id, ins.U)
	dV := DartFrom(ng, id, ins.V)
	// Copy the flat rotation arrays, grown by the two new darts, and splice
	// each new dart into its tail's cyclic order — no per-vertex slices and
	// no revalidation pass.
	nemb := &Embedding{
		g:     ng,
		next:  append(append(make([]int32, 0, 2*ng.M()), emb.next...), -1, -1),
		prev:  append(append(make([]int32, 0, 2*ng.M()), emb.prev...), -1, -1),
		pos:   append(append(make([]int32, 0, 2*ng.M()), emb.pos...), -1, -1),
		headD: append(append(make([]int32, 0, 2*ng.M()), emb.headD...), 0, 0),
		first: append([]int32(nil), emb.first...),
	}
	nemb.headD[dU] = int32(ins.V)
	nemb.headD[dU^1] = int32(ins.U)
	//planarvet:narrowok dU and dV are darts of the new edge, < 2m and AddEdge bounds 2m to MaxInt32
	nemb.splice(ins.U, ins.PosU, int32(dU), g.Degree(ins.U))
	//planarvet:narrowok dU and dV are darts of the new edge, < 2m and AddEdge bounds 2m to MaxInt32
	nemb.splice(ins.V, ins.PosV, int32(dV), g.Degree(ins.V))
	return ng, nemb, nil
}

// splice inserts dart d at index pos of v's rotation, whose length before
// insertion is oldDeg, shifting later darts one position right.
func (emb *Embedding) splice(v, pos int, d int32, oldDeg int) {
	if oldDeg == 0 {
		emb.first[v] = d
		emb.next[d] = d
		emb.prev[d] = d
		emb.pos[d] = 0
		return
	}
	at := emb.first[v]
	for i := 0; i < pos; i++ {
		at = emb.next[at]
	}
	p := emb.prev[at]
	emb.next[p] = d
	emb.prev[d] = p
	emb.next[d] = at
	emb.prev[at] = d
	emb.pos[d] = int32(pos)
	if pos == 0 {
		emb.first[v] = d
	}
	for x := emb.next[d]; x != emb.first[v]; x = emb.next[x] {
		emb.pos[x]++
	}
}

// CompatibleInsertions returns every insertion of the virtual edge {u,v}
// that keeps the rotation system planar (genus 0). A non-empty result means
// {u,v} is an ℰ-compatible virtual fundamental edge in the paper's sense.
// The search is brute force over all position pairs and intended for
// verification and small instances.
func (emb *Embedding) CompatibleInsertions(u, v int) []Insertion {
	var out []Insertion
	for pu := 0; pu <= emb.g.Degree(u); pu++ {
		for pv := 0; pv <= emb.g.Degree(v); pv++ {
			ins := Insertion{U: u, V: v, PosU: pu, PosV: pv}
			_, nemb, err := emb.InsertEdge(ins)
			if err != nil {
				continue
			}
			if nemb.Genus() == 0 {
				out = append(out, ins)
			}
		}
	}
	return out
}

// ECompatible reports whether the virtual edge {u,v} admits at least one
// planarity-preserving insertion.
func (emb *Embedding) ECompatible(u, v int) bool {
	return len(emb.CompatibleInsertions(u, v)) > 0
}

// FaceInsertions returns the insertions of virtual edge {u,v} that place the
// new edge inside a single existing face, i.e. u and v both lie on that face
// and the edge is drawn through it. These are exactly the
// planarity-preserving insertions, enumerated directly from the face
// structure (more efficient than CompatibleInsertions).
//
// For each face incidence of u (a dart d1 of the face with tail u) and each
// face incidence of v on the same face (dart d2 with tail v), inserting the
// new dart immediately before d1 at u and before d2 at v splits that face in
// two and preserves planarity.
func (emb *Embedding) FaceInsertions(u, v int) []Insertion {
	fs := emb.TraceFaces()
	var out []Insertion
	du0 := emb.first[u]
	if du0 < 0 {
		return out
	}
	for d1 := du0; ; {
		f := fs.FaceOf[d1]
		dv0 := emb.first[v]
		if dv0 >= 0 {
			for d2 := dv0; ; {
				if fs.FaceOf[d2] == f {
					out = append(out, Insertion{U: u, V: v, PosU: int(emb.pos[d1]), PosV: int(emb.pos[d2])})
				}
				d2 = emb.next[d2]
				if d2 == dv0 {
					break
				}
			}
		}
		d1 = emb.next[d1]
		if d1 == du0 {
			break
		}
	}
	return out
}
