package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Faces is the face structure of an embedding: every dart belongs to exactly
// one face cycle. Cycles are stored in CSR form — one flat dart array with
// per-face offsets — so tracing allocates O(1) slices regardless of the face
// count.
type Faces struct {
	emb *Embedding
	// FaceOf[d] is the face index of dart d.
	FaceOf []int32
	// CSR cycle storage: the darts of face f, in traversal order starting
	// from its smallest dart, are cyc[off[f]:off[f+1]].
	off []int32
	cyc []int32
}

// TraceFaces computes all faces of the embedding by iterating the FaceNext
// successor rule. Face f's cycle begins at its smallest dart. The
// allocation prologue lives here; the trace itself is the noalloc core
// below, so retracing after virtual-edge insertions stays GC-quiet.
func (emb *Embedding) TraceFaces() *Faces {
	m2 := 2 * emb.g.M()
	fs := &Faces{
		emb:    emb,
		FaceOf: make([]int32, m2),
		cyc:    make([]int32, m2),
		// Every face holds at least one dart, so m2+1 offsets suffice.
		off: make([]int32, 1, m2+1),
	}
	emb.traceFacesInto(fs)
	return fs
}

// traceFacesInto runs the face trace proper over storage presized by
// TraceFaces: FaceOf and cyc hold 2m darts, off has capacity for one
// offset per face plus the leading zero. This is the separator pipeline's
// steady-state face walk — it re-runs after every virtual-edge insertion —
// so the loop must not touch the allocator.
//
//planarvet:noalloc TestFaceTraceZeroAlloc
func (emb *Embedding) traceFacesInto(fs *Faces) {
	fs.off = fs.off[:1]
	for i := range fs.FaceOf {
		fs.FaceOf[i] = -1
	}
	cursor := 0
	for d := 0; d < len(fs.FaceOf); d++ {
		if fs.FaceOf[d] != -1 {
			continue
		}
		//planarvet:narrowok one offset per face, so len(fs.off) ≤ 2m+1 and AddEdge bounds 2m to MaxInt32
		id := int32(len(fs.off) - 1)
		for x := int32(d); fs.FaceOf[x] == -1; x = emb.next[int(x)^1] {
			fs.FaceOf[x] = id
			fs.cyc[cursor] = x
			cursor++
		}
		//planarvet:narrowok cursor counts traced darts, ≤ 2m which AddEdge bounds to MaxInt32
		fs.off = append(fs.off, int32(cursor)) //planarvet:allocok off is presized to one slot per face by TraceFaces, append stays in capacity
	}
}

// Count returns the number of faces.
func (fs *Faces) Count() int { return len(fs.off) - 1 }

// Cycle returns the darts of face f in traversal order, as a view into the
// CSR storage: zero allocations, and the returned slice must not be
// modified.
func (fs *Faces) Cycle(f int) []int32 { return fs.cyc[fs.off[f]:fs.off[f+1]] }

// CycleLen returns the number of darts on face f.
func (fs *Faces) CycleLen(f int) int { return int(fs.off[f+1] - fs.off[f]) }

// Cycles materializes all face cycles as [][]int, indexed by face. It exists
// for tests and diagnostics; algorithmic code should use Cycle views.
func (fs *Faces) Cycles() [][]int {
	out := make([][]int, fs.Count())
	for f := range out {
		seg := fs.Cycle(f)
		c := make([]int, len(seg))
		for i, d := range seg {
			c[i] = int(d)
		}
		out[f] = c
	}
	return out
}

// FaceVertices returns the vertices on face f in traversal order (a vertex
// may repeat if the face boundary visits it more than once).
func (fs *Faces) FaceVertices(f int) []int {
	seg := fs.Cycle(f)
	out := make([]int, len(seg))
	for i, d := range seg {
		out[i] = int(fs.emb.headD[int(d)^1]) // tail of d
	}
	return out
}

// FacesAtVertex returns the distinct faces incident to v, in rotation order
// of first incidence.
func (fs *Faces) FacesAtVertex(v int) []int {
	var out []int
	d := fs.emb.first[v]
	if d < 0 {
		return out
	}
	for x := d; ; {
		f := int(fs.FaceOf[x])
		dup := false
		for _, o := range out {
			if o == f {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
		x = fs.emb.next[x]
		if x == d {
			return out
		}
	}
}

// Genus returns the Euler genus of the embedding, assuming the underlying
// graph is connected: g = (2 - V + E - F) / 2.
func (emb *Embedding) Genus() int {
	return (2 - emb.g.N() + emb.g.M() - emb.faceCount()) / 2
}

// faceCount returns the number of faces, counting the single face of an
// edgeless graph (which has no dart cycles) as 1.
func (emb *Embedding) faceCount() int {
	if emb.g.M() == 0 {
		return 1
	}
	return emb.TraceFaces().Count()
}

// Validate checks that the embedding is genus 0 (a planar embedding) and the
// graph is connected.
func (emb *Embedding) Validate() error {
	if !emb.g.Connected() {
		return fmt.Errorf("planar: graph is not connected")
	}
	euler := emb.g.N() - emb.g.M() + emb.faceCount()
	if euler != 2 {
		return fmt.Errorf("planar: rotation system has Euler characteristic %d (genus %d), not a planar embedding",
			euler, (2-euler)/2)
	}
	return nil
}

// Dual returns the dual graph of the embedding: one vertex per face, one
// edge per primal edge (connecting the faces on its two sides). Dual edge
// identifiers equal primal edge identifiers. Duplicate face pairs and loops
// are possible in duals, so the dual is returned as an adjacency via edge
// sides rather than a graph.Graph.
type Dual struct {
	Faces *Faces
	// Side[e] gives the two face indices separated by primal edge e
	// (Side[e][0] = face of dart 2e, Side[e][1] = face of dart 2e+1).
	Side [][2]int
}

// BuildDual computes the dual structure of the embedding.
func (emb *Embedding) BuildDual() *Dual {
	fs := emb.TraceFaces()
	d := &Dual{Faces: fs, Side: make([][2]int, emb.g.M())}
	for e := 0; e < emb.g.M(); e++ {
		d.Side[e] = [2]int{int(fs.FaceOf[2*e]), int(fs.FaceOf[2*e+1])}
	}
	return d
}

// CycleClassification is the result of classifying the plane against a
// simple cycle: which faces and vertices are strictly inside.
type CycleClassification struct {
	// OnCycle[v] reports whether v lies on the cycle.
	OnCycle []bool
	// InsideVertex[v] reports whether v is strictly inside the cycle.
	InsideVertex []bool
	// InsideFace[f] reports whether face f is inside the cycle.
	InsideFace []bool
}

// ClassifyCycle classifies faces and vertices of the embedding against the
// simple cycle formed by the given edge IDs, taking outerFace (a face index
// of emb.TraceFaces ordering) as the unbounded face. The cycle's edges cut
// the dual graph into exactly two components; the component containing
// outerFace is the outside.
func (emb *Embedding) ClassifyCycle(cycleEdges []int, outerFace int) (*CycleClassification, error) {
	fs := emb.TraceFaces()
	onCycleEdge := make([]bool, emb.g.M())
	for _, e := range cycleEdges {
		if e < 0 || e >= emb.g.M() {
			return nil, fmt.Errorf("planar: cycle edge %d out of range", e)
		}
		if onCycleEdge[e] {
			return nil, fmt.Errorf("planar: cycle edge %d repeated", e)
		}
		onCycleEdge[e] = true
	}
	// Union faces across non-cycle edges.
	uf := graph.NewUnionFind(fs.Count())
	for e := 0; e < emb.g.M(); e++ {
		if !onCycleEdge[e] {
			uf.Union(int(fs.FaceOf[2*e]), int(fs.FaceOf[2*e+1]))
		}
	}
	if uf.Count() != 2 {
		return nil, fmt.Errorf("planar: edge set does not cut the sphere into 2 regions (got %d); not a simple cycle", uf.Count())
	}
	out := uf.Find(outerFace)
	cc := &CycleClassification{
		OnCycle:      make([]bool, emb.g.N()),
		InsideVertex: make([]bool, emb.g.N()),
		InsideFace:   make([]bool, fs.Count()),
	}
	for f := 0; f < fs.Count(); f++ {
		cc.InsideFace[f] = uf.Find(f) != out
	}
	for _, e := range cycleEdges {
		u, v := emb.g.EndpointsOf(e)
		cc.OnCycle[u] = true
		cc.OnCycle[v] = true
	}
	for v := 0; v < emb.g.N(); v++ {
		if cc.OnCycle[v] || emb.first[v] < 0 {
			continue
		}
		// All incident faces of a non-cycle vertex are on one side.
		cc.InsideVertex[v] = cc.InsideFace[fs.FaceOf[emb.first[v]]]
	}
	return cc, nil
}

// OuterFaceOf returns the face index (w.r.t. emb.TraceFaces ordering)
// containing the given dart. Generators designate the outer face by one of
// its darts.
func (emb *Embedding) OuterFaceOf(dart int) int {
	fs := emb.TraceFaces()
	return int(fs.FaceOf[dart])
}
