package planar

import (
	"testing"

	"planardfs/internal/graph"
)

// k4Embedded returns the embedded K4 of TestGenusOfK4Rotations with the
// outer face designated below the bottom edge.
func k4Embedded(t *testing.T) (*graph.Graph, *Embedding, int) {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	emb, err := FromNeighborOrders(g, [][]int{
		{2, 3, 1},
		{0, 3, 2},
		{1, 3, 0},
		{2, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.EdgeID(0, 1)
	outer := emb.OuterFaceOf(DartFrom(g, id, 1))
	return g, emb, outer
}

func TestRestrictToTriangle(t *testing.T) {
	_, emb, outer := k4Embedded(t)
	// Restrict away the centre vertex 3.
	res, err := emb.RestrictTo([]int{0, 1, 2}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.N() != 3 || res.G.M() != 3 {
		t.Fatalf("restriction n=%d m=%d", res.G.N(), res.G.M())
	}
	if err := res.Emb.Validate(); err != nil {
		t.Fatal(err)
	}
	// The restricted outer face must be the triangle's outer side (length 3
	// both ways here, but must contain the dart 1->0 whose left side is the
	// parent outer region).
	id, _ := res.G.EdgeID(res.Sub[0], res.Sub[1])
	want := res.Emb.OuterFaceOf(DartFrom(res.G, id, res.Sub[1]))
	if res.Emb.OuterFaceOf(res.OuterDart) != want {
		t.Fatal("restricted outer face wrong")
	}
}

func TestRestrictToStar(t *testing.T) {
	_, emb, outer := k4Embedded(t)
	// Keep the centre and two corners: a path 0-3-1 (plus edge 0-1).
	res, err := emb.RestrictTo([]int{0, 1, 3}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.M() != 3 {
		t.Fatalf("m=%d", res.G.M())
	}
	if res.OuterDart < 0 {
		t.Fatal("outer dart missing")
	}
	if err := res.Emb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Orig/Sub are inverse.
	for i, v := range res.Orig {
		if res.Sub[v] != i {
			t.Fatal("Orig/Sub not inverse")
		}
	}
	if res.Sub[2] != -1 {
		t.Fatal("absent vertex should map to -1")
	}
}

func TestRestrictToSingleVertex(t *testing.T) {
	_, emb, outer := k4Embedded(t)
	res, err := emb.RestrictTo([]int{3}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.N() != 1 || res.G.M() != 0 || res.OuterDart != -1 {
		t.Fatalf("single-vertex restriction wrong: %+v", res)
	}
}

func TestRestrictToInnerRegion(t *testing.T) {
	// A 4x4-style nested structure: wheel with 6 rim vertices; restricting
	// to the hub and part of the rim must still find an outer dart.
	g := graph.New(7)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6)
		g.MustAddEdge(i, 6)
	}
	orders := make([][]int, 7)
	for i := 0; i < 6; i++ {
		orders[i] = []int{(i + 5) % 6, 6, (i + 1) % 6}
	}
	// Hub sees rim counterclockwise when rim is ccw: clockwise is reverse.
	orders[6] = []int{5, 4, 3, 2, 1, 0}
	emb, err := FromNeighborOrders(g, orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
	id, _ := g.EdgeID(0, 1)
	outer := emb.OuterFaceOf(DartFrom(g, id, 1))
	res, err := emb.RestrictTo([]int{6, 0, 1, 2}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Emb.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.OuterDart < 0 {
		t.Fatal("no outer dart")
	}
	// The restriction is outerplanar here: its outer face touches every
	// vertex.
	fs := res.Emb.TraceFaces()
	of := int(fs.FaceOf[res.OuterDart])
	seen := map[int]bool{}
	for _, v := range fs.FaceVertices(of) {
		seen[v] = true
	}
	if len(seen) != res.G.N() {
		t.Fatalf("outer face touches %d of %d vertices", len(seen), res.G.N())
	}
}
