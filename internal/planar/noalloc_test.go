package planar

import (
	"testing"

	"planardfs/internal/graph"
)

// TestFaceTraceZeroAlloc is the runtime gate behind the
// //planarvet:noalloc annotation on (*Embedding).traceFacesInto: after
// TraceFaces has allocated the CSR storage once, re-tracing into the same
// Faces value — the steady-state walk after every virtual-edge insertion —
// performs zero allocations.
func TestFaceTraceZeroAlloc(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1) // darts 0,1
	g.MustAddEdge(0, 2) // darts 2,3
	g.MustAddEdge(1, 2) // darts 4,5
	emb, err := NewEmbedding(g, [][]int{{2, 0}, {4, 1}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}

	fs := emb.TraceFaces()
	want := fs.Count()
	allocs := testing.AllocsPerRun(100, func() {
		emb.traceFacesInto(fs)
	})
	if allocs != 0 {
		t.Fatalf("traceFacesInto allocates %.1f times, want 0", allocs)
	}
	if fs.Count() != want {
		t.Fatalf("retrace found %d faces, want %d", fs.Count(), want)
	}
}
