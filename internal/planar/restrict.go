package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Restriction is an embedded induced subgraph together with the vertex
// mapping back to the parent graph and the designated outer face of the
// sub-embedding.
type Restriction struct {
	G   *graph.Graph
	Emb *Embedding
	// Orig maps sub-vertex -> original vertex.
	Orig []int
	// Sub maps original vertex -> sub-vertex (-1 if absent).
	Sub []int
	// OuterDart is a dart of the sub-embedding lying on the face that
	// contains the parent embedding's outer region, or -1 if the subgraph
	// has no edges.
	OuterDart int
}

// RestrictTo returns the embedding induced on the given vertices. The outer
// face of the restriction is the sub-face whose region contains the parent
// outer face: sub-faces are unions of parent faces merged across edges not
// present in the subgraph (and around absent vertices), so the sub-face
// containing the parent outer face is found by a union–find over parent
// faces.
func (emb *Embedding) RestrictTo(vs []int, outerFace int) (*Restriction, error) {
	g := emb.g
	sub, orig, err := g.InducedSubgraph(vs)
	if err != nil {
		return nil, err
	}
	subOf := make([]int, g.N())
	for i := range subOf {
		subOf[i] = -1
	}
	for i, v := range orig {
		subOf[v] = i
	}
	// Rotation orders: filter each kept vertex's rotation to kept edges.
	orders := make([][]int, sub.N())
	for i, v := range orig {
		d0 := emb.first[v]
		if d0 < 0 {
			continue
		}
		for d := d0; ; {
			w := int(emb.headD[d])
			if subOf[w] >= 0 {
				orders[i] = append(orders[i], subOf[w])
			}
			d = emb.next[d]
			if d == d0 {
				break
			}
		}
	}
	semb, err := FromNeighborOrders(sub, orders)
	if err != nil {
		return nil, err
	}
	res := &Restriction{G: sub, Emb: semb, Orig: orig, Sub: subOf, OuterDart: -1}
	if sub.M() == 0 {
		return res, nil
	}
	// Merge parent faces across absent edges.
	fs := emb.TraceFaces()
	uf := graph.NewUnionFind(fs.Count())
	for e := 0; e < g.M(); e++ {
		ed := g.EdgeByID(e)
		if subOf[ed.U] < 0 || subOf[ed.V] < 0 {
			uf.Union(int(fs.FaceOf[2*e]), int(fs.FaceOf[2*e+1]))
		}
	}
	outerClass := uf.Find(outerFace)
	// Find a kept dart bordering the merged outer region, and map it to the
	// corresponding sub-dart.
	for e := 0; e < g.M(); e++ {
		ed := g.EdgeByID(e)
		su, sv := subOf[ed.U], subOf[ed.V]
		if su < 0 || sv < 0 {
			continue
		}
		sid, ok := sub.EdgeID(su, sv)
		if !ok {
			return nil, fmt.Errorf("planar: induced edge {%d,%d} missing", su, sv)
		}
		for dir := 0; dir < 2; dir++ {
			d := 2*e + dir
			if uf.Find(int(fs.FaceOf[d])) != outerClass {
				continue
			}
			// Dart 2e goes U->V; the matching sub-dart goes su->sv. Edge
			// normalization may swap endpoints, so use DartFrom.
			from := ed.U
			if dir == 1 {
				from = ed.V
			}
			res.OuterDart = DartFrom(sub, sid, subOf[from])
			return res, nil
		}
	}
	return nil, fmt.Errorf("planar: no sub-dart borders the outer region")
}
