// Package planar implements combinatorial planar embeddings (rotation
// systems) over the graphs of package graph, together with the geometric
// primitives the paper's algorithms rest on: face tracing, Euler-genus
// validation, dual graphs, Jordan inside/outside classification of cycles,
// and ℰ-compatible insertion of virtual edges.
//
// # Darts
//
// Every undirected edge e (with graph edge ID e) is split into two darts:
// dart 2e is directed from e.U to e.V, dart 2e+1 from e.V to e.U. A rotation
// system assigns to each vertex v the *clockwise* cyclic order of the darts
// whose tail is v. Faces are traced with the convention that, for a genus-0
// rotation system drawn in the plane, every inner face is traversed
// counterclockwise (interior to the left of each dart) and the outer face
// clockwise.
//
// # Flat layout
//
// The rotation system is stored dart-indexed (DESIGN.md §13): next[d] and
// prev[d] link the clockwise cyclic order around Tail(d), head[d] caches the
// head vertex, pos[d] the index within the tail's rotation, and first[v] the
// dart at position 0. There are no per-vertex slices; Rotation and
// NeighborOrder materialize copies for compatibility, while hot paths walk
// FirstDart/NextCW directly.
package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Tail returns the tail vertex of dart d in g.
func Tail(g *graph.Graph, d int) int {
	u, v := g.EndpointsOf(d / 2)
	if d%2 == 0 {
		return int(u)
	}
	return int(v)
}

// Head returns the head vertex of dart d in g.
func Head(g *graph.Graph, d int) int {
	u, v := g.EndpointsOf(d / 2)
	if d%2 == 0 {
		return int(v)
	}
	return int(u)
}

// Twin returns the reversal of dart d.
func Twin(d int) int { return d ^ 1 }

// DartFrom returns the dart of edge id directed out of vertex u.
func DartFrom(g *graph.Graph, id, u int) int {
	e := g.EdgeByID(id)
	switch u {
	case e.U:
		return 2 * id
	case e.V:
		return 2*id + 1
	}
	panic(fmt.Sprintf("planar: vertex %d not an endpoint of edge %d", u, id))
}

// Embedding is a rotation system over a graph: for every vertex, the
// clockwise cyclic ordering of its outgoing darts, stored as flat
// dart-indexed arrays.
type Embedding struct {
	g *graph.Graph
	// next[d]/prev[d] are the clockwise successor/predecessor of dart d in
	// the rotation of its tail vertex.
	next, prev []int32
	// pos[d] is the index of dart d within the rotation of Tail(d).
	pos []int32
	// headD[d] caches Head(g, d).
	headD []int32
	// first[v] is the dart at position 0 of v's rotation, or -1 for an
	// isolated vertex.
	first []int32
}

// alloc returns an embedding shell with pos initialised to -1.
func allocEmbedding(g *graph.Graph) *Embedding {
	m2 := 2 * g.M()
	emb := &Embedding{
		g:     g,
		next:  make([]int32, m2),
		prev:  make([]int32, m2),
		pos:   make([]int32, m2),
		headD: make([]int32, m2),
		first: make([]int32, g.N()),
	}
	for d := range emb.pos {
		emb.pos[d] = -1
	}
	for v := range emb.first {
		emb.first[v] = -1
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.EndpointsOf(e)
		emb.headD[2*e] = v
		emb.headD[2*e+1] = u
	}
	return emb
}

// placeDart validates dart d as entry i of v's rotation of length deg and
// records it in the flat arrays (linking is done once the segment is known).
func (emb *Embedding) placeDart(v, i, d int) error {
	if d < 0 || d >= len(emb.pos) {
		return fmt.Errorf("planar: dart %d out of range at vertex %d", d, v)
	}
	if Tail(emb.g, d) != v {
		return fmt.Errorf("planar: dart %d has tail %d, listed at vertex %d", d, Tail(emb.g, d), v)
	}
	if emb.pos[d] != -1 {
		return fmt.Errorf("planar: dart %d listed twice", d)
	}
	//planarvet:narrowok i indexes a rotation, so i < deg(v) < n and graph.New bounds n to MaxInt32
	emb.pos[d] = int32(i)
	return nil
}

// finish checks completeness after all darts are placed.
func (emb *Embedding) finish() (*Embedding, error) {
	for d, p := range emb.pos {
		if p == -1 {
			return nil, fmt.Errorf("planar: dart %d missing from rotation system", d)
		}
	}
	return emb, nil
}

// NewEmbedding builds an embedding from per-vertex clockwise dart orders.
// Each rot[v] must be a permutation of the darts with tail v.
func NewEmbedding(g *graph.Graph, rot [][]int) (*Embedding, error) {
	if len(rot) != g.N() {
		return nil, fmt.Errorf("planar: rotation for %d vertices, graph has %d", len(rot), g.N())
	}
	emb := allocEmbedding(g)
	for v := range rot {
		if len(rot[v]) != g.Degree(v) {
			return nil, fmt.Errorf("planar: vertex %d has degree %d but rotation of length %d", v, g.Degree(v), len(rot[v]))
		}
		for i, d := range rot[v] {
			if err := emb.placeDart(v, i, d); err != nil {
				return nil, err
			}
		}
		emb.linkCycle(v, func(i int) int { return rot[v][i] }, len(rot[v]))
	}
	return emb.finish()
}

// NewEmbeddingFlat builds an embedding from a vertex-major flat dart array:
// darts[off[v]:off[v+1]] is the clockwise dart order at v. This is the
// allocation-lean constructor streaming generators use; off must have length
// g.N()+1 and darts length 2*g.M().
func NewEmbeddingFlat(g *graph.Graph, off, darts []int32) (*Embedding, error) {
	if len(off) != g.N()+1 {
		return nil, fmt.Errorf("planar: rotation for %d vertices, graph has %d", len(off)-1, g.N())
	}
	emb := allocEmbedding(g)
	for v := 0; v < g.N(); v++ {
		seg := darts[off[v]:off[v+1]]
		if len(seg) != g.Degree(v) {
			return nil, fmt.Errorf("planar: vertex %d has degree %d but rotation of length %d", v, g.Degree(v), len(seg))
		}
		for i, d := range seg {
			if err := emb.placeDart(v, i, int(d)); err != nil {
				return nil, err
			}
		}
		emb.linkCycle(v, func(i int) int { return int(seg[i]) }, len(seg))
	}
	return emb.finish()
}

// linkCycle records the cyclic next/prev links and first dart for v's
// validated rotation segment.
func (emb *Embedding) linkCycle(v int, dart func(i int) int, k int) {
	if k == 0 {
		return
	}
	//planarvet:narrowok every dart was validated by placeDart against the 2m dart space, and AddEdge bounds 2m to MaxInt32
	emb.first[v] = int32(dart(0))
	for i := 0; i < k; i++ {
		d := dart(i)
		//planarvet:narrowok every dart was validated by placeDart against the 2m dart space, and AddEdge bounds 2m to MaxInt32
		emb.next[d] = int32(dart((i + 1) % k))
		//planarvet:narrowok every dart was validated by placeDart against the 2m dart space, and AddEdge bounds 2m to MaxInt32
		emb.prev[d] = int32(dart((i - 1 + k) % k))
	}
}

// FromNeighborOrders builds an embedding from per-vertex clockwise neighbour
// orderings (valid for simple graphs, where a neighbour identifies the edge).
func FromNeighborOrders(g *graph.Graph, orders [][]int) (*Embedding, error) {
	if len(orders) != g.N() {
		return nil, fmt.Errorf("planar: rotation for %d vertices, graph has %d", len(orders), g.N())
	}
	emb := allocEmbedding(g)
	darts := make([]int, 0, 2*g.M())
	for v := range orders {
		if len(orders[v]) != g.Degree(v) {
			return nil, fmt.Errorf("planar: vertex %d has degree %d but rotation of length %d", v, g.Degree(v), len(orders[v]))
		}
		darts = darts[:0]
		for _, w := range orders[v] {
			id, ok := g.EdgeID(v, w)
			if !ok {
				return nil, fmt.Errorf("planar: vertex %d lists non-neighbour %d", v, w)
			}
			darts = append(darts, DartFrom(g, id, v))
		}
		for i, d := range darts {
			if err := emb.placeDart(v, i, d); err != nil {
				return nil, err
			}
		}
		seg := darts
		emb.linkCycle(v, func(i int) int { return seg[i] }, len(seg))
	}
	return emb.finish()
}

// Graph returns the underlying graph.
func (emb *Embedding) Graph() *graph.Graph { return emb.g }

// Rotation returns the clockwise dart order at v as a freshly allocated
// slice. Hot paths should iterate with FirstDart/NextCW instead.
func (emb *Embedding) Rotation(v int) []int {
	out := make([]int, 0, emb.g.Degree(v))
	d := emb.first[v]
	if d < 0 {
		return out
	}
	for {
		out = append(out, int(d))
		d = emb.next[d]
		if d == emb.first[v] {
			return out
		}
	}
}

// FirstDart returns the dart at position 0 of v's rotation, or -1 if v is
// isolated. Together with NextCW it iterates the rotation without
// allocating.
func (emb *Embedding) FirstDart(v int) int { return int(emb.first[v]) }

// Pos returns the index of dart d within the rotation of its tail.
func (emb *Embedding) Pos(d int) int { return int(emb.pos[d]) }

// HeadOf returns the head vertex of dart d (the flat-array form of
// Head(emb.Graph(), d)).
func (emb *Embedding) HeadOf(d int) int { return int(emb.headD[d]) }

// TailOf returns the tail vertex of dart d.
func (emb *Embedding) TailOf(d int) int { return int(emb.headD[d^1]) }

// NextCW returns the dart clockwise-after d around its tail vertex.
func (emb *Embedding) NextCW(d int) int { return int(emb.next[d]) }

// NextCCW returns the dart counterclockwise-after d around its tail vertex.
func (emb *Embedding) NextCCW(d int) int { return int(emb.prev[d]) }

// FaceNext returns the successor of dart d along its face, using the
// convention that the face interior lies to the left of d: the successor is
// the clockwise-next dart after Twin(d) around Head(d).
func (emb *Embedding) FaceNext(d int) int { return int(emb.next[d^1]) }

// Clone returns a deep copy of the embedding (sharing the graph).
func (emb *Embedding) Clone() *Embedding {
	return &Embedding{
		g:     emb.g,
		next:  append([]int32(nil), emb.next...),
		prev:  append([]int32(nil), emb.prev...),
		pos:   append([]int32(nil), emb.pos...),
		headD: append([]int32(nil), emb.headD...),
		first: append([]int32(nil), emb.first...),
	}
}

// NeighborOrder returns the clockwise neighbour ordering at v.
func (emb *Embedding) NeighborOrder(v int) []int {
	out := make([]int, 0, emb.g.Degree(v))
	d := emb.first[v]
	if d < 0 {
		return out
	}
	for {
		out = append(out, int(emb.headD[d]))
		d = emb.next[d]
		if d == emb.first[v] {
			return out
		}
	}
}
