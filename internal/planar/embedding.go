// Package planar implements combinatorial planar embeddings (rotation
// systems) over the graphs of package graph, together with the geometric
// primitives the paper's algorithms rest on: face tracing, Euler-genus
// validation, dual graphs, Jordan inside/outside classification of cycles,
// and ℰ-compatible insertion of virtual edges.
//
// # Darts
//
// Every undirected edge e (with graph edge ID e) is split into two darts:
// dart 2e is directed from e.U to e.V, dart 2e+1 from e.V to e.U. A rotation
// system assigns to each vertex v the *clockwise* cyclic order of the darts
// whose tail is v. Faces are traced with the convention that, for a genus-0
// rotation system drawn in the plane, every inner face is traversed
// counterclockwise (interior to the left of each dart) and the outer face
// clockwise.
package planar

import (
	"fmt"

	"planardfs/internal/graph"
)

// Tail returns the tail vertex of dart d in g.
func Tail(g *graph.Graph, d int) int {
	e := g.EdgeByID(d / 2)
	if d%2 == 0 {
		return e.U
	}
	return e.V
}

// Head returns the head vertex of dart d in g.
func Head(g *graph.Graph, d int) int {
	e := g.EdgeByID(d / 2)
	if d%2 == 0 {
		return e.V
	}
	return e.U
}

// Twin returns the reversal of dart d.
func Twin(d int) int { return d ^ 1 }

// DartFrom returns the dart of edge id directed out of vertex u.
func DartFrom(g *graph.Graph, id, u int) int {
	e := g.EdgeByID(id)
	switch u {
	case e.U:
		return 2 * id
	case e.V:
		return 2*id + 1
	}
	panic(fmt.Sprintf("planar: vertex %d not an endpoint of edge %d", u, id))
}

// Embedding is a rotation system over a graph: for every vertex, the
// clockwise cyclic ordering of its outgoing darts.
type Embedding struct {
	g *graph.Graph
	// rot[v] lists the darts with tail v in clockwise order.
	rot [][]int
	// pos[d] is the index of dart d within rot[Tail(d)].
	pos []int
}

// NewEmbedding builds an embedding from per-vertex clockwise dart orders.
// Each rot[v] must be a permutation of the darts with tail v.
func NewEmbedding(g *graph.Graph, rot [][]int) (*Embedding, error) {
	if len(rot) != g.N() {
		return nil, fmt.Errorf("planar: rotation for %d vertices, graph has %d", len(rot), g.N())
	}
	emb := &Embedding{g: g, rot: make([][]int, g.N()), pos: make([]int, 2*g.M())}
	for i := range emb.pos {
		emb.pos[i] = -1
	}
	for v := range rot {
		if len(rot[v]) != g.Degree(v) {
			return nil, fmt.Errorf("planar: vertex %d has degree %d but rotation of length %d", v, g.Degree(v), len(rot[v]))
		}
		emb.rot[v] = make([]int, len(rot[v]))
		copy(emb.rot[v], rot[v])
		for i, d := range rot[v] {
			if d < 0 || d >= 2*g.M() {
				return nil, fmt.Errorf("planar: dart %d out of range at vertex %d", d, v)
			}
			if Tail(g, d) != v {
				return nil, fmt.Errorf("planar: dart %d has tail %d, listed at vertex %d", d, Tail(g, d), v)
			}
			if emb.pos[d] != -1 {
				return nil, fmt.Errorf("planar: dart %d listed twice", d)
			}
			emb.pos[d] = i
		}
	}
	for d, p := range emb.pos {
		if p == -1 {
			return nil, fmt.Errorf("planar: dart %d missing from rotation system", d)
		}
	}
	return emb, nil
}

// FromNeighborOrders builds an embedding from per-vertex clockwise neighbour
// orderings (valid for simple graphs, where a neighbour identifies the edge).
func FromNeighborOrders(g *graph.Graph, orders [][]int) (*Embedding, error) {
	rot := make([][]int, g.N())
	for v := range orders {
		rot[v] = make([]int, len(orders[v]))
		for i, w := range orders[v] {
			id, ok := g.EdgeID(v, w)
			if !ok {
				return nil, fmt.Errorf("planar: vertex %d lists non-neighbour %d", v, w)
			}
			rot[v][i] = DartFrom(g, id, v)
		}
	}
	return NewEmbedding(g, rot)
}

// Graph returns the underlying graph.
func (emb *Embedding) Graph() *graph.Graph { return emb.g }

// Rotation returns the clockwise dart order at v. The slice must not be
// modified.
func (emb *Embedding) Rotation(v int) []int { return emb.rot[v] }

// Pos returns the index of dart d within the rotation of its tail.
func (emb *Embedding) Pos(d int) int { return emb.pos[d] }

// NextCW returns the dart clockwise-after d around its tail vertex.
func (emb *Embedding) NextCW(d int) int {
	r := emb.rot[Tail(emb.g, d)]
	return r[(emb.pos[d]+1)%len(r)]
}

// NextCCW returns the dart counterclockwise-after d around its tail vertex.
func (emb *Embedding) NextCCW(d int) int {
	r := emb.rot[Tail(emb.g, d)]
	return r[(emb.pos[d]-1+len(r))%len(r)]
}

// FaceNext returns the successor of dart d along its face, using the
// convention that the face interior lies to the left of d: the successor is
// the clockwise-next dart after Twin(d) around Head(d).
func (emb *Embedding) FaceNext(d int) int {
	return emb.NextCW(Twin(d))
}

// Clone returns a deep copy of the embedding (sharing the graph).
func (emb *Embedding) Clone() *Embedding {
	c := &Embedding{g: emb.g, rot: make([][]int, len(emb.rot)), pos: make([]int, len(emb.pos))}
	for v := range emb.rot {
		c.rot[v] = append([]int(nil), emb.rot[v]...)
	}
	copy(c.pos, emb.pos)
	return c
}

// NeighborOrder returns the clockwise neighbour ordering at v.
func (emb *Embedding) NeighborOrder(v int) []int {
	out := make([]int, len(emb.rot[v]))
	for i, d := range emb.rot[v] {
		out[i] = Head(emb.g, d)
	}
	return out
}
