package guard

import (
	"fmt"
	"math/rand"

	"planardfs/internal/congest"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
)

// The CONGEST planarity property tester, in the Levi–Medina–Ron style
// (arxiv 1805.10657): one-sided error — a planar input is never rejected,
// a non-planar input is rejected when a concrete witness is found. Two
// witness classes are implemented:
//
//   - edge count: one part-wise degree sum delivers 2m to every vertex;
//     m > 3n-6 contradicts Euler's bound for every planar simple graph.
//   - dense region: around each of a set of seeded centers, a ball of
//     radius r is flooded as a real node program; the members convergecast
//     their count and member-incident half-edge count up the ball's BFS
//     tree, and the center checks the planar density bound m_S <= 3n_S - 6
//     on the induced subgraph. Any subgraph of a planar graph is planar,
//     so the check never fires on planar inputs — but a planted dense
//     region (a K5/K7-ish cluster) violates it locally.
//
// Centers are derived from Options.Seed (Exhaustive sweeps every vertex),
// so a verdict is a deterministic function of (graph, options); the
// centralized oracle below recomputes the identical decision for
// cross-checking.

// Ball-program message kinds.
const (
	// msgBallGrow floods the ball: [dist, parentFlag]. parentFlag is 1 on
	// the port toward the sender's flood parent (the child-claim bit).
	msgBallGrow = 1
	// msgBallReport convergecasts subtree aggregates: [size, halfEdges].
	msgBallReport = 2
)

// ballNode is the per-vertex program of one ball probe. It is
// round-scheduled (not event-driven): membership counts are final once
// every flood message has landed, which the program detects by the round
// number, so it must be stepped every round.
type ballNode struct {
	deg    int
	center bool
	radius int

	dist       int // -1 while not a member
	parentPort int
	childPorts []int
	memberNbrs int // ports that delivered a grow = member neighbours
	adopted    bool
	reported   bool

	gotReports int
	accSize    int
	accHalf    int

	// Center outputs.
	judged bool
	nS     int
	mS2    int // 2 * edges inside the ball
}

// Round implements congest.Node.
func (bn *ballNode) Round(round int, recv []congest.Incoming) ([]congest.Outgoing, bool) {
	var out []congest.Outgoing
	if round == 0 && bn.center {
		bn.dist = 0
		bn.parentPort = -1
		bn.adopted = true
		out = bn.announce()
	}
	for _, in := range recv {
		switch in.Msg.Kind {
		case msgBallGrow:
			a := in.Msg.Args
			if len(a) != 2 {
				continue
			}
			bn.memberNbrs++
			if a[1] == 1 {
				bn.childPorts = append(bn.childPorts, in.Port)
			}
			if !bn.adopted && a[0]+1 <= bn.radius {
				// BFS property: the first grow to arrive carries the
				// minimal distance, so the first adoption is final.
				bn.dist = a[0] + 1
				bn.parentPort = in.Port
				bn.adopted = true
				out = bn.announce()
			}
		case msgBallReport:
			a := in.Msg.Args
			if len(a) != 2 {
				continue
			}
			bn.accSize += a[0]
			bn.accHalf += a[1]
			bn.gotReports++
		}
	}
	if !bn.adopted {
		// Non-members stay silent; boundary neighbours' grows are ignored.
		return out, true
	}
	// Flood messages are all delivered by round radius+1 (adoptions happen
	// at round == dist <= radius; their announcements land one round
	// later), so from round radius+2 on, memberNbrs and childPorts are
	// final and the convergecast can fire leaf-first.
	if !bn.reported && round >= bn.radius+2 && bn.gotReports == len(bn.childPorts) {
		size := 1 + bn.accSize
		half := bn.memberNbrs + bn.accHalf
		if bn.center {
			bn.nS = size
			bn.mS2 = half
			bn.judged = true
			bn.reported = true
		} else {
			out = append(out, congest.Outgoing{Port: bn.parentPort, Msg: congest.Message{
				Kind: msgBallReport, Args: []int{size, half},
			}})
			bn.reported = true
		}
	}
	return out, bn.reported
}

// announce broadcasts the adoption: a grow on every port, with the
// child-claim bit set toward the flood parent.
func (bn *ballNode) announce() []congest.Outgoing {
	out := make([]congest.Outgoing, bn.deg)
	for p := range out {
		flag := 0
		if p == bn.parentPort {
			flag = 1
		}
		out[p] = congest.Outgoing{Port: p, Msg: congest.Message{
			Kind: msgBallGrow, Args: []int{bn.dist, flag},
		}}
	}
	return out
}

// centersFor derives the tester's ball centers for an n-vertex graph:
// every vertex under Exhaustive, otherwise a seeded sample without
// replacement. Shared by the distributed tester and the oracle so their
// decisions coincide.
func centersFor(n int, opt Options) []int {
	k := opt.centers(n)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x67756172645f7473))
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	return out
}

// probeBall runs one ball program and returns the center's measurement.
func probeBall(g *graph.Graph, center, radius int, opt Options) (nS, mS2, rounds int, messages int64, err error) {
	n := g.N()
	nw := opt.network(g, 3)
	nodes := make([]congest.Node, n)
	var cn *ballNode
	for v := 0; v < n; v++ {
		bn := &ballNode{deg: g.Degree(v), center: v == center, radius: radius, dist: -1, parentPort: -1}
		if bn.center {
			cn = bn
		}
		nodes[v] = bn
	}
	r, err := nw.Run(nodes, 2*radius+16)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("guard: ball probe at %d: %w", center, err)
	}
	if !cn.judged {
		return 0, 0, 0, 0, fmt.Errorf("guard: ball probe at %d did not converge", center)
	}
	return cn.nS, cn.mS2, r, nw.Stats().Messages, nil
}

// runEdgeCountCheck aggregates the degree sum distributively and applies
// the global planar bound. A nil witness means acceptance.
func runEdgeCountCheck(g *graph.Graph, opt Options) (*Witness, int, int64, error) {
	n := g.N()
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "guard.edge-count")
	defer sp.End()
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(v)
	}
	part, err := shortcut.NewPartition(make([]int, n))
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := shortcut.RunPAOn(opt.network(g, 0), 0, part, degs, congest.OpSum)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("guard: degree aggregation: %w", err)
	}
	m2 := res.Values[0]
	sp.SetAttr("m2", int64(m2))
	if n >= 3 && m2 > 6*n-12 {
		return &Witness{
			Reason: ReasonEdgeCount,
			Detail: fmt.Sprintf("%d edges on %d vertices exceeds the planar bound %d", m2/2, n, 3*n-6),
			Vertex: -1,
			N:      n, M: m2 / 2, Bound: 3*n - 6,
		}, res.Rounds, res.Stats.Messages, nil
	}
	return nil, res.Rounds, res.Stats.Messages, nil
}

// runDensityCheck probes every center's ball in sequence and applies the
// planar density bound to each induced subgraph. A nil witness means no
// ball was dense.
func runDensityCheck(g *graph.Graph, opt Options) (*Witness, int, int64, error) {
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "guard.density")
	defer sp.End()
	radius := opt.radius()
	centers := centersFor(g.N(), opt)
	sp.SetAttr("centers", int64(len(centers)))
	sp.SetAttr("radius", int64(radius))
	rounds := 0
	var messages int64
	for _, c := range centers {
		nS, mS2, r, msgs, err := probeBall(g, c, radius, opt)
		if err != nil {
			return nil, rounds, messages, err
		}
		rounds += r
		messages += msgs
		if nS >= 3 && mS2 > 6*nS-12 {
			return &Witness{
				Reason: ReasonDenseRegion,
				Detail: fmt.Sprintf("ball of radius %d around vertex %d induces %d edges on %d vertices (planar bound %d)", radius, c, mS2/2, nS, 3*nS-6),
				Vertex: -1,
				N:      nS, M: mS2 / 2, Bound: 3*nS - 6,
				Center: c, Radius: radius,
			}, rounds, messages, nil
		}
	}
	return nil, rounds, messages, nil
}

// OracleTest is the deterministic centralized oracle of the property
// tester: it recomputes the edge-count and ball-density decisions from
// global data — same centers, same radius, same bounds — and returns the
// first witness or nil. The tester cross-validation tests assert the
// distributed and centralized decisions are identical.
func OracleTest(g *graph.Graph, opt Options) *Witness {
	n := g.N()
	if n >= 3 && g.M() > 3*n-6 {
		return &Witness{
			Reason: ReasonEdgeCount,
			Detail: fmt.Sprintf("%d edges on %d vertices exceeds the planar bound %d", g.M(), n, 3*n-6),
			Vertex: -1,
			N:      n, M: g.M(), Bound: 3*n - 6,
		}
	}
	radius := opt.radius()
	for _, c := range centersFor(n, opt) {
		member := ballMembers(g, c, radius)
		nS := 0
		mS2 := 0
		for v := 0; v < n; v++ {
			if !member[v] {
				continue
			}
			nS++
			for _, w := range g.Neighbors(v) {
				if member[w] {
					mS2++
				}
			}
		}
		if nS >= 3 && mS2 > 6*nS-12 {
			return &Witness{
				Reason: ReasonDenseRegion,
				Detail: fmt.Sprintf("ball of radius %d around vertex %d induces %d edges on %d vertices (planar bound %d)", radius, c, mS2/2, nS, 3*nS-6),
				Vertex: -1,
				N:      nS, M: mS2 / 2, Bound: 3*nS - 6,
				Center: c, Radius: radius,
			}
		}
	}
	return nil
}

// ballMembers marks the vertices within the given BFS radius of center.
func ballMembers(g *graph.Graph, center, radius int) []bool {
	member := make([]bool, g.N())
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[center] = 0
	member[center] = true
	queue := []int{center}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == radius {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				member[w] = true
				queue = append(queue, w)
			}
		}
	}
	return member
}
