package guard

import (
	"fmt"

	"planardfs/internal/cert"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/planar"
	"planardfs/internal/trace"
)

// ValidateInstance validates an embedded instance end to end: shape and
// connectivity prechecks, the distributed rotation/endpoint consistency
// check, the planarity property tester, and the Euler-count certification
// of the claimed rotation system. The returned error reports
// infrastructure failures only; a bad input is an accepting=false verdict,
// and verdict.Err() converts it to a typed RejectionError.
func ValidateInstance(in *gen.Instance, opt Options) (*Verdict, error) {
	g := in.G
	rot := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		rot[v] = in.Emb.NeighborOrder(v)
	}
	return ValidateRotations(g, rot, opt)
}

// ValidateRotations validates a graph together with a claimed rotation
// system in wire form (per-vertex clockwise neighbour lists, exactly what
// an untrusted submission carries). Stages run in order and stop at the
// first rejection.
func ValidateRotations(g *graph.Graph, rot [][]int, opt Options) (*Verdict, error) {
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "guard.validate")
	defer sp.End()
	v := &Verdict{OK: true}

	if !shapeStage(v, g, len(rot)) {
		return v, nil
	}
	if !connectivityStage(v, g) {
		return v, nil
	}

	// Distributed rotation/endpoint consistency.
	rejectors, rounds, msgs, err := runRotationCheck(g, rot, opt)
	if err != nil {
		return nil, err
	}
	v.addCheck("rotation", len(rejectors) == 0, rounds, msgs)
	if len(rejectors) > 0 {
		reason, detail := diagnoseRotation(g, rot, rejectors[0])
		return v.reject(Witness{
			Reason: reason, Detail: detail,
			Vertex: rejectors[0], Rejectors: len(rejectors),
		}), nil
	}

	// Planarity property tester (graph-level, one-sided error).
	if !testerStages(v, g, opt) {
		return v, nil
	}
	if err := v.testerErr; err != nil {
		return nil, err
	}

	// Euler count: the internal/cert embedding scheme as a first-class
	// guard stage. The rotation stage guaranteed a valid permutation
	// system, so the embedding constructor cannot fail here.
	emb, err := planar.FromNeighborOrders(g, rot)
	if err != nil {
		return nil, fmt.Errorf("guard: rotation stage accepted an unbuildable rotation system: %w", err)
	}
	ev, err := cert.VerifyEmbedding(g, cert.ProveEmbedding(emb), cert.Options{
		Sequential: opt.Sequential, Workers: opt.Workers, Tracer: opt.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("guard: euler certification: %w", err)
	}
	v.addCheck("euler", ev.OK, ev.VerifierRounds+ev.AggRounds, ev.Stats.Messages)
	if !ev.OK {
		return v.reject(Witness{
			Reason:    ReasonEuler,
			Detail:    fmt.Sprintf("claimed rotation system has Euler sum %d (want 4): genus %d, not a planar embedding", ev.EulerSum, (4-ev.EulerSum)/4),
			Vertex:    -1,
			Rejectors: len(ev.Rejectors),
			EulerSum:  ev.EulerSum,
		}), nil
	}
	sp.SetAttr("ok", 1)
	return v, nil
}

// ValidateGraph validates a bare graph (no embedding claims): shape and
// connectivity prechecks plus the planarity property tester. One-sided
// error applies: a connected planar graph is always accepted, a
// non-planar graph is rejected when an edge-count or dense-region witness
// is found.
func ValidateGraph(g *graph.Graph, opt Options) (*Verdict, error) {
	v := &Verdict{OK: true}
	if !shapeStage(v, g, g.N()) {
		return v, nil
	}
	if !connectivityStage(v, g) {
		return v, nil
	}
	if !testerStages(v, g, opt) {
		return v, nil
	}
	if err := v.testerErr; err != nil {
		return nil, err
	}
	return v, nil
}

// shapeStage applies the structural admission checks. It returns false
// when validation must stop (the verdict already carries the witness).
func shapeStage(v *Verdict, g *graph.Graph, rotLen int) bool {
	ok := g.N() >= 1 && g.M() >= 1 && rotLen == g.N()
	v.addCheck("shape", ok, 0, 0)
	if ok {
		return true
	}
	detail := fmt.Sprintf("need n >= 1 and m >= 1, got n=%d m=%d", g.N(), g.M())
	if g.N() >= 1 && g.M() >= 1 {
		detail = fmt.Sprintf("rotation table has %d rows for %d vertices", rotLen, g.N())
	}
	v.reject(Witness{Reason: ReasonShape, Detail: detail, Vertex: -1})
	return false
}

// connectivityStage applies the centralized connectivity precheck (the
// distributed stages and Euler's formula all assume one component).
func connectivityStage(v *Verdict, g *graph.Graph) bool {
	ok := g.Connected()
	v.addCheck("connectivity", ok, 0, 0)
	if ok {
		return true
	}
	v.reject(Witness{Reason: ReasonDisconnected, Detail: "graph is not connected", Vertex: -1})
	return false
}

// testerStages runs the distributed edge-count and ball-density stages.
// It returns false when validation must stop; infrastructure errors are
// parked on the verdict for the caller to surface.
func testerStages(v *Verdict, g *graph.Graph, opt Options) bool {
	w, rounds, msgs, err := runEdgeCountCheck(g, opt)
	if err != nil {
		v.testerErr = err
		return false
	}
	v.addCheck("edge-count", w == nil, rounds, msgs)
	if w != nil {
		v.reject(*w)
		return false
	}
	w, rounds, msgs, err = runDensityCheck(g, opt)
	if err != nil {
		v.testerErr = err
		return false
	}
	v.addCheck("density", w == nil, rounds, msgs)
	if w != nil {
		v.reject(*w)
		return false
	}
	return true
}
