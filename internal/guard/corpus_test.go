package guard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"planardfs/internal/gen"
)

// The adversarial corpus gate: every fixture under testdata/corpus is a
// corrupted wire-form instance that the admission pipeline MUST reject —
// the guard analogue of the planarvet planted-violation self-check. The
// filename encodes the expected rejection layer and class:
//
//	wire__<field>__<desc>.json   rejected by gen.Wire.Check with a
//	                             *gen.FieldError on <field>
//	guard__<reason>__<desc>.json passes the wire checks and builds, but
//	                             the guard rejects with Reason <reason>
//
// CI runs this test under -race; a fixture that is accepted, panics, or
// rejects with the wrong class fails the gate.

// corpusOptions pins the deterministic tester configuration every corpus
// verdict is defined against.
func corpusOptions() Options {
	return Options{Seed: 1, Exhaustive: true}
}

func TestAdversarialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("corpus has %d fixtures, want at least 8", len(files))
	}
	layers := map[string]int{}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		parts := strings.SplitN(name, "__", 3)
		if len(parts) != 3 {
			t.Errorf("%s: fixture name is not <layer>__<class>__<desc>.json", name)
			continue
		}
		layer, class := parts[0], parts[1]
		layers[layer]++
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var w gen.Wire
			if err := json.Unmarshal(data, &w); err != nil {
				t.Fatalf("fixture is not wire JSON: %v", err)
			}
			switch layer {
			case "wire":
				err := w.Check()
				if err == nil {
					t.Fatal("wire check accepted a corrupted fixture")
				}
				var fe *gen.FieldError
				if !errors.As(err, &fe) {
					t.Fatalf("wire rejection is not a FieldError: %v", err)
				}
				if fe.Field != class {
					t.Fatalf("rejected on field %q, want %q (%v)", fe.Field, class, err)
				}
			case "guard":
				if err := w.Check(); err != nil {
					t.Fatalf("guard fixture failed the wire checks early: %v", err)
				}
				in, err := w.Build()
				if err != nil {
					t.Fatalf("guard fixture did not build: %v", err)
				}
				v, err := ValidateInstance(in, corpusOptions())
				if err != nil {
					t.Fatal(err)
				}
				if v.OK {
					t.Fatal("guard accepted a corrupted fixture")
				}
				if string(v.Witness.Reason) != class {
					t.Fatalf("rejected with reason %q, want %q (%s)", v.Witness.Reason, class, v.Witness.Detail)
				}
				if !errors.Is(v.Err(), ErrRejected) {
					t.Fatal("rejection does not match ErrRejected")
				}
			default:
				t.Fatalf("unknown corpus layer %q", layer)
			}
		})
	}
	if layers["wire"] == 0 || layers["guard"] == 0 {
		t.Fatalf("corpus must cover both layers, got %v", layers)
	}
}
