package guard

import (
	"fmt"

	"planardfs/internal/congest"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
)

// The distributed embedding-consistency checker.
//
// Input model: every vertex holds its claimed clockwise rotation as a
// neighbour list (the wire form of an embedding — what an untrusted
// submission actually carries). The check has a local half and an exchange
// half:
//
//   - locally, a vertex verifies its rotation is a permutation of its
//     neighbour set: right length, no duplicate entries, no non-neighbour
//     entries (a retargeted dart), no missing neighbour. This is rotation
//     well-formedness — together with the simple-graph edge list it pins
//     down the dart involution (each edge contributes exactly one dart at
//     each endpoint).
//   - in one exchange round, every vertex sends on each port the triple
//     [senderID, senderDeg, pos], where pos is the receiver's index in the
//     sender's claimed rotation (-1 when absent). The receiver checks the
//     sender identifies itself as the vertex the port leads to (the two
//     endpoints agree which link they share — the face-trace handshake:
//     FaceNext pivots through exactly these (twin dart, rotation position)
//     pairs) and that 0 <= pos < senderDeg. A dart retargeted away from
//     this edge at the far end surfaces here as pos = -1 even when the far
//     vertex's own rotation still looks locally consistent.
//
// One message per edge per direction, 3 argument words plus the kind word
// (within the default 4-word CONGEST budget), judged on arrival: the
// program is event-driven and completes in O(1) rounds. Accept bits are
// folded into a global verdict with one single-part OpMin aggregation,
// exactly like the internal/cert verifiers.

// msgGuardLink tags the one message kind of the exchange:
// [senderID, senderDeg, posOfReceiverInSenderRotation].
const msgGuardLink = 1

// rotNode is the per-vertex checker program.
type rotNode struct {
	info    congest.NodeInfo
	deg     int
	localOK bool
	// posOf[p] is the index of Neighbors[p] in the claimed rotation, or -1.
	posOf  []int
	got    int
	accept bool
	judged bool
}

// CongestEventDriven marks the program as purely message-driven: the
// round-0 broadcast is the only spontaneous act, and judging is triggered
// by the arriving link triples.
func (rn *rotNode) CongestEventDriven() {}

// Round implements congest.Node.
func (rn *rotNode) Round(round int, recv []congest.Incoming) ([]congest.Outgoing, bool) {
	if round == 0 {
		if rn.deg == 0 {
			// Isolated vertex: nothing to exchange; the local half is the
			// whole judgment (connectivity is rejected elsewhere).
			rn.accept = rn.localOK
			rn.judged = true
			return nil, true
		}
		out := make([]congest.Outgoing, rn.deg)
		for p := range out {
			out[p] = congest.Outgoing{Port: p, Msg: congest.Message{
				Kind: msgGuardLink,
				Args: []int{rn.info.ID, rn.deg, rn.posOf[p]},
			}}
		}
		rn.accept = rn.localOK
		return out, false
	}
	if rn.judged {
		return nil, true
	}
	for _, in := range recv {
		if in.Msg.Kind != msgGuardLink || in.Port < 0 || in.Port >= rn.deg {
			rn.accept = false
			continue
		}
		a := in.Msg.Args
		// Judge on arrival: the args slice points into the sender's
		// outbox, which is stable during this step phase only.
		if len(a) != 3 || a[0] != rn.info.Neighbors[in.Port] || a[2] < 0 || a[2] >= a[1] {
			rn.accept = false
		}
		rn.got++
	}
	if rn.got >= rn.deg {
		rn.judged = true
		return nil, true
	}
	return nil, false
}

// buildRotNode precomputes the local half of the check for vertex v.
func buildRotNode(info congest.NodeInfo, rot []int) *rotNode {
	rn := &rotNode{info: info, deg: len(info.Neighbors)}
	rn.posOf = make([]int, rn.deg)
	for p := range rn.posOf {
		rn.posOf[p] = -1
	}
	port := make(map[int]int, rn.deg)
	for p, w := range info.Neighbors {
		port[w] = p
	}
	rn.localOK = len(rot) == rn.deg
	for i, w := range rot {
		p, isNbr := port[w]
		if !isNbr {
			rn.localOK = false
			continue
		}
		if rn.posOf[p] != -1 {
			rn.localOK = false // duplicate entry (simple graph: one dart per neighbour)
			continue
		}
		rn.posOf[p] = i
	}
	if rn.localOK {
		for _, pos := range rn.posOf {
			if pos < 0 {
				rn.localOK = false // neighbour missing from the rotation
				break
			}
		}
	}
	return rn
}

// runRotationCheck executes the distributed rotation/endpoint check over
// the claimed rotations and aggregates the verdict. It returns the
// rejecting vertices (nil on acceptance) with the measured cost.
func runRotationCheck(g *graph.Graph, rot [][]int, opt Options) (rejectors []int, rounds int, messages int64, err error) {
	n := g.N()
	tr := trace.OrNop(opt.Tracer)
	sp := tr.StartSpan(trace.LayerCert, "guard.rotation")
	defer sp.End()

	nw := opt.network(g, 4)
	nodes := make([]congest.Node, n)
	rns := make([]*rotNode, n)
	for v := 0; v < n; v++ {
		var claimed []int
		if v < len(rot) {
			claimed = rot[v]
		}
		rn := buildRotNode(nw.Info(v), claimed)
		rns[v] = rn
		nodes[v] = rn
	}
	r1, err := nw.Run(nodes, 8)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("guard: rotation exchange: %w", err)
	}
	st := nw.Stats()
	rounds = r1
	messages = st.Messages

	accepts := make([]int, n)
	for v, rn := range rns {
		if rn.accept && rn.judged {
			accepts[v] = 1
		}
	}
	part, err := shortcut.NewPartition(make([]int, n))
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := shortcut.RunPAOn(opt.network(g, 0), 0, part, accepts, congest.OpMin)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("guard: rotation aggregation: %w", err)
	}
	rounds += res.Rounds
	messages += res.Stats.Messages
	if res.Values[0] == 1 {
		sp.SetAttr("ok", 1)
		return nil, rounds, messages, nil
	}
	for v, a := range accepts {
		if a == 0 {
			rejectors = append(rejectors, v)
		}
	}
	sp.SetAttr("ok", 0)
	sp.SetAttr("rejectors", int64(len(rejectors)))
	return rejectors, rounds, messages, nil
}

// diagnoseRotation recomputes the first rejecting vertex's violation
// centrally, producing the human-readable witness detail. It mirrors the
// distributed judges exactly and falls back to the endpoint ruling when
// the vertex's own rotation is locally fine (the far end faulted).
func diagnoseRotation(g *graph.Graph, rot [][]int, v int) (Reason, string) {
	var claimed []int
	if v < len(rot) {
		claimed = rot[v]
	}
	if len(claimed) != g.Degree(v) {
		return ReasonRotation, fmt.Sprintf("vertex %d: rotation has %d entries for degree %d", v, len(claimed), g.Degree(v))
	}
	seen := make(map[int]bool, len(claimed))
	for i, w := range claimed {
		if _, isNbr := g.EdgeID(v, w); !isNbr {
			return ReasonRotation, fmt.Sprintf("vertex %d: rotation entry %d lists non-neighbour %d", v, i, w)
		}
		if seen[w] {
			return ReasonRotation, fmt.Sprintf("vertex %d: rotation lists neighbour %d twice", v, w)
		}
		seen[w] = true
	}
	for _, w := range g.Neighbors(v) {
		if !seen[w] {
			return ReasonRotation, fmt.Sprintf("vertex %d: neighbour %d missing from rotation", v, w)
		}
	}
	// The vertex's own rotation is a valid permutation: it rejected
	// because a neighbour's message failed the link check.
	for _, w := range g.Neighbors(v) {
		found := false
		if w < len(rot) {
			for _, x := range rot[w] {
				if x == v {
					found = true
					break
				}
			}
		}
		if !found {
			return ReasonEndpoint, fmt.Sprintf("edge {%d,%d}: vertex %d's rotation does not list %d (retargeted dart)", v, w, w, v)
		}
	}
	return ReasonEndpoint, fmt.Sprintf("vertex %d: a neighbour failed the link exchange", v)
}
