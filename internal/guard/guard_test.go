package guard

import (
	"errors"
	"testing"

	"planardfs/internal/chaos"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// sweepSizes is the small-n sweep of the acceptance property tests.
var sweepSizes = []int{4, 10, 17}

// engines enumerates the engine configurations every verdict must agree
// across: sequential, sharded-parallel, and the classic schedule forced
// on event-driven programs.
var engines = []struct {
	name string
	opt  func(Options) Options
}{
	{"sequential", func(o Options) Options { o.Sequential = true; return o }},
	{"parallel", func(o Options) Options { return o }},
	{"stepall", func(o Options) Options { o.StepAll = true; return o }},
}

// TestGuardAcceptsFamilies pins the one-sided-error contract: every
// generator family instance is accepted by the full validation under every
// engine, and the centralized oracle agrees.
func TestGuardAcceptsFamilies(t *testing.T) {
	for _, fam := range gen.Families {
		for _, n := range sweepSizes {
			in, err := gen.ByName(fam, n, 3)
			if err != nil || in.G.M() == 0 {
				continue
			}
			for _, eng := range engines {
				opt := eng.opt(Options{Seed: 11, Exhaustive: true})
				v, err := ValidateInstance(in, opt)
				if err != nil {
					t.Fatalf("%s/%s: %v", in.Name, eng.name, err)
				}
				if !v.OK {
					t.Fatalf("%s/%s: planar instance rejected: %+v", in.Name, eng.name, v.Witness)
				}
				if v.Err() != nil {
					t.Fatalf("%s/%s: accepting verdict has error", in.Name, eng.name)
				}
			}
			if w := OracleTest(in.G, Options{Seed: 11, Exhaustive: true}); w != nil {
				t.Fatalf("%s: oracle rejected a planar instance: %+v", in.Name, w)
			}
		}
	}
}

// corruptRotations returns the wire rotations of in corrupted by the
// given primitive, or nil when the primitive found nothing to corrupt.
func corruptRotations(in *gen.Instance, seed int64, apply func(*chaos.Plan, [][]int) int) [][]int {
	w := gen.WireOf(in)
	p := chaos.NewPlan(seed, chaos.Spec{Structural: 4})
	if apply(p, w.Rotations) == 0 {
		return nil
	}
	return w.Rotations
}

// TestGuardRejectsRetargetedDarts pins that dart retargeting is rejected
// with a rotation or endpoint witness under every engine.
func TestGuardRejectsRetargetedDarts(t *testing.T) {
	for _, fam := range []string{"grid", "wheel", "polygon", "stacked", "tree"} {
		in, err := gen.ByName(fam, 12, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		rot := corruptRotations(in, 41, func(p *chaos.Plan, r [][]int) int {
			return p.RetargetDarts(1, in.G.N(), r)
		})
		if rot == nil {
			t.Fatalf("%s: retarget applied nothing", fam)
		}
		for _, eng := range engines {
			v, err := ValidateRotations(in.G, rot, eng.opt(Options{Seed: 11, Exhaustive: true}))
			if err != nil {
				t.Fatalf("%s/%s: %v", fam, eng.name, err)
			}
			if v.OK {
				t.Fatalf("%s/%s: retargeted rotation accepted", fam, eng.name)
			}
			if r := v.Witness.Reason; r != ReasonRotation && r != ReasonEndpoint {
				t.Fatalf("%s/%s: reason %q, want rotation or endpoint-mismatch", fam, eng.name, r)
			}
			var re *RejectionError
			if err := v.Err(); !errors.Is(err, ErrRejected) || !errors.As(err, &re) {
				t.Fatalf("%s/%s: rejection error does not match ErrRejected", fam, eng.name)
			}
		}
	}
}

// TestGuardGenusOracle pins the Euler stage against the centralized genus:
// permutation-preserving rotation corruptions (splice swaps, face
// splices) are rejected exactly when they change the genus.
func TestGuardGenusOracle(t *testing.T) {
	prims := []struct {
		name  string
		apply func(*chaos.Plan, [][]int) int
	}{
		{"splice-rotations", func(p *chaos.Plan, r [][]int) int { return p.SpliceRotations(1, r) }},
		{"splice-faces", func(p *chaos.Plan, r [][]int) int { return p.SpliceFaces(1, r) }},
	}
	rejected := 0
	for _, fam := range []string{"grid", "wheel", "polygon", "stacked", "cylinderish", "tree"} {
		in, err := gen.ByName(fam, 14, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for _, pr := range prims {
			for seed := int64(1); seed <= 3; seed++ {
				rot := corruptRotations(in, seed, pr.apply)
				if rot == nil {
					continue
				}
				emb, err := planar.FromNeighborOrders(in.G, rot)
				if err != nil {
					t.Fatalf("%s/%s: corrupted rotation is not a permutation: %v", fam, pr.name, err)
				}
				wantReject := emb.Genus() != 0
				v, err := ValidateRotations(in.G, rot, Options{Seed: 11, Exhaustive: true})
				if err != nil {
					t.Fatalf("%s/%s: %v", fam, pr.name, err)
				}
				if v.OK == wantReject {
					t.Fatalf("%s/%s seed %d: guard OK=%v, centralized genus %d", fam, pr.name, seed, v.OK, emb.Genus())
				}
				if wantReject {
					rejected++
					if v.Witness.Reason != ReasonEuler {
						t.Fatalf("%s/%s: reason %q, want euler", fam, pr.name, v.Witness.Reason)
					}
					if v.Witness.EulerSum == 4 {
						t.Fatalf("%s/%s: euler witness carries accepting sum", fam, pr.name)
					}
				}
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption changed the genus: the sweep exercised nothing")
	}
}

// TestGuardRejectsInjectedEdges pins the tester stages on graphs with
// injected non-planar edges: a triangulation plus any edge trips the
// edge-count bound, and the stale rotation table trips the rotation stage.
func TestGuardRejectsInjectedEdges(t *testing.T) {
	in, err := gen.ByName("stacked", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := gen.WireOf(in)
	if len(w.Edges) != 3*w.N-6 {
		t.Fatalf("stacked-%d is not a triangulation: m=%d", w.N, len(w.Edges))
	}
	p := chaos.NewPlan(5, chaos.Spec{Structural: 2})
	edges, added := p.InjectEdges(1, w.N, w.Edges)
	if added == 0 {
		t.Fatal("injection applied nothing")
	}
	g := graph.New(w.N)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	v, err := ValidateGraph(g, Options{Seed: 11, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Witness.Reason != ReasonEdgeCount {
		t.Fatalf("injected triangulation: verdict OK=%v reason=%v, want edge-count rejection", v.OK, v.Witness)
	}
	// The old rotation table no longer covers the new incidences.
	rv, err := ValidateRotations(g, w.Rotations, Options{Seed: 11, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rv.OK || (rv.Witness.Reason != ReasonRotation && rv.Witness.Reason != ReasonEndpoint) {
		t.Fatalf("stale rotations on injected graph: verdict OK=%v reason=%v", rv.OK, rv.Witness)
	}
}

// denseTestGraph plants a clique on the first k vertices of a path of
// length n: non-planar for k >= 5, with a radius-1 dense-region witness
// for k >= 6 while the global edge count stays under the planar bound.
func denseTestGraph(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if _, err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < k; u++ {
		for v := u + 2; v < k; v++ {
			if _, err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// TestGuardDenseRegion pins the ball tester: a K7 planted on a long path
// keeps m <= 3n-6 globally but violates the density bound inside a
// radius-1 ball, so only the dense-region stage can catch it.
func TestGuardDenseRegion(t *testing.T) {
	g := denseTestGraph(t, 64, 7)
	if g.M() > 3*g.N()-6 {
		t.Fatalf("plant is globally dense: m=%d, the edge-count stage would mask the ball test", g.M())
	}
	for _, eng := range engines {
		v, err := ValidateGraph(g, eng.opt(Options{Seed: 11, Exhaustive: true}))
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if v.OK || v.Witness.Reason != ReasonDenseRegion {
			t.Fatalf("%s: K7 plant verdict OK=%v reason=%v, want dense-region", eng.name, v.OK, v.Witness)
		}
		if v.Witness.M <= v.Witness.Bound {
			t.Fatalf("%s: witness numbers do not violate the bound: %+v", eng.name, v.Witness)
		}
	}
}

// TestGuardEdgeCountK5 pins the global stage: K5 exceeds 3n-6 outright.
func TestGuardEdgeCountK5(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if _, err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	v, err := ValidateGraph(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Witness.Reason != ReasonEdgeCount {
		t.Fatalf("K5 verdict OK=%v reason=%v, want edge-count", v.OK, v.Witness)
	}
}

// TestGuardShapeAndConnectivity pins the centralized prechecks.
func TestGuardShapeAndConnectivity(t *testing.T) {
	v, err := ValidateGraph(graph.New(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Witness.Reason != ReasonShape {
		t.Fatalf("edgeless graph: verdict OK=%v reason=%v, want shape", v.OK, v.Witness)
	}
	g := graph.New(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	v, err = ValidateGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Witness.Reason != ReasonDisconnected {
		t.Fatalf("two components: verdict OK=%v reason=%v, want disconnected", v.OK, v.Witness)
	}
}

// TestGuardOracleAgreement pins the distributed tester against its
// centralized oracle on accepted and rejected inputs: same centers, same
// decision, same reason.
func TestGuardOracleAgreement(t *testing.T) {
	cases := []*graph.Graph{
		denseTestGraph(t, 64, 7),
		denseTestGraph(t, 40, 6),
		denseTestGraph(t, 40, 1), // plain path: accepted
	}
	if in, err := gen.ByName("grid", 25, 3); err == nil {
		cases = append(cases, in.G)
	}
	for i, g := range cases {
		for _, opt := range []Options{{Seed: 11, Exhaustive: true}, {Seed: 7, Centers: 8}, {Seed: 9, Radius: 2, Exhaustive: true}} {
			want := OracleTest(g, opt)
			v, err := ValidateGraph(g, opt)
			if err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
			if (want == nil) != v.OK {
				t.Fatalf("case %d: oracle witness %+v, distributed OK=%v", i, want, v.OK)
			}
			if want != nil {
				got := v.Witness
				if got.Reason != want.Reason || got.Center != want.Center || got.N != want.N || got.M != want.M {
					t.Fatalf("case %d: oracle %+v, distributed %+v", i, want, got)
				}
			}
		}
	}
}

// TestGuardVerdictChecks pins the stage accounting: an accepting run
// records every stage with cost, a rejecting run ends at the failing one.
func TestGuardVerdictChecks(t *testing.T) {
	in, err := gen.ByName("wheel", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateInstance(in, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"shape", "connectivity", "rotation", "edge-count", "density", "euler"}
	if len(v.Checks) != len(wantStages) {
		t.Fatalf("accepting verdict has %d checks, want %d: %+v", len(v.Checks), len(wantStages), v.Checks)
	}
	distributed := 0
	for i, c := range v.Checks {
		if c.Name != wantStages[i] || !c.OK {
			t.Fatalf("check %d = %+v, want OK %q", i, c, wantStages[i])
		}
		if c.Messages > 0 {
			distributed++
		}
	}
	if distributed < 3 {
		t.Fatalf("only %d stages report message cost; rotation, tester and euler should all be distributed", distributed)
	}
	if v.Rounds <= 0 || v.Messages <= 0 {
		t.Fatalf("verdict totals empty: rounds=%d messages=%d", v.Rounds, v.Messages)
	}
}
