// Package guard is the input-validation subsystem that runs before the
// Theorem 2 pipeline: it rejects non-planar and corrupted-embedding inputs
// with typed, certifiable verdicts instead of letting them produce garbage
// output downstream.
//
// A validation run is a sequence of stages, each either a centralized
// precheck or a genuine CONGEST node program executed on the simulator
// (word-bounded payloads, measured rounds and messages):
//
//  1. shape / connectivity — centralized admission prechecks.
//  2. rotation consistency — a distributed embedding-consistency checker:
//     every vertex verifies its claimed clockwise rotation locally (a
//     permutation of its neighbours) and exchanges one word-bounded
//     message per incident edge so both endpoints agree the link exists
//     and each lists the other at a valid rotation position (dart
//     involution and retarget detection). The program is event-driven.
//  3. planarity testing — a CONGEST property tester in the
//     Levi–Medina–Ron style with one-sided error: planar inputs are
//     always accepted; non-planar inputs are rejected when a concrete
//     witness is found — a global edge-count violation m > 3n-6
//     (aggregated distributively) or a dense sampled ball violating the
//     planar density bound. A deterministic centralized oracle
//     (OracleTest) recomputes the same decisions for cross-checking.
//  4. Euler count — the internal/cert embedding scheme run as a
//     first-class guard stage: the aggregated Euler characteristic of the
//     claimed rotation system must be exactly 2 (genus 0).
//
// Verdicts are typed: a rejection carries a Witness naming the Reason and
// the concrete evidence (the offending vertex, the dense ball, the edge
// count), and converts to a RejectionError matching errors.Is(err,
// ErrRejected). One-sided error is a hard contract: a connected, correctly
// embedded planar instance is never rejected by any stage.
package guard

import (
	"errors"
	"fmt"

	"planardfs/internal/congest"
	"planardfs/internal/graph"
	"planardfs/internal/trace"
)

// Reason classifies a rejection. The values are stable strings (they are
// serialized into HTTP error payloads and corpus fixtures).
type Reason string

// The rejection taxonomy, ordered by the stage that detects it.
const (
	// ReasonShape: the input is structurally unusable (no vertices, or a
	// rotation table of the wrong shape).
	ReasonShape Reason = "shape"
	// ReasonDisconnected: the graph is not connected; every downstream
	// stage (BFS aggregation, Euler formula) assumes connectivity.
	ReasonDisconnected Reason = "disconnected"
	// ReasonRotation: a vertex's claimed rotation is not a permutation of
	// its neighbours (duplicate entry, non-neighbour entry, missing
	// neighbour, wrong length) — the local half of embedding consistency.
	ReasonRotation Reason = "rotation"
	// ReasonEndpoint: the endpoints of an edge disagree about the link —
	// the sender's identity or claimed rotation position fails the
	// receiver's check in the distributed exchange.
	ReasonEndpoint Reason = "endpoint-mismatch"
	// ReasonEdgeCount: the distributed degree sum shows m > 3n-6, which no
	// planar simple graph attains.
	ReasonEdgeCount Reason = "edge-count"
	// ReasonDenseRegion: a sampled ball induces a subgraph denser than the
	// planar bound — the K5/K3,3-ish local witness of the property tester.
	ReasonDenseRegion Reason = "dense-region"
	// ReasonEuler: the aggregated Euler characteristic of the claimed
	// rotation system is not 2 (genus > 0): the rotations are a valid
	// permutation system but not a planar embedding.
	ReasonEuler Reason = "euler"
)

// Witness is the concrete evidence attached to a rejection.
type Witness struct {
	Reason Reason `json:"reason"`
	// Detail is the human-readable account of the evidence.
	Detail string `json:"detail"`
	// Vertex anchors local violations (rotation, endpoint); -1 otherwise.
	Vertex int `json:"vertex,omitempty"`
	// Rejectors counts the rejecting verifier nodes of a distributed stage.
	Rejectors int `json:"rejectors,omitempty"`
	// N, M and Bound carry the numbers of a density/edge-count violation:
	// the (sub)graph has N vertices and M edges against the planar bound.
	N     int `json:"n,omitempty"`
	M     int `json:"m,omitempty"`
	Bound int `json:"bound,omitempty"`
	// Center and Radius identify the dense ball of a ReasonDenseRegion
	// witness.
	Center int `json:"center,omitempty"`
	Radius int `json:"radius,omitempty"`
	// EulerSum is the aggregated 2V-2E+2F total of a ReasonEuler witness
	// (4 on acceptance).
	EulerSum int `json:"eulerSum,omitempty"`
}

// ErrRejected is the sentinel every guard rejection matches:
// errors.Is(err, ErrRejected) distinguishes "the input is bad" from
// infrastructure failures.
var ErrRejected = errors.New("guard: input rejected")

// RejectionError is the typed error form of a rejection verdict.
type RejectionError struct {
	Witness Witness
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("guard: input rejected (%s): %s", e.Witness.Reason, e.Witness.Detail)
}

// Unwrap makes errors.Is(err, ErrRejected) hold for every rejection.
func (e *RejectionError) Unwrap() error { return ErrRejected }

// CheckResult records one validation stage of a verdict.
type CheckResult struct {
	// Name identifies the stage: "shape", "connectivity", "rotation",
	// "edge-count", "density", "euler".
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Rounds and Messages are the measured CONGEST cost of the stage
	// (zero for centralized prechecks).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// Verdict is the outcome of a validation run. Stages run in order and stop
// at the first rejection, so Checks lists every stage that ran; the last
// entry of a rejecting verdict is the one that failed.
type Verdict struct {
	OK      bool          `json:"ok"`
	Witness *Witness      `json:"witness,omitempty"`
	Checks  []CheckResult `json:"checks"`
	// Rounds and Messages total the measured CONGEST cost across all
	// distributed stages (the guard overhead the bench mode reports).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`

	// testerErr parks an infrastructure error raised inside a tester stage
	// so the orchestrator can surface it after the stage helper returns.
	testerErr error
}

// Err returns nil for an accepting verdict and the typed RejectionError
// otherwise.
func (v *Verdict) Err() error {
	if v.OK {
		return nil
	}
	w := Witness{Reason: ReasonShape, Detail: "rejected without witness"}
	if v.Witness != nil {
		w = *v.Witness
	}
	return &RejectionError{Witness: w}
}

// reject closes the current check as failed and stamps the witness.
func (v *Verdict) reject(w Witness) *Verdict {
	v.OK = false
	v.Witness = &w
	return v
}

// addCheck appends a stage record and folds its cost into the totals.
func (v *Verdict) addCheck(name string, ok bool, rounds int, messages int64) {
	v.Checks = append(v.Checks, CheckResult{Name: name, OK: ok, Rounds: rounds, Messages: messages})
	v.Rounds += rounds
	v.Messages += messages
}

// Options configure a validation run. The zero value runs the parallel
// engine with the default tester budget (16 seeded centers, radius-1
// balls) untraced.
type Options struct {
	// Sequential selects the sequential round engine; verdicts are
	// bit-identical either way.
	Sequential bool
	// Workers overrides the sharded engine's worker count; 0 means one per
	// CPU.
	Workers int
	// StepAll forces the classic schedule even for event-driven programs;
	// the engine-equivalence tests run the guard under both.
	StepAll bool
	// Tracer records guard spans and the underlying network rounds; nil
	// disables tracing.
	Tracer trace.Tracer

	// Seed derives the tester's ball centers. The same seed always samples
	// the same centers, so verdicts are reproducible.
	Seed int64
	// Centers is the number of sampled ball centers per run; 0 means
	// min(n, 16). Ignored when Exhaustive is set.
	Centers int
	// Radius is the ball radius of the density tester; 0 means 1, values
	// above 8 are clamped.
	Radius int
	// Exhaustive sweeps every vertex as a ball center instead of sampling
	// — the deterministic mode the corpus gate and fixtures rely on.
	Exhaustive bool
}

// network builds a CONGEST network configured per the options with at
// least maxWords words of bandwidth.
func (o Options) network(g *graph.Graph, maxWords int) *congest.Network {
	nw := congest.New(g)
	if maxWords > nw.MaxWords {
		nw.MaxWords = maxWords
	}
	nw.Parallel = !o.Sequential
	nw.Workers = o.Workers
	nw.Tracer = o.Tracer
	nw.StepAll = o.StepAll
	return nw
}

// radius returns the effective ball radius.
func (o Options) radius() int {
	r := o.Radius
	if r <= 0 {
		r = 1
	}
	if r > 8 {
		r = 8
	}
	return r
}

// centers returns the effective center count for an n-vertex graph.
func (o Options) centers(n int) int {
	if o.Exhaustive {
		return n
	}
	c := o.Centers
	if c <= 0 {
		c = 16
	}
	if c > n {
		c = n
	}
	return c
}
