// Package gen generates embedded planar graphs for tests, examples, and
// experiments. Every generator returns an Instance carrying the graph, a
// validated combinatorial planar embedding (clockwise rotation system,
// y-up drawing convention), and a dart lying on the designated outer face.
package gen

import (
	"fmt"
	"math"
	"sort"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// Instance is an embedded planar graph with a designated outer face.
type Instance struct {
	Name string
	G    *graph.Graph
	Emb  *planar.Embedding
	// OuterDart is a dart whose face (interior-left convention) is the
	// unbounded outer face.
	OuterDart int
}

// OuterFace returns the face index of the designated outer face with respect
// to Emb.TraceFaces ordering.
func (in *Instance) OuterFace() int { return in.Emb.OuterFaceOf(in.OuterDart) }

// embedFromCoords builds the embedding induced by vertex coordinates: the
// rotation at each vertex lists its neighbours in clockwise angular order
// (starting from north, y up). It requires a straight-line plane drawing
// (no crossing edges); validity is checked via the genus.
//
// The rotation is streamed into flat arrays: one vertex-major dart array
// sorted by (tail, clockwise angle key) feeds planar.NewEmbeddingFlat
// directly — no per-vertex neighbour slices are materialized.
func embedFromCoords(g *graph.Graph, xs, ys []float64) (*planar.Embedding, error) {
	n, m := g.N(), g.M()
	darts := make([]int32, 0, 2*m)
	keys := make([]float64, 2*m)
	tails := make([]int32, 2*m)
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, id := range g.IncidentEdges(v) {
			u, _ := g.EndpointsOf(int(id))
			d := 2 * id
			if u != int32(v) {
				d++
			}
			w := g.Other(int(id), v)
			keys[d] = cwKey(math.Atan2(ys[w]-ys[v], xs[w]-xs[v]))
			tails[d] = int32(v)
			darts = append(darts, d)
		}
		//planarvet:narrowok degrees are < n and graph.New bounds n to MaxInt32
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	// One global sort: tails group darts vertex-major (matching off), the
	// angle key orders each rotation clockwise from north.
	sort.Slice(darts, func(i, j int) bool {
		di, dj := darts[i], darts[j]
		if tails[di] != tails[dj] {
			return tails[di] < tails[dj]
		}
		return keys[di] < keys[dj]
	})
	emb, err := planar.NewEmbeddingFlat(g, off, darts)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, fmt.Errorf("gen: coordinate embedding invalid: %w", err)
	}
	return emb, nil
}

// cwKey maps an angle to a key increasing clockwise starting from north.
func cwKey(ang float64) float64 {
	k := math.Pi/2 - ang
	if k < 0 {
		k += 2 * math.Pi
	}
	return k
}

// outerDartFromCoords returns a dart on the outer face of a coordinate
// embedding. It locates the bottom-most (then left-most) vertex; the face at
// its south-facing corner is unbounded. The corner between clockwise-
// consecutive darts (a, b) belongs to the face of dart b, so the answer is
// the first dart in clockwise order whose direction key exceeds south
// (wrapping to the first dart).
func outerDartFromCoords(g *graph.Graph, emb *planar.Embedding, xs, ys []float64) int {
	v0 := 0
	for v := 1; v < g.N(); v++ {
		if ys[v] < ys[v0] || (ys[v] == ys[v0] && xs[v] < xs[v0]) {
			v0 = v
		}
	}
	d0 := emb.FirstDart(v0)
	south := math.Pi // cwKey of straight down
	for d := d0; ; {
		w := emb.HeadOf(d)
		if cwKey(math.Atan2(ys[w]-ys[v0], xs[w]-xs[v0])) > south {
			return d
		}
		d = emb.NextCW(d)
		if d == d0 {
			break
		}
	}
	return d0
}

// Grid returns the w x h grid graph with its standard embedding. Vertex
// (x, y) has index y*w + x; (0,0) is the bottom-left corner. Requires
// w, h >= 2.
func Grid(w, h int) (*Instance, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("gen: grid needs w,h >= 2, got %dx%d", w, h)
	}
	g := graph.NewWithCapacity(w*h, (w-1)*h+w*(h-1))
	xs := make([]float64, w*h)
	ys := make([]float64, w*h)
	idx := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := idx(x, y)
			xs[v], ys[v] = float64(x), float64(y)
			if x+1 < w {
				g.MustAddEdge(v, idx(x+1, y))
			}
			if y+1 < h {
				g.MustAddEdge(v, idx(x, y+1))
			}
		}
	}
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("grid-%dx%d", w, h),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}

// Cycle returns the n-cycle 0-1-...-(n-1)-0 embedded as a convex polygon
// with vertices in counterclockwise order. Requires n >= 3.
func Cycle(n int) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs n >= 3, got %d", n)
	}
	g := graph.New(n)
	xs, ys := polygonCoords(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("cycle-%d", n),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}

func polygonCoords(n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		xs[i], ys[i] = math.Cos(a), math.Sin(a)
	}
	return xs, ys
}

// Wheel returns the wheel graph: an n-cycle (vertices 0..n-1, ccw) plus a
// hub (vertex n) adjacent to every rim vertex. Requires n >= 3.
func Wheel(n int) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: wheel needs rim n >= 3, got %d", n)
	}
	g := graph.New(n + 1)
	xs, ys := polygonCoords(n)
	xs = append(xs, 0)
	ys = append(ys, 0)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
		g.MustAddEdge(i, n)
	}
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("wheel-%d", n),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}

// Fan returns the fan graph: a path 0-1-...-(n-2) plus an apex (vertex n-1)
// adjacent to every path vertex; an outerplanar triangulation with a
// Θ(n)-degree apex. Requires n >= 4.
func Fan(n int) (*Instance, error) {
	if n < 4 {
		return nil, fmt.Errorf("gen: fan needs n >= 4, got %d", n)
	}
	k := n - 1 // path length
	g := graph.New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	// Path vertices on an upper arc, apex below.
	for i := 0; i < k; i++ {
		a := math.Pi * float64(i+1) / float64(k+1)
		xs[i], ys[i] = math.Cos(math.Pi-a), math.Sin(math.Pi-a)
		if i+1 < k {
			g.MustAddEdge(i, i+1)
		}
		g.MustAddEdge(i, n-1)
	}
	xs[n-1], ys[n-1] = 0, -1
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("fan-%d", n),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}
