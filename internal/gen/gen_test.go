package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/planar"
)

// checkInstance validates the invariants every generator must provide:
// connected graph, genus-0 embedding, valid outer dart.
func checkInstance(t *testing.T, in *Instance, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !in.G.Connected() {
		t.Fatalf("%s: not connected", in.Name)
	}
	if err := in.Emb.Validate(); err != nil {
		t.Fatalf("%s: %v", in.Name, err)
	}
	if in.G.M() > 0 {
		if in.OuterDart < 0 || in.OuterDart >= 2*in.G.M() {
			t.Fatalf("%s: outer dart %d out of range", in.Name, in.OuterDart)
		}
	}
}

func TestGridInvariants(t *testing.T) {
	for _, wh := range [][2]int{{2, 2}, {3, 3}, {4, 7}, {10, 2}} {
		in, err := Grid(wh[0], wh[1])
		checkInstance(t, in, err)
		w, h := wh[0], wh[1]
		if in.G.N() != w*h {
			t.Fatalf("grid %v: n=%d", wh, in.G.N())
		}
		if in.G.M() != w*(h-1)+h*(w-1) {
			t.Fatalf("grid %v: m=%d", wh, in.G.M())
		}
		// Outer face boundary has 2(w-1)+2(h-1) darts; inner faces have 4.
		fs := in.Emb.TraceFaces()
		outer := in.OuterFace()
		wantOuter := 2*(w-1) + 2*(h-1)
		if got := fs.CycleLen(outer); got != wantOuter {
			t.Fatalf("grid %v: outer face length %d, want %d", wh, got, wantOuter)
		}
		for f := 0; f < fs.Count(); f++ {
			if f != outer && fs.CycleLen(f) != 4 {
				t.Fatalf("grid %v: inner face of length %d", wh, fs.CycleLen(f))
			}
		}
	}
	if _, err := Grid(1, 5); err == nil {
		t.Fatal("Grid(1,5) accepted")
	}
}

func TestCycleInvariants(t *testing.T) {
	for _, n := range []int{3, 4, 9} {
		in, err := Cycle(n)
		checkInstance(t, in, err)
		fs := in.Emb.TraceFaces()
		if fs.Count() != 2 {
			t.Fatalf("cycle-%d: %d faces", n, fs.Count())
		}
		if fs.CycleLen(in.OuterFace()) != n {
			t.Fatalf("cycle-%d: outer face length %d", n, fs.CycleLen(in.OuterFace()))
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) accepted")
	}
}

func TestWheelInvariants(t *testing.T) {
	for _, n := range []int{3, 5, 12} {
		in, err := Wheel(n)
		checkInstance(t, in, err)
		if in.G.N() != n+1 || in.G.M() != 2*n {
			t.Fatalf("wheel-%d: n=%d m=%d", n, in.G.N(), in.G.M())
		}
		fs := in.Emb.TraceFaces()
		if fs.Count() != n+1 {
			t.Fatalf("wheel-%d: faces=%d, want %d", n, fs.Count(), n+1)
		}
		if fs.CycleLen(in.OuterFace()) != n {
			t.Fatalf("wheel-%d: outer length %d", n, fs.CycleLen(in.OuterFace()))
		}
	}
}

func TestFanInvariants(t *testing.T) {
	for _, n := range []int{4, 7, 20} {
		in, err := Fan(n)
		checkInstance(t, in, err)
		if in.G.N() != n || in.G.M() != 2*(n-1)-1 {
			t.Fatalf("fan-%d: n=%d m=%d", n, in.G.N(), in.G.M())
		}
		// All inner faces triangles; outer face length n (arc + two spokes).
		fs := in.Emb.TraceFaces()
		outer := in.OuterFace()
		for f := 0; f < fs.Count(); f++ {
			if f != outer && fs.CycleLen(f) != 3 {
				t.Fatalf("fan-%d: inner face of length %d", n, fs.CycleLen(f))
			}
		}
		if fs.CycleLen(outer) != n {
			t.Fatalf("fan-%d: outer face length %d, want %d", n, fs.CycleLen(outer), n)
		}
	}
}

func TestStackedTriangulation(t *testing.T) {
	for _, n := range []int{3, 4, 10, 100} {
		in, err := StackedTriangulation(n, 42)
		checkInstance(t, in, err)
		if in.G.N() != n {
			t.Fatalf("n=%d", in.G.N())
		}
		// Maximal planar: m = 3n - 6.
		if in.G.M() != 3*n-6 {
			t.Fatalf("stacked-%d: m=%d, want %d", n, in.G.M(), 3*n-6)
		}
		// Every face is a triangle.
		fs := in.Emb.TraceFaces()
		for f := 0; f < fs.Count(); f++ {
			if fs.CycleLen(f) != 3 {
				t.Fatalf("stacked-%d: face of length %d", n, fs.CycleLen(f))
			}
		}
		// Outer face must be the initial triangle {0,1,2}.
		vs := fs.FaceVertices(in.OuterFace())
		sum := vs[0] + vs[1] + vs[2]
		if sum != 3 {
			t.Fatalf("stacked-%d: outer face vertices %v, want {0,1,2}", n, vs)
		}
	}
}

func TestStackedTriangulationDeterministic(t *testing.T) {
	a, _ := StackedTriangulation(50, 7)
	b, _ := StackedTriangulation(50, 7)
	if a.G.M() != b.G.M() {
		t.Fatal("same seed produced different graphs")
	}
	for e := 0; e < a.G.M(); e++ {
		if a.G.EdgeByID(e) != b.G.EdgeByID(e) {
			t.Fatal("same seed produced different edge lists")
		}
	}
	c, _ := StackedTriangulation(50, 8)
	same := c.G.M() == a.G.M()
	if same {
		for e := 0; e < a.G.M(); e++ {
			if a.G.EdgeByID(e) != c.G.EdgeByID(e) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

// TestGenerationAllocsBounded gates the generation path of the stacked
// builder: the dart arena is sized up front, so growing the triangulation
// to n vertices costs a constant number of allocations (the arena arrays
// plus the builder struct), not ~2 per inserted vertex.
func TestGenerationAllocsBounded(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(5))
	allocs := testing.AllocsPerRun(10, func() {
		tb := newTriBuilder(n)
		for tb.n < n {
			tb.stack(rng.Intn(len(tb.faces)))
		}
		if tb.n != n || len(tb.faces) != 2*n-5 {
			t.Fatalf("built %d vertices, %d faces", tb.n, len(tb.faces))
		}
	})
	if allocs > 8 {
		t.Fatalf("generation allocates %.1f allocs/run, want a constant <= 8", allocs)
	}
}

func TestSparsePlanar(t *testing.T) {
	for _, p := range []float64{0, 0.3, 0.8, 1} {
		in, err := SparsePlanar(60, p, 3)
		checkInstance(t, in, err)
		if p == 0 && in.G.M() != 3*60-6 {
			t.Fatalf("dropProb 0 must keep all edges, m=%d", in.G.M())
		}
		if p == 1 && in.G.M() >= 3*60-6 {
			t.Fatal("dropProb 1 should remove non-tree edges")
		}
		if in.G.M() < in.G.N()-1 {
			t.Fatal("fewer edges than spanning tree")
		}
	}
	if _, err := SparsePlanar(10, 1.5, 0); err == nil {
		t.Fatal("dropProb out of range accepted")
	}
}

func TestPolygonTriangulation(t *testing.T) {
	for _, n := range []int{3, 4, 5, 30} {
		in, err := PolygonTriangulation(n, 5)
		checkInstance(t, in, err)
		if in.G.M() != n+(n-3) {
			t.Fatalf("polygon-%d: m=%d, want %d", n, in.G.M(), 2*n-3)
		}
		fs := in.Emb.TraceFaces()
		outer := in.OuterFace()
		if fs.CycleLen(outer) != n {
			t.Fatalf("polygon-%d: outer length %d", n, fs.CycleLen(outer))
		}
		for f := 0; f < fs.Count(); f++ {
			if f != outer && fs.CycleLen(f) != 3 {
				t.Fatalf("polygon-%d: inner face length %d", n, fs.CycleLen(f))
			}
		}
	}
}

func TestTreeGenerators(t *testing.T) {
	in, err := RandomTree(40, 11)
	checkInstance(t, in, err)
	if in.G.M() != 39 {
		t.Fatalf("tree edges = %d", in.G.M())
	}
	in, err = PathTree(25)
	checkInstance(t, in, err)
	if in.G.Diameter() != 24 {
		t.Fatal("path diameter wrong")
	}
	in, err = Caterpillar(30)
	checkInstance(t, in, err)
	if in.G.M() != 29 {
		t.Fatal("caterpillar edges wrong")
	}
	if _, err := RandomTree(0, 1); err == nil {
		t.Fatal("RandomTree(0) accepted")
	}
	one, err := PathTree(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Emb.Validate(); err != nil {
		t.Fatalf("single-vertex embedding invalid: %v", err)
	}
}

// Property: stacked triangulations are valid planar embeddings for any
// seed and size.
func TestStackedTriangulationProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%120
		in, err := StackedTriangulation(n, seed)
		if err != nil {
			return false
		}
		return in.G.Connected() && in.Emb.Validate() == nil && in.G.M() == 3*n-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the designated outer face of a sparse planar graph always
// contains the darts of the initial triangle boundary.
func TestSparsePlanarOuterFaceProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%80
		in, err := SparsePlanar(n, 0.5, seed)
		if err != nil {
			return false
		}
		id, ok := in.G.EdgeID(0, 1)
		if !ok {
			return false
		}
		return in.OuterFace() == in.Emb.OuterFaceOf(planar.DartFrom(in.G, id, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
