package gen

import (
	"fmt"
	"math"
	"math/rand"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// triBuilder incrementally builds a stacked planar triangulation by
// repeatedly inserting a fresh vertex inside an inner triangular face and
// connecting it to the three corners. The rotation system lives in a flat
// dart arena: darts are allocated in reverse pairs (rev(d) = d^1), head[d]
// is the vertex dart d points at, next[d] links d to its clockwise
// successor in the rotation of its tail (-1 terminates), and first[v]
// starts vertex v's list. Faces are oriented dart triples (d_ab, d_bc,
// d_ca) traced a->b->c with the interior on the left, which makes every
// rotation splice during a stack O(1): the dart to insert after is known
// from the face, never searched for. All arrays are sized up front from
// the target vertex count, so the generation loop does not allocate.
type triBuilder struct {
	head  []int32    // head[d]: vertex dart d points to
	next  []int32    // next[d]: clockwise successor at tail(d), -1 at end
	first []int32    // first[v]: first dart of v's clockwise rotation
	faces [][3]int32 // inner faces as oriented dart triples
	n     int        // vertices created so far
}

// newTriBuilder seeds the initial triangle 0,1,2 (ccw coordinates (0,0),
// (1,0), (0.5,1); clockwise rotations [2,1] at 0, [2,0] at 1, [1,0] at 2)
// with arrays presized for a triangulation on n vertices: 3n-6 edges,
// 6n-12 darts, 2n-5 inner faces.
func newTriBuilder(n int) *triBuilder {
	// The dart arena is indexed by int32 (newPair hands out int32 dart ids
	// as the arena grows), so the full triangulation must fit the dart
	// space up front — past this bound the ids would wrap silently.
	if n > (math.MaxInt32+12)/6 {
		panic(fmt.Sprintf("gen: triangulation on %d vertices needs %d darts, exceeding the int32 dart space", n, 6*n-12))
	}
	tb := &triBuilder{
		head:  make([]int32, 0, 6*n-12),
		next:  make([]int32, 0, 6*n-12),
		first: make([]int32, n),
		faces: make([][3]int32, 0, 2*n-5),
		n:     3,
	}
	d01 := tb.newPair(0, 1)
	d02 := tb.newPair(0, 2)
	d12 := tb.newPair(1, 2)
	tb.first[0], tb.next[d02] = d02, d01
	tb.first[1], tb.next[d12] = d12, d01^1
	tb.first[2], tb.next[d12^1] = d12^1, d02^1
	// Inner face traced 0->1->2 (ccw): darts 0->1, 1->2, 2->0.
	tb.faces = append(tb.faces, [3]int32{d01, d12, d02 ^ 1})
	return tb
}

// newPair allocates the dart pair of edge {u,w} and returns the u->w dart;
// its reverse w->u is the returned value xor 1. Both start list-terminal.
// The arena arrays are presized by newTriBuilder, so handing out a pair is
// two in-capacity appends — the generation loop never grows them.
//
//planarvet:noalloc TestGenerationAllocsBounded
func (tb *triBuilder) newPair(u, w int) int32 {
	//planarvet:narrowok the arena holds at most 6n-12 darts and newTriBuilder bounds that by MaxInt32
	d := int32(len(tb.head))
	//planarvet:narrowok u and w are vertex ids < n, bounded via the dart-space check in newTriBuilder
	tb.head = append(tb.head, int32(w), int32(u)) //planarvet:allocok head is presized to 6n-12 darts by newTriBuilder, append stays in capacity
	tb.next = append(tb.next, -1, -1)             //planarvet:allocok next is presized to 6n-12 darts by newTriBuilder, append stays in capacity
	return d
}

// insertAfter splices dart d into the rotation of its tail immediately
// after dart prev (which must share the same tail).
//
//planarvet:noalloc TestGenerationAllocsBounded
func (tb *triBuilder) insertAfter(prev, d int32) {
	tb.next[d] = tb.next[prev]
	tb.next[prev] = d
}

// stack inserts a new vertex inside face index f and returns its id.
//
//planarvet:noalloc TestGenerationAllocsBounded
func (tb *triBuilder) stack(f int) int {
	dab, dbc, dca := tb.faces[f][0], tb.faces[f][1], tb.faces[f][2]
	a, b, c := int(tb.head[dca]), int(tb.head[dab]), int(tb.head[dbc])
	x := tb.n
	tb.n++
	dax := tb.newPair(a, x)
	dbx := tb.newPair(b, x)
	dcx := tb.newPair(c, x)
	// At a, the face corner lies clockwise-between darts a->c and a->b:
	// insert a->x after a->c, which is rev(d_ca). Analogously at b (after
	// b->a = rev(d_ab)) and c (after c->b = rev(d_bc)).
	tb.insertAfter(dca^1, dax)
	tb.insertAfter(dab^1, dbx)
	tb.insertAfter(dbc^1, dcx)
	// The new vertex sees the ccw boundary a,b,c; its own clockwise order
	// is the reverse: c, b, a.
	tb.first[x] = dcx ^ 1
	tb.next[dcx^1] = dbx ^ 1
	tb.next[dbx^1] = dax ^ 1
	// Replace face f by (a,b,x) and append (b,c,x), (c,a,x).
	tb.faces[f] = [3]int32{dab, dbx, dax ^ 1}
	tb.faces = append(tb.faces, [3]int32{dbc, dcx, dbx ^ 1}, [3]int32{dca, dax, dcx ^ 1}) //planarvet:allocok faces is presized to 2n-5 triples by newTriBuilder, append stays in capacity
	return x
}

// build materialises the graph and embedding. keep filters edges: if
// non-nil, only edges {u,v} with keep(u,v) true are included (neighbour
// orders are filtered accordingly), which preserves planarity.
func (tb *triBuilder) build(name string, keep func(u, v int) bool) (*Instance, error) {
	n := tb.n
	g := graph.NewWithCapacity(n, 3*n)
	for v := 0; v < n; v++ {
		for d := tb.first[v]; d >= 0; d = tb.next[d] {
			w := int(tb.head[d])
			if v < w && (keep == nil || keep(v, w)) {
				g.MustAddEdge(v, w)
			}
		}
	}
	// Stream the kept rotation into a flat vertex-major dart array.
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		//planarvet:narrowok degrees are < n and graph.New bounds n to MaxInt32
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	darts := make([]int32, 0, 2*g.M())
	for v := 0; v < n; v++ {
		for d := tb.first[v]; d >= 0; d = tb.next[d] {
			w := int(tb.head[d])
			if keep == nil || keep(min(v, w), max(v, w)) {
				id, ok := g.EdgeID(v, w)
				if !ok {
					return nil, fmt.Errorf("gen: %s lost edge {%d,%d}", name, v, w)
				}
				//planarvet:narrowok darts are < 2m and AddEdge bounds the edge count to MaxInt32/2
				darts = append(darts, int32(planar.DartFrom(g, id, v)))
			}
		}
	}
	emb, err := planar.NewEmbeddingFlat(g, off, darts)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, fmt.Errorf("gen: %s embedding invalid: %w", name, err)
	}
	// The outer face is left of dart 1->0 (the initial triangle is kept by
	// every keep filter used here).
	id, ok := g.EdgeID(0, 1)
	if !ok {
		return nil, fmt.Errorf("gen: %s deleted an outer-triangle edge", name)
	}
	return &Instance{
		Name:      name,
		G:         g,
		Emb:       emb,
		OuterDart: planar.DartFrom(g, id, 1),
	}, nil
}

// StackedTriangulation returns a random stacked (Apollonian) planar
// triangulation with n vertices: every inner face is a triangle, the outer
// face is the initial triangle 0,1,2. Requires n >= 3. Deterministic in
// seed.
func StackedTriangulation(n int, seed int64) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: triangulation needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := newTriBuilder(n)
	for tb.n < n {
		tb.stack(rng.Intn(len(tb.faces)))
	}
	return tb.build(fmt.Sprintf("stacked-%d", n), nil)
}

// SparsePlanar returns a random connected planar graph obtained from a
// stacked triangulation by deleting each non-essential edge with probability
// dropProb. Edges of a spanning tree and of the outer triangle are always
// kept, so the graph stays connected and the outer face designation remains
// valid. Requires n >= 3 and 0 <= dropProb <= 1.
func SparsePlanar(n int, dropProb float64, seed int64) (*Instance, error) {
	if dropProb < 0 || dropProb > 1 {
		return nil, fmt.Errorf("gen: dropProb %v out of [0,1]", dropProb)
	}
	if n < 3 {
		return nil, fmt.Errorf("gen: sparse planar needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := newTriBuilder(n)
	for tb.n < n {
		tb.stack(rng.Intn(len(tb.faces)))
	}
	// Spanning tree edges via union-find over the full triangulation,
	// scanning edges in a shuffled order for variety.
	type edge struct{ u, v int }
	all := make([]edge, 0, 3*n-6)
	for v := 0; v < n; v++ {
		for d := tb.first[v]; d >= 0; d = tb.next[d] {
			if w := int(tb.head[d]); v < w {
				all = append(all, edge{v, w})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	uf := graph.NewUnionFind(n)
	kept := make(map[edge]bool, len(all))
	kept[edge{0, 1}] = true
	kept[edge{1, 2}] = true
	kept[edge{0, 2}] = true
	uf.Union(0, 1)
	uf.Union(1, 2)
	for _, e := range all {
		if uf.Union(e.u, e.v) {
			kept[e] = true
		}
	}
	for _, e := range all {
		if !kept[e] && rng.Float64() >= dropProb {
			kept[e] = true
		}
	}
	return tb.build(fmt.Sprintf("sparse-%d-p%.2f", n, dropProb),
		func(u, v int) bool { return kept[edge{u, v}] })
}

// PolygonTriangulation returns a random triangulation of a convex n-gon
// (an outerplanar maximal graph): cycle 0..n-1 plus n-3 non-crossing
// diagonals chosen by recursive random splitting. Requires n >= 3.
func PolygonTriangulation(n int, seed int64) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: polygon needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	xs, ys := polygonCoords(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	// Triangulate the fan of indices i..j (vertices in ccw convex position).
	var split func(i, j int)
	split = func(i, j int) {
		if j-i < 2 {
			return
		}
		k := i + 1 + rng.Intn(j-i-1)
		if k-i >= 2 {
			g.MustAddEdge(i, k)
		}
		if j-k >= 2 {
			g.MustAddEdge(k, j)
		}
		split(i, k)
		split(k, j)
	}
	split(0, n-1)
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("polygon-%d", n),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}

// RandomTree returns a random tree on n vertices: vertex v >= 1 attaches to
// a uniformly random earlier vertex. Trees are planar with any rotation
// system; children are embedded in attachment order. Requires n >= 1.
func RandomTree(n int, seed int64) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: tree needs n >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return treeInstance(fmt.Sprintf("randtree-%d", n), parent)
}

// PathTree returns the path 0-1-...-(n-1) as a tree instance (maximum-depth
// spanning structure; diameter n-1).
func PathTree(n int) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: path needs n >= 1, got %d", n)
	}
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return treeInstance(fmt.Sprintf("path-%d", n), parent)
}

// Caterpillar returns a caterpillar tree: a spine of length n/2 with a leg
// hanging off each spine vertex.
func Caterpillar(n int) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: caterpillar needs n >= 2, got %d", n)
	}
	parent := make([]int, n)
	parent[0] = -1
	spine := (n + 1) / 2
	for v := 1; v < spine; v++ {
		parent[v] = v - 1
	}
	for v := spine; v < n; v++ {
		parent[v] = v - spine
	}
	return treeInstance(fmt.Sprintf("caterpillar-%d", n), parent)
}

func treeInstance(name string, parent []int) (*Instance, error) {
	n := len(parent)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			g.MustAddEdge(v, parent[v])
		}
	}
	// Trees embed neighbours in incident-edge order; emit the darts flat.
	off := make([]int32, n+1)
	darts := make([]int32, 0, 2*g.M())
	for v := 0; v < n; v++ {
		//planarvet:narrowok degrees are < n and graph.New bounds n to MaxInt32
		off[v+1] = off[v] + int32(g.Degree(v))
		for _, id := range g.IncidentEdges(v) {
			u, _ := g.EndpointsOf(int(id))
			d := 2 * id
			if u != int32(v) {
				d++
			}
			darts = append(darts, d)
		}
	}
	emb, err := planar.NewEmbeddingFlat(g, off, darts)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, fmt.Errorf("gen: tree embedding invalid: %w", err)
	}
	outer := 0
	if n > 1 {
		outer = emb.FirstDart(0)
	}
	return &Instance{Name: name, G: g, Emb: emb, OuterDart: outer}, nil
}
