package gen

import (
	"fmt"
	"math/rand"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// triBuilder incrementally builds a stacked planar triangulation by
// repeatedly inserting a fresh vertex inside an inner triangular face and
// connecting it to the three corners. It maintains, for every vertex, the
// clockwise neighbour order, and the list of inner faces as oriented
// triples (a, b, c) traversed a->b->c with the interior on the left.
type triBuilder struct {
	nbrs  [][]int // clockwise neighbour lists
	faces [][3]int
}

func newTriBuilder() *triBuilder {
	// Initial triangle 0,1,2 with ccw coordinates (0,0), (1,0), (0.5,1):
	// clockwise rotations rot[0]=[2,1], rot[1]=[2,0]... wait at vertex 1 the
	// clockwise order from north is [2,0]; at 2 it is [1,0].
	return &triBuilder{
		nbrs:  [][]int{{2, 1}, {2, 0}, {1, 0}},
		faces: [][3]int{{0, 1, 2}}, // inner face traced 0->1->2 (ccw)
	}
}

// indexOf returns the position of w in v's neighbour list.
func (tb *triBuilder) indexOf(v, w int) int {
	for i, x := range tb.nbrs[v] {
		if x == w {
			return i
		}
	}
	panic(fmt.Sprintf("gen: %d not a neighbour of %d", w, v))
}

// insertAfter inserts x into v's clockwise neighbour list immediately after
// neighbour w.
func (tb *triBuilder) insertAfter(v, w, x int) {
	i := tb.indexOf(v, w)
	lst := tb.nbrs[v]
	lst = append(lst, 0)
	copy(lst[i+2:], lst[i+1:])
	lst[i+1] = x
	tb.nbrs[v] = lst
}

// stack inserts a new vertex inside face index f and returns its id.
func (tb *triBuilder) stack(f int) int {
	a, b, c := tb.faces[f][0], tb.faces[f][1], tb.faces[f][2]
	x := len(tb.nbrs)
	// New vertex sees the ccw boundary a,b,c; its own clockwise order is the
	// reverse.
	tb.nbrs = append(tb.nbrs, []int{c, b, a})
	// At a, the face corner lies clockwise-between darts a->c and a->b:
	// insert x after c. Analogously at b (after a) and c (after b).
	tb.insertAfter(a, c, x)
	tb.insertAfter(b, a, x)
	tb.insertAfter(c, b, x)
	// Replace face f by (a,b,x) and append (b,c,x), (c,a,x).
	tb.faces[f] = [3]int{a, b, x}
	tb.faces = append(tb.faces, [3]int{b, c, x}, [3]int{c, a, x})
	return x
}

// build materialises the graph and embedding. keep filters edges: if
// non-nil, only edges {u,v} with keep(u,v) true are included (neighbour
// orders are filtered accordingly), which preserves planarity.
func (tb *triBuilder) build(name string, keep func(u, v int) bool) (*Instance, error) {
	n := len(tb.nbrs)
	g := graph.NewWithCapacity(n, 3*n)
	for v := 0; v < n; v++ {
		for _, w := range tb.nbrs[v] {
			if v < w && (keep == nil || keep(v, w)) {
				g.MustAddEdge(v, w)
			}
		}
	}
	// Stream the kept rotation into a flat vertex-major dart array.
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	darts := make([]int32, 0, 2*g.M())
	for v := 0; v < n; v++ {
		for _, w := range tb.nbrs[v] {
			if keep == nil || keep(min(v, w), max(v, w)) {
				id, ok := g.EdgeID(v, w)
				if !ok {
					return nil, fmt.Errorf("gen: %s lost edge {%d,%d}", name, v, w)
				}
				darts = append(darts, int32(planar.DartFrom(g, id, v)))
			}
		}
	}
	emb, err := planar.NewEmbeddingFlat(g, off, darts)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, fmt.Errorf("gen: %s embedding invalid: %w", name, err)
	}
	// The outer face is left of dart 1->0 (the initial triangle is kept by
	// every keep filter used here).
	id, ok := g.EdgeID(0, 1)
	if !ok {
		return nil, fmt.Errorf("gen: %s deleted an outer-triangle edge", name)
	}
	return &Instance{
		Name:      name,
		G:         g,
		Emb:       emb,
		OuterDart: planar.DartFrom(g, id, 1),
	}, nil
}

// StackedTriangulation returns a random stacked (Apollonian) planar
// triangulation with n vertices: every inner face is a triangle, the outer
// face is the initial triangle 0,1,2. Requires n >= 3. Deterministic in
// seed.
func StackedTriangulation(n int, seed int64) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: triangulation needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := newTriBuilder()
	for len(tb.nbrs) < n {
		tb.stack(rng.Intn(len(tb.faces)))
	}
	return tb.build(fmt.Sprintf("stacked-%d", n), nil)
}

// SparsePlanar returns a random connected planar graph obtained from a
// stacked triangulation by deleting each non-essential edge with probability
// dropProb. Edges of a spanning tree and of the outer triangle are always
// kept, so the graph stays connected and the outer face designation remains
// valid. Requires n >= 3 and 0 <= dropProb <= 1.
func SparsePlanar(n int, dropProb float64, seed int64) (*Instance, error) {
	if dropProb < 0 || dropProb > 1 {
		return nil, fmt.Errorf("gen: dropProb %v out of [0,1]", dropProb)
	}
	if n < 3 {
		return nil, fmt.Errorf("gen: sparse planar needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := newTriBuilder()
	for len(tb.nbrs) < n {
		tb.stack(rng.Intn(len(tb.faces)))
	}
	// Spanning tree edges via union-find over the full triangulation,
	// scanning edges in a shuffled order for variety.
	type edge struct{ u, v int }
	var all []edge
	for v := 0; v < n; v++ {
		for _, w := range tb.nbrs[v] {
			if v < w {
				all = append(all, edge{v, w})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	uf := graph.NewUnionFind(n)
	kept := make(map[edge]bool, len(all))
	kept[edge{0, 1}] = true
	kept[edge{1, 2}] = true
	kept[edge{0, 2}] = true
	uf.Union(0, 1)
	uf.Union(1, 2)
	for _, e := range all {
		if uf.Union(e.u, e.v) {
			kept[e] = true
		}
	}
	for _, e := range all {
		if !kept[e] && rng.Float64() >= dropProb {
			kept[e] = true
		}
	}
	return tb.build(fmt.Sprintf("sparse-%d-p%.2f", n, dropProb),
		func(u, v int) bool { return kept[edge{u, v}] })
}

// PolygonTriangulation returns a random triangulation of a convex n-gon
// (an outerplanar maximal graph): cycle 0..n-1 plus n-3 non-crossing
// diagonals chosen by recursive random splitting. Requires n >= 3.
func PolygonTriangulation(n int, seed int64) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: polygon needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	xs, ys := polygonCoords(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	// Triangulate the fan of indices i..j (vertices in ccw convex position).
	var split func(i, j int)
	split = func(i, j int) {
		if j-i < 2 {
			return
		}
		k := i + 1 + rng.Intn(j-i-1)
		if k-i >= 2 {
			g.MustAddEdge(i, k)
		}
		if j-k >= 2 {
			g.MustAddEdge(k, j)
		}
		split(i, k)
		split(k, j)
	}
	split(0, n-1)
	emb, err := embedFromCoords(g, xs, ys)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("polygon-%d", n),
		G:         g,
		Emb:       emb,
		OuterDart: outerDartFromCoords(g, emb, xs, ys),
	}, nil
}

// RandomTree returns a random tree on n vertices: vertex v >= 1 attaches to
// a uniformly random earlier vertex. Trees are planar with any rotation
// system; children are embedded in attachment order. Requires n >= 1.
func RandomTree(n int, seed int64) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: tree needs n >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return treeInstance(fmt.Sprintf("randtree-%d", n), parent)
}

// PathTree returns the path 0-1-...-(n-1) as a tree instance (maximum-depth
// spanning structure; diameter n-1).
func PathTree(n int) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: path needs n >= 1, got %d", n)
	}
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return treeInstance(fmt.Sprintf("path-%d", n), parent)
}

// Caterpillar returns a caterpillar tree: a spine of length n/2 with a leg
// hanging off each spine vertex.
func Caterpillar(n int) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: caterpillar needs n >= 2, got %d", n)
	}
	parent := make([]int, n)
	parent[0] = -1
	spine := (n + 1) / 2
	for v := 1; v < spine; v++ {
		parent[v] = v - 1
	}
	for v := spine; v < n; v++ {
		parent[v] = v - spine
	}
	return treeInstance(fmt.Sprintf("caterpillar-%d", n), parent)
}

func treeInstance(name string, parent []int) (*Instance, error) {
	n := len(parent)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			g.MustAddEdge(v, parent[v])
		}
	}
	// Trees embed neighbours in incident-edge order; emit the darts flat.
	off := make([]int32, n+1)
	darts := make([]int32, 0, 2*g.M())
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(v))
		for _, id := range g.IncidentEdges(v) {
			u, _ := g.EndpointsOf(int(id))
			d := 2 * id
			if u != int32(v) {
				d++
			}
			darts = append(darts, d)
		}
	}
	emb, err := planar.NewEmbeddingFlat(g, off, darts)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, fmt.Errorf("gen: tree embedding invalid: %w", err)
	}
	outer := 0
	if n > 1 {
		outer = emb.FirstDart(0)
	}
	return &Instance{Name: name, G: g, Emb: emb, OuterDart: outer}, nil
}
