package gen

import (
	"encoding/binary"
	"fmt"
	"math"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// DecodeCanonical parses the CanonicalBytes encoding back into an
// instance. It is the inverse of the encoder on valid input and a total
// function on arbitrary bytes: any malformed, truncated, or mutated
// buffer returns an error — never a panic and never an unbounded
// allocation. The decoder is deliberately hardened against allocation
// bombs: the claimed vertex and edge counts are bounded by the bytes
// actually present (every vertex costs at least one byte of rotation
// length, every edge at least two bytes of endpoints) and by the planar
// edge bound m <= 3n-6, so a short hostile buffer cannot demand a huge
// graph. Structural validity (simple edges, rotations that permute the
// neighbour sets, outer dart in range, no trailing bytes) is enforced;
// semantic planarity of the rotation system is not — that is the guard's
// job (internal/guard), matching the Wire decode path.
//
// The round-trip contract the fuzz harness pins: whenever DecodeCanonical
// accepts, CanonicalBytes of the result reproduces the input buffer
// byte-for-byte (the instance Name is not part of the encoding).
func DecodeCanonical(data []byte) (*Instance, error) {
	if len(data) < len(canonicalMagic) || string(data[:len(canonicalMagic)]) != canonicalMagic {
		return nil, fmt.Errorf("gen: canonical: bad magic")
	}
	rest := data[len(canonicalMagic):]
	off := 0
	var scratch [binary.MaxVarintLen64]byte
	next := func(what string) (int, error) {
		v, k := binary.Uvarint(rest[off:])
		if k <= 0 {
			return 0, fmt.Errorf("gen: canonical: truncated or overlong %s at byte %d", what, off)
		}
		// Reject non-minimal varints: the round-trip contract demands the
		// re-encoding reproduce the input byte-for-byte.
		if binary.PutUvarint(scratch[:], v) != k {
			return 0, fmt.Errorf("gen: canonical: non-minimal varint %s at byte %d", what, off)
		}
		if v > math.MaxInt32 {
			return 0, fmt.Errorf("gen: canonical: %s %d exceeds the int32 substrate", what, v)
		}
		off += k
		return int(v), nil
	}

	n, err := next("vertex count")
	if err != nil {
		return nil, err
	}
	m, err := next("edge count")
	if err != nil {
		return nil, err
	}
	// Allocation bounds: the remaining bytes must plausibly hold the
	// claimed structure before anything is allocated for it.
	if n > len(rest)-off {
		return nil, fmt.Errorf("gen: canonical: vertex count %d exceeds the %d remaining bytes", n, len(rest)-off)
	}
	if 2*m > len(rest)-off {
		return nil, fmt.Errorf("gen: canonical: edge count %d exceeds the %d remaining bytes", m, len(rest)-off)
	}
	switch {
	case n >= 3 && m > 3*n-6:
		return nil, fmt.Errorf("gen: canonical: %d edges on %d vertices exceeds the planar bound %d", m, n, 3*n-6)
	case n < 3 && m > 1:
		return nil, fmt.Errorf("gen: canonical: %d edges on %d vertices exceeds the planar bound 1", m, n)
	}

	g := graph.New(n)
	for e := 0; e < m; e++ {
		u, err := next("edge endpoint")
		if err != nil {
			return nil, err
		}
		v, err := next("edge endpoint")
		if err != nil {
			return nil, err
		}
		// The encoder emits normalized endpoints (u < v, the graph
		// substrate's storage order); anything else cannot round-trip.
		if u >= v {
			return nil, fmt.Errorf("gen: canonical: edge %d {%d,%d} is not in canonical orientation", e, u, v)
		}
		if _, err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("gen: canonical: edge %d: %w", e, err)
		}
	}
	rot := make([][]int, n)
	for v := 0; v < n; v++ {
		deg, err := next("rotation length")
		if err != nil {
			return nil, err
		}
		if deg != g.Degree(v) {
			return nil, fmt.Errorf("gen: canonical: vertex %d claims rotation length %d, degree is %d", v, deg, g.Degree(v))
		}
		rot[v] = make([]int, deg)
		for i := range rot[v] {
			w, err := next("rotation entry")
			if err != nil {
				return nil, err
			}
			rot[v][i] = w
		}
	}
	outer, err := next("outer dart")
	if err != nil {
		return nil, err
	}
	if off != len(rest) {
		return nil, fmt.Errorf("gen: canonical: %d trailing bytes", len(rest)-off)
	}
	if m > 0 && outer >= 2*m {
		return nil, fmt.Errorf("gen: canonical: outer dart %d out of range [0,%d)", outer, 2*m)
	}
	if m == 0 && outer != 0 {
		return nil, fmt.Errorf("gen: canonical: outer dart %d nonzero on an edgeless graph", outer)
	}
	emb, err := planar.FromNeighborOrders(g, rot)
	if err != nil {
		return nil, fmt.Errorf("gen: canonical: %w", err)
	}
	return &Instance{G: g, Emb: emb, OuterDart: outer}, nil
}
