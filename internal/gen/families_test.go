package gen

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// exactFamilies are the families whose size contract is |V| == n exactly
// (ByName documents grid and cylinderish as the only rounded ones).
var exactFamilies = map[string]bool{
	"stacked": true, "sparse": true, "polygon": true, "cycle": true,
	"wheel": true, "fan": true, "tree": true, "path": true,
	"caterpillar": true,
}

// byNameNoPanic calls ByName and converts any panic into a test failure
// with the offending family and size.
func byNameNoPanic(t *testing.T, family string, n int) (inst *Instance, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ByName(%q, %d, 1) panicked: %v", family, n, r)
		}
	}()
	return ByName(family, n, 1)
}

// TestFamiliesSmallN sweeps every family over tiny sizes: each call must
// either return a clean "gen:"-prefixed error naming the requested n, or an
// instance whose size satisfies the documented contract. Nothing may panic.
func TestFamiliesSmallN(t *testing.T) {
	for _, fam := range Families {
		for n := 0; n <= 8; n++ {
			inst, err := byNameNoPanic(t, fam, n)
			if err != nil {
				if !strings.HasPrefix(err.Error(), "gen: ") {
					t.Errorf("%s/%d: error %q lacks the gen: prefix", fam, n, err)
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("%d", n)) {
					t.Errorf("%s/%d: error %q does not mention the requested size", fam, n, err)
				}
				continue
			}
			got := inst.G.N()
			if exactFamilies[fam] {
				if got != n {
					t.Errorf("%s/%d: |V| = %d, want exactly n", fam, n, got)
				}
				continue
			}
			// grid and cylinderish round to a w×h lattice; the contract is
			// |V| within one row of n, and no row is wider than ~2√n.
			row := int(math.Ceil(math.Sqrt(float64(n)*4))) + 1
			if diff := got - n; diff < -row || diff > row {
				t.Errorf("%s/%d: |V| = %d, off by more than one row (%d)", fam, n, got, row)
			}
		}
	}
}

// TestFamilyGoldenSizes pins exact instance sizes for the two rounded
// families at representative n, so that the rounding rules cannot drift
// silently (the cylinderish two-row fallback in particular).
func TestFamilyGoldenSizes(t *testing.T) {
	golden := []struct {
		family string
		n      int
		want   int
	}{
		{"wheel", 4, 4},
		{"wheel", 10, 10},
		{"wheel", 101, 101},
		{"cylinderish", 4, 4},
		{"cylinderish", 10, 12},
		{"cylinderish", 100, 100},
		{"cylinderish", 1000, 1008},
		{"grid", 10, 9},
		{"grid", 100, 100},
	}
	for _, tc := range golden {
		inst, err := ByName(tc.family, tc.n, 7)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.family, tc.n, err)
		}
		if got := inst.G.N(); got != tc.want {
			t.Errorf("%s/%d: |V| = %d, want %d", tc.family, tc.n, got, tc.want)
		}
	}
}

// TestWheelErrorMentionsRequestedN regression-tests the ByName wheel guard:
// the error must be phrased in the caller's n, not the internal rim size.
func TestWheelErrorMentionsRequestedN(t *testing.T) {
	_, err := ByName("wheel", 3, 0)
	if err == nil {
		t.Fatal("wheel with n=3 should fail (rim would have 2 vertices)")
	}
	want := "gen: wheel family needs n >= 4, got 3"
	if err.Error() != want {
		t.Fatalf("wheel error = %q, want %q", err, want)
	}
}
