package gen

import (
	"bytes"
	"testing"
)

// seedInstances returns a deterministic spread of family instances whose
// encodings seed the fuzz corpus and anchor the round-trip tests.
func seedInstances(tb testing.TB) []*Instance {
	tb.Helper()
	var out []*Instance
	for _, fam := range []string{"grid", "wheel", "polygon", "tree", "path", "stacked"} {
		for _, n := range []int{1, 2, 5, 12} {
			in, err := ByName(fam, n, 7)
			if err != nil {
				continue // family rejects this n: not a corpus gap
			}
			out = append(out, in)
		}
	}
	if len(out) == 0 {
		tb.Fatal("no seed instances generated")
	}
	return out
}

// TestDecodeCanonicalRoundTrip pins the inverse property on valid input:
// decode(encode(in)) re-encodes byte-identically and preserves the graph.
func TestDecodeCanonicalRoundTrip(t *testing.T) {
	for _, in := range seedInstances(t) {
		enc := CanonicalBytes(in)
		dec, err := DecodeCanonical(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", in.Name, err)
		}
		if dec.G.N() != in.G.N() || dec.G.M() != in.G.M() || dec.OuterDart != in.OuterDart {
			t.Fatalf("%s: decoded shape n=%d m=%d outer=%d, want n=%d m=%d outer=%d",
				in.Name, dec.G.N(), dec.G.M(), dec.OuterDart, in.G.N(), in.G.M(), in.OuterDart)
		}
		re := CanonicalBytes(dec)
		if !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encoding differs from original (%d vs %d bytes)", in.Name, len(re), len(enc))
		}
	}
}

// TestDecodeCanonicalRejects pins the error (never panic) behaviour on a
// table of hostile buffers, including the allocation-bomb shapes the
// decoder is hardened against.
func TestDecodeCanonicalRejects(t *testing.T) {
	valid := CanonicalBytes(seedInstances(t)[0])
	cases := map[string][]byte{
		"empty":           nil,
		"short magic":     []byte("planardfs"),
		"wrong magic":     []byte("planardfs/graph/v2\n\x01\x00\x00"),
		"magic only":      []byte(canonicalMagic),
		"truncated":       valid[:len(valid)-1],
		"trailing bytes":  append(append([]byte(nil), valid...), 0),
		"huge n":          append([]byte(canonicalMagic), 0xff, 0xff, 0xff, 0xff, 0x7f),
		"alloc bomb":      append([]byte(canonicalMagic), 0xe8, 0x07, 0xe8, 0x07), // n=1000, m=1000 in 0 further bytes
		"overlong varint": append([]byte(canonicalMagic), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01),
	}
	for name, data := range cases {
		if _, err := DecodeCanonical(data); err == nil {
			t.Errorf("%s: decode accepted a malformed buffer", name)
		}
	}
}

// FuzzDecodeCanonical is the decoder's no-panic/round-trip harness: for
// arbitrary bytes the decoder must either reject with an error or accept
// with an instance whose re-encoding reproduces the input byte-for-byte.
// CI runs a -fuzztime 30s smoke of this on every push.
func FuzzDecodeCanonical(f *testing.F) {
	for _, in := range seedInstances(f) {
		f.Add(CanonicalBytes(in))
	}
	f.Add([]byte(canonicalMagic))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeCanonical(data)
		if err != nil {
			if in != nil {
				t.Fatal("non-nil instance alongside an error")
			}
			return
		}
		re := CanonicalBytes(in)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input does not round-trip: %d in, %d out", len(data), len(re))
		}
	})
}
