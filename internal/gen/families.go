package gen

import (
	"fmt"
	"math"
)

// Families lists the generator names accepted by ByName.
var Families = []string{
	"grid", "cylinderish", "stacked", "sparse", "polygon", "cycle",
	"wheel", "fan", "tree", "path", "caterpillar",
}

// ByName builds an instance of roughly n vertices from the named family,
// deterministically in seed (seed is ignored by deterministic families).
//
// Size contract: every family either returns a clean error mentioning the
// requested n, or an instance with |V| within one grid row of n (exactly n
// for the non-grid families except grid itself, whose side is rounded).
func ByName(family string, n int, seed int64) (*Instance, error) {
	switch family {
	case "grid":
		if n < 4 {
			return nil, fmt.Errorf("gen: grid family needs n >= 4, got %d", n)
		}
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Grid(side, side)
	case "cylinderish":
		// A wide, shallow grid: large n with small-ish diameter spread.
		if n < 4 {
			return nil, fmt.Errorf("gen: cylinderish family needs n >= 4, got %d", n)
		}
		w := int(math.Round(math.Sqrt(float64(n) * 4)))
		if w < 2 {
			w = 2
		}
		h := int(math.Round(float64(n) / float64(w)))
		if h < 2 {
			// Too few vertices for the wide aspect: fall back to two rows
			// sized so that |V| = 2w stays within one row of n.
			h = 2
			w = int(math.Round(float64(n) / 2))
			if w < 2 {
				w = 2
			}
		}
		return Grid(w, h)
	case "stacked":
		return StackedTriangulation(n, seed)
	case "sparse":
		return SparsePlanar(n, 0.6, seed)
	case "polygon":
		return PolygonTriangulation(n, seed)
	case "cycle":
		return Cycle(n)
	case "wheel":
		// The rim has n-1 vertices plus the hub, so the total is the
		// requested n; report size errors in terms of n, not the rim.
		if n < 4 {
			return nil, fmt.Errorf("gen: wheel family needs n >= 4, got %d", n)
		}
		return Wheel(n - 1)
	case "fan":
		return Fan(n)
	case "tree":
		return RandomTree(n, seed)
	case "path":
		return PathTree(n)
	case "caterpillar":
		return Caterpillar(n)
	}
	return nil, fmt.Errorf("gen: unknown family %q (know %v)", family, Families)
}
