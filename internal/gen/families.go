package gen

import (
	"fmt"
	"math"
)

// Families lists the generator names accepted by ByName.
var Families = []string{
	"grid", "cylinderish", "stacked", "sparse", "polygon", "cycle",
	"wheel", "fan", "tree", "path", "caterpillar",
}

// ByName builds an instance of roughly n vertices from the named family,
// deterministically in seed (seed is ignored by deterministic families).
func ByName(family string, n int, seed int64) (*Instance, error) {
	switch family {
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Grid(side, side)
	case "cylinderish":
		// A wide, shallow grid: large n with small-ish diameter spread.
		w := int(math.Round(math.Sqrt(float64(n) * 4)))
		if w < 2 {
			w = 2
		}
		h := n / w
		if h < 2 {
			h = 2
		}
		return Grid(w, h)
	case "stacked":
		return StackedTriangulation(n, seed)
	case "sparse":
		return SparsePlanar(n, 0.6, seed)
	case "polygon":
		return PolygonTriangulation(n, seed)
	case "cycle":
		return Cycle(n)
	case "wheel":
		return Wheel(n - 1)
	case "fan":
		return Fan(n)
	case "tree":
		return RandomTree(n, seed)
	case "path":
		return PathTree(n)
	case "caterpillar":
		return Caterpillar(n)
	}
	return nil, fmt.Errorf("gen: unknown family %q (know %v)", family, Families)
}
