package gen

import (
	"encoding/json"
	"fmt"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// instanceJSON is the on-disk format of an embedded planar graph.
type instanceJSON struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Edges lists vertex pairs; edge IDs are list positions.
	Edges [][2]int `json:"edges"`
	// Rotations lists, per vertex, the clockwise neighbour order.
	Rotations [][]int `json:"rotations"`
	OuterDart int     `json:"outerDart"`
}

// EncodeJSON serializes an instance (graph, embedding, outer face).
func EncodeJSON(in *Instance) ([]byte, error) {
	ij := instanceJSON{
		Name:      in.Name,
		N:         in.G.N(),
		Edges:     make([][2]int, in.G.M()),
		Rotations: make([][]int, in.G.N()),
		OuterDart: in.OuterDart,
	}
	for e := 0; e < in.G.M(); e++ {
		ed := in.G.EdgeByID(e)
		ij.Edges[e] = [2]int{ed.U, ed.V}
	}
	for v := 0; v < in.G.N(); v++ {
		ij.Rotations[v] = in.Emb.NeighborOrder(v)
	}
	return json.MarshalIndent(ij, "", " ")
}

// DecodeJSON parses an instance and validates the embedding.
func DecodeJSON(data []byte) (*Instance, error) {
	var ij instanceJSON
	if err := json.Unmarshal(data, &ij); err != nil {
		return nil, fmt.Errorf("gen: decode: %w", err)
	}
	g := graph.New(ij.N)
	for i, e := range ij.Edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("gen: edge %d: %w", i, err)
		}
	}
	emb, err := planar.FromNeighborOrders(g, ij.Rotations)
	if err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}
	if g.M() > 0 && (ij.OuterDart < 0 || ij.OuterDart >= 2*g.M()) {
		return nil, fmt.Errorf("gen: outer dart %d out of range", ij.OuterDart)
	}
	return &Instance{Name: ij.Name, G: g, Emb: emb, OuterDart: ij.OuterDart}, nil
}
