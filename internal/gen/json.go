package gen

import (
	"encoding/json"
	"fmt"

	"planardfs/internal/graph"
	"planardfs/internal/planar"
)

// Wire is the on-disk/on-the-wire format of an embedded planar graph —
// the untrusted shape a submission arrives in. Decoding, field-level
// checking, and building the in-memory Instance are deliberately separate
// steps (DecodeWire, Check, Build) so an HTTP admission path can reject a
// malformed body with a field-level error before any graph structure is
// allocated, and so the semantic guard can rule on a structurally
// well-formed wire without the decoder silently pre-judging planarity.
type Wire struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Edges lists vertex pairs; edge IDs are list positions.
	Edges [][2]int `json:"edges"`
	// Rotations lists, per vertex, the clockwise neighbour order.
	Rotations [][]int `json:"rotations"`
	OuterDart int     `json:"outerDart"`
}

// FieldError locates a malformed field of a wire instance. Index is the
// offending list position (-1 when the whole field is at fault).
type FieldError struct {
	Field string
	Index int
	Msg   string
}

// Error implements error.
func (e *FieldError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("gen: field %s[%d]: %s", e.Field, e.Index, e.Msg)
	}
	return fmt.Sprintf("gen: field %s: %s", e.Field, e.Msg)
}

func fieldErr(field string, index int, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Index: index, Msg: fmt.Sprintf(format, args...)}
}

// DecodeWire parses the JSON form without validating anything beyond JSON
// syntax.
func DecodeWire(data []byte) (*Wire, error) {
	var w Wire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("gen: decode: %w", err)
	}
	return &w, nil
}

// Check applies the structural admission checks a wire instance must pass
// before any graph is built: vertex count bounds, edge endpoints in range,
// no self-loops or duplicate edges, the planar edge-count bound m <= 3n-6,
// per-vertex rotation well-formedness (a permutation of the neighbour set
// implied by the edge list), and the outer dart range. Every violation is
// reported as a *FieldError naming the field and index. Check does NOT
// judge whether the rotation system is a genus-0 embedding — that is the
// semantic guard's job (internal/guard), not the decoder's.
func (w *Wire) Check() error {
	if w.N < 1 {
		return fieldErr("n", -1, "need at least 1 vertex, got %d", w.N)
	}
	m := len(w.Edges)
	if w.N >= 3 && m > 3*w.N-6 {
		return fieldErr("edges", -1, "%d edges on %d vertices exceeds the planar bound %d", m, w.N, 3*w.N-6)
	}
	if w.N < 3 && m > 1 {
		return fieldErr("edges", -1, "%d edges on %d vertices exceeds the planar bound 1", m, w.N)
	}
	seen := make(map[[2]int]bool, m)
	adj := make([]map[int]bool, w.N)
	for i, e := range w.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= w.N || v < 0 || v >= w.N {
			return fieldErr("edges", i, "endpoint out of range [0,%d): {%d,%d}", w.N, u, v)
		}
		if u == v {
			return fieldErr("edges", i, "self-loop at %d", u)
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return fieldErr("edges", i, "duplicate edge {%d,%d}", u, v)
		}
		seen[[2]int{a, b}] = true
		if adj[u] == nil {
			adj[u] = make(map[int]bool, 4)
		}
		if adj[v] == nil {
			adj[v] = make(map[int]bool, 4)
		}
		adj[u][v] = true
		adj[v][u] = true
	}
	if len(w.Rotations) != w.N {
		return fieldErr("rotations", -1, "%d rows for %d vertices", len(w.Rotations), w.N)
	}
	for v, rot := range w.Rotations {
		deg := len(adj[v])
		if len(rot) != deg {
			return fieldErr("rotations", v, "%d entries for degree %d", len(rot), deg)
		}
		dup := make(map[int]bool, deg)
		for _, x := range rot {
			if x < 0 || x >= w.N || !adj[v][x] {
				return fieldErr("rotations", v, "entry %d is not a neighbour of %d", x, v)
			}
			if dup[x] {
				return fieldErr("rotations", v, "neighbour %d listed twice", x)
			}
			dup[x] = true
		}
	}
	if m > 0 && (w.OuterDart < 0 || w.OuterDart >= 2*m) {
		return fieldErr("outerDart", -1, "%d out of range [0,%d)", w.OuterDart, 2*m)
	}
	if m == 0 && w.OuterDart != 0 {
		return fieldErr("outerDart", -1, "%d nonzero on an edgeless graph", w.OuterDart)
	}
	return nil
}

// Build constructs the in-memory instance from a wire that passed Check.
// It validates only what the constructors enforce (edge sanity, rotation
// permutations) — NOT the genus: a structurally well-formed rotation
// system of any genus builds, so the semantic guard can rule on it.
func (w *Wire) Build() (*Instance, error) {
	if w.N < 0 {
		return nil, fieldErr("n", -1, "negative vertex count %d", w.N)
	}
	g := graph.New(w.N)
	for i, e := range w.Edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("gen: edge %d: %w", i, err)
		}
	}
	emb, err := planar.FromNeighborOrders(g, w.Rotations)
	if err != nil {
		return nil, err
	}
	if g.M() > 0 && (w.OuterDart < 0 || w.OuterDart >= 2*g.M()) {
		return nil, fmt.Errorf("gen: outer dart %d out of range", w.OuterDart)
	}
	return &Instance{Name: w.Name, G: g, Emb: emb, OuterDart: w.OuterDart}, nil
}

// WireOf returns the wire form of an instance — the shape the corruption
// primitives mutate and the encoders serialize.
func WireOf(in *Instance) *Wire {
	w := &Wire{
		Name:      in.Name,
		N:         in.G.N(),
		Edges:     make([][2]int, in.G.M()),
		Rotations: make([][]int, in.G.N()),
		OuterDart: in.OuterDart,
	}
	for e := 0; e < in.G.M(); e++ {
		ed := in.G.EdgeByID(e)
		w.Edges[e] = [2]int{ed.U, ed.V}
	}
	for v := 0; v < in.G.N(); v++ {
		w.Rotations[v] = in.Emb.NeighborOrder(v)
	}
	return w
}

// EncodeJSON serializes an instance (graph, embedding, outer face).
func EncodeJSON(in *Instance) ([]byte, error) {
	return json.MarshalIndent(WireOf(in), "", " ")
}

// DecodeJSON parses an instance and validates the embedding, including
// the genus (the trusted-path decoder: generator fixtures and caches).
// Untrusted submissions should go through DecodeWire/Check/Build and the
// guard instead, which reject with typed field/witness errors.
func DecodeJSON(data []byte) (*Instance, error) {
	w, err := DecodeWire(data)
	if err != nil {
		return nil, err
	}
	in, err := w.Build()
	if err != nil {
		return nil, err
	}
	if err := in.Emb.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
