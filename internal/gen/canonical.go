package gen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Canonical content addressing of embedded planar instances.
//
// CanonicalBytes is the byte-level identity of an instance: two instances
// with the same vertex count, the same edge list (in edge-ID order), the
// same rotation system and the same outer dart encode to byte-identical
// buffers, regardless of the cosmetic Name and regardless of how the
// instance was produced. Since every generator is deterministic in
// (family, n, seed), a repeated generator job re-derives the same bytes
// and therefore the same ContentHash — the property the serve layer's
// content-addressed decomposition cache keys on.
//
// The encoding is hand-rolled field by field (a fixed header, then uvarint
// fields in a fixed order) precisely so that nothing about it can drift
// with Go struct layout, JSON field order, or map iteration order; the
// golden-hash regression test in canonical_test.go pins the format.

// canonicalMagic versions the encoding. Bump only with a format change;
// bumping invalidates every content-addressed cache key.
const canonicalMagic = "planardfs/graph/v1\n"

// CanonicalBytes returns the canonical encoding of the instance:
//
//	magic | n | m | edges[0..m) as (u,v) in edge-ID order |
//	per vertex: rotation length, then neighbour vertices in clockwise
//	rotation order | outerDart
//
// all integers as unsigned varints. The instance Name is deliberately
// excluded: it is presentation metadata, not graph identity.
func CanonicalBytes(in *Instance) []byte {
	g := in.G
	buf := make([]byte, 0, len(canonicalMagic)+10*(g.N()+3*g.M())+16)
	buf = append(buf, canonicalMagic...)
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	for e := 0; e < g.M(); e++ {
		u, v := g.EndpointsOf(e)
		buf = binary.AppendUvarint(buf, uint64(u))
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	// Rotations are walked directly off the flat embedding arrays; the byte
	// stream is identical to encoding NeighborOrder(v) per vertex.
	for v := 0; v < g.N(); v++ {
		buf = binary.AppendUvarint(buf, uint64(g.Degree(v)))
		d0 := in.Emb.FirstDart(v)
		if d0 < 0 {
			continue
		}
		for d := d0; ; {
			buf = binary.AppendUvarint(buf, uint64(in.Emb.HeadOf(d)))
			d = in.Emb.NextCW(d)
			if d == d0 {
				break
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(in.OuterDart))
	return buf
}

// ContentHash returns the lowercase hex SHA-256 of CanonicalBytes — the
// content-addressed identity of the instance.
func ContentHash(in *Instance) string {
	sum := sha256.Sum256(CanonicalBytes(in))
	return hex.EncodeToString(sum[:])
}
