package gen

import (
	"bytes"
	"testing"
)

// Golden content hashes. These pin the canonical encoding format: a change
// to field order, varint width, header, or generator determinism shows up
// here as a hash mismatch. Do not update the constants without bumping
// canonicalMagic — every content-addressed cache key derives from them.
var goldenHashes = []struct {
	family string
	n      int
	seed   int64
	hash   string
}{
	{"grid", 9, 0, "e0ca8459e125bdb4b0fce29eb23240f1a2c7cc09cbf2b7e231e8768cbdd0af55"},
	{"wheel", 8, 0, "e078823aa61fd60b27bc30434e80d422656679593b2474ebf09c7f46a00c6fe9"},
	{"stacked", 30, 7, "9bef1e286b7c874dadee5edb94a5442935605950153a72a07bb40d70ee9bfa95"},
	{"sparse", 25, 3, "1c450d01351e483e3ad6b07c47da567421f79dc03dd0d9b0a46075feacaff9b3"},
}

func TestContentHashGolden(t *testing.T) {
	for _, g := range goldenHashes {
		in, err := ByName(g.family, g.n, g.seed)
		if err != nil {
			t.Fatalf("%s: %v", g.family, err)
		}
		if got := ContentHash(in); got != g.hash {
			t.Errorf("%s n=%d seed=%d: hash drifted\n got  %s\n want %s\n(the canonical encoding or a generator changed; see canonicalMagic)",
				g.family, g.n, g.seed, got, g.hash)
		}
	}
}

func TestCanonicalBytesDeterministic(t *testing.T) {
	// Same family+seed twice: byte-identical encodings, and re-encoding the
	// same instance is stable too.
	a, err := ByName("stacked", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("stacked", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(CanonicalBytes(a), CanonicalBytes(b)) {
		t.Fatal("same (family,n,seed) produced different canonical encodings")
	}
	if !bytes.Equal(CanonicalBytes(a), CanonicalBytes(a)) {
		t.Fatal("re-encoding the same instance is not stable")
	}
}

func TestContentHashDiscriminates(t *testing.T) {
	a, err := ByName("stacked", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("stacked", 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ContentHash(a) == ContentHash(b) {
		t.Fatal("different seeds hashed equal")
	}
	// The cosmetic name must not affect identity.
	c := *a
	c.Name = "renamed"
	if ContentHash(a) != ContentHash(&c) {
		t.Fatal("instance name leaked into the content hash")
	}
}

func TestContentHashRoundTripsJSON(t *testing.T) {
	// An instance decoded from its JSON serialization is the same content.
	a, err := ByName("sparse", 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if ContentHash(a) != ContentHash(b) {
		t.Fatal("JSON round trip changed the content hash")
	}
}
