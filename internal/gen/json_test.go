package gen

import (
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, mk := range []func() (*Instance, error){
		func() (*Instance, error) { return Grid(4, 5) },
		func() (*Instance, error) { return StackedTriangulation(30, 2) },
		func() (*Instance, error) { return SparsePlanar(25, 0.5, 3) },
		func() (*Instance, error) { return RandomTree(12, 4) },
	} {
		in, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeJSON(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if out.G.N() != in.G.N() || out.G.M() != in.G.M() || out.OuterDart != in.OuterDart {
			t.Fatalf("%s: shape mismatch", in.Name)
		}
		for e := 0; e < in.G.M(); e++ {
			if in.G.EdgeByID(e) != out.G.EdgeByID(e) {
				t.Fatalf("%s: edge %d mismatch", in.Name, e)
			}
		}
		for v := 0; v < in.G.N(); v++ {
			a, b := in.Emb.NeighborOrder(v), out.Emb.NeighborOrder(v)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: rotation of %d differs", in.Name, v)
				}
			}
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Self-loop edge.
	if _, err := DecodeJSON([]byte(`{"n":2,"edges":[[0,0]],"rotations":[[],[]],"outerDart":0}`)); err == nil {
		t.Fatal("self-loop accepted")
	}
	// Bad rotation (non-planar would also be caught; here wrong length).
	if _, err := DecodeJSON([]byte(`{"n":2,"edges":[[0,1]],"rotations":[[1,1],[0]],"outerDart":0}`)); err == nil {
		t.Fatal("bad rotation accepted")
	}
	// Outer dart out of range.
	if _, err := DecodeJSON([]byte(`{"n":2,"edges":[[0,1]],"rotations":[[1],[0]],"outerDart":9}`)); err == nil {
		t.Fatal("bad outer dart accepted")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%60
		in, err := StackedTriangulation(n, seed)
		if err != nil {
			return false
		}
		data, err := EncodeJSON(in)
		if err != nil {
			return false
		}
		out, err := DecodeJSON(data)
		if err != nil {
			return false
		}
		return out.Emb.Validate() == nil && out.G.M() == in.G.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, fam := range Families {
		in, err := ByName(fam, 30, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !in.G.Connected() || in.Emb.Validate() != nil {
			t.Fatalf("%s: invalid instance", fam)
		}
	}
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}
