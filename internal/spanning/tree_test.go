package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/graph"
)

// sampleTree builds the tree
//
//	     0
//	   / | \
//	  1  2  3
//	 / \     \
//	4   5     6
//	        / | \
//	       7  8  9
func sampleTree(t *testing.T) *Tree {
	t.Helper()
	parent := []int{-1, 0, 0, 0, 1, 1, 3, 6, 6, 6}
	tr, err := NewFromParents(0, parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewFromParentsValidation(t *testing.T) {
	if _, err := NewFromParents(5, []int{-1, 0}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := NewFromParents(0, []int{3, 0}); err == nil {
		t.Fatal("root with parent accepted")
	}
	if _, err := NewFromParents(0, []int{-1, 1}); err == nil {
		t.Fatal("self-parent accepted")
	}
	if _, err := NewFromParents(0, []int{-1, 2, 1}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestDepthsAndSizes(t *testing.T) {
	tr := sampleTree(t)
	wantDepth := []int{0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	wantSize := []int{10, 3, 1, 5, 1, 1, 4, 1, 1, 1}
	for v := range wantDepth {
		if tr.Depth[v] != wantDepth[v] {
			t.Errorf("Depth[%d] = %d, want %d", v, tr.Depth[v], wantDepth[v])
		}
		if tr.SubtreeSize(v) != wantSize[v] {
			t.Errorf("Size[%d] = %d, want %d", v, tr.SubtreeSize(v), wantSize[v])
		}
	}
	if tr.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
}

func TestIsAncestor(t *testing.T) {
	tr := sampleTree(t)
	cases := []struct {
		a, v int
		want bool
	}{
		{0, 9, true}, {3, 7, true}, {6, 6, true}, {1, 6, false},
		{7, 6, false}, {4, 5, false}, {0, 0, true},
	}
	for _, c := range cases {
		if got := tr.IsAncestor(c.a, c.v); got != c.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", c.a, c.v, got, c.want)
		}
	}
}

func TestLCAAndPaths(t *testing.T) {
	tr := sampleTree(t)
	cases := []struct{ u, v, w int }{
		{4, 5, 1}, {4, 9, 0}, {7, 9, 6}, {6, 9, 6}, {2, 2, 2}, {0, 8, 0},
	}
	for _, c := range cases {
		if got := tr.LCA(c.u, c.v); got != c.w {
			t.Errorf("LCA(%d,%d) = %d, want %d", c.u, c.v, got, c.w)
		}
	}
	path := tr.TPath(4, 9)
	want := []int{4, 1, 0, 3, 6, 9}
	if len(path) != len(want) {
		t.Fatalf("TPath(4,9) = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("TPath(4,9) = %v, want %v", path, want)
		}
	}
}

func TestAncestorAndFirstOnPath(t *testing.T) {
	tr := sampleTree(t)
	if tr.Ancestor(9, 1) != 6 || tr.Ancestor(9, 2) != 3 || tr.Ancestor(9, 3) != 0 {
		t.Fatal("Ancestor chain wrong")
	}
	if tr.Ancestor(9, 99) != 0 {
		t.Fatal("deep Ancestor should clamp to root")
	}
	if tr.MustFirstOnPath(0, 9) != 3 {
		t.Fatal("FirstOnPath descending wrong")
	}
	if tr.MustFirstOnPath(4, 9) != 1 {
		t.Fatal("FirstOnPath ascending wrong")
	}
	if tr.MustFirstOnPath(3, 9) != 6 {
		t.Fatal("FirstOnPath descend one wrong")
	}
}

func TestReRoot(t *testing.T) {
	tr := sampleTree(t)
	rr, err := tr.ReRoot(6)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Root != 6 || rr.Parent[6] != -1 {
		t.Fatal("new root wrong")
	}
	// Edge set is preserved.
	if len(rr.Edges()) != len(tr.Edges()) {
		t.Fatal("edge count changed")
	}
	orig := map[graph.Edge]bool{}
	for _, e := range tr.Edges() {
		orig[e.Normalize()] = true
	}
	for _, e := range rr.Edges() {
		if !orig[e.Normalize()] {
			t.Fatalf("edge %v not in original tree", e)
		}
	}
	// Depth in the re-rooted tree equals tree distance from 6.
	if rr.Depth[0] != 2 || rr.Depth[9] != 1 || rr.Depth[4] != 4 {
		t.Fatalf("depths after reroot: %v", rr.Depth)
	}
}

func TestCentroid(t *testing.T) {
	// Star: centroid is the hub.
	parent := []int{-1, 0, 0, 0, 0, 0}
	tr, err := NewFromParents(0, parent)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Centroid() != 0 {
		t.Fatal("star centroid should be hub")
	}
	// Path: centroid is the middle.
	parent = []int{-1, 0, 1, 2, 3, 4, 5}
	tr, _ = NewFromParents(0, parent)
	c := tr.Centroid()
	if c != 3 && c != 2 {
		t.Fatalf("path centroid = %d", c)
	}
}

// Property: removing the centroid leaves components of size <= n/2.
func TestCentroidProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 1 + int(sz)%60
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		g := graph.New(n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
			g.MustAddEdge(v, parent[v])
		}
		tr, err := NewFromParents(0, parent)
		if err != nil {
			return false
		}
		c := tr.Centroid()
		for _, comp := range g.ComponentsAvoiding(map[int]bool{c: true}) {
			if 2*len(comp) > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSAndDeepDFSTrees(t *testing.T) {
	// Cycle of 8: BFS tree has depth 4; deep DFS tree has depth 7.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.MustAddEdge(i, (i+1)%8)
	}
	bt, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bt.MaxDepth() != 4 {
		t.Fatalf("BFS depth = %d", bt.MaxDepth())
	}
	dt, err := DeepDFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dt.MaxDepth() != 7 {
		t.Fatalf("DFS depth = %d", dt.MaxDepth())
	}
	// Disconnected graphs are rejected.
	dg := graph.New(3)
	dg.MustAddEdge(0, 1)
	if _, err := BFSTree(dg, 0); err == nil {
		t.Fatal("BFSTree on disconnected graph accepted")
	}
	if _, err := DeepDFSTree(dg, 0); err == nil {
		t.Fatal("DeepDFSTree on disconnected graph accepted")
	}
}

func TestDFSOrdersSample(t *testing.T) {
	tr := sampleTree(t)
	// Clockwise child order = ascending ids here.
	childOrder := make([][]int, tr.N())
	for v := 0; v < tr.N(); v++ {
		childOrder[v] = childrenInts(tr, v)
	}
	piL, piR := DFSOrders(tr, childOrder)
	// RIGHT order: 0,1,4,5,2,3,6,7,8,9.
	wantR := []int{0, 1, 4, 5, 2, 3, 6, 7, 8, 9}
	for i, v := range wantR {
		if piR[v] != i {
			t.Fatalf("piR = %v (piR[%d]=%d, want %d)", piR, v, piR[v], i)
		}
	}
	// LEFT order visits children in reverse: 0,3,6,9,8,7,2,1,5,4.
	wantL := []int{0, 3, 6, 9, 8, 7, 2, 1, 5, 4}
	for i, v := range wantL {
		if piL[v] != i {
			t.Fatalf("piL = %v (piL[%d]=%d, want %d)", piL, v, piL[v], i)
		}
	}
}

// Property: in both DFS orders, every subtree occupies a contiguous
// interval of positions starting at its root.
func TestDFSOrderIntervalsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 1 + int(sz)%80
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, err := NewFromParents(0, parent)
		if err != nil {
			return false
		}
		childOrder := make([][]int, n)
		for v := 0; v < n; v++ {
			cs := childrenInts(tr, v)
			rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
			childOrder[v] = cs
		}
		piL, piR := DFSOrders(tr, childOrder)
		for _, pi := range [][]int{piL, piR} {
			lo, hi := OrderIntervals(tr, pi)
			for v := 0; v < n; v++ {
				for z := 0; z < n; z++ {
					in := lo[v] <= pi[z] && pi[z] <= hi[v]
					if in != tr.IsAncestor(v, z) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: LEFT and RIGHT orders are reverses of each other on the
// children of every vertex: among siblings, ascending piR means descending
// piL.
func TestDFSOrderSiblingSymmetry(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, _ := NewFromParents(0, parent)
		childOrder := make([][]int, n)
		for v := 0; v < n; v++ {
			childOrder[v] = childrenInts(tr, v)
		}
		piL, piR := DFSOrders(tr, childOrder)
		for v := 0; v < n; v++ {
			cs := childOrder[v]
			for i := 0; i+1 < len(cs); i++ {
				if (piR[cs[i]] < piR[cs[i+1]]) != (piL[cs[i]] > piL[cs[i+1]]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeRangeVertex(t *testing.T) {
	tr := sampleTree(t)
	v := tr.SubtreeRangeVertex(3, 6)
	if v == -1 || tr.SubtreeSize(v) < 3 || tr.SubtreeSize(v) > 6 {
		t.Fatalf("SubtreeRangeVertex = %d", v)
	}
	if tr.SubtreeRangeVertex(7, 9) != -1 {
		t.Fatal("impossible range should return -1")
	}
}

func TestPathUpNonAncestorErrors(t *testing.T) {
	tr := sampleTree(t)
	if _, err := tr.PathUp(4, 3); err == nil {
		t.Fatal("PathUp with non-ancestor should return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPathUp with non-ancestor should panic")
		}
	}()
	tr.MustPathUp(4, 3)
}

// Property: LCA matches the naive parent-walk implementation.
func TestLCAMatchesNaive(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%120
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, err := NewFromParents(0, parent)
		if err != nil {
			return false
		}
		naive := func(u, v int) int {
			seen := map[int]bool{}
			for x := u; x != -1; x = parent[x] {
				seen[x] = true
			}
			for x := v; ; x = parent[x] {
				if seen[x] {
					return x
				}
			}
		}
		for trial := 0; trial < 30; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if tr.LCA(u, v) != naive(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TPath starts and ends at its arguments, is a tree walk, and has
// length depth(u)+depth(v)-2*depth(LCA)+1.
func TestTPathShapeProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%100
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, _ := NewFromParents(0, parent)
		for trial := 0; trial < 20; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			p := tr.TPath(u, v)
			if p[0] != u || p[len(p)-1] != v {
				return false
			}
			w := tr.LCA(u, v)
			if len(p) != tr.Depth[u]+tr.Depth[v]-2*tr.Depth[w]+1 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i], p[i+1]
				if parent[a] != b && parent[b] != a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// childrenInts copies tr.Children(v) into a fresh []int for test helpers
// that shuffle or store child lists.
func childrenInts(tr *Tree, v int) []int {
	cs := tr.Children(v)
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = int(c)
	}
	return out
}
