package spanning

import "testing"

// Edge-case coverage for the tree query machinery: single-vertex trees,
// path trees, root queries and u == v queries — the degenerate shapes the
// certification verifiers hit on adversarial inputs.

func singleVertexTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := NewFromParents(0, []int{-1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pathTree(t *testing.T, n int) *Tree {
	t.Helper()
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	tr, err := NewFromParents(0, parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSingleVertexTree(t *testing.T) {
	tr := singleVertexTree(t)
	if got := tr.LCA(0, 0); got != 0 {
		t.Fatalf("LCA(0,0) = %d", got)
	}
	if !tr.IsAncestor(0, 0) {
		t.Fatal("vertex not its own ancestor")
	}
	if p, err := tr.PathUp(0, 0); err != nil || len(p) != 1 || p[0] != 0 {
		t.Fatalf("PathUp(0,0) = %v, %v", p, err)
	}
	if got := tr.TPath(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("TPath(0,0) = %v", got)
	}
	if _, err := tr.FirstOnPath(0, 0); err == nil {
		t.Fatal("FirstOnPath(0,0) did not error")
	}
	if rr, err := tr.ReRoot(0); err != nil || rr.Root != 0 {
		t.Fatalf("ReRoot(0) = %+v, %v", rr, err)
	}
	if got := tr.Centroid(); got != 0 {
		t.Fatalf("Centroid = %d", got)
	}
	if got := tr.Ancestor(0, 5); got != 0 {
		t.Fatalf("Ancestor(0, 5) = %d", got)
	}
}

func TestPathTreeQueries(t *testing.T) {
	const n = 7
	tr := pathTree(t, n)
	// Root queries.
	for v := 0; v < n; v++ {
		if got := tr.LCA(tr.Root, v); got != tr.Root {
			t.Fatalf("LCA(root, %d) = %d", v, got)
		}
		if got := tr.LCA(v, v); got != v {
			t.Fatalf("LCA(%d,%d) = %d", v, v, got)
		}
	}
	// On a path, the LCA is the shallower endpoint.
	if got := tr.LCA(3, 6); got != 3 {
		t.Fatalf("LCA(3,6) = %d", got)
	}
	// FirstOnPath descends toward a descendant, ascends otherwise.
	if got := tr.MustFirstOnPath(0, 6); got != 1 {
		t.Fatalf("FirstOnPath(0,6) = %d", got)
	}
	if got := tr.MustFirstOnPath(6, 0); got != 5 {
		t.Fatalf("FirstOnPath(6,0) = %d", got)
	}
	if _, err := tr.FirstOnPath(4, 4); err == nil {
		t.Fatal("FirstOnPath(4,4) did not error")
	}
	if _, err := tr.FirstOnPath(-1, 3); err == nil {
		t.Fatal("FirstOnPath(-1,3) did not error")
	}
	// Ancestor clamps at the root.
	if got := tr.Ancestor(6, 100); got != 0 {
		t.Fatalf("Ancestor(6, 100) = %d", got)
	}
	// PathUp from a vertex to itself is the singleton path.
	if p, err := tr.PathUp(4, 4); err != nil || len(p) != 1 || p[0] != 4 {
		t.Fatalf("PathUp(4,4) = %v, %v", p, err)
	}
}

func TestReRootEdgeCases(t *testing.T) {
	const n = 5
	tr := pathTree(t, n)
	// Re-rooting at the current root is the identity.
	same, err := tr.ReRoot(tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if same.Parent[v] != tr.Parent[v] {
			t.Fatalf("ReRoot(root) changed parent of %d: %d vs %d",
				v, same.Parent[v], tr.Parent[v])
		}
	}
	// Re-rooting a path at the far leaf reverses every edge.
	rev, err := tr.ReRoot(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		want := v + 1
		if v == n-1 {
			want = -1
		}
		if rev.Parent[v] != want {
			t.Fatalf("reversed path: parent[%d] = %d, want %d", v, rev.Parent[v], want)
		}
		if rev.Depth[v] != n-1-v {
			t.Fatalf("reversed path: depth[%d] = %d, want %d", v, rev.Depth[v], n-1-v)
		}
	}
	// Out-of-range targets error instead of panicking.
	if _, err := tr.ReRoot(-1); err == nil {
		t.Fatal("ReRoot(-1) did not error")
	}
	if _, err := tr.ReRoot(n); err == nil {
		t.Fatalf("ReRoot(%d) did not error", n)
	}
}
