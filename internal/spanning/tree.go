// Package spanning provides rooted spanning trees and the tree machinery
// used throughout the paper: subtree sizes, ancestor tests, lowest common
// ancestors, tree paths, re-rooting, and the LEFT/RIGHT DFS orders of a
// spanning tree with respect to an embedding (Section 3.1.1).
//
// Tree state is arena-backed (DESIGN.md §13): children lists live in one CSR
// child array, subtree-size/tin/tout share one contiguous int32 arena, and
// the binary-lifting ancestor table is a single stride-n array.
package spanning

import (
	"fmt"

	"planardfs/internal/graph"
)

// Tree is a rooted tree over vertices 0..n-1 given by parent pointers.
type Tree struct {
	Root   int
	Parent []int // Parent[Root] == -1
	Depth  []int
	// CSR children: the children of v, ascending by vertex id, are
	// childList[childOff[v]:childOff[v+1]].
	childOff  []int32
	childList []int32
	// arena holds size/tin/tout back to back: size = arena[0:n],
	// tin = arena[n:2n], tout = arena[2n:3n].
	arena           []int32
	size, tin, tout []int32
	// upFlat is the binary-lifting ancestor table, stride n:
	// upFlat[k*n+v] is the 2^k-th ancestor of v (or root).
	upFlat []int32
	upLev  int
}

// NewFromParents builds a tree from a parent array. parent[root] must be -1
// and every other vertex must reach root by following parents.
func NewFromParents(root int, parent []int) (*Tree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("spanning: root %d out of range", root)
	}
	if parent[root] != -1 {
		return nil, fmt.Errorf("spanning: parent[root] = %d, want -1", parent[root])
	}
	t := &Tree{
		Root:   root,
		Parent: append([]int(nil), parent...),
		Depth:  make([]int, n),
	}
	// CSR children, filled by an ascending vertex scan so each list is
	// ascending by child id.
	t.childOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		p := parent[v]
		if v == root {
			continue
		}
		if p < 0 || p >= n || p == v {
			return nil, fmt.Errorf("spanning: invalid parent %d of %d", p, v)
		}
		t.childOff[p+1]++
	}
	for v := 0; v < n; v++ {
		t.childOff[v+1] += t.childOff[v]
	}
	t.childList = make([]int32, t.childOff[n])
	fill := append([]int32(nil), t.childOff[:n]...)
	for v := 0; v < n; v++ {
		p := parent[v]
		if v == root || p < 0 {
			continue
		}
		t.childList[fill[p]] = int32(v)
		fill[p]++
	}
	// Compute depths by BFS from root; detects unreachable vertices/cycles.
	seen := 1
	queue := []int{root}
	visited := make([]bool, n)
	visited[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c32 := range t.childList[t.childOff[v]:t.childOff[v+1]] {
			c := int(c32)
			if visited[c] {
				return nil, fmt.Errorf("spanning: vertex %d visited twice", c)
			}
			visited[c] = true
			t.Depth[c] = t.Depth[v] + 1
			seen++
			queue = append(queue, c)
		}
	}
	if seen != n {
		return nil, fmt.Errorf("spanning: %d of %d vertices reachable from root", seen, n)
	}
	t.computeIntervals()
	return t, nil
}

// BFSTree returns the BFS spanning tree of g rooted at root. The graph must
// be connected.
func BFSTree(g *graph.Graph, root int) (*Tree, error) {
	res := g.BFS(root)
	for v, d := range res.Dist {
		if d < 0 {
			return nil, fmt.Errorf("spanning: vertex %d unreachable from %d", v, root)
		}
	}
	return NewFromParents(root, res.Parent)
}

// DeepDFSTree returns a depth-first spanning tree of g rooted at root,
// visiting neighbours in incident-edge insertion order. Its depth can be
// Θ(n) even when the graph diameter is small, which is the stress case for
// the paper's subroutines.
func DeepDFSTree(g *graph.Graph, root int) (*Tree, error) {
	n := g.N()
	parent := make([]int, n)
	visited := make([]bool, n)
	for i := range parent {
		parent[i] = -2
	}
	// True depth-first traversal: a vertex's parent is fixed when it is
	// first *visited* (popped), not when discovered, so the resulting tree
	// has the DFS ancestor/descendant property.
	type item struct{ v, from int }
	stack := []item{{root, -1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[it.v] {
			continue
		}
		visited[it.v] = true
		parent[it.v] = it.from
		ids := g.IncidentEdges(it.v)
		for i := len(ids) - 1; i >= 0; i-- {
			w := g.Other(int(ids[i]), it.v)
			if !visited[w] {
				stack = append(stack, item{w, it.v})
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("spanning: vertex %d unreachable from %d", v, root)
		}
	}
	return NewFromParents(root, parent)
}

func (t *Tree) computeIntervals() {
	n := len(t.Parent)
	t.arena = make([]int32, 3*n)
	t.size = t.arena[0:n:n]
	t.tin = t.arena[n : 2*n : 2*n]
	t.tout = t.arena[2*n : 3*n : 3*n]
	timer := int32(0)
	// Iterative preorder with post-visit hooks.
	type frame struct{ v, ci int32 }
	//planarvet:narrowok Root is a vertex id, < n and graph.New bounds n to MaxInt32
	stack := []frame{{int32(t.Root), 0}}
	t.tin[t.Root] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if off := t.childOff[f.v] + f.ci; off < t.childOff[f.v+1] {
			c := t.childList[off]
			f.ci++
			t.tin[c] = timer
			timer++
			stack = append(stack, frame{c, 0})
			continue
		}
		t.tout[f.v] = timer
		t.size[f.v] = t.tout[f.v] - t.tin[f.v]
		stack = stack[:len(stack)-1]
	}
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.Parent) }

// Children returns v's children (ascending vertex id) as a view into the CSR
// child array. The returned slice must not be modified.
func (t *Tree) Children(v int) []int32 {
	return t.childList[t.childOff[v]:t.childOff[v+1]]
}

// ChildCount returns the number of children of v.
func (t *Tree) ChildCount(v int) int { return int(t.childOff[v+1] - t.childOff[v]) }

// SubtreeSize returns n_T(v), the number of vertices in the subtree T_v.
func (t *Tree) SubtreeSize(v int) int { return int(t.size[v]) }

// Interval returns v's preorder interval [lo, hi): the subtree rooted at v
// contains exactly the vertices whose preorder time lies in the interval.
// This is the DFS-order structure the serve layer answers interval and
// ancestry queries from without re-running any pipeline.
func (t *Tree) Interval(v int) (lo, hi int) { return int(t.tin[v]), int(t.tout[v]) }

// IsAncestor reports whether a is an ancestor of v (every vertex is an
// ancestor of itself, matching the paper's convention v ∈ T_u).
func (t *Tree) IsAncestor(a, v int) bool {
	return t.tin[a] <= t.tin[v] && t.tin[v] < t.tout[a]
}

func (t *Tree) buildLifting() {
	if t.upFlat != nil {
		return
	}
	n := len(t.Parent)
	logN := 1
	for 1<<logN < n {
		logN++
	}
	t.upLev = logN + 1
	t.upFlat = make([]int32, t.upLev*n)
	up0 := t.upFlat[:n]
	for v := 0; v < n; v++ {
		if t.Parent[v] < 0 {
			up0[v] = int32(v)
		} else {
			up0[v] = int32(t.Parent[v])
		}
	}
	for k := 1; k < t.upLev; k++ {
		cur := t.upFlat[k*n : (k+1)*n]
		prev := t.upFlat[(k-1)*n : k*n]
		for v := 0; v < n; v++ {
			cur[v] = prev[prev[v]]
		}
	}
}

// Ancestor returns the k-th ancestor of v (the root if k exceeds the depth).
func (t *Tree) Ancestor(v, k int) int {
	if k >= t.Depth[v] {
		// Also guards the binary lifting against k beyond the table range,
		// whose high bits the loop below would silently drop.
		return t.Root
	}
	t.buildLifting()
	n := len(t.Parent)
	for i := 0; k > 0 && i < t.upLev; i++ {
		if k&1 == 1 {
			v = int(t.upFlat[i*n+v])
		}
		k >>= 1
	}
	return v
}

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v int) int {
	if t.IsAncestor(u, v) {
		return u
	}
	if t.IsAncestor(v, u) {
		return v
	}
	t.buildLifting()
	n := len(t.Parent)
	for k := t.upLev - 1; k >= 0; k-- {
		if !t.IsAncestor(int(t.upFlat[k*n+u]), v) {
			u = int(t.upFlat[k*n+u])
		}
	}
	return t.Parent[u]
}

// PathUp returns the path from v up to ancestor a, inclusive on both ends.
// It returns an error if a is not an ancestor of v, so callers handling
// adversarial inputs (the certification verifiers) cannot be crashed.
func (t *Tree) PathUp(v, a int) ([]int, error) {
	if v < 0 || v >= len(t.Parent) || a < 0 || a >= len(t.Parent) {
		return nil, fmt.Errorf("spanning: PathUp(%d, %d) out of range", v, a)
	}
	if !t.IsAncestor(a, v) {
		return nil, fmt.Errorf("spanning: %d is not an ancestor of %d", a, v)
	}
	return t.pathUp(v, a), nil
}

// MustPathUp is PathUp for callers holding the ancestor invariant; it panics
// on violation and must not be used on untrusted inputs.
func (t *Tree) MustPathUp(v, a int) []int {
	path, err := t.PathUp(v, a)
	if err != nil {
		panic(err.Error())
	}
	return path
}

// pathUp is the unchecked walk; a must be an ancestor of v.
func (t *Tree) pathUp(v, a int) []int {
	var path []int
	for x := v; ; x = t.Parent[x] {
		path = append(path, x)
		if x == a {
			break
		}
	}
	return path
}

// TPath returns the unique tree path from u to v (inclusive).
func (t *Tree) TPath(u, v int) []int {
	w := t.LCA(u, v)
	up := t.pathUp(u, w)   // u .. w
	down := t.pathUp(v, w) // v .. w
	for i := len(down) - 2; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// FirstOnPath returns the first vertex after u on the tree path from u to v.
// It returns an error if u == v (the path has no second vertex).
func (t *Tree) FirstOnPath(u, v int) (int, error) {
	if u == v {
		return -1, fmt.Errorf("spanning: FirstOnPath with u == v (%d)", u)
	}
	if u < 0 || u >= len(t.Parent) || v < 0 || v >= len(t.Parent) {
		return -1, fmt.Errorf("spanning: FirstOnPath(%d, %d) out of range", u, v)
	}
	if t.IsAncestor(u, v) {
		// Descend: the child of u that is an ancestor of v.
		return t.Ancestor(v, t.Depth[v]-t.Depth[u]-1), nil
	}
	return t.Parent[u], nil
}

// MustFirstOnPath is FirstOnPath for callers holding the u != v invariant; it
// panics on violation and must not be used on untrusted inputs.
func (t *Tree) MustFirstOnPath(u, v int) int {
	x, err := t.FirstOnPath(u, v)
	if err != nil {
		panic(err.Error())
	}
	return x
}

// ReRoot returns a new tree with the same edge set rooted at newRoot
// (Lemma 19's reference semantics).
func (t *Tree) ReRoot(newRoot int) (*Tree, error) {
	n := len(t.Parent)
	if newRoot < 0 || newRoot >= n {
		return nil, fmt.Errorf("spanning: ReRoot target %d out of range", newRoot)
	}
	parent := make([]int, n)
	copy(parent, t.Parent)
	// Reverse the path from newRoot to the old root.
	prev := -1
	for x := newRoot; x != -1; {
		next := parent[x]
		parent[x] = prev
		prev = x
		x = next
	}
	nt, err := NewFromParents(newRoot, parent)
	if err != nil {
		return nil, fmt.Errorf("spanning: ReRoot produced invalid tree: %w", err)
	}
	return nt, nil
}

// SubtreeRangeVertex returns any vertex v whose subtree size lies in
// [lo, hi], or -1 if none exists. (Note: a vertex with subtree size in
// [n/3, 2n/3] need not exist — e.g. a star — which is why the tree case of
// the separator algorithm falls back to the centroid; see Centroid.)
func (t *Tree) SubtreeRangeVertex(lo, hi int) int {
	for v := 0; v < len(t.Parent); v++ {
		if s := int(t.size[v]); s >= lo && s <= hi {
			return v
		}
	}
	return -1
}

// Centroid returns a vertex whose removal leaves components of size at most
// n/2: walk from the root towards the heaviest child while some child
// subtree exceeds n/2. The tree path from the root to the centroid is a
// separator whose removal leaves components of size <= n/2 (tree case of
// Lemma 1).
func (t *Tree) Centroid() int {
	n := len(t.Parent)
	v := t.Root
	for {
		next := -1
		for _, c := range t.childList[t.childOff[v]:t.childOff[v+1]] {
			if 2*int(t.size[c]) > n {
				next = int(c)
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// Edges returns the n-1 tree edges as vertex pairs (child, parent).
func (t *Tree) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(t.Parent)-1)
	for v, p := range t.Parent {
		if p >= 0 {
			out = append(out, graph.Edge{U: v, V: p})
		}
	}
	return out
}

// MaxDepth returns the depth of the deepest vertex.
func (t *Tree) MaxDepth() int {
	d := 0
	for _, x := range t.Depth {
		if x > d {
			d = x
		}
	}
	return d
}
