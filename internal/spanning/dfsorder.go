package spanning

// DFSOrders computes the LEFT-DFS-ORDER and RIGHT-DFS-ORDER of the tree
// (Section 3.1.1) given, for each vertex, its children listed in clockwise
// rotation order starting just after the parent dart (position 1, 2, ... in
// the paper's normalized embedding t_v).
//
// The RIGHT-DFS-ORDER visits children by ascending rotation position
// (clockwise); the LEFT-DFS-ORDER by descending position
// (counterclockwise). Orders are 0-based: pi[root] == 0.
//
// The returned orders satisfy, for every vertex v, that the vertices of the
// subtree T_v occupy the contiguous interval [pi[v], pi[v]+n_T(v)-1].
func DFSOrders(t *Tree, childOrder [][]int) (piL, piR []int) {
	n := t.N()
	piL = make([]int, n)
	piR = make([]int, n)
	run(t, childOrder, false, piR)
	run(t, childOrder, true, piL)
	return piL, piR
}

// DFSOrdersCSR is DFSOrders with the child order given in CSR form:
// children[off[v]:off[v+1]] lists v's children in clockwise rotation order
// starting just after the parent dart. This is the flat-substrate entry
// point; it allocates only the two order arrays and the DFS stack.
func DFSOrdersCSR(t *Tree, off, children []int32) (piL, piR []int) {
	n := t.N()
	piL = make([]int, n)
	piR = make([]int, n)
	runCSR(t, off, children, false, piR)
	runCSR(t, off, children, true, piL)
	return piL, piR
}

// runCSR is run over a CSR child-order array.
func runCSR(t *Tree, off, children []int32, rev bool, pi []int) {
	timer := 0
	stack := make([]int32, 0, t.N())
	//planarvet:narrowok Root is a vertex id, < n and graph.New bounds n to MaxInt32
	stack = append(stack, int32(t.Root))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pi[v] = timer
		timer++
		cs := children[off[v]:off[v+1]]
		// Push children so that the first to visit is on top.
		if rev {
			// Visit descending position: push ascending.
			stack = append(stack, cs...)
		} else {
			// Visit ascending position: push descending.
			for i := len(cs) - 1; i >= 0; i-- {
				stack = append(stack, cs[i])
			}
		}
	}
}

// run fills pi with the DFS order visiting children in the given order
// (reversed if rev).
func run(t *Tree, childOrder [][]int, rev bool, pi []int) {
	timer := 0
	stack := make([]int, 0, t.N())
	stack = append(stack, t.Root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pi[v] = timer
		timer++
		cs := childOrder[v]
		// Push children so that the first to visit is on top.
		if rev {
			// Visit descending position: push ascending.
			for i := 0; i < len(cs); i++ {
				stack = append(stack, cs[i])
			}
		} else {
			// Visit ascending position: push descending.
			for i := len(cs) - 1; i >= 0; i-- {
				stack = append(stack, cs[i])
			}
		}
	}
}

// OrderIntervals returns, for a DFS order pi of t, the subtree interval
// bounds: lo[v] = pi[v] and hi[v] = pi[v] + n_T(v) - 1. A vertex z belongs
// to T_v iff lo[v] <= pi[z] <= hi[v].
func OrderIntervals(t *Tree, pi []int) (lo, hi []int) {
	n := t.N()
	lo = make([]int, n)
	hi = make([]int, n)
	for v := 0; v < n; v++ {
		lo[v] = pi[v]
		hi[v] = pi[v] + t.SubtreeSize(v) - 1
	}
	return lo, hi
}
