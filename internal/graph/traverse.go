package graph

// BFSResult holds the output of a breadth-first search.
type BFSResult struct {
	Source int
	// Dist[v] is the hop distance from Source, or -1 if unreachable.
	Dist []int
	// Parent[v] is the BFS-tree parent of v, or -1 for the source and
	// unreachable vertices.
	Parent []int
	// Order lists reached vertices in visit order (Source first).
	Order []int
}

// BFS runs a breadth-first search from src. Ties are broken by incident-edge
// insertion order, so the result is deterministic.
func (g *Graph) BFS(src int) *BFSResult {
	g.ensure()
	res := &BFSResult{
		Source: src,
		Dist:   make([]int, g.n),
		Parent: make([]int, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		//planarvet:narrowok v is a vertex id from the queue, < n and New bounds n to MaxInt32
		v32 := int32(v)
		for _, id := range g.inc[g.off[v]:g.off[v+1]] {
			w := int(g.endU[id] + g.endV[id] - v32)
			if res.Dist[w] < 0 {
				res.Dist[w] = res.Dist[v] + 1
				res.Parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return res
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// vertex.
func (g *Graph) Eccentricity(v int) int {
	res := g.BFS(v)
	ecc := 0
	for _, d := range res.Dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter of g, computed by a BFS from every
// vertex. It returns 0 for graphs with fewer than two vertices and -1 for
// disconnected graphs.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		res := g.BFS(v)
		for _, d := range res.Dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Connected reports whether g is connected. The empty graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	res := g.BFS(0)
	return len(res.Order) == g.n
}

// Components returns the connected components of g, each as a sorted vertex
// list, ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		res := g.BFS(v)
		comp := make([]int, 0, len(res.Order))
		for _, w := range res.Order {
			seen[w] = true
			comp = append(comp, w)
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentsAvoiding returns the connected components of g after deleting
// the vertices in the removed set. Each component is listed in BFS order
// from its smallest vertex.
func (g *Graph) ComponentsAvoiding(removed map[int]bool) [][]int {
	mask := make([]bool, g.n)
	for v, r := range removed { //planarvet:orderinvariant writes into a positional mask
		if r && v >= 0 && v < g.n {
			mask[v] = true
		}
	}
	return g.ComponentsAvoidingMask(mask)
}

// ComponentsAvoidingMask is ComponentsAvoiding with the removed set given as
// a positional mask (removed[v] == true deletes v). It is the allocation-lean
// form used on hot paths; a nil mask removes nothing.
func (g *Graph) ComponentsAvoidingMask(removed []bool) [][]int {
	g.ensure()
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] || (removed != nil && removed[v]) {
			continue
		}
		var comp []int
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			comp = append(comp, x)
			//planarvet:narrowok x is a vertex id from the queue, < n and New bounds n to MaxInt32
			x32 := int32(x)
			for _, id := range g.inc[g.off[x]:g.off[x+1]] {
				w := int(g.endU[id] + g.endV[id] - x32)
				if !seen[w] && (removed == nil || !removed[w]) {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
