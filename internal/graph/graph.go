// Package graph provides the basic undirected-graph substrate used by the
// rest of the repository: adjacency storage, edge identities, traversal,
// connectivity and diameter computation, and a union–find structure.
//
// Vertices are integers 0..N-1. Edges carry stable integer identifiers so
// that embeddings (package planar) can refer to half-edges ("darts") as
// 2*edgeID and 2*edgeID+1.
//
// # Flat layout
//
// The graph is stored as flat int32 structure-of-arrays (see DESIGN.md §13):
// edge endpoints live in two parallel arrays, the mutable incidence
// structure is an intrusive linked list over darts (O(1) append, no
// per-vertex allocations), and iteration runs over a CSR index — contiguous
// per-vertex slices of edge identifiers in insertion order — that is built
// lazily after the last mutation. No maps are involved anywhere: edge
// identity queries scan the incidence list of the lower-degree endpoint,
// which is O(min degree) and cache-resident for the bounded-degree planar
// instances this repository works with.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints in ascending order.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e different from x.
// It panics (with a "graph:"-prefixed message) if x is not an endpoint of e;
// this holds for edges obtained from the CSR view exactly as for literals.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", x, e))
}

// Graph is a simple undirected graph with stable edge identifiers, stored as
// flat int32 structure-of-arrays. The zero value is an empty graph with no
// vertices; use New.
//
// Concurrency: a Graph is safe for concurrent reads once construction is
// finished (every generator returns graphs with the CSR index already
// built). Mutating concurrently with reads, or reading while the first
// post-mutation query rebuilds the index, is not safe.
type Graph struct {
	n int
	// endU/endV are the normalized endpoints of edge e (endU[e] < endV[e]).
	endU, endV []int32
	// deg[v] is the degree of v.
	deg []int32
	// Mutable incidence: darts of edge e are 2e (at endU) and 2e+1 (at
	// endV). firstD/lastD head and tail v's dart list (-1 when empty),
	// nextD links darts in insertion order.
	firstD, lastD []int32
	nextD         []int32
	// CSR iteration cache: inc[off[v]:off[v+1]] lists the incident edge IDs
	// of v in insertion order. Valid when csrM == len(endU); rebuilt on the
	// first query after a mutation.
	off  []int32
	inc  []int32
	csrM int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: vertex count %d exceeds the int32 substrate", n))
	}
	g := &Graph{
		n:      n,
		deg:    make([]int32, n),
		firstD: make([]int32, n),
		lastD:  make([]int32, n),
		csrM:   -1,
	}
	for v := range g.firstD {
		g.firstD[v] = -1
		g.lastD[v] = -1
	}
	return g
}

// NewWithCapacity returns an empty graph on n vertices with room for m edges
// pre-allocated, so streaming generators can emit edges without growing the
// arrays.
func NewWithCapacity(n, m int) *Graph {
	g := New(n)
	if m > 0 {
		g.endU = make([]int32, 0, m)
		g.endV = make([]int32, 0, m)
		g.nextD = make([]int32, 0, 2*m)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.endU) }

// scanEdge returns the id of edge {u,v} by walking the dart list of the
// lower-degree endpoint, or -1.
func (g *Graph) scanEdge(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1
	}
	if g.deg[v] < g.deg[u] {
		u, v = v, u
	}
	v32 := int32(v)
	for d := g.firstD[u]; d >= 0; d = g.nextD[d] {
		e := d >> 1
		if g.endU[e]+g.endV[e]-int32(u) == v32 {
			return int(e)
		}
	}
	return -1
}

// AddEdge inserts the undirected edge {u,v} and returns its identifier.
// Self-loops and duplicate edges are rejected with an error.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if g.scanEdge(u, v) >= 0 {
		return -1, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	if u > v {
		u, v = v, u
	}
	id := len(g.endU)
	if id >= math.MaxInt32/2 {
		return -1, fmt.Errorf("graph: edge count %d exceeds the int32 dart space", id)
	}
	g.endU = append(g.endU, int32(u))
	g.endV = append(g.endV, int32(v))
	g.nextD = append(g.nextD, -1, -1)
	//planarvet:narrowok id < MaxInt32/2 is checked above, so both darts 2id and 2id+1 fit
	g.appendDart(u, int32(2*id))
	//planarvet:narrowok id < MaxInt32/2 is checked above, so both darts 2id and 2id+1 fit
	g.appendDart(v, int32(2*id+1))
	g.deg[u]++
	g.deg[v]++
	g.csrM = -1
	return id, nil
}

// appendDart links dart d at the tail of v's incidence list.
func (g *Graph) appendDart(v int, d int32) {
	if g.lastD[v] < 0 {
		g.firstD[v] = d
	} else {
		g.nextD[g.lastD[v]] = d
	}
	g.lastD[v] = d
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where the input is known to be valid.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// ensure (re)builds the CSR iteration index if edges were added since the
// last build. It runs in O(n + m).
func (g *Graph) ensure() {
	if g.csrM == len(g.endU) {
		return
	}
	m := len(g.endU)
	if cap(g.off) < g.n+1 {
		g.off = make([]int32, g.n+1)
	} else {
		g.off = g.off[:g.n+1]
	}
	if cap(g.inc) < 2*m {
		g.inc = make([]int32, 2*m)
	} else {
		g.inc = g.inc[:2*m]
	}
	g.off[0] = 0
	for v := 0; v < g.n; v++ {
		g.off[v+1] = g.off[v] + g.deg[v]
		i := g.off[v]
		for d := g.firstD[v]; d >= 0; d = g.nextD[d] {
			g.inc[i] = d >> 1
			i++
		}
	}
	g.csrM = m
}

// Freeze builds the CSR iteration index now (it is otherwise built lazily on
// the first query). Call it before sharing a graph across goroutines.
func (g *Graph) Freeze() { g.ensure() }

// HasEdge reports whether {u,v} is an edge of g.
func (g *Graph) HasEdge(u, v int) bool { return g.scanEdge(u, v) >= 0 }

// EdgeID returns the identifier of edge {u,v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	id := g.scanEdge(u, v)
	return id, id >= 0
}

// EdgeByID returns the edge with the given identifier. It panics with a
// "graph:"-prefixed message if id is not a valid edge identifier.
func (g *Graph) EdgeByID(id int) Edge {
	if id < 0 || id >= len(g.endU) {
		panic(fmt.Sprintf("graph: edge id %d out of range [0,%d)", id, len(g.endU)))
	}
	return Edge{U: int(g.endU[id]), V: int(g.endV[id])}
}

// EndpointsOf returns the normalized endpoints of edge id directly from the
// structure-of-arrays (the allocation-free form of EdgeByID for hot loops).
// It panics like EdgeByID on an invalid id.
func (g *Graph) EndpointsOf(id int) (u, v int32) {
	if id < 0 || id >= len(g.endU) {
		panic(fmt.Sprintf("graph: edge id %d out of range [0,%d)", id, len(g.endU)))
	}
	return g.endU[id], g.endV[id]
}

// Other returns the endpoint of edge id different from x, indexing the
// endpoint arrays directly. The caller must hold the incidence invariant
// (x is an endpoint); violations return the arithmetic complement.
func (g *Graph) Other(id int, x int) int {
	//planarvet:narrowok x is an endpoint vertex id by the incidence invariant, < n and New bounds n to MaxInt32
	return int(g.endU[id] + g.endV[id] - int32(x))
}

// Edges returns a copy of the edge list, indexed by edge ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.endU))
	for e := range out {
		out[e] = Edge{U: int(g.endU[e]), V: int(g.endV[e])}
	}
	return out
}

// IncidentEdges returns the identifiers of edges incident to v in insertion
// order, as a view into the CSR index: zero allocations, and the returned
// slice must not be modified. It is invalidated by the next AddEdge.
func (g *Graph) IncidentEdges(v int) []int32 {
	g.ensure()
	return g.inc[g.off[v]:g.off[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.deg[v]) }

// Neighbors returns the neighbours of v in incident-edge order.
func (g *Graph) Neighbors(v int) []int {
	g.ensure()
	inc := g.inc[g.off[v]:g.off[v+1]]
	out := make([]int, len(inc))
	//planarvet:narrowok v indexed g.off above, so it is a vertex id < n ≤ MaxInt32
	v32 := int32(v)
	for i, id := range inc {
		out[i] = int(g.endU[id] + g.endV[id] - v32)
	}
	return out
}

// Clone returns a deep copy of g. Edge identifiers are preserved.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:      g.n,
		endU:   append([]int32(nil), g.endU...),
		endV:   append([]int32(nil), g.endV...),
		deg:    append([]int32(nil), g.deg...),
		firstD: append([]int32(nil), g.firstD...),
		lastD:  append([]int32(nil), g.lastD...),
		nextD:  append([]int32(nil), g.nextD...),
		csrM:   -1,
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// along with the mapping from new vertex index to original vertex.
// Vertices are renumbered 0..len(vs)-1 in the order given (duplicates
// are rejected). Edges keep their relative identifier order (ascending
// original edge ID); only edges incident to the subset are examined, so the
// cost is O(Σ deg(vs) · log) rather than O(M).
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vs))
	orig := make([]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		idx[v] = i
		orig[i] = v
	}
	g.ensure()
	// Candidate edges: those with both endpoints in the subset, collected
	// from the incidence of the lower-id endpoint and sorted to reproduce
	// the global edge-ID insertion order exactly.
	var cand []int32
	for _, v := range vs {
		v32 := int32(v)
		for _, id := range g.inc[g.off[v]:g.off[v+1]] {
			w := g.endU[id] + g.endV[id] - v32
			if w > v32 {
				continue // counted once, from the smaller endpoint
			}
			if _, ok := idx[int(w)]; ok {
				cand = append(cand, id)
			}
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	sub := NewWithCapacity(len(vs), len(cand))
	for _, id := range cand {
		sub.MustAddEdge(idx[int(g.endU[id])], idx[int(g.endV[id])])
	}
	return sub, orig, nil
}

// SortedNeighbors returns the neighbours of v sorted ascending; useful for
// deterministic iteration in tests.
func (g *Graph) SortedNeighbors(v int) []int {
	ns := g.Neighbors(v)
	sort.Ints(ns)
	return ns
}
