// Package graph provides the basic undirected-graph substrate used by the
// rest of the repository: adjacency storage, edge identities, traversal,
// connectivity and diameter computation, and a union–find structure.
//
// Vertices are integers 0..N-1. Edges carry stable integer identifiers so
// that embeddings (package planar) can refer to half-edges ("darts") as
// 2*edgeID and 2*edgeID+1.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints in ascending order.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e different from x.
// It panics if x is not an endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", x, e))
}

// Graph is a simple undirected graph with stable edge identifiers.
// The zero value is an empty graph with no vertices; use New.
type Graph struct {
	n     int
	edges []Edge
	// adj[v] lists the incident edge IDs of v in insertion order.
	adj [][]int
	// edgeID maps a normalized edge to its identifier.
	edgeID map[Edge]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:      n,
		adj:    make([][]int, n),
		edgeID: make(map[Edge]int),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u,v} and returns its identifier.
// Self-loops and duplicate edges are rejected with an error.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	key := Edge{U: u, V: v}.Normalize()
	if _, ok := g.edgeID[key]; ok {
		return -1, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	id := len(g.edges)
	g.edges = append(g.edges, key)
	g.edgeID[key] = id
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where the input is known to be valid.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether {u,v} is an edge of g.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edgeID[Edge{U: u, V: v}.Normalize()]
	return ok
}

// EdgeID returns the identifier of edge {u,v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	id, ok := g.edgeID[Edge{U: u, V: v}.Normalize()]
	return id, ok
}

// EdgeByID returns the edge with the given identifier.
func (g *Graph) EdgeByID(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list, indexed by edge ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// IncidentEdges returns the identifiers of edges incident to v
// in insertion order. The returned slice must not be modified.
func (g *Graph) IncidentEdges(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the neighbours of v in incident-edge order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, id := range g.adj[v] {
		out[i] = g.edges[id].Other(v)
	}
	return out
}

// Clone returns a deep copy of g. Edge identifiers are preserved.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.MustAddEdge(e.U, e.V)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// along with the mapping from new vertex index to original vertex.
// Vertices are renumbered 0..len(vs)-1 in the order given (duplicates
// are rejected).
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vs))
	orig := make([]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(vs))
	for _, e := range g.edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			sub.MustAddEdge(iu, iv)
		}
	}
	return sub, orig, nil
}

// SortedNeighbors returns the neighbours of v sorted ascending; useful for
// deterministic iteration in tests.
func (g *Graph) SortedNeighbors(v int) []int {
	ns := g.Neighbors(v)
	sort.Ints(ns)
	return ns
}
