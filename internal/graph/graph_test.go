package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndLookup(t *testing.T) {
	g := New(4)
	id, err := g.AddEdge(2, 1)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("first edge id = %d, want 0", id)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge should be symmetric")
	}
	if got, ok := g.EdgeID(1, 2); !ok || got != 0 {
		t.Fatalf("EdgeID(1,2) = %d,%v", got, ok)
	}
	if e := g.EdgeByID(0); e != (Edge{U: 1, V: 2}) {
		t.Fatalf("EdgeByID(0) = %v, want {1 2}", e)
	}
	if g.M() != 1 || g.N() != 4 {
		t.Fatalf("M=%d N=%d", g.M(), g.N())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	g.MustAddEdge(0, 1)
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	e.Other(5)
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 2)
	ns := g.Neighbors(0)
	want := []int{1, 3, 2}
	if len(ns) != 3 {
		t.Fatalf("deg=%d", len(ns))
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v (insertion order)", ns, want)
		}
	}
	if g.Degree(0) != 3 || g.Degree(4) != 0 {
		t.Fatal("Degree wrong")
	}
	sorted := g.SortedNeighbors(0)
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 {
		t.Fatalf("SortedNeighbors = %v", sorted)
	}
}

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.MustAddEdge(n-1, 0)
	return g
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	res := g.BFS(0)
	for v := 0; v < 6; v++ {
		if res.Dist[v] != v {
			t.Fatalf("Dist[%d]=%d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Parent[0] != -1 {
		t.Fatal("source parent should be -1")
	}
	for v := 1; v < 6; v++ {
		if res.Parent[v] != v-1 {
			t.Fatalf("Parent[%d]=%d", v, res.Parent[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	res := g.BFS(0)
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatal("unreachable vertices should have Dist -1")
	}
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{pathGraph(1), 0},
		{pathGraph(2), 1},
		{pathGraph(10), 9},
		{cycleGraph(10), 5},
		{cycleGraph(11), 5},
	}
	for i, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, got, c.want)
		}
	}
	dg := New(3)
	dg.MustAddEdge(0, 1)
	if dg.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(7)
	if g.Eccentricity(0) != 6 {
		t.Fatal("end eccentricity")
	}
	if g.Eccentricity(3) != 3 {
		t.Fatal("center eccentricity")
	}
}

func TestComponentsAvoiding(t *testing.T) {
	g := pathGraph(7)
	comps := g.ComponentsAvoiding(map[int]bool{3: true})
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0])+len(comps[1]) != 6 {
		t.Fatal("wrong component sizes")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycleGraph(6)
	sub, orig, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("N=%d M=%d, want 3,2", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig = %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestClone(t *testing.T) {
	g := cycleGraph(5)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone size mismatch")
	}
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone not independent")
	}
}

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions should merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union should not merge")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	uf.Union(1, 3)
	if !uf.Same(0, 2) || uf.Count() != 2 {
		t.Fatalf("count=%d", uf.Count())
	}
}

// Property: union-find component count always matches BFS component count on
// random graphs.
func TestUnionFindMatchesComponents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := New(n)
		uf := NewUnionFind(n)
		for tries := 0; tries < 2*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v)
			uf.Union(u, v)
		}
		return uf.Count() == len(g.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances obey the triangle rule across every edge:
// |Dist[u]-Dist[v]| <= 1 for each edge {u,v} in the same component.
func TestBFSDistancesSmooth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := New(n)
		for tries := 0; tries < 3*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v)
		}
		res := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := res.Dist[e.U], res.Dist[e.V]
			if (du < 0) != (dv < 0) {
				return false
			}
			if du >= 0 && (du-dv > 1 || dv-du > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
