package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// refGraph is a deliberately naive map/slice adjacency structure kept in
// lockstep with the CSR graph by the property tests below. It encodes the
// documented contracts directly: neighbour order is edge-insertion order at
// each endpoint, edge IDs are insertion order globally.
type refGraph struct {
	n     int
	adj   [][]int // neighbour lists in insertion order
	inc   [][]int // incident edge IDs in insertion order
	edges [][2]int
	ids   map[[2]int]int
}

func newRefGraph(n int) *refGraph {
	return &refGraph{
		n:   n,
		adj: make([][]int, n),
		inc: make([][]int, n),
		ids: map[[2]int]int{},
	}
}

func (r *refGraph) addEdge(u, v int) int {
	id := len(r.edges)
	r.edges = append(r.edges, key(u, v)) // endpoints normalized, U < V
	r.adj[u] = append(r.adj[u], v)
	r.adj[v] = append(r.adj[v], u)
	r.inc[u] = append(r.inc[u], id)
	r.inc[v] = append(r.inc[v], id)
	r.ids[key(u, v)] = id
	return id
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// TestFlatMatchesReference grows random graphs edge by edge and checks every
// read accessor of the CSR representation against the naive reference after
// each insertion batch — including interleaved reads, which force the lazy
// CSR cache to be rebuilt repeatedly.
func TestFlatMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		ref := newRefGraph(n)
		target := rng.Intn(3 * n)
		if max := n * (n - 1) / 2; target > max {
			target = max
		}
		for len(ref.edges) < target {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if _, dup := ref.ids[key(u, v)]; dup {
				continue
			}
			id, err := g.AddEdge(u, v)
			if err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
			if want := ref.addEdge(u, v); id != want {
				t.Fatalf("edge {%d,%d} got id %d, want insertion order %d", u, v, id, want)
			}
			// Interleave reads with writes every few edges so the cache
			// invalidation path is exercised, not just the final state.
			if len(ref.edges)%5 == 0 {
				compareGraphs(t, g, ref)
			}
		}
		compareGraphs(t, g, ref)
		// Clone must agree too and stay independent.
		c := g.Clone()
		compareGraphs(t, c, ref)
	}
}

func compareGraphs(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	if g.N() != ref.n || g.M() != len(ref.edges) {
		t.Fatalf("size mismatch: got %d/%d, want %d/%d", g.N(), g.M(), ref.n, len(ref.edges))
	}
	for v := 0; v < ref.n; v++ {
		if g.Degree(v) != len(ref.adj[v]) {
			t.Fatalf("Degree(%d) = %d, want %d", v, g.Degree(v), len(ref.adj[v]))
		}
		ns := g.Neighbors(v)
		if len(ns) != len(ref.adj[v]) {
			t.Fatalf("Neighbors(%d) has %d entries, want %d", v, len(ns), len(ref.adj[v]))
		}
		for i, w := range ref.adj[v] {
			if ns[i] != w {
				t.Fatalf("Neighbors(%d)[%d] = %d, want %d (insertion order)", v, i, ns[i], w)
			}
		}
		ids := g.IncidentEdges(v)
		if len(ids) != len(ref.inc[v]) {
			t.Fatalf("IncidentEdges(%d) has %d entries, want %d", v, len(ids), len(ref.inc[v]))
		}
		for i, id := range ref.inc[v] {
			if int(ids[i]) != id {
				t.Fatalf("IncidentEdges(%d)[%d] = %d, want %d", v, i, ids[i], id)
			}
		}
	}
	for id, e := range ref.edges {
		u, v := e[0], e[1]
		gu, gv := g.EndpointsOf(id)
		if int(gu) != u || int(gv) != v {
			t.Fatalf("EndpointsOf(%d) = (%d,%d), want (%d,%d)", id, gu, gv, u, v)
		}
		if got, ok := g.EdgeID(u, v); !ok || got != id {
			t.Fatalf("EdgeID(%d,%d) = (%d,%v), want (%d,true)", u, v, got, ok, id)
		}
		if got, ok := g.EdgeID(v, u); !ok || got != id {
			t.Fatalf("EdgeID(%d,%d) = (%d,%v), want (%d,true)", v, u, got, ok, id)
		}
		if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
			t.Fatalf("HasEdge(%d,%d) is false", u, v)
		}
		if g.Other(id, u) != v || g.Other(id, v) != u {
			t.Fatalf("Other(%d) does not invert the endpoints", id)
		}
	}
	// A handful of negative membership probes.
	for u := 0; u < ref.n; u++ {
		v := (u*7 + 3) % ref.n
		_, want := ref.ids[key(u, v)]
		if u == v {
			want = false
		}
		if g.HasEdge(u, v) != want {
			t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, !want, want)
		}
	}
}

// TestEdgeByIDPanicMessage pins the exact out-of-range panic text: callers
// (and the recovery layer) match on the "graph:" prefix.
func TestEdgeByIDPanicMessage(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	for _, id := range []int{-1, 1, 99} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("EdgeByID(%d) did not panic", id)
				}
				want := fmt.Sprintf("graph: edge id %d out of range [0,1)", id)
				if msg, ok := r.(string); !ok || msg != want {
					t.Fatalf("EdgeByID(%d) panic = %v, want %q", id, r, want)
				}
			}()
			g.EdgeByID(id)
		}()
	}
}

// TestEdgeOtherPanics covers the documented Edge.Other contract: a
// non-endpoint argument panics with a "graph:"-prefixed message.
func TestEdgeOtherPanics(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	e := g.EdgeByID(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Edge.Other(2) on edge {0,1} did not panic")
		}
		if msg, ok := r.(string); !ok || len(msg) < 6 || msg[:6] != "graph:" {
			t.Fatalf("Edge.Other panic = %v, want a graph:-prefixed string", r)
		}
	}()
	e.Other(2)
}

// TestIncidenceScanZeroAlloc gates the flat representation's core promise:
// once the CSR cache is built, the per-round BFS/DFS inner loop — scan the
// incident darts of a frontier vertex and resolve the far endpoints — runs
// without allocating.
func TestIncidenceScanZeroAlloc(t *testing.T) {
	g := New(200)
	for v := 1; v < 200; v++ {
		g.MustAddEdge(v-1, v)
		if v >= 2 {
			g.MustAddEdge(v-2, v)
		}
	}
	g.Freeze()
	sink := 0
	allocs := testing.AllocsPerRun(50, func() {
		for v := 0; v < g.N(); v++ {
			for _, id := range g.IncidentEdges(v) {
				sink += g.Other(int(id), v)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("incidence scan allocates %.1f allocs/run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("scan did not visit any edge")
	}
}

// TestConstructionAllocsBounded gates the construction path: with a
// capacity hint, building a graph is a constant number of allocations
// (the backing arrays), independent of n and m.
func TestConstructionAllocsBounded(t *testing.T) {
	const n, rows = 2000, 2
	allocs := testing.AllocsPerRun(10, func() {
		g := NewWithCapacity(n, 2*n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(v-1, v)
			if v >= 2 {
				g.MustAddEdge(v-2, v)
			}
		}
		g.Freeze()
	})
	// One allocation per backing array plus the struct itself; 16 leaves
	// headroom without letting a per-edge or per-vertex regression through.
	if allocs > 16 {
		t.Fatalf("construction with capacity hint allocates %.1f allocs/run, want <= 16", allocs)
	}
	_ = rows
}
