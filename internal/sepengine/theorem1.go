package sepengine

import (
	"planardfs/internal/dist"
	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// theorem1Engine wraps the paper's constructive Theorem 1 algorithm
// (internal/separator): the deterministic fundamental-face weight
// machinery with augmentations, hidden fallbacks and virtual closures.
// It is the registry default and the only engine with a balance guarantee
// on every planar configuration.
type theorem1Engine struct{}

func (theorem1Engine) Name() string { return DefaultEngine }

func (theorem1Engine) FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error) {
	// Thread the caller's tracer through the configuration so the full
	// phase/lemma span structure of the run lands on it, exactly like a
	// direct separator.Find call.
	run := cfg
	if opts.Tracer != nil && cfg.Tracer == nil {
		c := *cfg
		c.Tracer = opts.Tracer
		run = &c
	}
	sep, err := separator.FindWithOptions(run, opts.Ablation)
	if err != nil {
		return nil, err
	}
	return finish(cfg, DefaultEngine, sep, dist.SeparatorOps(cfg.G.N()))
}

func init() { Register(theorem1Engine{}) }
