package sepengine

import (
	"sort"

	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// The candidate framework shared by the baseline engines: an engine ranks
// cheaply scored candidate cycles, and the framework exact-checks them in
// rank order against the real balance oracle, returning the first one
// whose removal leaves components of at most 2n/3 vertices. The exact
// check is O(n + m) per candidate, so the probe budget bounds the
// engine's local work; the ranking decides which candidates get probed.

// candidate is one potential separator: a lazily materialized vertex path
// (simple, with consecutive vertices G-adjacent) plus a ranking score
// (lower probes earlier) and the phase tag recorded on success.
type candidate struct {
	score int
	phase separator.Phase
	path  func() []int
}

// probeBudget caps exact balance checks per candidate phase. The budget is
// per phase, not global: an engine's primary tier can emit Θ(n) hopeless
// candidates (every fundamental cycle of a wheel strands the rim), and a
// global cap would starve the fallback tiers that exist precisely for
// those instances. Candidates with empty paths cost no probe.
const probeBudget = 96

// searchCandidates probes candidates in ascending score order (stable on
// generation order, so the search is deterministic) and returns the first
// balanced one as a separator. Each phase gets its own probe budget.
// ErrNoSeparator when every budget is exhausted or every candidate fails.
func searchCandidates(cfg *weights.Config, cands []candidate) (*separator.Separator, error) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	n := cfg.G.N()
	probed := map[separator.Phase]int{}
	for _, c := range cands {
		if probed[c.phase] >= probeBudget {
			continue
		}
		path := c.path()
		if len(path) == 0 {
			continue
		}
		probed[c.phase]++
		if 3*separator.VerifyBalance(cfg.G, path) <= 2*n {
			return &separator.Separator{
				Path:  path,
				EndA:  path[0],
				EndB:  path[len(path)-1],
				Phase: c.phase,
			}, nil
		}
	}
	return nil, ErrNoSeparator
}

// treeCandidate handles configurations without fundamental edges (the
// graph is a tree): the root-to-centroid path, exactly the Theorem 1
// Phase 2 case. All cycle engines share it — a tree has no cycles, and
// the DFS recursion routinely hands engines tree components.
func treeCandidate(cfg *weights.Config) []candidate {
	return []candidate{{
		score: 0,
		phase: separator.PhaseTree,
		path: func() []int {
			c := cfg.Tree.Centroid()
			path, err := cfg.Tree.PathUp(c, cfg.Tree.Root)
			if err != nil {
				return nil
			}
			return path
		},
	}}
}

// fundamentalCandidate is the T-path of fundamental edge e, closed by the
// real edge itself.
func fundamentalCandidate(cfg *weights.Config, e int, score int, phase separator.Phase) candidate {
	return candidate{
		score: score,
		phase: phase,
		path: func() []int {
			u, v := cfg.Canonical(e)
			return cfg.Tree.TPath(u, v)
		},
	}
}

// virtualPairCandidates emits T-paths between pairs of vertices sharing a
// face, closed by a virtual edge drawn through that face — the engines'
// version of the paper's ℰ-compatible virtual closure (Lemma 8). Like the
// proof-labeling scheme, the closure itself has no local witness: the
// certified property is the balanced simple G-path. Pairs are sampled at
// stride len/2 around each face boundary (the diametral pairs a balanced
// cycle wants) plus stride len/3; duplicates and real-edge pairs cost
// nothing beyond a wasted probe.
func virtualPairCandidates(cfg *weights.Config, baseScore int) []candidate {
	fs := cfg.Faces()
	var out []candidate
	pair := func(u, w, score int) {
		if u == w {
			return
		}
		out = append(out, candidate{
			score: score,
			phase: separator.PhaseSparseVirtual,
			path:  func() []int { return cfg.Tree.TPath(u, w) },
		})
	}
	for f := 0; f < fs.Count(); f++ {
		b := fs.FaceVertices(f)
		if len(b) < 4 {
			continue // triangle pairs are real edges, already candidates
		}
		half, third := len(b)/2, len(b)/3
		// Penalize by face index after the strides so big outer faces (low
		// indices come first in trace order) probe before deep small ones.
		for i := 0; i < len(b); i += 2 {
			pair(b[i], b[(i+half)%len(b)], baseScore+f+i)
		}
		if third >= 2 {
			for i := 1; i < len(b); i += 2 {
				pair(b[i], b[(i+third)%len(b)], baseScore+fs.Count()+f+i)
			}
		}
	}
	return out
}

// fundWeights computes the face weight of every fundamental edge once.
func fundWeights(cfg *weights.Config, fund []int) map[int]int {
	w := make(map[int]int, len(fund))
	for _, e := range fund {
		w[e] = cfg.Weight(e)
	}
	return w
}

// absDiff returns |a - b|.
func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
