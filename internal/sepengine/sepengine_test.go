package sepengine

import (
	"errors"
	"fmt"
	"testing"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/gen"
	"planardfs/internal/separator"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

// testFamilies is the engine-matrix coverage set: the wheel defeats pure
// fundamental-cycle engines, grids and cylinders exercise BFS levels,
// stacked and polygon are the random (near-)maximal triangulations.
var testFamilies = []string{"wheel", "grid", "cylinderish", "stacked", "polygon"}

func buildConfig(t testing.TB, family string, n int, seed int64) *weights.Config {
	t.Helper()
	in, err := gen.ByName(family, n, seed)
	if err != nil {
		t.Fatalf("%s/%d: %v", family, n, err)
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	tr, err := spanning.BFSTree(in.G, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// checkResult validates the full Result contract against the centralized
// cert oracles, independently of the checks finish() already ran.
func checkResult(t *testing.T, cfg *weights.Config, res *Result, name string) {
	t.Helper()
	n := cfg.G.N()
	if err := cert.CheckSeparator(cfg.G, res.Sep); err != nil {
		t.Fatalf("%s: cert rejects separator: %v", name, err)
	}
	side, err := cert.SeparatorSides(cfg.G, res.Sep.Path)
	if err != nil {
		t.Fatalf("%s: no side assignment: %v", name, err)
	}
	if err := cert.CheckSeparatorSides(cfg.G, res.Sep.Path, side); err != nil {
		t.Fatalf("%s: cert rejects sides: %v", name, err)
	}
	if res.CycleLen != len(res.Sep.Path) {
		t.Fatalf("%s: CycleLen %d != path length %d", name, res.CycleLen, len(res.Sep.Path))
	}
	if maxComp := separator.VerifyBalance(cfg.G, res.Sep.Path); 3*maxComp > 2*n {
		t.Fatalf("%s: unbalanced: max component %d of n=%d", name, maxComp, n)
	}
	if res.Balance < 0 || res.Balance > 2.0/3.0+1e-9 {
		t.Fatalf("%s: Balance %v outside [0, 2/3]", name, res.Balance)
	}
	if res.Rounds <= 0 {
		t.Fatalf("%s: non-positive charged rounds %d", name, res.Rounds)
	}
	if len(res.Side) != n {
		t.Fatalf("%s: Side covers %d of %d vertices", name, len(res.Side), n)
	}
}

// TestEngineMatrixSmall runs every registered engine over every family for
// every n in [6, 64]: each run must return a cert-valid separator or the
// typed ErrNoSeparator — never an unvalidated result or a foreign error.
// The default engine must always succeed (it is the paper's constructive
// procedure and its totality is the repo's core claim).
func TestEngineMatrixSmall(t *testing.T) {
	for _, family := range testFamilies {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			succeeded := make(map[string]int, len(Names()))
			for n := 6; n <= 64; n++ {
				cfg := buildConfig(t, family, n, int64(n))
				for _, name := range Names() {
					res, err := Find(name, cfg, Options{Seed: int64(7*n + 1)})
					label := fmt.Sprintf("%s/%s/n=%d", name, family, n)
					if err != nil {
						if !errors.Is(err, ErrNoSeparator) {
							t.Fatalf("%s: unexpected error: %v", label, err)
						}
						if name == DefaultEngine {
							t.Fatalf("%s: default engine must be total, got %v", label, err)
						}
						continue
					}
					if res.Engine != name {
						t.Fatalf("%s: result tagged %q", label, res.Engine)
					}
					checkResult(t, cfg, res, label)
					succeeded[name]++
				}
			}
			// Every engine must succeed somewhere in the family sweep:
			// "always ErrNoSeparator" would make an engine vacuously correct.
			for _, name := range Names() {
				if succeeded[name] == 0 {
					t.Errorf("%s never produced a separator on family %s", name, family)
				}
			}
		})
	}
}

// TestEngineMatrixLarge is the n=1000 row of the matrix, with the full
// distributed separator PLS run on every successful result.
func TestEngineMatrixLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large matrix row skipped in -short mode")
	}
	for _, family := range testFamilies {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			cfg := buildConfig(t, family, 1000, 1000)
			for _, name := range Names() {
				res, err := Find(name, cfg, Options{Seed: 9001})
				label := fmt.Sprintf("%s/%s/n=1000", name, family)
				if err != nil {
					if !errors.Is(err, ErrNoSeparator) {
						t.Fatalf("%s: unexpected error: %v", label, err)
					}
					if name == DefaultEngine {
						t.Fatalf("%s: default engine must be total, got %v", label, err)
					}
					continue
				}
				checkResult(t, cfg, res, label)
				verdict, err := cert.CertifySeparator(cfg.G, res.Sep, cert.Options{Sequential: true})
				if err != nil {
					t.Fatalf("%s: PLS error: %v", label, err)
				}
				if !verdict.OK {
					t.Fatalf("%s: distributed verifier rejected (rejectors %v)", label, verdict.Rejectors)
				}
			}
		})
	}
}

// TestCorruptedResultsRejected corrupts successful separator paths with
// the chaos structural-fault stream and checks the cert oracle rejects
// every corrupted variant: the validation layer is what stands between an
// engine bug and a silently wrong decomposition.
func TestCorruptedResultsRejected(t *testing.T) {
	for _, family := range testFamilies {
		cfg := buildConfig(t, family, 48, 48)
		n := cfg.G.N()
		for _, name := range Names() {
			res, err := Find(name, cfg, Options{Seed: 5})
			if err != nil {
				continue // matrix tests cover the error contract
			}
			for attempt := 1; attempt <= 3; attempt++ {
				plan := chaos.NewPlan(int64(attempt)*77, chaos.Spec{Structural: 4})
				corrupted := append([]int(nil), res.Sep.Path...)
				if plan.CorruptInts(attempt, n, corrupted) == 0 {
					t.Fatalf("%s/%s: corruption plan applied nothing", name, family)
				}
				bad := &separator.Separator{
					Path: corrupted,
					EndA: res.Sep.EndA,
					EndB: res.Sep.EndB,
				}
				if cert.CheckSeparator(cfg.G, bad) == nil {
					t.Fatalf("%s/%s attempt %d: cert accepted corrupted path %v (original %v)",
						name, family, attempt, corrupted, res.Sep.Path)
				}
			}
		}
	}
}

// TestUnknownEngine checks the discovery contract: unknown names return
// the typed UnknownEngineError naming the available set, and the empty
// name resolves to the default engine.
func TestUnknownEngine(t *testing.T) {
	_, err := Get("no-such-engine")
	var ue *UnknownEngineError
	if !errors.As(err, &ue) {
		t.Fatalf("Get(no-such-engine) = %v, want *UnknownEngineError", err)
	}
	if ue.Name != "no-such-engine" || len(ue.Available) != len(Names()) {
		t.Fatalf("error carries name %q and %d engines, want full set %v", ue.Name, len(ue.Available), Names())
	}
	e, err := Get("")
	if err != nil || e.Name() != DefaultEngine {
		t.Fatalf("Get(\"\") = %v, %v; want the default engine %q", e, err, DefaultEngine)
	}
	if len(Names()) < 5 {
		t.Fatalf("registry holds %v, want at least 5 engines", Names())
	}
}
