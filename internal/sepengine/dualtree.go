package sepengine

import (
	"planardfs/internal/dist"
	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// dualTreeEngine is the dual-tree cycle separator (SNIPPETS.md §2): the
// non-tree edges of the configuration's BFS tree T form a spanning tree
// T* of the dual (the interdigitating-trees theorem), and cutting T* at a
// dual edge e splits the faces exactly into the inside and outside of the
// fundamental cycle of e in T ∪ {e}. A tree-weight decomposition over T*
// — faces weighted by the vertices anchored to them — therefore estimates
// every fundamental cycle's inside weight in one bottom-up sweep, and the
// engine probes the fundamental edges whose estimated split is closest to
// n/2.
//
// The estimate charges boundary vertices to one incident face, so the
// ranking is approximate and every probe is exact-checked. Outside
// triangulations the Lipton–Tarjan guarantee does not apply and the
// virtual-closure tier backs the engine up; a typed ErrNoSeparator
// reports instances where nothing probed balances.
type dualTreeEngine struct{}

func (dualTreeEngine) Name() string { return "dual-tree-bfs" }

func (dualTreeEngine) FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error) {
	n := cfg.G.N()
	ops := dualTreeOps(n)
	charge(cfg, opts, "dual-tree-bfs", ops)

	fund := cfg.FundamentalEdges()
	if len(fund) == 0 {
		sep, err := searchCandidates(cfg, treeCandidate(cfg))
		if err != nil {
			return nil, err
		}
		return finish(cfg, "dual-tree-bfs", sep, ops)
	}

	dual := cfg.Emb.BuildDual()
	fs := dual.Faces
	nf := fs.Count()

	// Dual adjacency over the fundamental (non-tree) primal edges only.
	deg := make([]int32, nf+1)
	for _, e := range fund {
		deg[dual.Side[e][0]+1]++
		deg[dual.Side[e][1]+1]++
	}
	off := deg
	for f := 1; f <= nf; f++ {
		off[f] += off[f-1]
	}
	adj := make([]int32, off[nf])
	fill := make([]int32, nf)
	for _, e := range fund {
		f0, f1 := dual.Side[e][0], dual.Side[e][1]
		//planarvet:narrowok e is a primal edge id and AddEdge bounds the edge count to MaxInt32/2
		adj[off[f0]+fill[f0]] = int32(e)
		fill[f0]++
		//planarvet:narrowok e is a primal edge id and AddEdge bounds the edge count to MaxInt32/2
		adj[off[f1]+fill[f1]] = int32(e)
		fill[f1]++
	}

	// Anchor every vertex to the face of its first dart and accumulate
	// per-face weights (separator vertices land on one side of their
	// cycle; the exact check absorbs the slack).
	faceW := make([]int, nf)
	for v := 0; v < n; v++ {
		if d := cfg.Emb.FirstDart(v); d >= 0 {
			faceW[fs.FaceOf[d]]++
		}
	}

	// BFS the dual tree from the outer face, recording the entering dual
	// edge of every face, then sweep children-before-parents to get the
	// subtree weight under each dual tree edge.
	parentEdge := make([]int32, nf)
	for f := range parentEdge {
		parentEdge[f] = -1
	}
	order := make([]int32, 0, nf)
	visited := make([]bool, nf)
	visited[cfg.Outer] = true
	//planarvet:narrowok cfg.Outer indexed visited above, so it is a face index < nf ≤ 2m ≤ MaxInt32
	order = append(order, int32(cfg.Outer))
	for head := 0; head < len(order); head++ {
		f := int(order[head])
		for _, e32 := range adj[off[f]:off[f+1]] {
			e := int(e32)
			g := dual.Side[e][0] + dual.Side[e][1] - f
			if !visited[g] {
				visited[g] = true
				parentEdge[g] = e32
				//planarvet:narrowok g is a face index < nf ≤ 2m ≤ MaxInt32
				order = append(order, int32(g))
			}
		}
	}
	subW := append([]int(nil), faceW...)
	for i := len(order) - 1; i > 0; i-- {
		f := int(order[i])
		if pe := parentEdge[f]; pe >= 0 {
			p := dual.Side[pe][0] + dual.Side[pe][1] - f
			subW[p] += subW[f]
		}
	}

	// Rank: the subtree weight under a dual tree edge estimates the
	// vertices inside the fundamental cycle of its primal edge; probe the
	// edges whose split is closest to n/2 first. Fundamental edges not on
	// the dual tree (parallel dual connections) fall back to the exact
	// face-weight formula for their score.
	onDualTree := make([]bool, cfg.G.M())
	for f := 0; f < nf; f++ {
		if pe := parentEdge[f]; pe >= 0 {
			onDualTree[pe] = true
		}
	}
	inside := make(map[int]int, len(fund))
	for f := 0; f < nf; f++ {
		if pe := parentEdge[f]; pe >= 0 {
			inside[int(pe)] = subW[f]
		}
	}
	cands := make([]candidate, 0, len(fund))
	for _, e := range fund {
		var score int
		if onDualTree[e] {
			score = absDiff(2*inside[e], n)
		} else {
			score = absDiff(2*cfg.Weight(e), n)
		}
		cands = append(cands, fundamentalCandidate(cfg, e, score, separator.PhaseDualTree))
	}
	// Virtual-closure backup tier, scored after every fundamental cycle.
	cands = append(cands, virtualPairCandidates(cfg, 3*n)...)
	sep, err := searchCandidates(cfg, cands)
	if err != nil {
		return nil, err
	}
	return finish(cfg, "dual-tree-bfs", sep, ops)
}

// dualTreeOps is the charged profile: the dual spanning structure (a
// Borůvka-style forest over face leaders), one subtree aggregation, the
// ranking range query, and the final path marking.
func dualTreeOps(n int) dist.Ops {
	return dist.SpanningForestOps(n).
		Plus(dist.Ops{TreeAgg: 1}).
		Plus(dist.PAProblemOps()).
		Plus(dist.MarkPathOps(n))
}

func init() { Register(dualTreeEngine{}) }
