package sepengine

import (
	"errors"
	"fmt"
	"math/rand"

	"planardfs/internal/dist"
	"planardfs/internal/randsep"
	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// randomizedEngine folds the sampling-estimation baseline of
// internal/randsep (Ghaffari–Parter style) behind the registry: face
// extents are estimated from a uniform vertex sample instead of the
// deterministic formula, so the engine can fail (no estimate in the
// safety band) or propose an unbalanced face — both surface as a typed
// ErrNoSeparator, never as an unvalidated separator.
//
// Seed threading follows the repo's determinism policy: the RNG is
// derived from Options.Seed via rand.NewSource, never from the
// process-global generator, so a run is reproducible from its arguments.
type randomizedEngine struct{}

func (randomizedEngine) Name() string { return "randomized" }

// Defaults for the sampling knobs when Options leaves them zero.
const (
	defaultSampleRate = 0.25
	defaultMargin     = 0.03
)

func (randomizedEngine) FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error) {
	rate := opts.SampleRate
	if rate == 0 {
		rate = defaultSampleRate
	}
	margin := opts.Margin
	if margin == 0 {
		margin = defaultMargin
	}
	n := cfg.G.N()
	ops := randOps(n)
	charge(cfg, opts, "randomized", ops)

	//planarvet:rng caller-seeded baseline: the seed is threaded from Options.
	rng := rand.New(rand.NewSource(opts.Seed))
	res, err := randsep.Find(cfg, rate, margin, rng)
	if err != nil {
		if errors.Is(err, randsep.ErrNoCandidate) {
			return nil, &NoSeparatorError{
				Engine:  "randomized",
				Samples: res.Samples,
				Reason:  fmt.Sprintf("no face estimate within the safety band (samples=%d)", res.Samples),
			}
		}
		return nil, err
	}
	// The estimate may have passed the band on an unbalanced face; check
	// before finish so the failure stays a typed soft error.
	if 3*separator.VerifyBalance(cfg.G, res.Sep.Path) > 2*n {
		return nil, &NoSeparatorError{
			Engine:  "randomized",
			Samples: res.Samples,
			Reason:  fmt.Sprintf("sampled face is unbalanced (samples=%d, estErr=%d)", res.Samples, res.EstimateErr),
		}
	}
	out, err := finish(cfg, "randomized", res.Sep, ops)
	if err != nil {
		return nil, err
	}
	out.Samples = res.Samples
	return out, nil
}

// randOps is the charged profile: the sampling broadcast plus one
// estimate aggregation per range query and the final path marking.
func randOps(n int) dist.Ops {
	return dist.PAProblemOps().Times(3).Plus(dist.MarkPathOps(n))
}

func init() { Register(randomizedEngine{}) }
