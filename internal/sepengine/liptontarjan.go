package sepengine

import (
	"planardfs/internal/dist"
	"planardfs/internal/separator"
	"planardfs/internal/weights"
)

// liptonTarjanEngine is the classical fundamental-cycle separator of
// Lipton and Tarjan (1979), Lemma 2: in a triangulated planar graph,
// some non-tree edge's fundamental cycle has at most 2/3 of the weight
// strictly inside and outside. The engine ranks fundamental edges by how
// close their face weight sits to n/2 and exact-checks in rank order.
//
// Outside full triangulations the lemma gives no guarantee (a wheel's
// fundamental cycles all strand a long rim arc), so two fallback tiers
// follow: the long-path rule (a T-path of at least n/3 vertices balances
// by counting) and virtual-pair closures through large faces — the same
// ℰ-compatible closure the paper's Phase 5 uses. A typed ErrNoSeparator
// reports instances where no probed candidate balances.
type liptonTarjanEngine struct{}

func (liptonTarjanEngine) Name() string { return "lipton-tarjan" }

func (liptonTarjanEngine) FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error) {
	n := cfg.G.N()
	ops := ltOps(n)
	charge(cfg, opts, "lipton-tarjan", ops)

	fund := cfg.FundamentalEdges()
	if len(fund) == 0 {
		sep, err := searchCandidates(cfg, treeCandidate(cfg))
		if err != nil {
			return nil, err
		}
		return finish(cfg, "lipton-tarjan", sep, ops)
	}
	w := fundWeights(cfg, fund)
	cands := make([]candidate, 0, len(fund))
	for _, e := range fund {
		// |F̄_e| near n/2 is the fundamental cycle the LT argument finds;
		// the distance to n/2 ranks the probe order.
		cands = append(cands, fundamentalCandidate(cfg, e, absDiff(2*w[e], n), separator.PhaseDirect))
	}
	// Tier 2: the long-path rule (Lemma 1, condition 3) — T-paths with at
	// least n/3 vertices balance regardless of weights. Score them after
	// the near-n/2 band but before the virtual tier.
	for _, e := range fund {
		e := e
		cands = append(cands, candidate{
			score: 2 * n,
			phase: separator.PhaseLongPath,
			path: func() []int {
				u, v := cfg.Canonical(e)
				p := cfg.Tree.TPath(u, v)
				if 3*len(p) < n {
					return nil
				}
				return p
			},
		})
	}
	// Tier 3: virtual closures through faces of length >= 4.
	cands = append(cands, virtualPairCandidates(cfg, 3*n)...)
	sep, err := searchCandidates(cfg, cands)
	if err != nil {
		return nil, err
	}
	return finish(cfg, "lipton-tarjan", sep, ops)
}

// ltOps is the charged profile: weights precomputation (the ranking reads
// |F̄_e| for every fundamental edge), one range-query sweep over the
// probe order, and the final path marking.
func ltOps(n int) dist.Ops {
	return dist.WeightsOps(n).
		Plus(dist.PAProblemOps().Times(2)).
		Plus(dist.MarkPathOps(n))
}

func init() { Register(liptonTarjanEngine{}) }
