// Package sepengine is the multi-backend cycle-separator subsystem: a
// registry of separator engines behind one interface, every output
// cross-validated by the engine-agnostic certifier of internal/cert.
//
// An engine consumes a planar configuration (G, ℰ, T) and produces a
// Result: the separator path, the greedy two-coloring of the remaining
// components, the achieved balance, and the charged CONGEST round cost
// under the paper cost model. No engine is trusted: before a Result leaves
// this package its separator is checked by cert.CheckSeparator (simple
// G-path, endpoints matching, components at most 2n/3) and its side masks
// by cert.CheckSeparatorSides. An engine that cannot produce a balanced
// cycle on an instance returns a typed error wrapping ErrNoSeparator — it
// never returns an unvalidated separator.
//
// Engines register themselves in an ordered registry (Register/Get/Names);
// unknown names resolve to an *UnknownEngineError naming the available
// set, so CLIs can surface discovery instead of panicking.
package sepengine

import (
	"errors"
	"fmt"
	"sort"

	"planardfs/internal/cert"
	"planardfs/internal/dist"
	"planardfs/internal/separator"
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// Engine is one separator backend. Implementations must be stateless and
// safe for concurrent use: all per-call state lives on the stack.
type Engine interface {
	// Name is the registry key (kebab-case, e.g. "har-peled-nayyeri").
	Name() string
	// FindCycleSeparator computes a validated cycle separator of the
	// configuration's graph. On failure the error wraps ErrNoSeparator
	// when the engine ran to completion without finding a balanced cycle
	// (a legitimate outcome for incomplete engines), or reports an
	// infrastructure fault otherwise.
	FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error)
}

// Options carry the per-call knobs shared by all engines. The zero value
// is valid: no tracing, deterministic engines use their defaults, and the
// randomized engine derives its generator from Seed 0.
type Options struct {
	// Tracer instruments the run with round-stamped spans (nil disables).
	// Engines charge their primitive invocations on the configuration's
	// tracer exactly like the Theorem 1 driver does.
	Tracer trace.Tracer
	// Seed drives the randomized engine. The seed-threading contract of
	// internal/randsep is preserved: the RNG is always derived from this
	// caller-supplied seed, never from a process-global generator, so a
	// run is reproducible from its arguments alone.
	Seed int64
	// SampleRate is the randomized engine's vertex-sampling rate in
	// (0, 1]; 0 selects the default 0.25.
	SampleRate float64
	// Margin is the randomized engine's safety band margin; 0 selects the
	// default 0.03.
	Margin float64
	// Ablation toggles design elements of the theorem1 engine (ignored by
	// the others).
	Ablation separator.Options
}

// Result is a validated engine output.
type Result struct {
	// Engine is the producing engine's registry name.
	Engine string
	// Sep is the cycle separator: a simple G-path whose removal leaves
	// components of at most 2n/3 vertices. The cycle closes between EndA
	// and EndB through a real edge or an ℰ-compatible virtual edge; as in
	// the proof-labeling scheme, the virtual closure itself has no local
	// witness and is outside the validated scope.
	Sep *separator.Separator
	// Side is the greedy two-coloring of G minus the path: 0 = separator
	// vertex, 1 = side A, 2 = side B (cert.SeparatorSides).
	Side []int
	// Balance is the largest component of G minus the path divided by n;
	// validation guarantees Balance <= 2/3.
	Balance float64
	// CycleLen is the number of vertices on the separator cycle.
	CycleLen int
	// Rounds is the charged CONGEST round cost of the engine under the
	// paper cost model (tree depth standing in for the diameter).
	Rounds int
	// Samples is the number of sampled vertices (randomized engine only;
	// zero for the deterministic engines).
	Samples int
}

// ErrNoSeparator marks a legitimate engine failure: the engine ran to
// completion without finding a balanced cycle separator. Callers fall back
// to another engine (the DFS pipeline falls back to theorem1) or report
// the instance as uncovered.
var ErrNoSeparator = errors.New("sepengine: no balanced cycle separator found")

// NoSeparatorError is the diagnostic form of ErrNoSeparator (errors.Is
// matches the sentinel through Unwrap): it names the failing engine and
// carries its run statistics, so experiment drivers can account for work
// done on failed attempts without bespoke entry points into the engine.
type NoSeparatorError struct {
	// Engine is the failing engine's registry name.
	Engine string
	// Samples is the randomized engine's sample count (zero elsewhere).
	Samples int
	// Reason is a human-readable account of why no cycle was found.
	Reason string
}

func (e *NoSeparatorError) Error() string {
	return fmt.Sprintf("%v: engine %s: %s", ErrNoSeparator, e.Engine, e.Reason)
}

func (e *NoSeparatorError) Unwrap() error { return ErrNoSeparator }

// UnknownEngineError reports a name that resolves to no registered engine,
// carrying the available set for discovery.
type UnknownEngineError struct {
	Name      string
	Available []string
}

func (e *UnknownEngineError) Error() string {
	return fmt.Sprintf("sepengine: unknown engine %q (available: %v)", e.Name, e.Available)
}

// The registry keeps insertion order in a slice next to the lookup map, so
// Names needs no map iteration and the listing is deterministic.
var (
	registryNames []string
	registryByKey = map[string]Engine{}
)

// Register adds an engine to the registry. It panics on duplicate names —
// registration happens only from package init functions.
func Register(e Engine) {
	name := e.Name()
	if _, dup := registryByKey[name]; dup {
		panic(fmt.Sprintf("sepengine: duplicate engine %q", name))
	}
	registryByKey[name] = e
	registryNames = append(registryNames, name)
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := append([]string(nil), registryNames...)
	sort.Strings(out)
	return out
}

// Get resolves an engine by name. The empty name resolves to the default
// engine (theorem1, the paper's constructive algorithm). Unknown names
// return an *UnknownEngineError listing the available set.
func Get(name string) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	e, ok := registryByKey[name]
	if !ok {
		return nil, &UnknownEngineError{Name: name, Available: Names()}
	}
	return e, nil
}

// DefaultEngine is the registry name of the paper's Theorem 1 engine.
const DefaultEngine = "theorem1"

// Find resolves name and runs the engine in one step.
func Find(name string, cfg *weights.Config, opts Options) (*Result, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return e.FindCycleSeparator(cfg, opts)
}

// costModel is the paper cost model of a configuration: the spanning
// tree's depth stands in for the diameter (depth <= D <= 2·depth).
func costModel(cfg *weights.Config) shortcut.CostModel {
	return shortcut.PaperCost{D: cfg.Tree.MaxDepth(), N: cfg.G.N()}
}

// finish validates a candidate separator and assembles the Result: the
// centralized separator oracle must accept the path, and the greedy side
// assignment must pass the side oracle. Validation failures from engine
// output are reported as infrastructure errors — an engine that wants to
// fail softly must check balance before calling finish.
func finish(cfg *weights.Config, name string, sep *separator.Separator, ops dist.Ops) (*Result, error) {
	g := cfg.G
	if err := cert.CheckSeparator(g, sep); err != nil {
		return nil, fmt.Errorf("sepengine: %s produced an invalid separator: %w", name, err)
	}
	side, err := cert.SeparatorSides(g, sep.Path)
	if err != nil {
		return nil, fmt.Errorf("sepengine: %s side assignment: %w", name, err)
	}
	if err := cert.CheckSeparatorSides(g, sep.Path, side); err != nil {
		return nil, fmt.Errorf("sepengine: %s side validation: %w", name, err)
	}
	n := g.N()
	maxComp := separator.VerifyBalance(g, sep.Path)
	return &Result{
		Engine:   name,
		Sep:      sep,
		Side:     side,
		Balance:  float64(maxComp) / float64(n),
		CycleLen: len(sep.Path),
		Rounds:   ops.Rounds(costModel(cfg), 1),
	}, nil
}

// charge records an engine's primitive tally on the configuration's meter
// when tracing is on, mirroring the Theorem 1 driver's charging.
func charge(cfg *weights.Config, opts Options, name string, ops dist.Ops) {
	tr := cfg.Tracer
	if tr == nil {
		tr = opts.Tracer
	}
	if tr == nil || !tr.Enabled() {
		return
	}
	m := dist.NewMeter(tr, costModel(cfg), 1)
	m.Charge(trace.LayerLemma, "sepengine."+name, ops,
		trace.Attr{Key: "n", Val: int64(cfg.G.N())})
}
