package sepengine

import (
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/planar"
	"planardfs/internal/separator"
	"planardfs/internal/shortcut"
	"planardfs/internal/weights"
)

// harPeledEngine is the BFS-level cycle separator in the style of
// Har-Peled and Nayyeri (arXiv 1709.08122): run a BFS from an arbitrary
// face (here the outer face, every boundary vertex a source at level 0),
// pick levels whose removal balances the vertex counts below and above,
// and close each into a short cycle by walking the dual — the boundary of
// the region of faces entirely below the level is an even subgraph whose
// simple-cycle decomposition this engine extracts and probes.
//
// Levels are ranked by the imbalance |below - above| (the first balanced
// level probes first); for each probed level both region variants (faces
// strictly below, faces up to the level) contribute their boundary
// cycles. A typed ErrNoSeparator reports instances where no extracted
// cycle balances on its own (the region boundary can shatter into many
// small cycles none of which separates a third of the graph).
type harPeledEngine struct{}

func (harPeledEngine) Name() string { return "har-peled-nayyeri" }

// hpnMaxLevels caps how many candidate levels get a region extraction
// (each extraction is an O(n + m) sweep).
const hpnMaxLevels = 24

func (harPeledEngine) FindCycleSeparator(cfg *weights.Config, opts Options) (*Result, error) {
	n := cfg.G.N()
	ops := hpnOps(n)
	charge(cfg, opts, "har-peled-nayyeri", ops)

	if len(cfg.FundamentalEdges()) == 0 {
		sep, err := searchCandidates(cfg, treeCandidate(cfg))
		if err != nil {
			return nil, err
		}
		return finish(cfg, "har-peled-nayyeri", sep, ops)
	}

	dual := cfg.Emb.BuildDual()
	fs := dual.Faces
	dist0 := sourceFaceBFS(cfg, fs)

	// Per-face level extent and per-level vertex counts in one sweep.
	faceMax := make([]int, fs.Count())
	maxLevel := 0
	for f := 0; f < fs.Count(); f++ {
		hi := 0
		for _, d := range fs.Cycle(f) {
			v := cfg.Emb.TailOf(int(d))
			if dist0[v] > hi {
				hi = dist0[v]
			}
		}
		faceMax[f] = hi
		if hi > maxLevel {
			maxLevel = hi
		}
	}
	cum := make([]int, maxLevel+2) // cum[l] = #vertices with dist < l
	for v := 0; v < n; v++ {
		cum[dist0[v]+1]++
	}
	for l := 1; l <= maxLevel+1; l++ {
		cum[l] += cum[l-1]
	}

	// Rank levels by |below - above| and extract boundary cycles for the
	// best few.
	levels := make([]int, 0, maxLevel)
	for l := 1; l <= maxLevel; l++ {
		levels = append(levels, l)
	}
	imbalance := func(l int) int { return absDiff(cum[l], n-cum[l+1]) }
	sort.SliceStable(levels, func(i, j int) bool { return imbalance(levels[i]) < imbalance(levels[j]) })
	if len(levels) > hpnMaxLevels {
		levels = levels[:hpnMaxLevels]
	}
	var cands []candidate
	for rank, l := range levels {
		// Region A: faces entirely below the level; region B: faces up to
		// and including it. Their boundaries bracket the level set.
		for variant := 0; variant < 2; variant++ {
			bound := l - 1 + variant
			faceIn := make([]bool, fs.Count())
			any := false
			for f := 0; f < fs.Count(); f++ {
				faceIn[f] = faceMax[f] <= bound
				any = any || faceIn[f]
			}
			if !any {
				continue
			}
			for ci, cyc := range regionBoundaryCycles(cfg, dual, faceIn) {
				cyc := cyc
				cands = append(cands, candidate{
					score: rank*8 + variant*4 + ci,
					phase: separator.PhaseLevelCycle,
					path:  func() []int { return cyc },
				})
			}
		}
	}
	// Degenerate level structures (e.g. a triangulated polygon, where every
	// vertex lies on the source face at level 0) produce no region cycles;
	// virtual closures through large faces back the engine up, scored
	// after every genuine level cycle.
	cands = append(cands, virtualPairCandidates(cfg, 1<<20)...)
	// On maximal triangulations every face is a triangle, so the virtual
	// tier above is empty too; fundamental T-paths scored by face weight
	// are the final tier (their own phase, so the level tier's budget
	// cannot starve them).
	for _, e := range cfg.FundamentalEdges() {
		cands = append(cands, fundamentalCandidate(cfg, e, (1<<21)+absDiff(2*cfg.Weight(e), n), separator.PhaseLongPath))
	}
	sep, err := searchCandidates(cfg, cands)
	if err != nil {
		return nil, err
	}
	return finish(cfg, "har-peled-nayyeri", sep, ops)
}

// sourceFaceBFS computes hop distances from the outer face: every vertex
// on its boundary is a level-0 source.
func sourceFaceBFS(cfg *weights.Config, fs *planar.Faces) []int {
	g := cfg.G
	n := g.N()
	dist0 := make([]int, n)
	for v := range dist0 {
		dist0[v] = -1
	}
	queue := make([]int, 0, n)
	for _, d := range fs.Cycle(cfg.Outer) {
		v := cfg.Emb.TailOf(int(d))
		if dist0[v] < 0 {
			dist0[v] = 0
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist0[w] < 0 {
				dist0[w] = dist0[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist0
}

// regionBoundaryCycles decomposes the boundary of a face region into
// vertex-simple cycles. A boundary edge has exactly one side in the
// region, so around every vertex the boundary edges come in pairs (the
// in/out pattern of incident faces switches an even number of times) and
// the boundary subgraph decomposes into edge-disjoint closed walks; the
// stack-popping walk below splits them into simple cycles.
func regionBoundaryCycles(cfg *weights.Config, dual *planar.Dual, faceIn []bool) [][]int {
	g := cfg.G
	n, m := g.N(), g.M()
	isBoundary := make([]bool, m)
	degree := make([]int32, n+1)
	total := 0
	for e := 0; e < m; e++ {
		if faceIn[dual.Side[e][0]] != faceIn[dual.Side[e][1]] {
			isBoundary[e] = true
			u, v := g.EndpointsOf(e)
			degree[u+1]++
			degree[v+1]++
			total += 2
		}
	}
	if total == 0 {
		return nil
	}
	// CSR adjacency of the boundary subgraph.
	off := degree
	for v := 1; v <= n; v++ {
		off[v] += off[v-1]
	}
	adj := make([]int32, total)
	fill := make([]int32, n)
	for e := 0; e < m; e++ {
		if !isBoundary[e] {
			continue
		}
		u, v := g.EndpointsOf(e)
		adj[off[u]+fill[u]] = int32(e)
		fill[u]++
		adj[off[v]+fill[v]] = int32(e)
		fill[v]++
	}
	used := make([]bool, m)
	cursor := make([]int32, n)
	pos := make([]int, n)
	for v := range pos {
		pos[v] = -1
	}
	var cycles [][]int
	nextEdge := func(v int) int {
		for cursor[v] < off[v+1]-off[v] {
			e := int(adj[off[v]+cursor[v]])
			cursor[v]++
			if !used[e] {
				return e
			}
		}
		return -1
	}
	other := func(e, v int) int {
		u, w := g.EndpointsOf(e)
		if int(u) == v {
			return int(w)
		}
		return int(u)
	}
	for startE := 0; startE < m; startE++ {
		if !isBoundary[startE] || used[startE] {
			continue
		}
		su, _ := g.EndpointsOf(startE)
		start := int(su)
		stack := []int{start}
		pos[start] = 0
		cur := start
		for {
			e := nextEdge(cur)
			if e < 0 {
				// Even degrees guarantee this only happens back at the
				// start with every incident boundary edge consumed.
				for _, v := range stack {
					pos[v] = -1
				}
				break
			}
			used[e] = true
			nxt := other(e, cur)
			if p := pos[nxt]; p >= 0 {
				cyc := append([]int(nil), stack[p:]...)
				if len(cyc) >= 3 {
					cycles = append(cycles, cyc)
				}
				for _, v := range stack[p+1:] {
					pos[v] = -1
				}
				stack = stack[:p+1]
			} else {
				pos[nxt] = len(stack)
				stack = append(stack, nxt)
			}
			cur = stack[len(stack)-1]
		}
	}
	return cycles
}

// hpnOps is the charged profile: one BFS wavefront, the per-level
// counting aggregations, and the final path marking.
func hpnOps(n int) dist.Ops {
	return dist.Ops{Local: shortcut.Log2Ceil(n + 1)}.
		Plus(dist.PAProblemOps().Times(2)).
		Plus(dist.MarkPathOps(n))
}

func init() { Register(harPeledEngine{}) }
