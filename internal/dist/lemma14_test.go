package dist

import (
	"math/rand"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/spanning"
	"planardfs/internal/weights"
)

func TestLCADistributedMatchesTree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in, err := gen.SparsePlanar(60, 0.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		tr, err := spanning.DeepDFSTree(in.G, root)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			u, v := rng.Intn(tr.N()), rng.Intn(tr.N())
			res, err := LCADistributed(cfg, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if res.LCA != tr.LCA(u, v) {
				t.Fatalf("LCA(%d,%d) = %d, want %d", u, v, res.LCA, tr.LCA(u, v))
			}
			if res.Ops.PA == 0 {
				t.Fatal("ops not recorded")
			}
		}
		if _, err := LCADistributed(cfg, -1, 0); err == nil {
			t.Fatal("out-of-range query accepted")
		}
	}
}
