package dist

import (
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// TestTracedLemmaWrappers drives every traced lemma variant on one fixture
// and checks the recorded spans: matching outputs with the plain variants,
// one lemma-layer span per call carrying both charged_rounds and
// budget_rounds, and a clock that only moves when a meter is attached.
func TestTracedLemmaWrappers(t *testing.T) {
	in, err := gen.SparsePlanar(60, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
	tr, err := spanning.DeepDFSTree(in.G, root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	part, err := shortcut.NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder()
	m := NewMeter(rec, shortcut.PaperCost{D: tr.MaxDepth(), N: in.G.N()}, 1)

	order := make([][]int, tr.N())
	for v := 0; v < tr.N(); v++ {
		order[v] = cfg.ChildOrder(v)
	}
	ord := DFSOrderDistributedTraced(tr, order, m)
	plain := DFSOrderDistributed(tr, order)
	for v := range ord.PiL {
		if ord.PiL[v] != plain.PiL[v] {
			t.Fatal("traced DFS order differs from plain")
		}
	}
	u, v := 5, 37
	if _, err := LCADistributedTraced(cfg, u, v, m); err != nil {
		t.Fatal(err)
	}
	MarkPathDistributedTraced(tr, u, v, m)
	if _, err := ReRootDistributedTraced(tr, u, m); err != nil {
		t.Fatal(err)
	}
	if _, err := SpanningForestDistributedTraced(in.G, part, m); err != nil {
		t.Fatal(err)
	}

	if rec.Now() == 0 {
		t.Fatal("round clock did not advance")
	}
	lemmaSpans := 0
	for _, sp := range rec.Spans() {
		if sp.Layer != trace.LayerLemma {
			continue
		}
		lemmaSpans++
		var charged, budget bool
		for _, a := range sp.Attrs {
			switch a.Key {
			case "charged_rounds":
				charged = a.Val > 0
			case "budget_rounds":
				budget = a.Val > 0
			}
		}
		if !charged || !budget {
			t.Fatalf("span %q missing charged/budget rounds: %+v", sp.Name, sp.Attrs)
		}
	}
	if lemmaSpans != 5 {
		t.Fatalf("lemma spans = %d, want 5", lemmaSpans)
	}

	// A nil meter is valid and records nothing.
	before := len(rec.Spans())
	var off *Meter
	DFSOrderDistributedTraced(tr, order, off)
	if n := len(rec.Spans()); n != before {
		t.Fatalf("nil meter recorded spans: %d -> %d", before, n)
	}
}
