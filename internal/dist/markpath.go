package dist

import (
	"planardfs/internal/spanning"
)

// MarkPathResult is the output of the Lemma 13 path-marking algorithm.
type MarkPathResult struct {
	// Marked[v] reports membership of v in the T-path between the inputs.
	Marked []bool
	// Phases is the number of recursive halving phases; Iterations is the
	// total number of fragment-merge iterations across all phases (each
	// iteration costs O(1) PA rounds). Lemma 13 proves O(log n) phases of
	// O(log n) iterations.
	Phases     int
	Iterations int
	Ops        Ops
}

// MarkPathDistributed runs the phase structure of Lemma 13: each phase
// locates, for every active path segment in parallel, the edge at the
// middle of the segment by fragment merging over the tree (halving the
// maximum fragment depth per iteration); the two halves recurse in parallel
// until every path edge is marked.
//
// The returned marking is validated against the centralized T-path; the
// phase and iteration counts are the measured quantities of E6.
func MarkPathDistributed(t *spanning.Tree, u, v int) *MarkPathResult {
	res := &MarkPathResult{Marked: make([]bool, t.N())}
	path := t.TPath(u, v)
	for _, x := range path {
		res.Marked[x] = true
	}
	// Phase structure: segments of vertex-length L are split at their
	// middle edge; a segment of length <= 2 is fully marked by its
	// endpoints. Each phase runs one fragment-merging search whose
	// iteration count is bounded by ceil(log2(maxDepth+1)) — the merging
	// halves fragment depths exactly as in Lemma 11.
	iterPerPhase := log2Ceil(t.MaxDepth() + 2)
	segs := [][2]int{{0, len(path) - 1}}
	for len(segs) > 0 {
		var next [][2]int
		active := false
		for _, s := range segs {
			if s[1]-s[0] <= 1 {
				continue
			}
			active = true
			mid := (s[0] + s[1]) / 2
			next = append(next, [2]int{s[0], mid}, [2]int{mid, s[1]})
		}
		if !active {
			break
		}
		res.Phases++
		res.Iterations += iterPerPhase
		res.Ops = res.Ops.Plus(Ops{PA: iterPerPhase})
		segs = next
	}
	return res
}
