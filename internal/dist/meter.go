package dist

import (
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
)

// Meter bridges the round-accounting layer and the tracing subsystem: it
// converts an Ops tally into round-clock advances under a cost model and
// records the invocation as a span carrying its charged cost, with one
// child span per communication primitive on the primitive layer.
//
// A nil *Meter is valid and records nothing, so call sites thread it
// through unconditionally.
type Meter struct {
	Tr trace.Tracer
	CM shortcut.CostModel
	K  int // concurrent parts charged per primitive (>= 1)
}

// NewMeter returns a meter over tr, or nil when tr is nil or disabled.
func NewMeter(tr trace.Tracer, cm shortcut.CostModel, k int) *Meter {
	if tr == nil || !tr.Enabled() {
		return nil
	}
	if k < 1 {
		k = 1
	}
	return &Meter{Tr: tr, CM: cm, K: k}
}

// On reports whether the meter records anything.
func (m *Meter) On() bool { return m != nil && m.Tr != nil && m.Tr.Enabled() }

// Tracer returns the underlying tracer, or trace.Nop.
func (m *Meter) Tracer() trace.Tracer {
	if !m.On() {
		return trace.Nop
	}
	return m.Tr
}

// Start opens a span on the layer without advancing the clock; the caller
// owns ending it. Safe on a nil meter.
func (m *Meter) Start(layer trace.Layer, name string) trace.Span {
	return m.Tracer().StartSpan(layer, name)
}

// Charge records one completed subroutine invocation: a span on the given
// layer covering the rounds the cost model charges for ops, tiled by one
// child span per primitive kind (part-wise aggregation, tree aggregation,
// local exchange), each advancing the round clock by its share. Extra
// attributes (typically measured quantities like phase counts) attach to
// the subroutine span, so every span carries charged cost and measured
// structure side by side.
func (m *Meter) Charge(layer trace.Layer, name string, ops Ops, attrs ...trace.Attr) {
	if !m.On() {
		return
	}
	tr := m.Tr
	sp := tr.StartSpan(layer, name)
	prim := func(pname string, count int, op shortcut.Op) {
		if count == 0 {
			return
		}
		rounds := int64(count * m.CM.Cost(op, m.K))
		ps := tr.StartSpan(trace.LayerPrimitive, pname)
		ps.SetAttr("count", int64(count))
		ps.SetAttr("rounds", rounds)
		tr.Advance(rounds)
		ps.End()
		tr.Count("ops."+pname, int64(count))
		tr.Count("rounds."+pname, rounds)
	}
	prim("pa", ops.PA, shortcut.OpPA)
	prim("treeagg", ops.TreeAgg, shortcut.OpTreeAgg)
	prim("local", ops.Local, shortcut.OpLocal)
	charged := int64(ops.Rounds(m.CM, m.K))
	sp.SetAttr("charged_rounds", charged)
	for _, a := range attrs {
		sp.SetAttr(a.Key, a.Val)
	}
	sp.End()
	tr.Count("rounds.charged", charged)
	tr.Observe("rounds.per_invocation", charged)
}
