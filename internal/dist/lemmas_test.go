package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
)

// stripePart partitions a grid into vertical stripes.
func stripePart(t *testing.T, w, h, k int) (*graph.Graph, *shortcut.Partition) {
	t.Helper()
	in, err := gen.Grid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			partOf[y*w+x] = x * k / w
		}
	}
	p, err := shortcut.NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	return in.G, p
}

func TestSpanningForestDistributed(t *testing.T) {
	g, part := stripePart(t, 12, 8, 4)
	res, err := SpanningForestDistributed(g, part)
	if err != nil {
		t.Fatal(err)
	}
	// Every part tree spans exactly its part, rooted at the min vertex.
	for i, vs := range part.Parts {
		root := vs[0]
		for _, v := range vs {
			if v < root {
				root = v
			}
		}
		for _, v := range vs {
			if res.Root[v] != root {
				t.Fatalf("part %d: vertex %d has root %d, want %d", i, v, res.Root[v], root)
			}
			if v == root {
				if res.Parent[v] != -1 {
					t.Fatalf("root %d has parent %d", v, res.Parent[v])
				}
				continue
			}
			p := res.Parent[v]
			if part.PartOf[p] != part.PartOf[v] {
				t.Fatalf("tree edge {%d,%d} crosses parts", v, p)
			}
			if !g.HasEdge(v, p) {
				t.Fatalf("tree edge {%d,%d} is not a graph edge", v, p)
			}
		}
	}
	// Phase bound: log of the largest part.
	maxPart := 0
	for _, vs := range part.Parts {
		if len(vs) > maxPart {
			maxPart = len(vs)
		}
	}
	if res.Phases > shortcut.Log2Ceil(maxPart)+2 {
		t.Fatalf("phases %d exceed log bound for part size %d", res.Phases, maxPart)
	}
	if res.Ops.PA == 0 {
		t.Fatal("ops not recorded")
	}
}

func TestSpanningForestSinglePart(t *testing.T) {
	in, err := gen.StackedTriangulation(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := shortcut.NewPartition(make([]int, 50))
	res, err := SpanningForestDistributed(in.G, part)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spanning.NewFromParents(0, res.Parent); err != nil {
		t.Fatalf("not a valid tree: %v", err)
	}
}

func TestLemma10Problems(t *testing.T) {
	g, part := stripePart(t, 9, 4, 3)
	_ = g
	n := len(part.PartOf)
	value := make([]int, n)
	for v := range value {
		value[v] = (v*7 + 3) % 23
	}
	mins, ops, err := MinProblem(part, value)
	if err != nil || ops.PA == 0 {
		t.Fatalf("MinProblem: %v %+v", err, ops)
	}
	maxs, _, err := MaxProblem(part, value)
	if err != nil {
		t.Fatal(err)
	}
	sums, _, err := SumSubsetProblem(part, value)
	if err != nil {
		t.Fatal(err)
	}
	for i, vs := range part.Parts {
		wantMin, wantMax, wantSum := vs[0], vs[0], 0
		for _, v := range vs {
			if value[v] < value[wantMin] || (value[v] == value[wantMin] && v < wantMin) {
				wantMin = v
			}
			if value[v] > value[wantMax] || (value[v] == value[wantMax] && v < wantMax) {
				wantMax = v
			}
			wantSum += value[v]
		}
		if mins[i] != wantMin || maxs[i] != wantMax || sums[i] != wantSum {
			t.Fatalf("part %d: min=%d/%d max=%d/%d sum=%d/%d",
				i, mins[i], wantMin, maxs[i], wantMax, sums[i], wantSum)
		}
	}
	// Range problem.
	winners, _, err := RangeProblem(part, value, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range winners {
		if w >= 0 && (value[w] < 5 || value[w] > 8) {
			t.Fatalf("part %d: winner %d out of range", i, w)
		}
		// If any part node is in range, a winner must be found.
		has := false
		for _, v := range part.Parts[i] {
			if value[v] >= 5 && value[v] <= 8 {
				has = true
			}
		}
		if has != (w >= 0) {
			t.Fatalf("part %d: range detection wrong", i)
		}
	}
	// Length validation errors.
	if _, _, err := MinProblem(part, value[:3]); err == nil {
		t.Fatal("short values accepted")
	}
	if _, _, err := SumSubsetProblem(part, value[:3]); err == nil {
		t.Fatal("short values accepted")
	}
	if _, _, err := RangeProblem(part, value[:3], 0, 1); err == nil {
		t.Fatal("short values accepted")
	}
}

func TestAncestorProblemAndSumTree(t *testing.T) {
	tree, _ := randomTreeWithOrder(5, 60)
	v0 := 17 % tree.N()
	isAnc, isDesc, ops := AncestorProblem(tree, v0)
	if ops.TreeAgg != 2 {
		t.Fatalf("ops %+v", ops)
	}
	for v := 0; v < tree.N(); v++ {
		if isAnc[v] != tree.IsAncestor(v0, v) || isDesc[v] != tree.IsAncestor(v, v0) {
			t.Fatalf("vertex %d: ancestor flags wrong", v)
		}
	}
	sizes, _ := SumTreeProblem(tree)
	for v := 0; v < tree.N(); v++ {
		if sizes[v] != tree.SubtreeSize(v) {
			t.Fatal("SumTreeProblem wrong")
		}
	}
}

// TestReRootDistributedMatchesCentral is the Lemma 19 validation (with the
// corrected off-path depth rule).
func TestReRootDistributedMatchesCentral(t *testing.T) {
	f := func(seed int64, sz uint16, pick uint16) bool {
		n := 2 + int(sz)%200
		tree, _ := randomTreeWithOrder(seed, n)
		newRoot := int(pick) % n
		res, err := ReRootDistributed(tree, newRoot)
		if err != nil {
			return false
		}
		want, werr := tree.ReRoot(newRoot)
		if werr != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if res.Parent[v] != want.Parent[v] || res.Depth[v] != want.Depth[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReRootDistributedRange(t *testing.T) {
	tree, _ := randomTreeWithOrder(1, 10)
	if _, err := ReRootDistributed(tree, 99); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

// Property: the spanning forest is deterministic across runs.
func TestSpanningForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in, err := gen.SparsePlanar(40, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	// Two parts carved by a BFS: first 20 visited vs rest (connected? BFS
	// prefix is connected; complement may not be — use prefix + all rest in
	// one part only if connected, else single part).
	res := in.G.BFS(0)
	for i, v := range res.Order {
		if i < 20 {
			partOf[v] = 0
		} else {
			partOf[v] = 1
		}
	}
	part, err := shortcut.NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(in.G); err != nil {
		// Fall back to a single part when the complement is disconnected.
		part, _ = shortcut.NewPartition(make([]int, in.G.N()))
	}
	a, err := SpanningForestDistributed(in.G, part)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpanningForestDistributed(in.G, part)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parent {
		if a.Parent[v] != b.Parent[v] {
			t.Fatal("nondeterministic forest")
		}
	}
	_ = rng
}
