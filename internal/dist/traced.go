package dist

import (
	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// Traced variants of the lemma subroutines: each runs the plain
// implementation and records a lemma-layer span carrying both the measured
// primitive tally of the run (charged_rounds) and the paper's per-lemma
// budget under the same cost model (budget_rounds), so a trace shows where
// an execution sits relative to its proven bound.

// BudgetRounds converts an Ops tally under the meter's cost model (0 on a
// disabled meter).
func (m *Meter) BudgetRounds(ops Ops) int64 {
	if !m.On() {
		return 0
	}
	return int64(ops.Rounds(m.CM, m.K))
}

// DFSOrderDistributedTraced is DFSOrderDistributed (Lemma 11) with a span.
func DFSOrderDistributedTraced(t *spanning.Tree, childOrder [][]int, m *Meter) *DFSOrderResult {
	res := DFSOrderDistributed(t, childOrder)
	m.Charge(trace.LayerLemma, "lemma11.dfs-order", res.Ops,
		trace.Attr{Key: "phases", Val: int64(res.Phases)},
		trace.Attr{Key: "budget_rounds", Val: m.BudgetRounds(DFSOrderOps(t.N()))})
	return res
}

// MarkPathDistributedTraced is MarkPathDistributed (Lemma 13) with a span.
func MarkPathDistributedTraced(t *spanning.Tree, u, v int, m *Meter) *MarkPathResult {
	res := MarkPathDistributed(t, u, v)
	m.Charge(trace.LayerLemma, "lemma13.mark-path", res.Ops,
		trace.Attr{Key: "phases", Val: int64(res.Phases)},
		trace.Attr{Key: "iterations", Val: int64(res.Iterations)},
		trace.Attr{Key: "budget_rounds", Val: m.BudgetRounds(MarkPathOps(t.N()))})
	return res
}

// LCADistributedTraced is LCADistributed (Lemma 14) with a span.
func LCADistributedTraced(cfg *weights.Config, u, v int, m *Meter) (*LCAResult, error) {
	res, err := LCADistributed(cfg, u, v)
	if err != nil {
		return nil, err
	}
	m.Charge(trace.LayerLemma, "lemma14.lca", res.Ops,
		trace.Attr{Key: "lca", Val: int64(res.LCA)},
		trace.Attr{Key: "budget_rounds", Val: m.BudgetRounds(LCAOps(cfg.G.N()))})
	return res, nil
}

// ReRootDistributedTraced is ReRootDistributed (Lemma 19) with a span.
func ReRootDistributedTraced(t *spanning.Tree, newRoot int, m *Meter) (*ReRootResult, error) {
	res, err := ReRootDistributed(t, newRoot)
	if err != nil {
		return nil, err
	}
	m.Charge(trace.LayerLemma, "lemma19.re-root", res.Ops,
		trace.Attr{Key: "budget_rounds", Val: m.BudgetRounds(ReRootOps(t.N()))})
	return res, nil
}

// SpanningForestDistributedTraced is SpanningForestDistributed (Lemma 9)
// with a span.
func SpanningForestDistributedTraced(g *graph.Graph, part *shortcut.Partition, m *Meter) (*SpanningForestResult, error) {
	res, err := SpanningForestDistributed(g, part)
	if err != nil {
		return nil, err
	}
	m.Charge(trace.LayerLemma, "lemma9.spanning-forest", res.Ops,
		trace.Attr{Key: "phases", Val: int64(res.Phases)},
		trace.Attr{Key: "budget_rounds", Val: m.BudgetRounds(SpanningForestOps(g.N()))})
	return res, nil
}
