package dist

import (
	"fmt"

	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
)

// The Lemma 10 problem suite: part-wise aggregation applications in which
// every node of a part learns a distinguished node ID or value. Each costs
// a constant number of PA / tree-aggregation invocations (PAProblemOps).

// MinProblem returns, per part, the ID of a node attaining the minimum
// value (smallest ID among ties), delivered to every node of the part.
func MinProblem(part *shortcut.Partition, value []int) (winner []int, ops Ops, err error) {
	return extremeProblem(part, value, true)
}

// MaxProblem returns, per part, the ID of a node attaining the maximum
// value (smallest ID among ties).
func MaxProblem(part *shortcut.Partition, value []int) (winner []int, ops Ops, err error) {
	return extremeProblem(part, value, false)
}

func extremeProblem(part *shortcut.Partition, value []int, min bool) ([]int, Ops, error) {
	if len(value) != len(part.PartOf) {
		return nil, Ops{}, fmt.Errorf("dist: %d values for %d vertices", len(value), len(part.PartOf))
	}
	winner := make([]int, part.K())
	for i, vs := range part.Parts {
		best := vs[0]
		for _, v := range vs[1:] {
			better := value[v] < value[best] || (value[v] == value[best] && v < best)
			if !min {
				better = value[v] > value[best] || (value[v] == value[best] && v < best)
			}
			if better {
				best = v
			}
		}
		winner[i] = best
	}
	return winner, PAProblemOps().Times(2), nil
}

// SumSubsetProblem returns, per part, the sum of the values (in particular
// with all-ones inputs, the part sizes n_i).
func SumSubsetProblem(part *shortcut.Partition, value []int) ([]int, Ops, error) {
	if len(value) != len(part.PartOf) {
		return nil, Ops{}, fmt.Errorf("dist: %d values for %d vertices", len(value), len(part.PartOf))
	}
	sums := make([]int, part.K())
	for v, x := range value {
		sums[part.PartOf[v]] += x
	}
	return sums, PAProblemOps(), nil
}

// RangeProblem returns, per part, the ID of some node whose value lies in
// [lo, hi], or -1 if the part has none.
func RangeProblem(part *shortcut.Partition, value []int, lo, hi int) ([]int, Ops, error) {
	if len(value) != len(part.PartOf) {
		return nil, Ops{}, fmt.Errorf("dist: %d values for %d vertices", len(value), len(part.PartOf))
	}
	winner := make([]int, part.K())
	for i := range winner {
		winner[i] = -1
	}
	for i, vs := range part.Parts {
		for _, v := range vs {
			if value[v] >= lo && value[v] <= hi {
				winner[i] = v
				break
			}
		}
	}
	return winner, PAProblemOps().Times(2), nil
}

// SumTreeProblem returns, for every node, the number of nodes in its
// subtree of the given tree (a descendant sum, Prop. 5).
func SumTreeProblem(t *spanning.Tree) ([]int, Ops) {
	out := make([]int, t.N())
	for v := range out {
		out[v] = t.SubtreeSize(v)
	}
	return out, Ops{TreeAgg: 1}
}

// AncestorProblem returns, for every node, whether the distinguished node
// v0 is its ancestor and whether it is its descendant in the tree (both
// true at v0 itself), via one descendant-sum and one ancestor-sum.
func AncestorProblem(t *spanning.Tree, v0 int) (isAnc, isDesc []bool, ops Ops) {
	n := t.N()
	isAnc = make([]bool, n)
	isDesc = make([]bool, n)
	for v := 0; v < n; v++ {
		isAnc[v] = t.IsAncestor(v0, v)
		isDesc[v] = t.IsAncestor(v, v0)
	}
	return isAnc, isDesc, Ops{TreeAgg: 2}
}
