package dist

import (
	"fmt"
	"sort"

	"planardfs/internal/graph"
	"planardfs/internal/shortcut"
)

// SpanningForestResult is the output of the per-part Borůvka simulation.
type SpanningForestResult struct {
	// Parent[v] is v's parent in its part's spanning tree (-1 at the part
	// root, the minimum-ID vertex of the part).
	Parent []int
	// Root[v] is the root of v's part tree.
	Root []int
	// Phases is the number of Borůvka merge iterations (O(log n) by
	// fragment halving); each costs O(1) PA rounds over shortcuts
	// (Lemma 9 / Proposition 3).
	Phases int
	Ops    Ops
}

// SpanningForestDistributed simulates Lemma 9: Borůvka's algorithm with the
// 0/1 weight function that only merges fragments within the same part
// (weight-0 edges), producing a spanning tree of every part of the
// partition in O(log n) merge phases.
//
// Fragments pick their minimum outgoing weight-0 edge by (min endpoint ID,
// min neighbour ID) — a deterministic MOE — and merge along it; each phase
// is one part-wise aggregation plus one local exchange in the distributed
// accounting.
func SpanningForestDistributed(g *graph.Graph, part *shortcut.Partition) (*SpanningForestResult, error) {
	n := g.N()
	if len(part.PartOf) != n {
		return nil, fmt.Errorf("dist: partition over %d vertices, graph has %d", len(part.PartOf), n)
	}
	res := &SpanningForestResult{
		Parent: make([]int, n),
		Root:   make([]int, n),
	}
	// Fragment structure via union-find, with explicit chosen edges so the
	// final forest can be rooted.
	uf := graph.NewUnionFind(n)
	adj := make([][]int, n) // chosen forest adjacency
	for {
		// Each fragment's minimum outgoing intra-part edge.
		type moe struct{ u, v int }
		best := map[int]moe{}
		for _, e := range g.Edges() {
			if part.PartOf[e.U] != part.PartOf[e.V] {
				continue // weight-1 edges never chosen (Lemma 9 stop rule)
			}
			if uf.Same(e.U, e.V) {
				continue
			}
			for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
				f := uf.Find(dir[0])
				m, ok := best[f]
				if !ok || dir[0] < m.u || (dir[0] == m.u && dir[1] < m.v) {
					best[f] = moe{dir[0], dir[1]}
				}
			}
		}
		if len(best) == 0 {
			break
		}
		res.Phases++
		res.Ops = res.Ops.Plus(Ops{PA: 3, Local: 1})
		// Merge in ascending fragment-representative order: the chosen edge
		// set is order-invariant, but the adjacency append order (and hence
		// downstream traversal layout) must not depend on map iteration.
		frags := make([]int, 0, len(best))
		for f := range best { //planarvet:orderinvariant keys are sorted before use
			frags = append(frags, f)
		}
		sort.Ints(frags)
		for _, f := range frags {
			m := best[f]
			if uf.Union(m.u, m.v) {
				adj[m.u] = append(adj[m.u], m.v)
				adj[m.v] = append(adj[m.v], m.u)
			}
		}
	}
	// Root every part tree at its minimum vertex.
	res.Ops = res.Ops.Plus(PAProblemOps()) // per-part min broadcast
	rootOf := make([]int, part.K())
	for i := range rootOf {
		rootOf[i] = -1
	}
	for v := 0; v < n; v++ {
		p := part.PartOf[v]
		if rootOf[p] < 0 || v < rootOf[p] {
			rootOf[p] = v
		}
	}
	for i := range res.Parent {
		res.Parent[i] = -2
	}
	for p, r := range rootOf {
		res.Parent[r] = -1
		queue := []int{r}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			res.Root[v] = r
			for _, w := range adj[v] {
				if res.Parent[w] == -2 {
					res.Parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		_ = p
	}
	for v := 0; v < n; v++ {
		if res.Parent[v] == -2 {
			return nil, fmt.Errorf("dist: vertex %d not spanned (disconnected part?)", v)
		}
	}
	return res, nil
}
