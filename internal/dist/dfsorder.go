package dist

import (
	"planardfs/internal/spanning"
)

// DFSOrderResult is the output of the fragment-merging DFS-order algorithm.
type DFSOrderResult struct {
	PiL, PiR []int
	// Phases is the number of fragment-merge phases executed; Lemma 11
	// proves O(log n) phases, each costing O(1) PA rounds.
	Phases int
	Ops    Ops
}

// DFSOrderDistributed runs the fragment-merging algorithm of Lemma 11 on a
// tree with embedding-ordered children: every vertex starts as its own
// fragment knowing only its subtree size; fragments at odd depth of the
// fragment tree merge into their parent fragment each phase, with the host
// assigning the joining fragment its base position from sibling subtree
// sizes; after O(log depth(T)) phases a single fragment remains and every
// vertex knows its LEFT and RIGHT order positions.
//
// The result is validated against the centralized orders by the test suite;
// the phase count is the experimentally measured quantity of E5.
func DFSOrderDistributed(t *spanning.Tree, childOrder [][]int) *DFSOrderResult {
	n := t.N()
	res := &DFSOrderResult{
		PiL: make([]int, n),
		PiR: make([]int, n),
	}
	if n == 1 {
		res.Ops = Ops{TreeAgg: 1}
		return res
	}

	// Subtree sizes are known from one descendant-sum (Prop. 5).
	res.Ops = res.Ops.Plus(Ops{TreeAgg: 1})

	// offsetX[v] is v's position relative to its fragment root in the
	// respective order (final positions once the root fragment absorbs
	// everything).
	fragOf := make([]int, n) // fragment root of each vertex
	members := make([][]int, n)
	for v := 0; v < n; v++ {
		fragOf[v] = v
		members[v] = []int{v}
	}
	offL := make([]int, n)
	offR := make([]int, n)

	// base positions of a child c among its siblings: 1 + sum of subtree
	// sizes of siblings visited earlier.
	baseL := make([]int, n)
	baseR := make([]int, n)
	for v := 0; v < n; v++ {
		cs := childOrder[v]
		// RIGHT order visits ascending rotation position.
		acc := 1
		for _, c := range cs {
			baseR[c] = acc
			acc += t.SubtreeSize(c)
		}
		// LEFT order visits descending rotation position.
		acc = 1
		for i := len(cs) - 1; i >= 0; i-- {
			baseL[cs[i]] = acc
			acc += t.SubtreeSize(cs[i])
		}
	}

	for {
		roots := []int{}
		for v := 0; v < n; v++ {
			if fragOf[v] == v && len(members[v]) > 0 {
				roots = append(roots, v)
			}
		}
		if len(roots) == 1 {
			break
		}
		res.Phases++
		res.Ops = res.Ops.Plus(Ops{PA: 2, Local: 1}) // per-phase broadcasts

		// Fragment-tree depth via the parents of fragment roots.
		fragDepth := make(map[int]int, len(roots))
		var depthOf func(r int) int
		depthOf = func(r int) int {
			if d, ok := fragDepth[r]; ok {
				return d
			}
			if r == t.Root {
				fragDepth[r] = 0
				return 0
			}
			d := depthOf(fragOf[t.Parent[r]]) + 1
			fragDepth[r] = d
			return d
		}
		for _, r := range roots {
			depthOf(r)
		}

		// Odd-depth fragments merge into their parent fragment.
		for _, r := range roots {
			if fragDepth[r]%2 == 0 {
				continue
			}
			host := fragOf[t.Parent[r]]
			// The joining root's base within the host: its parent's offset
			// plus its sibling base.
			dL := offL[t.Parent[r]] + baseL[r]
			dR := offR[t.Parent[r]] + baseR[r]
			for _, v := range members[r] {
				offL[v] += dL
				offR[v] += dR
				fragOf[v] = host
			}
			members[host] = append(members[host], members[r]...)
			members[r] = nil
		}
	}
	copy(res.PiL, offL)
	copy(res.PiR, offR)
	return res
}
