// Package dist accounts CONGEST rounds for the paper's algorithms and
// provides phase-faithful implementations of the distributed subroutines of
// Sections 5.2 and 6.1 (Lemmas 10-19).
//
// Every algorithm in this repository is executed as local computation plus
// invocations of three communication primitives, whose per-invocation round
// cost is given by a shortcut.CostModel:
//
//   - OpPA: one part-wise aggregation or part-wide broadcast (Prop. 4);
//   - OpTreeAgg: one ancestor/descendant sum over per-part spanning trees
//     (Prop. 5);
//   - OpLocal: one round of exchange with direct neighbours.
//
// The Ops counters of a run, composed with a cost model (the paper's
// charged Õ(D) bound or the measured pipelined O(D+k) bound), give the
// total simulated round count reported by the experiments.
package dist

import (
	"planardfs/internal/shortcut"
)

// Ops tallies invocations of the communication primitives.
type Ops struct {
	PA      int // part-wise aggregations / broadcasts
	TreeAgg int // ancestor/descendant sums
	Local   int // direct neighbour exchange rounds
}

// Plus returns the sum of two tallies.
func (o Ops) Plus(p Ops) Ops {
	return Ops{PA: o.PA + p.PA, TreeAgg: o.TreeAgg + p.TreeAgg, Local: o.Local + p.Local}
}

// Times returns the tally scaled by a repetition count.
func (o Ops) Times(k int) Ops {
	return Ops{PA: o.PA * k, TreeAgg: o.TreeAgg * k, Local: o.Local * k}
}

// Rounds converts the tally into rounds under the cost model, with k
// concurrent parts.
func (o Ops) Rounds(cm shortcut.CostModel, k int) int {
	return o.PA*cm.Cost(shortcut.OpPA, k) +
		o.TreeAgg*cm.Cost(shortcut.OpTreeAgg, k) +
		o.Local*cm.Cost(shortcut.OpLocal, k)
}

// log2Ceil is shortcut.Log2Ceil re-exported for internal use.
func log2Ceil(x int) int { return shortcut.Log2Ceil(x) }

// Per-lemma operation counts. Each reflects the phase structure proven in
// the paper; constants are the number of primitive invocations per phase in
// our driver.

// SpanningForestOps is Lemma 9: Borůvka over low-congestion shortcuts,
// O(log n) merge iterations, each a constant number of PA calls.
func SpanningForestOps(n int) Ops {
	return Ops{PA: 3 * log2Ceil(n+1), Local: log2Ceil(n + 1)}
}

// PAProblemOps is one problem of Lemma 10 (MIN/MAX/SUM/RANGE/ANCESTOR/
// DESCENDANT): a constant number of PA and tree-aggregation calls.
func PAProblemOps() Ops { return Ops{PA: 2, TreeAgg: 1} }

// DFSOrderOps is Lemma 11: ceil(log2 n) fragment-merge phases, each a
// constant number of PA broadcasts plus one local exchange, after one
// subtree-size tree aggregation.
func DFSOrderOps(n int) Ops {
	l := log2Ceil(n + 1)
	return Ops{PA: 2 * l, TreeAgg: 1, Local: l}
}

// WeightsOps is Lemma 12: the DFS orders plus one local exchange per
// fundamental edge endpoint pair.
func WeightsOps(n int) Ops {
	return DFSOrderOps(n).Plus(Ops{Local: 2})
}

// MarkPathOps is Lemma 13: O(log n) phases of O(log n) fragment-merge
// iterations, each one PA broadcast.
func MarkPathOps(n int) Ops {
	l := log2Ceil(n + 1)
	return Ops{PA: l * l, Local: l}
}

// LCAOps is Lemma 14: DFS orders plus a constant number of PA problems.
func LCAOps(n int) Ops {
	return DFSOrderOps(n).Plus(PAProblemOps().Times(2))
}

// DetectFaceOps is Lemma 15: mark the border path, broadcast the endpoint
// intervals, decide locally.
func DetectFaceOps(n int) Ops {
	return MarkPathOps(n).Plus(Ops{PA: 4, Local: 1})
}

// HiddenOps is Lemma 16: detect the face, broadcast the target leaf's
// position, one local exchange.
func HiddenOps(n int) Ops {
	return DetectFaceOps(n).Plus(PAProblemOps().Times(2)).Plus(Ops{Local: 1})
}

// NotContainedOps is Lemma 17 (and 18): a constant number of MIN/MAX and
// ancestor problems plus local exchanges.
func NotContainedOps(n int) Ops {
	return PAProblemOps().Times(4).Plus(Ops{Local: 2})
}

// ReRootOps is Lemma 19: ancestor/descendant problems plus one broadcast.
func ReRootOps(n int) Ops {
	return PAProblemOps().Times(2).Plus(Ops{PA: 1})
}

// SeparatorOps is the Theorem 1 driver (Section 5.3): precomputation
// (embedding is charged one PA surrogate; per-part spanning forests; DFS
// orders; weights; subtree sizes) plus the per-phase subroutine budget.
// All parts run in parallel, so this is charged once per separator phase
// regardless of the number of parts.
func SeparatorOps(n int) Ops {
	ops := Ops{PA: 1}                       // planar embedding (Prop. 1, charged)
	ops = ops.Plus(SpanningForestOps(n))    // Lemma 9
	ops = ops.Plus(WeightsOps(n))           // Lemmas 11-12
	ops = ops.Plus(PAProblemOps())          // subtree sizes / part sizes
	ops = ops.Plus(PAProblemOps().Times(3)) // phases 2-3 range queries
	ops = ops.Plus(NotContainedOps(n))      // phase 4/5 edge selection
	ops = ops.Plus(DetectFaceOps(n))        // phase 4 face detection
	ops = ops.Plus(PAProblemOps())          // augmentation range query
	ops = ops.Plus(HiddenOps(n))            // phase 4.1 hidden problem
	ops = ops.Plus(NotContainedOps(n))      // hidden fallback edge selection
	ops = ops.Plus(MarkPathOps(n))          // final separator marking
	return ops
}

// JoinSubPhaseOps is one sub-phase of Lemma 2: per-component spanning
// forest, re-rooting, leaf/LCA discovery, path marking and attachment.
func JoinSubPhaseOps(n int) Ops {
	ops := SpanningForestOps(n)
	ops = ops.Plus(ReRootOps(n))
	ops = ops.Plus(LCAOps(n))
	ops = ops.Plus(PAProblemOps().Times(2))
	ops = ops.Plus(MarkPathOps(n)) // mark and attach the chosen path
	return ops
}

// DFSBuildOps is the Theorem 2 driver: per recursion phase, one
// partition-parallel separator computation plus the join sub-phases (the
// joins of distinct components run in parallel, so the deepest join
// dominates).
func DFSBuildOps(n, phases, maxJoinSubPhases int) Ops {
	perPhase := SeparatorOps(n).Plus(JoinSubPhaseOps(n).Times(maxJoinSubPhases))
	return perPhase.Times(phases)
}

// AwerbuchRounds is the baseline of [2]: the token crosses every tree edge
// twice, one round per move.
func AwerbuchRounds(n int) int { return 2*(n-1) + 1 }
