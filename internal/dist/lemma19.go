package dist

import (
	"fmt"

	"planardfs/internal/spanning"
)

// ReRootResult is the output of the distributed re-rooting of Lemma 19.
type ReRootResult struct {
	Parent []int
	Depth  []int
	Ops    Ops
}

// ReRootDistributed re-roots a tree at newRoot following Lemma 19's
// node-local rule: after an ANCESTOR/DESCENDANT problem for newRoot and a
// broadcast of its original depth,
//
//   - descendants of newRoot keep their parent and subtract its depth;
//   - ancestors of newRoot flip their parent pointer to the unique child
//     towards newRoot and mirror their depth;
//   - all other nodes keep their parent and add newRoot's depth.
//
// The third rule, as stated in the paper, is wrong for nodes hanging off a
// strict ancestor a of newRoot: their distance to newRoot is
// depth(v) + depth(newRoot) − 2·depth(LCA(v, newRoot)), not
// depth(v) + depth(newRoot); the implementation uses the corrected rule
// (still locally computable once each node knows the depth of its lowest
// ancestor on the root-to-newRoot path, one extra tree aggregation) and the
// test validates against the centralized ReRoot.
func ReRootDistributed(t *spanning.Tree, newRoot int) (*ReRootResult, error) {
	n := t.N()
	if newRoot < 0 || newRoot >= n {
		return nil, fmt.Errorf("dist: new root %d out of range", newRoot)
	}
	res := &ReRootResult{
		Parent: make([]int, n),
		Depth:  make([]int, n),
	}
	isAnc, isDesc, ops := AncestorProblem(t, newRoot)
	res.Ops = ops.Plus(ReRootOps(n))
	d0 := t.Depth[newRoot]
	for v := 0; v < n; v++ {
		switch {
		case v == newRoot:
			res.Parent[v] = -1
			res.Depth[v] = 0
		case isAnc[v]:
			// Descendant of newRoot: same parent, rebased depth.
			res.Parent[v] = t.Parent[v]
			res.Depth[v] = t.Depth[v] - d0
		case isDesc[v]:
			// Ancestor of newRoot: parent flips to the child towards
			// newRoot; depth mirrors.
			next, err := t.FirstOnPath(v, newRoot)
			if err != nil {
				return nil, err
			}
			res.Parent[v] = next
			res.Depth[v] = d0 - t.Depth[v]
		default:
			// Off-path node: same parent; distance goes through the lowest
			// common ancestor with newRoot.
			w := t.LCA(v, newRoot)
			res.Parent[v] = t.Parent[v]
			res.Depth[v] = t.Depth[v] + d0 - 2*t.Depth[w]
		}
	}
	return res, nil
}
