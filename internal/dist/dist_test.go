package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
)

func TestOpsArithmetic(t *testing.T) {
	a := Ops{PA: 1, TreeAgg: 2, Local: 3}
	b := Ops{PA: 10, TreeAgg: 20, Local: 30}
	if got := a.Plus(b); got != (Ops{PA: 11, TreeAgg: 22, Local: 33}) {
		t.Fatalf("Plus = %+v", got)
	}
	if got := a.Times(3); got != (Ops{PA: 3, TreeAgg: 6, Local: 9}) {
		t.Fatalf("Times = %+v", got)
	}
}

func TestOpsRounds(t *testing.T) {
	o := Ops{PA: 2, TreeAgg: 1, Local: 5}
	cm := shortcut.PaperCost{D: 10, N: 100}
	per := cm.Cost(shortcut.OpPA, 1)
	if got := o.Rounds(cm, 1); got != 3*per+5 {
		t.Fatalf("Rounds = %d, want %d", got, 3*per+5)
	}
	if (Ops{}).Rounds(cm, 1) != 0 {
		t.Fatal("empty ops should cost 0")
	}
}

func TestPerLemmaOpsGrowLogarithmically(t *testing.T) {
	// The PA counts must grow like log (DFS order) and log^2 (mark path).
	small, big := DFSOrderOps(16), DFSOrderOps(1<<20)
	if big.PA > 10*small.PA {
		t.Fatalf("DFSOrderOps grows too fast: %d -> %d", small.PA, big.PA)
	}
	if MarkPathOps(1<<20).PA != 21*21 {
		t.Fatalf("MarkPathOps(2^20).PA = %d", MarkPathOps(1<<20).PA)
	}
	if SeparatorOps(1000).PA <= 0 || JoinSubPhaseOps(1000).PA <= 0 {
		t.Fatal("driver ops must be positive")
	}
	if DFSBuildOps(1000, 10, 3).PA != SeparatorOps(1000).Plus(JoinSubPhaseOps(1000).Times(3)).Times(10).PA {
		t.Fatal("DFSBuildOps composition wrong")
	}
	if AwerbuchRounds(100) != 199 {
		t.Fatal("AwerbuchRounds wrong")
	}
}

// randomTreeWithOrder builds a random tree and a shuffled child order.
func randomTreeWithOrder(seed int64, n int) (*spanning.Tree, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	t, err := spanning.NewFromParents(0, parent)
	if err != nil {
		panic(err)
	}
	order := make([][]int, n)
	for v := 0; v < n; v++ {
		cs := make([]int, 0, len(t.Children(v)))
		for _, c := range t.Children(v) {
			cs = append(cs, int(c))
		}
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
		order[v] = cs
	}
	return t, order
}

// TestDFSOrderDistributedMatchesCentral is the Lemma 11 validation: the
// fragment-merging algorithm computes exactly the centralized orders, in
// O(log depth) phases.
func TestDFSOrderDistributedMatchesCentral(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := 1 + int(sz)%300
		tree, order := randomTreeWithOrder(seed, n)
		want1, want2 := spanning.DFSOrders(tree, order)
		res := DFSOrderDistributed(tree, order)
		for v := 0; v < n; v++ {
			if res.PiL[v] != want1[v] || res.PiR[v] != want2[v] {
				return false
			}
		}
		bound := shortcut.Log2Ceil(tree.MaxDepth()+2) + 2
		return res.Phases <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDFSOrderPhasesOnDeepTree: a path tree needs Θ(log n) phases, far
// fewer than its Θ(n) depth.
func TestDFSOrderPhasesOnDeepTree(t *testing.T) {
	n := 1024
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	tree, _ := spanning.NewFromParents(0, parent)
	order := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, c := range tree.Children(v) {
			order[v] = append(order[v], int(c))
		}
	}
	res := DFSOrderDistributed(tree, order)
	if res.Phases < 8 || res.Phases > 14 {
		t.Fatalf("path of 1024: %d phases, want ~log2(1023)", res.Phases)
	}
	for v := 0; v < n; v++ {
		if res.PiL[v] != v {
			t.Fatal("path order wrong")
		}
	}
}

// TestMarkPathDistributed validates Lemma 13: the marking equals the
// T-path, with O(log path) phases of O(log depth) iterations.
func TestMarkPathDistributed(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := 2 + int(sz)%300
		tree, _ := randomTreeWithOrder(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		u, v := rng.Intn(n), rng.Intn(n)
		res := MarkPathDistributed(tree, u, v)
		want := map[int]bool{}
		for _, x := range tree.TPath(u, v) {
			want[x] = true
		}
		for x := 0; x < n; x++ {
			if res.Marked[x] != want[x] {
				return false
			}
		}
		pathLen := len(tree.TPath(u, v))
		maxPhases := shortcut.Log2Ceil(pathLen+2) + 2
		return res.Phases <= maxPhases
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMarkPathIterationsPolylog: marking a Θ(n) path costs O(log^2 n)
// iterations, far below the trivial O(n).
func TestMarkPathIterationsPolylog(t *testing.T) {
	n := 2048
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	tree, _ := spanning.NewFromParents(0, parent)
	res := MarkPathDistributed(tree, 0, n-1)
	l := shortcut.Log2Ceil(n)
	if res.Iterations > 2*l*l {
		t.Fatalf("iterations %d exceed O(log^2 n) = %d", res.Iterations, 2*l*l)
	}
	if res.Iterations >= n/4 {
		t.Fatalf("iterations %d not sublinear", res.Iterations)
	}
}

func TestMarkPathTrivial(t *testing.T) {
	tree, _ := randomTreeWithOrder(1, 10)
	res := MarkPathDistributed(tree, 3, 3)
	cnt := 0
	for _, m := range res.Marked {
		if m {
			cnt++
		}
	}
	if cnt != 1 || !res.Marked[3] || res.Phases != 0 {
		t.Fatalf("self path wrong: %+v", res)
	}
}

func TestDFSOrderSingleVertex(t *testing.T) {
	tree, _ := spanning.NewFromParents(0, []int{-1})
	res := DFSOrderDistributed(tree, [][]int{nil})
	if res.PiL[0] != 0 || res.PiR[0] != 0 || res.Phases != 0 {
		t.Fatalf("single vertex: %+v", res)
	}
}
