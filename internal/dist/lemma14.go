package dist

import (
	"fmt"

	"planardfs/internal/weights"
)

// LCAResult is the output of the distributed LCA detection of Lemma 14.
type LCAResult struct {
	// LCA is the lowest common ancestor of the two query nodes.
	LCA int
	Ops Ops
}

// LCADistributed runs Lemma 14's algorithm: with the DFS orders computed
// (each node knowing its subtree interval), every node decides locally
// whether it lies on the root path of each query endpoint (the endpoint's
// order position falls in its subtree interval); the deepest node on both
// root paths — found by one MAX-PROBLEM over depth — is the LCA.
func LCADistributed(cfg *weights.Config, u, v int) (*LCAResult, error) {
	t := cfg.Tree
	n := t.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, fmt.Errorf("dist: query out of range")
	}
	// Orders are precomputed in cfg; charge their computation plus the
	// endpoint broadcast and the MAX-PROBLEM.
	ops := DFSOrderOps(n).Plus(PAProblemOps().Times(2))

	// Node-local rule: x is on the root path of u iff π_ℓ(u) lies within
	// x's subtree interval.
	onPath := func(x, q int) bool {
		return cfg.LoL[x] <= cfg.PiL[q] && cfg.PiL[q] <= cfg.HiL[x]
	}
	best, bestDepth := -1, -1
	for x := 0; x < n; x++ {
		if onPath(x, u) && onPath(x, v) && t.Depth[x] > bestDepth {
			best, bestDepth = x, t.Depth[x]
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("dist: no common ancestor (corrupt tree)")
	}
	return &LCAResult{LCA: best, Ops: ops}, nil
}
