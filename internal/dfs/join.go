package dfs

import (
	"fmt"
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/trace"
)

// JoinStats reports the work of one JOIN-PROBLEM invocation (Lemma 2).
type JoinStats struct {
	// SubPhases counts the path-attachment rounds used until the whole
	// separator set was absorbed.
	SubPhases int
	// Remaining[i] is the number of separator vertices still missing after
	// sub-phase i (Remaining[0] is the initial count); the paper proves a
	// geometric decrease.
	Remaining []int
}

// JoinSeparator adds every vertex of the separator set (a subset of the
// component comp of G - T_d) to the partial tree following the DFS-RULE
// (Lemma 2). In each sub-phase, every remaining component that still holds
// separator vertices is entered at its vertex with the deepest T_d
// neighbour, a spanning tree preferring separator-separator edges is grown
// from there, and the root path holding the most separator vertices is
// attached.
func JoinSeparator(g *graph.Graph, pt *PartialTree, comp []int, sep []int) (*JoinStats, error) {
	return joinSeparator(g, pt, comp, sep, nil)
}

// joinSeparator is JoinSeparator with per-sub-phase spans on m: each
// sub-phase charges the Lemma 2 budget (spanning forest, re-root, LCA,
// the two PA problems of the DFS-RULE, and marking the attached path)
// and records the remaining separator count.
func joinSeparator(g *graph.Graph, pt *PartialTree, comp []int, sep []int, m *dist.Meter) (*JoinStats, error) {
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		if pt.Has(v) {
			return nil, fmt.Errorf("dfs: component vertex %d already added", v)
		}
		inComp[v] = true
	}
	missing := map[int]bool{}
	for _, v := range sep {
		if !inComp[v] {
			return nil, fmt.Errorf("dfs: separator vertex %d outside component", v)
		}
		missing[v] = true
	}
	st := &JoinStats{Remaining: []int{len(missing)}}
	var joinSpan trace.Span
	if m.On() {
		joinSpan = m.Start(trace.LayerDFS, "join.problem")
		joinSpan.SetAttr("component", int64(len(comp)))
		joinSpan.SetAttr("separator", int64(len(missing)))
		defer func() {
			joinSpan.SetAttr("subphases", int64(st.SubPhases))
			joinSpan.End()
		}()
	}
	for len(missing) > 0 {
		st.SubPhases++
		if st.SubPhases > g.N()+2 {
			return nil, fmt.Errorf("dfs: join did not converge")
		}
		var subSpan trace.Span
		if m.On() {
			subSpan = m.Start(trace.LayerDFS, "join.subphase")
			subSpan.SetAttr("subphase", int64(st.SubPhases))
			subSpan.SetAttr("remaining", int64(len(missing)))
		}
		// Components of the not-yet-added part of comp.
		for _, x := range componentsWithin(g, inComp, pt) {
			holds := false
			for _, v := range x {
				if missing[v] {
					holds = true
					break
				}
			}
			if !holds {
				continue
			}
			if err := attachBestPath(g, pt, x, missing); err != nil {
				return nil, err
			}
		}
		cnt := 0
		for v := range missing { //planarvet:orderinvariant per-key delete plus commutative count; no order reaches output
			if pt.Has(v) {
				delete(missing, v)
			} else {
				cnt++
			}
		}
		st.Remaining = append(st.Remaining, cnt)
		if m.On() {
			// The Lemma 2 sub-phase budget: every open component runs these
			// in parallel, so the set is charged once.
			n := g.N()
			m.Charge(trace.LayerLemma, "lemma9.spanning-forest", dist.SpanningForestOps(n))
			m.Charge(trace.LayerLemma, "lemma19.re-root", dist.ReRootOps(n))
			m.Charge(trace.LayerLemma, "lemma14.lca", dist.LCAOps(n))
			m.Charge(trace.LayerLemma, "dfs-rule.pa-problems", dist.PAProblemOps().Times(2))
			m.Charge(trace.LayerLemma, "lemma13.mark-path", dist.MarkPathOps(n))
			m.Tracer().Observe("join.remaining", int64(cnt))
			subSpan.SetAttr("absorbed", int64(st.Remaining[st.SubPhases-1]-cnt))
			subSpan.End()
		}
	}
	return st, nil
}

// componentsWithin returns the connected components of the not-yet-added
// vertices of the component set, each sorted ascending.
func componentsWithin(g *graph.Graph, inComp map[int]bool, pt *PartialTree) [][]int {
	seen := map[int]bool{}
	var order []int
	for v := range inComp { //planarvet:orderinvariant keys are sorted before use
		order = append(order, v)
	}
	sort.Ints(order)
	var comps [][]int
	for _, v := range order {
		if seen[v] || pt.Has(v) {
			continue
		}
		var comp []int
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			comp = append(comp, x)
			for _, w := range g.Neighbors(x) {
				if inComp[w] && !seen[w] && !pt.Has(w) {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// attachBestPath grows a spanning tree of the component x from its
// DFS-RULE entry vertex, preferring separator-separator edges (the 0/1
// shortest-path tree standing in for the paper's 0/1-weight MST), finds the
// separator vertex whose root path carries the most separator vertices
// (an ANCESTOR-SUM in the distributed accounting), and attaches that path.
func attachBestPath(g *graph.Graph, pt *PartialTree, x []int, missing map[int]bool) error {
	entry, anchor := pt.DeepestNeighborIn(g, x)
	if entry < 0 {
		return fmt.Errorf("dfs: component has no neighbour in the partial tree")
	}
	inX := make(map[int]bool, len(x))
	for _, v := range x {
		inX[v] = true
	}
	// 0/1 BFS from entry: separator-separator edges cost 0.
	parent := map[int]int{entry: -1}
	dist := map[int]int{entry: 0}
	settled := map[int]bool{}
	deque := []int{entry}
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		if settled[v] {
			continue
		}
		settled[v] = true
		for _, w := range g.Neighbors(v) {
			if !inX[w] || settled[w] {
				continue
			}
			cost := 1
			if missing[v] && missing[w] {
				cost = 0
			}
			d := dist[v] + cost
			if old, ok := dist[w]; !ok || d < old {
				dist[w] = d
				parent[w] = v
				if cost == 0 {
					deque = append([]int{w}, deque...)
				} else {
					deque = append(deque, w)
				}
			}
		}
	}
	// Count separator vertices on each root path (an ancestor sum) and pick
	// the best target.
	children := map[int][]int{}
	for _, v := range x {
		if p, ok := parent[v]; ok && p != -1 {
			children[p] = append(children[p], v)
		}
	}
	cnt := map[int]int{}
	stack := []int{entry}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := 0
		if p := parent[v]; p != -1 {
			c = cnt[p]
		}
		if missing[v] {
			c++
		}
		cnt[v] = c
		stack = append(stack, children[v]...)
	}
	best, bestCnt := -1, 0
	for _, v := range x {
		if !missing[v] {
			continue
		}
		if c := cnt[v]; c > bestCnt || (c == bestCnt && (best < 0 || v < best)) {
			best, bestCnt = v, c
		}
	}
	if best < 0 {
		return fmt.Errorf("dfs: component lost its separator vertices")
	}
	// The path entry..best, in attach order.
	var path []int
	for v := best; v != -1; v = parent[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return pt.AttachPath(g, anchor, path)
}
