package dfs

import (
	"fmt"
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/trace"
)

// JoinStats reports the work of one JOIN-PROBLEM invocation (Lemma 2).
type JoinStats struct {
	// SubPhases counts the path-attachment rounds used until the whole
	// separator set was absorbed.
	SubPhases int
	// Remaining[i] is the number of separator vertices still missing after
	// sub-phase i (Remaining[0] is the initial count); the paper proves a
	// geometric decrease.
	Remaining []int
}

// joinScratch holds the flat per-vertex state of one JOIN-PROBLEM. All
// arrays are sized n and allocated once per invocation; the epoch-stamped
// ones (seen/vis/set) are reset in O(1) between sub-phases and components
// by bumping the epoch instead of clearing.
type joinScratch struct {
	inComp  []bool
	missing []bool
	seenEp  []int32 // componentsWithin visitation
	visEp   []int32 // dist/parent valid
	setEp   []int32 // settled in the 0/1 BFS
	parent  []int32
	dist    []int32
	cnt     []int32 // separator vertices on the root path
	epoch   int32
	queue   []int32 // componentsWithin BFS queue, reused
	order   []int32 // 0/1 BFS settle order, reused
	deque   []int32 // 0/1 BFS deque buffer, reused across attachBestPath calls
}

func newJoinScratch(n int) *joinScratch {
	return &joinScratch{
		inComp:  make([]bool, n),
		missing: make([]bool, n),
		seenEp:  make([]int32, n),
		visEp:   make([]int32, n),
		setEp:   make([]int32, n),
		parent:  make([]int32, n),
		dist:    make([]int32, n),
		cnt:     make([]int32, n),
	}
}

// JoinSeparator adds every vertex of the separator set (a subset of the
// component comp of G - T_d) to the partial tree following the DFS-RULE
// (Lemma 2). In each sub-phase, every remaining component that still holds
// separator vertices is entered at its vertex with the deepest T_d
// neighbour, a spanning tree preferring separator-separator edges is grown
// from there, and the root path holding the most separator vertices is
// attached.
func JoinSeparator(g *graph.Graph, pt *PartialTree, comp []int, sep []int) (*JoinStats, error) {
	return joinSeparator(g, pt, comp, sep, nil)
}

// joinSeparator is JoinSeparator with per-sub-phase spans on m: each
// sub-phase charges the Lemma 2 budget (spanning forest, re-root, LCA,
// the two PA problems of the DFS-RULE, and marking the attached path)
// and records the remaining separator count.
func joinSeparator(g *graph.Graph, pt *PartialTree, comp []int, sep []int, m *dist.Meter) (*JoinStats, error) {
	sc := newJoinScratch(g.N())
	for _, v := range comp {
		if pt.Has(v) {
			return nil, fmt.Errorf("dfs: component vertex %d already added", v)
		}
		sc.inComp[v] = true
	}
	missingCnt := 0
	for _, v := range sep {
		if !sc.inComp[v] {
			return nil, fmt.Errorf("dfs: separator vertex %d outside component", v)
		}
		if !sc.missing[v] {
			sc.missing[v] = true
			missingCnt++
		}
	}
	st := &JoinStats{Remaining: []int{missingCnt}}
	var joinSpan trace.Span
	if m.On() {
		joinSpan = m.Start(trace.LayerDFS, "join.problem")
		joinSpan.SetAttr("component", int64(len(comp)))
		joinSpan.SetAttr("separator", int64(missingCnt))
		defer func() {
			joinSpan.SetAttr("subphases", int64(st.SubPhases))
			joinSpan.End()
		}()
	}
	for missingCnt > 0 {
		st.SubPhases++
		if st.SubPhases > g.N()+2 {
			return nil, fmt.Errorf("dfs: join did not converge")
		}
		var subSpan trace.Span
		if m.On() {
			subSpan = m.Start(trace.LayerDFS, "join.subphase")
			subSpan.SetAttr("subphase", int64(st.SubPhases))
			subSpan.SetAttr("remaining", int64(missingCnt))
		}
		// Components of the not-yet-added part of comp.
		for _, x := range componentsWithin(g, sc, pt) {
			holds := false
			for _, v := range x {
				if sc.missing[v] {
					holds = true
					break
				}
			}
			if !holds {
				continue
			}
			if err := attachBestPath(g, pt, x, sc); err != nil {
				return nil, err
			}
		}
		cnt := 0
		for _, v := range comp {
			if !sc.missing[v] {
				continue
			}
			if pt.Has(v) {
				sc.missing[v] = false
			} else {
				cnt++
			}
		}
		missingCnt = cnt
		st.Remaining = append(st.Remaining, cnt)
		if m.On() {
			// The Lemma 2 sub-phase budget: every open component runs these
			// in parallel, so the set is charged once.
			n := g.N()
			m.Charge(trace.LayerLemma, "lemma9.spanning-forest", dist.SpanningForestOps(n))
			m.Charge(trace.LayerLemma, "lemma19.re-root", dist.ReRootOps(n))
			m.Charge(trace.LayerLemma, "lemma14.lca", dist.LCAOps(n))
			m.Charge(trace.LayerLemma, "dfs-rule.pa-problems", dist.PAProblemOps().Times(2))
			m.Charge(trace.LayerLemma, "lemma13.mark-path", dist.MarkPathOps(n))
			m.Tracer().Observe("join.remaining", int64(cnt))
			subSpan.SetAttr("absorbed", int64(st.Remaining[st.SubPhases-1]-cnt))
			subSpan.End()
		}
	}
	return st, nil
}

// componentsWithin returns the connected components of the not-yet-added
// vertices of the component set, each sorted ascending. Roots are scanned
// in ascending vertex order, so the component order is deterministic.
func componentsWithin(g *graph.Graph, sc *joinScratch, pt *PartialTree) [][]int {
	sc.epoch++
	ep := sc.epoch
	var comps [][]int
	for v := 0; v < g.N(); v++ {
		if !sc.inComp[v] || sc.seenEp[v] == ep || pt.Has(v) {
			continue
		}
		var comp []int
		sc.queue = append(sc.queue[:0], int32(v))
		sc.seenEp[v] = ep
		for qi := 0; qi < len(sc.queue); qi++ {
			x := int(sc.queue[qi])
			comp = append(comp, x)
			for _, id := range g.IncidentEdges(x) {
				w := g.Other(int(id), x)
				if sc.inComp[w] && sc.seenEp[w] != ep && !pt.Has(w) {
					sc.seenEp[w] = ep
					//planarvet:narrowok w is a vertex id, < n and graph.New bounds n to MaxInt32
					sc.queue = append(sc.queue, int32(w))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// attachBestPath grows a spanning tree of the component x from its
// DFS-RULE entry vertex, preferring separator-separator edges (the 0/1
// shortest-path tree standing in for the paper's 0/1-weight MST), finds the
// separator vertex whose root path carries the most separator vertices
// (an ANCESTOR-SUM in the distributed accounting), and attaches that path.
func attachBestPath(g *graph.Graph, pt *PartialTree, x []int, sc *joinScratch) error {
	entry, anchor := pt.DeepestNeighborIn(g, x)
	if entry < 0 {
		return fmt.Errorf("dfs: component has no neighbour in the partial tree")
	}
	sc.epoch++
	ep := sc.epoch
	// seenEp doubles as x-membership here (it is idle between
	// componentsWithin calls, and each call takes a fresh epoch).
	for _, v := range x {
		sc.seenEp[v] = ep
	}
	// 0/1 BFS from entry: separator-separator edges cost 0. The deque lives
	// in a scratch buffer with front/back cursors; each relaxation pushes
	// once, so relaxCap slots on each side suffice. The buffer and the
	// settle-order slice are (re)grown here, outside the noalloc core.
	relaxCap := 1
	for _, v := range x {
		relaxCap += g.Degree(v)
	}
	if cap(sc.deque) < 2*relaxCap {
		sc.deque = make([]int32, 2*relaxCap)
	}
	if cap(sc.order) < len(x) {
		sc.order = make([]int32, 0, len(x))
	}
	sc.run01BFS(g, entry, relaxCap, ep)
	return pickAndAttach(g, pt, x, sc, anchor, ep)
}

// run01BFS is the steady-state core of the attachment: the 0/1 BFS over
// the component, settling vertices into sc.order. attachBestPath presizes
// sc.deque (2·relaxCap slots) and sc.order (component size) before the
// call, so the loop itself touches the allocator not at all — this is the
// deque the join phase spins on for every sub-phase of every component.
//
//planarvet:noalloc TestJoinDequeZeroAlloc
func (sc *joinScratch) run01BFS(g *graph.Graph, entry, relaxCap int, ep int32) {
	buf := sc.deque[:cap(sc.deque)]
	f, b := relaxCap, relaxCap // [f, b) is the live deque
	//planarvet:narrowok entry is a vertex id, < n and graph.New bounds n to MaxInt32
	buf[b] = int32(entry)
	b++
	sc.visEp[entry] = ep
	sc.parent[entry] = -1
	sc.dist[entry] = 0
	sc.order = sc.order[:0]
	for f < b {
		v := int(buf[f])
		f++
		if sc.setEp[v] == ep {
			continue
		}
		sc.setEp[v] = ep
		//planarvet:narrowok v came out of the int32 deque, so it fits by construction
		sc.order = append(sc.order, int32(v)) //planarvet:allocok order is presized to the component size by attachBestPath, append stays in capacity
		for _, id := range g.IncidentEdges(v) {
			w := g.Other(int(id), v)
			if sc.seenEp[w] != ep || sc.setEp[w] == ep {
				continue
			}
			cost := int32(1)
			if sc.missing[v] && sc.missing[w] {
				cost = 0
			}
			d := sc.dist[v] + cost
			if sc.visEp[w] != ep || d < sc.dist[w] {
				sc.visEp[w] = ep
				sc.dist[w] = d
				//planarvet:narrowok v came out of the int32 deque, so it fits by construction
				sc.parent[w] = int32(v)
				if cost == 0 {
					f--
					//planarvet:narrowok w is a vertex id, < n and graph.New bounds n to MaxInt32
					buf[f] = int32(w)
				} else {
					//planarvet:narrowok w is a vertex id, < n and graph.New bounds n to MaxInt32
					buf[b] = int32(w)
					b++
				}
			}
		}
	}
}

// pickAndAttach finishes the DFS-RULE after the BFS: the ancestor sum over
// the settle order, the best-path selection, and the attachment.
func pickAndAttach(g *graph.Graph, pt *PartialTree, x []int, sc *joinScratch, anchor int, ep int32) error {
	// Count separator vertices on each root path (an ancestor sum): in the
	// 0/1 BFS, parent[w] is always settled before w, so the settle order is
	// a valid top-down sweep.
	for _, v32 := range sc.order {
		v := int(v32)
		var c int32
		if p := sc.parent[v]; p != -1 {
			c = sc.cnt[p]
		}
		if sc.missing[v] {
			c++
		}
		sc.cnt[v] = c
	}
	best, bestCnt := -1, int32(0)
	for _, v := range x {
		if !sc.missing[v] || sc.setEp[v] != ep {
			continue
		}
		if c := sc.cnt[v]; c > bestCnt || (c == bestCnt && (best < 0 || v < best)) {
			best, bestCnt = v, c
		}
	}
	if best < 0 {
		return fmt.Errorf("dfs: component lost its separator vertices")
	}
	// The path entry..best, in attach order.
	var path []int
	for v := best; v != -1; v = int(sc.parent[v]) {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return pt.AttachPath(g, anchor, path)
}
