package dfs

import (
	"testing"

	"planardfs/internal/graph"
)

// TestJoinDequeZeroAlloc is the runtime gate behind the
// //planarvet:noalloc annotation on (*joinScratch).run01BFS: with the
// deque buffer and the settle-order slice presized the way attachBestPath
// presizes them, the 0/1 BFS itself performs zero allocations.
func TestJoinDequeZeroAlloc(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 0)
	g.MustAddEdge(0, 3)

	x := []int{0, 1, 2, 3, 4, 5}
	sc := newJoinScratch(g.N())
	sc.missing[1] = true
	sc.missing[2] = true

	// Mirror attachBestPath's presizing exactly.
	relaxCap := 1
	for _, v := range x {
		relaxCap += g.Degree(v)
	}
	sc.deque = make([]int32, 2*relaxCap)
	sc.order = make([]int32, 0, len(x))

	allocs := testing.AllocsPerRun(100, func() {
		sc.epoch++
		ep := sc.epoch
		for _, v := range x {
			sc.seenEp[v] = ep
		}
		sc.run01BFS(g, 0, relaxCap, ep)
	})
	if allocs != 0 {
		t.Fatalf("run01BFS allocates %.1f times, want 0", allocs)
	}
	if len(sc.order) != len(x) {
		t.Fatalf("BFS settled %d vertices, want %d", len(sc.order), len(x))
	}
}
