package dfs

import (
	"math"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
)

func TestPartialTreeBasics(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	pt := NewPartialTree(5, 0)
	if !pt.Has(0) || pt.Has(1) || pt.Added() != 1 || pt.Complete() {
		t.Fatal("initial state wrong")
	}
	if err := pt.AttachPath(g, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if pt.Depth[2] != 2 || pt.Parent[2] != 1 || pt.Parent[1] != 0 {
		t.Fatal("attach wrong")
	}
	if err := pt.AttachPath(g, 2, []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if !pt.Complete() {
		t.Fatal("should be complete")
	}
	// Error cases.
	if err := pt.AttachPath(g, 0, []int{1}); err == nil {
		t.Fatal("re-adding accepted")
	}
	pt2 := NewPartialTree(5, 0)
	if err := pt2.AttachPath(g, 0, []int{2}); err == nil {
		t.Fatal("non-edge step accepted")
	}
	if err := pt2.AttachPath(g, 3, []int{4}); err == nil {
		t.Fatal("absent anchor accepted")
	}
}

func TestDeepestNeighborIn(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 4)
	pt := NewPartialTree(5, 0)
	if err := pt.AttachPath(g, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Candidates 3, 4: 4 is adjacent to 2 (depth 2), 3 adjacent to 0
	// (depth 0) -> pick 4 anchored at 2.
	v, a := pt.DeepestNeighborIn(g, []int{3, 4})
	if v != 4 || a != 2 {
		t.Fatalf("got (%d,%d), want (4,2)", v, a)
	}
	v, a = pt.DeepestNeighborIn(g, []int{})
	if v != -1 || a != -1 {
		t.Fatal("empty candidates should give -1")
	}
}

func TestIsDFSTreeDetectsCrossEdge(t *testing.T) {
	// Square 0-1-2-3: BFS tree from 0 has a cross edge.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	if err := IsDFSTree(g, 0, []int{-1, 0, 1, 2}); err != nil {
		t.Fatalf("valid DFS tree rejected: %v", err)
	}
	if err := IsDFSTree(g, 0, []int{-1, 0, 1, 0}); err == nil {
		t.Fatal("BFS tree accepted as DFS tree")
	}
	if err := IsDFSTree(g, 0, []int{-1, 0, 1}); err == nil {
		t.Fatal("short parent array accepted")
	}
	if err := IsDFSTree(g, 0, []int{0, 0, 1, 2}); err == nil {
		t.Fatal("rooted parent array with root parent accepted")
	}
	if err := IsDFSTree(g, 0, []int{-1, 2, 1, 2}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func buildOn(t *testing.T, in *gen.Instance) (*PartialTree, *Trace) {
	t.Helper()
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.OuterFace())[0]
	pt, tr, err := Build(in.G, in.Emb, in.OuterDart, root)
	if err != nil {
		t.Fatalf("%s: %v", in.Name, err)
	}
	return pt, tr
}

// TestBuildProducesDFSTrees is the Theorem 2 validation across families.
func TestBuildProducesDFSTrees(t *testing.T) {
	var instances []*gen.Instance
	add := func(in *gen.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
	}
	add(gen.Grid(6, 6))
	add(gen.Grid(12, 3))
	add(gen.Wheel(13))
	add(gen.Fan(14))
	add(gen.Cycle(15))
	for seed := int64(1); seed <= 8; seed++ {
		add(gen.StackedTriangulation(40, seed))
		add(gen.PolygonTriangulation(26, seed))
		add(gen.SparsePlanar(34, 0.6, seed))
		add(gen.RandomTree(30, seed))
	}
	for _, in := range instances {
		pt, tr := buildOn(t, in)
		if !pt.Complete() {
			t.Fatalf("%s: incomplete", in.Name)
		}
		// Build already verifies IsDFSTree; double check phase bound.
		n := in.G.N()
		bound := int(math.Ceil(math.Log(float64(n))/math.Log(1.5))) + 3
		if tr.Phases > bound {
			t.Errorf("%s: %d phases for n=%d (bound %d)", in.Name, tr.Phases, n, bound)
		}
	}
}

// TestComponentShrink is the E9 property: the largest remaining component
// shrinks geometrically across phases.
func TestComponentShrink(t *testing.T) {
	in, err := gen.StackedTriangulation(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, tr := buildOn(t, in)
	for i := 1; i < len(tr.MaxComponent); i++ {
		// After a phase the max component must have shrunk by >= 1/3 of the
		// phase's max component (separator guarantee), with slack for the
		// extra nodes joins absorb.
		if 3*tr.MaxComponent[i] > 2*tr.MaxComponent[i-1]+2 {
			t.Fatalf("phase %d: max component %d -> %d (no 2/3 shrink)",
				i, tr.MaxComponent[i-1], tr.MaxComponent[i])
		}
	}
}

// TestJoinHalving is the E7 property: within a single JOIN, the number of
// missing separator vertices decreases every sub-phase.
func TestJoinHalving(t *testing.T) {
	in, err := gen.Grid(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	pt := NewPartialTree(g.N(), 0)
	comp := make([]int, 0, g.N()-1)
	for v := 1; v < g.N(); v++ {
		comp = append(comp, v)
	}
	// A synthetic separator: the middle row.
	var sep []int
	for x := 0; x < 10; x++ {
		sep = append(sep, 5*10+x)
	}
	st, err := JoinSeparator(g, pt, comp, sep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(st.Remaining); i++ {
		if st.Remaining[i] >= st.Remaining[i-1] {
			t.Fatalf("no progress in sub-phase %d: %v", i, st.Remaining)
		}
	}
	for _, v := range sep {
		if !pt.Has(v) {
			t.Fatalf("separator vertex %d not joined", v)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	in, err := gen.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPartialTree(9, 0)
	if _, err := JoinSeparator(in.G, pt, []int{1, 2}, []int{5}); err == nil {
		t.Fatal("separator outside component accepted")
	}
	if _, err := JoinSeparator(in.G, pt, []int{0}, nil); err == nil {
		t.Fatal("already-added component vertex accepted")
	}
}

func TestBuildDisconnected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	if _, _, err := Build(g, nil, 0, 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestAsSpanningTree(t *testing.T) {
	in, err := gen.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	fs := in.Emb.TraceFaces()
	root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
	pt, _, err := Build(in.G, in.Emb, in.OuterDart, root)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pt.AsSpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.G.N(); v++ {
		if tr.Depth[v] != pt.Depth[v] {
			t.Fatalf("depth mismatch at %d", v)
		}
	}
	// Incomplete tree is rejected.
	pt2 := NewPartialTree(4, 0)
	if _, err := pt2.AsSpanningTree(); err == nil {
		t.Fatal("incomplete tree accepted")
	}
}
