package dfs

import (
	"testing"
	"testing/quick"

	"planardfs/internal/gen"
)

// Property: Build produces a valid, complete DFS tree on random sparse
// planar graphs with random roots on the outer face.
func TestBuildProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 8 + int(sz)%80
		in, err := gen.SparsePlanar(n, 0.5, seed)
		if err != nil {
			return false
		}
		fs := in.Emb.TraceFaces()
		outs := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))
		root := outs[int(uint64(seed)%uint64(len(outs)))]
		pt, tr, err := Build(in.G, in.Emb, in.OuterDart, root)
		if err != nil {
			return false
		}
		if !pt.Complete() || tr.Phases == 0 {
			return false
		}
		return IsDFSTree(in.G, root, pt.Parent) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the depth recorded by the DFS-RULE equals the tree distance
// from the root in the final tree.
func TestPartialTreeDepthsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		in, err := gen.StackedTriangulation(50, seed)
		if err != nil {
			return false
		}
		fs := in.Emb.TraceFaces()
		root := fs.FaceVertices(in.Emb.OuterFaceOf(in.OuterDart))[0]
		pt, _, err := Build(in.G, in.Emb, in.OuterDart, root)
		if err != nil {
			return false
		}
		for v := 0; v < in.G.N(); v++ {
			d := 0
			for x := v; pt.Parent[x] != -1; x = pt.Parent[x] {
				d++
			}
			if d != pt.Depth[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
