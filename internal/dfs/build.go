package dfs

import (
	"fmt"
	"sort"

	"planardfs/internal/dist"
	"planardfs/internal/graph"
	"planardfs/internal/planar"
	"planardfs/internal/separator"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
)

// Trace records the structure of a DFS-tree construction run, from which
// the round cost under any cost model is derived (see package dist).
type Trace struct {
	// Phases is the number of outer recursion phases (O(log n) by the 2/3
	// component shrink).
	Phases int
	// MaxComponent[i] is the largest remaining component at the start of
	// phase i.
	MaxComponent []int
	// SeparatorCalls counts per-component separator computations (run in
	// parallel within a phase in the distributed model).
	SeparatorCalls int
	// JoinSubPhases is the total number of join sub-phases over all phases;
	// MaxJoinSubPhases is the largest single JOIN-PROBLEM's sub-phase count
	// (joins of distinct components run in parallel).
	JoinSubPhases    int
	MaxJoinSubPhases int
	// SeparatorPhases tallies which separator phases produced the cuts.
	SeparatorPhases map[separator.Phase]int
	// EngineFallbacks counts per-component separator calls on which a
	// non-default engine failed softly and the run fell back to the
	// Theorem 1 engine (always zero when building with the default).
	EngineFallbacks int
}

// Build computes a DFS tree of the embedded planar graph rooted at root by
// the main algorithm of Section 3.2/6.2: per phase, a cycle separator of
// every remaining component is computed (Theorem 1) and joined to the
// partial DFS tree by the DFS-RULE (Lemma 2).
func Build(g *graph.Graph, emb *planar.Embedding, outerDart, root int) (*PartialTree, *Trace, error) {
	return BuildTraced(g, emb, outerDart, root, nil)
}

// BuildTraced is Build with the run recorded on tracer (nil disables
// tracing): a dfs-layer span per recursion phase, the full separator and
// lemma span structure of every per-component Theorem 1 call, and a
// dfs-layer span per JOIN sub-phase, all stamped with the charged round
// clock under the paper cost model.
func BuildTraced(g *graph.Graph, emb *planar.Embedding, outerDart, root int, tracer trace.Tracer) (*PartialTree, *Trace, error) {
	return BuildWithSeparator(g, emb, outerDart, root, tracer, separator.Find)
}

// BuildWithSeparator is BuildTraced with the per-component separator
// computation swapped out: find runs on each remaining component's
// restricted configuration (see separator.ForSubsetWith). The caller keeps
// any engine-fallback policy inside find and may record its fallback count
// on the returned Trace.
func BuildWithSeparator(g *graph.Graph, emb *planar.Embedding, outerDart, root int, tracer trace.Tracer, find separator.FindFunc) (*PartialTree, *Trace, error) {
	if !g.Connected() {
		return nil, nil, fmt.Errorf("dfs: graph is not connected")
	}
	tracer = trace.OrNop(tracer)
	var m *dist.Meter
	var buildSpan trace.Span
	if tracer.Enabled() {
		// The cost model charges the BFS depth from the root as the
		// diameter proxy (depth <= D <= 2·depth).
		depth := 0
		if bt, err := spanning.BFSTree(g, root); err == nil {
			depth = bt.MaxDepth()
		}
		m = dist.NewMeter(tracer, shortcut.PaperCost{D: depth, N: g.N()}, 1)
		buildSpan = tracer.StartSpan(trace.LayerDFS, "dfs.build")
		defer buildSpan.End()
	}
	outerFace := emb.OuterFaceOf(outerDart)
	pt := NewPartialTree(g.N(), root)
	tr := &Trace{SeparatorPhases: map[separator.Phase]int{}}
	for !pt.Complete() {
		tr.Phases++
		if tr.Phases > g.N()+2 {
			return nil, nil, fmt.Errorf("dfs: did not converge")
		}
		comps := remainingComponents(g, pt)
		maxC := 0
		for _, c := range comps {
			if len(c) > maxC {
				maxC = len(c)
			}
		}
		tr.MaxComponent = append(tr.MaxComponent, maxC)
		phaseSpan := tracer.StartSpan(trace.LayerDFS, "dfs.phase")
		phaseSpan.SetAttr("phase", int64(tr.Phases))
		phaseSpan.SetAttr("components", int64(len(comps)))
		phaseSpan.SetAttr("max_component", int64(maxC))
		tracer.SetGauge("dfs.max_component", int64(maxC))
		tracer.Sample("dfs.max_component", int64(maxC))
		for _, comp := range comps {
			var septr trace.Tracer
			if tracer.Enabled() {
				septr = tracer
			}
			sep, err := separator.ForSubsetWith(emb, outerFace, comp, septr, find)
			if err != nil {
				return nil, nil, fmt.Errorf("dfs: phase %d: %w", tr.Phases, err)
			}
			tr.SeparatorCalls++
			tr.SeparatorPhases[sep.Phase]++
			st, err := joinSeparator(g, pt, comp, sep.Path, m)
			if err != nil {
				return nil, nil, fmt.Errorf("dfs: phase %d join: %w", tr.Phases, err)
			}
			tr.JoinSubPhases += st.SubPhases
			if st.SubPhases > tr.MaxJoinSubPhases {
				tr.MaxJoinSubPhases = st.SubPhases
			}
		}
		phaseSpan.End()
	}
	if tracer.Enabled() {
		tracer.Count("dfs.phases", int64(tr.Phases))
		tracer.Count("dfs.separator_calls", int64(tr.SeparatorCalls))
		tracer.Count("dfs.join_subphases", int64(tr.JoinSubPhases))
		buildSpan.SetAttr("phases", int64(tr.Phases))
		buildSpan.SetAttr("separator_calls", int64(tr.SeparatorCalls))
	}
	if err := IsDFSTree(g, root, pt.Parent); err != nil {
		return nil, nil, fmt.Errorf("dfs: output invalid: %w", err)
	}
	return pt, tr, nil
}

// remainingComponents lists the connected components of G minus the partial
// tree, each sorted ascending, ordered by smallest vertex.
func remainingComponents(g *graph.Graph, pt *PartialTree) [][]int {
	removed := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if pt.Has(v) {
			removed[v] = true
		}
	}
	comps := g.ComponentsAvoidingMask(removed)
	for _, c := range comps {
		sort.Ints(c)
	}
	return comps
}
