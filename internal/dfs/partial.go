// Package dfs implements the paper's second contribution (Theorem 2):
// construction of a DFS tree of a planar graph by repeatedly computing
// cycle separators of the remaining components (Theorem 1) and joining them
// to a partial DFS tree with the DFS-RULE (Section 3.2, Lemma 2). The
// package also provides the DFS-tree validity checker (the
// ancestor/descendant property of every graph edge) used throughout the
// test suite and experiments.
package dfs

import (
	"fmt"

	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// notAdded marks vertices not yet in the partial tree.
const notAdded = -2

// PartialTree is a partial DFS tree T_d: a subgraph of G grown only by the
// DFS-RULE. Parent and Depth are fixed once a vertex joins and never change
// afterwards.
type PartialTree struct {
	Root   int
	Parent []int // parent in T_d; -1 for the root, notAdded if absent
	Depth  []int
	added  int
}

// NewPartialTree returns the initial partial tree holding only the root.
func NewPartialTree(n, root int) *PartialTree {
	pt := &PartialTree{
		Root:   root,
		Parent: make([]int, n),
		Depth:  make([]int, n),
	}
	for i := range pt.Parent {
		pt.Parent[i] = notAdded
		pt.Depth[i] = -1
	}
	pt.Parent[root] = -1
	pt.Depth[root] = 0
	pt.added = 1
	return pt
}

// Has reports whether v has been added.
func (pt *PartialTree) Has(v int) bool { return pt.Parent[v] != notAdded }

// Added returns the number of added vertices.
func (pt *PartialTree) Added() int { return pt.added }

// Complete reports whether every vertex has been added.
func (pt *PartialTree) Complete() bool { return pt.added == len(pt.Parent) }

// AttachPath applies the DFS-RULE: it appends the path vertices (none of
// which may be in T_d yet) below the anchor vertex, which must be in T_d
// and adjacent in G to the first path vertex; consecutive path vertices
// must be adjacent in G.
func (pt *PartialTree) AttachPath(g *graph.Graph, anchor int, path []int) error {
	if !pt.Has(anchor) {
		return fmt.Errorf("dfs: anchor %d not in partial tree", anchor)
	}
	prev := anchor
	for _, v := range path {
		if pt.Has(v) {
			return fmt.Errorf("dfs: vertex %d already in partial tree", v)
		}
		if !g.HasEdge(prev, v) {
			return fmt.Errorf("dfs: path step {%d,%d} is not an edge", prev, v)
		}
		pt.Parent[v] = prev
		pt.Depth[v] = pt.Depth[prev] + 1
		pt.added++
		prev = v
	}
	return nil
}

// DeepestNeighborIn returns the vertex of the candidate set having the
// deepest T_d-neighbour, together with that neighbour (the DFS-RULE anchor
// pair). Ties break by deeper neighbour first, then by smaller vertex ID.
// Returns (-1, -1) if no candidate has a neighbour in T_d.
func (pt *PartialTree) DeepestNeighborIn(g *graph.Graph, cands []int) (vertex, anchor int) {
	vertex, anchor = -1, -1
	bestDepth := -1
	for _, v := range cands {
		for _, id := range g.IncidentEdges(v) {
			w := g.Other(int(id), v)
			if !pt.Has(w) {
				continue
			}
			if pt.Depth[w] > bestDepth || (pt.Depth[w] == bestDepth && v < vertex) {
				bestDepth = pt.Depth[w]
				vertex, anchor = v, w
			}
		}
	}
	return vertex, anchor
}

// IsDFSTree checks that parent (with parent[root] == -1) describes a
// spanning tree of g rooted at root satisfying the DFS property: every edge
// of g connects an ancestor-descendant pair.
func IsDFSTree(g *graph.Graph, root int, parent []int) error {
	n := g.N()
	if len(parent) != n {
		return fmt.Errorf("dfs: parent array of length %d for %d vertices", len(parent), n)
	}
	// Validate tree shape and compute preorder intervals.
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		p := parent[v]
		if v == root {
			if p != -1 {
				return fmt.Errorf("dfs: root %d has parent %d", root, p)
			}
			continue
		}
		if p < 0 || p >= n {
			return fmt.Errorf("dfs: vertex %d has invalid parent %d", v, p)
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("dfs: tree edge {%d,%d} is not a graph edge", v, p)
		}
		children[p] = append(children[p], v)
	}
	tin := make([]int, n)
	tout := make([]int, n)
	for i := range tin {
		tin[i] = -1
	}
	timer := 0
	type frame struct{ v, ci int }
	stack := []frame{{root, 0}}
	tin[root] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(children[f.v]) {
			c := children[f.v][f.ci]
			f.ci++
			if tin[c] != -1 {
				return fmt.Errorf("dfs: vertex %d reached twice (cycle)", c)
			}
			tin[c] = timer
			timer++
			stack = append(stack, frame{c, 0})
			continue
		}
		tout[f.v] = timer
		stack = stack[:len(stack)-1]
	}
	for v := 0; v < n; v++ {
		if tin[v] == -1 {
			return fmt.Errorf("dfs: vertex %d unreachable from root", v)
		}
	}
	anc := func(a, b int) bool { return tin[a] <= tin[b] && tin[b] < tout[a] }
	for _, e := range g.Edges() {
		if !anc(e.U, e.V) && !anc(e.V, e.U) {
			return fmt.Errorf("dfs: edge %v is a cross edge", e)
		}
	}
	return nil
}

// AsSpanningTree converts a complete partial tree into a spanning.Tree
// (with LCA, subtree and path machinery available).
func (pt *PartialTree) AsSpanningTree() (*spanning.Tree, error) {
	if !pt.Complete() {
		return nil, fmt.Errorf("dfs: tree incomplete (%d of %d vertices)", pt.added, len(pt.Parent))
	}
	return spanning.NewFromParents(pt.Root, pt.Parent)
}
