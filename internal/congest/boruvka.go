package congest

// BoruvkaNode is the per-vertex program of a synchronous, message-level
// Borůvka spanning-forest construction per part (Lemma 9's algorithm with
// the 0/1 weight rule: only intra-part edges are ever chosen, so each part
// ends with its own spanning tree).
//
// Phases are clocked by round arithmetic (every node knows n): each phase
// exchanges fragment IDs (1 round), floods the fragment's minimum outgoing
// intra-part edge (n rounds; edge IDs serve as distinct weights, so the
// chosen edge set stays acyclic), bridges the chosen edge (1 round), and
// floods the merged fragment's new ID — the minimum member ID — over
// fragment and forest edges (n+1 rounds). Fragment count halves per phase,
// so O(log n) phases and O(n log n) rounds total — the classic unoptimized
// bound; the Õ(D) version replaces the floods with low-congestion-shortcut
// aggregation (charged by dist.SpanningForestOps).
//
// After the run, ForestPorts marks the ports whose edges form the spanning
// forest, and Fragment holds the final fragment ID (the minimum vertex ID
// of the node's part).
type BoruvkaNode struct {
	info NodeInfo
	part int

	frag      int
	nbrFrag   []int // neighbour fragment IDs as of this phase
	nbrPart   []int // neighbour part IDs (learned in the first exchange)
	best      int   // best (minimum) outgoing edge ID seen this phase
	bestMine  int   // my own candidate edge ID (or infinity)
	fragDone  bool
	improved  bool
	newFrag   int
	fragFlood bool

	// ForestPorts[p] reports whether port p's edge belongs to the forest.
	ForestPorts []bool
	// Fragment is the node's final fragment identifier.
	Fragment int
}

const (
	msgBorFrag = iota + 200
	msgBorBest
	msgBorMerge
	msgBorNewFrag
)

const borInf = int(^uint(0) >> 1)

// NewBoruvkaNodes builds the per-part Borůvka programs.
func NewBoruvkaNodes(nw *Network, partOf []int) []Node {
	nodes := make([]Node, nw.G.N())
	for v := 0; v < nw.G.N(); v++ {
		info := nw.Info(v)
		bn := &BoruvkaNode{
			info:        info,
			part:        partOf[v],
			frag:        v,
			nbrFrag:     make([]int, len(info.Neighbors)),
			nbrPart:     make([]int, len(info.Neighbors)),
			ForestPorts: make([]bool, len(info.Neighbors)),
			Fragment:    v,
		}
		for p := range bn.nbrFrag {
			bn.nbrFrag[p] = -1
			bn.nbrPart[p] = -1
		}
		nodes[v] = bn
	}
	return nodes
}

// edgeIDOfPort derives a globally unique, order-consistent edge key for
// port p: the pair (min endpoint, max endpoint) packed into one word.
func (bn *BoruvkaNode) edgeKey(p int) int {
	a, b := bn.info.ID, bn.info.Neighbors[p]
	if a > b {
		a, b = b, a
	}
	return a*bn.info.N + b
}

// Round implements Node.
func (bn *BoruvkaNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	n := bn.info.N
	phaseLen := 2*n + 4
	r := round % phaseLen

	// Ingest messages first.
	for _, in := range recv {
		switch in.Msg.Kind {
		case msgBorFrag:
			bn.nbrFrag[in.Port] = in.Msg.Args[0]
			bn.nbrPart[in.Port] = in.Msg.Args[1]
		case msgBorBest:
			if x := in.Msg.Args[0]; x < bn.best {
				bn.best = x
				bn.improved = true
			}
		case msgBorMerge:
			bn.ForestPorts[in.Port] = true
		case msgBorNewFrag:
			if x := in.Msg.Args[0]; x < bn.newFrag {
				bn.newFrag = x
				bn.fragFlood = true
			}
		}
	}

	if bn.fragDone {
		return nil, true
	}

	var out []Outgoing
	switch {
	case r == 0:
		// Announce the (possibly just merged) fragment.
		for p := range bn.info.Neighbors {
			out = append(out, Outgoing{Port: p, Msg: Message{
				Kind: msgBorFrag, Args: []int{bn.frag, bn.part}}})
		}
	case r == 1:
		// Determine my own MOE candidate; seed the flood.
		bn.bestMine = borInf
		for p := range bn.info.Neighbors {
			if bn.nbrPart[p] == bn.part && bn.nbrFrag[p] != bn.frag {
				if k := bn.edgeKey(p); k < bn.bestMine {
					bn.bestMine = k
				}
			}
		}
		bn.best = bn.bestMine
		bn.improved = true
		fallthrough
	case r > 1 && r <= n+1:
		// Flood window 1: broadcast the best seen on improvement.
		if bn.improved && bn.best < borInf {
			bn.improved = false
			for p := range bn.info.Neighbors {
				if bn.nbrFrag[p] == bn.frag && bn.nbrPart[p] == bn.part {
					out = append(out, Outgoing{Port: p, Msg: Message{
						Kind: msgBorBest, Args: []int{bn.best}}})
				}
			}
		}
	case r == n+2:
		// Bridge: if my own candidate is the fragment's best, choose it.
		if bn.best == borInf {
			// The whole fragment has no outgoing intra-part edge: its part
			// is spanned; this node is done.
			bn.fragDone = true
			bn.Fragment = bn.frag
			return nil, true
		}
		if bn.bestMine == bn.best {
			// Find the port realizing the key and mark + notify it.
			for p := range bn.info.Neighbors {
				if bn.nbrPart[p] == bn.part && bn.nbrFrag[p] != bn.frag && bn.edgeKey(p) == bn.best {
					bn.ForestPorts[p] = true
					out = append(out, Outgoing{Port: p, Msg: Message{Kind: msgBorMerge}})
					break
				}
			}
		}
		bn.newFrag = bn.frag
		bn.fragFlood = true
	case r >= n+3 && r <= 2*n+3:
		// Flood window 2: minimum fragment ID over fragment + forest edges.
		if bn.fragFlood {
			bn.fragFlood = false
			for p := range bn.info.Neighbors {
				if bn.ForestPorts[p] || (bn.nbrFrag[p] == bn.frag && bn.nbrPart[p] == bn.part) {
					out = append(out, Outgoing{Port: p, Msg: Message{
						Kind: msgBorNewFrag, Args: []int{bn.newFrag}}})
				}
			}
		}
		if r == 2*n+3 {
			bn.frag = bn.newFrag
			bn.Fragment = bn.frag
		}
	}
	return out, false
}
