package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/gen"
	"planardfs/internal/spanning"
)

func TestAncestorSum(t *testing.T) {
	g := gridGraph(t, 6, 6)
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	value := make([]int, g.N())
	for v := range value {
		value[v] = v + 1
	}
	nw := New(g)
	nodes := NewAncestorSumNodes(nw, tree.Parent, 0, value, OpSum)
	rounds, err := nw.Run(nodes, 10*g.N())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		want := 0
		for x := v; x != -1; x = tree.Parent[x] {
			want += value[x]
		}
		if got := nodes[v].(*AncestorSumNode).Prefix; got != want {
			t.Fatalf("node %d: prefix %d, want %d", v, got, want)
		}
	}
	if rounds > tree.MaxDepth()+3 {
		t.Fatalf("rounds %d for depth %d", rounds, tree.MaxDepth())
	}
}

// Property: ancestor sums agree with the tree on random planar instances
// and deep spanning trees (the Θ(n)-depth stress case).
func TestAncestorSumDeepProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 4 + int(sz)%60
		in, err := gen.SparsePlanar(n, 0.4, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		root := rng.Intn(n)
		tree, err := spanning.DeepDFSTree(in.G, root)
		if err != nil {
			return false
		}
		value := make([]int, n)
		for v := range value {
			value[v] = rng.Intn(100)
		}
		nw := New(in.G)
		nodes := NewAncestorSumNodes(nw, tree.Parent, root, value, OpSum)
		if _, err := nw.Run(nodes, 10*n+10); err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			want := 0
			for x := v; x != -1; x = tree.Parent[x] {
				want += value[x]
			}
			if nodes[v].(*AncestorSumNode).Prefix != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
