package congest

import (
	"errors"
	"strings"
	"testing"
)

func TestMessageWords(t *testing.T) {
	if (Message{Kind: 1}).Words() != 1 {
		t.Fatal("kind-only message should cost 1 word")
	}
	if (Message{Kind: 1, Args: []int{1, 2, 3}}).Words() != 4 {
		t.Fatal("3-arg message should cost 4 words")
	}
}

func TestAggOpCombine(t *testing.T) {
	cases := []struct {
		op      AggOp
		a, b, w int
	}{
		{OpSum, 3, 4, 7},
		{OpMin, 3, 4, 3},
		{OpMin, 4, 3, 3},
		{OpMax, 3, 4, 4},
		{OpMax, 4, 3, 4},
	}
	for _, c := range cases {
		if got := c.op.combine(c.a, c.b); got != c.w {
			t.Errorf("op %d combine(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op should panic")
		}
	}()
	AggOp(0).combine(1, 2)
}

func TestRunNodeCountMismatch(t *testing.T) {
	g := gridGraph(t, 2, 2)
	nw := New(g)
	if _, err := nw.Run([]Node{&silentNode{}}, 10); err == nil {
		t.Fatal("wrong node count accepted")
	}
}

// Regression: Stats must return a defensive copy of RoundMessages, so a
// caller mutating the returned slice cannot corrupt the engine's histogram.
func TestStatsDefensiveCopy(t *testing.T) {
	g := gridGraph(t, 4, 4)
	nw := New(g)
	if _, err := nw.Run(NewBFSNodes(nw, 0), 1000); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if len(st.RoundMessages) == 0 {
		t.Fatal("no rounds recorded")
	}
	want := append([]int64(nil), st.RoundMessages...)
	for i := range st.RoundMessages {
		st.RoundMessages[i] = -999
	}
	got := nw.Stats().RoundMessages
	if len(got) != len(want) {
		t.Fatalf("histogram length changed: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("round %d: internal histogram corrupted via returned slice (%d != %d)", i, got[i], want[i])
		}
	}
}

// Regression: a non-positive round budget must be rejected up front with a
// distinct error, not reported as a round-limit overrun of a run that never
// stepped a node.
func TestInvalidRoundLimit(t *testing.T) {
	g := gridGraph(t, 2, 2)
	nw := New(g)
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &silentNode{}
	}
	for _, bad := range []int{0, -1, -100} {
		_, err := nw.Run(nodes, bad)
		if !errors.Is(err, ErrInvalidRoundLimit) {
			t.Fatalf("Run(nodes, %d) = %v, want ErrInvalidRoundLimit", bad, err)
		}
		if errors.Is(err, ErrRoundLimit) {
			t.Fatalf("Run(nodes, %d) reported a round-limit overrun: %v", bad, err)
		}
	}
}

// Regression for the epoch-stamped duplicate-port detection: two sends on
// one port in one round must be rejected under both engines, including on a
// graph large enough that the parallel path actually shards.
func TestDuplicatePortRejectedBothEngines(t *testing.T) {
	g := gridGraph(t, 16, 16) // large enough for the sharded engine on any CPU count
	for _, parallel := range []bool{false, true} {
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = &silentNode{}
		}
		nodes[0] = &doubleSender{}
		nw := New(g)
		nw.Parallel = parallel
		nw.Workers = 4 // force real sharding regardless of host CPU count
		_, err := nw.Run(nodes, 10)
		if err == nil {
			t.Fatalf("parallel=%v: two messages on one port in one round accepted", parallel)
		}
		if !strings.Contains(err.Error(), "two messages on port") {
			t.Fatalf("parallel=%v: wrong error: %v", parallel, err)
		}
	}
}

func TestInfoContents(t *testing.T) {
	g := gridGraph(t, 3, 3)
	nw := New(g)
	info := nw.Info(0)
	if info.ID != 0 || info.N != 9 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Neighbors) != g.Degree(0) {
		t.Fatal("neighbour count wrong")
	}
	for p, w := range info.Neighbors {
		id := int(g.IncidentEdges(0)[p])
		if g.EdgeByID(id).Other(0) != w {
			t.Fatal("port order inconsistent with incident edges")
		}
	}
}
