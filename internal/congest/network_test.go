package congest

import (
	"testing"
)

func TestMessageWords(t *testing.T) {
	if (Message{Kind: 1}).Words() != 1 {
		t.Fatal("kind-only message should cost 1 word")
	}
	if (Message{Kind: 1, Args: []int{1, 2, 3}}).Words() != 4 {
		t.Fatal("3-arg message should cost 4 words")
	}
}

func TestAggOpCombine(t *testing.T) {
	cases := []struct {
		op      AggOp
		a, b, w int
	}{
		{OpSum, 3, 4, 7},
		{OpMin, 3, 4, 3},
		{OpMin, 4, 3, 3},
		{OpMax, 3, 4, 4},
		{OpMax, 4, 3, 4},
	}
	for _, c := range cases {
		if got := c.op.combine(c.a, c.b); got != c.w {
			t.Errorf("op %d combine(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op should panic")
		}
	}()
	AggOp(0).combine(1, 2)
}

func TestRunNodeCountMismatch(t *testing.T) {
	g := gridGraph(t, 2, 2)
	nw := New(g)
	if _, err := nw.Run([]Node{&silentNode{}}, 10); err == nil {
		t.Fatal("wrong node count accepted")
	}
}

func TestInfoContents(t *testing.T) {
	g := gridGraph(t, 3, 3)
	nw := New(g)
	info := nw.Info(0)
	if info.ID != 0 || info.N != 9 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Neighbors) != g.Degree(0) {
		t.Fatal("neighbour count wrong")
	}
	for p, w := range info.Neighbors {
		id := g.IncidentEdges(0)[p]
		if g.EdgeByID(id).Other(0) != w {
			t.Fatal("port order inconsistent with incident edges")
		}
	}
}
