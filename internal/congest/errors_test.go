package congest

import (
	"errors"
	"strings"
	"testing"
)

// Typed Run errors: every failure class matches its sentinel through
// errors.Is and reports the offending round, vertex and port in its
// message, so supervisors can branch without parsing strings (and humans
// can read the strings anyway).

// misbehaveNode violates a chosen sending rule at a chosen round; before
// that it sends nothing.
type misbehaveNode struct {
	at   int
	send func() []Outgoing
}

func (m *misbehaveNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	if round == m.at {
		return m.send(), false
	}
	return nil, false
}

// runMisbehaving runs a 2x2 grid where vertex 3 misbehaves at round 2.
func runMisbehaving(t *testing.T, send func() []Outgoing) error {
	t.Helper()
	g := gridGraph(t, 2, 2)
	nodes := make([]Node, g.N())
	for v := range nodes {
		nodes[v] = &misbehaveNode{at: -1}
	}
	nodes[3] = &misbehaveNode{at: 2, send: send}
	nw := New(g)
	_, err := nw.Run(nodes, 10)
	if err == nil {
		t.Fatal("protocol violation accepted")
	}
	return err
}

func TestProtocolErrorInvalidPort(t *testing.T) {
	err := runMisbehaving(t, func() []Outgoing {
		return []Outgoing{{Port: 7, Msg: Message{Kind: 1}}}
	})
	if !errors.Is(err, ErrProtocol) || !errors.Is(err, ErrInvalidPort) {
		t.Fatalf("err = %v, want ErrProtocol and ErrInvalidPort", err)
	}
	if errors.Is(err, ErrDuplicateSend) || errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v matches the wrong specific sentinel", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *ProtocolError", err)
	}
	if pe.Round != 2 || pe.Vertex != 3 || pe.Port != 7 {
		t.Fatalf("ProtocolError = %+v, want round 2 vertex 3 port 7", pe)
	}
	want := "congest: round 2: node 3 sent on invalid port 7"
	if err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
}

func TestProtocolErrorDuplicateSend(t *testing.T) {
	err := runMisbehaving(t, func() []Outgoing {
		return []Outgoing{
			{Port: 0, Msg: Message{Kind: 1}},
			{Port: 0, Msg: Message{Kind: 2}},
		}
	})
	if !errors.Is(err, ErrProtocol) || !errors.Is(err, ErrDuplicateSend) {
		t.Fatalf("err = %v, want ErrProtocol and ErrDuplicateSend", err)
	}
	want := "congest: round 2: node 3 sent two messages on port 0 in one round"
	if err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
}

func TestProtocolErrorMessageTooLarge(t *testing.T) {
	err := runMisbehaving(t, func() []Outgoing {
		return []Outgoing{{Port: 0, Msg: Message{Kind: 1, Args: []int{1, 2, 3, 4, 5, 6}}}}
	})
	if !errors.Is(err, ErrProtocol) || !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrProtocol and ErrMessageTooLarge", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *ProtocolError", err)
	}
	if pe.Words != 7 || pe.Limit != 4 {
		t.Fatalf("ProtocolError = %+v, want words 7 limit 4", pe)
	}
	if !strings.Contains(err.Error(), "node 3 sent a message of 7 words on port 0, exceeding the 4-word limit") {
		t.Fatalf("message = %q lacks the size diagnosis", err.Error())
	}
}

func TestRoundLimitErrorDetails(t *testing.T) {
	g := gridGraph(t, 4, 4)
	nw := New(g)
	nodes := NewBFSNodes(nw, 0)
	_, err := nw.Run(nodes, 2)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	var rl *RoundLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %T, want *RoundLimitError", err)
	}
	if rl.Limit != 2 {
		t.Fatalf("Limit = %d, want 2", rl.Limit)
	}
	want := "congest: round limit exceeded (limit 2)"
	if err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
}
