package congest

import (
	"testing"

	"planardfs/internal/spanning"
)

// Failure injection: protocol violations must surface as errors, never
// hang or silently corrupt the run.

type badPortNode struct{ round int }

func (b *badPortNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	b.round = round
	if round == 3 {
		return []Outgoing{{Port: 99, Msg: Message{Kind: 1}}}, false
	}
	return []Outgoing{{Port: 0, Msg: Message{Kind: 1}}}, false
}

func TestMidRunInvalidPort(t *testing.T) {
	g := gridGraph(t, 2, 2)
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &badPortNode{}
	}
	nw := New(g)
	if _, err := nw.Run(nodes, 100); err == nil {
		t.Fatal("mid-run invalid port accepted")
	}
}

// A PA run over a corrupted tree (a non-tree parent array) must fail fast
// via the round limit rather than deliver wrong aggregates silently.
func TestPAOverCorruptTree(t *testing.T) {
	g := gridGraph(t, 3, 3)
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = (v + 1) % g.N() // a cycle, not a tree
	}
	parent[0] = -1
	partOf := make([]int, g.N())
	value := make([]int, g.N())
	nw := New(g)
	// PortTo(-1-neighbours) yields -1 ports for non-adjacent "parents";
	// sends on them must be rejected, or the run must hit the round limit.
	defer func() { recover() }() // construction may panic on non-adjacency
	nodes := NewPANodes(nw, parent, 0, partOf, value, OpSum)
	if _, err := nw.Run(nodes, 200); err == nil {
		for _, nd := range nodes {
			if !nd.(*PANode).HasResult {
				return // incomplete results: acceptable failure mode
			}
		}
		t.Fatal("corrupt tree produced complete results without error")
	}
}

// Awerbuch started at an out-of-graph root index panics at construction;
// started concurrently from two roots (two tokens) must still terminate —
// the stronger token-invariant breaks, but the simulator must not hang.
func TestAwerbuchTwoTokens(t *testing.T) {
	g := gridGraph(t, 4, 4)
	nw := New(g)
	nodes := NewAwerbuchNodes(nw, 0)
	// Inject a second token by marking node 15 as a root too.
	an := nodes[15].(*AwerbuchNode)
	*an = *NewAwerbuchNodes(nw, 15)[15].(*AwerbuchNode)
	if _, err := nw.Run(nodes, 10*g.N()); err != nil {
		// Hitting the round limit is an acceptable outcome; hanging is not
		// (Run enforces the limit).
		t.Logf("two-token run errored as expected: %v", err)
	}
}

// The convergecast over a tree whose root is mis-declared (a child thinks
// the wrong neighbour is its parent) must hit the round limit, not
// deadlock forever.
func TestConvergecastWrongParent(t *testing.T) {
	g := gridGraph(t, 3, 3)
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	parent := append([]int(nil), tree.Parent...)
	// Corrupt: vertex 8 claims vertex 4 as parent while 4 doesn't list 8
	// as a child — 4 waits forever for a child that reports elsewhere.
	if g.HasEdge(8, 4) && parent[8] != 4 {
		parent[8] = 4
	}
	value := make([]int, g.N())
	nw := New(g)
	nodes := NewConvergecastNodes(nw, parent, 0, value, OpSum)
	if _, err := nw.Run(nodes, 50); err == nil {
		// If the corruption happened to still form a tree, that's fine.
		t.Log("corrupted parent array still converged (formed a valid tree)")
	}
}
