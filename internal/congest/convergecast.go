package congest

// ConvergecastNode aggregates a value up a given tree: every node combines
// its own input with its children's aggregates and forwards the result to
// its parent; the root learns the aggregate of the whole tree in depth(T)
// rounds. The classic building block behind the SUM-TREE and
// DESCENDANT-SUM problems (Prop. 5) when run over a BFS tree.
//
// After the run, every node's Subtree field holds the aggregate of its own
// subtree (so the program simultaneously solves the descendant-sum
// problem).
type ConvergecastNode struct {
	info       NodeInfo
	op         AggOp
	parentPort int
	waiting    map[int]bool // child ports not yet reported
	acc        int
	sent       bool

	// Subtree is the aggregate over the node's subtree (valid once the
	// node has reported; always valid after the run).
	Subtree int
}

const msgConverge = 100

// NewConvergecastNodes builds the convergecast programs over the tree given
// by parent (parent[root] == -1), aggregating value with op.
func NewConvergecastNodes(nw *Network, parent []int, root int, value []int, op AggOp) []Node {
	n := nw.G.N()
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if v != root {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		cn := &ConvergecastNode{
			info:       nw.Info(v),
			op:         op,
			parentPort: -1,
			waiting:    map[int]bool{},
			acc:        value[v],
		}
		if v != root {
			cn.parentPort = cn.info.PortTo(parent[v])
		}
		for _, c := range children[v] {
			cn.waiting[cn.info.PortTo(c)] = true
		}
		nodes[v] = cn
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven.
func (cn *ConvergecastNode) CongestEventDriven() {}

// Round implements Node.
func (cn *ConvergecastNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		if in.Msg.Kind != msgConverge {
			continue
		}
		if cn.waiting[in.Port] {
			delete(cn.waiting, in.Port)
			var p intPayload
			Unpack(in.Msg, &p)
			cn.acc = cn.op.combine(cn.acc, p.Val)
		}
	}
	if len(cn.waiting) > 0 || cn.sent {
		return nil, cn.sent
	}
	cn.Subtree = cn.acc
	cn.sent = true
	if cn.parentPort < 0 {
		return nil, true
	}
	return []Outgoing{{Port: cn.parentPort, Msg: Pack(msgConverge, &intPayload{Val: cn.acc})}}, true
}
