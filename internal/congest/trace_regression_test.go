package congest

import (
	"bytes"
	"reflect"
	"testing"

	"planardfs/internal/trace"
)

// TestTraceIdenticalAcrossEngines locks the determinism contract of the
// tracing subsystem: the parallel (goroutine-per-chunk) and sequential
// round engines must produce byte-identical trace exports and equal stats
// on the same seeded workload, because the tracer is only driven from the
// sequential delivery section of the round loop.
func TestTraceIdenticalAcrossEngines(t *testing.T) {
	g := gridGraph(t, 9, 9)
	run := func(parallel bool) (*trace.Recorder, Stats) {
		rec := trace.NewRecorder()

		nw := New(g)
		nw.Parallel = parallel
		if parallel {
			nw.Workers = 4 // real sharding even on a single-CPU host
		}
		nw.Tracer = rec
		nodes := NewAwerbuchNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()); err != nil {
			t.Fatal(err)
		}
		awe := nw.Stats()

		// A second program on the same recorder: the pipelined PA sum over
		// a BFS tree, exercising multi-word messages and the per-round
		// congestion counters.
		parent := make([]int, g.N())
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		res := g.BFS(0)
		for v := 0; v < g.N(); v++ {
			parent[v] = res.Parent[v]
			partOf[v] = 0
			value[v] = 1
		}
		nw2 := New(g)
		nw2.Parallel = parallel
		if parallel {
			nw2.Workers = 4
		}
		nw2.Tracer = rec
		panodes := NewPANodes(nw2, parent, 0, partOf, value, OpSum)
		if _, err := nw2.Run(panodes, 100*g.N()); err != nil {
			t.Fatal(err)
		}
		return rec, awe
	}

	recPar, stPar := run(true)
	recSeq, stSeq := run(false)
	if !reflect.DeepEqual(stPar, stSeq) {
		t.Fatalf("stats diverge:\nparallel:   %+v\nsequential: %+v", stPar, stSeq)
	}

	export := func(rec *trace.Recorder) (jsonl, chrome []byte) {
		var bj, bc bytes.Buffer
		if err := rec.WriteJSONL(&bj); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteChromeTrace(&bc); err != nil {
			t.Fatal(err)
		}
		return bj.Bytes(), bc.Bytes()
	}
	jPar, cPar := export(recPar)
	jSeq, cSeq := export(recSeq)
	if !bytes.Equal(jPar, jSeq) {
		t.Fatal("JSONL trace differs between parallel and sequential engines")
	}
	if !bytes.Equal(cPar, cSeq) {
		t.Fatal("Chrome trace differs between parallel and sequential engines")
	}
	if len(recPar.Spans()) == 0 {
		t.Fatal("trace is empty")
	}
}
