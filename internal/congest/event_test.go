package congest

import (
	"reflect"
	"testing"

	"planardfs/internal/gen"
)

// eventTrial runs one program family under a given schedule and returns
// its per-vertex results plus the run statistics.
type scheduleResult struct {
	rounds  int
	stats   Stats
	results [][3]int
}

// TestEventScheduleEquivalence locks the EventDriven contract: for every
// built-in message-driven program, the event-driven schedule (quiescent
// nodes skipped, sender-driven delivery) must produce rounds, Stats
// (including the RoundMessages histogram) and per-node results identical
// to the classic schedule that steps every node every round, under both
// the sequential and the sharded-parallel classic engines.
func TestEventScheduleEquivalence(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		family := "sparse"
		if trial%2 == 1 {
			family = "stacked"
		}
		n := 80 + 17*trial
		in, err := gen.ByName(family, n, int64(trial+7))
		if err != nil {
			t.Fatal(err)
		}
		g := in.G

		// A BFS-tree parent array for the tree-structured programs, taken
		// from a classic-schedule run so it cannot depend on the code under
		// test.
		parent := make([]int, g.N())
		{
			nw := New(g)
			nw.StepAll = true
			nodes := NewBFSNodes(nw, 0)
			if _, err := nw.Run(nodes, 4*g.N()); err != nil {
				t.Fatal(err)
			}
			for v := range parent {
				parent[v] = nodes[v].(*BFSNode).ParentID
			}
		}
		value := make([]int, g.N())
		partOf := make([]int, g.N())
		for v := range value {
			value[v] = (v*2654435761 + trial) % 1000
			partOf[v] = v % (3 + trial%5)
		}

		programs := []struct {
			name  string
			build func(nw *Network) ([]Node, func(v int, nd Node) [3]int)
		}{
			{"bfs", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewBFSNodes(nw, 0), func(_ int, nd Node) [3]int {
					b := nd.(*BFSNode)
					return [3]int{b.Dist, b.ParentID, 0}
				}
			}},
			{"awerbuch", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewAwerbuchNodes(nw, 0), func(_ int, nd Node) [3]int {
					a := nd.(*AwerbuchNode)
					return [3]int{a.Depth, a.ParentID, 0}
				}
			}},
			{"convergecast", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewConvergecastNodes(nw, parent, 0, value, OpSum), func(_ int, nd Node) [3]int {
					return [3]int{nd.(*ConvergecastNode).Subtree, 0, 0}
				}
			}},
			{"ancestorsum", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewAncestorSumNodes(nw, parent, 0, value, OpSum), func(_ int, nd Node) [3]int {
					return [3]int{nd.(*AncestorSumNode).Prefix, 0, 0}
				}
			}},
			{"broadcast", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewBroadcastNodes(nw, parent, 0, 42+trial), func(_ int, nd Node) [3]int {
					c := nd.(*CastNode)
					has := 0
					if c.Has {
						has = 1
					}
					return [3]int{c.Value, has, 0}
				}
			}},
			{"pa", func(nw *Network) ([]Node, func(int, Node) [3]int) {
				return NewPANodes(nw, parent, 0, partOf, value, OpMin), func(_ int, nd Node) [3]int {
					p := nd.(*PANode)
					has := 0
					if p.HasResult {
						has = 1
					}
					return [3]int{p.Result, has, 0}
				}
			}},
		}

		for _, prog := range programs {
			run := func(stepAll, parallel bool, workers int) scheduleResult {
				nw := New(g)
				nw.StepAll = stepAll
				nw.Parallel = parallel
				nw.Workers = workers
				nodes, extract := prog.build(nw)
				rounds, err := nw.Run(nodes, 16*g.N())
				if err != nil {
					t.Fatalf("trial %d %s stepAll=%v: %v", trial, prog.name, stepAll, err)
				}
				res := make([][3]int, len(nodes))
				for v, nd := range nodes {
					res[v] = extract(v, nd)
				}
				return scheduleResult{rounds, nw.Stats(), res}
			}
			event := run(false, false, 0)
			classicSeq := run(true, false, 0)
			classicPar := run(true, true, 3+trial%4)
			for _, classic := range []struct {
				name string
				r    scheduleResult
			}{{"sequential", classicSeq}, {"parallel", classicPar}} {
				if event.rounds != classic.r.rounds {
					t.Fatalf("trial %d %s: event rounds %d != classic %s %d",
						trial, prog.name, event.rounds, classic.name, classic.r.rounds)
				}
				if !reflect.DeepEqual(event.stats, classic.r.stats) {
					t.Fatalf("trial %d %s: stats diverge from classic %s\nevent:   %+v\nclassic: %+v",
						trial, prog.name, classic.name, event.stats, classic.r.stats)
				}
				if !reflect.DeepEqual(event.results, classic.r.results) {
					t.Fatalf("trial %d %s: results diverge from classic %s", trial, prog.name, classic.name)
				}
			}
		}
	}
}

// TestEventScheduleSelected pins the eligibility rule: all-EventDriven
// programs select the event schedule, and a single non-marker node, an
// injector, or the StepAll override fall back to the classic schedule.
func TestEventScheduleSelected(t *testing.T) {
	in, err := gen.ByName("sparse", 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := in.G
	build := func(nw *Network) []Node { return NewBFSNodes(nw, 0) }

	nw := New(g)
	nodes := build(nw)
	e := newEngine(nw, nodes)
	if !e.event {
		t.Fatal("all-EventDriven run did not select the event schedule")
	}
	e.stop()

	nw = New(g)
	nw.StepAll = true
	e = newEngine(nw, build(nw))
	if e.event {
		t.Fatal("StepAll run selected the event schedule")
	}
	e.stop()

	nw = New(g)
	nodes = build(nw)
	nodes[7] = &chatterNode{deg: g.Degree(7), stopRound: 0}
	e = newEngine(nw, nodes)
	if e.event {
		t.Fatal("run with a non-EventDriven node selected the event schedule")
	}
	e.stop()
}
