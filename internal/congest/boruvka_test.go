package congest

import (
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

// runBoruvka executes the message-level Borůvka and returns the forest
// edges and per-node fragments.
func runBoruvka(t *testing.T, g *graph.Graph, partOf []int) ([]graph.Edge, []int, int) {
	t.Helper()
	nw := New(g)
	nodes := NewBoruvkaNodes(nw, partOf)
	n := g.N()
	phaseLen := 2*n + 4
	rounds, err := nw.Run(nodes, phaseLen*(20+2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Edge]bool{}
	var forest []graph.Edge
	frag := make([]int, n)
	for v := 0; v < n; v++ {
		bn := nodes[v].(*BoruvkaNode)
		frag[v] = bn.Fragment
		for p, on := range bn.ForestPorts {
			if !on {
				continue
			}
			e := graph.Edge{U: v, V: bn.info.Neighbors[p]}.Normalize()
			if !seen[e] {
				seen[e] = true
				forest = append(forest, e)
			}
		}
	}
	return forest, frag, rounds
}

func TestBoruvkaSinglePart(t *testing.T) {
	in, err := gen.StackedTriangulation(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	forest, frag, rounds := runBoruvka(t, in.G, partOf)
	if len(forest) != in.G.N()-1 {
		t.Fatalf("forest has %d edges, want %d", len(forest), in.G.N()-1)
	}
	// The forest is a spanning tree: build it and validate.
	tg := graph.New(in.G.N())
	for _, e := range forest {
		tg.MustAddEdge(e.U, e.V)
	}
	if !tg.Connected() {
		t.Fatal("forest not connected")
	}
	for v, f := range frag {
		if f != 0 {
			t.Fatalf("node %d fragment %d, want 0 (min ID)", v, f)
		}
	}
	// O(n log n) round bound with the fixed phase length.
	n := in.G.N()
	phaseLen := 2*n + 4
	if rounds > phaseLen*9 {
		t.Fatalf("rounds %d exceed %d phases", rounds, 9)
	}
}

func TestBoruvkaPerPartForest(t *testing.T) {
	in, err := gen.Grid(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Three vertical stripes.
	partOf := make([]int, in.G.N())
	for y := 0; y < 6; y++ {
		for x := 0; x < 10; x++ {
			partOf[y*10+x] = x / 4
		}
	}
	forest, frag, _ := runBoruvka(t, in.G, partOf)
	// Every forest edge stays within its part.
	for _, e := range forest {
		if partOf[e.U] != partOf[e.V] {
			t.Fatalf("forest edge %v crosses parts", e)
		}
	}
	// Per part: spanning tree (|P|-1 edges, connected) and fragment = min
	// member ID.
	parts := map[int][]int{}
	for v, p := range partOf {
		parts[p] = append(parts[p], v)
	}
	for p, vs := range parts {
		cnt := 0
		for _, e := range forest {
			if partOf[e.U] == p {
				cnt++
			}
		}
		if cnt != len(vs)-1 {
			t.Fatalf("part %d: %d forest edges for %d vertices", p, cnt, len(vs))
		}
		minID := vs[0]
		for _, v := range vs {
			if v < minID {
				minID = v
			}
		}
		for _, v := range vs {
			if frag[v] != minID {
				t.Fatalf("part %d: node %d fragment %d, want %d", p, v, frag[v], minID)
			}
		}
	}
}

// The message-level forest must agree in shape with the phase-level
// simulation: same per-part connectivity (edge sets may differ since MOE
// tie-breaking differs, but both must be spanning trees).
func TestBoruvkaMatchesPhaseLevelShape(t *testing.T) {
	in, err := gen.SparsePlanar(40, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	forest, _, _ := runBoruvka(t, in.G, partOf)
	tg := graph.New(in.G.N())
	for _, e := range forest {
		tg.MustAddEdge(e.U, e.V)
	}
	bt, err := spanning.BFSTree(tg, 0)
	if err != nil {
		t.Fatalf("message-level forest is not a spanning tree: %v", err)
	}
	if bt.N() != in.G.N() {
		t.Fatal("size mismatch")
	}
}
