package congest

import (
	"testing"

	"planardfs/internal/graph"
)

// saturatorNode sends one preallocated message on every port each round and
// never halts. It deliberately does NOT implement EventDriven, so the
// classic step/deliver engine — the annotated noalloc pair — runs it.
type saturatorNode struct {
	out []Outgoing
}

func (c *saturatorNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	return c.out, false
}

// TestRoundLoopZeroAlloc is the runtime gate behind the
// //planarvet:noalloc annotations on (*engine).step and (*engine).deliver:
// once the double-buffered inboxes have ramped up to their steady-state
// capacity, a full round (step barrier, delivery barrier, buffer swap)
// performs zero allocations even with every edge saturated in both
// directions.
func TestRoundLoopZeroAlloc(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(0, 2)

	nw := New(g)
	nw.Parallel = false // single shard: the measurement must not see goroutine churn
	nodes := make([]Node, g.N())
	for v := range nodes {
		out := make([]Outgoing, g.Degree(v))
		for p := range out {
			out[p] = Outgoing{Port: p, Msg: Message{Kind: 7}}
		}
		nodes[v] = &saturatorNode{out: out}
	}

	e := newEngine(nw, nodes)
	defer e.stop()
	if e.event {
		t.Fatal("classic engine expected: saturatorNode must not be EventDriven")
	}
	oneRound := func() {
		e.runPhase(phaseStep)
		e.runPhase(phaseDeliver)
		e.inboxCur, e.inboxNxt = e.inboxNxt, e.inboxCur
		e.round++
	}
	// Two warm-up rounds grow BOTH inbox buffers to steady-state capacity
	// (each round fills only the next-round buffer before the swap).
	oneRound()
	oneRound()
	for v := 0; v < e.n; v++ {
		if e.errs[v] != nil {
			t.Fatalf("warm-up round failed at vertex %d: %v", v, e.errs[v])
		}
	}

	allocs := testing.AllocsPerRun(100, oneRound)
	if allocs != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", allocs)
	}
	for v := 0; v < e.n; v++ {
		if got, want := len(e.inboxCur[v]), g.Degree(v); got != want {
			t.Fatalf("vertex %d received %d messages, want %d", v, got, want)
		}
	}
}
