package congest

// Payload is a typed CONGEST message body. Implementations declare the
// words a message carries as a flat struct of fixed-width integer fields
// and translate to and from the wire representation (Message.Args).
//
// The contract is the static side of the bandwidth rule: a payload type
// must be bounded by a fixed number of O(log n)-bit words, so its fields
// may only be fixed-width integers, booleans, and fixed-size arrays or
// nested structs thereof — never slices, maps, strings, interfaces or
// pointers, which have no a-priori word bound. The planarvet congestmsg
// analyzer enforces this on every type implementing Payload; the runtime
// MaxWords check in the engine remains the backstop.
type Payload interface {
	// AppendWords appends the payload's wire words to dst and returns the
	// extended slice.
	AppendWords(dst []int) []int
	// LoadWords fills the payload from the wire words it was packed to.
	LoadWords(words []int)
}

// Pack encodes p into a Message with the given kind tag.
func Pack(kind int, p Payload) Message {
	return Message{Kind: kind, Args: p.AppendWords(nil)}
}

// Unpack decodes m's arguments into p. The caller has already dispatched
// on m.Kind, so p is the matching payload type.
func Unpack(m Message, p Payload) {
	p.LoadWords(m.Args)
}

// intPayload is the one-word message body shared by the single-value
// programs: a BFS distance, a broadcast value, a convergecast aggregate.
type intPayload struct{ Val int }

// AppendWords implements Payload.
func (p *intPayload) AppendWords(dst []int) []int { return append(dst, p.Val) }

// LoadWords implements Payload.
func (p *intPayload) LoadWords(words []int) { p.Val = words[0] }

// pairPayload is the two-word body of the part-wise aggregation streams:
// a (part, value) pair.
type pairPayload struct{ Part, Value int }

// AppendWords implements Payload.
func (p *pairPayload) AppendWords(dst []int) []int { return append(dst, p.Part, p.Value) }

// LoadWords implements Payload.
func (p *pairPayload) LoadWords(words []int) { p.Part, p.Value = words[0], words[1] }
