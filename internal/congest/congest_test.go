package congest

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

func gridGraph(t *testing.T, w, h int) *graph.Graph {
	t.Helper()
	in, err := gen.Grid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return in.G
}

func TestBFSProgramMatchesReference(t *testing.T) {
	g := gridGraph(t, 5, 7)
	nw := New(g)
	nodes := NewBFSNodes(nw, 3)
	rounds, err := nw.Run(nodes, 10*g.N())
	if err != nil {
		t.Fatal(err)
	}
	ref := g.BFS(3)
	for v := 0; v < g.N(); v++ {
		bn := nodes[v].(*BFSNode)
		if bn.Dist != ref.Dist[v] {
			t.Fatalf("node %d: dist %d, want %d", v, bn.Dist, ref.Dist[v])
		}
		if v != 3 && bn.Dist != nodes[bn.ParentID].(*BFSNode).Dist+1 {
			t.Fatalf("node %d: parent %d not one level up", v, bn.ParentID)
		}
	}
	// BFS flooding finishes within a small multiple of the eccentricity.
	if ecc := g.Eccentricity(3); rounds > ecc+3 {
		t.Fatalf("BFS took %d rounds, eccentricity %d", rounds, ecc)
	}
}

func TestBroadcastProgram(t *testing.T) {
	g := gridGraph(t, 6, 6)
	nw := New(g)
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := NewBroadcastNodes(nw, tree.Parent, 0, 424242)
	if _, err := nw.Run(nodes, 10*g.N()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		cn := nodes[v].(*CastNode)
		if !cn.Has || cn.Value != 424242 {
			t.Fatalf("node %d did not receive broadcast", v)
		}
	}
}

// runPA runs part-wise aggregation over a BFS tree and returns results and
// rounds.
func runPA(t *testing.T, g *graph.Graph, partOf, value []int, op AggOp) ([]int, int) {
	t.Helper()
	nw := New(g)
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := NewPANodes(nw, tree.Parent, 0, partOf, value, op)
	rounds, err := nw.Run(nodes, 100*g.N()+1000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		pn := nodes[v].(*PANode)
		if !pn.HasResult {
			t.Fatalf("node %d has no PA result", v)
		}
		out[v] = pn.Result
	}
	return out, rounds
}

func TestPASumSinglePart(t *testing.T) {
	g := gridGraph(t, 4, 4)
	partOf := make([]int, g.N())
	value := make([]int, g.N())
	want := 0
	for v := range value {
		value[v] = v + 1
		want += v + 1
	}
	res, _ := runPA(t, g, partOf, value, OpSum)
	for v, r := range res {
		if r != want {
			t.Fatalf("node %d: sum %d, want %d", v, r, want)
		}
	}
}

func TestPAOpsMultiParts(t *testing.T) {
	g := gridGraph(t, 8, 8)
	rng := rand.New(rand.NewSource(99))
	partOf := make([]int, g.N())
	value := make([]int, g.N())
	for v := range partOf {
		partOf[v] = rng.Intn(7)
		value[v] = rng.Intn(1000) - 500
	}
	for _, op := range []AggOp{OpSum, OpMin, OpMax} {
		res, _ := runPA(t, g, partOf, value, op)
		// Reference aggregates.
		ref := map[int]int{}
		has := map[int]bool{}
		for v := range partOf {
			if !has[partOf[v]] {
				ref[partOf[v]] = value[v]
				has[partOf[v]] = true
			} else {
				ref[partOf[v]] = op.combine(ref[partOf[v]], value[v])
			}
		}
		for v, r := range res {
			if r != ref[partOf[v]] {
				t.Fatalf("op %d node %d: got %d, want %d", op, v, r, ref[partOf[v]])
			}
		}
	}
}

func TestPARoundsScaleWithDepthPlusParts(t *testing.T) {
	g := gridGraph(t, 16, 16)
	tree, _ := spanning.BFSTree(g, 0)
	depth := tree.MaxDepth()
	for _, k := range []int{1, 8, 64} {
		partOf := make([]int, g.N())
		value := make([]int, g.N())
		for v := range partOf {
			partOf[v] = v % k
			value[v] = 1
		}
		res, rounds := runPA(t, g, partOf, value, OpSum)
		for v, r := range res {
			want := g.N()/k + boolToInt(v%k < g.N()%k)*0 // parts are equal-sized here when k divides n
			_ = want
			// Just check positivity and consistency with a direct count.
			cnt := 0
			for u := range partOf {
				if partOf[u] == partOf[v] {
					cnt++
				}
			}
			if r != cnt {
				t.Fatalf("k=%d node %d: got %d, want %d", k, v, r, cnt)
			}
		}
		// O(depth + k) with a small constant.
		if rounds > 4*(2*depth+k)+20 {
			t.Fatalf("k=%d: %d rounds for depth %d", k, rounds, depth)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestAwerbuchDFS(t *testing.T) {
	for _, mk := range []func() *graph.Graph{
		func() *graph.Graph { return gridGraph(t, 6, 5) },
		func() *graph.Graph {
			in, err := gen.StackedTriangulation(40, 4)
			if err != nil {
				t.Fatal(err)
			}
			return in.G
		},
	} {
		g := mk()
		nw := New(g)
		nodes := NewAwerbuchNodes(nw, 0)
		rounds, err := nw.Run(nodes, 10*g.N())
		if err != nil {
			t.Fatal(err)
		}
		if rounds > 2*g.N()+2 {
			t.Fatalf("Awerbuch took %d rounds on n=%d", rounds, g.N())
		}
		parent := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			an := nodes[v].(*AwerbuchNode)
			parent[v] = an.ParentID
			if v == 0 {
				if an.ParentID != -1 || an.Depth != 0 {
					t.Fatal("root state wrong")
				}
			}
		}
		tree, err := spanning.NewFromParents(0, parent)
		if err != nil {
			t.Fatalf("Awerbuch output is not a tree: %v", err)
		}
		// Depths consistent.
		for v := 0; v < g.N(); v++ {
			if nodes[v].(*AwerbuchNode).Depth != tree.Depth[v] {
				t.Fatalf("node %d depth mismatch", v)
			}
		}
		// DFS property: every graph edge connects an ancestor-descendant pair.
		for _, e := range g.Edges() {
			if !tree.IsAncestor(e.U, e.V) && !tree.IsAncestor(e.V, e.U) {
				t.Fatalf("edge %v is a cross edge: not a DFS tree", e)
			}
		}
	}
}

func TestAwerbuchSingleVertex(t *testing.T) {
	g := graph.New(1)
	nw := New(g)
	nodes := NewAwerbuchNodes(nw, 0)
	if _, err := nw.Run(nodes, 10); err != nil {
		t.Fatal(err)
	}
}

type chattyNode struct{ deg int }

func (c *chattyNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	if round > 0 {
		return nil, true
	}
	// Oversized message.
	return []Outgoing{{Port: 0, Msg: Message{Kind: 1, Args: []int{1, 2, 3, 4, 5, 6}}}}, true
}

func TestBandwidthEnforced(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	nw := New(g)
	nodes := []Node{&chattyNode{}, &chattyNode{}}
	if _, err := nw.Run(nodes, 10); err == nil {
		t.Fatal("oversized message accepted")
	}
}

type doubleSender struct{}

func (d *doubleSender) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	if round > 0 {
		return nil, true
	}
	return []Outgoing{
		{Port: 0, Msg: Message{Kind: 1}},
		{Port: 0, Msg: Message{Kind: 2}},
	}, true
}

func TestOneMessagePerEdgePerRound(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	nw := New(g)
	if _, err := nw.Run([]Node{&doubleSender{}, &doubleSender{}}, 10); err == nil {
		t.Fatal("two messages on one port in one round accepted")
	}
}

type silentNode struct{}

func (s *silentNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	return nil, false // never done
}

func TestRoundLimit(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	nw := New(g)
	_, err := nw.Run([]Node{&silentNode{}, &silentNode{}}, 5)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := gridGraph(t, 9, 9)
	run := func(parallel bool) ([]int, Stats) {
		nw := New(g)
		nw.Parallel = parallel
		if parallel {
			nw.Workers = 4 // real sharding even on a single-CPU host
		}
		nodes := NewAwerbuchNodes(nw, 0)
		if _, err := nw.Run(nodes, 10*g.N()); err != nil {
			t.Fatal(err)
		}
		out := make([]int, g.N())
		for v := range out {
			out[v] = nodes[v].(*AwerbuchNode).ParentID
		}
		return out, nw.Stats()
	}
	pPar, sPar := run(true)
	pSeq, sSeq := run(false)
	for v := range pPar {
		if pPar[v] != pSeq[v] {
			t.Fatalf("node %d: parallel parent %d != sequential %d", v, pPar[v], pSeq[v])
		}
	}
	if !reflect.DeepEqual(sPar, sSeq) {
		t.Fatalf("stats diverge: %+v vs %+v", sPar, sSeq)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := gridGraph(t, 4, 4)
	nw := New(g)
	nodes := NewBFSNodes(nw, 0)
	if _, err := nw.Run(nodes, 1000); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Rounds == 0 || st.Messages == 0 || st.Words < st.Messages || st.MaxEdgeLoad == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestNodeInfoPortTo(t *testing.T) {
	g := gridGraph(t, 3, 3)
	nw := New(g)
	info := nw.Info(4) // centre of 3x3 grid
	for p, w := range info.Neighbors {
		if info.PortTo(w) != p {
			t.Fatal("PortTo inconsistent")
		}
	}
	if info.PortTo(999) != -1 {
		t.Fatal("PortTo of non-neighbour should be -1")
	}
}
