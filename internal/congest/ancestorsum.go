package congest

// AncestorSumNode solves the ANCESTOR-SUM-PROBLEM of Proposition 5 at the
// message level over a given tree: every node learns the aggregate of the
// inputs of its ancestors (inclusive of itself). The root seeds the
// downcast; each node combines the prefix received from its parent with its
// own input and forwards the result to its children — depth(T) rounds.
// Together with ConvergecastNode (the descendant sum) this realizes both
// directions of Prop. 5 as real CONGEST programs.
type AncestorSumNode struct {
	info       NodeInfo
	op         AggOp
	value      int
	parentPort int
	childPorts []int
	have       bool
	sent       bool

	// Prefix is the aggregate over the node's ancestors including itself.
	Prefix int
}

const msgAncestor = 110

// NewAncestorSumNodes builds the ancestor-sum programs over the tree given
// by parent (parent[root] == -1).
func NewAncestorSumNodes(nw *Network, parent []int, root int, value []int, op AggOp) []Node {
	n := nw.G.N()
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if v != root {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		an := &AncestorSumNode{
			info:       nw.Info(v),
			op:         op,
			value:      value[v],
			parentPort: -1,
		}
		if v != root {
			an.parentPort = an.info.PortTo(parent[v])
		} else {
			an.have = true
			an.Prefix = value[v]
		}
		for _, c := range children[v] {
			an.childPorts = append(an.childPorts, an.info.PortTo(c))
		}
		nodes[v] = an
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven.
func (an *AncestorSumNode) CongestEventDriven() {}

// Round implements Node.
func (an *AncestorSumNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		if in.Msg.Kind == msgAncestor && in.Port == an.parentPort && !an.have {
			an.have = true
			an.Prefix = an.op.combine(in.Msg.Args[0], an.value)
		}
	}
	if !an.have || an.sent {
		return nil, an.have
	}
	an.sent = true
	out := make([]Outgoing, 0, len(an.childPorts))
	for _, p := range an.childPorts {
		out = append(out, Outgoing{Port: p, Msg: Message{Kind: msgAncestor, Args: []int{an.Prefix}}})
	}
	return out, true
}
