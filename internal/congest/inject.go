package congest

// Fault injection hook. The round engines call an optional Injector at two
// deterministic points — once per vertex in the step phase (crash-stop)
// and once per in-flight message in the delivery phase (drop, corrupt,
// stall) — so a seeded fault plan perturbs a run identically under the
// sequential and sharded engines. internal/chaos provides the compiled
// deterministic implementation; the hook itself is policy-free.
//
// Concurrency contract (what makes injected runs engine-identical):
//
//   - Crashed(r, v) is invoked during the step phase from the worker that
//     owns vertex v; it must be a pure read of state compiled before Run.
//   - Deliver and Released for receiver dst are invoked during the
//     delivery phase only from the worker that owns dst, in the engine's
//     fixed scan order (ascending sender for Deliver, then one Released
//     call). Implementations may keep per-receiver and per-directed-edge
//     mutable state, but must not share mutable state across receivers.
//   - Pending is invoked from the coordinator between rounds, after the
//     delivery barrier.
//
// A nil Network.Injector skips every hook; the quiescent round stays
// allocation-free either way.

// DeliveryFate is an Injector's ruling on one in-flight message.
type DeliveryFate uint8

// The delivery fates.
const (
	// FateDeliver delivers the (possibly rewritten) message this round.
	FateDeliver DeliveryFate = iota
	// FateDrop discards the message; the sender is not notified.
	FateDrop
	// FateStall withholds the message now; the injector must hand it back
	// through Released in a later round or report it via Pending until it
	// does.
	FateStall
)

// Injector intercepts a run at the engine's fault-injection points. See the
// package comment above for the concurrency contract.
type Injector interface {
	// Crashed reports whether vertex v is crash-stopped at round r. A
	// crashed vertex does not step (its program is never called again),
	// sends nothing, and counts as done for termination; messages already
	// in flight to it are still delivered and ignored.
	Crashed(round, v int) bool
	// Deliver adjudicates the message from src (leaving on srcPort) into
	// dst (arriving on dstPort) at the given round. It may rewrite the
	// message (corruption) by returning a modified copy with FateDeliver;
	// it must not mutate msg.Args in place, which the sender may share
	// across ports.
	Deliver(round, src, srcPort, dst, dstPort int, msg Message) (Message, DeliveryFate)
	// Released appends messages previously stalled toward dst whose delay
	// expires at this round onto inbox and returns the extended slice. The
	// appended messages must own their Args (the original sender's buffers
	// are long recycled).
	Released(round, dst int, inbox []Incoming) []Incoming
	// Pending reports whether the injector still withholds stalled
	// messages; the network does not terminate while it returns true.
	Pending() bool
}
