package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planardfs/internal/gen"
	"planardfs/internal/spanning"
)

func TestConvergecastSum(t *testing.T) {
	g := gridGraph(t, 7, 5)
	tree, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	value := make([]int, g.N())
	want := 0
	for v := range value {
		value[v] = v*3 + 1
		want += value[v]
	}
	nw := New(g)
	nodes := NewConvergecastNodes(nw, tree.Parent, 0, value, OpSum)
	rounds, err := nw.Run(nodes, 10*g.N())
	if err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].(*ConvergecastNode).Subtree; got != want {
		t.Fatalf("root aggregate %d, want %d", got, want)
	}
	// Every node's subtree aggregate matches the tree.
	for v := 0; v < g.N(); v++ {
		wantSub := 0
		for u := 0; u < g.N(); u++ {
			if tree.IsAncestor(v, u) {
				wantSub += value[u]
			}
		}
		if got := nodes[v].(*ConvergecastNode).Subtree; got != wantSub {
			t.Fatalf("node %d subtree %d, want %d", v, got, wantSub)
		}
	}
	// Completes in about the tree depth.
	if rounds > tree.MaxDepth()+3 {
		t.Fatalf("rounds %d for depth %d", rounds, tree.MaxDepth())
	}
}

// Property: convergecast subtree counts equal SubtreeSize with all-ones
// inputs on random planar graphs.
func TestConvergecastCountsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%60
		in, err := gen.StackedTriangulation(n, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		root := rng.Intn(n)
		tree, err := spanning.BFSTree(in.G, root)
		if err != nil {
			return false
		}
		value := make([]int, n)
		for v := range value {
			value[v] = 1
		}
		nw := New(in.G)
		nodes := NewConvergecastNodes(nw, tree.Parent, root, value, OpSum)
		if _, err := nw.Run(nodes, 10*n); err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if nodes[v].(*ConvergecastNode).Subtree != tree.SubtreeSize(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvergecastMinMax(t *testing.T) {
	g := gridGraph(t, 4, 4)
	tree, _ := spanning.BFSTree(g, 0)
	value := make([]int, g.N())
	for v := range value {
		value[v] = (v*11 + 5) % 37
	}
	for _, op := range []AggOp{OpMin, OpMax} {
		nw := New(g)
		nodes := NewConvergecastNodes(nw, tree.Parent, 0, value, op)
		if _, err := nw.Run(nodes, 1000); err != nil {
			t.Fatal(err)
		}
		want := value[0]
		for _, x := range value[1:] {
			want = op.combine(want, x)
		}
		if got := nodes[0].(*ConvergecastNode).Subtree; got != want {
			t.Fatalf("op %d: %d, want %d", op, got, want)
		}
	}
}
