package congest

// PortTo returns the port leading to the neighbour with the given ID, or -1.
func (ni NodeInfo) PortTo(id int) int {
	for p, w := range ni.Neighbors {
		if w == id {
			return p
		}
	}
	return -1
}

// Message kinds shared by the built-in programs.
const (
	msgBFS = iota + 1
	msgPAPair
	msgPAEnd
	msgDownPair
	msgDownEnd
	msgVisited
	msgToken
	msgReturn
	msgCast
)

// BFSNode is the per-vertex program of distributed BFS flooding from a root.
// After the run, Dist and ParentID hold the BFS distance and tree parent.
type BFSNode struct {
	info     NodeInfo
	root     int
	Dist     int
	ParentID int
	pending  bool // a better distance was adopted and must be re-announced
}

// NewBFSNodes builds the node programs for a BFS from root.
func NewBFSNodes(nw *Network, root int) []Node {
	nodes := make([]Node, nw.G.N())
	for v := 0; v < nw.G.N(); v++ {
		bn := &BFSNode{info: nw.Info(v), root: root, Dist: -1, ParentID: -1}
		if v == root {
			bn.Dist = 0
			bn.pending = true
		}
		nodes[v] = bn
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven.
func (bn *BFSNode) CongestEventDriven() {}

// Round implements Node.
func (bn *BFSNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		if in.Msg.Kind != msgBFS {
			continue
		}
		var p intPayload
		Unpack(in.Msg, &p)
		d := p.Val + 1
		if bn.Dist < 0 || d < bn.Dist {
			bn.Dist = d
			bn.ParentID = bn.info.Neighbors[in.Port]
			bn.pending = true
		}
	}
	if !bn.pending {
		return nil, true
	}
	bn.pending = false
	out := make([]Outgoing, 0, len(bn.info.Neighbors))
	announce := Pack(msgBFS, &intPayload{Val: bn.Dist})
	for p := range bn.info.Neighbors {
		out = append(out, Outgoing{Port: p, Msg: announce})
	}
	return out, true
}

// CastNode floods a single value down a given tree from the root
// (a tree broadcast): each node learns the root's value in depth(v) rounds.
type CastNode struct {
	info       NodeInfo
	parentPort int // -1 at root
	Value      int
	Has        bool
	pending    bool
}

// NewBroadcastNodes builds a broadcast of value from root over the tree
// given by the parent array (parent[root] == -1).
func NewBroadcastNodes(nw *Network, parent []int, root, value int) []Node {
	nodes := make([]Node, nw.G.N())
	for v := 0; v < nw.G.N(); v++ {
		cn := &CastNode{info: nw.Info(v), parentPort: -1}
		if v != root {
			cn.parentPort = cn.info.PortTo(parent[v])
		} else {
			cn.Value = value
			cn.Has = true
			cn.pending = true
		}
		nodes[v] = cn
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven.
func (cn *CastNode) CongestEventDriven() {}

// Round implements Node.
func (cn *CastNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		if in.Msg.Kind == msgCast && !cn.Has {
			var p intPayload
			Unpack(in.Msg, &p)
			cn.Value = p.Val
			cn.Has = true
			cn.pending = true
		}
	}
	if !cn.pending {
		return nil, cn.Has
	}
	cn.pending = false
	var out []Outgoing
	for p := range cn.info.Neighbors {
		if p != cn.parentPort {
			out = append(out, Outgoing{Port: p, Msg: Pack(msgCast, &intPayload{Val: cn.Value})})
		}
	}
	return out, true
}
