// Package congest simulates the synchronous CONGEST model: a network of
// nodes, one per graph vertex, exchanging O(log n)-bit messages over graph
// edges in lockstep rounds.
//
// A simulation is deterministic: nodes step in a fixed logical order, and
// the parallel engine (one goroutine per CPU over fixed vertex chunks with a
// barrier per round) produces results bit-identical to the sequential
// engine.
//
// Bandwidth is enforced: per round, at most one message may cross each edge
// in each direction, and each message carries at most MaxWords words, a word
// being ceil(log2 n) bits. Violations abort the run with an error rather
// than silently under-counting rounds.
package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"planardfs/internal/graph"
	"planardfs/internal/trace"
)

// Message is a CONGEST message: a program-defined kind tag plus up to
// MaxWords-1 word-sized arguments (the kind counts as one word).
type Message struct {
	Kind int
	Args []int
}

// Words returns the bandwidth cost of the message in words.
func (m Message) Words() int { return 1 + len(m.Args) }

// Incoming is a received message together with the port it arrived on.
type Incoming struct {
	Port int
	Msg  Message
}

// Outgoing is a message to send on a port of the sending node.
type Outgoing struct {
	Port int
	Msg  Message
}

// Node is a per-vertex CONGEST program. Round is called once per round with
// the messages delivered this round (sent by neighbours in the previous
// round); it returns the messages to send and whether the node has halted.
// A halted node's Round is still called (it may be woken by late messages);
// the network stops when every node reports done in a round with no
// messages in flight.
type Node interface {
	Round(round int, recv []Incoming) (send []Outgoing, done bool)
}

// NodeInfo is the local knowledge every CONGEST node starts with: its own
// identifier, and the identifier at the far end of each incident port.
type NodeInfo struct {
	ID        int
	Neighbors []int // Neighbors[port] is the neighbour's vertex ID.
	N         int   // number of nodes in the network (known bound)
}

// Stats aggregates instrumentation for a run.
type Stats struct {
	Rounds        int
	Messages      int64
	Words         int64
	MaxEdgeLoad   int64 // max messages carried by a single edge over the run
	MaxRoundWords int64 // max words sent network-wide in one round
	// MaxEdgeCongestion is the most messages a single edge carried in a
	// single round (at most 2: one per direction under the bandwidth rule).
	MaxEdgeCongestion int64
	// RoundMessages[i] is the number of messages delivered in round i; it
	// feeds the per-round message histogram of the tracing subsystem.
	RoundMessages []int64
}

// Network simulates a CONGEST network over a graph.
type Network struct {
	G *graph.Graph
	// MaxWords bounds the size of a single message in words
	// (1 word = ceil(log2 n) bits). Default 4.
	MaxWords int
	// Parallel selects the goroutine-per-chunk round engine.
	Parallel bool
	// Tracer receives per-round spans and message/congestion metrics; nil
	// (or trace.Nop) disables instrumentation at zero cost. The tracer is
	// only driven from the sequential delivery section of the round loop,
	// so traces are identical under both engines.
	Tracer trace.Tracer

	stats Stats
}

// New returns a network over g with default settings (4-word messages,
// parallel engine).
func New(g *graph.Graph) *Network {
	return &Network{G: g, MaxWords: 4, Parallel: true}
}

// Stats returns instrumentation from the last Run.
func (nw *Network) Stats() Stats { return nw.stats }

// Info returns the initial local knowledge of vertex v.
func (nw *Network) Info(v int) NodeInfo {
	return NodeInfo{ID: v, Neighbors: nw.G.Neighbors(v), N: nw.G.N()}
}

// ErrRoundLimit is returned when a run exceeds its round budget.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// Run executes the nodes until global termination (all nodes done and no
// messages in flight) or until maxRounds rounds have elapsed. It returns
// the number of rounds executed.
func (nw *Network) Run(nodes []Node, maxRounds int) (int, error) {
	n := nw.G.N()
	if len(nodes) != n {
		return 0, fmt.Errorf("congest: %d nodes for %d vertices", len(nodes), n)
	}
	maxWords := nw.MaxWords
	if maxWords <= 0 {
		maxWords = 4
	}
	nw.stats = Stats{}
	edgeLoad := make([]int64, nw.G.M())
	// Per-round edge loads via epoch stamping: edgeRound[id] names the last
	// round edge id carried a message, edgeRoundLoad[id] how many it
	// carried that round.
	edgeRound := make([]int, nw.G.M())
	edgeRoundLoad := make([]int64, nw.G.M())
	for i := range edgeRound {
		edgeRound[i] = -1
	}
	tr := trace.OrNop(nw.Tracer)
	traced := tr.Enabled()

	// Precompute the receiving port of every edge at each endpoint.
	portAtU := make([]int, nw.G.M())
	portAtV := make([]int, nw.G.M())
	for v := 0; v < n; v++ {
		for p, id := range nw.G.IncidentEdges(v) {
			if nw.G.EdgeByID(id).U == v {
				portAtU[id] = p
			} else {
				portAtV[id] = p
			}
		}
	}

	// Port tables: port p of v corresponds to incident edge
	// G.IncidentEdges(v)[p]; portAt[e] maps the edge to the port index at
	// each endpoint.
	inboxes := make([][]Incoming, n)
	outboxes := make([][]Outgoing, n)
	dones := make([]bool, n)
	errs := make([]error, n)

	step := func(round, v int) {
		send, done := nodes[v].Round(round, inboxes[v])
		seen := make(map[int]bool, len(send))
		for _, out := range send {
			if out.Port < 0 || out.Port >= nw.G.Degree(v) {
				errs[v] = fmt.Errorf("congest: node %d sent on invalid port %d", v, out.Port)
				return
			}
			if seen[out.Port] {
				errs[v] = fmt.Errorf("congest: node %d sent two messages on port %d in one round", v, out.Port)
				return
			}
			seen[out.Port] = true
			if out.Msg.Words() > maxWords {
				errs[v] = fmt.Errorf("congest: node %d message of %d words exceeds limit %d", v, out.Msg.Words(), maxWords)
				return
			}
		}
		outboxes[v] = send
		dones[v] = done
	}

	workers := runtime.NumCPU()
	if !nw.Parallel || workers > n {
		workers = 1
	}

	for round := 0; ; round++ {
		if round >= maxRounds {
			return round, fmt.Errorf("%w (limit %d)", ErrRoundLimit, maxRounds)
		}
		// Step all nodes.
		if workers == 1 {
			for v := 0; v < n; v++ {
				step(round, v)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						step(round, v)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		for v := 0; v < n; v++ {
			if errs[v] != nil {
				return round, errs[v]
			}
		}

		// Deliver messages.
		var roundWords, roundMsgs int64
		inFlight := false
		for v := 0; v < n; v++ {
			inboxes[v] = inboxes[v][:0]
		}
		for v := 0; v < n; v++ {
			for _, out := range outboxes[v] {
				id := nw.G.IncidentEdges(v)[out.Port]
				w := nw.G.EdgeByID(id).Other(v)
				// The receiving port at w.
				rp := portAtU[id]
				if w != nw.G.EdgeByID(id).U {
					rp = portAtV[id]
				}
				inboxes[w] = append(inboxes[w], Incoming{Port: rp, Msg: out.Msg})
				nw.stats.Messages++
				words := int64(out.Msg.Words())
				nw.stats.Words += words
				roundWords += words
				roundMsgs++
				edgeLoad[id]++
				if edgeRound[id] != round {
					edgeRound[id] = round
					edgeRoundLoad[id] = 0
				}
				edgeRoundLoad[id]++
				if edgeRoundLoad[id] > nw.stats.MaxEdgeCongestion {
					nw.stats.MaxEdgeCongestion = edgeRoundLoad[id]
				}
				inFlight = true
			}
			outboxes[v] = nil
		}
		if roundWords > nw.stats.MaxRoundWords {
			nw.stats.MaxRoundWords = roundWords
		}
		nw.stats.RoundMessages = append(nw.stats.RoundMessages, roundMsgs)
		nw.stats.Rounds = round + 1
		if traced {
			sp := tr.StartSpan(trace.LayerNetwork, "round")
			sp.SetAttr("msgs", roundMsgs)
			sp.SetAttr("words", roundWords)
			tr.Advance(1)
			sp.End()
			tr.Count("congest.rounds", 1)
			tr.Count("congest.messages", roundMsgs)
			tr.Count("congest.words", roundWords)
			tr.Observe("congest.msgs_per_round", roundMsgs)
			tr.Sample("congest.msgs_per_round", roundMsgs)
		}

		if !inFlight {
			all := true
			for v := 0; v < n; v++ {
				if !dones[v] {
					all = false
					break
				}
			}
			if all {
				break
			}
		}
	}
	for _, l := range edgeLoad {
		if l > nw.stats.MaxEdgeLoad {
			nw.stats.MaxEdgeLoad = l
		}
	}
	if traced {
		for _, l := range edgeLoad {
			tr.Observe("congest.edge_load", l)
		}
		tr.SetGauge("congest.max_edge_congestion", nw.stats.MaxEdgeCongestion)
		tr.SetGauge("congest.max_edge_load", nw.stats.MaxEdgeLoad)
	}
	return nw.stats.Rounds, nil
}
